// Command rlibm-check verifies one function of one library implementation
// against the arbitrary-precision oracle over a chosen format, exhaustively
// or by sampling, for any subset of rounding modes.
//
//	rlibm-check -func exp -format F19,8 -modes rn,rz
//	rlibm-check -func log2 -lib crlibm -format F25,8 -samples 1000000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/verify"
)

type crAdapter struct{ lib baseline.CRLibm }

func (c crAdapter) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return c.lib.Bits(x, out, mode)
}

func main() {
	common := cli.Register(flag.CommandLine)
	var (
		fnName   = flag.String("func", "exp", "function to check")
		lib      = flag.String("lib", "prog", "library: prog, rlibm-all, glibc, intel, crlibm")
		format   = flag.String("format", "F16,8", "target format, e.g. F19,8")
		modes    = flag.String("modes", "rn,ra,rz,ru,rd", "comma-separated rounding modes")
		samples  = flag.Int("samples", 0, "sample count (0 = exhaustive)")
		generate = flag.Bool("generate", false, "generate the checked RLIBM library through the staged pipeline instead of using the emitted internal/libm tables")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	rec := common.NewRecorder()
	seed, workers := &common.Seed, &common.Workers

	fn, err := bigmath.ParseFunc(*fnName)
	if err != nil {
		log.Fatal(err)
	}
	f, err := fp.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	var ms []fp.Mode
	for _, name := range strings.Split(*modes, ",") {
		m, err := fp.ParseMode(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		ms = append(ms, m)
	}

	progFor, baseFor := libm.Progressive, libm.RLibmAll
	if *generate {
		ctx, cancel := common.Context()
		defer cancel()
		ctx = obs.WithSpan(ctx, rec.Root())
		store, err := common.Store()
		if err != nil {
			log.Fatal(err)
		}
		defer common.CloseStore()
		progFor = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.ProgressiveOptions(false, nil), store)
			return res, err
		}
		baseFor = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.BaselineOptions(fn, nil), store)
			return res, err
		}
	}

	var impl verify.Impl
	switch *lib {
	case "prog":
		res, err := progFor(fn)
		if err != nil {
			log.Fatal(err)
		}
		impl = verify.NewGenImpl(res)
	case "rlibm-all":
		res, err := baseFor(fn)
		if err != nil {
			log.Fatal(err)
		}
		impl = verify.NewGenImpl(res)
	case "glibc":
		impl = baseline.MathLibm{Fn: fn}
	case "intel":
		impl = baseline.DDLibm{Fn: fn}
	case "crlibm":
		impl = crAdapter{baseline.CRLibm{Fn: fn}}
	default:
		log.Fatalf("unknown library %q", *lib)
	}

	orc := oracle.New(fn)
	var reports []verify.Report
	if *samples > 0 {
		reports = verify.Sampled(impl, orc, f, ms, *samples, *seed, *workers)
	} else {
		reports = verify.Exhaustive(impl, orc, f, ms, *workers)
	}
	bad := false
	for _, r := range reports {
		fmt.Printf("%s(%v) %s\n", fn, f, r)
		if !r.Correct() {
			bad = true
			for i, b := range r.Mismatches {
				if i >= 8 {
					fmt.Printf("  … %d more\n", len(r.Mismatches)-8)
					break
				}
				x := f.Decode(b)
				fmt.Printf("  input %#x (%g): got %#x want %#x\n",
					b, x, impl.Bits(x, f, r.Mode), wantBits(orc, x, f, r.Mode))
			}
		}
	}
	st := orc.Stats()
	fmt.Printf("oracle paths: %+v\n", st)
	st.RecordTo(rec.Root())
	if err := common.FinishRun(rec, "rlibm-check"); err != nil {
		log.Print(err)
		bad = true
	}
	stopProfiles()
	if bad {
		os.Exit(1)
	}
}

func wantBits(orc *oracle.Oracle, x float64, f fp.Format, mode fp.Mode) uint64 {
	ext := f.Extend(2)
	return f.FromFloat64(ext.Decode(orc.Result(x, ext, fp.RoundToOdd)), mode)
}
