// Command rlibm-table2 regenerates Table 2 of the paper: for each of the
// ten functions and each library — RLIBM-Prog, the glibc substitute, the
// Intel substitute, the CR-LIBM substitute, and the RLibm-All baseline — it
// reports whether the library produces correctly rounded results for
// (1) bfloat16 and tensorfloat32 with rn, (2) the largest ("float") format
// with rn, and (3) the largest format under all standard rounding modes.
//
// bfloat16 and tensorfloat32 are always checked exhaustively; the largest
// format is sampled by default (-exhaustive enumerates all of it, which
// takes minutes per function on one core).
//
// By default the generated libraries come from the emitted internal/libm
// tables; with -generate they are generated through the staged pipeline,
// reusing the shared artifact cache (-cache-dir) — after an rlibm-table1
// -generate run the enumeration is never repeated.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/verify"
)

type column struct {
	name string
	impl func(fn bigmath.Func) verify.Impl
	// modes the library supports for the all-rm column.
	allModes []fp.Mode
}

type crAdapter struct{ lib baseline.CRLibm }

func (c crAdapter) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return c.lib.Bits(x, out, mode)
}

func main() {
	common := cli.Register(flag.CommandLine)
	var (
		exhaustive = flag.Bool("exhaustive", false, "enumerate the largest format exhaustively (slow)")
		samples    = flag.Int("samples", 400000, "sample count per mode for the largest format")
		generate   = flag.Bool("generate", false, "generate the RLIBM libraries through the staged pipeline instead of using the emitted internal/libm tables")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()
	rec := common.NewRecorder()

	progFor, baseFor := libm.Progressive, libm.RLibmAll
	largest, haveTables := libm.LargestFormat()
	if *generate {
		ctx, cancel := common.Context()
		defer cancel()
		ctx = obs.WithSpan(ctx, rec.Root())
		store, err := common.Store()
		if err != nil {
			log.Fatal(err)
		}
		defer common.CloseStore()
		progFor = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.ProgressiveOptions(false, nil), store)
			return res, err
		}
		baseFor = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.BaselineOptions(fn, nil), store)
			return res, err
		}
		largest = fp.MustFormat(common.Bits, 8)
	} else if !haveTables {
		fmt.Fprintln(os.Stderr, "no generated tables; run cmd/rlibm-gen -emit internal/libm first (or pass -generate)")
		os.Exit(1)
	}
	fourModes := []fp.Mode{fp.RoundNearestEven, fp.RoundTowardZero, fp.RoundTowardPositive, fp.RoundTowardNegative}
	columns := []column{
		{"RLIBM-Prog", func(fn bigmath.Func) verify.Impl {
			res, err := progFor(fn)
			if err != nil {
				return nil
			}
			return verify.NewGenImpl(res)
		}, fp.StandardModes},
		{"glibc-sub", func(fn bigmath.Func) verify.Impl { return baseline.MathLibm{Fn: fn} }, fp.StandardModes},
		{"intel-sub", func(fn bigmath.Func) verify.Impl { return baseline.DDLibm{Fn: fn} }, fp.StandardModes},
		{"crlibm-sub", func(fn bigmath.Func) verify.Impl { return crAdapter{baseline.CRLibm{Fn: fn}} }, fourModes},
		{"RLibm-All", func(fn bigmath.Func) verify.Impl {
			res, err := baseFor(fn)
			if err != nil {
				return nil
			}
			return verify.NewGenImpl(res)
		}, fp.StandardModes},
	}

	fmt.Printf("Table 2: correctly rounded results for all inputs (largest format %v", largest)
	if *exhaustive {
		fmt.Println(", exhaustive)")
	} else {
		fmt.Printf(", sampled %d/mode)\n", *samples)
	}
	fmt.Println("columns per library: BF16&TF32 rn | largest rn | largest all-rm (crlibm-sub: 4 modes, no ra)")
	fmt.Println(strings.Repeat("=", 20+22*len(columns)))
	fmt.Printf("%-7s", "f(x)")
	for _, c := range columns {
		fmt.Printf(" | %-18s", c.name)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 20+22*len(columns)))

	mark := func(correct, supported bool) string {
		if !supported {
			return "N/A"
		}
		if correct {
			return "Y"
		}
		return "X"
	}
	for _, fn := range bigmath.AllFuncs {
		orc := oracle.New(fn)
		fmt.Printf("%-7s", fn)
		for _, col := range columns {
			impl := col.impl(fn)
			if impl == nil {
				fmt.Printf(" | %-18s", "missing")
				continue
			}
			smallOK := allCorrect(verify.Exhaustive(impl, orc, fp.Bfloat16, []fp.Mode{fp.RoundNearestEven}, common.Workers)) &&
				allCorrect(verify.Exhaustive(impl, orc, fp.TensorFloat32, []fp.Mode{fp.RoundNearestEven}, common.Workers))
			var rnReports, allReports []verify.Report
			if *exhaustive {
				rnReports = verify.Exhaustive(impl, orc, largest, []fp.Mode{fp.RoundNearestEven}, common.Workers)
				allReports = verify.Exhaustive(impl, orc, largest, col.allModes, common.Workers)
			} else {
				rnReports = verify.Sampled(impl, orc, largest, []fp.Mode{fp.RoundNearestEven}, *samples, common.Seed, common.Workers)
				allReports = verify.Sampled(impl, orc, largest, col.allModes, *samples, common.Seed+1, common.Workers)
			}
			fmt.Printf(" | %-4s %-4s %-8s", mark(smallOK, true),
				mark(allCorrect(rnReports), true), mark(allCorrect(allReports), true))
		}
		fmt.Println()
	}
	fmt.Println(strings.Repeat("-", 20+22*len(columns)))
	fmt.Println("Y = correctly rounded for all checked inputs, X = wrong results found.")
	fmt.Println("Comparator substitutes compute in the scaled-double working format F49,10 (see DESIGN.md).")
	if err := common.FinishRun(rec, "rlibm-table2"); err != nil {
		log.Fatal(err)
	}
}

func allCorrect(reports []verify.Report) bool {
	for _, r := range reports {
		if !r.Correct() {
			return false
		}
	}
	return true
}
