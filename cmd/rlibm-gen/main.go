// Command rlibm-gen runs the RLIBM-Prog generation pipeline: it enumerates
// every input of every representation level, builds the constraint system,
// solves it with the Clarkson randomized LP algorithm, verifies the result
// exhaustively (patching stragglers into the special-input tables), and
// optionally emits the coefficient tables as Go source into internal/libm.
//
// The pipeline runs as explicit stages — Enumerate, Reduce, Solve, Verify —
// each checkpointed in a content-addressed artifact cache (-cache-dir), so
// an interrupted run resumes at stage granularity and repeated runs with a
// different seed still reuse the expensive enumeration. -no-cache restores
// the fully in-memory behavior.
//
// With -baseline it instead generates the RLibm-All comparison library:
// piecewise polynomials with large sub-domain counts, a single (largest)
// level, no progressive term counts.
//
// Typical use:
//
//	rlibm-gen -emit internal/libm                 # all ten functions
//	rlibm-gen -baseline -emit internal/libm      # RLibm-All baseline
//	rlibm-gen -func log2 -bits 22 -v             # one function, smaller scale
//	rlibm-gen -func exp2 -levels F10,8:F12,8     # explicit tiny level list
//	rlibm-gen -func cospi -report                # write report.json next to the cache
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/oracle"
)

func main() {
	common := cli.Register(flag.CommandLine)
	var (
		fnFlag   = flag.String("func", "all", "function to generate (all or one of ln,log2,log10,exp,exp2,exp10,sinh,cosh,sinpi,cospi)")
		baseline = flag.Bool("baseline", false, "generate the RLibm-All piecewise baseline instead")
		emitDir  = flag.String("emit", "", "directory to write generated Go table files into")
		noVerify = flag.Bool("skip-verify", false, "skip the exhaustive verification/repair pass")
		progRO   = flag.Bool("progressive-ro", false, "generate lower levels against round-to-odd intervals (all-modes progressive guarantee; extension beyond the paper)")
		levels   = flag.String("levels", "", "colon-separated explicit level list, e.g. F10,8:F12,8 (overrides -bits)")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := common.Context()
	defer cancel()
	rec := common.NewRecorder()
	ctx = obs.WithSpan(ctx, rec.Root())
	store, err := common.Store()
	if err != nil {
		log.Fatal(err)
	}
	defer common.CloseStore()

	var fns []bigmath.Func
	if *fnFlag == "all" {
		fns = bigmath.AllFuncs
	} else {
		for _, name := range strings.Split(*fnFlag, ",") {
			fn, err := bigmath.ParseFunc(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			fns = append(fns, fn)
		}
	}

	logf := common.Logf()
	failed := false

	for _, fn := range fns {
		var opt gen.Options
		kind := "progressive"
		if *baseline {
			kind = "rlibm-all-baseline"
			opt = common.BaselineOptions(fn, logf)
		} else {
			opt = common.ProgressiveOptions(*progRO, logf)
		}
		if *levels != "" {
			lv, err := cli.ParseLevels(*levels)
			if err != nil {
				log.Fatal(err)
			}
			opt.Levels = lv
		}
		opt.Oracle = oracle.New(fn)

		var res *gen.Result
		patched := 0
		if *noVerify {
			res, err = gen.GenerateStaged(ctx, fn, opt, store)
		} else {
			res, patched, err = cli.GenerateVerifiedSharded(ctx, fn, opt, store, common.Shard())
		}
		if err != nil {
			log.Printf("%v: %v", fn, err)
			failed = true
			continue
		}
		st := res.Stats
		fmt.Printf("%-6s %-20s pieces=%v degree=%v terms=%v specials=%v(+%d repaired) mem=%dB raw=%d rows=%d iters=%d lucky=%d exact=%d dur=%v\n",
			fn, kind, res.NumPieces(), res.MaxDegree(len(res.Levels)-1),
			termsMatrix(res), res.NumSpecials(), patched, res.CoefficientBytes(),
			st.RawConstraints, st.MergedRows, st.Iters, st.Lucky, st.ExactSolves,
			st.Duration.Round(1e6))

		if *emitDir != "" {
			name := fmt.Sprintf("zz_generated_%s.go", fn)
			registerFn := "register"
			if *baseline {
				name = fmt.Sprintf("zz_baseline_%s.go", fn)
				registerFn = "registerBaseline"
			}
			src := gen.EmitGo(res, "libm", registerFn)
			if err := os.WriteFile(filepath.Join(*emitDir, name), []byte(src), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := common.FinishRun(rec, "rlibm-gen"); err != nil {
		log.Print(err)
		failed = true
	}
	stopProfiles()
	exitIf(failed)
}

func exitIf(failed bool) {
	if failed {
		os.Exit(1)
	}
}

func termsMatrix(res *gen.Result) [][]int {
	out := make([][]int, len(res.Levels))
	for li := range res.Levels {
		out[li] = res.TermsAt(li)
	}
	return out
}
