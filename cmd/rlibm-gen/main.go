// Command rlibm-gen runs the RLIBM-Prog generation pipeline: it enumerates
// every input of every representation level, builds the constraint system,
// solves it with the Clarkson randomized LP algorithm, verifies the result
// exhaustively (patching stragglers into the special-input tables), and
// optionally emits the coefficient tables as Go source into internal/libm.
//
// With -baseline it instead generates the RLibm-All comparison library:
// piecewise polynomials with large sub-domain counts, a single (largest)
// level, no progressive term counts.
//
// Typical use:
//
//	rlibm-gen -emit internal/libm                 # all ten functions
//	rlibm-gen -baseline -emit internal/libm      # RLibm-All baseline
//	rlibm-gen -func log2 -bits 22 -v             # one function, smaller scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/verify"
)

// baselinePieces mirrors the RLibm-All sub-domain counts of Table 1,
// scaled to the default 25-bit largest format (quartered relative to the
// paper's 32-bit counts, minimum 4).
func baselinePieces(fn bigmath.Func) int {
	switch fn {
	case bigmath.Ln:
		return 256
	case bigmath.Log2, bigmath.Log10, bigmath.Exp, bigmath.Exp2:
		return 64
	case bigmath.Exp10:
		return 128
	case bigmath.Sinh, bigmath.Cosh:
		return 16
	default: // sinpi, cospi
		return 4
	}
}

func main() {
	var (
		fnFlag   = flag.String("func", "all", "function to generate (all or one of ln,log2,log10,exp,exp2,exp10,sinh,cosh,sinpi,cospi)")
		bits     = flag.Int("bits", gen.DefaultLargestBits, "width of the largest representation (paper: 32; see DESIGN.md)")
		baseline = flag.Bool("baseline", false, "generate the RLibm-All piecewise baseline instead")
		emitDir  = flag.String("emit", "", "directory to write generated Go table files into")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "verbose progress")
		noVerify = flag.Bool("skip-verify", false, "skip the exhaustive verification/repair pass")
		progRO   = flag.Bool("progressive-ro", false, "generate lower levels against round-to-odd intervals (all-modes progressive guarantee; extension beyond the paper)")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker count for enumeration, solving and verification (generated tables are identical for any value)")
	)
	flag.Parse()

	var fns []bigmath.Func
	if *fnFlag == "all" {
		fns = bigmath.AllFuncs
	} else {
		for _, name := range strings.Split(*fnFlag, ",") {
			fn, err := bigmath.ParseFunc(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			fns = append(fns, fn)
		}
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	failed := false

	for _, fn := range fns {
		opt := gen.Options{Seed: *seed, Logf: logf, Workers: *workers}
		kind := "progressive"
		if *baseline {
			kind = "rlibm-all-baseline"
			opt.Levels = []fp.Format{fp.MustFormat(*bits, 8)}
			opt.ForcePieces = baselinePieces(fn)
			opt.MaxTerms = 6
		} else {
			opt.Levels = gen.StandardLevels(*bits)
			opt.ProgressiveRO = *progRO
		}
		orc := oracle.New(fn)
		opt.Oracle = orc
		res, err := gen.Generate(fn, opt)
		if err != nil {
			log.Printf("%v: %v", fn, err)
			failed = true
			continue
		}
		patched := 0
		if !*noVerify {
			patched, err = verify.Repair(res, orc, *workers)
			if err != nil {
				log.Printf("%v: verification failed: %v", fn, err)
				failed = true
				continue
			}
		}
		st := res.Stats
		fmt.Printf("%-6s %-20s pieces=%v degree=%v terms=%v specials=%v(+%d repaired) mem=%dB raw=%d rows=%d iters=%d lucky=%d exact=%d dur=%v\n",
			fn, kind, res.NumPieces(), res.MaxDegree(len(res.Levels)-1),
			termsMatrix(res), res.NumSpecials(), patched, res.CoefficientBytes(),
			st.RawConstraints, st.MergedRows, st.Iters, st.Lucky, st.ExactSolves,
			st.Duration.Round(1e6))

		if *emitDir != "" {
			name := fmt.Sprintf("zz_generated_%s.go", fn)
			registerFn := "register"
			if *baseline {
				name = fmt.Sprintf("zz_baseline_%s.go", fn)
				registerFn = "registerBaseline"
			}
			src := gen.EmitGo(res, "libm", registerFn)
			if err := os.WriteFile(filepath.Join(*emitDir, name), []byte(src), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	exitIf(failed)
}

func exitIf(failed bool) {
	if failed {
		os.Exit(1)
	}
}

func termsMatrix(res *gen.Result) [][]int {
	out := make([][]int, len(res.Levels))
	for li := range res.Levels {
		out[li] = res.TermsAt(li)
	}
	return out
}
