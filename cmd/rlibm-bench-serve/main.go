// Command rlibm-bench-serve is the load generator for rlibm-serve: a
// fixed number of closed-loop workers hammer the HTTP/JSON endpoint (or
// the framed bulk endpoint with -bulk) for a fixed duration, then the
// latency distribution — p50/p90/p99, throughput, shed rate — is printed
// and optionally written as BENCH_serve.json (-out).
//
// The workload is deterministic for a given -seed: every worker draws its
// input bit patterns from its own seeded stream, so two runs against the
// same server issue the same requests. Typed 429s (serve-overload) are
// counted separately from hard failures — under deliberate overload they
// are the server working as designed, and the shed rate is itself a
// result.
//
// Typical use:
//
//	rlibm-serve -listen :8080 -bulk-listen :8081 &
//	rlibm-bench-serve -addr localhost:8080 -duration 10s -concurrency 8
//	rlibm-bench-serve -addr localhost:8081 -bulk -batch 256 -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "server address (HTTP endpoint, or bulk endpoint with -bulk)")
		bulk     = flag.Bool("bulk", false, "drive the framed binary bulk endpoint instead of HTTP/JSON")
		fnName   = flag.String("func", "log2", "function to request")
		format   = flag.String("format", "F16,8", "format to request")
		mode     = flag.String("mode", "rn", "rounding mode to request")
		batch    = flag.Int("batch", 64, "inputs per request")
		conc     = flag.Int("concurrency", 4, "closed-loop worker count")
		duration = flag.Duration("duration", 5*time.Second, "how long to generate load")
		seed     = flag.Int64("seed", 1, "seed of the deterministic input streams")
		out      = flag.String("out", "", "write the result as JSON to this file (e.g. BENCH_serve.json)")
	)
	flag.Parse()
	fn, err := bigmath.ParseFunc(*fnName)
	if err != nil {
		log.Fatal(err)
	}
	f, err := fp.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fp.ParseMode(*mode); err != nil {
		log.Fatal(err)
	}
	if *batch < 1 || *conc < 1 {
		log.Fatal("invalid -batch/-concurrency: must be at least 1")
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		shed      int64
		failures  int64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			send := newSender(*bulk, *addr, fn, f, *fnName, *format, *mode)
			var lats []time.Duration
			var wshed, wfail int64
			for time.Now().Before(deadline) {
				inputs := make([]uint64, *batch)
				for i := range inputs {
					inputs[i] = rng.Uint64() % f.NumValues()
				}
				start := time.Now()
				err := send(inputs)
				lat := time.Since(start)
				switch {
				case err == nil:
					lats = append(lats, lat)
				case isShed(err):
					wshed++
				default:
					wfail++
				}
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			shed += wshed
			failures += wfail
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if len(latencies) == 0 {
		log.Fatalf("no request succeeded (%d shed, %d failed): is rlibm-serve running on %s?", shed, failures, *addr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	total := int64(len(latencies)) + shed + failures
	res := benchResult{
		Benchmark: "rlibm-serve closed-loop latency: " + endpointName(*bulk),
		Command:   "rlibm-bench-serve",
		Config: benchConfig{
			Endpoint: endpointName(*bulk), Func: *fnName, Format: *format, Mode: *mode,
			Batch: *batch, Concurrency: *conc, Duration: duration.String(), Seed: *seed,
		},
		Environment: benchEnv{Go: runtime.Version(), LogicalCPUs: runtime.NumCPU()},
		Results: benchNumbers{
			Requests:      total,
			OK:            int64(len(latencies)),
			Shed:          shed,
			Failures:      failures,
			ThroughputRPS: round2(float64(len(latencies)) / duration.Seconds()),
			InputsPerSec:  round2(float64(len(latencies)) * float64(*batch) / duration.Seconds()),
			P50Micros:     round2(float64(pct(0.50)) / 1e3),
			P90Micros:     round2(float64(pct(0.90)) / 1e3),
			P99Micros:     round2(float64(pct(0.99)) / 1e3),
			MaxMicros:     round2(float64(latencies[len(latencies)-1]) / 1e3),
		},
	}
	fmt.Printf("rlibm-bench-serve: %d ok %d shed %d failed  p50=%.1fµs p90=%.1fµs p99=%.1fµs  %.0f req/s\n",
		res.Results.OK, shed, failures, res.Results.P50Micros, res.Results.P90Micros,
		res.Results.P99Micros, res.Results.ThroughputRPS)
	if failures > 0 {
		defer os.Exit(1)
	}
	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rlibm-bench-serve: wrote %s\n", *out)
	}
}

// newSender returns the per-worker request function for the chosen
// endpoint. Bulk workers hold one connection each (reconnecting after a
// hard error); HTTP workers share Go's keep-alive pool.
func newSender(bulk bool, addr string, fn bigmath.Func, f fp.Format, fnName, format, mode string) func([]uint64) error {
	if bulk {
		m, _ := fp.ParseMode(mode)
		var c *serve.BulkClient
		return func(inputs []uint64) error {
			if c == nil {
				var err error
				if c, err = serve.DialBulk(addr); err != nil {
					return err
				}
			}
			_, err := c.Eval(serve.Request{Fn: fn, Out: f, Mode: m, Inputs: inputs})
			if err != nil {
				if _, ok := err.(*serve.BulkError); !ok {
					c.Close()
					c = nil // hard transport error: reconnect next request
				}
			}
			return err
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	url := "http://" + addr + "/eval"
	type payload struct {
		Func   string   `json:"func"`
		Format string   `json:"format"`
		Mode   string   `json:"mode"`
		Inputs []uint64 `json:"inputs"`
	}
	return func(inputs []uint64) error {
		body, err := json.Marshal(payload{Func: fnName, Format: format, Mode: mode, Inputs: inputs})
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests {
			return errShed
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("http %d", resp.StatusCode)
		}
		return nil
	}
}

// errShed marks an HTTP 429 so both endpoints classify sheds uniformly.
var errShed = fmt.Errorf("shed")

// isShed reports whether err is a typed overload shed (HTTP 429 or a bulk
// serve-overload).
func isShed(err error) bool {
	if err == errShed {
		return true
	}
	if be, ok := err.(*serve.BulkError); ok {
		return be.Code == "serve-overload"
	}
	return false
}

func endpointName(bulk bool) string {
	if bulk {
		return "bulk"
	}
	return "http"
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// benchResult is the BENCH_serve.json layout, following the shape of the
// other BENCH_*.json files in the repo.
type benchResult struct {
	Benchmark   string       `json:"benchmark"`
	Command     string       `json:"command"`
	Config      benchConfig  `json:"config"`
	Environment benchEnv     `json:"environment"`
	Results     benchNumbers `json:"results"`
}

type benchConfig struct {
	Endpoint    string `json:"endpoint"`
	Func        string `json:"func"`
	Format      string `json:"format"`
	Mode        string `json:"mode"`
	Batch       int    `json:"batch"`
	Concurrency int    `json:"concurrency"`
	Duration    string `json:"duration"`
	Seed        int64  `json:"seed"`
}

type benchEnv struct {
	Go          string `json:"go"`
	LogicalCPUs int    `json:"logical_cpus"`
}

type benchNumbers struct {
	Requests      int64   `json:"requests"`
	OK            int64   `json:"ok"`
	Shed          int64   `json:"shed"`
	Failures      int64   `json:"failures"`
	ThroughputRPS float64 `json:"throughput_rps"`
	InputsPerSec  float64 `json:"inputs_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P90Micros     float64 `json:"p90_us"`
	P99Micros     float64 `json:"p99_us"`
	MaxMicros     float64 `json:"max_us"`
}
