// Command rlibm-campaign drives the paper-scale distributed sweep: it
// plans the full campaign (every requested function generated and
// exhaustively verified, then the progressive claim checked over every
// format from -min-bits to -bits under all five standard rounding modes)
// as a resumable manifest artifact, launches N shard workers against a
// shared store, survives peer death mid-run, and aggregates the per-unit
// verify reports into campaign_report.json and BENCH_campaign.json.
//
// Two execution modes:
//
//   - subprocess (default): the driver re-executes its own binary once
//     per peer with -campaign-worker -shard k/n; workers stream progress
//     as @rlibm-campaign-unit JSON lines and finish with one
//     @rlibm-campaign-peer line, and a worker that dies is relaunched up
//     to -max-restarts times. Requires a store every process can reach:
//     tcp:// (the usual choice — run rlibm-store first) or dir:.
//   - -inproc: the peers are goroutines inside this process, each with
//     its own store connection. Handy for single-machine runs and tests.
//
// Typical 2-peer campaign against a shared eviction-bounded store:
//
//	rlibm-store -listen 127.0.0.1:7070 -max-bytes 268435456 &
//	rlibm-campaign -store tcp://127.0.0.1:7070 -peers 2 -progressive-ro
//
// Killing a worker (or the whole driver) and rerunning the same command
// resumes: the manifest pins the plan, every finished unit is a sealed
// artifact the rerun reuses, and stalled claims are reclaimed after the
// heartbeat stall budget.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/bigmath"
	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// Stdout markers of the subprocess worker protocol. Lines the monitor
// parses; everything else a worker prints is passed through untouched.
const (
	unitMarker = "@rlibm-campaign-unit "
	peerMarker = "@rlibm-campaign-peer "
)

func main() {
	common := cli.Register(flag.CommandLine)
	var (
		funcsFlag   = flag.String("funcs", "", "comma-separated functions to sweep (default: all ten)")
		minBits     = flag.Int("min-bits", campaign.MinSweepBits, "smallest swept format width (paper: 10)")
		levelsFlag  = flag.String("levels", "", "comma-separated widths of the generated representation ladder, e.g. 10,12 (default: the standard bfloat16/tf32/F(bits,8) triple — requires -bits > 19)")
		peers       = flag.Int("peers", 2, "worker peer count")
		inproc      = flag.Bool("inproc", false, "run peers as goroutines instead of subprocesses")
		workerMode  = flag.Bool("campaign-worker", false, "internal: run as one campaign worker peer (driver use only)")
		progRO      = flag.Bool("progressive-ro", true, "generate lower levels against round-to-odd intervals (all-modes progressive guarantee)")
		maxRestarts = flag.Int("max-restarts", 2, "relaunch a dead peer at most this many times")
		out         = flag.String("out", "BENCH_campaign.json", "write the campaign benchmark JSON here (empty disables)")
		reportPath  = flag.String("campaign-report", "campaign_report.json", "write the aggregated campaign report here (empty disables)")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	if *peers < 1 {
		log.Fatalf("invalid -peers %d: must be at least 1", *peers)
	}
	if *maxRestarts < 0 {
		log.Fatalf("invalid -max-restarts %d: must be at least 0 (0 = die on first failure)", *maxRestarts)
	}

	plan := campaign.Plan{
		Bits:          common.Bits,
		MinBits:       *minBits,
		ProgressiveRO: *progRO,
		Seed:          common.Seed,
		Workers:       common.Workers,
	}
	if *funcsFlag != "" {
		for _, name := range strings.Split(*funcsFlag, ",") {
			fn, err := bigmath.ParseFunc(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			plan.Funcs = append(plan.Funcs, fn)
		}
	}
	if *levelsFlag != "" {
		for _, w := range strings.Split(*levelsFlag, ",") {
			var bits int
			if _, err := fmt.Sscanf(strings.TrimSpace(w), "%d", &bits); err != nil {
				log.Fatalf("invalid -levels entry %q: %v", w, err)
			}
			f, err := fp.NewFormat(bits, 8)
			if err != nil {
				log.Fatalf("invalid -levels entry %q: %v", w, err)
			}
			plan.Levels = append(plan.Levels, f)
		}
	}
	if err := plan.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := common.Context()
	defer cancel()

	if *workerMode {
		runWorkerMode(ctx, common, plan)
		return
	}

	var rep *campaign.Report
	var err error
	if *inproc {
		rep, err = runInProc(ctx, common, plan, *peers, *maxRestarts)
	} else {
		rep, err = runSubprocesses(ctx, common, plan, *peers, *maxRestarts)
	}
	if rep != nil {
		printSummary(rep)
		if *reportPath != "" {
			if werr := rep.WriteFile(*reportPath); werr != nil {
				log.Fatal(werr)
			}
			fmt.Printf("campaign report: %s\n", *reportPath)
		}
		if *out != "" {
			if werr := campaign.WriteBench(*out, strings.Join(os.Args, " "), rep); werr != nil {
				log.Fatal(werr)
			}
			fmt.Printf("bench: %s\n", *out)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if rep != nil && !rep.Correct() {
		os.Exit(1)
	}
}

// openPeerStore opens one peer's own connection to the shared store
// selected by the common flags. Peer 0 of an in-process run may share
// the driver's handle; every other peer needs its own so event logs and
// transports stay isolated.
func openPeerStore(common *cli.Common) (pipeline.Store, error) {
	fresh := *common // fresh Common so the cached store handle is not shared
	return fresh.Store()
}

// runInProc drives goroutine peers through campaign.Run.
func runInProc(ctx context.Context, common *cli.Common, plan campaign.Plan, peers, maxRestarts int) (*campaign.Report, error) {
	// One shared in-memory store must be a single instance — a fresh
	// MemStore per peer would be N disjoint caches and the claims would
	// never meet. Open it once and hand every peer the same handle.
	var shared pipeline.Store
	if strings.HasPrefix(common.StoreURL, "mem") {
		st, err := common.Store()
		if err != nil {
			return nil, err
		}
		shared = st
	}
	return campaign.Run(ctx, campaign.Config{
		Plan:        plan,
		Peers:       peers,
		MaxRestarts: maxRestarts,
		Logf:        campaignLogf(common),
		OpenStore: func(int) (pipeline.Store, error) {
			if shared != nil {
				return shared, nil
			}
			return openPeerStore(common)
		},
	})
}

// runWorkerMode is the subprocess peer: one RunWorker pass, streaming
// unit completions and the final peer report as marked JSON lines.
func runWorkerMode(ctx context.Context, common *cli.Common, plan campaign.Plan) {
	store, err := common.Store()
	if err != nil {
		log.Fatal(err)
	}
	defer common.CloseStore()
	enc := json.NewEncoder(os.Stdout)
	rep, err := campaign.RunWorker(ctx, campaign.WorkerConfig{
		Plan:  plan,
		Shard: common.Shard(),
		Store: store,
		Logf:  campaignLogf(common),
		OnUnit: func(u campaign.UnitResult) {
			fmt.Print(unitMarker)
			enc.Encode(u)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(peerMarker)
	enc.Encode(rep)
}

// runSubprocesses re-executes this binary once per peer and monitors the
// fleet: a peer that exits without its final report line is relaunched
// (fresh process, same shard) up to maxRestarts times. The relaunched
// worker resumes from the shared store — that is the whole point.
func runSubprocesses(ctx context.Context, common *cli.Common, plan campaign.Plan, peers, maxRestarts int) (*campaign.Report, error) {
	if common.NoCache || common.StoreURL == "mem:" || common.StoreURL == "mem" {
		return nil, fmt.Errorf("subprocess peers need a store every process can reach: use -store tcp://host:port (rlibm-store) or -store dir:PATH, or run -inproc")
	}

	// Pin the manifest before the fan-out and learn whether this resumes.
	st, err := common.Store()
	if err != nil {
		return nil, err
	}
	_, resumed, err := campaign.EnsureManifest(ctx, st, plan, campaignLogf(common))
	common.CloseStore()
	if err != nil {
		return nil, err
	}

	start := time.Now()
	runs := make([]campaign.PeerRun, peers)
	reports := make([]*campaign.PeerReport, peers)
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], runs[i] = monitorPeer(ctx, common, plan, i, peers, maxRestarts)
		}()
	}
	wg.Wait()

	rep := campaign.Aggregate(plan, resumed, reports, runs)
	rep.WallClockMS = time.Since(start).Milliseconds()
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	for _, pr := range runs {
		if pr.Err == "" {
			return rep, nil
		}
	}
	return rep, fmt.Errorf("campaign: all %d peers failed; first: %s", peers, runs[0].Err)
}

// monitorPeer launches and relaunches one worker subprocess slot.
func monitorPeer(ctx context.Context, common *cli.Common, plan campaign.Plan, peer, peers, maxRestarts int) (*campaign.PeerReport, campaign.PeerRun) {
	shard := gen.Shard{K: peer, N: peers}
	pr := campaign.PeerRun{Peer: peer, Shard: shard.String()}
	for attempt := 0; ; attempt++ {
		rep, err := runOnePeerProcess(ctx, common, plan, shard, peer)
		if err == nil {
			pr.InputsChecked = rep.InputsChecked
			pr.UnitsComputed = rep.UnitsComputed
			pr.DurMS = rep.DurMS
			if rep.DurMS > 0 {
				pr.InputsPerSec = float64(rep.InputsChecked) / (float64(rep.DurMS) / 1000)
			}
			return rep, pr
		}
		if ctx.Err() != nil || attempt >= maxRestarts {
			pr.Err = err.Error()
			return nil, pr
		}
		pr.Restarts++
		log.Printf("campaign: peer %d died (%v); restart %d/%d", peer, err, pr.Restarts, maxRestarts)
	}
}

// runOnePeerProcess execs one worker and parses its marked stdout lines.
func runOnePeerProcess(ctx context.Context, common *cli.Common, plan campaign.Plan, shard gen.Shard, peer int) (*campaign.PeerReport, error) {
	var funcs []string
	for _, fn := range plan.Funcs {
		funcs = append(funcs, fn.String())
	}
	args := []string{
		"-campaign-worker",
		"-shard", shard.String(),
		"-store", common.StoreURL,
		"-cache-dir", common.CacheDir,
		"-funcs", strings.Join(funcs, ","),
		"-bits", fmt.Sprint(plan.Bits),
		"-min-bits", fmt.Sprint(plan.MinBits),
		"-seed", fmt.Sprint(plan.Seed),
		"-workers", fmt.Sprint(common.Workers),
		fmt.Sprintf("-progressive-ro=%v", plan.ProgressiveRO),
	}
	if len(plan.Levels) > 0 {
		var widths []string
		for _, l := range plan.Levels {
			widths = append(widths, fmt.Sprint(l.Bits()))
		}
		args = append(args, "-levels", strings.Join(widths, ","))
	}
	if common.Verbose {
		args = append(args, "-v")
	}
	cmd := exec.CommandContext(ctx, os.Args[0], args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var rep *campaign.PeerReport
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // peer reports grow with the unit list
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, peerMarker):
			var pr campaign.PeerReport
			if jerr := json.Unmarshal([]byte(strings.TrimPrefix(line, peerMarker)), &pr); jerr == nil {
				rep = &pr
			}
		case strings.HasPrefix(line, unitMarker):
			var u campaign.UnitResult
			if jerr := json.Unmarshal([]byte(strings.TrimPrefix(line, unitMarker)), &u); jerr == nil {
				log.Printf("campaign: peer %d: %s done (checked %d, %d mismatches)", peer, unitName(u), u.Checked, u.Mismatches)
			}
		default:
			fmt.Println(line)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("peer %d (shard %s): %w", peer, shard, err)
	}
	if rep == nil {
		return nil, fmt.Errorf("peer %d (shard %s): exited without a final report", peer, shard)
	}
	return rep, nil
}

func unitName(u campaign.UnitResult) string {
	if u.FormatBits == 0 {
		return u.Func + "/generate"
	}
	return fmt.Sprintf("%s/F%d,8", u.Func, u.FormatBits)
}

func campaignLogf(common *cli.Common) pipeline.Logf {
	return pipeline.Logf(common.Logf())
}

func printSummary(rep *campaign.Report) {
	status := "CORRECT"
	if !rep.Correct() {
		status = fmt.Sprintf("%d MISMATCHES", rep.Mismatches)
	}
	resumed := ""
	if rep.Resumed {
		resumed = " (resumed)"
	}
	fmt.Printf("campaign%s: %d funcs × F%d..F%d,8 × %d modes — %d units, %d inputs checked, %d patched, %s in %dms\n",
		resumed, len(rep.Funcs), rep.MinBits, rep.Bits, rep.Modes,
		rep.Units, rep.InputsChecked, rep.Patched, status, rep.WallClockMS)
	for _, pr := range rep.Peers {
		state := "ok"
		if pr.Err != "" {
			state = "FAILED: " + pr.Err
		}
		fmt.Printf("  peer %d (shard %s): %d units computed, %d inputs, %.0f inputs/s, %d restarts — %s\n",
			pr.Peer, pr.Shard, pr.UnitsComputed, pr.InputsChecked, pr.InputsPerSec, pr.Restarts, state)
	}
}
