// Command rlibm-store serves a content-addressed artifact store over the
// framed-TCP wire protocol, so several rlibm processes — on one machine or
// many — can share one cache and distribute work with -store
// tcp://host:port (optionally plus -shard k/n).
//
// The server is a thin relay in front of an ordinary backend: every
// consistency property (atomic publication, sealed-frame checksums, audit)
// belongs to the backing store, and the bytes a client Puts are the bytes
// every client Gets. By default it fronts the atomic-rename disk store
// rooted at -cache-dir — persistent across restarts and shareable with
// local dir: runs — while -mem serves an ephemeral in-memory store for
// tests and throwaway distributed runs.
//
// Typical use:
//
//	rlibm-store -listen :7070                        # serve the default cache dir
//	rlibm-store -listen 127.0.0.1:7070 -mem          # ephemeral store for a test fleet
//	rlibm-gen -store tcp://host:7070 -shard 0/2 &    # then point workers at it
//	rlibm-gen -store tcp://host:7070 -shard 1/2
//
// On SIGINT/SIGTERM the listener closes, in-flight connections drain, and
// — for a disk backing — a final Audit sweep reports the cache's health.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/pipeline"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "TCP address to serve the store on")
		cacheDir = flag.String("cache-dir", cli.DefaultCacheDir(), "artifact cache directory backing the served store")
		mem      = flag.Bool("mem", false, "serve an ephemeral in-memory store instead of the disk cache")
		maxConns = flag.Int("max-conns", 64, "maximum concurrently served connections (0 = unlimited)")
		idle     = flag.Duration("idle-timeout", 2*time.Minute, "drop a connection idle for this long (0 = never)")
		maxBytes = flag.Int64("max-bytes", 0, "evict least-recently-used artifacts once the store exceeds this many bytes (0 = unbounded; claims and -pin-stages are never evicted)")
		pinSpec  = flag.String("pin-stages", "", "comma-separated extra stages protected from eviction (claims are always pinned), e.g. verify,solve")
		verbose  = flag.Bool("v", false, "log per-connection protocol errors")
	)
	flag.Parse()
	if *maxConns < 0 {
		log.Fatalf("invalid -max-conns %d: must be at least 0 (0 = unlimited)", *maxConns)
	}
	if *idle < 0 {
		log.Fatalf("invalid -idle-timeout %v: must be at least 0 (0 = never)", *idle)
	}
	if *maxBytes < 0 {
		log.Fatalf("invalid -max-bytes %d: must be at least 0 (0 = unbounded)", *maxBytes)
	}

	var backing pipeline.Store
	if *mem {
		backing = pipeline.NewMemStore()
	} else {
		if *cacheDir == "" {
			log.Fatal("invalid -cache-dir \"\": the served store needs a directory (or pass -mem)")
		}
		st, err := pipeline.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		backing = st
	}

	where := "mem:"
	if ds, ok := backing.(*pipeline.DiskStore); ok {
		where = "dir:" + ds.Dir()
	}
	var evicting *pipeline.EvictingStore
	if *maxBytes > 0 {
		var pins []string
		for _, st := range strings.Split(*pinSpec, ",") {
			if st = strings.TrimSpace(st); st != "" {
				pins = append(pins, st)
			}
		}
		evicting = pipeline.NewEvictingStore(backing, *maxBytes, pins...)
		backing = evicting
		where = fmt.Sprintf("%s (LRU budget %d bytes)", where, *maxBytes)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rlibm-store: serving %s on %s\n", where, l.Addr())

	// Close the listener on SIGINT/SIGTERM; Serve drains and returns nil.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("rlibm-store: %v — draining\n", s)
		l.Close()
	}()

	var logf pipeline.Logf
	if *verbose {
		logf = log.Printf
	}
	opts := pipeline.ServeOptions{MaxConns: *maxConns, IdleTimeout: *idle}
	if err := pipeline.ServeWith(l, backing, opts, logf); err != nil {
		log.Fatal(err)
	}
	if err := backing.Audit(); err != nil {
		log.Fatalf("rlibm-store: post-run audit: %v", err)
	}
	if evicting != nil {
		st := evicting.Stats()
		fmt.Printf("rlibm-store: evictions=%d bytes_evicted=%d bytes_live=%d artifacts=%d\n",
			st.Evictions, st.BytesEvicted, st.BytesLive, st.Artifacts)
	}
	fmt.Println("rlibm-store: audit clean")
}
