// Command rlibm-fig4 regenerates Figure 4 of the paper: the speedup of
// RLIBM-Prog's bfloat16, tensorfloat32 and largest-format ("float")
// functions over (a) the glibc substitute, (b) the Intel substitute,
// (c) the CR-LIBM substitute and (d) the RLibm-All baseline.
//
// Timing follows the paper's methodology in spirit: for every function and
// format, the total time to compute the function over a fixed corpus of
// valid inputs, here measured with monotonic-clock batches instead of
// rdtscp cycles.
//
// By default the timed libraries come from the emitted internal/libm
// tables; with -generate they are generated through the staged pipeline,
// reusing the shared artifact cache (-cache-dir), so a table1 → table2 →
// fig4 sequence enumerates each function exactly once.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/obs"
)

const corpusSize = 4096

// corpus returns input values of format f drawn from the function's
// interesting domain (where the polynomial path runs; the same corpus is
// fed to every library).
func corpus(fn bigmath.Func, f fp.Format, rng *rand.Rand) []float64 {
	out := make([]float64, 0, corpusSize)
	for len(out) < corpusSize {
		var x float64
		switch fn {
		case bigmath.Ln, bigmath.Log2, bigmath.Log10:
			x = math.Ldexp(rng.Float64()+0.5, rng.Intn(200)-100)
		case bigmath.Exp, bigmath.Exp2, bigmath.Exp10:
			x = (rng.Float64()*2 - 1) * 70
		case bigmath.Sinh, bigmath.Cosh:
			x = (rng.Float64()*2 - 1) * 80
		default:
			x = (rng.Float64()*2 - 1) * 16
		}
		x = f.Decode(f.FromFloat64(x, fp.RoundNearestEven))
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		out = append(out, x)
	}
	return out
}

// timeIt measures ns/op of f over repeated batches.
func timeIt(f func()) float64 {
	// Warm up.
	f()
	best := math.Inf(1)
	for trial := 0; trial < 5; trial++ {
		n := 0
		start := time.Now()
		for time.Since(start) < 20*time.Millisecond {
			f()
			n++
		}
		perBatch := float64(time.Since(start).Nanoseconds()) / float64(n)
		if perBatch < best {
			best = perBatch
		}
	}
	return best / corpusSize
}

func main() {
	common := cli.Register(flag.CommandLine)
	generate := flag.Bool("generate", false, "generate the RLIBM libraries through the staged pipeline instead of using the emitted internal/libm tables")
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()
	rec := common.NewRecorder()
	seed := &common.Seed
	// Timing is serial; -workers pins GOMAXPROCS so runs stay comparable.
	runtime.GOMAXPROCS(common.Workers)

	progFor, baseFor := libm.Progressive, libm.RLibmAll
	largest, haveTables := libm.LargestFormat()
	if *generate {
		ctx, cancel := common.Context()
		defer cancel()
		ctx = obs.WithSpan(ctx, rec.Root())
		store, err := common.Store()
		if err != nil {
			log.Fatal(err)
		}
		defer common.CloseStore()
		progFor = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.ProgressiveOptions(false, nil), store)
			return res, err
		}
		baseFor = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.BaselineOptions(fn, nil), store)
			return res, err
		}
		largest = fp.MustFormat(common.Bits, 8)
	} else if !haveTables {
		fmt.Fprintln(os.Stderr, "no generated tables; run cmd/rlibm-gen -emit internal/libm first (or pass -generate)")
		os.Exit(1)
	}
	formats := []struct {
		name string
		f    fp.Format
	}{
		{"bfloat16", fp.Bfloat16},
		{"tensorfloat32", fp.TensorFloat32},
		{"float" + fmt.Sprint(largest.Bits()), largest},
	}
	type series struct {
		name    string
		speedup map[string][]float64 // format name → per-function speedups
	}
	comparators := []string{"glibc-sub (a)", "intel-sub (b)", "crlibm-sub (c)", "RLibm-All (d)"}
	kernelSeries := map[string][]float64{}
	results := map[string]*series{}
	for _, c := range comparators {
		results[c] = &series{name: c, speedup: map[string][]float64{}}
	}

	fmt.Println("Figure 4: speedup of RLIBM-Prog progressive functions over each comparator")
	fmt.Printf("%-7s %-14s %10s %10s | %10s %10s %10s %10s\n",
		"f(x)", "format", "ours ns/op", "kernel ns", "glibc", "intel", "crlibm", "rlibm-all")
	fmt.Println(strings.Repeat("-", 103))

	for _, fn := range bigmath.AllFuncs {
		prog, err := progFor(fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v: %v\n", fn, err)
			os.Exit(1)
		}
		base, err := baseFor(fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v: %v\n", fn, err)
			os.Exit(1)
		}
		ml := baseline.MathLibm{Fn: fn}
		ddl := baseline.DDLibm{Fn: fn}
		crl := baseline.CRLibm{Fn: fn}
		rng := rand.New(rand.NewSource(*seed ^ int64(fn)))
		for _, fc := range formats {
			xs := corpus(fn, fc.f, rng)
			li, _ := prog.LevelFor(fc.f)
			var sink uint64
			var fsink float64
			ours := timeIt(func() {
				for _, x := range xs {
					sink += evalBits(prog, x, li, fc.f)
				}
			})
			// Kernel-only timing (no final rounding): isolates the
			// progressive prefix-evaluation effect, which the shared
			// software rounding step otherwise dilutes. The paper's
			// hardware rounding makes its full-function numbers closer to
			// this column.
			kernel := timeIt(func() {
				for _, x := range xs {
					fsink += prog.EvalValue(x, li)
				}
			})
			_ = fsink
			tGlibc := timeIt(func() {
				for _, x := range xs {
					sink += fc.f.FromFloat64(ml.Value(x), fp.RoundNearestEven)
				}
			})
			tIntel := timeIt(func() {
				for _, x := range xs {
					sink += fc.f.FromFloat64(ddl.Value(x), fp.RoundNearestEven)
				}
			})
			tCr := timeIt(func() {
				for _, x := range xs {
					sink += fc.f.FromFloat64(crl.Value(x, fp.RoundNearestEven), fp.RoundNearestEven)
				}
			})
			tAll := timeIt(func() {
				for _, x := range xs {
					sink += evalBits(base, x, 0, fc.f)
				}
			})
			_ = sink
			sp := func(t float64) float64 { return (t - ours) / ours * 100 }
			fmt.Printf("%-7s %-14s %10.1f %10.1f | %9.0f%% %9.0f%% %9.0f%% %9.0f%%\n",
				fn, fc.name, ours, kernel, sp(tGlibc), sp(tIntel), sp(tCr), sp(tAll))
			kernelSeries[fc.name] = append(kernelSeries[fc.name], kernel)
			results["glibc-sub (a)"].speedup[fc.name] = append(results["glibc-sub (a)"].speedup[fc.name], sp(tGlibc))
			results["intel-sub (b)"].speedup[fc.name] = append(results["intel-sub (b)"].speedup[fc.name], sp(tIntel))
			results["crlibm-sub (c)"].speedup[fc.name] = append(results["crlibm-sub (c)"].speedup[fc.name], sp(tCr))
			results["RLibm-All (d)"].speedup[fc.name] = append(results["RLibm-All (d)"].speedup[fc.name], sp(tAll))
		}
	}

	fmt.Println(strings.Repeat("-", 103))
	fmt.Println("progressive kernel-only averages (ns/op):")
	for _, fc := range formats {
		fmt.Printf("  %-14s %6.1f\n", fc.name, mean(kernelSeries[fc.name]))
	}
	fmt.Println("averages (the paper's per-cluster 'avg.' bars):")
	for _, c := range comparators {
		fmt.Printf("  vs %-14s:", c)
		for _, fc := range formats {
			fmt.Printf("  %s %+.0f%%", fc.name, mean(results[c].speedup[fc.name]))
		}
		fmt.Println()
	}
	if err := common.FinishRun(rec, "rlibm-fig4"); err != nil {
		log.Fatal(err)
	}
}

func evalBits(res *gen.Result, x float64, li int, out fp.Format) uint64 {
	return res.Eval(x, li, out, fp.RoundNearestEven)
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
