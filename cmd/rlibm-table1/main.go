// Command rlibm-table1 regenerates Table 1 of the paper from the generated
// libraries: per function, the RLibm-All baseline's sub-domain count,
// degree, term count and coefficient storage against RLIBM-Prog's pieces,
// per-representation degrees and term counts, special-input counts,
// coefficient storage and the memory reduction factor.
//
// By default the table is rendered from the emitted tables in internal/libm.
// With -generate it generates both libraries on the fly through the staged
// pipeline, checkpointing every stage in the shared artifact cache
// (-cache-dir) — a warm cache skips the oracle-driven enumeration entirely,
// and sibling commands (rlibm-table2, rlibm-fig4 -generate) reuse the same
// artifacts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	common := cli.Register(flag.CommandLine)
	generate := flag.Bool("generate", false, "generate the libraries through the staged pipeline instead of using the emitted internal/libm tables")
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()
	rec := common.NewRecorder()

	prog, base := libm.Progressive, libm.RLibmAll
	if *generate {
		ctx, cancel := common.Context()
		defer cancel()
		ctx = obs.WithSpan(ctx, rec.Root())
		store, err := common.Store()
		if err != nil {
			log.Fatal(err)
		}
		defer common.CloseStore()
		logf := common.Logf()
		prog = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.ProgressiveOptions(false, logf), store)
			return res, err
		}
		base = func(fn bigmath.Func) (*gen.Result, error) {
			res, _, err := cli.GenerateVerified(ctx, fn, common.BaselineOptions(fn, logf), store)
			return res, err
		}
	} else {
		missing := false
		for _, fn := range bigmath.AllFuncs {
			if !libm.Have(fn) || !libm.HaveBaseline(fn) {
				fmt.Fprintf(os.Stderr, "missing generated tables for %v\n", fn)
				missing = true
			}
		}
		if missing {
			fmt.Fprintln(os.Stderr, "run: go run ./cmd/rlibm-gen -emit internal/libm && go run ./cmd/rlibm-gen -baseline -emit internal/libm (or pass -generate)")
			os.Exit(1)
		}
	}

	if err := report.Table1(os.Stdout, bigmath.AllFuncs, prog, base); err != nil {
		log.Fatal(err)
	}
	if err := common.FinishRun(rec, "rlibm-table1"); err != nil {
		log.Fatal(err)
	}
}
