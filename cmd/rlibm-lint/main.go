// Command rlibm-lint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: repo-specific determinism, precision
// and concurrency contracts that go vet cannot see. It is part of the
// tier-1 gate (`make check`).
//
// Usage:
//
//	rlibm-lint [-json] [-list] [packages]
//
// Packages default to ./... (the whole module). The exit status is 0 when
// the tree is clean, 1 when any analyzer reports a finding, and 2 on a
// load or type-check failure. Findings print as
//
//	file:line:col: [analyzer] message
//
// and can be suppressed in source with //lint:ignore <analyzer> <reason>
// (see the internal/analysis package documentation for the policy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rlibm-lint [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := analysis.Load(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ips := mod.Match(patterns)
	if len(ips) == 0 {
		fmt.Fprintf(os.Stderr, "rlibm-lint: no packages match %v\n", patterns)
		os.Exit(2)
	}

	// Load the whole module first: CoeffPath marking needs the full import
	// graph before the wallclock analyzer can run meaningfully.
	if _, err := mod.Packages(); err != nil {
		fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	for _, ip := range ips {
		pkg, err := mod.Package(ip)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, analysis.RunPackage(mod, pkg, analysis.All())...)
	}

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rlibm-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
