// Command rlibm-lint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: repo-specific determinism, precision
// and concurrency contracts that go vet cannot see. It is part of the
// tier-1 gate (`make check`).
//
// Usage:
//
//	rlibm-lint [-json] [-list] [-why] [-only names] [-skip names] [packages]
//
// Packages default to ./... (the whole module). The exit status is 0 when
// the tree is clean, 1 when any analyzer reports a finding, and 2 on a
// load or type-check failure. Findings print as
//
//	file:line:col: [analyzer] message
//
// and can be suppressed in source with //lint:ignore <analyzer> <reason>
// (see the internal/analysis package documentation for the policy).
//
// Interprocedural findings (nondetflow, ctxflow, escalated evalhot) carry a
// witness call path; -why prints it indented under the finding, and -json
// always includes it as a "path" array. -only and -skip take comma-separated
// analyzer names (-skip is applied after -only); stale-ignore detection only
// considers analyzers that actually ran, so narrowed runs never misreport
// suppressions of the analyzers they skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
		why     = flag.Bool("why", false, "print the witness call path under interprocedural findings")
		only    = flag.String("only", "", "comma-separated analyzer names to run exclusively")
		skip    = flag.String("skip", "", "comma-separated analyzer names to skip")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rlibm-lint [-json] [-list] [-why] [-only names] [-skip names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
		os.Exit(2)
	}

	mod, err := analysis.Load(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ips := mod.Match(patterns)
	if len(ips) == 0 {
		fmt.Fprintf(os.Stderr, "rlibm-lint: no packages match %v\n", patterns)
		os.Exit(2)
	}

	// Load the whole module first: CoeffPath marking needs the full import
	// graph before the wallclock analyzer can run meaningfully.
	if _, err := mod.Packages(); err != nil {
		fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	for _, ip := range ips {
		pkg, err := mod.Package(ip)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, analysis.RunPackage(mod, pkg, analyzers)...)
	}

	if *jsonOut {
		type jsonStep struct {
			Func string `json:"func"`
			File string `json:"file"`
			Line int    `json:"line"`
		}
		type jsonDiag struct {
			File     string     `json:"file"`
			Line     int        `json:"line"`
			Col      int        `json:"col"`
			Analyzer string     `json:"analyzer"`
			Message  string     `json:"message"`
			Path     []jsonStep `json:"path,omitempty"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			jd := jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message}
			for _, s := range d.Path {
				jd.Path = append(jd.Path, jsonStep{Func: s.Func, File: s.Pos.Filename, Line: s.Pos.Line})
			}
			out = append(out, jd)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "rlibm-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *why {
				for _, line := range d.Witness() {
					fmt.Println("\t" + line)
				}
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rlibm-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
