// Command rlibm-serve is the long-lived evaluation service: an HTTP/JSON
// endpoint plus a framed binary bulk endpoint answering correctly rounded
// evaluations of every generated function × format × rounding mode from
// the batched kernels of internal/eval.
//
// Tables come from the artifact store's verify artifacts when present
// (address them with the same -seed/-bits/-levels/-progressive-ro the
// generator ran with; worker counts never matter) and fall back per
// function to the coefficients baked into the binary. With
// -reload-interval the server polls the store and hot-reloads freshly
// regenerated tables after verifying them; a bad generation is rejected
// and the previous tables keep serving.
//
// Robustness is the point: a bounded admission queue sheds overload as
// typed 429s, per-request deadlines stop serving departed clients,
// panics are isolated to the request that caused them, and SIGINT/SIGTERM
// drains gracefully — stop admitting, finish in-flight requests, flush
// the observability report.
//
// Typical use:
//
//	rlibm-serve -listen :8080                            # builtin tables
//	rlibm-serve -listen :8080 -bulk-listen :8081 -report
//	rlibm-serve -store tcp://host:7070 -reload-interval 5s
//	curl -s localhost:8080/eval -d '{"func":"log2","format":"F16,8","inputs":[16256]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	common := cli.Register(flag.CommandLine)
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "TCP address of the HTTP/JSON endpoint")
		bulkListen = flag.String("bulk-listen", "", "TCP address of the framed binary bulk endpoint (empty disables)")
		queue      = flag.Int("queue", serve.DefaultQueue, "admission queue bound; requests beyond it are shed with HTTP 429")
		reqTimeout = flag.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request evaluation deadline (negative disables)")
		maxBatch   = flag.Int("max-batch", serve.DefaultMaxBatch, "maximum inputs in one request")
		reload     = flag.Duration("reload-interval", 0, "poll the store for regenerated tables this often and hot-reload them (0 disables)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests before closing connections")
		progRO     = flag.Bool("progressive-ro", false, "address store artifacts generated with -progressive-ro")
		levels     = flag.String("levels", "", "colon-separated explicit level list the store artifacts were generated with (overrides -bits)")
	)
	flag.Parse()
	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	if *queue < 1 {
		log.Fatalf("invalid -queue %d: must be at least 1 (the admission queue needs one slot)", *queue)
	}
	if *maxBatch < 1 {
		log.Fatalf("invalid -max-batch %d: must be at least 1", *maxBatch)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	rec := common.NewRecorder()
	store, err := common.Store()
	if err != nil {
		log.Fatal(err)
	}
	defer common.CloseStore()

	opt := common.ProgressiveOptions(*progRO, common.Logf())
	if *levels != "" {
		lv, err := cli.ParseLevels(*levels)
		if err != nil {
			log.Fatal(err)
		}
		opt.Levels = lv
	}

	var span *obs.Span
	if rec != nil {
		span = rec.Root()
	}
	srv, err := serve.New(serve.Config{
		Queue:          *queue,
		RequestTimeout: *reqTimeout,
		MaxBatch:       *maxBatch,
		Store:          store,
		Opt:            opt,
		ReloadInterval: *reload,
		Logf:           common.Logf(),
		Span:           span,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(*listen, *bulkListen); err != nil {
		log.Fatal(err)
	}
	ks := srv.KernelSet()
	fmt.Printf("rlibm-serve: http %s", srv.HTTPAddr())
	if a := srv.BulkAddr(); a != nil {
		fmt.Printf(" bulk %s", a)
	}
	fmt.Printf(" functions %d fingerprint %.12s…\n", len(ks.Functions()), ks.Fingerprint())

	// Drain on SIGINT/SIGTERM: stop admitting, finish in-flight requests,
	// then flush the observability report.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("rlibm-serve: %v — draining\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	failed := false
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("rlibm-serve: drain: %v", err)
		failed = true
	}
	if err := common.FinishRun(rec, "rlibm-serve"); err != nil {
		log.Print(err)
		failed = true
	}
	stopProfiles()
	if failed {
		os.Exit(1)
	}
	fmt.Println("rlibm-serve: drained")
}
