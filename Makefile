# Developer entry points. `make check` is the tier-1 gate: vet, build,
# rlibm-lint, and the full test suite under the race detector (the parallel
# pipeline makes -race part of the contract, not an optional extra). Each
# stage announces itself and fails fast so a red gate names its stage.

GO ?= go

.PHONY: check check-fault check-store check-serve check-campaign test race bench bench-parallel bench-pipeline bench-obs bench-eval bench-serve vet build lint lint-json report

check:
	@echo '== vet =='
	@$(MAKE) --no-print-directory vet
	@echo '== build =='
	@$(MAKE) --no-print-directory build
	@echo '== lint =='
	@$(MAKE) --no-print-directory lint
	@echo '== check-fault =='
	@$(MAKE) --no-print-directory check-fault
	@echo '== check-store =='
	@$(MAKE) --no-print-directory check-store
	@echo '== check-serve =='
	@$(MAKE) --no-print-directory check-serve
	@echo '== check-campaign =='
	@$(MAKE) --no-print-directory check-campaign
	@echo '== race =='
	@$(MAKE) --no-print-directory race
	@echo '== check: all stages passed =='

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# rlibm-lint enforces the repo-specific determinism, precision and
# concurrency contracts that go vet cannot see (see internal/analysis).
lint:
	$(GO) run ./cmd/rlibm-lint ./...

# Machine-readable findings (including interprocedural witness paths) for
# CI artifact upload and external tooling. Exit status is the linter's, so
# a red tree still fails; the JSON lands in rlibm-lint.json either way.
lint-json:
	$(GO) run ./cmd/rlibm-lint -json ./... > rlibm-lint.json

# The fault-injection matrix: every site × occurrence × worker count must
# recover bit-identically or fail with a typed fault.Error, and never leave
# the artifact cache corrupt (see internal/fault and DESIGN.md §8).
check-fault:
	$(GO) test -race -run 'Fault|Plan|Sites|Panic|Corrupt|Cancel|Audit|Error' \
		./internal/fault/ ./internal/cli/ ./internal/pipeline/ ./internal/parallel/

# The store/distribution gate: every backend (disk, memory, remote
# loopback) must generate bit-identical coefficients, a two-process
# shard-claim run must assemble byte-identically to a solo run, and every
# injected remote/claim fault must recover or fail typed (DESIGN.md §12).
# STORE_WORKERS overrides the distribution scenarios' worker count and
# STORE_FAULTS=off restricts the run to the fault-free scenarios — the CI
# loopback matrix drives both; RLIBM_STORE_ARTIFACTS (a directory) makes
# each scenario dump its post-run audit verdict and store event log there.
STORE_WORKERS ?= 2
STORE_FAULTS ?= on
STORE_RUN_on  = TestBackend|TestTwoProcessShardClaim|TestShard|TestSolveShard|TestEvictingStore|TestRemote|TestWire|TestServe|TestEventLog|TestSetFaults|TestRunRejectsEmptyKey|TestRunThroughRemote
STORE_RUN_off = TestBackendBitIdentity|TestBackendMatrixColdWarm|TestTwoProcessShardClaim|TestShardHeartbeat|TestShardDeadPeer|TestShardLivePeer|TestSolveShardDeterminism|TestSolveShardDeadPeer|TestEvictingStoreBudgetAndLRUOrder|TestEvictingStoreNeverEvictsClaims|TestEventLogConcurrency|TestWireRoundTrip|TestRunThroughRemoteMatchesDisk
check-store:
	RLIBM_STORE_WORKERS=$(STORE_WORKERS) $(GO) test -race -timeout 15m \
		-run '$(STORE_RUN_$(STORE_FAULTS))' ./internal/pipeline/ ./internal/cli/

# The serving gate: drain completes admitted requests bit-identically,
# overload sheds typed 429s with no goroutine leaks, hot reload never
# serves a mixed generation, and both endpoints answer libm's exact bits
# (DESIGN.md §13). Loopback only; -race is part of the contract.
check-serve:
	$(GO) test -race -timeout 10m ./internal/serve/

# The campaign gate, in two layers. First the in-process acceptance tests
# (peer-split byte-identity, killed-peer restart, warm resume, eviction
# pressure). Then the real thing: two rlibm-campaign worker processes
# against an rlibm-store peer with a deliberately tiny eviction budget —
# all race-instrumented — must report a CORRECT sweep, and rerunning the
# identical command against the still-warm store must report a resumed
# campaign. BENCH_campaign.json and campaign_report.json land in the repo
# root for CI to upload (DESIGN.md §14).
check-campaign:
	$(GO) test -race -timeout 10m ./internal/campaign/
	$(eval CAMPAIGN_DIR := $(shell mktemp -d))
	$(GO) build -race -o $(CAMPAIGN_DIR)/rlibm-store ./cmd/rlibm-store
	$(GO) build -race -o $(CAMPAIGN_DIR)/rlibm-campaign ./cmd/rlibm-campaign
	$(CAMPAIGN_DIR)/rlibm-store -listen 127.0.0.1:8095 -mem -max-bytes 4096 \
	  -pin-stages campaign-manifest & \
	  srv=$$!; \
	  sleep 1; \
	  $(CAMPAIGN_DIR)/rlibm-campaign -store tcp://127.0.0.1:8095 -peers 2 \
	    -funcs cospi -bits 12 -min-bits 10 -levels 10,12 \
	    -out BENCH_campaign.json -campaign-report campaign_report.json; \
	  first=$$?; \
	  $(CAMPAIGN_DIR)/rlibm-campaign -store tcp://127.0.0.1:8095 -peers 2 \
	    -funcs cospi -bits 12 -min-bits 10 -levels 10,12 \
	    -out '' -campaign-report '' > $(CAMPAIGN_DIR)/resume.out 2>&1; \
	  second=$$?; \
	  cat $(CAMPAIGN_DIR)/resume.out; \
	  grep -q 'campaign (resumed)' $(CAMPAIGN_DIR)/resume.out; resumed=$$?; \
	  kill -TERM $$srv; wait $$srv; drained=$$?; \
	  rm -rf $(CAMPAIGN_DIR); \
	  test $$first -eq 0 && test $$second -eq 0 && test $$resumed -eq 0 && test $$drained -eq 0

test:
	$(GO) test ./...

# The clarkson suite alone runs ~9 min under -race on one core; give the
# binary headroom over go test's 10-minute default so a loaded machine
# doesn't flake the gate.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Serial-vs-parallel scaling of the enumeration and verification pipelines.
bench-parallel:
	$(GO) test -bench 'Enumerate|VerifyExhaustive' -run '^$$' .

# Cold vs warm artifact-cache cost of the staged pipeline (the numbers
# behind BENCH_pipeline.json).
bench-pipeline:
	$(GO) test -bench 'Pipeline' -run '^$$' -benchtime 50x -count 3 .

# Observability overhead: the same pipeline with the obs layer disabled vs
# a live recorder (the numbers behind BENCH_obs.json).
bench-obs:
	$(GO) test -bench 'Pipeline' -run '^$$' -benchtime 50x -count 3 .
	$(GO) test -bench 'PipelineWarm' -run '^$$' -benchtime 500x -count 5 .

# Serving-layer cost: per-call Result.Eval vs the compiled batch kernel of
# internal/eval, truncated vs full evaluation (the numbers behind
# BENCH_eval.json).
bench-eval:
	$(GO) test -bench '^BenchmarkEval$$' -run '^$$' -benchtime 3000x -count 3 .

# Serving-service latency: start rlibm-serve on loopback, drive it with the
# closed-loop generator over the binary bulk endpoint, write p50/p90/p99
# into BENCH_serve.json, then SIGTERM the server and require a clean drain
# (the numbers behind BENCH_serve.json).
bench-serve:
	$(eval SERVE_DIR := $(shell mktemp -d))
	$(GO) build -o $(SERVE_DIR)/rlibm-serve ./cmd/rlibm-serve
	$(GO) build -o $(SERVE_DIR)/rlibm-bench-serve ./cmd/rlibm-bench-serve
	$(SERVE_DIR)/rlibm-serve -listen 127.0.0.1:8093 -bulk-listen 127.0.0.1:8094 & \
	  srv=$$!; \
	  sleep 1; \
	  $(SERVE_DIR)/rlibm-bench-serve -addr 127.0.0.1:8094 -bulk \
	    -func exp2 -format F16,8 -batch 256 -concurrency 4 -duration 5s \
	    -out BENCH_serve.json; \
	  bench=$$?; \
	  kill -TERM $$srv; wait $$srv; drained=$$?; \
	  rm -rf $(SERVE_DIR); \
	  test $$bench -eq 0 && test $$drained -eq 0

# Generate a small function with observability on and show the run report:
# the span tree renders to stderr (-v) and report.json lands next to the
# throwaway cache.
report:
	$(eval REPORT_DIR := $(shell mktemp -d))
	$(GO) run ./cmd/rlibm-gen -func cospi -levels F10,8:F12,8 \
		-cache-dir $(REPORT_DIR) -report -v
	@echo '== report.json =='
	@cat $(REPORT_DIR)/report.json
	@rm -rf $(REPORT_DIR)
