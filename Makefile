# Developer entry points. `make check` is the tier-1 gate: vet, build,
# and the full test suite under the race detector (the parallel pipeline
# makes -race part of the contract, not an optional extra).

GO ?= go

.PHONY: check test race bench bench-parallel vet build

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Serial-vs-parallel scaling of the enumeration and verification pipelines.
bench-parallel:
	$(GO) test -bench 'Enumerate|VerifyExhaustive' -run '^$$' .
