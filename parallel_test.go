package repro_test

import (
	"math"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/verify"
)

// TestParallelDeterminism is the contract test of the worker-pool pipeline:
// running the full generation and verification for the same seed with 1 and
// with 8 workers must produce bit-identical results — coefficients, piece
// boundaries, term counts, special-input tables, and verification reports.
// cospi exercises the hardest paths: the two-kernel affine split and the
// cross-level reduction-state dedup.
func TestParallelDeterminism(t *testing.T) {
	fn := bigmath.CosPi
	levels := []fp.Format{fp.MustFormat(12, 8), fp.MustFormat(16, 8)}
	generate := func(workers int) *gen.Result {
		res, err := gen.Generate(fn, gen.Options{Levels: levels, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if _, err := verify.Repair(res, oracle.New(fn), workers); err != nil {
			t.Fatalf("workers=%d repair: %v", workers, err)
		}
		return res
	}
	serial, parallel := generate(1), generate(8)

	if len(serial.Kernels) != len(parallel.Kernels) {
		t.Fatalf("kernel count: %d vs %d", len(serial.Kernels), len(parallel.Kernels))
	}
	for p := range serial.Kernels {
		ks, kp := serial.Kernels[p], parallel.Kernels[p]
		if len(ks.Pieces) != len(kp.Pieces) {
			t.Fatalf("kernel %d: %d vs %d pieces", p, len(ks.Pieces), len(kp.Pieces))
		}
		for pi := range ks.Pieces {
			ps, pp := ks.Pieces[pi], kp.Pieces[pi]
			if math.Float64bits(ps.Lo) != math.Float64bits(pp.Lo) ||
				math.Float64bits(ps.Hi) != math.Float64bits(pp.Hi) {
				t.Errorf("kernel %d piece %d bounds differ: [%v,%v] vs [%v,%v]",
					p, pi, ps.Lo, ps.Hi, pp.Lo, pp.Hi)
			}
			if len(ps.Coeffs) != len(pp.Coeffs) {
				t.Fatalf("kernel %d piece %d: %d vs %d coeffs", p, pi, len(ps.Coeffs), len(pp.Coeffs))
			}
			for ci := range ps.Coeffs {
				if math.Float64bits(ps.Coeffs[ci]) != math.Float64bits(pp.Coeffs[ci]) {
					t.Errorf("kernel %d piece %d coeff %d: %x vs %x",
						p, pi, ci, math.Float64bits(ps.Coeffs[ci]), math.Float64bits(pp.Coeffs[ci]))
				}
			}
		}
	}
	for li := range serial.Levels {
		ts, tp := serial.TermsAt(li), parallel.TermsAt(li)
		if len(ts) != len(tp) {
			t.Fatalf("level %d terms: %v vs %v", li, ts, tp)
		}
		for i := range ts {
			if ts[i] != tp[i] {
				t.Errorf("level %d terms: %v vs %v", li, ts, tp)
			}
		}
		ss, sp := serial.Specials[li], parallel.Specials[li]
		if len(ss) != len(sp) {
			t.Fatalf("level %d: %d vs %d specials", li, len(ss), len(sp))
		}
		for i := range ss {
			if math.Float64bits(ss[i].X) != math.Float64bits(sp[i].X) || ss[i].Proxy != sp[i].Proxy {
				t.Errorf("level %d special %d: (%v,%#x) vs (%v,%#x)",
					li, i, ss[i].X, ss[i].Proxy, sp[i].X, sp[i].Proxy)
			}
		}
	}

	// Verification reports of the clean implementation must agree too, and
	// both must be correct.
	orc := oracle.New(fn)
	for li, modes := range [][]fp.Mode{{fp.RoundNearestEven}, fp.StandardModes} {
		rs := verify.ExhaustiveLevel(serial, orc, li, modes, 1)
		rp := verify.ExhaustiveLevel(parallel, orc, li, modes, 8)
		for i := range rs {
			if !rs[i].Correct() {
				t.Errorf("serial: %v", rs[i])
			}
			if rs[i].Checked != rp[i].Checked || len(rs[i].Mismatches) != len(rp[i].Mismatches) {
				t.Errorf("level %d report %d differs: %v vs %v", li, i, rs[i], rp[i])
			}
		}
	}

	// Mismatch lists must merge in input order for any worker count: check
	// with a deliberately broken implementation against both settings.
	f := serial.Levels[0]
	bs := verify.Exhaustive(alwaysWrong{}, orc, f, []fp.Mode{fp.RoundNearestEven}, 1)
	bp := verify.Exhaustive(alwaysWrong{}, orc, f, []fp.Mode{fp.RoundNearestEven}, 8)
	if len(bs[0].Mismatches) == 0 {
		t.Fatal("broken implementation produced no mismatches")
	}
	if len(bs[0].Mismatches) != len(bp[0].Mismatches) {
		t.Fatalf("mismatch counts differ: %d vs %d", len(bs[0].Mismatches), len(bp[0].Mismatches))
	}
	for i := range bs[0].Mismatches {
		if bs[0].Mismatches[i] != bp[0].Mismatches[i] {
			t.Fatalf("mismatch %d differs: %#x vs %#x", i, bs[0].Mismatches[i], bp[0].Mismatches[i])
		}
	}
}

// alwaysWrong maps every input to the bit pattern after the correct one,
// guaranteeing a dense mismatch list for merge-order checking.
type alwaysWrong struct{}

func (alwaysWrong) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return out.NextUp(out.FromFloat64(x, mode))
}

// TestParallelRaceSmoke runs the full pipeline — enumerate, solve, repair,
// verify — with 4 workers on a small format; under `go test -race` this
// sweeps the shared oracle, the worker pool and the sharded merge for data
// races. sinpi covers the dedup prepass and two-kernel path, exp2 the
// monotone inversion path.
func TestParallelRaceSmoke(t *testing.T) {
	levels := []fp.Format{fp.MustFormat(10, 8)}
	for _, fn := range []bigmath.Func{bigmath.Exp2, bigmath.SinPi} {
		orc := oracle.New(fn)
		res, err := gen.Generate(fn, gen.Options{Levels: levels, Seed: 2, Workers: 4, Oracle: orc})
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		if _, err := verify.Repair(res, orc, 4); err != nil {
			t.Fatalf("%v repair: %v", fn, err)
		}
		for _, rep := range verify.Exhaustive(verify.NewGenImpl(res), orc, levels[0], fp.StandardModes, 4) {
			if !rep.Correct() {
				t.Errorf("%v: %v", fn, rep)
			}
		}
	}
}
