package remez

import (
	"math"
	"testing"
)

func TestConstantAndLinear(t *testing.T) {
	// Minimax degree-0 fit of x over [0,1] is 1/2 with error 1/2.
	r, err := Approximate(func(x float64) float64 { return x }, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Coeffs[0]-0.5) > 1e-9 || math.Abs(r.MaxErr-0.5) > 1e-9 {
		t.Errorf("degree-0 fit of x: %+v", r)
	}
	// Degree-1 fit of x is exact.
	r, err = Approximate(func(x float64) float64 { return 3*x - 1 }, -1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxErr > 1e-12 || math.Abs(r.Eval(1.5)-3.5) > 1e-9 {
		t.Errorf("linear fit: %+v", r)
	}
}

// The classical benchmark: minimax linear fit of e^x on [0,1] has error
// (e-1)/2 - 1/2·(1 + ln((e-1)/1))·… — check against the known value
// ≈ 0.105933. (Cheney, Introduction to Approximation Theory.)
func TestExpLinearKnownError(t *testing.T) {
	r, err := Approximate(math.Exp, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const want = 0.105933
	if math.Abs(r.MaxErr-want) > 2e-4 {
		t.Errorf("minimax error %.6f, want ≈ %.6f", r.MaxErr, want)
	}
}

// Error must decrease geometrically with degree until the exchange's
// float64 noise floor (~1e-10 relative to the function scale); the
// generation experiments only need thresholds around 1e-5..1e-7.
func TestErrorDecreasesWithDegree(t *testing.T) {
	f := func(x float64) float64 { return math.Log2(1 + x) }
	prev := math.Inf(1)
	for d := 0; d <= 3; d++ {
		r, err := Approximate(f, 0, 1.0/128, d)
		if err != nil {
			t.Fatalf("degree %d: %v", d, err)
		}
		if r.MaxErr >= prev/4 {
			t.Errorf("degree %d error %.3g did not improve enough on %.3g", d, r.MaxErr, prev)
		}
		prev = r.MaxErr
	}
	if prev > 1e-10 {
		t.Errorf("degree-3 error on the log2 reduced domain is %.3g", prev)
	}
}

// Equioscillation property: the achieved error alternates and its extremal
// magnitudes are close to level.
func TestEquioscillation(t *testing.T) {
	f := math.Sin
	r, err := Approximate(f, 0, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	evalErr := func(x float64) float64 { return r.Eval(x) - f(x) }
	// Scan for extrema magnitudes.
	const grid = 20000
	maxAbs := 0.0
	for i := 0; i <= grid; i++ {
		x := 0 + 1.5*float64(i)/grid
		if a := math.Abs(evalErr(x)); a > maxAbs {
			maxAbs = a
		}
	}
	if math.Abs(maxAbs-r.MaxErr)/r.MaxErr > 0.01 {
		t.Errorf("reported MaxErr %.3g vs scanned %.3g", r.MaxErr, maxAbs)
	}
	// Endpoints of an equioscillating fit carry near-extremal error.
	if math.Abs(evalErr(0)) < 0.5*r.MaxErr || math.Abs(evalErr(1.5)) < 0.5*r.MaxErr {
		t.Errorf("endpoint errors not extremal: %g %g (level %g)",
			evalErr(0), evalErr(1.5), r.MaxErr)
	}
}

func TestDegreeFor(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) }
	d := DegreeFor(f, -0.006, 0.006, 1e-12, 8)
	if d < 2 || d > 5 {
		t.Errorf("degree for exp on the reduced domain: %d", d)
	}
	if DegreeFor(f, 0, 1, 1e-300, 3) != 4 {
		t.Error("unreachable target should report maxDegree+1")
	}
}

func TestBadArguments(t *testing.T) {
	if _, err := Approximate(math.Exp, 1, 0, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := Approximate(math.Exp, 0, 1, -1); err == nil {
		t.Error("negative degree accepted")
	}
}
