// Package remez implements the Remez exchange algorithm for minimax
// polynomial approximation — the classical technique behind CR-LIBM's
// polynomials (§2.2 of the paper: "A commonly used mini-max approximation
// is the Remez algorithm").
//
// Its role in this repository is the paper's motivating comparison: the
// RLibm approach approximates the *correctly rounded result* and therefore
// gets away with lower-degree polynomials than a minimax approximation of
// the *real value* needs for the same correctness target (§2.3: "this
// amount of freedom ... is much larger than the one with the minimax
// approach"). BenchmarkMinimaxDegree in the repository root quantifies
// that on the real reduced domains.
package remez

import (
	"errors"
	"math"
)

// Result is a minimax approximation over [A, B] with equioscillating error
// MaxErr. The coefficients live in the normalized basis t = (x-Mid)/Half ∈
// [-1, 1] (which keeps the exchange system well conditioned on the tiny
// reduced domains); use Eval to apply the polynomial to x.
type Result struct {
	Coeffs    []float64
	MaxErr    float64
	A, B      float64
	Mid, Half float64
	Iters     int
}

// Eval evaluates the approximation at x ∈ [A, B].
func (r Result) Eval(x float64) float64 {
	t := (x - r.Mid) / r.Half
	p := 0.0
	for j := len(r.Coeffs) - 1; j >= 0; j-- {
		p = p*t + r.Coeffs[j]
	}
	return p
}

// ErrSingular reports a degenerate exchange system (typically degree too
// high for the working precision).
var ErrSingular = errors.New("remez: singular exchange system")

// Approximate runs the Remez exchange for f over [a, b] with the given
// polynomial degree. f must be smooth on [a, b]. The iteration stops when
// the extremal errors agree to a relative 1e-9, or after 64 exchanges.
// The float64 exchange arithmetic floors the achievable error around
// 1e-10 of the function's scale — far below the rounding-interval widths
// the comparison experiments ask about.
func Approximate(f func(float64) float64, a, b float64, degree int) (Result, error) {
	if degree < 0 || b <= a {
		return Result{}, errors.New("remez: bad arguments")
	}
	n := degree + 2 // equioscillation points
	mid, half := (a+b)/2, (b-a)/2
	g := func(t float64) float64 { return f(mid + half*t) }

	// Chebyshev-node initialization on the normalized domain.
	pts := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = math.Cos(math.Pi * float64(n-1-i) / float64(n-1))
	}

	var res Result
	res.A, res.B = a, b
	res.Mid, res.Half = mid, half
	for iter := 0; iter < 64; iter++ {
		res.Iters = iter + 1
		coeffs, e, err := solveExchange(g, pts, degree)
		if err != nil {
			return Result{}, err
		}
		res.Coeffs = coeffs

		// Locate the extrema of the error on a dense grid and exchange.
		newPts, maxAbs := extrema(g, coeffs, -1, 1, n)
		res.MaxErr = maxAbs
		if len(newPts) == n {
			pts = newPts
		}
		// Convergence: leveled error.
		if maxAbs <= math.Abs(e)*(1+1e-9)+1e-300 {
			return res, nil
		}
	}
	return res, nil
}

// solveExchange solves the linear system P(x_i) + (-1)^i E = f(x_i) for the
// degree+1 coefficients and the leveled error E.
func solveExchange(f func(float64) float64, pts []float64, degree int) ([]float64, float64, error) {
	n := len(pts)
	m := make([][]float64, n)
	rhs := make([]float64, n)
	for i, x := range pts {
		row := make([]float64, n)
		p := 1.0
		for j := 0; j <= degree; j++ {
			row[j] = p
			p *= x
		}
		if i%2 == 0 {
			row[degree+1] = 1
		} else {
			row[degree+1] = -1
		}
		m[i] = row
		rhs[i] = f(x)
	}
	sol, err := solveLinear(m, rhs)
	if err != nil {
		return nil, 0, err
	}
	return sol[:degree+1], sol[degree+1], nil
}

// solveLinear is Gaussian elimination with partial pivoting.
func solveLinear(m [][]float64, rhs []float64) ([]float64, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-300 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			fct := m[r][col] * inv
			if fct == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= fct * m[col][c]
			}
			rhs[r] -= fct * rhs[col]
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := rhs[r]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * out[c]
		}
		out[r] = s / m[r][r]
	}
	return out, nil
}

// extrema scans the error function on a dense grid and returns up to n
// alternating local extrema (including the endpoints), plus the maximum
// absolute error seen.
func extrema(f func(float64) float64, coeffs []float64, a, b float64, n int) ([]float64, float64) {
	const grid = 4096
	err := func(x float64) float64 {
		p := 0.0
		for j := len(coeffs) - 1; j >= 0; j-- {
			p = p*x + coeffs[j]
		}
		return p - f(x)
	}
	type ext struct {
		x, e float64
	}
	var exts []ext
	prevX, prevE := a, err(a)
	maxAbs := math.Abs(prevE)
	exts = append(exts, ext{a, prevE})
	rising := true
	for i := 1; i <= grid; i++ {
		x := a + (b-a)*float64(i)/grid
		e := err(x)
		if math.Abs(e) > maxAbs {
			maxAbs = math.Abs(e)
		}
		// Track local extrema of the signed error.
		if i > 1 {
			if rising && e < prevE || !rising && e > prevE {
				exts = append(exts, ext{prevX, prevE})
				rising = !rising
			}
		} else {
			rising = e >= prevE
		}
		prevX, prevE = x, e
	}
	exts = append(exts, ext{b, prevE})

	// Keep the n extrema with alternating signs and largest magnitudes:
	// greedy pass preserving alternation.
	var picked []ext
	for _, c := range exts {
		if len(picked) == 0 {
			picked = append(picked, c)
			continue
		}
		last := &picked[len(picked)-1]
		if (last.e >= 0) == (c.e >= 0) {
			if math.Abs(c.e) > math.Abs(last.e) {
				*last = c
			}
		} else {
			picked = append(picked, c)
		}
	}
	// Trim to the n largest consecutive alternating points.
	for len(picked) > n {
		// Drop the smaller of the two ends.
		if math.Abs(picked[0].e) < math.Abs(picked[len(picked)-1].e) {
			picked = picked[1:]
		} else {
			picked = picked[:len(picked)-1]
		}
	}
	if len(picked) != n {
		return nil, maxAbs
	}
	out := make([]float64, n)
	for i, c := range picked {
		out[i] = c.x
	}
	return out, maxAbs
}

// DegreeFor returns the smallest degree ≤ maxDegree whose minimax error is
// below target, or maxDegree+1 when none reaches it.
func DegreeFor(f func(float64) float64, a, b float64, target float64, maxDegree int) int {
	for d := 0; d <= maxDegree; d++ {
		r, err := Approximate(f, a, b, d)
		if err == nil && r.MaxErr <= target {
			return d
		}
	}
	return maxDegree + 1
}
