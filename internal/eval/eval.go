// Package eval is the batched hot-path evaluation layer of the generated
// library: the serving-side counterpart of internal/gen's reference
// evaluator. Compile does every per-(function, format, mode) decision once
// — serving-level resolution, truncated term counts, piece boundaries and
// coefficient prefixes snapshotted into flat contiguous arrays, the
// range-reduction scheme devirtualized (reduction.Lowered), the rounding
// constants precomputed (fp.Rounder), and the special-input table rebuilt
// as an open-addressed bit-pattern hash — so Kernel.EvalBatch amortizes all
// of it over slices with zero allocations, zero interface calls and no
// binary search in the loop.
//
// Correctness contract: for every input x of the compiled level's format,
// EvalBatch produces exactly the bits gen.Result.Eval produces — the
// reference path stays the specification, the kernel is the optimization.
// The exhaustive and randomized equivalence tests in eval_test.go pin the
// contract; the evalhot analyzer of rlibm-lint pins the hot-loop
// restrictions statically.
package eval

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/reduction"
)

// ErrTooWide reports a requested output format wider than the largest
// generated level; matchable with errors.Is.
var ErrTooWide = errors.New("output format wider than the generated levels")

// flatPoly is one kernel polynomial flattened for the hot loop: the
// truncated coefficient prefixes of every piece concatenated into one
// contiguous array, piece upper bounds in a parallel slice (pieces are
// consecutive, so a short forward scan replaces gen's binary search — the
// generator caps pieces at 4), and the monomial structure lowered to two
// booleans.
type flatPoly struct {
	bounds []float64 // pieces[i] owns r < bounds[i]; the last piece owns the rest
	coeffs []float64 // concatenated truncated coefficient prefixes
	off    []int     // piece i's coefficients are coeffs[off[i]:off[i+1]]
	square bool      // stride-2 structure: Horner runs on r²
	odd    bool      // offset-1 structure: result multiplied by r
}

// eval evaluates the flattened polynomial at the reduced input r, exactly
// as poly.Structure.Eval evaluates the truncated prefix: same piece
// selection rule, same Horner order, term for term.
//
//evalhot:loop
func (f *flatPoly) eval(r float64) float64 {
	i := 0
	for i < len(f.bounds)-1 && r >= f.bounds[i] {
		i++
	}
	c := f.coeffs[f.off[i]:f.off[i+1]]
	u := r
	if f.square {
		u = r * r
	}
	var v float64
	if n := len(c); n > 0 {
		v = c[n-1]
		for j := n - 2; j >= 0; j-- {
			v = v*u + c[j]
		}
	}
	if f.odd {
		v = r * v
	}
	return v
}

// specialEmpty is the empty-slot sentinel of the special-input hash table:
// the bit pattern of +0, which can never key a special entry (every special
// input passed Reduce as a regular value, and ±0/NaN/±∞ never do).
const specialEmpty = 0

// specialTable is the branch-free replacement for gen's per-call
// sort.Search over the special-input list: an open-addressed, linearly
// probed hash table keyed on input bit patterns, sized to a power of two at
// most half full, so lookups terminate in a couple of data-dependent probes
// with no comparisons against NaN-hostile float keys.
type specialTable struct {
	mask uint64
	keys []uint64
	vals []float64
}

// specialHash mixes the input bit pattern (the 64-bit finalizer of
// MurmurHash3 — deterministic, seedless, and uniform enough for tables of a
// few dozen keys).
func specialHash(b uint64) uint64 {
	b ^= b >> 33
	b *= 0xff51afd7ed558ccd
	b ^= b >> 33
	b *= 0xc4ceb9fe1a85ec53
	b ^= b >> 33
	return b
}

// buildSpecials compiles one level's special-input list into a hash table.
func buildSpecials(sp []gen.SpecialInput) (specialTable, error) {
	size := 1
	for size < 2*len(sp) {
		size <<= 1
	}
	t := specialTable{
		mask: uint64(size - 1),
		keys: make([]uint64, size),
		vals: make([]float64, size),
	}
	for _, s := range sp {
		bits := math.Float64bits(s.X)
		if bits == specialEmpty || math.IsNaN(s.X) || math.IsInf(s.X, 0) {
			return specialTable{}, fmt.Errorf("eval: special-input key %v is not a regular input", s.X)
		}
		i := specialHash(bits) & t.mask
		for t.keys[i] != specialEmpty && t.keys[i] != bits {
			i = (i + 1) & t.mask
		}
		t.keys[i] = bits
		t.vals[i] = s.Proxy
	}
	return t, nil
}

// lookup returns the proxy for the input bit pattern, if present. At most
// half the slots are occupied, so the probe loop always terminates at an
// empty slot.
//
//evalhot:loop
func (t *specialTable) lookup(bits uint64) (float64, bool) {
	i := specialHash(bits) & t.mask
	for {
		k := t.keys[i]
		if k == bits {
			return t.vals[i], true
		}
		if k == specialEmpty {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// Kernel is one compiled (function, level, output format, rounding mode)
// evaluator. A Kernel is immutable after Compile and safe for concurrent
// EvalBatch calls; attach an observability span with Observe before sharing
// it across goroutines.
type Kernel struct {
	fn        bigmath.Func
	out       fp.Format
	mode      fp.Mode
	level     int
	truncated bool
	numPolys  int
	red       reduction.Lowered
	rnd       fp.Rounder
	polys     [2]flatPoly
	specials  specialTable
	sp        *obs.Span
}

// Compile builds the batch kernel serving (fn=res.Fn, out, mode): the level
// is res.ServingLevel(out, mode) — the truncated progressive prefix when
// the guarantee covers (out, mode), the largest level's full polynomial
// otherwise. Fails with ErrTooWide (wrapped) when out exceeds the generated
// ladder.
func Compile(res *gen.Result, out fp.Format, mode fp.Mode) (*Kernel, error) {
	if res == nil {
		return nil, errors.New("eval: nil result")
	}
	li, ok := res.ServingLevel(out, mode)
	if !ok {
		return nil, fmt.Errorf("eval: %v: %v exceeds largest level %v: %w",
			res.Fn, out, res.Levels[len(res.Levels)-1], ErrTooWide)
	}
	return CompileAt(res, li, out, mode)
}

// CompileAt builds the batch kernel evaluating level li's term counts and
// special table, rounding into out under mode. Compile (which resolves the
// certified level) is the normal entry point; CompileAt additionally lets
// benchmarks and experiments pin a level — e.g. forcing the largest level's
// full polynomial for a truncated-vs-full comparison on the same table.
// Inputs handed to EvalBatch must be values of level li's format (which
// every value of out is, whenever li came from ServingLevel).
func CompileAt(res *gen.Result, li int, out fp.Format, mode fp.Mode) (*Kernel, error) {
	if res == nil {
		return nil, errors.New("eval: nil result")
	}
	if li < 0 || li >= len(res.Levels) {
		return nil, fmt.Errorf("eval: level %d out of range [0,%d)", li, len(res.Levels))
	}
	if n := len(res.Kernels); n < 1 || n > 2 {
		return nil, fmt.Errorf("eval: %d kernel polynomials (want 1 or 2)", len(res.Kernels))
	}
	k := &Kernel{
		fn:        res.Fn,
		out:       out,
		mode:      mode,
		level:     li,
		truncated: li < len(res.Levels)-1,
		numPolys:  len(res.Kernels),
		red:       reduction.Lower(res.Fn),
		rnd:       fp.NewRounder(out, mode),
	}
	for pi := range res.Kernels {
		flat, err := flatten(&res.Kernels[pi], li)
		if err != nil {
			return nil, fmt.Errorf("eval: %v kernel %d: %w", res.Fn, pi, err)
		}
		k.polys[pi] = flat
	}
	st, err := buildSpecials(res.Specials[li])
	if err != nil {
		return nil, err
	}
	k.specials = st
	return k, nil
}

// flatten snapshots one kernel polynomial's pieces at level li.
func flatten(kp *gen.KernelPoly, li int) (flatPoly, error) {
	s := kp.Structure
	if s.Stride < 1 || s.Stride > 2 || s.Offset < 0 || s.Offset > 1 {
		return flatPoly{}, fmt.Errorf("unsupported structure %+v", s)
	}
	if len(kp.Pieces) == 0 {
		return flatPoly{}, errors.New("no pieces")
	}
	f := flatPoly{
		square: s.Stride == 2,
		odd:    s.Offset == 1,
		off:    make([]int, 1, len(kp.Pieces)+1),
	}
	for _, p := range kp.Pieces {
		if li >= len(p.LevelTerms) {
			return flatPoly{}, fmt.Errorf("piece has %d level term counts, level %d requested", len(p.LevelTerms), li)
		}
		terms := p.LevelTerms[li]
		if terms > len(p.Coeffs) {
			terms = len(p.Coeffs) // HornerTerms clamps the same way
		}
		f.coeffs = append(f.coeffs, p.Coeffs[:terms]...)
		f.off = append(f.off, len(f.coeffs))
		f.bounds = append(f.bounds, p.Hi)
	}
	return f, nil
}

// Func identifies the compiled elementary function.
func (k *Kernel) Func() bigmath.Func { return k.fn }

// Format returns the output format results are rounded into.
func (k *Kernel) Format() fp.Format { return k.out }

// Mode returns the rounding mode results are rounded under.
func (k *Kernel) Mode() fp.Mode { return k.mode }

// Level returns the progressive level the kernel evaluates.
func (k *Kernel) Level() int { return k.level }

// Truncated reports whether the kernel evaluates a truncated progressive
// prefix (a level below the largest) rather than the full polynomial.
func (k *Kernel) Truncated() bool { return k.truncated }

// Observe attaches an observability span: every subsequent EvalBatch
// records the eval.* counters onto it, once per batch. Call before sharing
// the kernel across goroutines (the field itself is unsynchronized; the
// span's own methods are concurrency-safe and nil-safe).
func (k *Kernel) Observe(sp *obs.Span) { k.sp = sp }

// EvalBatch evaluates fn over src, writing one output bit pattern per input
// into dst (which must be at least as long as src). Inputs must be values
// of the compiled level's format. The loop allocates nothing, calls no
// interface method and searches no table — the per-input work is range
// reduction, a hash probe, structured Horner over the truncated prefix,
// output compensation and precompiled rounding, fused per function.
//
// Bit contract: dst[i] == res.Eval(src[i], Level(), Format(), Mode()) for
// every i.
func (k *Kernel) EvalBatch(dst []uint64, src []float64) {
	if len(dst) < len(src) {
		panic("eval: dst shorter than src")
	}
	specials, polys := k.evalLoop(dst, src)
	sp := k.sp
	sp.Add(obs.CtrEvalBatches, 1)
	sp.Add(obs.CtrEvalInputs, int64(len(src)))
	sp.Add(obs.CtrEvalSpecialHits, specials)
	if k.truncated {
		sp.Add(obs.CtrEvalTruncated, polys)
	} else {
		sp.Add(obs.CtrEvalFull, polys)
	}
}

// Eval evaluates one input through the batch path (tests, spot checks; the
// batch entry point is the product).
func (k *Kernel) Eval(x float64) uint64 {
	var src [1]float64
	var dst [1]uint64
	src[0] = x
	k.evalLoop(dst[:], src[:])
	return dst[0]
}

// evalLoop is the batch hot loop. The evalhot analyzer of rlibm-lint
// enforces its restrictions statically: no allocating expressions, no
// interface method calls, no sort.Search, no big.Float. Counters are
// tallied into locals and recorded by the caller after the loop.
//
//evalhot:loop
func (k *Kernel) evalLoop(dst []uint64, src []float64) (specials, polys int64) {
	for i, x := range src {
		ctx, regular := k.red.Reduce(x)
		if !regular {
			dst[i] = k.rnd.Round(k.red.Special(x))
			specials++
			continue
		}
		if proxy, ok := k.specials.lookup(math.Float64bits(x)); ok {
			dst[i] = k.rnd.Round(proxy)
			specials++
			continue
		}
		y0 := k.polys[0].eval(ctx.R)
		var y1 float64
		if k.numPolys > 1 {
			y1 = k.polys[1].eval(ctx.R)
		}
		dst[i] = k.rnd.Round(k.red.Compensate(ctx, y0, y1))
		polys++
	}
	return specials, polys
}

// ctxChunk bounds how many inputs EvalBatchCtx evaluates between context
// checks: large enough that the per-chunk ctx.Err() load is amortized to
// nothing, small enough that a canceled request stops within tens of
// microseconds.
const ctxChunk = 4096

// EvalBatchCtx is EvalBatch with a cancellation point between chunks: the
// serving layer propagates per-request deadlines through it, so a request
// whose client went away (or whose deadline passed) stops mid-batch instead
// of burning the rest of the slice. Outputs written before cancellation are
// valid; the returned error is ctx.Err(). The chunk loop lives outside the
// //evalhot:loop region — the hot loop itself stays branch-free.
func (k *Kernel) EvalBatchCtx(ctx context.Context, dst []uint64, src []float64) error {
	if len(dst) < len(src) {
		panic("eval: dst shorter than src")
	}
	for len(src) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := len(src)
		if n > ctxChunk {
			n = ctxChunk
		}
		k.EvalBatch(dst[:n], src[:n])
		dst, src = dst[n:], src[n:]
	}
	return nil
}
