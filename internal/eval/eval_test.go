package eval_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/eval"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/obs"
)

// compileFor compiles the serving kernel of (fn, out, mode) from the
// registered progressive tables, skipping when tables are missing.
func compileFor(t testing.TB, fn bigmath.Func, out fp.Format, mode fp.Mode) (*gen.Result, *eval.Kernel, int) {
	t.Helper()
	res, err := libm.Progressive(fn)
	if err != nil {
		t.Skip(err)
	}
	li, ok := res.ServingLevel(out, mode)
	if !ok {
		t.Fatalf("%v: no serving level for %v/%v", fn, out, mode)
	}
	k, err := eval.Compile(res, out, mode)
	if err != nil {
		t.Fatalf("Compile(%v, %v, %v): %v", fn, out, mode, err)
	}
	if k.Level() != li || k.Format() != out || k.Mode() != mode || k.Func() != fn {
		t.Fatalf("%v: kernel metadata mismatch: level %d want %d", fn, k.Level(), li)
	}
	return res, k, li
}

// TestEvalBatchMatchesReferenceExhaustive is the acceptance sweep: for all
// ten functions × all five standard rounding modes, every bfloat16 bit
// pattern evaluated through the batch kernel must be bit-identical to the
// per-call reference path gen.Result.Eval at the same serving level.
func TestEvalBatchMatchesReferenceExhaustive(t *testing.T) {
	out := fp.Bfloat16
	n := out.NumValues()
	src := make([]float64, n)
	dst := make([]uint64, n)
	for _, fn := range bigmath.AllFuncs {
		for _, mode := range fp.StandardModes {
			res, k, li := compileFor(t, fn, out, mode)
			for b := uint64(0); b < n; b++ {
				src[b] = out.Decode(b)
			}
			k.EvalBatch(dst, src)
			for b := uint64(0); b < n; b++ {
				if want := res.Eval(src[b], li, out, mode); dst[b] != want {
					t.Fatalf("%v/%v: input bits %#x (%x): batch %#x, reference %#x",
						fn, mode, b, src[b], dst[b], want)
				}
			}
		}
	}
}

// TestEvalBatchMatchesReferenceRandomized cross-checks the larger formats —
// tensorfloat32 and the largest generated level — on random bit patterns
// plus the format's edge patterns, under all five standard modes.
func TestEvalBatchMatchesReferenceRandomized(t *testing.T) {
	largest, ok := libm.LargestFormat()
	if !ok {
		t.Skip("generated tables missing; run cmd/rlibm-gen -emit internal/libm")
	}
	rng := rand.New(rand.NewSource(23))
	for _, out := range []fp.Format{fp.TensorFloat32, largest} {
		edges := []uint64{
			0, out.Zero(true), out.MinSubnormal(), out.MaxFinite(),
			out.Inf(false), out.Inf(true), out.NaN(),
			out.Zero(true) | out.MinSubnormal(), out.Zero(true) | out.MaxFinite(),
		}
		var bits []uint64
		bits = append(bits, edges...)
		for i := 0; i < 20000; i++ {
			bits = append(bits, rng.Uint64()%out.NumValues())
		}
		src := make([]float64, len(bits))
		dst := make([]uint64, len(bits))
		for _, fn := range bigmath.AllFuncs {
			for _, mode := range fp.StandardModes {
				res, k, li := compileFor(t, fn, out, mode)
				for i, b := range bits {
					src[i] = out.Decode(b)
				}
				k.EvalBatch(dst, src)
				for i := range bits {
					if want := res.Eval(src[i], li, out, mode); dst[i] != want {
						t.Fatalf("%v/%v/%v: input bits %#x: batch %#x, reference %#x",
							fn, out, mode, bits[i], dst[i], want)
					}
				}
			}
		}
	}
}

// TestEvalBatchSpecialTable pins the hash classifier against the reference
// sort.Search: every special-table input of every level must take the
// special path in the batch kernel and answer with the same bits.
func TestEvalBatchSpecialTable(t *testing.T) {
	for _, fn := range bigmath.AllFuncs {
		res, err := libm.Progressive(fn)
		if err != nil {
			t.Skip(err)
		}
		for li, specials := range res.Specials {
			if len(specials) == 0 {
				continue
			}
			out := res.Levels[li]
			for _, mode := range fp.StandardModes {
				k, err := eval.CompileAt(res, li, out, mode)
				if err != nil {
					t.Fatalf("CompileAt(%v, %d): %v", fn, li, err)
				}
				for _, s := range specials {
					if got, want := k.Eval(s.X), res.Eval(s.X, li, out, mode); got != want {
						t.Fatalf("%v level %d mode %v: special %x: batch %#x, reference %#x",
							fn, li, mode, s.X, got, want)
					}
				}
			}
		}
	}
}

// TestEvalBatchZeroAllocs pins the performance contract's allocation half:
// a compiled kernel's EvalBatch allocates nothing, including on batches
// that hit special paths.
func TestEvalBatchZeroAllocs(t *testing.T) {
	_, k, _ := compileFor(t, bigmath.Exp2, fp.Bfloat16, fp.RoundNearestEven)
	src := []float64{0.5, -1.25, 3, 200, -200, 0, math.NaN(), math.Inf(1), 1e-12, 0.7265625}
	dst := make([]uint64, len(src))
	if n := testing.AllocsPerRun(200, func() { k.EvalBatch(dst, src) }); n != 0 {
		t.Fatalf("EvalBatch allocates %v times per run", n)
	}
}

// TestEvalBatchCounters pins the observability wiring: one batch records
// batches/inputs/special-hits and the truncated-vs-full split once, on the
// attached span only.
func TestEvalBatchCounters(t *testing.T) {
	res, k, _ := compileFor(t, bigmath.Exp2, fp.Bfloat16, fp.RoundNearestEven)
	if !k.Truncated() {
		t.Fatalf("bfloat16 rn kernel should serve a truncated level")
	}
	rec := obs.New("run")
	k.Observe(rec.Root())
	src := []float64{0.5, math.NaN(), 2, -1}
	dst := make([]uint64, len(src))
	k.EvalBatch(dst, src)

	full, err := eval.CompileAt(res, len(res.Levels)-1, fp.Bfloat16, fp.RoundNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated() {
		t.Fatalf("largest-level kernel reported truncated")
	}
	full.Observe(rec.Root())
	full.EvalBatch(dst, src)

	got := rec.Report().Counters
	want := map[string]int64{
		"eval.batches": 2, "eval.inputs": 8,
		"eval.special_hits": 2, "eval.truncated": 3, "eval.full": 3,
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("counter %s = %d, want %d", name, got[name], n)
		}
	}
}

// TestCompileErrors covers the typed failure paths.
func TestCompileErrors(t *testing.T) {
	res, err := libm.Progressive(bigmath.Log2)
	if err != nil {
		t.Skip(err)
	}
	wide := res.Levels[len(res.Levels)-1].Extend(4)
	if _, err := eval.Compile(res, wide, fp.RoundNearestEven); !errors.Is(err, eval.ErrTooWide) {
		t.Fatalf("Compile(%v) error = %v, want ErrTooWide", wide, err)
	}
	if _, err := eval.Compile(nil, fp.Bfloat16, fp.RoundNearestEven); err == nil {
		t.Fatal("Compile(nil) succeeded")
	}
	if _, err := eval.CompileAt(res, len(res.Levels), fp.Bfloat16, fp.RoundNearestEven); err == nil {
		t.Fatal("CompileAt(out-of-range level) succeeded")
	}
	if _, err := eval.CompileAt(res, -1, fp.Bfloat16, fp.RoundNearestEven); err == nil {
		t.Fatal("CompileAt(-1) succeeded")
	}
}

// TestEvalBatchPanicsOnShortDst pins the explicit length contract.
func TestEvalBatchPanicsOnShortDst(t *testing.T) {
	_, k, _ := compileFor(t, bigmath.Exp2, fp.Bfloat16, fp.RoundNearestEven)
	defer func() {
		if recover() == nil {
			t.Fatal("EvalBatch with short dst did not panic")
		}
	}()
	k.EvalBatch(make([]uint64, 1), make([]float64, 2))
}
