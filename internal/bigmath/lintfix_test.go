package bigmath

import (
	"math/big"
	"testing"
)

// TestConstantsHighPrecision pins the atanh/atan series constants at the
// 140-bit working precision the double-double kernel tables are built from.
// The series helpers were rewritten to seed their integer terms with
// SetInt64 under an explicit precision instead of big.NewFloat; these
// references (50+ decimal digits, well beyond 140 bits) prove the rewrite
// left every bit unchanged.
func TestConstantsHighPrecision(t *testing.T) {
	cases := []struct {
		name    string
		got     *big.Float
		decimal string
	}{
		{"ln2", Ln2(140), "0.69314718055994530941723212145817656807550013436025525412068"},
		{"ln10", Ln10(140), "2.3025850929940456840179914546843642076011014886287729760333"},
		{"log10(2)", Log10Of2(140), "0.30102999566398119521373889472449302676818988146210854131042"},
	}
	for _, tc := range cases {
		want, _, err := big.ParseFloat(tc.decimal, 10, 140, big.ToNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if tc.got.Cmp(want) != 0 {
			t.Errorf("%s at 140 bits = %v, want %v", tc.name, tc.got, want)
		}
	}
}
