package bigmath

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/fp"
)

func TestConstants(t *testing.T) {
	check := func(name string, got *big.Float, want float64) {
		t.Helper()
		g, _ := got.Float64()
		if g != want {
			t.Errorf("%s = %v, want %v", name, g, want)
		}
	}
	check("ln2", Ln2(200), math.Ln2)
	check("ln10", Ln10(200), math.Log(10))
	check("pi", Pi(200), math.Pi)
	check("sqrt2/2", Sqrt2Over2(200), math.Sqrt2/2)
	// Higher-precision spot check of π against a known 50-digit value.
	want, _, err := big.ParseFloat(
		"3.14159265358979323846264338327950288419716939937510582097", 10, 160, big.ToNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	diff := new(big.Float).Sub(Pi(160), want)
	if diff.Sign() != 0 && diff.MantExp(nil) > -150 {
		t.Errorf("π at 160 bits differs: %v", diff)
	}
}

func TestParseFunc(t *testing.T) {
	for _, f := range AllFuncs {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunc(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFunc("tan"); err == nil {
		t.Error("ParseFunc(tan) succeeded")
	}
}

// ulpsApart returns the distance in double ulps between two doubles of the
// same sign.
func ulpsApart(a, b float64) int64 {
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// Eval at 80 bits must agree with the math package to within a few double
// ulps everywhere the math package is trustworthy.
func TestEvalAgreesWithMathPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	type gen func() float64
	logInputs := func() float64 { return math.Ldexp(rng.Float64()+0.5, rng.Intn(250)-125) }
	expInputs := func() float64 { return (rng.Float64()*2 - 1) * 80 }
	exp10Inputs := func() float64 { return (rng.Float64()*2 - 1) * 30 }
	trigInputs := func() float64 { return (rng.Float64()*2 - 1) * 100 }
	cases := []struct {
		f       Func
		in      gen
		ref     func(float64) float64
		maxUlps int64
	}{
		{Ln, logInputs, math.Log, 8},
		{Log2, logInputs, math.Log2, 8},
		{Log10, logInputs, math.Log10, 8},
		{Exp, expInputs, math.Exp, 8},
		{Exp2, expInputs, math.Exp2, 8},
		{Exp10, exp10Inputs, func(x float64) float64 { return math.Pow(10, x) }, 8},
		{Sinh, expInputs, math.Sinh, 8},
		{Cosh, expInputs, math.Cosh, 8},
		// The π-based references are weak: the π·z multiply alone costs
		// |πz|·2^-53 absolute, tens of ulps after sin/cos near their zeros.
		{SinPi, trigInputs, func(x float64) float64 { return math.Sin(math.Pi * math.Mod(x, 2)) }, 512},
		{CosPi, trigInputs, func(x float64) float64 { return math.Cos(math.Pi * math.Mod(x, 2)) }, 512},
	}
	for _, c := range cases {
		for i := 0; i < 400; i++ {
			x := c.in()
			want := c.ref(x)
			if want == 0 || math.IsInf(want, 0) || math.Abs(want) < 1e-300 {
				continue
			}
			if (c.f == SinPi || c.f == CosPi) && math.Abs(want) < 0.01 {
				continue // reference's absolute error swamps tiny results
			}
			got, _ := Eval(c.f, x, 80).Float64()
			if ulpsApart(got, want) > c.maxUlps {
				t.Errorf("%v(%g): big=%g math=%g (%d ulps)", c.f, x, got, want, ulpsApart(got, want))
			}
		}
	}
}

// High-precision identity checks, independent of the math package.
func TestIdentities(t *testing.T) {
	const prec = 200
	rng := rand.New(rand.NewSource(11))
	tol := func(a, b *big.Float, bits int) bool {
		d := new(big.Float).SetPrec(prec).Sub(a, b)
		if d.Sign() == 0 {
			return true
		}
		return d.MantExp(nil)-a.MantExp(nil) < -bits
	}
	for i := 0; i < 60; i++ {
		x := rng.Float64()*20 + 0.01
		// exp(ln x) = x
		l := Eval(Ln, x, prec+40)
		lf, _ := l.Float64()
		_ = lf
		el := expBig(l, prec)
		if !tol(el, big.NewFloat(x), prec-20) {
			t.Errorf("exp(ln %g) off: %v", x, el)
		}
		// log2 = ln/ln2
		l2 := Eval(Log2, x, prec)
		viaLn := new(big.Float).SetPrec(prec).Quo(Eval(Ln, x, prec+20), Ln2(prec+20))
		if !tol(l2, viaLn, prec-20) {
			t.Errorf("log2(%g) inconsistent with ln", x)
		}
		// cosh² − sinh² = 1
		y := rng.Float64()*8 - 4
		if math.Abs(y) < 0.01 {
			continue
		}
		s := Eval(Sinh, y, prec)
		c := Eval(Cosh, y, prec)
		s2 := new(big.Float).SetPrec(prec).Mul(s, s)
		c2 := new(big.Float).SetPrec(prec).Mul(c, c)
		diff := c2.Sub(c2, s2)
		if !tol(diff, big.NewFloat(1), prec-40) {
			t.Errorf("cosh²−sinh² at %g = %v", y, diff)
		}
		// sinpi² + cospi² = 1
		z := rng.Float64()*100 - 50
		sp := Eval(SinPi, z, prec)
		cp := Eval(CosPi, z, prec)
		sum := new(big.Float).SetPrec(prec).Mul(sp, sp)
		cp2 := new(big.Float).SetPrec(prec).Mul(cp, cp)
		sum.Add(sum, cp2)
		if !tol(sum, big.NewFloat(1), prec-40) {
			t.Errorf("sin²+cos² at πz, z=%g: %v", z, sum)
		}
	}
}

func TestExactValue(t *testing.T) {
	type tc struct {
		f    Func
		x    float64
		want float64 // NaN means "not exact"
	}
	none := math.NaN()
	cases := []tc{
		{Ln, 1, 0}, {Ln, 2, none}, {Ln, math.E, none},
		{Log2, 8, 3}, {Log2, 0.25, -2}, {Log2, 1, 0}, {Log2, 3, none},
		{Log10, 1, 0}, {Log10, 100, 2}, {Log10, 0.1, none}, {Log10, 99, none},
		{Exp, 0, 1}, {Exp, 1, none},
		{Exp2, 5, 32}, {Exp2, -3, 0.125}, {Exp2, 0.5, none},
		{Exp10, 2, 100}, {Exp10, 0, 1}, {Exp10, -1, none}, {Exp10, 1.5, none},
		{Sinh, 0, 0}, {Sinh, 1, none},
		{Cosh, 0, 1}, {Cosh, 2, none},
		{SinPi, 3, 0}, {SinPi, 0.5, 1}, {SinPi, 1.5, -1}, {SinPi, -0.5, -1},
		{SinPi, 2.5, 1}, {SinPi, -2.5, -1}, {SinPi, 0.25, none},
		{CosPi, 0, 1}, {CosPi, 1, -1}, {CosPi, 2, 1}, {CosPi, 0.5, 0},
		{CosPi, -1.5, 0}, {CosPi, 0.75, none},
	}
	for _, c := range cases {
		v, ok := ExactValue(c.f, c.x)
		if math.IsNaN(c.want) {
			if ok {
				t.Errorf("%v(%g) unexpectedly exact: %v", c.f, c.x, v)
			}
			continue
		}
		if !ok {
			t.Errorf("%v(%g) should be exact", c.f, c.x)
			continue
		}
		got, _ := v.Float64()
		if got != c.want {
			t.Errorf("%v(%g) = %v, want %v", c.f, c.x, got, c.want)
		}
	}
	// Sign conventions for exact zeros.
	if v, ok := ExactValue(SinPi, -4); !ok || !v.Signbit() {
		t.Error("sinpi(-4) should be -0")
	}
	if v, ok := ExactValue(SinPi, 4); !ok || v.Signbit() {
		t.Error("sinpi(4) should be +0")
	}
	if v, ok := ExactValue(Sinh, math.Copysign(0, -1)); !ok || !v.Signbit() {
		t.Error("sinh(-0) should be -0")
	}
	// Huge exact exp2: 2^200 does not fit a double but must round to +Inf
	// in bfloat16 under rn and to maxFinite under rz.
	v, ok := ExactValue(Exp2, 200)
	if !ok {
		t.Fatal("exp2(200) should be exact")
	}
	if got := fp.Bfloat16.FromBig(v, fp.RoundNearestEven); got != fp.Bfloat16.Inf(false) {
		t.Errorf("2^200 rn: %#x", got)
	}
	if got := fp.Bfloat16.FromBig(v, fp.RoundTowardZero); got != fp.Bfloat16.MaxFinite() {
		t.Errorf("2^200 rz: %#x", got)
	}
}

func TestSpecialBits(t *testing.T) {
	f := fp.Bfloat16
	inf, ninf := math.Inf(1), math.Inf(-1)
	type tc struct {
		fn   Func
		x    float64
		want uint64
	}
	cases := []tc{
		{Ln, 0, f.Inf(true)}, {Ln, math.Copysign(0, -1), f.Inf(true)},
		{Ln, -2, f.NaN()}, {Ln, inf, f.Inf(false)},
		{Log2, -0.5, f.NaN()}, {Log10, 0, f.Inf(true)},
		{Exp, inf, f.Inf(false)}, {Exp, ninf, f.Zero(false)},
		{Exp2, ninf, f.Zero(false)}, {Exp10, inf, f.Inf(false)},
		{Sinh, inf, f.Inf(false)}, {Sinh, ninf, f.Inf(true)},
		{Sinh, math.Copysign(0, -1), f.Zero(true)}, {Sinh, 0, f.Zero(false)},
		{Cosh, ninf, f.Inf(false)},
		{SinPi, inf, f.NaN()}, {SinPi, math.Copysign(0, -1), f.Zero(true)},
		{CosPi, ninf, f.NaN()},
		{Exp, math.NaN(), f.NaN()},
	}
	for _, c := range cases {
		got, ok := SpecialBits(c.fn, c.x, f)
		if !ok {
			t.Errorf("%v(%g) not special", c.fn, c.x)
			continue
		}
		if got != c.want {
			t.Errorf("%v(%g) = %#x, want %#x", c.fn, c.x, got, c.want)
		}
	}
	// Ordinary inputs are not special.
	for _, fn := range AllFuncs {
		if _, ok := SpecialBits(fn, 1.5, f); ok {
			t.Errorf("%v(1.5) flagged special", fn)
		}
	}
}

// Correct rounding into bfloat16 must agree with rounding the math
// package's double result: the bf16 rounding boundaries are ~2^45 double
// ulps apart, so a ≤2-ulp double library can never disagree.
func TestCorrectlyRoundedBfloat16VsMath(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, f := range AllFuncs {
		for i := 0; i < 300; i++ {
			var x float64
			switch f {
			case Ln, Log2, Log10:
				x = math.Ldexp(rng.Float64()+0.5, rng.Intn(200)-100)
			case Exp, Exp2, Exp10, Sinh, Cosh:
				x = (rng.Float64()*2 - 1) * 30
			default:
				x = (rng.Float64()*2 - 1) * 50
			}
			// Use an exactly-bf16 input so the comparison is meaningful
			// end to end.
			xb := fp.Bfloat16.FromFloat64(x, fp.RoundNearestEven)
			x = fp.Bfloat16.Decode(xb)
			if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
				continue
			}
			if f == SinPi || f == CosPi {
				if _, exact := ExactValue(f, x); exact {
					continue // ±0/±1 results: sign conventions differ from math.Sin(Pi*x)
				}
			}
			want := fp.Bfloat16.FromFloat64(f.Float64(x), fp.RoundNearestEven)
			got := CorrectlyRounded(f, x, fp.Bfloat16, fp.RoundNearestEven)
			if got != want && !fp.Bfloat16.IsNaN(want) {
				t.Errorf("%v(%g): got %#x want %#x", f, x, got, want)
			}
		}
	}
}

func TestCorrectlyRoundedSpecialPipeline(t *testing.T) {
	// End-to-end: specials, exacts and saturation all flow through
	// CorrectlyRounded.
	f := fp.TensorFloat32
	if got := CorrectlyRounded(Exp, 5000, f, fp.RoundNearestEven); got != f.Inf(false) {
		t.Errorf("exp(5000) = %#x", got)
	}
	if got := CorrectlyRounded(Exp, 5000, f, fp.RoundTowardZero); got != f.MaxFinite() {
		t.Errorf("exp(5000) rz = %#x", got)
	}
	if got := CorrectlyRounded(Exp, -5000, f, fp.RoundNearestEven); got != f.Zero(false) {
		t.Errorf("exp(-5000) = %#x", got)
	}
	if got := CorrectlyRounded(Exp, -5000, f, fp.RoundToOdd); got != f.MinSubnormal() {
		t.Errorf("exp(-5000) ro = %#x", got)
	}
	if got := CorrectlyRounded(Sinh, -5000, f, fp.RoundNearestEven); got != f.Inf(true) {
		t.Errorf("sinh(-5000) = %#x", got)
	}
	if got := CorrectlyRounded(Cosh, -5000, f, fp.RoundNearestEven); got != f.Inf(false) {
		t.Errorf("cosh(-5000) = %#x", got)
	}
	if got := CorrectlyRounded(Log2, 1024, f, fp.RoundNearestEven); f.Decode(got) != 10 {
		t.Errorf("log2(1024) = %v", f.Decode(got))
	}
}

// The Ziv loop must produce identical rounded results regardless of where
// the start precision lands.
func TestZivConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f27 := fp.MustFormat(27, 8)
	for i := 0; i < 200; i++ {
		x := math.Ldexp(rng.Float64()+0.5, rng.Intn(40)-20)
		for _, fn := range []Func{Ln, Exp, SinPi} {
			a := CorrectlyRounded(fn, x, f27, fp.RoundToOdd)
			// Recompute from a much higher fixed precision.
			y := Eval(fn, x, 400)
			b := f27.FromBig(y, fp.RoundToOdd)
			if a != b {
				t.Errorf("%v(%g): ziv %#x, prec400 %#x", fn, x, a, b)
			}
		}
	}
}

func BenchmarkOracle(b *testing.B) {
	f27 := fp.MustFormat(27, 8)
	funcs := []Func{Ln, Log2, Exp, Exp2, Sinh, SinPi}
	for _, fn := range funcs {
		b.Run(fn.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(14))
			for i := 0; i < b.N; i++ {
				x := rng.Float64()*3 + 0.1
				CorrectlyRounded(fn, x, f27, fp.RoundToOdd)
			}
		})
	}
}
