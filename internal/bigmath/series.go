package bigmath

import "math/big"

// The series kernels below all follow the same contract: inputs are
// big.Floats at working precision w, outputs are freshly allocated
// big.Floats at precision w, and the combination of truncation error and
// rounding error is far below 2^-(w-24) relative — each kernel performs
// only a few hundred rounded operations and truncates its series when the
// next term falls 2^(w+8) below the running sum.
//
//lint:file-ignore ctxflow every summation loop's term shrinks at least geometrically on its reduced domain, so the 2^-(w+8) truncation test bounds each loop at O(w) iterations; the loops are unbounded only syntactically.

// expSeries returns e^r for |r| ≤ 0.75 by scaling r down 2^scaleBits times,
// summing the Taylor series, and squaring back up.
func expSeries(r *big.Float, w uint) *big.Float {
	const scaleBits = 6
	rs := new(big.Float).SetPrec(w).Set(r)
	if rs.Sign() != 0 {
		rs.SetMantExp(rs, -scaleBits) // exact /2^6
	}
	sum := one(w)
	term := one(w)
	tmp := new(big.Float).SetPrec(w)
	for n := int64(1); ; n++ {
		term.Mul(term, rs)
		term.Quo(term, tmp.SetInt64(n))
		sum.Add(sum, term)
		if term.Sign() == 0 || term.MantExp(nil)-sum.MantExp(nil) < -int(w)-8 {
			break
		}
	}
	for i := 0; i < scaleBits; i++ {
		sum.Mul(sum, sum)
	}
	return sum
}

// expBig returns e^x for a finite big.Float x with |x| ≤ 2^20, using the
// reduction x = k·ln2 + r, |r| ≤ ln2/2, then e^x = 2^k · e^r.
func expBig(x *big.Float, w uint) *big.Float {
	xf, _ := x.Float64()
	ln2 := Ln2(w + 32)
	ln2f, _ := ln2.Float64()
	k := int(roundToInt(xf / ln2f))
	r := new(big.Float).SetPrec(w + 32).SetInt64(int64(k))
	r.Mul(r, ln2)
	r.Sub(new(big.Float).SetPrec(w+32).Set(x), r)
	e := expSeries(r, w+32)
	if e.Sign() != 0 {
		e.SetMantExp(e, k)
	}
	return new(big.Float).SetPrec(w).Set(e)
}

func roundToInt(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return -float64(int64(-x + 0.5))
}

// logBig returns ln(x) for a finite positive big.Float x, via
// x = m·2^e with m ∈ [√2/2·…, ~1.41), ln x = 2 atanh((m-1)/(m+1)) + e ln 2.
func logBig(x *big.Float, w uint) *big.Float {
	ww := w + 32
	m := new(big.Float).SetPrec(ww)
	e := x.MantExp(m) // x = m·2^e, m ∈ [0.5, 1)
	// Recenter m into [~0.707, ~1.414) so |t| ≤ 0.1716.
	if m.Cmp(Sqrt2Over2(ww)) < 0 {
		m.SetMantExp(m, 1)
		e--
	}
	num := new(big.Float).SetPrec(ww).Sub(m, one(ww))
	den := new(big.Float).SetPrec(ww).Add(m, one(ww))
	t := num.Quo(num, den)
	t2 := new(big.Float).SetPrec(ww).Mul(t, t)
	sum := new(big.Float).SetPrec(ww).Set(t)
	term := new(big.Float).SetPrec(ww).Set(t)
	tmp := new(big.Float).SetPrec(ww)
	for k := int64(1); ; k++ {
		term.Mul(term, t2)
		tmp.Quo(term, new(big.Float).SetPrec(ww).SetInt64(2*k+1))
		sum.Add(sum, tmp)
		if tmp.Sign() == 0 || tmp.MantExp(nil)-sum.MantExp(nil) < -int(ww)-8 {
			break
		}
	}
	sum.Add(sum, sum) // 2·atanh(t)
	if e != 0 {
		el := new(big.Float).SetPrec(ww).SetInt64(int64(e))
		sum.Add(sum, el.Mul(el, Ln2(ww)))
	}
	return new(big.Float).SetPrec(w).Set(sum)
}

// sinCosSeries returns (sin θ, cos θ) for |θ| ≤ 0.8 by direct Taylor
// summation.
func sinCosSeries(theta *big.Float, w uint) (sin, cos *big.Float) {
	t2 := new(big.Float).SetPrec(w).Mul(theta, theta)
	t2.Neg(t2)
	// sin = Σ (-1)^k θ^(2k+1)/(2k+1)!, cos = Σ (-1)^k θ^(2k)/(2k)!.
	sin = new(big.Float).SetPrec(w).Set(theta)
	term := new(big.Float).SetPrec(w).Set(theta)
	tmp := new(big.Float).SetPrec(w)
	for k := int64(1); ; k++ {
		term.Mul(term, t2)
		term.Quo(term, tmp.SetInt64(2*k*(2*k+1)))
		sin.Add(sin, term)
		if term.Sign() == 0 || term.MantExp(nil)-sin.MantExp(nil) < -int(w)-8 {
			break
		}
	}
	cos = one(w)
	term = one(w)
	for k := int64(1); ; k++ {
		term.Mul(term, t2)
		term.Quo(term, tmp.SetInt64(2*k*(2*k-1)))
		cos.Add(cos, term)
		if term.Sign() == 0 || term.MantExp(nil)-cos.MantExp(nil) < -int(w)-8 {
			break
		}
	}
	return sin, cos
}

// sinhSeries returns sinh(x) for |x| ≤ 1 by direct Taylor summation
// (used where the exp-based formula would cancel catastrophically).
func sinhSeries(x *big.Float, w uint) *big.Float {
	x2 := new(big.Float).SetPrec(w).Mul(x, x)
	sum := new(big.Float).SetPrec(w).Set(x)
	term := new(big.Float).SetPrec(w).Set(x)
	tmp := new(big.Float).SetPrec(w)
	for k := int64(1); ; k++ {
		term.Mul(term, x2)
		term.Quo(term, tmp.SetInt64(2*k*(2*k+1)))
		sum.Add(sum, term)
		if term.Sign() == 0 || term.MantExp(nil)-sum.MantExp(nil) < -int(w)-8 {
			break
		}
	}
	return sum
}
