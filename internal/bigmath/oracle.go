package bigmath

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/fault"
	"repro/internal/fp"
)

// SpecialBits handles the IEEE special-value semantics of the ten functions:
// non-finite inputs, signed zeros and domain errors. It returns the result
// bit pattern in out and true when x is such a case; all remaining inputs
// have finite nonzero mathematical results obtained from ExactValue or the
// Ziv loop.
func SpecialBits(f Func, x float64, out fp.Format) (uint64, bool) {
	if math.IsNaN(x) {
		return out.NaN(), true
	}
	inf := math.IsInf(x, 0)
	neg := math.Signbit(x)
	switch f {
	case Ln, Log2, Log10:
		switch {
		case x == 0:
			return out.Inf(true), true
		case neg:
			return out.NaN(), true
		case inf:
			return out.Inf(false), true
		}
	case Exp, Exp2, Exp10:
		if inf {
			if neg {
				return out.Zero(false), true
			}
			return out.Inf(false), true
		}
	case Sinh:
		if inf {
			return out.Inf(neg), true
		}
		if x == 0 {
			return out.Zero(neg), true
		}
	case Cosh:
		if inf {
			return out.Inf(false), true
		}
	case SinPi:
		if inf {
			return out.NaN(), true
		}
		if x == 0 {
			return out.Zero(neg), true
		}
	case CosPi:
		if inf {
			return out.NaN(), true
		}
	}
	return 0, false
}

// ExactValue reports the inputs whose mathematical result is an exact
// binary rational (so the Ziv loop would never terminate) and returns that
// result as an exact big.Float. The case analysis is number-theoretic:
//
//   - ln(x) is transcendental for representable x ≠ 1 (Lindemann);
//   - log2(x) is irrational unless x = 2^k (else 2^(p/q) would be rational);
//   - log10(x) is irrational unless x = 10^k, and binary-representable
//     powers of ten require k ≥ 0;
//   - e^x is transcendental for rational x ≠ 0 (Lindemann);
//   - 2^x and 10^x are irrational for non-integer rational x
//     (Gelfond–Schneider);
//   - sinh/cosh of nonzero algebraic x is transcendental (Lindemann);
//   - sin(πx)/cos(πx) for binary-rational x are irrational unless 2x is an
//     integer (Niven: the rational values ±1/2 occur only at denominators
//     divisible by 3, which are not binary).
func ExactValue(f Func, x float64) (*big.Float, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, false
	}
	exact := func(v float64) (*big.Float, bool) {
		return new(big.Float).SetPrec(64).SetFloat64(v), true
	}
	switch f {
	case Ln:
		if x == 1 {
			return exact(0)
		}
	case Log2:
		if x > 0 {
			if frac, exp := math.Frexp(x); frac == 0.5 {
				return new(big.Float).SetPrec(64).SetInt64(int64(exp - 1)), true
			}
		}
	case Log10:
		if x > 0 {
			k := math.Round(math.Log10(x))
			if k >= 0 && k < 40 {
				p := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(k)), nil)
				if v := new(big.Float).SetPrec(uint(p.BitLen()) + 1).SetInt(p); v.Cmp(new(big.Float).SetPrec(53).SetFloat64(x)) == 0 {
					return new(big.Float).SetPrec(64).SetInt64(int64(k)), true
				}
			}
		}
	case Exp:
		if x == 0 {
			return exact(1)
		}
	case Exp2:
		if x == math.Trunc(x) && math.Abs(x) < 1<<20 {
			v := new(big.Float).SetPrec(64).SetInt64(1)
			v.SetMantExp(v, int(x))
			return v, true
		}
	case Exp10:
		if x == 0 {
			return exact(1)
		}
		if x == math.Trunc(x) && x > 0 && x < 512 {
			p := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(x)), nil)
			return new(big.Float).SetPrec(uint(p.BitLen()) + 1).SetInt(p), true
		}
	case Sinh:
		if x == 0 {
			return exact(x) // preserves the sign of zero
		}
	case Cosh:
		if x == 0 {
			return exact(1)
		}
	case SinPi:
		if 2*x == math.Trunc(2*x) {
			if x == math.Trunc(x) {
				return exact(math.Copysign(0, x))
			}
			z := math.Mod(math.Abs(x), 2) // 0.5 or 1.5
			v := 1.0
			if z == 1.5 {
				v = -1
			}
			if math.Signbit(x) {
				v = -v
			}
			return exact(v)
		}
	case CosPi:
		if 2*x == math.Trunc(2*x) {
			z := math.Mod(math.Abs(x), 2)
			switch z {
			case 0:
				return exact(1)
			case 1:
				return exact(-1)
			default: // 0.5, 1.5
				return exact(0)
			}
		}
	}
	return nil, false
}

// saturated short-circuits the exponential-family functions when |x| is so
// large that the result is out of range of every supported format (|E| ≤ 10
// means overflow thresholds below 512 and underflow above -1600): it
// returns a proxy value on the same side of every rounding boundary as the
// true result, avoiding astronomically large argument reductions. The proxy
// is exact in its effect: rounding only depends on the result being beyond
// the format's finite range (or strictly between 0 and half the minimum
// subnormal) with a nonzero sticky contribution, which both the true value
// and the proxy satisfy.
func saturated(f Func, x float64) (*big.Float, bool) {
	const lim = 4096
	if math.Abs(x) <= lim {
		return nil, false
	}
	huge := func(neg bool) *big.Float {
		v := new(big.Float).SetPrec(32).SetInt64(1)
		v.SetMantExp(v, 1<<20)
		if neg {
			v.Neg(v)
		}
		return v
	}
	tiny := func(neg bool) *big.Float {
		v := new(big.Float).SetPrec(32).SetInt64(1)
		v.SetMantExp(v, -(1 << 20))
		if neg {
			v.Neg(v)
		}
		return v
	}
	switch f {
	case Exp, Exp2, Exp10:
		if x > 0 {
			return huge(false), true
		}
		return tiny(false), true
	case Sinh:
		return huge(x < 0), true
	case Cosh:
		return huge(false), true
	}
	return nil, false
}

// zivStartPrec is the initial working precision of the Ziv loop; generous
// for every format this package targets (≤ 34 bits) so escalation is rare.
const zivStartPrec = 96

// zivMaxPrec bounds escalation; reaching it means a rounding-boundary
// result slipped past ExactValue, which would be a bug.
const zivMaxPrec = 1 << 16

// CorrectlyRounded returns the bit pattern of f(x) correctly rounded into
// the format out under the given rounding mode. x must be the exact input
// value (finite values of any supported format are exact float64s).
func CorrectlyRounded(f Func, x float64, out fp.Format, mode fp.Mode) uint64 {
	if bits, ok := SpecialBits(f, x, out); ok {
		return bits
	}
	if v, ok := ExactValue(f, x); ok {
		return out.FromBig(v, mode)
	}
	if v, ok := saturated(f, x); ok {
		return out.FromBig(v, mode)
	}
	return out.FromBig(EvalUnambiguous(f, x, out, mode), mode)
}

// EvalUnambiguous runs the Ziv loop: it evaluates f(x) at increasing
// precision until the error envelope [y−ε, y+ε] rounds to a single value of
// out under mode, then returns that evaluation. The caller must have
// filtered specials and exact results. Exhausting zivMaxPrec (which would
// mean a rounding-boundary result slipped past ExactValue) panics with a
// typed *fault.Error carrying CodeOracleExhausted; the worker pool
// recovers the panic and surfaces it with job context.
func EvalUnambiguous(f Func, x float64, out fp.Format, mode fp.Mode) *big.Float {
	for prec := uint(zivStartPrec); prec <= zivMaxPrec; prec *= 2 {
		y := Eval(f, x, prec)
		if y.Sign() == 0 {
			continue // result magnitude underflowed the series: escalate
		}
		eps := new(big.Float).SetPrec(32).SetInt64(1)
		eps.SetMantExp(eps, y.MantExp(nil)-int(prec)+28)
		lo := new(big.Float).SetPrec(prec+4).Sub(y, eps)
		hi := new(big.Float).SetPrec(prec+4).Add(y, eps)
		if out.FromBig(lo, mode) == out.FromBig(hi, mode) {
			return y
		}
	}
	panic(fault.New(fault.CodeOracleExhausted, "enumerate", "ziv",
		fmt.Errorf("bigmath: Ziv loop exhausted for %v(%g) at prec %d", f, x, zivMaxPrec)).
		WithFunc(f.String()))
}
