package bigmath

import (
	"fmt"
	"math"
	"math/big"
)

// Func identifies one of the ten elementary functions of the paper.
type Func int

const (
	Ln Func = iota
	Log2
	Log10
	Exp
	Exp2
	Exp10
	Sinh
	Cosh
	SinPi
	CosPi
	// NumFuncs is the number of supported functions.
	NumFuncs
)

// AllFuncs lists the ten functions in the paper's Table 1 order.
var AllFuncs = []Func{Ln, Log2, Log10, Exp, Exp2, Exp10, Sinh, Cosh, SinPi, CosPi}

var funcNames = [NumFuncs]string{
	"ln", "log2", "log10", "exp", "exp2", "exp10",
	"sinh", "cosh", "sinpi", "cospi",
}

func (f Func) String() string {
	if f < 0 || f >= NumFuncs {
		return fmt.Sprintf("Func(%d)", int(f))
	}
	return funcNames[f]
}

// ParseFunc resolves a function by its String name.
func ParseFunc(s string) (Func, error) {
	for i, n := range funcNames {
		if n == s {
			return Func(i), nil
		}
	}
	return 0, fmt.Errorf("bigmath: unknown function %q", s)
}

// Float64 evaluates the function in ordinary double precision via the math
// package; used by comparator libraries, not by the oracle.
func (f Func) Float64(x float64) float64 {
	switch f {
	case Ln:
		return math.Log(x)
	case Log2:
		return math.Log2(x)
	case Log10:
		return math.Log10(x)
	case Exp:
		return math.Exp(x)
	case Exp2:
		return math.Exp2(x)
	case Exp10:
		return math.Pow(10, x)
	case Sinh:
		return math.Sinh(x)
	case Cosh:
		return math.Cosh(x)
	case SinPi:
		if math.IsInf(x, 0) {
			return math.NaN()
		}
		if v, ok := ExactValue(SinPi, x); ok {
			// Vendor sinpi implementations honour the exact grid (±0, ±1
			// at half-integers); mod+sin would return 1e-16-grade noise.
			f, _ := v.Float64()
			if v.Signbit() {
				f = math.Copysign(f, -1)
			}
			return f
		}
		z := math.Mod(x, 2)
		return math.Sin(math.Pi * z)
	case CosPi:
		if math.IsInf(x, 0) {
			return math.NaN()
		}
		if v, ok := ExactValue(CosPi, x); ok {
			f, _ := v.Float64()
			return f
		}
		z := math.Mod(x, 2)
		return math.Cos(math.Pi * z)
	}
	//lint:ignore barepanic exhaustive Func switch; a new enum value is a compile-time change, not a runtime fault.
	panic("bigmath: bad func")
}

// Eval returns f(x) as a big.Float whose relative error is below
// 2^-(prec-28). The input must be finite; results that are ±Inf or NaN in
// the mathematical/IEEE sense are reported by Special and must be filtered
// by the caller. Exactly-representable results must be obtained from
// ExactValue; Eval's result for such inputs is accurate but carries series
// rounding like any other.
func Eval(f Func, x float64, prec uint) *big.Float {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		//lint:ignore barepanic caller contract: enumeration filters non-finite inputs before the oracle; a violation is a code bug.
		panic("bigmath: Eval on non-finite input")
	}
	w := prec + 32
	switch f {
	case Ln, Log2, Log10:
		if x <= 0 {
			//lint:ignore barepanic caller contract: reduction classifies non-positive log inputs as structural specials first.
			panic("bigmath: log of non-positive value")
		}
		l := logBig(new(big.Float).SetPrec(w).SetFloat64(x), w)
		switch f {
		case Log2:
			l.Quo(l, Ln2(w))
		case Log10:
			l.Quo(l, Ln10(w))
		}
		return l.SetPrec(prec)
	case Exp:
		return expBig(new(big.Float).SetPrec(w).SetFloat64(x), prec)
	case Exp2:
		arg := new(big.Float).SetPrec(w).SetFloat64(x)
		arg.Mul(arg, Ln2(w))
		return expBig(arg, prec)
	case Exp10:
		arg := new(big.Float).SetPrec(w).SetFloat64(x)
		arg.Mul(arg, Ln10(w))
		return expBig(arg, prec)
	case Sinh:
		return sinhBig(x, prec)
	case Cosh:
		ep := expBig(new(big.Float).SetPrec(w).SetFloat64(x), w)
		en := expBig(new(big.Float).SetPrec(w).SetFloat64(-x), w)
		ep.Add(ep, en)
		half := new(big.Float).SetPrec(w).SetFloat64(0.5)
		ep.Mul(ep, half)
		return ep.SetPrec(prec)
	case SinPi:
		s, _ := sinCosPiBig(x, prec)
		return s
	case CosPi:
		_, c := sinCosPiBig(x, prec)
		return c
	}
	//lint:ignore barepanic exhaustive Func switch; a new enum value is a compile-time change, not a runtime fault.
	panic("bigmath: bad func")
}

func sinhBig(x float64, prec uint) *big.Float {
	w := prec + 32
	ax := math.Abs(x)
	var res *big.Float
	if ax <= 1 {
		res = sinhSeries(new(big.Float).SetPrec(w).SetFloat64(ax), w)
	} else {
		ep := expBig(new(big.Float).SetPrec(w).SetFloat64(ax), w)
		en := expBig(new(big.Float).SetPrec(w).SetFloat64(-ax), w)
		ep.Sub(ep, en)
		half := new(big.Float).SetPrec(w).SetFloat64(0.5)
		res = ep.Mul(ep, half)
	}
	if math.Signbit(x) {
		res.Neg(res)
	}
	return res.SetPrec(prec)
}

// sinCosPiBig returns (sin(πx), cos(πx)) for finite x. The reduction is
// exact: z = |x| mod 2 is an exact double operation, j = round(4z) selects
// an octant, and a = z - j/4 is exact by Sterbenz, leaving |πa| ≤ π/8.
func sinCosPiBig(x float64, prec uint) (sinpi, cospi *big.Float) {
	w := prec + 32
	neg := math.Signbit(x)
	z := math.Mod(math.Abs(x), 2) // exact, in [0,2)
	j := int(roundToInt(4 * z))   // 0..8
	a := z - float64(j)/4         // exact, |a| ≤ 1/8

	theta := new(big.Float).SetPrec(w).SetFloat64(a)
	theta.Mul(theta, Pi(w))
	sa, ca := sinCosSeries(theta, w)

	// sin(π(j/4 + a)) = sp[j]·cos(πa) + cp[j]·sin(πa)
	// cos(π(j/4 + a)) = cp[j]·cos(πa) - sp[j]·sin(πa)
	// with sp[j] = sin(πj/4), cp[j] = cos(πj/4) ∈ {0, ±√2/2, ±1}.
	spNum, cpNum := octant(j)
	s22 := Sqrt2Over2(w)
	coef := func(n int) *big.Float {
		v := new(big.Float).SetPrec(w)
		switch n {
		case 0:
			return v
		case 1:
			return v.SetInt64(1)
		case -1:
			return v.SetInt64(-1)
		case 2:
			return v.Set(s22)
		case -2:
			return v.Neg(s22)
		}
		//lint:ignore barepanic coefficient is drawn from a fixed literal table; any other value is memory corruption.
		panic("bigmath: bad octant coefficient")
	}
	sp, cp := coef(spNum), coef(cpNum)

	sinpi = new(big.Float).SetPrec(w)
	sinpi.Mul(sp, ca)
	t := new(big.Float).SetPrec(w).Mul(cp, sa)
	sinpi.Add(sinpi, t)

	cospi = new(big.Float).SetPrec(w)
	cospi.Mul(cp, ca)
	t.Mul(sp, sa)
	cospi.Sub(cospi, t)

	if neg {
		sinpi.Neg(sinpi) // sinπ is odd; cosπ is even
	}
	return sinpi.SetPrec(prec), cospi.SetPrec(prec)
}

// octant returns (sin(πj/4), cos(πj/4)) encoded as 0, ±1 for 0, ±1 and ±2
// for ±√2/2.
func octant(j int) (sp, cp int) {
	switch j {
	case 0:
		return 0, 1
	case 1:
		return 2, 2
	case 2:
		return 1, 0
	case 3:
		return 2, -2
	case 4:
		return 0, -1
	case 5:
		return -2, -2
	case 6:
		return -1, 0
	case 7:
		return -2, 2
	case 8:
		return 0, 1
	}
	//lint:ignore barepanic octant is x mod 8 by construction; the switch is exhaustive.
	panic("bigmath: bad octant")
}
