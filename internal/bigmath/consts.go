// Package bigmath implements the ten elementary functions of the paper on
// math/big.Float at arbitrary precision. It plays the role MPFR plays in
// RLIBM-Prog: a slow, correct oracle used offline to compute correctly
// rounded results, with Ziv-style precision escalation and explicit
// detection of the (number-theoretically characterized) inputs whose results
// are exactly representable.
package bigmath

import (
	"math/big"
	"sync"
)

// constCache memoizes a precision-indexed constant. Values are computed at
// the requested working precision and never mutated after insertion.
type constCache struct {
	mu      sync.Mutex
	byPrec  map[uint]*big.Float
	compute func(prec uint) *big.Float
}

func (c *constCache) at(prec uint) *big.Float {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byPrec == nil {
		c.byPrec = make(map[uint]*big.Float)
	}
	if v, ok := c.byPrec[prec]; ok {
		return v
	}
	v := c.compute(prec)
	c.byPrec[prec] = v
	return v
}

var (
	ln2Cache    = &constCache{compute: computeLn2}
	ln10Cache   = &constCache{compute: computeLn10}
	piCache     = &constCache{compute: computePi}
	sqrt2Cache  = &constCache{compute: computeSqrt2}
	log102Cache = &constCache{compute: computeLog10Of2}
)

// Ln2 returns ln(2) computed at the given precision (plus guard bits
// internally); callers must not mutate the result.
func Ln2(prec uint) *big.Float { return ln2Cache.at(prec) }

// Ln10 returns ln(10) at the given precision; callers must not mutate it.
func Ln10(prec uint) *big.Float { return ln10Cache.at(prec) }

// Pi returns π at the given precision; callers must not mutate it.
func Pi(prec uint) *big.Float { return piCache.at(prec) }

// Sqrt2Over2 returns √2/2 at the given precision; callers must not mutate it.
func Sqrt2Over2(prec uint) *big.Float { return sqrt2Cache.at(prec) }

// Log10Of2 returns log10(2) = ln2/ln10 at the given precision; callers must
// not mutate it.
func Log10Of2(prec uint) *big.Float { return log102Cache.at(prec) }

func computeLog10Of2(prec uint) *big.Float {
	w := prec + 32
	v := new(big.Float).SetPrec(w).Quo(Ln2(w), Ln10(w))
	return v.SetPrec(prec)
}

// atanhRecip returns atanh(1/q) = Σ_{k≥0} (1/q)^(2k+1)/(2k+1) for integer
// q ≥ 2, computed at working precision w.
func atanhRecip(q int64, w uint) *big.Float {
	t := new(big.Float).SetPrec(w).Quo(one(w), new(big.Float).SetPrec(w).SetInt64(q))
	t2 := new(big.Float).SetPrec(w).Mul(t, t)
	sum := new(big.Float).SetPrec(w).Set(t)
	term := new(big.Float).SetPrec(w).Set(t)
	tmp := new(big.Float).SetPrec(w)
	for k := int64(1); ; k++ {
		term.Mul(term, t2)
		tmp.Quo(term, new(big.Float).SetPrec(w).SetInt64(2*k+1))
		if tmp.MantExp(nil)-sum.MantExp(nil) < -int(w)-4 {
			break
		}
		sum.Add(sum, tmp)
	}
	return sum
}

// atanRecip returns atan(1/q) = Σ_{k≥0} (-1)^k (1/q)^(2k+1)/(2k+1).
func atanRecip(q int64, w uint) *big.Float {
	t := new(big.Float).SetPrec(w).Quo(one(w), new(big.Float).SetPrec(w).SetInt64(q))
	t2 := new(big.Float).SetPrec(w).Mul(t, t)
	sum := new(big.Float).SetPrec(w).Set(t)
	term := new(big.Float).SetPrec(w).Set(t)
	tmp := new(big.Float).SetPrec(w)
	for k := int64(1); ; k++ {
		term.Mul(term, t2)
		term.Neg(term)
		tmp.Quo(term, new(big.Float).SetPrec(w).SetInt64(2*k+1))
		if tmp.MantExp(nil)-sum.MantExp(nil) < -int(w)-4 {
			break
		}
		sum.Add(sum, tmp)
	}
	return sum
}

func computeLn2(prec uint) *big.Float {
	w := prec + 32
	// ln 2 = 2 atanh(1/3).
	v := atanhRecip(3, w)
	v.Add(v, v)
	return v.SetPrec(prec)
}

func computeLn10(prec uint) *big.Float {
	w := prec + 32
	// ln 10 = 3 ln 2 + ln(5/4), and ln(5/4) = 2 atanh(1/9).
	v := atanhRecip(9, w)
	v.Add(v, v)
	three := new(big.Float).SetPrec(w).SetInt64(3)
	v.Add(v, three.Mul(three, Ln2(w)))
	return v.SetPrec(prec)
}

func computePi(prec uint) *big.Float {
	w := prec + 32
	// Machin: π = 16 atan(1/5) - 4 atan(1/239).
	a := atanRecip(5, w)
	sixteen := new(big.Float).SetPrec(w).SetInt64(16)
	a.Mul(a, sixteen)
	b := atanRecip(239, w)
	four := new(big.Float).SetPrec(w).SetInt64(4)
	b.Mul(b, four)
	a.Sub(a, b)
	return a.SetPrec(prec)
}

func computeSqrt2(prec uint) *big.Float {
	w := prec + 32
	v := new(big.Float).SetPrec(w).SetInt64(2)
	v.Sqrt(v)
	v.Quo(v, new(big.Float).SetPrec(w).SetInt64(2))
	return v.SetPrec(prec)
}

func one(w uint) *big.Float { return new(big.Float).SetPrec(w).SetInt64(1) }
