// Package clarkson implements the paper's fast randomized algorithm for
// solving the huge, low-dimensional systems of interval constraints that
// define progressive polynomials (Algorithms 1 and 2, after Clarkson's
// Las Vegas algorithm for LPs in small dimension [9]).
//
// The multi-set of constraints is encoded as per-constraint weights. Each
// iteration draws a weighted sample of 6k² constraints, solves it with an
// LP solver (float64 simplex, escalating to the exact rational simplex on
// numerical failure), and checks the sample solution against every
// constraint using the production double-precision Horner evaluation. On a
// "lucky" iteration — violated weight ≤ satisfied weight/(3k−1) — the
// violated constraints' weights double, which is exactly re-adding them to
// the multi-set. When the system is full-rank the solution is found in
// 6k·log n iterations in expectation (§3.4).
package clarkson

import (
	"math"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/poly"
	"repro/internal/sampling"
)

// Row is one progressive constraint: evaluating the first Terms
// coefficients of the polynomial at the reduced input X must land in
// [Lo, Hi]. Rows for lower-precision representations carry smaller Terms.
// Inputs is the number of original inputs whose constraints merged into
// this row (0 counts as 1): the solver accepts a candidate polynomial only
// when the *input* count of its violated rows is within AcceptViolations,
// since each such input becomes a special-case table entry.
type Row struct {
	X      float64
	Lo, Hi float64
	Terms  int
	Inputs int32
}

func (r *Row) inputCount() int {
	if r.Inputs <= 0 {
		return 1
	}
	return int(r.Inputs)
}

// Config tunes the solver.
type Config struct {
	// TotalTerms is k, the number of terms of the full polynomial (the
	// largest representation's term count).
	TotalTerms int
	// SampleSize overrides the 6k² sample size when positive.
	SampleSize int
	// MaxIters bounds the number of sampling iterations (the paper's
	// user-specified cut-off N).
	MaxIters int
	// AcceptViolations admits a solution whose violated rows cover at most
	// this many original inputs; those inputs become special-case entries
	// (paper §3.3: "we also accept a polynomial that satisfies all
	// constraints except a few").
	AcceptViolations int
	// XScale normalizes reduced inputs inside the LP: monomials are built
	// on t = x/XScale, which conditions the Vandermonde columns. The
	// returned coefficients are always in original-x units. Zero means 1.
	XScale float64
	// Structure is the monomial layout (dense, even or odd); the zero
	// value is the dense layout.
	Structure poly.Structure
	// DisableExact turns off escalation to the exact rational solver.
	DisableExact bool
	// ForceExact routes every sample to the exact rational solver instead
	// of trying the float64 simplex first. The generator's rescue ladder
	// sets it when float64 numerics are suspected of blocking a solve;
	// ignored when DisableExact is set.
	ForceExact bool
	// StallIters bails out of the solve when BestViolations has not
	// improved for this many iterations and remains far above
	// AcceptViolations (0 = 64). The caller treats a stalled attempt like
	// an exhausted one and escalates term counts.
	StallIters int
	// Rng drives sampling; nil makes Solve build its own deterministic
	// generator. *rand.Rand is not safe for concurrent use, so a non-nil
	// Rng must be exclusive to one Solve call: concurrent solves (the
	// per-piece loop in gen) each pass their own generator, seeded
	// deterministically from the piece identity. Solve keeps no state
	// between calls beyond the caller's Rng position.
	Rng *rand.Rand
	// Faults, when non-nil, enables the solver injection sites
	// (solver.sample fails one iteration's sample LP; solver.budget
	// exhausts the solve immediately). Injected failures are counted in
	// Result.Injected so the caller can discard and deterministically
	// replay the poisoned solve.
	Faults *fault.Plan
}

// Result reports the outcome of a Solve.
type Result struct {
	// Found reports whether a polynomial meeting AcceptViolations was found.
	Found bool
	// Infeasible reports that a sample was proven infeasible by the exact
	// solver — a sound certificate that the full system is infeasible
	// (samples are subsets).
	Infeasible bool
	// Coeffs holds C1..Ck in original-x units (valid when Found).
	Coeffs []float64
	// Violations lists indices of rows not satisfied by Coeffs.
	Violations []int
	// Iters counts sampling iterations; Lucky those that doubled weights.
	Iters, Lucky int
	// Samples counts the iterations that actually drew a weighted sample
	// (injected sample failures and budget exhaustion skip the draw).
	Samples int
	// ExactSolves counts escalations to the rational simplex.
	ExactSolves int
	// LastErr is the most recent LP solver error (diagnostics).
	LastErr error
	// BestViolations is the smallest violated-input count seen
	// (diagnostics).
	BestViolations int
	// BestViolated lists the row indices violated at the best iteration;
	// the caller's term-escalation heuristics use it when Found is false.
	BestViolated []int
	// Injected counts fault-injection firings consumed by this solve. A
	// nonzero count marks the whole result as poisoned: the caller must
	// discard it and replay the solve with an identically seeded Rng
	// (occurrence counting has moved past the scheduled faults, so the
	// replay reproduces the no-fault run exactly).
	Injected int
}

func (c *Config) structure() poly.Structure {
	if c.Structure.Stride == 0 {
		return poly.Dense
	}
	return c.Structure
}

func (c *Config) sampleSize() int {
	if c.SampleSize > 0 {
		return c.SampleSize
	}
	return 6 * c.TotalTerms * c.TotalTerms
}

// Solve runs the randomized algorithm over the rows. The empty system is
// trivially solved by the zero polynomial.
func Solve(rows []Row, cfg Config) Result {
	k := cfg.TotalTerms
	if k <= 0 {
		//lint:ignore barepanic API misuse by the generator, not a recoverable runtime condition; gen always passes k >= 1.
		panic("clarkson: TotalTerms must be positive")
	}
	if cfg.XScale == 0 {
		cfg.XScale = 1
	}
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 64 * k * int(math.Log2(float64(len(rows)+2))+1)
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x524c49424d)) // "RLIBM"
	}
	totalInputs := 0
	for i := range rows {
		totalInputs += rows[i].inputCount()
	}
	res := Result{BestViolations: totalInputs + 1}
	if len(rows) == 0 {
		res.Found = true
		res.Coeffs = make([]float64, k)
		res.BestViolations = 0
		return res
	}

	weights := make([]float64, len(rows))
	for i := range weights {
		weights[i] = 1
	}
	sample := cfg.sampleSize()
	violated := make([]int, 0, 1024)
	stall := cfg.StallIters
	if stall == 0 {
		stall = 96
	}
	lastImprove := 0
	// Candidate solution within the violation budget but not yet perfect:
	// kept while the weight doubling tries to drive violations to zero, so
	// special-case inputs are a last resort, not the first exit.
	var candCoeffs []float64
	var candViolated []int

	for res.Iters < cfg.MaxIters {
		if cfg.Faults.Should(fault.SiteSolverBudget) {
			// Injected budget exhaustion: give up immediately, as if the
			// iteration cut-off had been reached without a solution.
			res.Injected++
			res.LastErr = fault.Injected(fault.SiteSolverBudget)
			break
		}
		res.Iters++
		if cfg.Faults.Should(fault.SiteSolverSample) {
			// Injected sample failure: this iteration's LP "fails
			// numerically" in both the float64 and exact solvers.
			res.Injected++
			res.LastErr = fault.Injected(fault.SiteSolverSample)
			continue
		}
		idx := sampling.Weighted(weights, sample, rng)
		res.Samples++
		coeffs, exact, infeasible, solveErr, ok := solveSample(rows, idx, k, cfg)
		if exact {
			res.ExactSolves++
		}
		if solveErr != nil {
			res.LastErr = solveErr
		}
		if infeasible {
			// A subset of the constraints has no solution: neither does the
			// full system. If a candidate within the violation budget is in
			// hand, that is the best possible outcome (the violated inputs
			// become special cases); otherwise report the certificate.
			res.Infeasible = true
			break
		}
		if !ok {
			continue
		}

		// Check every constraint with the production evaluation.
		violated = violated[:0]
		violatedInputs := 0
		var wViolated, wSatisfied float64
		st := cfg.structure()
		for i := range rows {
			r := &rows[i]
			v := st.Eval(coeffs, r.Terms, r.X)
			if v >= r.Lo && v <= r.Hi {
				wSatisfied += weights[i]
			} else {
				wViolated += weights[i]
				violated = append(violated, i)
				violatedInputs += r.inputCount()
			}
		}
		if violatedInputs < res.BestViolations {
			res.BestViolations = violatedInputs
			res.BestViolated = append(res.BestViolated[:0], violated...)
			lastImprove = res.Iters
		}
		if violatedInputs == 0 {
			res.Found = true
			res.Coeffs = coeffs
			res.Violations = nil
			return res
		}
		if violatedInputs <= cfg.AcceptViolations &&
			(candCoeffs == nil || violatedInputs <= len(candViolated)) {
			candCoeffs = append(candCoeffs[:0], coeffs...)
			candViolated = append(candViolated[:0], violated...)
		}
		if res.Iters-lastImprove > stall {
			break
		}
		// Lucky-iteration test (§3.3): with weights, "violating at most
		// 1/3k of the multi-set" becomes w_vio ≤ w_sat/(3k−1).
		if wViolated <= wSatisfied/float64(3*k-1) {
			res.Lucky++
			for _, i := range violated {
				weights[i] *= 2
			}
			// Renormalize long runs so keys stay in range (scaling all
			// weights uniformly leaves the sampling distribution and the
			// lucky test unchanged).
			if res.Lucky%256 == 0 {
				max := 0.0
				for _, w := range weights {
					if w > max {
						max = w
					}
				}
				if max > math.Ldexp(1, 512) {
					inv := 1 / max
					for i := range weights {
						weights[i] *= inv
					}
				}
			}
		}
	}
	if candCoeffs != nil {
		res.Found = true
		res.Coeffs = candCoeffs
		res.Violations = candViolated
	}
	return res
}

// solveSample builds the LP for the sampled rows and solves it, escalating
// to the exact rational simplex when the float64 simplex cannot certify an
// answer. It returns the descaled coefficient vector.
func solveSample(rows []Row, idx []int, k int, cfg Config) (coeffs []float64, usedExact, infeasible bool, solveErr error, ok bool) {
	st := cfg.structure()
	prob := lp.Problem{NumVars: k}
	prob.Constraints = make([]lp.Constraint, 0, len(idx))
	inv := 1 / cfg.XScale
	for _, i := range idx {
		r := rows[i]
		terms := r.Terms
		if terms > k {
			terms = k
		}
		cs := make([]float64, k)
		t := r.X * inv
		for j := 0; j < terms; j++ {
			cs[j] = math.Pow(t, float64(st.Exponent(j)))
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: cs, Lo: r.Lo, Hi: r.Hi})
	}
	// Samples containing singleton rows (exact results: the y-interval is
	// one point, an equality in the LP) go straight to the exact rational
	// solver: the float simplex can approach but never exactly hit the
	// pinned coefficient, and the production Horner check requires
	// exactness. The exact solver's sample is capped — its cost grows
	// steeply with row count, and solving any subsample optimally still
	// yields a valid Las Vegas candidate (the full-set violation check and
	// weight doubling preserve correctness; only the lucky-iteration
	// probability bound degrades).
	const exactRowCap = 120
	solveExact := func() (lp.Solution, error) {
		ep := prob
		if len(ep.Constraints) > exactRowCap {
			// Keep every equality row (they are why we are here), fill the
			// remainder with the leading inequality rows.
			capped := make([]lp.Constraint, 0, exactRowCap)
			for _, c := range ep.Constraints {
				if c.IsEquality() {
					capped = append(capped, c)
				}
			}
			for _, c := range ep.Constraints {
				if len(capped) >= exactRowCap {
					break
				}
				if !c.IsEquality() {
					capped = append(capped, c)
				}
			}
			ep.Constraints = capped
		}
		usedExact = true
		return lp.SolveMaxMarginExact(ep)
	}
	hasEquality := false
	for _, c := range prob.Constraints {
		if c.IsEquality() {
			hasEquality = true
			break
		}
	}
	var sol lp.Solution
	var err error
	if (hasEquality || cfg.ForceExact) && !cfg.DisableExact {
		sol, err = solveExact()
	} else {
		sol, err = lp.SolveMaxMargin(prob)
		// The float simplex's infeasibility verdict is an epsilon
		// judgement, not a certificate — confirm (or refute) it with the
		// exact solver before letting it cut the search.
		if lp.Uncertain(err) && !cfg.DisableExact {
			sol, err = solveExact()
		}
	}
	if err == lp.ErrInfeasible {
		// Only the exact rational solver can certify infeasibility.
		return nil, usedExact, usedExact, nil, false
	}
	if err != nil {
		return nil, usedExact, false, err, false
	}
	// Descale: C'_j was fit against (x/s)^e_j, so C_j = C'_j · s^-e_j.
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		out[j] = sol.X[j] * math.Pow(inv, float64(st.Exponent(j)))
	}
	return out, usedExact, false, nil, true
}
