package clarkson

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

// synthSystem builds a feasible constraint system shaped like the real
// workload: intervals of width ~2^-wbits around a ground-truth polynomial
// evaluated over reduced inputs in [0, xmax), with a share of progressive
// rows that constrain only the first fewer terms (against the truncated
// truth, with wider intervals).
func synthSystem(rng *rand.Rand, k, n int, xmax float64, wbits int) ([]Row, []float64) {
	truth := make([]float64, k)
	truth[0] = 1
	for j := 1; j < k; j++ {
		truth[j] = rng.NormFloat64()
	}
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * xmax
		terms := k
		wb := wbits
		if i%4 == 0 && k > 2 {
			terms = k - 1 + rng.Intn(2) // some lower-precision rows
			wb = wbits - 6              // with wider intervals
		}
		v := poly.HornerTerms(truth, terms, x)
		w := math.Ldexp(1+rng.Float64(), -wb)
		rows = append(rows, Row{X: x, Lo: v - w, Hi: v + w, Terms: terms})
	}
	return rows, truth
}

func TestSolveFeasibleSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	rows, _ := synthSystem(rng, 4, 50000, 1.0/64, 24)
	res := Solve(rows, Config{TotalTerms: 4, XScale: 1.0 / 64, Rng: rng})
	if !res.Found {
		t.Fatalf("no solution found: %+v", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("found with %d violations", len(res.Violations))
	}
	for i, r := range rows {
		v := poly.HornerTerms(res.Coeffs, r.Terms, r.X)
		if v < r.Lo || v > r.Hi {
			t.Fatalf("row %d violated after acceptance", i)
		}
	}
	t.Logf("iters=%d lucky=%d exact=%d", res.Iters, res.Lucky, res.ExactSolves)
}

func TestSolveEmptySystem(t *testing.T) {
	res := Solve(nil, Config{TotalTerms: 3})
	if !res.Found || len(res.Coeffs) != 3 {
		t.Fatalf("empty system: %+v", res)
	}
}

// A few poisoned (unsatisfiable) rows must surface as accepted violations
// when AcceptViolations admits them.
func TestAcceptViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rows, truth := synthSystem(rng, 3, 20000, 1.0/64, 22)
	// Poison two rows: tiny intervals far from the truth curve.
	for _, i := range []int{137, 9999} {
		v := poly.Horner(truth, rows[i].X) + 1
		rows[i].Lo, rows[i].Hi = v, v+1e-9
	}
	res := Solve(rows, Config{TotalTerms: 3, XScale: 1.0 / 64, AcceptViolations: 2, MaxIters: 400, Rng: rng})
	if !res.Found {
		t.Fatalf("not found: %+v", res)
	}
	if len(res.Violations) == 0 || len(res.Violations) > 2 {
		t.Fatalf("violations: %v", res.Violations)
	}
	seen := map[int]bool{}
	for _, i := range res.Violations {
		seen[i] = true
	}
	if !seen[137] && !seen[9999] {
		t.Errorf("violations %v don't include the poisoned rows", res.Violations)
	}
}

// Without AcceptViolations an infeasible system must exhaust MaxIters.
func TestInfeasibleGivesUp(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	rows, truth := synthSystem(rng, 3, 5000, 1.0/64, 22)
	v := poly.Horner(truth, rows[42].X) + 1
	rows[42].Lo, rows[42].Hi = v, v+1e-12
	res := Solve(rows, Config{TotalTerms: 3, XScale: 1.0 / 64, MaxIters: 30, Rng: rng})
	if res.Found {
		t.Fatalf("found a solution to an infeasible system")
	}
	if res.Iters > 30 {
		t.Errorf("iters = %d, want ≤ 30", res.Iters)
	}
	if res.Iters < 30 && !res.Infeasible {
		t.Errorf("early exit without an infeasibility certificate")
	}
	if res.BestViolations < 1 || res.BestViolations > 5000 {
		t.Errorf("best violations = %d", res.BestViolations)
	}
}

// §3.4: expected 6k·log n iterations on full-rank systems. Check that the
// solver stays within a small multiple across seeds.
func TestIterationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical bound check")
	}
	k, n := 4, 30000
	bound := 6 * k * int(math.Log(float64(n))+1) // 6k·ln n
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(60 + seed))
		rows, _ := synthSystem(rng, k, n, 1.0/64, 26)
		res := Solve(rows, Config{TotalTerms: k, XScale: 1.0 / 64, Rng: rng})
		if !res.Found {
			t.Fatalf("seed %d: not found", seed)
		}
		if res.Iters > bound {
			t.Errorf("seed %d: %d iterations exceeds 6k·ln n = %d", seed, res.Iters, bound)
		}
	}
}

// The XScale normalization must leave results semantically unchanged for
// well-conditioned systems.
func TestXScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rows, _ := synthSystem(rng, 3, 10000, 1.0/64, 20)
	for _, scale := range []float64{1, 1.0 / 64} {
		rng2 := rand.New(rand.NewSource(54))
		res := Solve(rows, Config{TotalTerms: 3, XScale: scale, Rng: rng2})
		if !res.Found {
			t.Errorf("scale %v: not found", scale)
		}
	}
}

func TestBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on TotalTerms=0")
		}
	}()
	Solve(nil, Config{})
}

func BenchmarkSolve50k(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	rows, _ := synthSystem(rng, 5, 50000, 1.0/64, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Solve(rows, Config{TotalTerms: 5, XScale: 1.0 / 64, Rng: rand.New(rand.NewSource(int64(i)))})
		if !res.Found {
			b.Fatal("not found")
		}
	}
}
