package serve

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Hot-reload coverage, including the mix-freedom acceptance test: a table
// swap mid-traffic must never produce a response computed partly against
// the old generation and partly against the new one.

const reloadFn = bigmath.CosPi

// reloadOpts are the generation options of the test artifacts; Workers is
// excluded from the artifact fingerprint, so the server addresses the
// same artifact regardless of it.
func reloadOpts() gen.Options {
	return gen.Options{
		Levels:  []fp.Format{fp.MustFormat(10, 8), fp.MustFormat(12, 8)},
		Seed:    1,
		Workers: 2,
	}
}

// baseArtifact generates (once per test binary) the sealed verify
// artifact of reloadFn under reloadOpts.
var baseArtifact = sync.OnceValues(func() ([]byte, error) {
	st := pipeline.NewMemStore()
	if _, _, err := cli.GenerateVerified(context.Background(), reloadFn, reloadOpts(), st); err != nil {
		return nil, err
	}
	data, ok := st.Get(gen.VerifyKey(reloadFn, reloadOpts()), gen.ResultCodec.Name, gen.ResultCodec.Version)
	if !ok {
		return nil, context.Canceled // unreachable; GenerateVerified stores the artifact
	}
	return data, nil
})

// pinArtifact returns a re-sealed copy of the base artifact with the
// special-input table pinning each xs[i] to proxy at every level — a
// self-consistent artifact (it passes load verification) whose served
// bits at xs differ from any artifact pinning a different proxy.
func pinArtifact(t *testing.T, xs []float64, proxy float64) []byte {
	t.Helper()
	base, err := baseArtifact()
	if err != nil {
		t.Fatal(err)
	}
	res, err := decodeResult(base)
	if err != nil {
		t.Fatal(err)
	}
	for li := range res.Specials {
		sp := res.Specials[li]
		for _, x := range xs {
			i := sort.Search(len(sp), func(i int) bool { return sp[i].X >= x })
			if i < len(sp) && math.Float64bits(sp[i].X) == math.Float64bits(x) {
				sp[i].Proxy = proxy
				continue
			}
			sp = append(sp, gen.SpecialInput{})
			copy(sp[i+1:], sp[i:])
			sp[i] = gen.SpecialInput{X: x, Proxy: proxy}
		}
		res.Specials[li] = sp
	}
	var e pipeline.Enc
	gen.ResultCodec.Encode(&e, res)
	return pipeline.Seal(gen.ResultCodec.Name, gen.ResultCodec.Version, e.Bytes())
}

// pinnedInputs picks two regular bit patterns of the serving format whose
// output a pinned special actually controls (finite decode, not already
// handled by the reduction scheme's special-case path).
func pinnedInputs(t *testing.T) (bits []uint64, xs []float64) {
	t.Helper()
	out := fp.MustFormat(10, 8)
	base, err := baseArtifact()
	if err != nil {
		t.Fatal(err)
	}
	res, err := decodeResult(base)
	if err != nil {
		t.Fatal(err)
	}
	for b := uint64(0); b < out.NumValues() && len(bits) < 2; b++ {
		x := out.Decode(b)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if _, regular := res.Scheme().Reduce(x); !regular {
			continue
		}
		bits = append(bits, b)
		xs = append(xs, x)
	}
	if len(bits) < 2 {
		t.Fatal("no regular inputs found in the serving format")
	}
	return bits, xs
}

// storeWith returns a memory store holding artifact under the server's key.
func storeWith(t *testing.T, artifact []byte) pipeline.Store {
	t.Helper()
	st := pipeline.NewMemStore()
	if err := st.Put(gen.VerifyKey(reloadFn, reloadOpts()), gen.ResultCodec.Name, gen.ResultCodec.Version, artifact); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHotReloadNeverMixes is the hot-reload acceptance test. Generation A
// pins two probe inputs to 1.0, generation B pins them to 2.0. Under
// concurrent traffic the store content is swapped from A to B and the
// server reloaded; every response must answer both probes from one
// generation — (A,A) or (B,B), never (A,B) — and after the reload settles
// the server answers from B.
func TestHotReloadNeverMixes(t *testing.T) {
	out := fp.MustFormat(10, 8)
	probeBits, probeXs := pinnedInputs(t)
	artA := pinArtifact(t, probeXs, 1.0)
	artB := pinArtifact(t, probeXs, 2.0)
	wantA := out.FromFloat64(1.0, fp.RoundNearestEven)
	wantB := out.FromFloat64(2.0, fp.RoundNearestEven)
	if wantA == wantB {
		t.Fatal("probe proxies round to the same bits; the test is vacuous")
	}

	st := storeWith(t, artA)
	s := newTestServer(t, Config{Store: st, Opt: reloadOpts(), Queue: 64})
	if src := s.KernelSet().Source(reloadFn); src != "store" {
		t.Fatalf("source %q, want store", src)
	}

	// The request brackets the batch with the two pinned probes, so a
	// response mixing generations would disagree between its ends.
	inputs := append(append([]uint64{probeBits[0]}, testInputs(30)...), probeBits[1])
	req := Request{Fn: reloadFn, Out: out, Mode: fp.RoundNearestEven, Inputs: inputs}
	check := func(outBits []uint64, wantFirst, wantLast uint64) bool {
		return outBits[0] == wantFirst && outBits[len(outBits)-1] == wantLast
	}

	var stop atomic.Bool
	var mixes, fromB atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				outBits, err := s.Evaluate(context.Background(), req)
				if err != nil {
					t.Errorf("Evaluate under reload: %v", err)
					return
				}
				switch {
				case check(outBits, wantA, wantA):
				case check(outBits, wantB, wantB):
					fromB.Add(1)
				default:
					mixes.Add(1)
					t.Errorf("mixed-generation response: first=%#x last=%#x (A=%#x B=%#x)",
						outBits[0], outBits[len(outBits)-1], wantA, wantB)
				}
			}
		}()
	}

	// Swap the store content mid-traffic and hot-reload.
	if err := st.Put(gen.VerifyKey(reloadFn, reloadOpts()), gen.ResultCodec.Name, gen.ResultCodec.Version, artB); err != nil {
		t.Fatal(err)
	}
	if left := s.reloadOnce(""); left != "" {
		t.Fatalf("reload failed (lastFailed %q)", left)
	}
	// Let post-reload traffic flow, then stop.
	waitFor(t, "post-reload responses", func() bool { return fromB.Load() > 0 || mixes.Load() > 0 })
	stop.Store(true)
	wg.Wait()

	// After the reload settles every answer comes from B.
	outBits, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !check(outBits, wantB, wantB) {
		t.Errorf("post-reload response not from generation B: first=%#x last=%#x", outBits[0], outBits[len(outBits)-1])
	}
}

// TestReloadFailureKeepsOld: a corrupt artifact in the store is rejected
// and counted; the previous generation keeps serving; the failed
// fingerprint is remembered so the watcher does not retry-and-log-spam;
// and a subsequent good generation reloads normally.
func TestReloadFailureKeepsOld(t *testing.T) {
	probeBits, probeXs := pinnedInputs(t)
	out := fp.MustFormat(10, 8)
	artA := pinArtifact(t, probeXs, 1.0)
	artB := pinArtifact(t, probeXs, 2.0)
	key := gen.VerifyKey(reloadFn, reloadOpts())

	rec := obs.New("test")
	st := storeWith(t, artA)
	s := newTestServer(t, Config{Store: st, Opt: reloadOpts(), Span: rec.Root()})
	ksA := s.KernelSet()
	counters := func(c obs.Counter) int64 { return rec.Report().Counters[string(c)] }

	// Corrupt swap: rejected, counted, old tables keep serving.
	corrupt := append([]byte(nil), artB...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := st.Put(key, gen.ResultCodec.Name, gen.ResultCodec.Version, corrupt); err != nil {
		t.Fatal(err)
	}
	lastFailed := s.reloadOnce("")
	if lastFailed == "" {
		t.Fatal("corrupt reload reported success")
	}
	if got := counters(obs.CtrServeReloadFailed); got != 1 {
		t.Errorf("serve.reload.failed = %d, want 1", got)
	}
	if s.KernelSet() != ksA {
		t.Error("corrupt reload swapped the kernel set")
	}
	req := Request{Fn: reloadFn, Out: out, Mode: fp.RoundNearestEven, Inputs: probeBits}
	outBits, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if want := out.FromFloat64(1.0, fp.RoundNearestEven); outBits[0] != want {
		t.Errorf("after failed reload: served %#x, want generation A %#x", outBits[0], want)
	}

	// The failed fingerprint is remembered: no second attempt, no second count.
	if again := s.reloadOnce(lastFailed); again != lastFailed {
		t.Errorf("suppressed retry returned %q, want unchanged %q", again, lastFailed)
	}
	if got := counters(obs.CtrServeReloadFailed); got != 1 {
		t.Errorf("serve.reload.failed after suppressed retry = %d, want 1", got)
	}

	// A good generation then reloads normally.
	if err := st.Put(key, gen.ResultCodec.Name, gen.ResultCodec.Version, artB); err != nil {
		t.Fatal(err)
	}
	if left := s.reloadOnce(lastFailed); left != "" {
		t.Fatal("good reload did not succeed")
	}
	if got := counters(obs.CtrServeReloads); got != 1 {
		t.Errorf("serve.reloads = %d, want 1", got)
	}
	outBits, err = s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if want := out.FromFloat64(2.0, fp.RoundNearestEven); outBits[0] != want {
		t.Errorf("after good reload: served %#x, want generation B %#x", outBits[0], want)
	}
}

// TestNewDegradesOnBadStore: a server started against a store whose
// artifact fails verification degrades to the builtin tables (counted)
// instead of refusing to start.
func TestNewDegradesOnBadStore(t *testing.T) {
	base, err := baseArtifact()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), base...)
	corrupt[len(corrupt)/3] ^= 0x08
	rec := obs.New("test")
	s := newTestServer(t, Config{Store: storeWith(t, corrupt), Opt: reloadOpts(), Span: rec.Root()})
	if src := s.KernelSet().Source(reloadFn); src != "builtin" {
		t.Errorf("degraded source %q, want builtin", src)
	}
	if got := rec.Report().Counters[string(obs.CtrServeReloadFailed)]; got != 1 {
		t.Errorf("serve.reload.failed = %d, want 1", got)
	}
}

// TestWatcherReloads: the background watcher picks up a store change
// without an explicit reload call.
func TestWatcherReloads(t *testing.T) {
	_, probeXs := pinnedInputs(t)
	artA := pinArtifact(t, probeXs, 1.0)
	artB := pinArtifact(t, probeXs, 2.0)
	st := storeWith(t, artA)
	s := newTestServer(t, Config{Store: st, Opt: reloadOpts(), ReloadInterval: 5 * time.Millisecond})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	before := s.KernelSet().Fingerprint()
	if err := st.Put(gen.VerifyKey(reloadFn, reloadOpts()), gen.ResultCodec.Name, gen.ResultCodec.Version, artB); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watcher to reload", func() bool { return s.KernelSet().Fingerprint() != before })
}
