package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/libm"
	"repro/internal/obs"
)

// The robustness acceptance tests of the serving layer. Three are the
// PR's acceptance criteria verbatim: a drain lets every admitted request
// complete with responses bit-identical to a direct libm EvalBatch call;
// flooding past the queue bound yields only typed overload errors with no
// goroutine leaks; and a mid-traffic table swap never mixes generations
// inside one response (reload_test.go). The rest pin the panic isolation,
// deadline and endpoint-protocol contracts.

var testFormat = fp.MustFormat(10, 8)

// newTestServer builds an unstarted server over the baked-in tables.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startTestServer additionally binds loopback HTTP and bulk listeners and
// tears the server down with the test.
func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := newTestServer(t, cfg)
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// directBits evaluates inputs straight through libm's batch kernel — the
// bit-identity reference every served response is held to.
func directBits(t *testing.T, fn bigmath.Func, inputs []uint64) []uint64 {
	t.Helper()
	xs := make([]float64, len(inputs))
	for i, b := range inputs {
		xs[i] = testFormat.Decode(b)
	}
	dst := make([]uint64, len(xs))
	if err := libm.EvalBatch(fn, dst, xs, testFormat, fp.RoundNearestEven); err != nil {
		t.Fatal(err)
	}
	return dst
}

// testInputs is a deterministic spread over the test format's patterns.
func testInputs(n int) []uint64 {
	inputs := make([]uint64, n)
	nv := testFormat.NumValues()
	for i := range inputs {
		inputs[i] = (uint64(i) * 37) % nv
	}
	return inputs
}

func postEval(t *testing.T, addr string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestEvaluateMatchesLibm: the core path answers bit-identically to a
// direct libm EvalBatch for every function and standard mode.
func TestEvaluateMatchesLibm(t *testing.T) {
	s := newTestServer(t, Config{})
	inputs := testInputs(64)
	for _, fn := range bigmath.AllFuncs {
		for _, mode := range fp.StandardModes {
			got, err := s.Evaluate(context.Background(), Request{Fn: fn, Out: testFormat, Mode: mode, Inputs: inputs})
			if err != nil {
				t.Fatalf("%v/%v: %v", fn, mode, err)
			}
			xs := make([]float64, len(inputs))
			for i, b := range inputs {
				xs[i] = testFormat.Decode(b)
			}
			want := make([]uint64, len(xs))
			if err := libm.EvalBatch(fn, want, xs, testFormat, mode); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v/%v input %#x: served %#x, libm %#x", fn, mode, inputs[i], got[i], want[i])
				}
			}
		}
	}
}

// TestEvaluateRejections: malformed requests fail typed before touching a
// kernel — out-of-range bit patterns and oversized batches.
func TestEvaluateRejections(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4})
	var re *requestError
	_, err := s.Evaluate(context.Background(), Request{Fn: bigmath.Log2, Out: testFormat, Inputs: []uint64{testFormat.NumValues()}})
	if !errors.As(err, &re) {
		t.Errorf("out-of-range input: got %v, want *requestError", err)
	}
	_, err = s.Evaluate(context.Background(), Request{Fn: bigmath.Log2, Out: testFormat, Inputs: make([]uint64, 5)})
	if !errors.As(err, &re) {
		t.Errorf("oversized batch: got %v, want *requestError", err)
	}
}

// TestOverloadShedsTyped is the overload acceptance test: with the queue
// pinned full, every extra request is shed as a typed serve-overload
// fault — and after the flood drains, the server leaks no goroutines.
func TestOverloadShedsTyped(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		const queue = 4
		s := newTestServer(t, Config{Queue: queue})
		s.holdRequests = make(chan struct{})
		inputs := testInputs(8)
		req := Request{Fn: bigmath.Log2, Out: testFormat, Inputs: inputs}

		// Fill every admission slot with held requests.
		var wg sync.WaitGroup
		errs := make([]error, queue)
		outs := make([][]uint64, queue)
		for i := 0; i < queue; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i], errs[i] = s.Evaluate(context.Background(), req)
			}(i)
		}
		waitFor(t, "queue to fill", func() bool { return len(s.sem) == queue })

		// Flood: every request past the bound must shed, typed, immediately.
		const flood = 64
		for i := 0; i < flood; i++ {
			_, err := s.Evaluate(context.Background(), req)
			if !errors.Is(err, &fault.Error{Code: fault.CodeOverload}) {
				t.Fatalf("flood request %d: got %v, want serve-overload", i, err)
			}
		}
		// Release the held requests: they complete normally, bit-identical.
		close(s.holdRequests)
		wg.Wait()
		want := directBits(t, bigmath.Log2, inputs)
		for i := 0; i < queue; i++ {
			if errs[i] != nil {
				t.Fatalf("held request %d: %v", i, errs[i])
			}
			if !equalBits(outs[i], want) {
				t.Fatalf("held request %d answered wrong bits", i)
			}
		}
	}()
	// Zero goroutine leaks: the flood and the held requests are gone.
	waitFor(t, "goroutines to settle", func() bool { return runtime.NumGoroutine() <= before+1 })
}

// TestOverloadCounted: the shed path increments serve.shed on a live span.
func TestOverloadCounted(t *testing.T) {
	rec := obs.New("test")
	s := newTestServer(t, Config{Queue: 1, Span: rec.Root()})
	s.holdRequests = make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Evaluate(context.Background(), Request{Fn: bigmath.Log2, Out: testFormat, Inputs: testInputs(1)})
	}()
	waitFor(t, "queue to fill", func() bool { return len(s.sem) == 1 })
	_, err := s.Evaluate(context.Background(), Request{Fn: bigmath.Log2, Out: testFormat, Inputs: testInputs(1)})
	if fault.CodeOf(err) != fault.CodeOverload {
		t.Fatalf("got %v, want serve-overload", err)
	}
	if got := rec.Report().Counters[string(obs.CtrServeShed)]; got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}
	close(s.holdRequests)
	<-done
}

// TestDrainCompletesAdmitted is the drain acceptance test: requests in
// flight when Shutdown begins all complete with responses bit-identical
// to a direct libm EvalBatch call; requests arriving during the drain are
// refused typed (serve-draining); Shutdown returns only after the
// in-flight work is done.
func TestDrainCompletesAdmitted(t *testing.T) {
	const inFlight = 6
	s := startTestServer(t, Config{Queue: inFlight * 2})
	s.holdRequests = make(chan struct{})
	inputs := testInputs(32)
	req := Request{Fn: bigmath.Exp2, Out: testFormat, Inputs: inputs}

	var wg sync.WaitGroup
	errs := make([]error, inFlight)
	outs := make([][]uint64, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Evaluate(context.Background(), req)
		}(i)
	}
	waitFor(t, "requests to be admitted", func() bool { return len(s.sem) == inFlight })

	// Begin the drain concurrently; it must block on the held requests.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, "server to start draining", s.draining.Load)

	// A request arriving mid-drain is refused typed, not hung.
	if _, err := s.Evaluate(context.Background(), req); fault.CodeOf(err) != fault.CodeDraining {
		t.Fatalf("mid-drain request: got %v, want serve-draining", err)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while requests were still held", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the admitted requests: they complete, then Shutdown returns.
	close(s.holdRequests)
	wg.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	want := directBits(t, bigmath.Exp2, inputs)
	for i := 0; i < inFlight; i++ {
		if errs[i] != nil {
			t.Fatalf("admitted request %d: %v", i, errs[i])
		}
		if !equalBits(outs[i], want) {
			t.Fatalf("admitted request %d: response not bit-identical to libm.EvalBatch", i)
		}
	}
}

// TestPanicIsolation: a panic inside one request becomes that request's
// typed serve-panic error; the admission slot is released and the server
// keeps answering.
func TestPanicIsolation(t *testing.T) {
	rec := obs.New("test")
	s := newTestServer(t, Config{Queue: 2, Span: rec.Root()})
	boom := true
	s.panicFn = func(Request) {
		if boom {
			boom = false
			panic("injected request panic")
		}
	}
	req := Request{Fn: bigmath.Sinh, Out: testFormat, Inputs: testInputs(4)}
	_, err := s.Evaluate(context.Background(), req)
	if fault.CodeOf(err) != fault.CodeServePanic {
		t.Fatalf("got %v, want serve-panic", err)
	}
	if got := rec.Report().Counters[string(obs.CtrServePanics)]; got != 1 {
		t.Errorf("serve.panics = %d, want 1", got)
	}
	// The slot was released and the next request works.
	out, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatalf("request after panic: %v", err)
	}
	if !equalBits(out, directBits(t, bigmath.Sinh, req.Inputs)) {
		t.Error("request after panic answered wrong bits")
	}
	if n := len(s.sem); n != 0 {
		t.Errorf("%d admission slots leaked", n)
	}
}

// TestDeadlineCancels: an expired context stops the batch mid-way with a
// typed canceled fault.
func TestDeadlineCancels(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Evaluate(ctx, Request{Fn: bigmath.Log2, Out: testFormat, Inputs: testInputs(8)})
	if fault.CodeOf(err) != fault.CodeCanceled {
		t.Fatalf("got %v, want canceled", err)
	}
}

// TestHTTPEndToEnd: the JSON endpoint round-trips a request bit-identically
// and maps failures to documented statuses.
func TestHTTPEndToEnd(t *testing.T) {
	s := startTestServer(t, Config{})
	addr := s.HTTPAddr().String()
	inputs := testInputs(16)
	body, _ := json.Marshal(map[string]interface{}{
		"func": "log2", "format": "F10,8", "mode": "rn", "inputs": inputs,
	})
	resp, data := postEval(t, addr, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Outputs []uint64 `json:"outputs"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !equalBits(out.Outputs, directBits(t, bigmath.Log2, inputs)) {
		t.Error("HTTP response not bit-identical to libm.EvalBatch")
	}

	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"bad-func", `{"func":"tan","format":"F10,8","inputs":[1]}`, http.StatusBadRequest, "bad-request"},
		{"bad-format", `{"func":"log2","format":"bogus","inputs":[1]}`, http.StatusBadRequest, "bad-request"},
		{"bad-json", `{`, http.StatusBadRequest, "bad-request"},
		{"out-of-range", `{"func":"log2","format":"F10,8","inputs":[99999]}`, http.StatusBadRequest, "bad-request"},
		{"too-wide", `{"func":"log2","format":"F34,8","inputs":[1]}`, http.StatusNotFound, "no-tables"},
	} {
		resp, data := postEval(t, addr, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code != tc.code {
			t.Errorf("%s: error code %q (err %v), want %q", tc.name, eb.Error.Code, err, tc.code)
		}
	}
}

// TestHealthEndpoints: healthz is liveness, readyz tracks draining, and
// statusz names every served function's table source.
func TestHealthEndpoints(t *testing.T) {
	s := startTestServer(t, Config{})
	addr := s.HTTPAddr().String()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + addr + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Fingerprint string            `json:"fingerprint"`
		Functions   map[string]string `json:"functions"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint == "" || len(st.Functions) != len(bigmath.AllFuncs) {
		t.Errorf("statusz: fingerprint %q, %d functions", st.Fingerprint, len(st.Functions))
	}
	for fn, src := range st.Functions {
		if src != "builtin" {
			t.Errorf("statusz: %s source %q, want builtin", fn, src)
		}
	}
}

// TestBulkEndToEnd: the framed endpoint answers bit-identically, reports
// typed errors with the same stable codes as HTTP, and echoes request IDs.
func TestBulkEndToEnd(t *testing.T) {
	s := startTestServer(t, Config{})
	c, err := DialBulk(s.BulkAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inputs := testInputs(64)
	for _, fn := range []bigmath.Func{bigmath.Log2, bigmath.CosPi} {
		out, err := c.Eval(Request{Fn: fn, Out: testFormat, Mode: fp.RoundNearestEven, Inputs: inputs})
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		if !equalBits(out, directBits(t, fn, inputs)) {
			t.Errorf("%v: bulk response not bit-identical to libm.EvalBatch", fn)
		}
	}
	// A typed failure leaves the connection usable.
	_, err = c.Eval(Request{Fn: bigmath.Log2, Out: fp.MustFormat(34, 8), Inputs: []uint64{1}})
	var be *BulkError
	if !errors.As(err, &be) || be.Code != "no-tables" {
		t.Fatalf("too-wide bulk request: got %v, want BulkError[no-tables]", err)
	}
	if out, err := c.Eval(Request{Fn: bigmath.Log2, Out: testFormat, Inputs: inputs[:4]}); err != nil || len(out) != 4 {
		t.Fatalf("request after typed error: %v (%d outputs)", err, len(out))
	}
}

// TestBulkDrainDisconnectsIdle: Shutdown wakes an idle bulk connection
// and returns without waiting for its (infinite) idle timeout.
func TestBulkDrainDisconnectsIdle(t *testing.T) {
	s := startTestServer(t, Config{IdleTimeout: time.Hour})
	c, err := DialBulk(s.BulkAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prove the connection is live first.
	if _, err := c.Eval(Request{Fn: bigmath.Log2, Out: testFormat, Inputs: testInputs(2)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with an idle bulk connection: %v", err)
	}
}

func equalBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitFor polls cond to avoid sleeping for fixed durations in tests.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
		runtime.Gosched()
	}
}
