package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/bigmath"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/libm"
)

// The HTTP/JSON surface. One POST endpoint does the work; the health
// pair makes the server orchestratable (liveness vs readiness are
// deliberately distinct: a draining server is alive but not ready).
//
//	POST /eval      {"func":"log2","format":"F16,8","mode":"rn","inputs":[…]}
//	                → {"outputs":[…]} | {"error":{"code":…,"message":…}}
//	GET  /healthz   liveness: 200 while the process serves at all
//	GET  /readyz    readiness: 200 only when tables are loaded and the
//	                server is not draining
//	GET  /statusz   operational snapshot: fingerprint, per-function table
//	                provenance, queue bound

// maxBodyBytes bounds one JSON request body: 16 bytes per input in the
// densest encoding puts a MaxBatch request well inside it; anything larger
// is a client bug or abuse, rejected before parsing.
const maxBodyBytes = 64 << 20

// evalPayload is the POST /eval request body.
type evalPayload struct {
	Func   string   `json:"func"`
	Format string   `json:"format"`
	Mode   string   `json:"mode"`
	Inputs []uint64 `json:"inputs"`
}

// errorBody is the JSON error envelope; Code is the stable fault code
// (serve-overload, serve-draining, canceled, serve-panic, bad-request,
// no-tables) that the README troubleshooting table documents.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// handler assembles the mux.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/eval", s.handleEval)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if len(s.kset.Load().Functions()) == 0 {
			http.Error(w, "no tables loaded", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statusz", s.handleStatus)
	return mux
}

// handleEval answers one JSON evaluation request.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad-request", "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var p evalPayload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("decode request: %v", err))
		return
	}
	req, err := parseRequest(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	out, err := s.Evaluate(r.Context(), req)
	if err != nil {
		status, code := errStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Outputs []uint64 `json:"outputs"`
	}{Outputs: out})
}

// handleStatus reports the serving state for operators: which generation
// of tables is live and where each function's coefficients came from.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ks := s.kset.Load()
	type status struct {
		Fingerprint string            `json:"fingerprint"`
		Draining    bool              `json:"draining"`
		Queue       int               `json:"queue"`
		Functions   map[string]string `json:"functions"`
	}
	st := status{
		Fingerprint: ks.Fingerprint(),
		Draining:    s.draining.Load(),
		Queue:       s.cfg.Queue,
		Functions:   make(map[string]string),
	}
	for _, fn := range ks.Functions() {
		st.Functions[fn.String()] = ks.Source(fn)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// parseRequest resolves the string-typed JSON fields.
func parseRequest(p evalPayload) (Request, error) {
	fn, err := bigmath.ParseFunc(p.Func)
	if err != nil {
		return Request{}, err
	}
	f, err := fp.ParseFormat(p.Format)
	if err != nil {
		return Request{}, err
	}
	mode := fp.RoundNearestEven
	if p.Mode != "" {
		mode, err = fp.ParseMode(p.Mode)
		if err != nil {
			return Request{}, err
		}
	}
	return Request{Fn: fn, Out: f, Mode: mode, Inputs: p.Inputs}, nil
}

// errStatus maps an Evaluate error to its HTTP status and stable code.
func errStatus(err error) (int, string) {
	var re *requestError
	if errors.As(err, &re) {
		return http.StatusBadRequest, "bad-request"
	}
	if errors.Is(err, libm.ErrNoTables) || errors.Is(err, eval.ErrTooWide) {
		return http.StatusNotFound, "no-tables"
	}
	switch fault.CodeOf(err) {
	case fault.CodeOverload:
		return http.StatusTooManyRequests, string(fault.CodeOverload)
	case fault.CodeDraining:
		return http.StatusServiceUnavailable, string(fault.CodeDraining)
	case fault.CodeCanceled:
		return http.StatusServiceUnavailable, string(fault.CodeCanceled)
	case fault.CodeServePanic:
		return http.StatusInternalServerError, string(fault.CodeServePanic)
	}
	return http.StatusInternalServerError, "internal"
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var b errorBody
	b.Error.Code = code
	b.Error.Message = msg
	json.NewEncoder(w).Encode(b)
}
