// Package serve is the long-lived evaluation service on top of the
// batched kernels of internal/eval: a stdlib-only HTTP/JSON endpoint plus
// a framed binary bulk endpoint (the store-wire length-prefixed framing)
// answering correctly rounded evaluations for every generated function ×
// format × rounding mode.
//
// The package is robustness work first and serving work second. A process
// that runs for days must survive overload, slow clients, coefficient
// regeneration and partial failure, so the core mechanisms are:
//
//   - Bounded admission: at most Config.Queue requests hold evaluation
//     slots at once; the rest are shed immediately with a typed
//     fault.Error (serve-overload → HTTP 429). No queue grows without
//     bound and no goroutine pile-up survives an overload spike.
//   - Per-request deadlines: Config.RequestTimeout is propagated as a
//     context into the eval path (Kernel.EvalBatchCtx checks it between
//     chunks), so a slow or departed client stops consuming CPU
//     mid-batch.
//   - Panic isolation: a panic while serving one request is recovered,
//     answered as a typed serve-panic error (HTTP 500), counted, and the
//     server keeps serving.
//   - Coefficient hot-reload: a watcher polls the artifact store's
//     fingerprint and atomically swaps in a freshly verified KernelSet
//     when regeneration publishes new tables; a set that fails
//     verification is rejected, counted (serve.reload.failed) and the
//     previous tables keep serving. Requests snapshot the set once, so a
//     response is never computed against a mix of generations.
//   - Graceful drain: Shutdown stops admitting, lets every admitted
//     request complete (HTTP and bulk), wakes idle bulk readers, and
//     returns once the listeners are quiet — the command then flushes the
//     observability report.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Defaults applied by New for zero-valued Config fields.
const (
	DefaultQueue          = 256
	DefaultRequestTimeout = 5 * time.Second
	DefaultIdleTimeout    = 2 * time.Minute
	DefaultMaxBatch       = 1 << 20
)

// Config parameterizes a Server. The zero value serves the baked-in libm
// tables with the defaults above and no reload watcher.
type Config struct {
	// Queue bounds admitted requests (in service plus queued); requests
	// beyond it are shed with a serve-overload fault (HTTP 429).
	Queue int
	// RequestTimeout is the per-request deadline propagated into the eval
	// path; 0 selects DefaultRequestTimeout, negative disables.
	RequestTimeout time.Duration
	// IdleTimeout is the bulk connection's per-frame read deadline: a
	// client that sends nothing for this long is disconnected.
	IdleTimeout time.Duration
	// MaxBatch bounds the inputs of one request.
	MaxBatch int
	// Store is the artifact store coefficients load (and hot-reload)
	// from; nil serves the baked-in tables only.
	Store pipeline.Store
	// Opt fingerprints the store artifacts to load: the server must be
	// started with the same -seed/-bits/-levels/-progressive-ro the
	// generator ran with (worker counts never matter).
	Opt gen.Options
	// ReloadInterval is the store-fingerprint poll period of the
	// hot-reload watcher; 0 disables watching (Store still seeds the
	// initial set).
	ReloadInterval time.Duration
	// Logf logs serving events; nil is silent.
	Logf pipeline.Logf
	// Span receives the serve.* and eval.* counters; nil disables
	// observability (every write is a nil-check no-op).
	Span *obs.Span
}

// Server is the long-lived evaluation service. Create with New, start
// with Start, stop with Shutdown.
type Server struct {
	cfg  Config
	kset atomic.Pointer[KernelSet]

	// sem is the admission queue: a request holds one token from
	// admission to completion. Shutdown drains by acquiring every token,
	// so "all tokens held by Shutdown" is exactly "no request in flight".
	sem      chan struct{}
	draining atomic.Bool
	drained  atomic.Bool

	httpSrv *http.Server
	httpLn  net.Listener
	bulkLn  net.Listener

	mu        sync.Mutex
	bulkConns map[net.Conn]struct{}
	connWG    sync.WaitGroup // bulk accept loop + connections
	watchStop chan struct{}
	watchWG   sync.WaitGroup

	// Test hooks (same-package tests only). holdRequests, when non-nil,
	// parks every admitted request until a value is received; panicFn
	// runs inside the request path to exercise panic isolation.
	holdRequests chan struct{}
	panicFn      func(req Request)
}

// New builds a server: defaults applied, initial kernel set loaded. A
// store whose artifacts fail verification degrades to the baked-in tables
// (counted as serve.reload.failed) rather than refusing to start — the
// operator sees the log line, the health endpoints stay green, and a
// later successful regeneration hot-reloads the store tables in.
func New(cfg Config) (*Server, error) {
	if cfg.Queue == 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.Queue < 1 {
		return nil, fmt.Errorf("serve: queue bound %d: must be at least 1", cfg.Queue)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.Queue),
		bulkConns: make(map[net.Conn]struct{}),
	}
	ks, err := LoadKernelSet(cfg.Store, cfg.Opt, cfg.Span, cfg.Logf)
	if err != nil {
		s.logf("serve: store tables rejected, serving builtin tables: %v", err)
		cfg.Span.Add(obs.CtrServeReloadFailed, 1)
		ks, err = LoadKernelSet(nil, cfg.Opt, cfg.Span, cfg.Logf)
		if err != nil {
			return nil, err
		}
	}
	if len(ks.Functions()) == 0 {
		return nil, fmt.Errorf("serve: no tables to serve (no store artifacts, no builtin tables)")
	}
	s.kset.Store(ks)
	return s, nil
}

// KernelSet returns the currently served set (tests pin which generation
// answered).
func (s *Server) KernelSet() *KernelSet { return s.kset.Load() }

// Start listens on httpAddr (required) and bulkAddr (empty disables the
// bulk endpoint) and serves until Shutdown. It returns once both
// listeners are bound, so callers can read the resolved addresses.
func (s *Server) Start(httpAddr, bulkAddr string) error {
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return fmt.Errorf("serve: listen http %s: %w", httpAddr, err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("serve: http: %v", err)
		}
	}()
	if bulkAddr != "" {
		bln, err := net.Listen("tcp", bulkAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: listen bulk %s: %w", bulkAddr, err)
		}
		s.bulkLn = bln
		s.connWG.Add(1)
		go s.acceptBulk(bln)
	}
	if s.cfg.ReloadInterval > 0 && s.cfg.Store != nil {
		s.watchStop = make(chan struct{})
		s.watchWG.Add(1)
		go s.watchReload()
	}
	return nil
}

// HTTPAddr returns the bound HTTP listener address.
func (s *Server) HTTPAddr() net.Addr { return s.httpLn.Addr() }

// BulkAddr returns the bound bulk listener address, nil when disabled.
func (s *Server) BulkAddr() net.Addr {
	if s.bulkLn == nil {
		return nil
	}
	return s.bulkLn.Addr()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: stop admitting (429s become serve-draining
// 503s), let every admitted request complete and its response reach the
// client, disconnect idle bulk connections, stop the reload watcher. The
// context bounds the wait; on expiry remaining connections are closed
// hard and the context error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.drained.Load() {
		return nil // already fully drained; Shutdown is idempotent
	}
	s.draining.Store(true)
	// Stop the watcher first: a reload mid-drain would be wasted work.
	if s.watchStop != nil {
		close(s.watchStop)
		s.watchWG.Wait()
		s.watchStop = nil
	}
	// HTTP: stop accepting, wait for in-flight handlers (each holds an
	// admission token until its response is written).
	var httpErr error
	if s.httpSrv != nil {
		httpErr = s.httpSrv.Shutdown(ctx)
	}
	// Bulk: stop accepting, wake idle readers (their next read fails, the
	// loop observes draining and exits after answering any frame already
	// read), then wait for the connection goroutines.
	if s.bulkLn != nil {
		s.bulkLn.Close()
	}
	s.nudgeBulkConns()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.closeBulkConns()
		<-done
		return ctx.Err()
	}
	// Every admitted request holds a token; holding all of them proves
	// the queue is empty and nothing is mid-evaluation.
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.drained.Store(true)
	return httpErr
}

// logf logs through the configured logger; nil is silent.
func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Request is one evaluation request, shared by the HTTP and bulk
// endpoints: evaluate fn over the bit patterns of out under mode.
type Request struct {
	Fn     bigmath.Func
	Out    fp.Format
	Mode   fp.Mode
	Inputs []uint64
}

// requestError is a malformed-request failure (HTTP 400): out-of-range
// inputs, oversized batches. Distinct from fault.Error because nothing
// failed — the client asked for something that does not exist.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

// badRequestf builds a requestError.
func badRequestf(format string, args ...interface{}) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// Evaluate runs one request through admission, deadline, panic isolation
// and the batched kernel of the current set. The returned slice has one
// output bit pattern per input; the error is a *fault.Error (overload,
// draining, canceled, panic), a *requestError (malformed), or a
// kernel-lookup failure (unknown function/format).
func (s *Server) Evaluate(ctx context.Context, req Request) (out []uint64, err error) {
	s.cfg.Span.Add(obs.CtrServeRequests, 1)
	if s.draining.Load() {
		return nil, fault.New(fault.CodeDraining, "serve", "admit", nil).WithFunc(req.Fn.String())
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.cfg.Span.Add(obs.CtrServeShed, 1)
		return nil, fault.New(fault.CodeOverload, "serve", "admit", nil).WithFunc(req.Fn.String())
	}
	defer func() { <-s.sem }()
	if s.holdRequests != nil {
		select {
		case <-s.holdRequests:
		case <-ctx.Done():
		}
	}
	// Panic isolation: one request's panic becomes its typed 500; the
	// token release above still runs, so the slot is never leaked.
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Span.Add(obs.CtrServePanics, 1)
			s.logf("serve: panic isolated to one request: %v", r)
			out, err = nil, fault.New(fault.CodeServePanic, "serve", "eval",
				fmt.Errorf("%v", r)).WithFunc(req.Fn.String())
		}
	}()
	if s.panicFn != nil {
		s.panicFn(req)
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if len(req.Inputs) > s.cfg.MaxBatch {
		return nil, badRequestf("batch of %d inputs exceeds the %d-input bound", len(req.Inputs), s.cfg.MaxBatch)
	}
	ks := s.kset.Load() // one snapshot: the whole response comes from one generation
	k, err := ks.Kernel(req.Fn, req.Out, req.Mode)
	if err != nil {
		return nil, err
	}
	nv := req.Out.NumValues()
	xs := make([]float64, len(req.Inputs))
	for i, b := range req.Inputs {
		if b >= nv {
			return nil, badRequestf("input %d (%#x) is not a %v bit pattern", i, b, req.Out)
		}
		xs[i] = req.Out.Decode(b)
	}
	dst := make([]uint64, len(xs))
	if err := k.EvalBatchCtx(ctx, dst, xs); err != nil {
		s.cfg.Span.Add(obs.CtrServeCanceled, 1)
		return nil, fault.New(fault.CodeCanceled, "serve", "eval", err).WithFunc(req.Fn.String())
	}
	return dst, nil
}
