package serve

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/pipeline"
)

// The bulk endpoint: a framed binary protocol for high-volume clients
// (benchmarks, regeneration verifiers) that would drown in JSON encoding
// overhead. It reuses the store-wire transport exactly — 4-byte
// little-endian length prefix, sealed frame (codec "serve-wire" v1), one
// frame reader with one length cap — so transport corruption is caught by
// the frame checksum and the same fuzz target (FuzzStoreWire) exercises
// the decode path of both protocols. Requests carry a client-chosen ID the
// response must echo; a mismatch means the connection lost framing and the
// client abandons it.

const (
	bulkCodecName    = "serve-wire"
	bulkCodecVersion = 1
)

// Bulk response statuses.
const (
	bulkOK byte = iota
	bulkErr
)

// bulkRequest is one framed evaluation request.
type bulkRequest struct {
	ID     uint64
	Func   string
	Bits   int
	Exp    int
	Mode   string
	Inputs []uint64
}

// bulkResponse is one framed evaluation response. Code carries the stable
// fault code ("serve-overload", "serve-draining", …) on bulkErr.
type bulkResponse struct {
	ID      uint64
	Status  byte
	Code    string
	Errmsg  string
	Outputs []uint64
}

func encodeBulkRequest(r bulkRequest) []byte {
	var e pipeline.Enc
	e.U64(r.ID)
	e.Str(r.Func)
	e.Int(r.Bits)
	e.Int(r.Exp)
	e.Str(r.Mode)
	e.Int(len(r.Inputs))
	for _, v := range r.Inputs {
		e.U64(v)
	}
	return pipeline.Seal(bulkCodecName, bulkCodecVersion, e.Bytes())
}

func decodeBulkRequest(frame []byte) (bulkRequest, error) {
	payload, err := pipeline.Unseal(frame, bulkCodecName, bulkCodecVersion)
	if err != nil {
		return bulkRequest{}, err
	}
	d := pipeline.NewDec(payload)
	r := bulkRequest{ID: d.U64(), Func: d.Str(), Bits: d.Int(), Exp: d.Int(), Mode: d.Str()}
	n := d.Len()
	r.Inputs = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.Inputs = append(r.Inputs, d.U64())
	}
	if err := d.Done(); err != nil {
		return bulkRequest{}, err
	}
	return r, nil
}

func encodeBulkResponse(r bulkResponse) []byte {
	var e pipeline.Enc
	e.U64(r.ID)
	e.Byte(r.Status)
	e.Str(r.Code)
	e.Str(r.Errmsg)
	e.Int(len(r.Outputs))
	for _, v := range r.Outputs {
		e.U64(v)
	}
	return pipeline.Seal(bulkCodecName, bulkCodecVersion, e.Bytes())
}

func decodeBulkResponse(frame []byte) (bulkResponse, error) {
	payload, err := pipeline.Unseal(frame, bulkCodecName, bulkCodecVersion)
	if err != nil {
		return bulkResponse{}, err
	}
	d := pipeline.NewDec(payload)
	r := bulkResponse{ID: d.U64(), Status: d.Byte(), Code: d.Str(), Errmsg: d.Str()}
	n := d.Len()
	r.Outputs = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.Outputs = append(r.Outputs, d.U64())
	}
	if err := d.Done(); err != nil {
		return bulkResponse{}, err
	}
	if r.Status > bulkErr {
		return bulkResponse{}, fmt.Errorf("%w: unknown bulk status %d", pipeline.ErrCorrupt, r.Status)
	}
	return r, nil
}

// acceptBulk accepts bulk connections until the listener closes (drain).
func (s *Server) acceptBulk(ln net.Listener) {
	defer s.connWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.bulkConns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.serveBulkConn(conn)
	}
}

// serveBulkConn answers frames on one connection until the client hangs
// up, goes idle past IdleTimeout, or the server drains. Each read carries
// a deadline, so a silent client cannot hold a connection goroutine
// forever; Shutdown additionally nudges the deadline to now, waking idle
// readers immediately. A frame whose evaluation was already admitted
// before the drain began still gets its response — the write happens
// before the loop re-checks draining.
func (s *Server) serveBulkConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.bulkConns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		if s.draining.Load() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		frame, err := pipeline.ReadFrame(conn)
		if err != nil {
			// EOF, idle timeout, or a drain nudge; in every case the
			// client has no outstanding frame, so just disconnect.
			return
		}
		resp := s.answerBulk(frame)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if err := pipeline.WriteFrame(conn, encodeBulkResponse(resp)); err != nil {
			return
		}
	}
}

// answerBulk decodes one request frame and evaluates it. Decode failures
// answer with ID 0 — the connection lost framing and the client's ID check
// will abandon it, which is the correct outcome.
func (s *Server) answerBulk(frame []byte) bulkResponse {
	req, err := decodeBulkRequest(frame)
	if err != nil {
		return bulkResponse{Status: bulkErr, Code: "bad-request", Errmsg: err.Error()}
	}
	r, err := parseBulkRequest(req)
	if err != nil {
		return bulkResponse{ID: req.ID, Status: bulkErr, Code: "bad-request", Errmsg: err.Error()}
	}
	out, err := s.Evaluate(context.Background(), r)
	if err != nil {
		_, code := errStatus(err)
		return bulkResponse{ID: req.ID, Status: bulkErr, Code: code, Errmsg: err.Error()}
	}
	return bulkResponse{ID: req.ID, Status: bulkOK, Outputs: out}
}

// parseBulkRequest resolves the wire fields of one bulk request.
func parseBulkRequest(r bulkRequest) (Request, error) {
	fn, err := bigmath.ParseFunc(r.Func)
	if err != nil {
		return Request{}, err
	}
	f, err := fp.NewFormat(r.Bits, r.Exp)
	if err != nil {
		return Request{}, err
	}
	mode := fp.RoundNearestEven
	if r.Mode != "" {
		mode, err = fp.ParseMode(r.Mode)
		if err != nil {
			return Request{}, err
		}
	}
	return Request{Fn: fn, Out: f, Mode: mode, Inputs: r.Inputs}, nil
}

// nudgeBulkConns wakes idle bulk readers by expiring their read deadline;
// their blocked ReadFrame returns a timeout error and the loop exits.
func (s *Server) nudgeBulkConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.bulkConns {
		c.SetReadDeadline(time.Now())
	}
}

// closeBulkConns hard-closes every remaining bulk connection (drain
// deadline expired).
func (s *Server) closeBulkConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.bulkConns {
		c.Close()
	}
}

// A BulkClient speaks the framed protocol; used by rlibm-bench-serve and
// the serve tests. Not safe for concurrent use — open one client per
// goroutine, mirroring one connection per in-flight request stream.
type BulkClient struct {
	conn   net.Conn
	nextID uint64
}

// DialBulk connects to a server's bulk endpoint.
func DialBulk(addr string) (*BulkClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &BulkClient{conn: conn}, nil
}

// Close disconnects the client.
func (c *BulkClient) Close() error { return c.conn.Close() }

// BulkError is a typed server-side failure answered over the bulk
// protocol; Code is the same stable code the HTTP endpoint reports.
type BulkError struct {
	Code string
	Msg  string
}

func (e *BulkError) Error() string { return fmt.Sprintf("serve[%s]: %s", e.Code, e.Msg) }

// Eval round-trips one request. A *BulkError reports a typed server-side
// failure (overload, draining, …); any other error means the connection is
// unusable and should be closed.
func (c *BulkClient) Eval(req Request) ([]uint64, error) {
	c.nextID++
	wr := bulkRequest{
		ID:     c.nextID,
		Func:   req.Fn.String(),
		Bits:   req.Out.Bits(),
		Exp:    req.Out.ExpBits(),
		Mode:   req.Mode.String(),
		Inputs: req.Inputs,
	}
	if err := pipeline.WriteFrame(c.conn, encodeBulkRequest(wr)); err != nil {
		return nil, err
	}
	frame, err := pipeline.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	resp, err := decodeBulkResponse(frame)
	if err != nil {
		return nil, err
	}
	if resp.ID != wr.ID {
		return nil, fmt.Errorf("serve: bulk response ID %d does not echo request ID %d: connection lost framing", resp.ID, wr.ID)
	}
	if resp.Status != bulkOK {
		return nil, &BulkError{Code: resp.Code, Msg: resp.Errmsg}
	}
	return resp.Outputs, nil
}
