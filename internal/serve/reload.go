package serve

import (
	"time"

	"repro/internal/obs"
)

// Coefficient hot-reload. The generator publishes new verify artifacts
// into the store; a long-running server should pick them up without a
// restart, and a corrupted or half-published generation must never reach
// traffic. The watcher polls the store's cheap content fingerprint (no
// decode, no verification) every ReloadInterval; only when the
// fingerprint differs from the live set's does it pay for a full
// load-verify cycle. A set that loads and verifies is swapped in
// atomically (serve.reloads); one that fails is dropped, counted
// (serve.reload.failed) and the previous tables keep serving — degraded
// staleness beats wrong answers.

// watchReload is the watcher goroutine; Shutdown stops it via watchStop.
func (s *Server) watchReload() {
	defer s.watchWG.Done()
	t := time.NewTicker(s.cfg.ReloadInterval)
	defer t.Stop()
	var lastFailed string
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
			lastFailed = s.reloadOnce(lastFailed)
		}
	}
}

// reloadOnce runs one poll-compare-swap cycle. lastFailed is the most
// recent fingerprint that failed verification; passing it back suppresses
// a retry-and-log storm while a bad generation sits in the store — the
// watcher waits for the store content to change again. Tests call this
// directly for deterministic reload coverage.
func (s *Server) reloadOnce(lastFailed string) string {
	fprint := StoreFingerprint(s.cfg.Store, s.cfg.Opt)
	if fprint == s.kset.Load().Fingerprint() || fprint == lastFailed {
		return lastFailed
	}
	ks, err := LoadKernelSet(s.cfg.Store, s.cfg.Opt, s.cfg.Span, s.cfg.Logf)
	if err != nil {
		s.cfg.Span.Add(obs.CtrServeReloadFailed, 1)
		s.logf("serve: reload rejected, keeping current tables: %v", err)
		return fprint
	}
	s.kset.Store(ks)
	s.cfg.Span.Add(obs.CtrServeReloads, 1)
	s.logf("serve: reloaded tables, fingerprint %.12s…", ks.Fingerprint())
	return ""
}
