package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bigmath"
	"repro/internal/eval"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// A KernelSet is one immutable generation of serving tables: the
// gen.Result of every available function — loaded from the artifact
// store's verify artifacts when present, the baked-in libm tables
// otherwise — plus a lazily filled cache of compiled eval kernels. The
// server holds the current set behind an atomic pointer and every request
// snapshots it exactly once, so a hot reload swaps generations between
// requests, never inside one: a response is computed entirely against the
// old tables or entirely against the new ones.
type KernelSet struct {
	results [bigmath.NumFuncs]*gen.Result
	source  [bigmath.NumFuncs]string // "store", "builtin", or "" when absent
	fp      string
	span    *obs.Span
	kernels sync.Map // kernelKey → *eval.Kernel
}

// kernelKey identifies one compiled kernel within a set.
type kernelKey struct {
	fn   bigmath.Func
	bits int
	exp  int
	mode fp.Mode
}

// verifySamples is how many inputs per (level, mode) the load-time
// verification sweep compares against the reference evaluator. The sample
// is a deterministic stride over the format's bit patterns, so a corrupted
// coefficient table has many chances to disagree before it is served.
const verifySamples = 32

// LoadKernelSet assembles a kernel set from st's verify artifacts under
// opt's fingerprint, falling back per function to the baked-in libm tables
// when the store has no artifact (or st is nil). A store artifact that
// fails to decode, names the wrong function, or disagrees with the
// reference evaluator on the verification sample fails the whole load —
// the caller keeps serving its previous set (hot reload) or degrades to
// the builtin tables (startup).
func LoadKernelSet(st pipeline.Store, opt gen.Options, sp *obs.Span, logf pipeline.Logf) (*KernelSet, error) {
	ks := &KernelSet{span: sp}
	h := sha256.New()
	for _, fn := range bigmath.AllFuncs {
		data := storeArtifact(st, fn, opt)
		hashContribution(h, fn, data)
		switch {
		case data != nil:
			res, err := decodeResult(data)
			if err != nil {
				return nil, fmt.Errorf("serve: %s: store artifact: %w", fn, err)
			}
			if err := verifyResult(fn, res); err != nil {
				return nil, fmt.Errorf("serve: %s: store artifact failed verification: %w", fn, err)
			}
			ks.results[fn] = res
			ks.source[fn] = "store"
		case libm.Have(fn):
			res, err := libm.Progressive(fn)
			if err != nil {
				return nil, fmt.Errorf("serve: %s: builtin tables: %w", fn, err)
			}
			ks.results[fn] = res
			ks.source[fn] = "builtin"
		default:
			if logf != nil {
				logf("serve: %s: no tables in store or binary; function not served", fn)
			}
		}
	}
	ks.fp = hex.EncodeToString(h.Sum(nil))
	return ks, nil
}

// StoreFingerprint digests what LoadKernelSet would load right now —
// the sealed verify-artifact bytes per function, or the builtin/absent
// markers — without decoding anything. The reload watcher polls it: a
// fingerprint equal to the live set's means nothing changed; a different
// one triggers a full load-verify-swap cycle.
func StoreFingerprint(st pipeline.Store, opt gen.Options) string {
	h := sha256.New()
	for _, fn := range bigmath.AllFuncs {
		hashContribution(h, fn, storeArtifact(st, fn, opt))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// storeArtifact fetches fn's sealed verify artifact from st, nil when
// absent (or no store is attached).
func storeArtifact(st pipeline.Store, fn bigmath.Func, opt gen.Options) []byte {
	if st == nil {
		return nil
	}
	data, ok := st.Get(gen.VerifyKey(fn, opt), gen.ResultCodec.Name, gen.ResultCodec.Version)
	if !ok {
		return nil
	}
	return data
}

// hashContribution folds one function's table provenance into the set
// fingerprint: the artifact bytes when the store has them, a builtin or
// absent marker otherwise. LoadKernelSet and StoreFingerprint use the same
// folding, so "fingerprint unchanged" is exactly "a reload would produce
// the identical set".
func hashContribution(h io.Writer, fn bigmath.Func, data []byte) {
	io.WriteString(h, fn.String())
	h.Write([]byte{0})
	switch {
	case data != nil:
		h.Write(data)
	case libm.Have(fn):
		io.WriteString(h, "builtin")
	default:
		io.WriteString(h, "absent")
	}
	h.Write([]byte{0})
}

// decodeResult unseals and decodes one verify artifact.
func decodeResult(data []byte) (*gen.Result, error) {
	payload, err := pipeline.Unseal(data, gen.ResultCodec.Name, gen.ResultCodec.Version)
	if err != nil {
		return nil, err
	}
	d := pipeline.NewDec(payload)
	res, err := gen.ResultCodec.Decode(d)
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return res, nil
}

// verifyResult gates a store-loaded result before it can serve traffic:
// the artifact must name the function it is keyed under, carry at least
// one level, compile into kernels, and agree bit-for-bit with the
// reference evaluator (gen.Result.Eval) on a deterministic sample per
// level under round-to-nearest, plus all five standard modes at the
// largest level. It cannot prove full correct rounding — that is the
// generator's exhaustive verify stage — but it catches swapped, truncated
// and bit-rotted tables before a single wrong answer leaves the server.
func verifyResult(fn bigmath.Func, res *gen.Result) error {
	if res.Fn != fn {
		return fmt.Errorf("artifact is for %s", res.Fn)
	}
	if len(res.Levels) == 0 {
		return errors.New("artifact has no levels")
	}
	for li, lvl := range res.Levels {
		modes := []fp.Mode{fp.RoundNearestEven}
		if li == len(res.Levels)-1 {
			modes = fp.StandardModes
		}
		for _, mode := range modes {
			k, err := eval.Compile(res, lvl, mode)
			if err != nil {
				return fmt.Errorf("level %v mode %v: compile: %w", lvl, mode, err)
			}
			nv := lvl.NumValues()
			step := nv / verifySamples
			if step == 0 {
				step = 1
			}
			for b := uint64(0); b < nv; b += step {
				x := lvl.Decode(b)
				if got, want := k.Eval(x), res.Eval(x, k.Level(), lvl, mode); got != want {
					return fmt.Errorf("level %v mode %v input %#x: kernel %#x != reference %#x",
						lvl, mode, b, got, want)
				}
			}
		}
	}
	return nil
}

// Fingerprint identifies the set's table provenance; equal fingerprints
// mean byte-identical source artifacts.
func (ks *KernelSet) Fingerprint() string {
	_ = ks.results  // excluded: decoded from exactly the bytes fp digests
	_ = ks.source   // excluded: derived from the same load that set fp
	_ = ks.span     // excluded: observability only; never serves a byte
	_ = &ks.kernels // excluded: lazily compiled views of results
	return ks.fp
}

// Source reports where fn's tables came from: "store", "builtin", or ""
// when the function is not served.
func (ks *KernelSet) Source(fn bigmath.Func) string {
	if fn < 0 || fn >= bigmath.NumFuncs {
		return ""
	}
	return ks.source[fn]
}

// Functions lists the functions this set serves.
func (ks *KernelSet) Functions() []bigmath.Func {
	var fns []bigmath.Func
	for _, fn := range bigmath.AllFuncs {
		if ks.results[fn] != nil {
			fns = append(fns, fn)
		}
	}
	return fns
}

// Result returns the set's table for fn (tests compare served bits against
// a direct reference evaluation of the same generation).
func (ks *KernelSet) Result(fn bigmath.Func) (*gen.Result, bool) {
	if fn < 0 || fn >= bigmath.NumFuncs || ks.results[fn] == nil {
		return nil, false
	}
	return ks.results[fn], true
}

// Kernel returns the set's compiled kernel for (fn, out, mode), compiling
// it on first use. Compilation may race across requests; both candidates
// are compiled from the same immutable result, so whichever lands in the
// cache evaluates identically. Errors wrap libm.ErrNoTables (function not
// served) or eval.ErrTooWide (format wider than the set's levels).
func (ks *KernelSet) Kernel(fn bigmath.Func, out fp.Format, mode fp.Mode) (*eval.Kernel, error) {
	if fn < 0 || fn >= bigmath.NumFuncs || ks.results[fn] == nil {
		return nil, fmt.Errorf("serve: %v: %w", fn, libm.ErrNoTables)
	}
	key := kernelKey{fn: fn, bits: out.Bits(), exp: out.ExpBits(), mode: mode}
	if v, ok := ks.kernels.Load(key); ok {
		return v.(*eval.Kernel), nil
	}
	res := ks.results[fn]
	k, err := eval.Compile(res, out, mode)
	if err != nil {
		if _, ok := res.ServingLevel(out, mode); !ok {
			return nil, fmt.Errorf("serve: %s: %v: %w", fn, out, eval.ErrTooWide)
		}
		return nil, err
	}
	k.Observe(ks.span) // before the kernel is shared via the cache
	v, _ := ks.kernels.LoadOrStore(key, k)
	return v.(*eval.Kernel), nil
}
