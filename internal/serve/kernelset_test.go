package serve

import (
	"strings"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/libm"
	"repro/internal/pipeline"
)

// KernelSet loading and verification: store artifacts are gated by a
// decode + self-consistency sweep before they may serve, the builtin
// fallback covers absent functions, and the set fingerprint tracks
// exactly the bytes a load would consume.

// TestLoadKernelSetBuiltin: with no store every function serves from the
// baked-in tables, bit-identical to libm's own kernels.
func TestLoadKernelSetBuiltin(t *testing.T) {
	ks, err := LoadKernelSet(nil, reloadOpts(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ks.Functions()); got != len(bigmath.AllFuncs) {
		t.Fatalf("%d functions served, want %d", got, len(bigmath.AllFuncs))
	}
	inputs := testInputs(64)
	for _, fn := range bigmath.AllFuncs {
		if src := ks.Source(fn); src != "builtin" {
			t.Errorf("%v: source %q, want builtin", fn, src)
		}
		k, err := ks.Kernel(fn, testFormat, fp.RoundNearestEven)
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		want := directBits(t, fn, inputs)
		for i, b := range inputs {
			if got := k.Eval(testFormat.Decode(b)); got != want[i] {
				t.Fatalf("%v input %#x: kernel %#x, libm %#x", fn, b, got, want[i])
			}
		}
	}
}

// TestLoadKernelSetFromStore: a store artifact overrides the builtin
// tables for its function only, and the served bits match the decoded
// artifact's own reference evaluation.
func TestLoadKernelSetFromStore(t *testing.T) {
	base, err := baseArtifact()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := LoadKernelSet(storeWith(t, base), reloadOpts(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range bigmath.AllFuncs {
		want := "builtin"
		if fn == reloadFn {
			want = "store"
		}
		if src := ks.Source(fn); src != want {
			t.Errorf("%v: source %q, want %q", fn, src, want)
		}
	}
	res, ok := ks.Result(reloadFn)
	if !ok {
		t.Fatal("store-loaded function has no result")
	}
	out := fp.MustFormat(10, 8)
	k, err := ks.Kernel(reloadFn, out, fp.RoundNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	li, ok := res.ServingLevel(out, fp.RoundNearestEven)
	if !ok {
		t.Fatal("store result serves no level for the test format")
	}
	for b := uint64(0); b < out.NumValues(); b += 17 {
		x := out.Decode(b)
		if got, want := k.Eval(x), res.Eval(x, li, out, fp.RoundNearestEven); got != want {
			t.Fatalf("input %#x: kernel %#x, reference %#x", b, got, want)
		}
	}
}

// TestLoadKernelSetRejectsBadArtifacts: corrupt bytes and artifacts keyed
// under the wrong function both fail the load with a diagnostic naming
// the function.
func TestLoadKernelSetRejectsBadArtifacts(t *testing.T) {
	base, err := baseArtifact()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), base...)
	corrupt[len(corrupt)/2] ^= 0x01
	if _, err := LoadKernelSet(storeWith(t, corrupt), reloadOpts(), nil, nil); err == nil {
		t.Error("corrupt artifact loaded without error")
	}

	truncated := base[:len(base)-4]
	if _, err := LoadKernelSet(storeWith(t, truncated), reloadOpts(), nil, nil); err == nil {
		t.Error("truncated artifact loaded without error")
	}

	// The CosPi artifact stored under SinPi's key must be rejected by the
	// function check, not served as sinpi.
	st := pipeline.NewMemStore()
	if err := st.Put(gen.VerifyKey(bigmath.SinPi, reloadOpts()), gen.ResultCodec.Name, gen.ResultCodec.Version, base); err != nil {
		t.Fatal(err)
	}
	_, err = LoadKernelSet(st, reloadOpts(), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "sinpi") {
		t.Errorf("wrong-function artifact: got %v, want an error naming sinpi", err)
	}
}

// TestStoreFingerprintTracksContent: the cheap poll fingerprint equals the
// loaded set's, changes when the store content changes, and reverts when
// the content reverts.
func TestStoreFingerprintTracksContent(t *testing.T) {
	base, err := baseArtifact()
	if err != nil {
		t.Fatal(err)
	}
	opt := reloadOpts()
	key := gen.VerifyKey(reloadFn, opt)

	st := pipeline.NewMemStore()
	empty := StoreFingerprint(st, opt)
	if got := StoreFingerprint(nil, opt); got != empty {
		t.Error("nil store fingerprint differs from empty store fingerprint")
	}

	if err := st.Put(key, gen.ResultCodec.Name, gen.ResultCodec.Version, base); err != nil {
		t.Fatal(err)
	}
	withArtifact := StoreFingerprint(st, opt)
	if withArtifact == empty {
		t.Error("fingerprint did not change when an artifact appeared")
	}
	ks, err := LoadKernelSet(st, opt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Fingerprint() != withArtifact {
		t.Error("loaded set fingerprint differs from the poll fingerprint of the same content")
	}

	if err := st.Delete(key, gen.ResultCodec.Name, gen.ResultCodec.Version); err != nil {
		t.Fatal(err)
	}
	if got := StoreFingerprint(st, opt); got != empty {
		t.Error("fingerprint did not revert when the artifact was deleted")
	}
}

// TestKernelSetKernelErrors: unknown-format requests wrap the stable
// sentinel errors so the endpoints can map them to statuses.
func TestKernelSetKernelErrors(t *testing.T) {
	ks, err := LoadKernelSet(nil, reloadOpts(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Kernel(bigmath.Log2, fp.MustFormat(34, 8), fp.RoundNearestEven); err == nil {
		t.Error("a 34-bit format compiled against the builtin levels")
	}
	if _, err := ks.Kernel(bigmath.NumFuncs, testFormat, fp.RoundNearestEven); err == nil {
		t.Error("an out-of-range function returned a kernel")
	}
	if _, err := libm.Kernel(bigmath.Log2, testFormat, fp.RoundNearestEven); err != nil {
		t.Fatalf("libm baseline kernel: %v", err)
	}
}
