package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naive(coeffs []float64, x float64) float64 {
	s := 0.0
	for j := len(coeffs) - 1; j >= 0; j-- {
		s += coeffs[j] * math.Pow(x, float64(j))
	}
	return s
}

func TestHornerMatchesNaive(t *testing.T) {
	err := quick.Check(func(cs []float64, x float64) bool {
		if len(cs) > 10 {
			cs = cs[:10]
		}
		for _, c := range cs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return true
			}
		}
		if math.IsNaN(x) || math.Abs(x) > 2 {
			return true
		}
		h := Horner(cs, x)
		n := naive(cs, x)
		if h == n {
			return true
		}
		return math.Abs(h-n) <= 1e-9*(math.Abs(h)+math.Abs(n)+1)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestHornerEdge(t *testing.T) {
	if Horner(nil, 3) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
	if Horner([]float64{5}, 100) != 5 {
		t.Error("constant polynomial")
	}
}

func TestHornerTerms(t *testing.T) {
	cs := []float64{1, 2, 3, 4}
	x := 0.5
	if got, want := HornerTerms(cs, 2, x), 1+2*x; got != want {
		t.Errorf("2 terms: %v want %v", got, want)
	}
	if got, want := HornerTerms(cs, 99, x), Horner(cs, x); got != want {
		t.Errorf("over-length terms: %v want %v", got, want)
	}
}

func TestPiecewise(t *testing.T) {
	pw := Piecewise{Pieces: []Piece{
		{Lo: 0, Hi: 0.5, Coeffs: []float64{1, 1}},
		{Lo: 0.5, Hi: 1, Coeffs: []float64{2, 0, 1}},
	}}
	if p := pw.Find(0.25); p != &pw.Pieces[0] {
		t.Error("find 0.25")
	}
	if p := pw.Find(0.75); p != &pw.Pieces[1] {
		t.Error("find 0.75")
	}
	if p := pw.Find(1.0); p != &pw.Pieces[1] {
		t.Error("find at upper edge must hit last piece")
	}
	if got := pw.Eval(0.25, 0); got != 1.25 {
		t.Errorf("eval: %v", got)
	}
	if got := pw.Eval(0.75, 1); got != 2 {
		t.Errorf("eval 1 term: %v", got)
	}
	if pw.MaxDegree() != 2 {
		t.Errorf("max degree: %d", pw.MaxDegree())
	}
	if pw.CoefficientBytes() != 8*5 {
		t.Errorf("bytes: %d", pw.CoefficientBytes())
	}
	if pw.String() == "" {
		t.Error("empty string")
	}
}

func BenchmarkHorner7(b *testing.B) {
	cs := []float64{1, 0.69, 0.24, 0.055, 0.0096, 0.0013, 0.00015}
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64() / 64
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Horner(cs, xs[i&1023])
	}
	_ = sink
}

func TestStructureEval(t *testing.T) {
	cs := []float64{2, 3, 5}
	x := 0.5
	if got, want := Dense.Eval(cs, 3, x), 2+3*x+5*x*x; math.Abs(got-want) > 1e-15 {
		t.Errorf("dense: %v want %v", got, want)
	}
	if got, want := Even.Eval(cs, 3, x), 2+3*x*x+5*x*x*x*x; math.Abs(got-want) > 1e-15 {
		t.Errorf("even: %v want %v", got, want)
	}
	if got, want := Odd.Eval(cs, 3, x), x*(2+3*x*x+5*x*x*x*x); math.Abs(got-want) > 1e-15 {
		t.Errorf("odd: %v want %v", got, want)
	}
	if Odd.Eval(cs, 0, x) != 0 {
		t.Error("zero terms must evaluate to 0")
	}
	if Dense.Degree(3) != 2 || Even.Degree(3) != 4 || Odd.Degree(3) != 5 {
		t.Error("degrees")
	}
	if Odd.Exponent(2) != 5 || Even.Exponent(0) != 0 {
		t.Error("exponents")
	}
	if Dense.Degree(0) != 0 {
		t.Error("degree of empty polynomial")
	}
}

// Structured evaluation agrees with explicit monomial summation on random
// inputs (testing/quick).
func TestStructureEvalQuick(t *testing.T) {
	structs := []Structure{Dense, Even, Odd}
	err := quick.Check(func(raw []float64, xi int, si uint8) bool {
		st := structs[int(si)%3]
		if len(raw) > 6 {
			raw = raw[:6]
		}
		for _, c := range raw {
			if math.IsNaN(c) || math.Abs(c) > 1e6 {
				return true
			}
		}
		x := float64(xi%1000) / 4000
		want := 0.0
		for j, c := range raw {
			want += c * math.Pow(x, float64(st.Exponent(j)))
		}
		got := st.Eval(raw, len(raw), x)
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Error(err)
	}
}
