// Package poly provides polynomial representations and Horner evaluation
// for the RLIBM-Prog pipeline. A progressive polynomial is an ordinary
// coefficient vector C1..Ck with the property (arranged by the generator)
// that evaluating only the first k' < k terms already produces correctly
// rounded results for lower-precision representations.
package poly

import (
	"fmt"
	"strings"
)

// Structure describes the monomial layout of a polynomial: coefficient j
// (0-based) multiplies x^(Offset + Stride·j). Dense polynomials are
// {0, 1}; even polynomials (cosh-like, cosπ-like) are {0, 2}; odd
// polynomials (sinh-like, sinπ-like) are {1, 2}. This is how RLIBM-Prog
// reaches degree 5 with only 3 terms.
type Structure struct {
	Offset, Stride int
}

// Dense is the ordinary C1 + C2·x + … layout.
var Dense = Structure{Offset: 0, Stride: 1}

// Even is the C1 + C2·x² + C3·x⁴ + … layout.
var Even = Structure{Offset: 0, Stride: 2}

// Odd is the C1·x + C2·x³ + C3·x⁵ + … layout.
var Odd = Structure{Offset: 1, Stride: 2}

// Degree returns the polynomial degree of a structure with terms
// coefficients (0 terms means degree -1 by convention, reported as 0).
func (s Structure) Degree(terms int) int {
	if terms <= 0 {
		return 0
	}
	return s.Offset + s.Stride*(terms-1)
}

// Exponent returns the exponent of coefficient j.
func (s Structure) Exponent(j int) int { return s.Offset + s.Stride*j }

// Eval evaluates the structured polynomial with the first terms
// coefficients at x, via Horner on x^Stride — the production evaluation
// (odd/even structures save multiplies exactly as in the paper's
// implementations).
func (s Structure) Eval(coeffs []float64, terms int, x float64) float64 {
	u := x
	if s.Stride == 2 {
		u = x * x
	}
	v := HornerTerms(coeffs, terms, u)
	if s.Offset == 1 {
		v = x * v
	}
	return v
}

// Horner evaluates C1 + C2·x + … + Ck·x^(k-1) by Horner's rule in float64,
// exactly as the production math library does.
func Horner(coeffs []float64, x float64) float64 {
	if len(coeffs) == 0 {
		return 0
	}
	s := coeffs[len(coeffs)-1]
	for i := len(coeffs) - 2; i >= 0; i-- {
		s = s*x + coeffs[i]
	}
	return s
}

// HornerTerms evaluates only the first terms coefficients — the progressive
// evaluation used for lower-precision representations.
func HornerTerms(coeffs []float64, terms int, x float64) float64 {
	if terms > len(coeffs) {
		terms = len(coeffs)
	}
	return Horner(coeffs[:terms], x)
}

// Piece is one sub-domain of a piecewise polynomial over reduced inputs.
type Piece struct {
	// Lo and Hi bound the reduced inputs covered by this piece: Lo ≤ x < Hi
	// (the last piece is closed above by construction).
	Lo, Hi float64
	Coeffs []float64
}

// Piecewise is a polynomial split into consecutive sub-domains, evaluated
// by scanning the (always tiny: ≤ 4 in RLIBM-Prog) piece list.
type Piecewise struct {
	Pieces []Piece
}

// Find returns the piece covering the reduced input x (the last piece
// catches x == Hi of the domain).
func (pw *Piecewise) Find(x float64) *Piece {
	for i := range pw.Pieces[:len(pw.Pieces)-1] {
		if x < pw.Pieces[i].Hi {
			return &pw.Pieces[i]
		}
	}
	return &pw.Pieces[len(pw.Pieces)-1]
}

// Eval evaluates the piecewise polynomial with the first terms coefficients
// (0 or over-length means all).
func (pw *Piecewise) Eval(x float64, terms int) float64 {
	p := pw.Find(x)
	if terms <= 0 || terms > len(p.Coeffs) {
		terms = len(p.Coeffs)
	}
	return HornerTerms(p.Coeffs, terms, x)
}

// MaxDegree returns the highest polynomial degree across pieces.
func (pw *Piecewise) MaxDegree() int {
	d := 0
	for _, p := range pw.Pieces {
		if len(p.Coeffs)-1 > d {
			d = len(p.Coeffs) - 1
		}
	}
	return d
}

// CoefficientBytes returns the lookup-table storage the polynomial needs:
// 8 bytes per double coefficient, the paper's Table 1 "Poly. mem. use"
// metric.
func (pw *Piecewise) CoefficientBytes() int {
	n := 0
	for _, p := range pw.Pieces {
		n += 8 * len(p.Coeffs)
	}
	return n
}

// String renders the polynomial for logs and generated-code comments.
func (pw *Piecewise) String() string {
	var b strings.Builder
	for i, p := range pw.Pieces {
		if len(pw.Pieces) > 1 {
			fmt.Fprintf(&b, "piece %d [%g, %g): ", i, p.Lo, p.Hi)
		}
		for j, c := range p.Coeffs {
			if j > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%.17g*x^%d", c, j)
		}
		if i < len(pw.Pieces)-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
