package cli_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cli"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// Distributed-solve acceptance tests: with -shard active, the per-piece
// Clarkson solves become claimable work units in the shared store, and
// the assembled coefficients — including the sealed effort stats — must
// be bit-identical to a solo run for every partition, worker count, and
// failure pattern. These are the solve-stage siblings of the verify-shard
// tests in store_test.go.

// TestSolveShardDeterminism is the partition × worker matrix: solo with a
// store (sharding dormant), and a 2/2 split over a shared loopback store,
// at one and four workers, all emitting bytes identical to the store-less
// solo reference.
func TestSolveShardDeterminism(t *testing.T) {
	ref, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(1), nil)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	refEmit := []byte(gen.EmitGo(ref, "libm", "registerTest"))

	for _, workers := range []int{1, storeWorkers(4)} {
		workers := workers
		t.Run(fmt.Sprintf("solo-1.1-w%d", workers), func(t *testing.T) {
			st := pipeline.NewMemStore()
			res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn, progOpts(workers), st, gen.Shard{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal([]byte(gen.EmitGo(res, "libm", "registerTest")), refEmit) {
				t.Error("solo run over a store differs from the store-less reference")
			}
			// Solo runs must not pay the work-unit machinery.
			if n := st.CountEvents(gen.StageSolveShard, false) + st.CountEvents(gen.StageSolveShard, true); n != 0 {
				t.Errorf("solo run touched %d solve-shard units; sharding should be dormant", n)
			}
		})
		t.Run(fmt.Sprintf("split-2.2-w%d", workers), func(t *testing.T) {
			backing := pipeline.NewMemStore()
			addr := startStoreServer(t, backing)
			clients := []*pipeline.RemoteStore{dialStore(t, addr), dialStore(t, addr)}
			emits := make([][]byte, 2)
			errs := make([]error, 2)
			var wg sync.WaitGroup
			for k := 0; k < 2; k++ {
				k := k
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn,
						progOpts(workers), clients[k], gen.Shard{K: k, N: 2})
					if err != nil {
						errs[k] = err
						return
					}
					emits[k] = []byte(gen.EmitGo(res, "libm", "registerTest"))
				}()
			}
			wg.Wait()
			for k := 0; k < 2; k++ {
				if errs[k] != nil {
					t.Fatalf("shard %d/2: %v", k, errs[k])
				}
				if !bytes.Equal(emits[k], refEmit) {
					t.Errorf("shard %d/2 assembled different bytes than the reference", k)
				}
			}
			units := 0
			for _, cl := range clients {
				units += cl.CountEvents(gen.StageSolveShard, false) + cl.CountEvents(gen.StageSolveShard, true)
			}
			if units == 0 {
				t.Error("no solve-shard work units were exchanged; the solves did not distribute")
			}
			if err := backing.Audit(); err != nil {
				t.Errorf("shared store audit: %v", err)
			}
		})
	}
}

// TestSolveShardDeadPeer kills a peer mid-solve: shard 1/2's claim on the
// first solve unit sits in the store with a heartbeat stamp that never
// advances. The surviving shard 0/2 must detect the frozen stamp via the
// stall budget, reclaim the unit, and still assemble the reference bytes.
func TestSolveShardDeadPeer(t *testing.T) {
	ref, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(storeWorkers(2)), nil)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	refEmit := []byte(gen.EmitGo(ref, "libm", "registerTest"))

	backing := pipeline.NewMemStore()
	// The dead peer: claimed the first escalation attempt's unit of kernel
	// 0 (pieces=1, piece 0 — the first unit every run requests) and died.
	dead := gen.Shard{K: 1, N: 2}
	frozen := gen.SolveShardKey(testFn, progOpts(storeWorkers(2)), 0, 1, 0)
	gen.RefreshClaim(backing, frozen, dead, 3)

	var mu sync.Mutex
	var logs []string
	opt := progOpts(storeWorkers(2))
	opt.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn, opt, backing, gen.Shard{K: 0, N: 2})
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if !bytes.Equal([]byte(gen.EmitGo(res, "libm", "registerTest")), refEmit) {
		t.Error("survivor assembled different bytes than the reference")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range logs {
		if strings.Contains(line, "unrefreshed") && strings.Contains(line, dead.Owner()) {
			return
		}
	}
	t.Errorf("survivor never reported reclaiming the dead peer's stalled claim; logs:\n%s", strings.Join(logs, "\n"))
}

// TestSolveShardEvictedStore is the eviction acceptance test: a 2/2 split
// over a served store wrapped in a deliberately tiny LRU budget — unit
// artifacts are evicted and recomputed mid-run — must still emit the
// reference bytes, because eviction only forgets cache entries and every
// recomputation is deterministic. Claims must survive the pressure (they
// are pinned), or stall detection would misfire.
func TestSolveShardEvictedStore(t *testing.T) {
	ref, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(storeWorkers(2)), nil)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	refEmit := []byte(gen.EmitGo(ref, "libm", "registerTest"))

	evicting := pipeline.NewEvictingStore(pipeline.NewMemStore(), 2<<10)
	addr := startStoreServer(t, evicting)
	clients := []*pipeline.RemoteStore{dialStore(t, addr), dialStore(t, addr)}
	emits := make([][]byte, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn,
				progOpts(storeWorkers(2)), clients[k], gen.Shard{K: k, N: 2})
			if err != nil {
				errs[k] = err
				return
			}
			emits[k] = []byte(gen.EmitGo(res, "libm", "registerTest"))
		}()
	}
	wg.Wait()
	for k := 0; k < 2; k++ {
		if errs[k] != nil {
			t.Fatalf("shard %d/2: %v", k, errs[k])
		}
		if !bytes.Equal(emits[k], refEmit) {
			t.Errorf("shard %d/2 over the evicting store differs from the un-evicted reference", k)
		}
	}
	st := evicting.Stats()
	if st.Evictions == 0 {
		t.Error("the 2KiB budget never evicted; the scenario did not exercise eviction")
	}
	if st.BytesLive > 2<<10 {
		// Claims are pinned and the newest write is exempt, so a small
		// overshoot is legal — but live bytes must stay the same order of
		// magnitude as the budget, not the full artifact set.
		t.Logf("bytes live %d over budget %d (pinned claims + newest write)", st.BytesLive, 2<<10)
	}
	if err := evicting.Audit(); err != nil {
		t.Errorf("evicting store audit: %v", err)
	}
}
