package cli_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// The failure-model acceptance tests: every injection site, at its first
// and a later occurrence, at one and four workers, must either recover to
// a byte-identical result or fail with a typed *fault.Error — never crash
// the process, never leave a corrupt or partial artifact in the cache, and
// always leave the cache resumable by a fault-free rerun.

// faultBaseline generates the no-fault reference once: the emitted table
// bytes and the per-file artifact digests of a cold workers=1 run.
type faultBaseline struct {
	emit      []byte
	artifacts map[string][32]byte // store-relative path → content hash
}

var faultRef *faultBaseline

func faultReference(t *testing.T) *faultBaseline {
	t.Helper()
	if faultRef != nil {
		return faultRef
	}
	dir := filepath.Join(t.TempDir(), "ref")
	store := openStore(t, dir)
	res, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(1), store)
	if err != nil {
		t.Fatalf("no-fault reference run: %v", err)
	}
	faultRef = &faultBaseline{
		emit:      []byte(gen.EmitGo(res, "libm", "registerTest")),
		artifacts: artifactDigests(t, dir),
	}
	return faultRef
}

// artifactDigests hashes every artifact in the store, keyed by path
// relative to the store root.
func artifactDigests(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	out := make(map[string][32]byte)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		out[rel] = sha256.Sum256(data)
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return out
}

// checkScenarioRun asserts the per-run contract: success means the emitted
// bytes equal the no-fault reference; failure means a typed *fault.Error.
func checkScenarioRun(t *testing.T, ref *faultBaseline, res *gen.Result, err error, run string) {
	t.Helper()
	if err != nil {
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error is not a *fault.Error: %v", run, err)
		}
		if fe.Code == "" || fe.Stage == "" {
			t.Fatalf("%s: fault error missing code/stage context: %+v", run, fe)
		}
		return
	}
	if got := []byte(gen.EmitGo(res, "libm", "registerTest")); !bytes.Equal(got, ref.emit) {
		t.Errorf("%s: recovered run emitted different bytes than the no-fault reference", run)
	}
}

// checkStore asserts the cache is sound after a scenario run: no temp or
// corrupt files, and every artifact present is byte-identical to the
// reference run's artifact at the same address.
func checkStore(t *testing.T, ref *faultBaseline, store pipeline.Store, dir, run string) {
	t.Helper()
	if err := store.Audit(); err != nil {
		t.Errorf("%s: store audit: %v", run, err)
	}
	for rel, sum := range artifactDigests(t, dir) {
		want, known := ref.artifacts[rel]
		if !known {
			// Artifact at an address the reference run never wrote — the
			// keys are deterministic, so this is corruption by definition.
			t.Errorf("%s: unexpected artifact %s", run, rel)
			continue
		}
		if sum != want {
			t.Errorf("%s: artifact %s differs from the no-fault reference", run, rel)
		}
	}
}

// TestFaultMatrix drives every injection site at its first and third
// occurrence, at one and four workers: two injected runs against one
// store, then a fault-free resume run that must converge to the reference
// bytes no matter what the injected runs did.
func TestFaultMatrix(t *testing.T) {
	ref := faultReference(t)
	for _, site := range fault.Sites() {
		for _, occurrence := range []int{1, 3} {
			for _, workers := range []int{1, 4} {
				site, occurrence, workers := site, occurrence, workers
				name := string(site) + "/" + map[int]string{1: "first", 3: "third"}[occurrence] +
					"/" + map[int]string{1: "w1", 4: "w4"}[workers]
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					dir := t.TempDir()
					plan := fault.NewPlan().At(site, occurrence)
					opt := progOpts(workers)
					opt.Faults = plan

					store := openStore(t, dir)
					store.SetFaults(plan)
					res, _, err := cli.GenerateVerified(context.Background(), testFn, opt, store)
					checkScenarioRun(t, ref, res, err, "cold")
					checkStore(t, ref, store, dir, "cold")

					// Second run against the same store: exercises the
					// read-side sites on a warm cache (the cold run may not
					// have reached the scheduled occurrence).
					res, _, err = cli.GenerateVerified(context.Background(), testFn, opt, store)
					checkScenarioRun(t, ref, res, err, "warm")
					checkStore(t, ref, store, dir, "warm")

					// Fault-free resume: whatever the injected runs did, a
					// clean run over the same cache must produce the
					// reference bytes.
					clean := openStore(t, dir)
					opt.Faults = nil
					res, _, err = cli.GenerateVerified(context.Background(), testFn, opt, clean)
					if err != nil {
						t.Fatalf("resume: %v", err)
					}
					checkScenarioRun(t, ref, res, err, "resume")
					checkStore(t, ref, clean, dir, "resume")
				})
			}
		}
	}
}

// TestFaultUnrecoverable drives keeps-on-firing plans: the run must fail
// with a typed, context-carrying *fault.Error (never a process panic), the
// cache must stay sound, and a fault-free rerun must recover completely.
func TestFaultUnrecoverable(t *testing.T) {
	ref := faultReference(t)
	cases := []struct {
		site fault.Site
		code fault.Code
	}{
		{fault.SiteSolverSample, fault.CodeInjected},
		{fault.SiteWorkerPanic, fault.CodeWorkerPanic},
		{fault.SiteOracleZiv, fault.CodeOracleExhausted},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.site), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			plan := fault.NewPlan().From(tc.site, 1)
			opt := progOpts(4)
			opt.Faults = plan

			store := openStore(t, dir)
			store.SetFaults(plan)
			_, _, err := cli.GenerateVerified(context.Background(), testFn, opt, store)
			if err == nil {
				t.Fatalf("keeps-on-firing %s: run unexpectedly succeeded", tc.site)
			}
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *fault.Error: %v", err)
			}
			if fe.Code != tc.code {
				t.Errorf("code = %s, want %s (err: %v)", fe.Code, tc.code, err)
			}
			if fe.Stage == "" || fe.Func == "" {
				t.Errorf("fault error missing stage/function context: %+v", fe)
			}
			checkStore(t, ref, store, dir, "failed")

			clean := openStore(t, dir)
			opt.Faults = nil
			res, _, rerr := cli.GenerateVerified(context.Background(), testFn, opt, clean)
			if rerr != nil {
				t.Fatalf("resume after unrecoverable fault: %v", rerr)
			}
			checkScenarioRun(t, ref, res, rerr, "resume")
			checkStore(t, ref, clean, dir, "resume")
		})
	}
}

// TestFaultStoreNeverCorrupt floods the store paths with write and read
// faults at every occurrence and demands the pipeline still converge: the
// cache is an optimization, never a correctness dependency.
func TestFaultStoreNeverCorrupt(t *testing.T) {
	ref := faultReference(t)
	plan := fault.NewPlan().
		From(fault.SiteStoreWrite, 1).
		From(fault.SiteStoreRead, 1)
	opt := progOpts(2)
	opt.Faults = plan

	dir := t.TempDir()
	store := openStore(t, dir)
	store.SetFaults(plan)
	res, _, err := cli.GenerateVerified(context.Background(), testFn, opt, store)
	if err != nil {
		t.Fatalf("run with every store operation failing: %v", err)
	}
	if got := []byte(gen.EmitGo(res, "libm", "registerTest")); !bytes.Equal(got, ref.emit) {
		t.Errorf("storeless-by-fault run emitted different bytes")
	}
	if err := store.Audit(); err != nil {
		t.Errorf("store audit: %v", err)
	}
	if n := len(artifactDigests(t, dir)); n != 0 {
		t.Errorf("store with every write failing persisted %d artifacts", n)
	}
}
