package cli

import (
	"context"
	"fmt"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// Distributed verification. The exhaustive Verify/Repair sweeps dominate a
// cold run, so they were the first workload split across processes: each
// (level, pass) sweep of verify.Repair is partitioned into shard.N
// contiguous input slices, each slice a content-addressed work unit
// (gen.VerifyShardKey) in the shared store. Every process computes the
// units it owns (publishing a claim first), assembles the rest with
// gen.FetchUnit — polling briefly for units a live peer has claimed,
// computing locally otherwise — and merges the per-slice reports in
// ascending slice order. verify.MergeReports makes that merge
// bit-identical to a solo sweep for any partition, and
// gen.Result.AddSpecial keeps each level's special table sorted, so the
// patch set — and therefore every emitted coefficient — is bit-identical
// to a single-process run no matter which process computed which slice.
// The claim protocol itself (poll/heartbeat/stall constants, FetchUnit)
// lives in internal/gen, shared with the distributed solve units.

// shardReportCodec encodes one verification work unit's per-mode reports.
var shardReportCodec = pipeline.Codec[[]verify.Report]{
	Name:    "verify-shard",
	Version: 1,
	Encode: func(e *pipeline.Enc, reps []verify.Report) {
		e.Int(len(reps))
		for _, r := range reps {
			e.Int(r.Format.Bits())
			e.Int(r.Format.ExpBits())
			e.Int(int(r.Mode))
			e.U64(r.Checked)
			e.Int(len(r.Mismatches))
			for _, b := range r.Mismatches {
				e.U64(b)
			}
		}
	},
	Decode: func(d *pipeline.Dec) ([]verify.Report, error) {
		n := d.Len()
		reps := make([]verify.Report, 0, n)
		for i := 0; i < n; i++ {
			bits, expBits := d.Int(), d.Int()
			mode := fp.Mode(d.Int())
			checked := d.U64()
			m := d.Len()
			var mm []uint64
			for j := 0; j < m; j++ {
				mm = append(mm, d.U64())
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			f, err := fp.NewFormat(bits, expBits)
			if err != nil {
				return nil, fmt.Errorf("%w: report %d: %v", pipeline.ErrCorrupt, i, err)
			}
			if mode < fp.RoundNearestEven || mode > fp.RoundToOdd {
				return nil, fmt.Errorf("%w: report %d: invalid mode %d", pipeline.ErrCorrupt, i, mode)
			}
			reps = append(reps, verify.Report{Format: f, Mode: mode, Checked: checked, Mismatches: mm})
		}
		return reps, nil
	},
}

// repairSharded is verify.Repair with the exhaustive sweeps distributed:
// it mirrors Repair's control flow exactly — per level, round-to-nearest
// for the smaller levels and all standard modes for the last (or every,
// under ProgressiveRO) level, two sweep-and-patch passes, the same
// RepairBudget — but runs each sweep as shard.N store-mediated work units
// instead of one in-process pool sweep. A solo shard or nil store is
// exactly verify.Repair.
//
// Pass 1 of a level depends on the patches of pass 0: every process
// assembles all pass-0 units and applies the identical (merged, mode-major,
// input-ascending) patch set before sweeping pass 1, so the Result each
// process sweeps against is bit-identical — which is what makes duplicate
// unit computation harmless.
func repairSharded(ctx context.Context, st pipeline.Store, fn bigmath.Func, opt gen.Options,
	shard gen.Shard, res *gen.Result, orc *oracle.Oracle) (int, error) {

	if st == nil || shard.Solo() {
		return verify.Repair(res, orc, opt.Workers)
	}
	logf := pipeline.Logf(opt.Logf)
	patched := 0
	for li, lvl := range res.Levels {
		modes := []fp.Mode{fp.RoundNearestEven}
		if li == len(res.Levels)-1 || res.ProgressiveRO {
			modes = fp.StandardModes
		}
		ext := lvl.Extend(2)
		for pass := 0; pass < 2; pass++ {
			units := parallel.SplitRange(lvl.NumValues(), shard.N)
			per := make([][]verify.Report, len(units))
			compute := func(u parallel.Range) func(context.Context) ([]verify.Report, error) {
				return func(context.Context) ([]verify.Report, error) {
					return verify.ExhaustiveLevelRange(res, orc, li, modes, opt.Workers, u.Lo, u.Hi), nil
				}
			}
			// Own units first: claim, compute, publish.
			for j, u := range units {
				if !shard.Mine(j) {
					continue
				}
				key := gen.VerifyShardKey(fn, opt, li, pass, j, len(units))
				if !gen.Claim(st, key, shard, opt.Faults) {
					continue // a peer took this unit over; assembled below
				}
				stopHB := gen.StartClaimHeartbeat(ctx, st, key, shard)
				reps, _, err := pipeline.Run(ctx, st, key, shardReportCodec, logf, compute(u))
				stopHB()
				if err != nil {
					return patched, err
				}
				per[j] = reps
			}
			// Assemble the rest: poll for live peers, compute stragglers.
			for j, u := range units {
				if per[j] != nil {
					continue
				}
				key := gen.VerifyShardKey(fn, opt, li, pass, j, len(units))
				reps, err := gen.FetchUnit(ctx, st, key, shard, opt.Faults, logf, shardReportCodec, compute(u))
				if err != nil {
					return patched, err
				}
				per[j] = reps
			}
			merged := verify.MergeReports(lvl, modes, per)
			total := 0
			for _, rep := range merged {
				total += len(rep.Mismatches)
				for _, b := range rep.Mismatches {
					x := lvl.Decode(b)
					proxy := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
					res.AddSpecial(li, x, proxy)
					patched++
				}
			}
			if total == 0 {
				break
			}
			if total > verify.RepairBudget {
				return patched, fmt.Errorf("verify: level %v has %d mismatches (budget %d)",
					lvl, total, verify.RepairBudget)
			}
		}
	}
	return patched, nil
}
