package cli

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// Distributed verification. The exhaustive Verify/Repair sweeps dominate a
// cold run, so they are the first workload split across processes: each
// (level, pass) sweep of verify.Repair is partitioned into shard.N
// contiguous input slices, each slice a content-addressed work unit
// (gen.VerifyShardKey) in the shared store. Every process computes the
// units it owns (publishing a claim first), assembles the rest from the
// store — polling briefly for units a live peer has claimed, computing
// locally otherwise — and merges the per-slice reports in ascending slice
// order. verify.MergeReports makes that merge bit-identical to a solo
// sweep for any partition, and gen.Result.AddSpecial keeps each level's
// special table sorted, so the patch set — and therefore every emitted
// coefficient — is bit-identical to a single-process run no matter which
// process computed which slice.

// shardReportCodec encodes one verification work unit's per-mode reports.
var shardReportCodec = pipeline.Codec[[]verify.Report]{
	Name:    "verify-shard",
	Version: 1,
	Encode: func(e *pipeline.Enc, reps []verify.Report) {
		e.Int(len(reps))
		for _, r := range reps {
			e.Int(r.Format.Bits())
			e.Int(r.Format.ExpBits())
			e.Int(int(r.Mode))
			e.U64(r.Checked)
			e.Int(len(r.Mismatches))
			for _, b := range r.Mismatches {
				e.U64(b)
			}
		}
	},
	Decode: func(d *pipeline.Dec) ([]verify.Report, error) {
		n := d.Len()
		reps := make([]verify.Report, 0, n)
		for i := 0; i < n; i++ {
			bits, expBits := d.Int(), d.Int()
			mode := fp.Mode(d.Int())
			checked := d.U64()
			m := d.Len()
			var mm []uint64
			for j := 0; j < m; j++ {
				mm = append(mm, d.U64())
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			f, err := fp.NewFormat(bits, expBits)
			if err != nil {
				return nil, fmt.Errorf("%w: report %d: %v", pipeline.ErrCorrupt, i, err)
			}
			if mode < fp.RoundNearestEven || mode > fp.RoundToOdd {
				return nil, fmt.Errorf("%w: report %d: invalid mode %d", pipeline.ErrCorrupt, i, mode)
			}
			reps = append(reps, verify.Report{Format: f, Mode: mode, Checked: checked, Mismatches: mm})
		}
		return reps, nil
	},
}

// claimPollAttempts × claimPollInterval bounds how long the assembler
// waits for a peer's claimed unit before computing it locally. The wait is
// pure scheduling — which process computes a unit never changes the unit's
// bytes — so the timing cannot influence generated coefficients.
//
// Within that window, liveness is judged by the claim's heartbeat stamp: a
// computing shard refreshes its claim every heartbeatInterval, and a poller
// that sees the same stamp for claimStallBudget consecutive polls declares
// the owner dead and reclaims the unit well before the full window expires.
// The stall budget is several heartbeats wide so scheduler hiccups on the
// computing side don't trigger spurious (harmless, but wasteful) takeovers.
const (
	claimPollAttempts = 40
	claimPollInterval = 50 * time.Millisecond
	heartbeatInterval = claimPollInterval
	claimStallBudget  = 10
)

// startClaimHeartbeat refreshes shard's claim on unit with an advancing
// stamp until the returned stop function is called. The stamp is a local
// monotonic sequence — never a clock reading — so the sealed claim bytes
// stay deterministic per tick.
func startClaimHeartbeat(st pipeline.Store, unit pipeline.Key, shard gen.Shard) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(heartbeatInterval)
		defer t.Stop()
		stamp := uint64(0)
		for {
			select {
			case <-done:
				return
			case <-t.C:
				stamp++
				gen.RefreshClaim(st, unit, shard, stamp)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// repairSharded is verify.Repair with the exhaustive sweeps distributed:
// it mirrors Repair's control flow exactly — per level, round-to-nearest
// for the smaller levels and all standard modes for the last (or every,
// under ProgressiveRO) level, two sweep-and-patch passes, the same
// RepairBudget — but runs each sweep as shard.N store-mediated work units
// instead of one in-process pool sweep. A solo shard or nil store is
// exactly verify.Repair.
//
// Pass 1 of a level depends on the patches of pass 0: every process
// assembles all pass-0 units and applies the identical (merged, mode-major,
// input-ascending) patch set before sweeping pass 1, so the Result each
// process sweeps against is bit-identical — which is what makes duplicate
// unit computation harmless.
func repairSharded(ctx context.Context, st pipeline.Store, fn bigmath.Func, opt gen.Options,
	shard gen.Shard, res *gen.Result, orc *oracle.Oracle) (int, error) {

	if st == nil || shard.Solo() {
		return verify.Repair(res, orc, opt.Workers)
	}
	logf := pipeline.Logf(opt.Logf)
	patched := 0
	for li, lvl := range res.Levels {
		modes := []fp.Mode{fp.RoundNearestEven}
		if li == len(res.Levels)-1 || res.ProgressiveRO {
			modes = fp.StandardModes
		}
		ext := lvl.Extend(2)
		for pass := 0; pass < 2; pass++ {
			units := parallel.SplitRange(lvl.NumValues(), shard.N)
			per := make([][]verify.Report, len(units))
			compute := func(u parallel.Range) func(context.Context) ([]verify.Report, error) {
				return func(context.Context) ([]verify.Report, error) {
					return verify.ExhaustiveLevelRange(res, orc, li, modes, opt.Workers, u.Lo, u.Hi), nil
				}
			}
			// Own units first: claim, compute, publish.
			for j, u := range units {
				if !shard.Mine(j) {
					continue
				}
				key := gen.VerifyShardKey(fn, opt, li, pass, j, len(units))
				if !gen.Claim(st, key, shard, opt.Faults) {
					continue // a peer took this unit over; assembled below
				}
				stopHB := startClaimHeartbeat(st, key, shard)
				reps, _, err := pipeline.Run(ctx, st, key, shardReportCodec, logf, compute(u))
				stopHB()
				if err != nil {
					return patched, err
				}
				per[j] = reps
			}
			// Assemble the rest: poll for live peers, compute stragglers.
			for j, u := range units {
				if per[j] != nil {
					continue
				}
				key := gen.VerifyShardKey(fn, opt, li, pass, j, len(units))
				reps, err := fetchUnit(ctx, st, key, shard, opt.Faults, logf, compute(u))
				if err != nil {
					return patched, err
				}
				per[j] = reps
			}
			merged := verify.MergeReports(lvl, modes, per)
			total := 0
			for _, rep := range merged {
				total += len(rep.Mismatches)
				for _, b := range rep.Mismatches {
					x := lvl.Decode(b)
					proxy := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
					res.AddSpecial(li, x, proxy)
					patched++
				}
			}
			if total == 0 {
				break
			}
			if total > verify.RepairBudget {
				return patched, fmt.Errorf("verify: level %v has %d mismatches (budget %d)",
					lvl, total, verify.RepairBudget)
			}
		}
	}
	return patched, nil
}

// fetchUnit obtains one work unit another shard owns: probe the store,
// and while a peer's claim stands AND its heartbeat stamp keeps advancing,
// poll within the grace window. A unit that never appears — no claim, a
// stale claim (SiteClaimStale), a dead peer whose stamp stops advancing
// for claimStallBudget polls, or a peer that stalled past the window — is
// claimed and computed locally, which at worst duplicates a peer's
// byte-identical artifact.
func fetchUnit(ctx context.Context, st pipeline.Store, key pipeline.Key, shard gen.Shard,
	faults *fault.Plan, logf pipeline.Logf, compute func(context.Context) ([]verify.Report, error)) ([]verify.Report, error) {

	var last gen.ClaimInfo
	haveLast, stalls, expired := false, 0, false
	for attempt := 0; !expired; attempt++ {
		if reps, ok := pipeline.Probe(st, key, shardReportCodec); ok {
			return reps, nil
		}
		c, claimed := gen.ClaimedBy(st, key, faults)
		if !claimed || c.Owner == shard.Owner() || attempt >= claimPollAttempts {
			break
		}
		if haveLast && c == last {
			stalls++
			if stalls >= claimStallBudget {
				expired = true
				if logf != nil {
					logf("%s %s: claim by %s unrefreshed for %d polls, reclaiming",
						key.Func, key.Stage, c.Owner, stalls)
				}
				continue
			}
		} else {
			last, haveLast, stalls = c, true, 0
		}
		select {
		case <-ctx.Done():
			return nil, fault.New(fault.CodeCanceled, gen.StageVerifyShard, "fetch", ctx.Err()).WithFunc(key.Func)
		case <-time.After(claimPollInterval):
		}
	}
	if expired {
		// The dead peer's claim stands in the store; an ordinary Claim
		// would defer to it. Take it over unconditionally — claims are
		// last-writer-wins dedup, so the worst case (the peer was alive
		// after all) is one duplicated byte-identical unit.
		gen.RefreshClaim(st, key, shard, 0)
	} else {
		gen.Claim(st, key, shard, faults)
	}
	reps, _, err := pipeline.Run(ctx, st, key, shardReportCodec, logf, compute)
	return reps, err
}
