package cli_test

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
)

func TestValidateRejectsBadWorkers(t *testing.T) {
	for _, workers := range []int{0, -1, -8} {
		c := &cli.Common{Workers: workers, Bits: 16}
		err := c.Validate()
		if err == nil {
			t.Errorf("Validate accepted -workers=%d", workers)
			continue
		}
		if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("-workers=%d error does not name the flag: %v", workers, err)
		}
	}
	c := &cli.Common{Workers: 1, Bits: 16}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate rejected a serial run: %v", err)
	}
}

func TestValidateRejectsBadBits(t *testing.T) {
	c := &cli.Common{Workers: 1, Bits: 1}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "-bits") {
		t.Errorf("Validate(-bits=1) = %v, want an error naming -bits", err)
	}
}

func TestValidateRejectsNegativeSeed(t *testing.T) {
	for _, seed := range []int64{-1, -42} {
		c := &cli.Common{Workers: 1, Bits: 16, Seed: seed}
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "-seed") {
			t.Errorf("Validate(-seed=%d) = %v, want an error naming -seed", seed, err)
		}
	}
	c := &cli.Common{Workers: 1, Bits: 16, Seed: 0}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate rejected -seed=0: %v", err)
	}
}

func TestValidateRejectsNegativeTimeout(t *testing.T) {
	c := &cli.Common{Workers: 1, Bits: 16, Timeout: -time.Second}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "-timeout") {
		t.Errorf("Validate(-timeout=-1s) = %v, want an error naming -timeout", err)
	}
	c = &cli.Common{Workers: 1, Bits: 16, Timeout: time.Minute}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate rejected a positive timeout: %v", err)
	}
}

// TestValidateRejectsSubPollTimeout: a positive deadline shorter than one
// claim-poll interval (50ms) cannot survive a single distributed-claim
// wait, so Validate rejects it with the unified diagnostic; the interval
// itself and zero (deadline disabled) are accepted.
func TestValidateRejectsSubPollTimeout(t *testing.T) {
	cases := []struct {
		timeout time.Duration
		ok      bool
	}{
		{0, true},
		{time.Nanosecond, false},
		{time.Millisecond, false},
		{49 * time.Millisecond, false},
		{50 * time.Millisecond, true},
		{51 * time.Millisecond, true},
		{time.Second, true},
	}
	for _, tc := range cases {
		c := &cli.Common{Workers: 1, Bits: 16, Timeout: tc.timeout}
		err := c.Validate()
		if tc.ok {
			if err != nil {
				t.Errorf("Validate(-timeout=%v) = %v, want accepted", tc.timeout, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Validate accepted -timeout=%v, want rejection below the 50ms poll interval", tc.timeout)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "invalid -timeout ") || !strings.Contains(msg, "must be at least ") {
			t.Errorf("message %q does not follow the unified \"invalid -flag value: must be at least bound\" shape", msg)
		}
		if !strings.Contains(msg, "50ms") {
			t.Errorf("message %q does not name the 50ms poll interval", msg)
		}
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	c := &cli.Common{Workers: 1, Bits: 16, Timeout: time.Millisecond}
	ctx, cancel := c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Errorf("Context with -timeout set has no deadline")
	}
	c = &cli.Common{Workers: 1, Bits: 16}
	ctx, cancel = c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Errorf("Context without -timeout has a deadline")
	}
}

func TestRegisterParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := cli.Register(fs)
	args := []string{"-workers", "3", "-seed", "42", "-bits", "14", "-cache-dir", "/tmp/x", "-no-cache",
		"-timeout", "5s", "-v", "-report", "-cpuprofile", "/tmp/cpu.pprof", "-memprofile", "/tmp/mem.pprof"}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Workers != 3 || c.Seed != 42 || c.Bits != 14 || c.CacheDir != "/tmp/x" || !c.NoCache {
		t.Errorf("parsed values %+v do not match %v", c, args)
	}
	if c.Timeout != 5*time.Second || !c.Verbose || !c.Report ||
		c.CPUProfile != "/tmp/cpu.pprof" || c.MemProfile != "/tmp/mem.pprof" {
		t.Errorf("parsed observability values %+v do not match %v", c, args)
	}
}

// TestValidateMessageShape pins the unified diagnostic format across the
// five commands: every rejection reads
// "invalid -flag value: must be at least bound (hint)".
func TestValidateMessageShape(t *testing.T) {
	cases := []struct {
		name   string
		common cli.Common
		prefix string
	}{
		{"workers", cli.Common{Workers: 0, Bits: 16}, "invalid -workers 0: "},
		{"seed", cli.Common{Workers: 1, Bits: 16, Seed: -3}, "invalid -seed -3: "},
		{"bits", cli.Common{Workers: 1, Bits: 1}, "invalid -bits 1: "},
		{"timeout", cli.Common{Workers: 1, Bits: 16, Timeout: -time.Second}, "invalid -timeout -1s: "},
		{"timeout", cli.Common{Workers: 1, Bits: 16, Timeout: 10 * time.Millisecond}, "invalid -timeout 10ms: "},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.common.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted an invalid -%s", tc.common, tc.name)
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, tc.prefix) {
				t.Errorf("message %q does not start with %q", msg, tc.prefix)
			}
			if !strings.Contains(msg, "must be at least ") {
				t.Errorf("message %q lacks the \"must be at least\" clause", msg)
			}
		})
	}
}

func TestStoreDisabled(t *testing.T) {
	for _, c := range []*cli.Common{
		{NoCache: true, CacheDir: t.TempDir()},
		{CacheDir: ""},
	} {
		st, err := c.Store()
		if err != nil {
			t.Errorf("Store(%+v): %v", c, err)
		}
		if st != nil {
			t.Errorf("Store(%+v) returned a live store; want nil (caching disabled)", c)
		}
	}
	c := &cli.Common{CacheDir: t.TempDir()}
	st, err := c.Store()
	if err != nil || st == nil {
		t.Errorf("Store with a cache dir: store=%v err=%v", st, err)
	}
}

func TestParseLevels(t *testing.T) {
	levels, err := cli.ParseLevels("F10,8:F12,8")
	if err != nil {
		t.Fatalf("ParseLevels: %v", err)
	}
	if len(levels) != 2 || levels[0].Bits() != 10 || levels[1].Bits() != 12 {
		t.Errorf("ParseLevels(\"F10,8:F12,8\") = %v", levels)
	}
	for _, bad := range []string{"", ":", "F10,8:junk", "nope"} {
		if _, err := cli.ParseLevels(bad); err == nil {
			t.Errorf("ParseLevels(%q) succeeded; want error", bad)
		}
	}
}
