package cli_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/report_counters_golden.json")

// observedRun generates the small progressive cospi configuration into a
// fresh store with a live recorder attached and returns the result plus the
// emitted report — the same wiring the commands use under -report.
func observedRun(t *testing.T, workers int) (*gen.Result, *obs.Report) {
	t.Helper()
	rec := obs.New("run")
	ctx := obs.WithSpan(context.Background(), rec.Root())
	st := openStore(t, t.TempDir())
	res, _, err := cli.GenerateVerified(ctx, testFn, progOpts(workers), st)
	if err != nil {
		t.Fatalf("GenerateVerified(workers=%d): %v", workers, err)
	}
	rec.Root().End()
	return res, rec.Report()
}

// counterJSON marshals just the deterministic counters section; timings and
// volatile gauges are excluded from every comparison by construction.
func counterJSON(t *testing.T, rep *obs.Report) []byte {
	t.Helper()
	data, err := json.MarshalIndent(rep.Counters, "", "  ")
	if err != nil {
		t.Fatalf("marshal counters: %v", err)
	}
	return append(data, '\n')
}

// findChild returns the uniquely named child of sr, failing the test when
// it is absent.
func findChild(t *testing.T, sr *obs.SpanReport, name string) *obs.SpanReport {
	t.Helper()
	for _, c := range sr.Children {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("span %q has no child %q (children: %v)", sr.Name, name, spanNames(sr.Children))
	return nil
}

func spanNames(srs []*obs.SpanReport) []string {
	names := make([]string, len(srs))
	for i, c := range srs {
		names[i] = c.Name
	}
	return names
}

// TestReportCountersDeterministic pins the determinism contract of the
// counter taxonomy: a cold run at -workers 1 and a cold run at -workers 4
// emit byte-identical counters sections, and the span tree nests
// run → function → verify → solve → reduce → enumerate.
func TestReportCountersDeterministic(t *testing.T) {
	_, rep1 := observedRun(t, 1)
	_, rep4 := observedRun(t, 4)

	c1, c4 := counterJSON(t, rep1), counterJSON(t, rep4)
	if !bytes.Equal(c1, c4) {
		t.Errorf("counters differ between workers=1 and workers=4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", c1, c4)
	}

	if rep1.Spans == nil || rep1.Spans.Name != "run" {
		t.Fatalf("report has no run root span: %+v", rep1.Spans)
	}
	fn := findChild(t, rep1.Spans, testFn.String())
	verify := findChild(t, fn, gen.StageVerify)
	solve := findChild(t, verify, gen.StageSolve)
	reduce := findChild(t, solve, gen.StageReduce)
	findChild(t, reduce, gen.StageEnumerate)

	// A cold run exercised every subsystem: the headline counter of each
	// taxonomy group must be non-zero (rescue rungs and specials legitimately
	// stay zero when the baseline search succeeds and the domain has no
	// special inputs).
	for _, c := range []obs.Counter{
		obs.CtrClarksonAttempts, obs.CtrClarksonIters, obs.CtrClarksonSamples,
		obs.CtrOracleQueries, obs.CtrRowsEnumerated, obs.CtrRowsReduced,
		obs.CtrStoreMisses, obs.CtrStoreBytesWritten,
	} {
		if rep1.Counters[string(c)] == 0 {
			t.Errorf("cold run left %s at zero", c)
		}
	}
	if got, want := rep1.Version, obs.ReportVersion; got != want {
		t.Errorf("report version = %d, want %d", got, want)
	}
}

// TestCoefficientsUnaffectedByObservability pins the other half of the
// contract: the sealed result artifact is bit-identical whether the run was
// observed or not — the layer watches the pipeline but never touches it.
func TestCoefficientsUnaffectedByObservability(t *testing.T) {
	observed, _ := observedRun(t, 2)

	st := openStore(t, t.TempDir())
	plain, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(2), st)
	if err != nil {
		t.Fatalf("GenerateVerified(unobserved): %v", err)
	}

	var eo, ep pipeline.Enc
	gen.ResultCodec.Encode(&eo, observed)
	gen.ResultCodec.Encode(&ep, plain)
	if !bytes.Equal(eo.Bytes(), ep.Bytes()) {
		t.Errorf("observed and unobserved runs encode different result artifacts")
	}
}

// TestReportCountersGolden compares the counters of the fixed small run
// against a checked-in golden, so CI catches silent counter regressions —
// a solver suddenly iterating more, an oracle shortcut path going dark.
// Regenerate with: go test ./internal/cli -run TestReportCountersGolden -update
func TestReportCountersGolden(t *testing.T) {
	_, rep := observedRun(t, 1)
	got := counterJSON(t, rep)

	golden := filepath.Join("testdata", "report_counters_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("counters changed vs golden; if intentional, regenerate with -update\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFinishRunWritesReport drives the -report emission end to end: the
// report lands next to the artifact cache, carries the schema version, the
// command name, the flag metadata, and the complete zero-filled taxonomy.
func TestFinishRunWritesReport(t *testing.T) {
	c := &cli.Common{CacheDir: t.TempDir(), Report: true, Workers: 2, Seed: 7, Bits: 12}
	rec := c.NewRecorder()
	if rec == nil {
		t.Fatal("NewRecorder returned nil with -report set")
	}
	sp := rec.Root().Child("stage")
	sp.Add(obs.CtrStoreHits, 3)
	sp.End()
	if err := c.FinishRun(rec, "rlibm-test"); err != nil {
		t.Fatalf("FinishRun: %v", err)
	}

	data, err := os.ReadFile(c.ReportPath())
	if err != nil {
		t.Fatalf("read %s: %v", c.ReportPath(), err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report.json is not valid JSON: %v", err)
	}
	if rep.Version != obs.ReportVersion {
		t.Errorf("version = %d, want %d", rep.Version, obs.ReportVersion)
	}
	if rep.Command != "rlibm-test" {
		t.Errorf("command = %q, want rlibm-test", rep.Command)
	}
	if rep.Meta["workers"] != "2" || rep.Meta["seed"] != "7" || rep.Meta["bits"] != "12" {
		t.Errorf("meta = %v, want workers=2 seed=7 bits=12", rep.Meta)
	}
	for _, ctr := range obs.Taxonomy() {
		if _, ok := rep.Counters[string(ctr)]; !ok {
			t.Errorf("report is missing taxonomy counter %s", ctr)
		}
	}
	if rep.Counters[string(obs.CtrStoreHits)] != 3 {
		t.Errorf("store.hits = %d, want 3", rep.Counters[string(obs.CtrStoreHits)])
	}

	// Caching disabled: the report falls back to the working directory.
	c2 := &cli.Common{NoCache: true, Report: true}
	if got := c2.ReportPath(); got != "report.json" {
		t.Errorf("ReportPath with -no-cache = %q, want report.json", got)
	}

	// Observability off: FinishRun is a no-op and NewRecorder stays nil.
	c3 := &cli.Common{CacheDir: t.TempDir()}
	if rec := c3.NewRecorder(); rec != nil {
		t.Errorf("NewRecorder returned a live recorder with -v and -report unset")
	}
	if err := c3.FinishRun(nil, "rlibm-test"); err != nil {
		t.Errorf("FinishRun(nil): %v", err)
	}
	if _, err := os.Stat(filepath.Join(c3.CacheDir, "report.json")); !os.IsNotExist(err) {
		t.Errorf("FinishRun(nil) wrote a report (stat err=%v)", err)
	}
}
