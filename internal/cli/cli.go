// Package cli holds the flag plumbing and pipeline wiring shared by the
// five rlibm commands: the common
// -workers/-seed/-bits/-cache-dir/-no-cache/-timeout flag set (previously
// copied four ways), the observability flags (-v, -report, -cpuprofile,
// -memprofile) and their run-report emission, artifact-store opening, and
// the staged generate+verify entry point that lets sibling commands reuse
// one cache — rlibm-table1 → table2 → fig4 enumerate each function exactly
// once.
package cli

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/pipeline"
)

// Common holds the flag values shared by every rlibm command.
type Common struct {
	// Workers bounds worker goroutines; generated output is bit-identical
	// for every value. Must be ≥ 1 (Validate rejects silent defaulting).
	Workers int
	// Seed drives all randomness; runs are reproducible. Must be ≥ 0
	// (negative seeds are reserved: the rescue ladder XORs published salts
	// into the seed, and a sign bit would silently alias rotated streams).
	Seed int64
	// Bits is the width of the largest representation.
	Bits int
	// CacheDir roots the content-addressed artifact store; empty disables
	// caching, as does NoCache. Kept as an alias for -store dir:PATH.
	CacheDir string
	NoCache  bool
	// StoreURL selects the artifact-store backend: "dir:PATH" (atomic-
	// rename on-disk store), "mem:" (ephemeral in-memory store) or
	// "tcp://host:port" (remote store served by rlibm-store). Empty means
	// "dir:" + CacheDir — the historical behavior.
	StoreURL string
	// ShardSpec is the -shard flag value "k/n": this process computes
	// slice k of the n-way distributed work partition (claims and work
	// units published through the shared store). Empty means solo.
	ShardSpec string
	// StoreMaxBytes, when positive, wraps the local (dir: or mem:) store
	// in an LRU eviction policy with this byte budget; claim artifacts
	// are pinned. 0 disables eviction. Remote stores evict server-side
	// (rlibm-store -max-bytes), so combining this with tcp:// is
	// rejected.
	StoreMaxBytes int64
	// store is the backend opened by Store(), retained so FinishRun can
	// record remote transport counters and CloseStore can close it.
	store pipeline.Store
	// Timeout, when positive, bounds the whole run: the Context this
	// package hands to the pipeline is canceled after it and every stage
	// returns a typed canceled fault, leaving the cache resumable.
	Timeout time.Duration
	// Verbose enables progress logging and the rendered observability
	// span tree at exit.
	Verbose bool
	// Report writes a versioned run report (report.json) next to the
	// artifact cache at exit; see ReportPath.
	Report bool
	// CPUProfile and MemProfile name pprof output files (empty disables);
	// see StartProfiles.
	CPUProfile string
	MemProfile string
}

// Register installs the shared flags into fs (use flag.CommandLine for a
// command's top level) and returns the value struct they fill.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", runtime.NumCPU(),
		"worker count for enumeration, solving and verification (generated output is identical for any value)")
	fs.Int64Var(&c.Seed, "seed", 1, "random seed")
	fs.IntVar(&c.Bits, "bits", gen.DefaultLargestBits,
		"width of the largest representation (paper: 32; see DESIGN.md)")
	fs.StringVar(&c.CacheDir, "cache-dir", DefaultCacheDir(),
		"artifact cache directory (empty disables caching; alias for -store dir:PATH)")
	fs.BoolVar(&c.NoCache, "no-cache", false, "disable the artifact cache")
	fs.StringVar(&c.StoreURL, "store", "",
		"artifact store URL: dir:PATH, mem:, or tcp://host:port (default: dir:<cache-dir>)")
	fs.StringVar(&c.ShardSpec, "shard", "",
		"distributed work slice k/n: this process claims and computes slice k of n (requires a shared -store)")
	fs.Int64Var(&c.StoreMaxBytes, "store-max-bytes", 0,
		"evict least-recently-used artifacts once the local store exceeds this many bytes (0 disables; for tcp:// stores use rlibm-store -max-bytes)")
	fs.DurationVar(&c.Timeout, "timeout", 0,
		"abort the run after this duration (0 disables); an aborted run leaves the cache resumable")
	fs.BoolVar(&c.Verbose, "v", false,
		"verbose progress; also renders the observability span tree at exit")
	fs.BoolVar(&c.Report, "report", false,
		"write a run report (report.json) next to the artifact cache at exit")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	return c
}

// Validate rejects unusable flag combinations with a clear error instead
// of silently substituting defaults. Every message follows one shape —
// "invalid -flag value: must be at least bound (hint)" — so scripts and
// users see uniform diagnostics across all five commands.
func (c *Common) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("invalid -workers %d: must be at least 1 (use -workers 1 for a serial run)", c.Workers)
	}
	if c.Seed < 0 {
		return fmt.Errorf("invalid -seed %d: must be at least 0 (negative seeds are reserved for rescue-ladder salting)", c.Seed)
	}
	if c.Bits < 2 {
		return fmt.Errorf("invalid -bits %d: must be at least 2", c.Bits)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("invalid -timeout %v: must be at least 0 (0 disables the deadline)", c.Timeout)
	}
	// A deadline shorter than one claim-poll interval cannot even survive
	// a single distributed-claim wait: every sharded run would die with a
	// spurious cancel instead of a diagnostic. Reject it up front.
	if c.Timeout > 0 && c.Timeout < gen.ClaimPollInterval {
		return fmt.Errorf("invalid -timeout %v: must be at least %v, one claim poll interval (0 disables the deadline)",
			c.Timeout, gen.ClaimPollInterval)
	}
	if _, err := gen.ParseShard(c.ShardSpec); err != nil {
		return err
	}
	scheme, _, err := splitStoreURL(c.StoreURL)
	if err != nil {
		return err
	}
	if c.StoreMaxBytes < 0 {
		return fmt.Errorf("invalid -store-max-bytes %d: must be at least 0 (0 disables eviction)", c.StoreMaxBytes)
	}
	// A remote client cannot evict for the server: its view of the store
	// is one connection among many, so a client-side budget would evict
	// peers' artifacts on partial information. Eviction for tcp:// stores
	// belongs on the serving side.
	if c.StoreMaxBytes > 0 && scheme == "tcp" {
		return fmt.Errorf("invalid -store-max-bytes %d: must be at least 0 and used with a local store; a tcp:// store evicts server-side (rlibm-store -max-bytes)", c.StoreMaxBytes)
	}
	return nil
}

// Shard returns the parsed -shard value; Validate has already rejected
// malformed specs.
func (c *Common) Shard() gen.Shard {
	s, _ := gen.ParseShard(c.ShardSpec)
	return s
}

// Context returns the run context selected by the flags: background, or a
// deadline c.Timeout from now. The caller must invoke cancel (deferred)
// regardless of which was returned.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Logf returns the progress logger selected by -v: log.Printf when
// verbose, nil otherwise (the pipeline treats nil as silent).
func (c *Common) Logf() func(string, ...interface{}) {
	if c.Verbose {
		return log.Printf
	}
	return nil
}

// NewRecorder returns a live observability recorder when -report or -v
// asked for one, and nil otherwise — the disabled layer, where every obs
// write is a nil-check no-op and generated coefficients are untouched
// either way. Wire the root span into the run context with
// obs.WithSpan(ctx, rec.Root()) and hand the recorder to FinishRun.
func (c *Common) NewRecorder() *obs.Recorder {
	if !c.Report && !c.Verbose {
		return nil
	}
	return obs.New("run")
}

// ReportPath returns where -report writes report.json: next to the
// artifact cache when the store is directory-backed, or the working
// directory otherwise (caching disabled, memory store, remote store).
func (c *Common) ReportPath() string {
	if c.NoCache || c.CacheDir == "" {
		return "report.json"
	}
	if scheme, _, _ := splitStoreURL(c.StoreURL); scheme == "mem" || scheme == "tcp" {
		return "report.json"
	}
	return filepath.Join(c.CacheDir, "report.json")
}

// FinishRun emits the run's observability output for command: the rendered
// span tree on stderr with -v, and report.json at ReportPath with -report.
// A nil recorder (observability off) is a no-op.
func (c *Common) FinishRun(rec *obs.Recorder, command string) error {
	if rec == nil {
		return nil
	}
	if rs, ok := c.store.(*pipeline.RemoteStore); ok {
		st := rs.Stats()
		root := rec.Root()
		root.Add(obs.CtrRemoteRoundTrips, st.RoundTrips)
		root.Add(obs.CtrRemoteRetries, st.Retries)
		root.Add(obs.CtrRemoteBytesSent, st.BytesSent)
		root.Add(obs.CtrRemoteBytesRecv, st.BytesRecv)
	}
	if es, ok := c.store.(*pipeline.EvictingStore); ok {
		st := es.Stats()
		root := rec.Root()
		root.Add(obs.CtrStoreEvictions, st.Evictions)
		root.Add(obs.CtrStoreBytesLive, st.BytesLive)
	}
	rec.Root().End()
	rep := rec.Report()
	rep.Command = command
	rep.Meta = map[string]string{
		"workers": strconv.Itoa(c.Workers),
		"seed":    strconv.FormatInt(c.Seed, 10),
		"bits":    strconv.Itoa(c.Bits),
	}
	if c.Verbose {
		rep.Render(os.Stderr)
	}
	if c.Report {
		path := c.ReportPath()
		if err := rep.WriteFile(path); err != nil {
			return fmt.Errorf("write run report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "report: %s\n", path)
	}
	return nil
}

// StartProfiles starts the collectors selected by -cpuprofile and
// -memprofile and returns a stop function: it stops the CPU profile and
// writes the heap profile. Call stop on every successful exit path (a
// deferred call is skipped by os.Exit). Profiling lives entirely outside
// the coefficient path and never alters generated output.
func (c *Common) StartProfiles() (stop func(), err error) {
	var cpuF *os.File
	if c.CPUProfile != "" {
		cpuF, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("start -cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				log.Printf("create -memprofile: %v", err)
				return
			}
			runtime.GC() // flush recent allocations into the heap profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Printf("write -memprofile: %v", err)
			}
			f.Close()
		}
	}, nil
}

// DefaultCacheDir returns the default artifact cache location: the user
// cache directory when the OS provides one, else a repo-local fallback.
func DefaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "rlibm-repro")
	}
	return ".rlibm-cache"
}

// splitStoreURL validates and splits a -store URL into scheme and rest.
// The empty URL is valid (it defers to -cache-dir) and splits to ("", "").
func splitStoreURL(url string) (scheme, rest string, _ error) {
	switch {
	case url == "":
		return "", "", nil
	case strings.HasPrefix(url, "dir:"):
		if rest = strings.TrimPrefix(url, "dir:"); rest == "" {
			return "", "", fmt.Errorf("invalid -store %q: dir: needs a path (e.g. dir:/var/cache/rlibm)", url)
		}
		return "dir", rest, nil
	case url == "mem:" || url == "mem":
		return "mem", "", nil
	case strings.HasPrefix(url, "tcp://"), strings.HasPrefix(url, "tcp:"):
		rest = strings.TrimPrefix(strings.TrimPrefix(url, "tcp://"), "tcp:")
		if rest == "" {
			return "", "", fmt.Errorf("invalid -store %q: tcp: needs host:port (e.g. tcp://localhost:7070)", url)
		}
		return "tcp", rest, nil
	default:
		return "", "", fmt.Errorf("invalid -store %q: scheme must be dir:, mem: or tcp:", url)
	}
}

// Store opens the artifact store selected by the flags: -store dir:/mem:/
// tcp: when given, else the -cache-dir disk store. A nil store (with nil
// error) means caching is disabled; every staged entry point accepts that
// and computes in memory. The opened store is retained on c for FinishRun
// (remote transport counters) and CloseStore.
func (c *Common) Store() (pipeline.Store, error) {
	if c.NoCache {
		return nil, nil
	}
	if c.store != nil {
		return c.store, nil
	}
	scheme, rest, err := splitStoreURL(c.StoreURL)
	if err != nil {
		return nil, err
	}
	if scheme == "" {
		if c.CacheDir == "" {
			return nil, nil
		}
		scheme, rest = "dir", c.CacheDir
	}
	switch scheme {
	case "dir":
		st, oerr := pipeline.Open(rest)
		if oerr != nil {
			return nil, fmt.Errorf("open artifact cache: %w", oerr)
		}
		c.store = st
	case "mem":
		c.store = pipeline.NewMemStore()
	case "tcp":
		st, derr := pipeline.DialRemote(rest, 0)
		if derr != nil {
			return nil, derr
		}
		c.store = st
	}
	if c.StoreMaxBytes > 0 {
		// Validate rejected tcp + -store-max-bytes, so this only wraps
		// local backends.
		c.store = pipeline.NewEvictingStore(c.store, c.StoreMaxBytes)
	}
	return c.store, nil
}

// CloseStore releases the store opened by Store (a no-op for backends
// without a connection). Commands defer it after opening their store.
func (c *Common) CloseStore() {
	if rs, ok := c.store.(*pipeline.RemoteStore); ok {
		rs.Close()
	}
}

// BaselinePieces mirrors the RLibm-All sub-domain counts of Table 1,
// scaled to the default largest format (quartered relative to the paper's
// 32-bit counts, minimum 4).
func BaselinePieces(fn bigmath.Func) int {
	switch fn {
	case bigmath.Ln:
		return 256
	case bigmath.Log2, bigmath.Log10, bigmath.Exp, bigmath.Exp2:
		return 64
	case bigmath.Exp10:
		return 128
	case bigmath.Sinh, bigmath.Cosh:
		return 16
	default: // sinpi, cospi
		return 4
	}
}

// ProgressiveOptions builds the generation options of the paper's
// progressive library for the shared flags.
func (c *Common) ProgressiveOptions(progressiveRO bool, logf func(string, ...interface{})) gen.Options {
	return gen.Options{
		Levels:        gen.StandardLevels(c.Bits),
		ProgressiveRO: progressiveRO,
		Seed:          c.Seed,
		Workers:       c.Workers,
		Logf:          logf,
	}
}

// BaselineOptions builds the generation options of the RLibm-All piecewise
// baseline for the shared flags.
func (c *Common) BaselineOptions(fn bigmath.Func, logf func(string, ...interface{})) gen.Options {
	return gen.Options{
		Levels:      []fp.Format{fp.MustFormat(c.Bits, 8)},
		ForcePieces: BaselinePieces(fn),
		MaxTerms:    6,
		Seed:        c.Seed,
		Workers:     c.Workers,
		Logf:        logf,
	}
}

// GenerateVerified runs the full staged pipeline for fn — Enumerate,
// Reduce, Solve, then the exhaustive Verify/Repair pass — with every stage
// checkpointed in store (nil store: all in memory). The verify stage wraps
// the generation stages: a warm verify artifact skips generation and
// verification entirely and decodes the repaired result directly. patched
// reports how many inputs the repair pass added on a cold run (0 on a warm
// one — the patches are already baked into the artifact).
//
// This lives here rather than in internal/gen because the verify stage
// needs internal/verify, which itself imports gen.
func GenerateVerified(ctx context.Context, fn bigmath.Func, opt gen.Options, store pipeline.Store) (res *gen.Result, patched int, err error) {
	return GenerateVerifiedSharded(ctx, fn, opt, store, gen.Shard{})
}

// GenerateVerifiedSharded is GenerateVerified for one process of a
// distributed run: the exhaustive verification sweeps are split into
// shard.N content-addressed work units in the shared store (see
// repairSharded), the per-piece Clarkson solves become round-robin-dealt
// work units inside the Solve stage (gen.GenerateStagedSharded), this
// process claims and computes its share, and every process assembles the
// merged result bit-identically to a solo run. The solo shard (or a nil
// store) degrades to exactly GenerateVerified.
func GenerateVerifiedSharded(ctx context.Context, fn bigmath.Func, opt gen.Options, store pipeline.Store, shard gen.Shard) (res *gen.Result, patched int, err error) {
	orc := opt.Oracle
	if orc == nil {
		orc = oracle.New(fn)
		opt.Oracle = orc
	}
	if opt.Faults != nil {
		orc.SetFaults(opt.Faults)
	}
	// One observability span per generated function: the verify stage span
	// pipeline.Run opens below nests under it (and solve, reduce, enumerate
	// under that), and the oracle's query profile over the whole
	// generate+verify pass is attributed to the function as a before/after
	// Stats delta. The deltas are per-query deterministic, so the oracle.*
	// counters stay identical across worker counts.
	sp := obs.SpanFrom(ctx).Child(fn.String())
	defer sp.End()
	ctx = obs.WithSpan(ctx, sp)
	before := orc.Stats()
	res, _, err = pipeline.Run(ctx, store, gen.VerifyKey(fn, opt), gen.ResultCodec,
		pipeline.Logf(opt.Logf), func(ctx context.Context) (*gen.Result, error) {
			r, err := gen.GenerateStagedSharded(ctx, fn, opt, store, shard)
			if err != nil {
				return nil, err
			}
			patched, err = repairSharded(ctx, store, fn, opt, shard, r, orc)
			if err != nil {
				return nil, err
			}
			obs.SpanFrom(ctx).Add(obs.CtrVerifyPatched, int64(patched))
			return r, nil
		})
	orc.Stats().Sub(before).RecordTo(sp)
	return res, patched, err
}
