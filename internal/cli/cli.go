// Package cli holds the flag plumbing and pipeline wiring shared by the
// five rlibm commands: the common -workers/-seed/-bits/-cache-dir/-no-cache
// flag set (previously copied four ways), artifact-store opening, and the
// staged generate+verify entry point that lets sibling commands reuse one
// cache — rlibm-table1 → table2 → fig4 enumerate each function exactly
// once.
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// Common holds the flag values shared by every rlibm command.
type Common struct {
	// Workers bounds worker goroutines; generated output is bit-identical
	// for every value. Must be ≥ 1 (Validate rejects silent defaulting).
	Workers int
	// Seed drives all randomness; runs are reproducible. Must be ≥ 0
	// (negative seeds are reserved: the rescue ladder XORs published salts
	// into the seed, and a sign bit would silently alias rotated streams).
	Seed int64
	// Bits is the width of the largest representation.
	Bits int
	// CacheDir roots the content-addressed artifact store; empty disables
	// caching, as does NoCache.
	CacheDir string
	NoCache  bool
	// Timeout, when positive, bounds the whole run: the Context this
	// package hands to the pipeline is canceled after it and every stage
	// returns a typed canceled fault, leaving the cache resumable.
	Timeout time.Duration
}

// Register installs the shared flags into fs (use flag.CommandLine for a
// command's top level) and returns the value struct they fill.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", runtime.NumCPU(),
		"worker count for enumeration, solving and verification (generated output is identical for any value)")
	fs.Int64Var(&c.Seed, "seed", 1, "random seed")
	fs.IntVar(&c.Bits, "bits", gen.DefaultLargestBits,
		"width of the largest representation (paper: 32; see DESIGN.md)")
	fs.StringVar(&c.CacheDir, "cache-dir", DefaultCacheDir(),
		"artifact cache directory (empty disables caching)")
	fs.BoolVar(&c.NoCache, "no-cache", false, "disable the artifact cache")
	fs.DurationVar(&c.Timeout, "timeout", 0,
		"abort the run after this duration (0 disables); an aborted run leaves the cache resumable")
	return c
}

// Validate rejects unusable flag combinations with a clear error instead
// of silently substituting defaults.
func (c *Common) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d (use 1 for a serial run)", c.Workers)
	}
	if c.Seed < 0 {
		return fmt.Errorf("-seed must be non-negative, got %d", c.Seed)
	}
	if c.Bits < 2 {
		return fmt.Errorf("-bits must be at least 2, got %d", c.Bits)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", c.Timeout)
	}
	return nil
}

// Context returns the run context selected by the flags: background, or a
// deadline c.Timeout from now. The caller must invoke cancel (deferred)
// regardless of which was returned.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// DefaultCacheDir returns the default artifact cache location: the user
// cache directory when the OS provides one, else a repo-local fallback.
func DefaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "rlibm-repro")
	}
	return ".rlibm-cache"
}

// Store opens the artifact store selected by the flags. A nil store (with
// nil error) means caching is disabled; every staged entry point accepts
// that and computes in memory.
func (c *Common) Store() (*pipeline.Store, error) {
	if c.NoCache || c.CacheDir == "" {
		return nil, nil
	}
	st, err := pipeline.Open(c.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("open artifact cache: %w", err)
	}
	return st, nil
}

// BaselinePieces mirrors the RLibm-All sub-domain counts of Table 1,
// scaled to the default largest format (quartered relative to the paper's
// 32-bit counts, minimum 4).
func BaselinePieces(fn bigmath.Func) int {
	switch fn {
	case bigmath.Ln:
		return 256
	case bigmath.Log2, bigmath.Log10, bigmath.Exp, bigmath.Exp2:
		return 64
	case bigmath.Exp10:
		return 128
	case bigmath.Sinh, bigmath.Cosh:
		return 16
	default: // sinpi, cospi
		return 4
	}
}

// ProgressiveOptions builds the generation options of the paper's
// progressive library for the shared flags.
func (c *Common) ProgressiveOptions(progressiveRO bool, logf func(string, ...interface{})) gen.Options {
	return gen.Options{
		Levels:        gen.StandardLevels(c.Bits),
		ProgressiveRO: progressiveRO,
		Seed:          c.Seed,
		Workers:       c.Workers,
		Logf:          logf,
	}
}

// BaselineOptions builds the generation options of the RLibm-All piecewise
// baseline for the shared flags.
func (c *Common) BaselineOptions(fn bigmath.Func, logf func(string, ...interface{})) gen.Options {
	return gen.Options{
		Levels:      []fp.Format{fp.MustFormat(c.Bits, 8)},
		ForcePieces: BaselinePieces(fn),
		MaxTerms:    6,
		Seed:        c.Seed,
		Workers:     c.Workers,
		Logf:        logf,
	}
}

// GenerateVerified runs the full staged pipeline for fn — Enumerate,
// Reduce, Solve, then the exhaustive Verify/Repair pass — with every stage
// checkpointed in store (nil store: all in memory). The verify stage wraps
// the generation stages: a warm verify artifact skips generation and
// verification entirely and decodes the repaired result directly. patched
// reports how many inputs the repair pass added on a cold run (0 on a warm
// one — the patches are already baked into the artifact).
//
// This lives here rather than in internal/gen because the verify stage
// needs internal/verify, which itself imports gen.
func GenerateVerified(ctx context.Context, fn bigmath.Func, opt gen.Options, store *pipeline.Store) (res *gen.Result, patched int, err error) {
	orc := opt.Oracle
	if orc == nil {
		orc = oracle.New(fn)
		opt.Oracle = orc
	}
	if opt.Faults != nil {
		orc.SetFaults(opt.Faults)
	}
	res, _, err = pipeline.Run(ctx, store, gen.VerifyKey(fn, opt), gen.ResultCodec,
		pipeline.Logf(opt.Logf), func() (*gen.Result, error) {
			r, err := gen.GenerateStaged(ctx, fn, opt, store)
			if err != nil {
				return nil, err
			}
			patched, err = verify.Repair(r, orc, opt.Workers)
			if err != nil {
				return nil, err
			}
			return r, nil
		})
	return res, patched, err
}
