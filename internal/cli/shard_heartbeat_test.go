package cli

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// Claim heartbeat and expiry unit tests: they drive
// gen.FetchUnit and gen.StartClaimHeartbeat directly. The contract: a computing
// shard keeps its claim's stamp advancing, a poller waits as long as the
// stamp moves, and a claim whose stamp freezes is reclaimed after
// gen.ClaimStallBudget polls — well before the full gen.ClaimPollAttempts window.

// hbUnitKey is a throwaway work-unit key for the claim tests.
func hbUnitKey() pipeline.Key {
	return pipeline.Key{Func: "cospi", Stage: gen.StageVerifyShard, Fingerprint: "hb-test-0.2"}
}

// hbReports is the fixed unit payload the tests publish or compute.
func hbReports() []verify.Report {
	return []verify.Report{{Format: fp.MustFormat(10, 8), Mode: fp.RoundNearestEven, Checked: 1024}}
}

// sealReports frames hbReports for direct store publication, bypassing
// pipeline.Run the way a peer process's publish looks to this process.
func sealReports(reps []verify.Report) []byte {
	var e pipeline.Enc
	shardReportCodec.Encode(&e, reps)
	return pipeline.Seal(shardReportCodec.Name, shardReportCodec.Version, e.Bytes())
}

// TestShardHeartbeatAdvancesStamp: startClaimHeartbeat republishes the
// claim with a strictly advancing stamp, and stops advancing once stopped.
func TestShardHeartbeatAdvancesStamp(t *testing.T) {
	st := pipeline.NewMemStore()
	key := hbUnitKey()
	shard := gen.Shard{K: 0, N: 2}
	if !gen.Claim(st, key, shard, nil) {
		t.Fatal("initial claim failed on an empty store")
	}
	stop := gen.StartClaimHeartbeat(context.Background(), st, key, shard)

	deadline := time.Now().Add(10 * time.Second)
	var seen uint64
	for seen < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("stamp reached only %d within the deadline", seen)
		}
		c, ok := gen.ClaimedBy(st, key, nil)
		if !ok {
			t.Fatal("claim vanished while the heartbeat ran")
		}
		if c.Owner != shard.Owner() {
			t.Fatalf("claim owner %q, want %q", c.Owner, shard.Owner())
		}
		if c.Stamp < seen {
			t.Fatalf("stamp went backwards: %d after %d", c.Stamp, seen)
		}
		seen = c.Stamp
		time.Sleep(gen.HeartbeatInterval / 2)
	}
	stop()

	c, ok := gen.ClaimedBy(st, key, nil)
	if !ok {
		t.Fatal("claim vanished after stop")
	}
	frozen := c.Stamp
	time.Sleep(4 * gen.HeartbeatInterval)
	if c, _ := gen.ClaimedBy(st, key, nil); c.Stamp != frozen {
		t.Errorf("stamp advanced from %d to %d after stop", frozen, c.Stamp)
	}
}

// TestShardDeadPeerReclaimedEarly: a peer claim whose stamp never advances
// is treated as dead after gen.ClaimStallBudget polls, so FetchUnit computes
// the unit locally long before the full gen.ClaimPollAttempts window.
func TestShardDeadPeerReclaimedEarly(t *testing.T) {
	st := pipeline.NewMemStore()
	key := hbUnitKey()
	// The dead peer claimed the unit (stamp 7) and was then killed: the
	// stamp will never advance again.
	gen.RefreshClaim(st, key, gen.Shard{K: 1, N: 2}, 7)

	var computed atomic.Bool
	compute := func(context.Context) ([]verify.Report, error) {
		computed.Store(true)
		return hbReports(), nil
	}
	start := time.Now()
	reps, err := gen.FetchUnit(context.Background(), st, key, gen.Shard{K: 0, N: 2}, nil, nil, shardReportCodec, compute)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !computed.Load() {
		t.Error("unit was not computed locally")
	}
	if len(reps) != 1 || reps[0].Checked != 1024 {
		t.Errorf("unexpected reports: %+v", reps)
	}
	// The stall budget is 10 polls (~500ms); the full window is 40
	// (~2s). Half the window is an ample scheduling margin that still
	// proves the early-expiry path ran.
	if budget := gen.ClaimPollAttempts * gen.ClaimPollInterval; elapsed >= budget/2 {
		t.Errorf("reclaim took %v, want well under the %v poll window", elapsed, budget)
	}
	if c, ok := gen.ClaimedBy(st, key, nil); !ok || c.Owner != (gen.Shard{K: 0, N: 2}).Owner() {
		t.Errorf("claim not taken over by the survivor: %+v ok=%v", c, ok)
	}
}

// TestShardLivePeerAwaited: while a peer's heartbeat keeps the claim
// fresh, FetchUnit keeps polling — past the stall budget — and returns the
// peer's published artifact without ever computing locally.
func TestShardLivePeerAwaited(t *testing.T) {
	st := pipeline.NewMemStore()
	key := hbUnitKey()
	peer := gen.Shard{K: 1, N: 2}
	if !gen.Claim(st, key, peer, nil) {
		t.Fatal("peer claim failed on an empty store")
	}
	stopHB := gen.StartClaimHeartbeat(context.Background(), st, key, peer)
	defer stopHB()

	// The peer "finishes" its unit after the stall budget would have
	// expired for a dead claim, proving the heartbeat kept it alive.
	publishAfter := (gen.ClaimStallBudget + 5) * gen.ClaimPollInterval
	timer := time.AfterFunc(publishAfter, func() {
		if err := st.Put(key, shardReportCodec.Name, shardReportCodec.Version, sealReports(hbReports())); err != nil {
			t.Errorf("peer publish: %v", err)
		}
	})
	defer timer.Stop()

	var computed atomic.Bool
	compute := func(context.Context) ([]verify.Report, error) {
		computed.Store(true)
		return hbReports(), nil
	}
	reps, err := gen.FetchUnit(context.Background(), st, key, gen.Shard{K: 0, N: 2}, nil, nil, shardReportCodec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() {
		t.Error("FetchUnit computed locally despite a live, heartbeating peer")
	}
	if len(reps) != 1 || reps[0].Checked != 1024 {
		t.Errorf("unexpected reports: %+v", reps)
	}
}
