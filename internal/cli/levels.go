package cli

import (
	"fmt"
	"strings"

	"repro/internal/fp"
)

// ParseLevels parses a colon-separated level list such as "F10,8:F12,8"
// (format strings themselves contain commas) into an ascending-width level
// list for gen.Options.
func ParseLevels(s string) ([]fp.Format, error) {
	var out []fp.Format
	for _, part := range strings.Split(s, ":") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := fp.ParseFormat(part)
		if err != nil {
			return nil, fmt.Errorf("-levels: %w", err)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-levels: empty level list %q", s)
	}
	return out, nil
}
