package cli_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// The cross-backend acceptance tests: the generated coefficients must be
// bit-identical whether the pipeline runs over the disk store, the memory
// store or the remote store, at one and four workers; a two-process
// shard-claim run must assemble the same bytes as a single process; and
// injected remote/claim faults must recover bit-identically or fail with
// a typed *fault.Error, with the store audit-clean after every scenario.
//
// When RLIBM_STORE_ARTIFACTS names a directory (the CI loopback job sets
// it), each scenario dumps its post-run Audit verdict and store event log
// there for artifact upload.

// storeWorkers returns the worker count for the distribution scenarios:
// def unless RLIBM_STORE_WORKERS overrides it (the CI loopback matrix runs
// the suite at one and four workers).
func storeWorkers(def int) int {
	if s := os.Getenv("RLIBM_STORE_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// startStoreServer serves backing over a loopback listener and tears it
// down with the test. It returns the dial address.
func startStoreServer(t *testing.T, backing pipeline.Store) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := pipeline.Serve(l, backing, nil); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		l.Close()
		<-done
	})
	return l.Addr().String()
}

// dialStore returns a remote client for addr, closed with the test.
func dialStore(t *testing.T, addr string) *pipeline.RemoteStore {
	t.Helper()
	rs, err := pipeline.DialRemote(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

// dumpStoreArtifacts writes the post-run audit verdict and event log of
// one scenario into $RLIBM_STORE_ARTIFACTS, when set.
func dumpStoreArtifacts(t *testing.T, scenario string, st pipeline.Store) {
	t.Helper()
	dir := os.Getenv("RLIBM_STORE_ARTIFACTS")
	if dir == "" || st == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("store artifacts dir: %v", err)
		return
	}
	audit := "ok"
	if err := st.Audit(); err != nil {
		audit = err.Error()
	}
	base := filepath.Join(dir, scenario)
	if err := os.WriteFile(base+"-audit.txt", []byte(audit+"\n"), 0o644); err != nil {
		t.Logf("write audit artifact: %v", err)
	}
	events, err := json.MarshalIndent(st.Events(), "", "  ")
	if err == nil {
		err = os.WriteFile(base+"-events.json", append(events, '\n'), 0o644)
	}
	if err != nil {
		t.Logf("write event-log artifact: %v", err)
	}
}

// TestBackendBitIdentity: one function generated through all three
// backends at one and four workers emits byte-identical coefficient
// tables, and every store passes its post-run audit.
func TestBackendBitIdentity(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4} {
		backends := map[string]pipeline.Store{
			"disk": openStore(t, t.TempDir()),
			"mem":  pipeline.NewMemStore(),
			"tcp":  dialStore(t, startStoreServer(t, pipeline.NewMemStore())),
		}
		for _, name := range []string{"disk", "mem", "tcp"} {
			st := backends[name]
			scenario := name + map[int]string{1: "-w1", 4: "-w4"}[workers]
			res, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(workers), st)
			if err != nil {
				t.Fatalf("%s: %v", scenario, err)
			}
			emit := []byte(gen.EmitGo(res, "libm", "registerTest"))
			if ref == nil {
				ref = emit
			} else if !bytes.Equal(emit, ref) {
				t.Errorf("%s: emitted bytes differ from the disk/w1 reference", scenario)
			}
			if err := st.Audit(); err != nil {
				t.Errorf("%s: audit: %v", scenario, err)
			}
			if n := st.CountEvents("", false); n == 0 {
				t.Errorf("%s: store saw no traffic", scenario)
			}
			dumpStoreArtifacts(t, "bit-identity-"+scenario, st)
		}
	}
}

// TestTwoProcessShardClaim is the distribution acceptance test: two
// clients of one store server, running shards 0/2 and 1/2 of the same
// generation, must both assemble the result byte-identically to a solo
// run — and the sealed verify artifact each leaves in the shared store
// must equal the solo run's artifact byte for byte.
func TestTwoProcessShardClaim(t *testing.T) {
	opt := progOpts(storeWorkers(2))

	// Solo reference: a single process over a disk store.
	refDir := t.TempDir()
	refStore := openStore(t, refDir)
	refRes, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn, progOpts(storeWorkers(2)), refStore, gen.Shard{})
	if err != nil {
		t.Fatalf("solo reference: %v", err)
	}
	refEmit := []byte(gen.EmitGo(refRes, "libm", "registerTest"))
	refArtifact, ok := refStore.Get(gen.VerifyKey(testFn, opt), gen.ResultCodec.Name, gen.ResultCodec.Version)
	if !ok {
		t.Fatal("solo reference left no verify artifact")
	}

	// Two cooperating processes sharing one remote store.
	backing := pipeline.NewMemStore()
	addr := startStoreServer(t, backing)
	clients := []*pipeline.RemoteStore{dialStore(t, addr), dialStore(t, addr)}
	emits := make([][]byte, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn,
				progOpts(storeWorkers(2)), clients[k], gen.Shard{K: k, N: 2})
			if err != nil {
				errs[k] = err
				return
			}
			emits[k] = []byte(gen.EmitGo(res, "libm", "registerTest"))
		}()
	}
	wg.Wait()
	for k := 0; k < 2; k++ {
		if errs[k] != nil {
			t.Fatalf("shard %d/2: %v", k, errs[k])
		}
		if !bytes.Equal(emits[k], refEmit) {
			t.Errorf("shard %d/2 assembled different bytes than the solo run", k)
		}
		dumpStoreArtifacts(t, map[int]string{0: "two-process-shard0", 1: "two-process-shard1"}[k], clients[k])
	}

	// The shared store holds the same sealed verify artifact the solo run
	// produced, plus the distributed work units and claims next to it.
	shared, ok := backing.Get(gen.VerifyKey(testFn, opt), gen.ResultCodec.Name, gen.ResultCodec.Version)
	if !ok {
		t.Fatal("shared store holds no verify artifact")
	}
	if !bytes.Equal(shared, refArtifact) {
		t.Error("shared verify artifact differs from the solo run's artifact")
	}
	units := 0
	for _, cl := range clients {
		units += cl.CountEvents(gen.StageVerifyShard, false) + cl.CountEvents(gen.StageVerifyShard, true)
	}
	if units == 0 {
		t.Error("no verify-shard work units were exchanged; the run did not distribute")
	}
	if err := backing.Audit(); err != nil {
		t.Errorf("shared store audit: %v", err)
	}
}

// TestTwoProcessShardClaimDeadPeer is the kill-one-peer acceptance test:
// shard 1/2 claims every one of its work units and is then killed before
// computing any of them — its claims sit in the store with a heartbeat
// stamp that never advances. The surviving shard 0/2 must detect each
// frozen stamp, reclaim the unit before the full poll window expires, and
// still assemble bytes identical to a solo run.
func TestTwoProcessShardClaimDeadPeer(t *testing.T) {
	opt := progOpts(storeWorkers(2))

	// Solo reference.
	refRes, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn, progOpts(storeWorkers(2)), pipeline.NewMemStore(), gen.Shard{})
	if err != nil {
		t.Fatalf("solo reference: %v", err)
	}
	refEmit := []byte(gen.EmitGo(refRes, "libm", "registerTest"))

	// The dead peer: claims all four of its potential units (2 levels ×
	// 2 passes, unit index 1 of 2) and never refreshes or computes.
	backing := pipeline.NewMemStore()
	addr := startStoreServer(t, backing)
	dead := gen.Shard{K: 1, N: 2}
	for li := 0; li < 2; li++ {
		for pass := 0; pass < 2; pass++ {
			gen.RefreshClaim(backing, gen.VerifyShardKey(testFn, opt, li, pass, 1, 2), dead, 3)
		}
	}

	// The survivor, with a log capture so the early-reclaim path is
	// observable: the "unrefreshed" diagnostic only fires from the
	// stall-budget branch, which trips long before the poll window ends.
	var logMu sync.Mutex
	var reclaims int
	runOpt := progOpts(storeWorkers(2))
	runOpt.Logf = func(format string, args ...interface{}) {
		logMu.Lock()
		defer logMu.Unlock()
		if strings.Contains(format, "unrefreshed") {
			reclaims++
		}
	}
	res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn, runOpt, dialStore(t, addr), gen.Shard{K: 0, N: 2})
	if err != nil {
		t.Fatalf("survivor run: %v", err)
	}
	if got := []byte(gen.EmitGo(res, "libm", "registerTest")); !bytes.Equal(got, refEmit) {
		t.Error("survivor assembled different bytes than the solo run")
	}
	logMu.Lock()
	got := reclaims
	logMu.Unlock()
	if got == 0 {
		t.Error("no dead claim was reclaimed via the stall budget; the survivor waited out the full window or never saw the claims")
	}
	if err := backing.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
	dumpStoreArtifacts(t, "dead-peer", backing)
}

// TestShardStaleClaimRecovers: a claim that always reads back stale
// (SiteClaimStale) makes the process treat peers as dead and compute
// every unit itself — at worst duplicated work, never different bytes.
func TestShardStaleClaimRecovers(t *testing.T) {
	ref, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(storeWorkers(2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	refEmit := []byte(gen.EmitGo(ref, "libm", "registerTest"))

	plan := fault.NewPlan().From(fault.SiteClaimStale, 1)
	opt := progOpts(storeWorkers(2))
	opt.Faults = plan
	st := pipeline.NewMemStore()
	st.SetFaults(plan)
	res, _, err := cli.GenerateVerifiedSharded(context.Background(), testFn, opt, st, gen.Shard{K: 0, N: 2})
	if err != nil {
		t.Fatalf("stale-claim run: %v", err)
	}
	if got := []byte(gen.EmitGo(res, "libm", "registerTest")); !bytes.Equal(got, refEmit) {
		t.Error("stale-claim run emitted different bytes")
	}
	if plan.Count(fault.SiteClaimStale) == 0 {
		t.Error("stale-claim site never probed")
	}
	if err := st.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
	dumpStoreArtifacts(t, "stale-claim", st)
}

// TestRemoteFaultsEndToEnd drives the remote injection sites through the
// full generation pipeline over a loopback server: a transient fault must
// recover bit-identically; a keeps-firing transport fault degrades the
// store to a pure pass-through (every Get a miss, every Put a logged
// failure) and the run still emits the reference bytes.
func TestRemoteFaultsEndToEnd(t *testing.T) {
	ref, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(storeWorkers(2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	refEmit := []byte(gen.EmitGo(ref, "libm", "registerTest"))

	scenarios := []struct {
		name string
		plan *fault.Plan
	}{
		{"conn-drop-once", fault.NewPlan().At(fault.SiteRemoteConn, 1)},
		{"short-frame-once", fault.NewPlan().At(fault.SiteRemoteShort, 1)},
		{"conn-drop-always", fault.NewPlan().From(fault.SiteRemoteConn, 1)},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			backing := pipeline.NewMemStore()
			rs := dialStore(t, startStoreServer(t, backing))
			rs.SetFaults(sc.plan)
			opt := progOpts(storeWorkers(2))
			res, _, err := cli.GenerateVerified(context.Background(), testFn, opt, rs)
			if err != nil {
				// A run may only fail with a typed fault carrying context.
				var fe *fault.Error
				if !errors.As(err, &fe) {
					t.Fatalf("error is not a *fault.Error: %v", err)
				}
				return
			}
			if got := []byte(gen.EmitGo(res, "libm", "registerTest")); !bytes.Equal(got, refEmit) {
				t.Errorf("emitted bytes differ from the no-fault reference")
			}
			if err := backing.Audit(); err != nil {
				t.Errorf("backing audit: %v", err)
			}
			dumpStoreArtifacts(t, "remote-"+sc.name, rs)
		})
	}
}
