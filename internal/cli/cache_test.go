package cli_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/report"
)

// The acceptance contract of the staged pipeline: a warm cache must be
// byte-identical to a cold run at every worker count, a warm run must skip
// the Enumerate stage entirely, and a corrupt artifact must regenerate
// transparently. The tests drive the same entry point the commands use
// (cli.GenerateVerified) on a deliberately small format pair so the full
// enumerate→reduce→solve→verify chain runs in well under a second.

const testFn = bigmath.CosPi

func progOpts(workers int) gen.Options {
	return gen.Options{
		Levels:  []fp.Format{fp.MustFormat(10, 8), fp.MustFormat(12, 8)},
		Seed:    1,
		Workers: workers,
	}
}

func baseOpts(workers int) gen.Options {
	return gen.Options{
		Levels:      []fp.Format{fp.MustFormat(12, 8)},
		ForcePieces: 4,
		MaxTerms:    6,
		Seed:        1,
		Workers:     workers,
	}
}

// snapshot generates the progressive and baseline results through store and
// renders every byte-comparable output: the emitted Go tables for both and
// the Table 1 report over them.
func snapshot(t *testing.T, store pipeline.Store, workers int) (emitProg, emitBase, table []byte) {
	t.Helper()
	prog, _, err := cli.GenerateVerified(context.Background(), testFn, progOpts(workers), store)
	if err != nil {
		t.Fatalf("GenerateVerified(progressive, workers=%d): %v", workers, err)
	}
	base, _, err := cli.GenerateVerified(context.Background(), testFn, baseOpts(workers), store)
	if err != nil {
		t.Fatalf("GenerateVerified(baseline, workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	err = report.Table1(&buf, []bigmath.Func{testFn},
		func(bigmath.Func) (*gen.Result, error) { return prog, nil },
		func(bigmath.Func) (*gen.Result, error) { return base, nil })
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	return []byte(gen.EmitGo(prog, "libm", "registerTest")),
		[]byte(gen.EmitGo(base, "libm", "registerTestBase")),
		buf.Bytes()
}

func openStore(t *testing.T, dir string) pipeline.Store {
	t.Helper()
	st, err := pipeline.Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

// TestCacheDeterminism is the acceptance test: emitted coefficients and the
// rendered table are byte-identical cold vs warm at workers=1 and
// workers=4, and the warm runs never miss — in particular they skip the
// Enumerate stage entirely.
func TestCacheDeterminism(t *testing.T) {
	dir := t.TempDir()

	cold := openStore(t, dir)
	progCold, baseCold, tableCold := snapshot(t, cold, 1)
	if n := cold.CountEvents(gen.StageEnumerate, false); n == 0 {
		t.Fatalf("cold run recorded no enumerate misses; the store saw no traffic")
	}

	for _, workers := range []int{1, 4} {
		warm := openStore(t, dir)
		progWarm, baseWarm, tableWarm := snapshot(t, warm, workers)
		if !bytes.Equal(progWarm, progCold) {
			t.Errorf("workers=%d: warm progressive emit differs from cold", workers)
		}
		if !bytes.Equal(baseWarm, baseCold) {
			t.Errorf("workers=%d: warm baseline emit differs from cold", workers)
		}
		if !bytes.Equal(tableWarm, tableCold) {
			t.Errorf("workers=%d: warm Table 1 differs from cold:\n--- cold ---\n%s--- warm ---\n%s",
				workers, tableCold, tableWarm)
		}
		if n := warm.CountEvents(gen.StageEnumerate, false); n != 0 {
			t.Errorf("workers=%d: warm run re-ran Enumerate %d times", workers, n)
		}
		if n := warm.CountEvents("", false); n != 0 {
			t.Errorf("workers=%d: warm run missed %d stage probes; events: %+v", workers, n, warm.Events())
		}
		if n := warm.CountEvents(gen.StageVerify, true); n == 0 {
			t.Errorf("workers=%d: warm run never hit the verify artifact", workers)
		}
	}

	// A cold run in a fresh store at a different worker count must produce
	// the same bytes: worker count is excluded from the fingerprint because
	// it provably cannot change output.
	cold4 := openStore(t, t.TempDir())
	prog4, base4, table4 := snapshot(t, cold4, 4)
	if !bytes.Equal(prog4, progCold) || !bytes.Equal(base4, baseCold) || !bytes.Equal(table4, tableCold) {
		t.Errorf("cold workers=4 output differs from cold workers=1")
	}
}

// TestCacheResume models an interrupted run: EnumerateStaged checkpointed
// the enumerate and reduce artifacts, the process died before solving, and
// a later GenerateStaged resumes at the Solve stage without touching the
// oracle-driven enumeration.
func TestCacheResume(t *testing.T) {
	dir := t.TempDir()
	opt := progOpts(2)

	first := openStore(t, dir)
	if _, _, err := gen.EnumerateStaged(context.Background(), testFn, opt, first); err != nil {
		t.Fatalf("EnumerateStaged: %v", err)
	}

	resumed := openStore(t, dir)
	res, err := gen.GenerateStaged(context.Background(), testFn, opt, resumed)
	if err != nil {
		t.Fatalf("GenerateStaged: %v", err)
	}
	if n := resumed.CountEvents(gen.StageReduce, true); n == 0 {
		t.Errorf("resumed run did not reuse the reduce artifact; events: %+v", resumed.Events())
	}
	if n := resumed.CountEvents(gen.StageEnumerate, false); n != 0 {
		t.Errorf("resumed run re-enumerated %d times", n)
	}

	pure, err := gen.GenerateStaged(context.Background(), testFn, opt, nil)
	if err != nil {
		t.Fatalf("GenerateStaged(no store): %v", err)
	}
	if got, want := gen.EmitGo(res, "libm", "r"), gen.EmitGo(pure, "libm", "r"); got != want {
		t.Errorf("resumed result differs from uncached result")
	}
}

// TestCacheCorruption flips a byte in every artifact on disk and demands
// the next run regenerate transparently with identical output.
func TestCacheCorruption(t *testing.T) {
	dir := t.TempDir()
	cold := openStore(t, dir)
	progCold, _, _ := snapshot(t, cold, 2)

	arts, err := filepath.Glob(filepath.Join(dir, "*", "*.art"))
	if err != nil || len(arts) == 0 {
		t.Fatalf("no artifacts under %s (err=%v)", dir, err)
	}
	for _, p := range arts {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var logLines []string
	logf := func(format string, args ...interface{}) {
		logLines = append(logLines, fmt.Sprintf(format, args...))
	}
	opt := progOpts(2)
	opt.Logf = logf
	warm := openStore(t, dir)
	prog, _, err := cli.GenerateVerified(context.Background(), testFn, opt, warm)
	if err != nil {
		t.Fatalf("GenerateVerified over corrupt cache: %v", err)
	}
	if got := gen.EmitGo(prog, "libm", "registerTest"); got != string(progCold) {
		t.Errorf("regenerated output differs from the original cold run")
	}
	if n := warm.CountEvents("", true); n != 0 {
		t.Errorf("corrupt artifacts produced %d cache hits", n)
	}
	joined := strings.Join(logLines, "\n")
	if !strings.Contains(joined, "corrupt") {
		t.Errorf("corruption was not logged; log formats seen:\n%s", joined)
	}
}
