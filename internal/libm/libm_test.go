package libm

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/verify"
)

// smallResult generates a tiny but real implementation for tests that must
// not depend on the checked-in tables.
func smallResult(t *testing.T, fn bigmath.Func) *gen.Result {
	t.Helper()
	res, err := gen.Generate(fn, gen.Options{
		Levels: []fp.Format{fp.MustFormat(11, 8), fp.MustFormat(13, 8)},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func withRegistered(t *testing.T, fn bigmath.Func, res *gen.Result, f func()) {
	t.Helper()
	oldP, oldB := progressive[fn], rlibmAll[fn]
	progressive[fn] = res
	rlibmAll[fn] = res
	defer func() { progressive[fn], rlibmAll[fn] = oldP, oldB }()
	f()
}

func TestRegistryAndEval(t *testing.T) {
	fn := bigmath.Log2
	res := smallResult(t, fn)
	withRegistered(t, fn, res, func() {
		if !Have(fn) || !HaveBaseline(fn) {
			t.Fatal("registry")
		}
		small := fp.MustFormat(11, 8)
		x := small.Decode(small.FromFloat64(2, fp.RoundNearestEven))
		bits, err := Eval(fn, x, small, fp.RoundNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if got := small.Decode(bits); got != 1 {
			t.Errorf("log2(2) = %v", got)
		}
		// A format wider than the levels is rejected.
		if _, err := Eval(fn, 2, fp.Float32, fp.RoundNearestEven); err == nil {
			t.Error("expected error for too-wide format")
		}
	})
}

func TestMissingTables(t *testing.T) {
	// Pick a function and clear it.
	fn := bigmath.CosPi
	oldP := progressive[fn]
	progressive[fn] = nil
	defer func() { progressive[fn] = oldP }()
	if Have(fn) {
		t.Skip("tables registered by generated files; cannot clear safely")
	}
	if _, err := Progressive(fn); err == nil {
		t.Error("expected error")
	}
	if _, err := Eval(fn, 1.5, fp.Bfloat16, fp.RoundNearestEven); err == nil {
		t.Error("expected error")
	}
}

// EmitGo must produce parseable Go that round-trips the polynomial data.
func TestEmitGoParses(t *testing.T) {
	res := smallResult(t, bigmath.Exp2)
	src := gen.EmitGo(res, "libm", "register")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "zz_test_emit.go", src, 0); err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, src)
	}
	for _, needle := range []string{"package libm", "register(&gen.Result{", "bigmath.Exp2", "LevelTerms"} {
		if !strings.Contains(src, needle) {
			t.Errorf("emitted source missing %q", needle)
		}
	}
}

// If real tables are checked in, they must be exhaustively correct for
// bfloat16 under rn — a cheap guard that the committed data matches the
// committed code.
func TestCommittedTablesBfloat16(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	anyChecked := false
	for _, fn := range bigmath.AllFuncs {
		if !Have(fn) {
			continue
		}
		anyChecked = true
		res, _ := Progressive(fn)
		impl := verify.NewGenImpl(res)
		orc := oracleFor(fn)
		for _, rep := range verify.Exhaustive(impl, orc, fp.Bfloat16, []fp.Mode{fp.RoundNearestEven}, 0) {
			if !rep.Correct() {
				t.Errorf("%v: %v", fn, rep)
			}
		}
	}
	if !anyChecked {
		t.Skip("no committed tables")
	}
}

func oracleFor(fn bigmath.Func) *oracle.Oracle { return oracle.New(fn) }

// The paper's claim covers every format between 10 bits and the largest
// (same exponent width): full evaluation at the largest level must be
// correctly rounded for intermediate formats under all five modes. Checked
// by sampling here (rlibm-check does it exhaustively).
func TestCommittedTablesIntermediateFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	largest, ok := LargestFormat()
	if !ok {
		t.Skip("no committed tables")
	}
	mid := fp.MustFormat(largest.Bits()-2, 8)
	small := fp.MustFormat(11, 8)
	for _, fn := range bigmath.AllFuncs {
		if !Have(fn) {
			continue
		}
		res, _ := Progressive(fn)
		impl := verify.NewGenImpl(res)
		orc := oracleFor(fn)
		for _, f := range []fp.Format{mid, small} {
			for _, rep := range verify.Sampled(impl, orc, f, fp.StandardModes, 3000, 11, 0) {
				if !rep.Correct() {
					t.Errorf("%v at %v: %v", fn, f, rep)
				}
			}
		}
	}
}
