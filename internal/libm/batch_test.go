package libm

import (
	"errors"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
)

// TestSentinelErrors pins the typed, allocation-free error paths: every
// miss wraps its sentinel (matchable with errors.Is) and names the
// function, and repeated misses return without allocating.
func TestSentinelErrors(t *testing.T) {
	bad := bigmath.Func(-1)
	if _, err := Progressive(bad); !errors.Is(err, ErrNoTables) {
		t.Errorf("Progressive(-1) = %v, want ErrNoTables", err)
	}
	if _, err := RLibmAll(bad); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("RLibmAll(-1) = %v, want ErrNoBaseline", err)
	}
	if _, err := Eval(bad, 1, fp.Bfloat16, fp.RoundNearestEven); !errors.Is(err, ErrNoTables) {
		t.Errorf("Eval(-1) = %v, want ErrNoTables", err)
	}
	if _, err := Bfloat16(bad, 0x3f80); !errors.Is(err, ErrNoTables) {
		t.Errorf("Bfloat16(-1) = %v, want ErrNoTables", err)
	}

	fn := bigmath.CosPi
	oldP := progressive[fn]
	progressive[fn] = nil
	defer func() { progressive[fn] = oldP }()
	if _, err := Progressive(fn); !errors.Is(err, ErrNoTables) {
		t.Errorf("Progressive(cospi, cleared) = %v, want ErrNoTables", err)
	} else if got := err.Error(); got == ErrNoTables.Error() {
		t.Errorf("wrapped error %q does not name the function", got)
	}

	if res, err := Progressive(bigmath.Log2); err == nil {
		wide := res.Levels[len(res.Levels)-1].Extend(4)
		if _, err := Eval(bigmath.Log2, 1.5, wide, fp.RoundNearestEven); !errors.Is(err, ErrTooWide) {
			t.Errorf("Eval(too wide) = %v, want ErrTooWide", err)
		}
		if _, err := Kernel(bigmath.Log2, wide, fp.RoundNearestEven); !errors.Is(err, ErrTooWide) {
			t.Errorf("Kernel(too wide) = %v, want ErrTooWide", err)
		}
	}
}

// TestSentinelErrorsZeroAllocs pins "allocation-free error path": the
// wrapped sentinels are prebuilt, so a missing-table call costs no
// fmt.Errorf.
func TestSentinelErrorsZeroAllocs(t *testing.T) {
	fn := bigmath.CosPi
	oldP, oldB := progressive[fn], rlibmAll[fn]
	progressive[fn], rlibmAll[fn] = nil, nil
	defer func() { progressive[fn], rlibmAll[fn] = oldP, oldB }()
	if n := testing.AllocsPerRun(100, func() {
		if _, err := Progressive(fn); err == nil {
			t.Fatal("expected error")
		}
		if _, err := RLibmAll(fn); err == nil {
			t.Fatal("expected error")
		}
		if _, err := Eval(fn, 0.5, fp.Bfloat16, fp.RoundNearestEven); err == nil {
			t.Fatal("expected error")
		}
	}); n != 0 {
		t.Errorf("missing-table error path allocates %v times per run", n)
	}
}

// TestBatchMatchesPerCall pins the wrapper contract: the batched bit-width
// helpers agree bit for bit with the per-call helpers over every bfloat16
// pattern and a tensorfloat32 sample, and EvalBatch agrees with Eval.
func TestBatchMatchesPerCall(t *testing.T) {
	for _, fn := range bigmath.AllFuncs {
		if !Have(fn) {
			t.Skip("no committed tables")
		}
		n := int(fp.Bfloat16.NumValues())
		src16 := make([]uint16, n)
		dst16 := make([]uint16, n)
		for b := 0; b < n; b++ {
			src16[b] = uint16(b)
		}
		if err := Bfloat16Batch(fn, dst16, src16); err != nil {
			t.Fatalf("%v: Bfloat16Batch: %v", fn, err)
		}
		for b := 0; b < n; b++ {
			want, err := Bfloat16(fn, src16[b])
			if err != nil {
				t.Fatal(err)
			}
			if dst16[b] != want {
				t.Fatalf("%v: bfloat16 %#x: batch %#x, per-call %#x", fn, b, dst16[b], want)
			}
		}

		src32 := make([]uint32, 0, 4096)
		for b := uint32(0); b < uint32(fp.TensorFloat32.NumValues()); b += 131 {
			src32 = append(src32, b)
		}
		dst32 := make([]uint32, len(src32))
		if err := TensorFloat32Batch(fn, dst32, src32); err != nil {
			t.Fatalf("%v: TensorFloat32Batch: %v", fn, err)
		}
		for i, b := range src32 {
			want, err := TensorFloat32(fn, b)
			if err != nil {
				t.Fatal(err)
			}
			if dst32[i] != want {
				t.Fatalf("%v: tf32 %#x: batch %#x, per-call %#x", fn, b, dst32[i], want)
			}
		}

		xs := make([]float64, 512)
		for i := range xs {
			xs[i] = fp.TensorFloat32.Decode(uint64(i * 1021))
		}
		got := make([]uint64, len(xs))
		for _, mode := range fp.StandardModes {
			if err := EvalBatch(fn, got, xs, fp.TensorFloat32, mode); err != nil {
				t.Fatalf("%v/%v: EvalBatch: %v", fn, mode, err)
			}
			for i, x := range xs {
				want, err := Eval(fn, x, fp.TensorFloat32, mode)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("%v/%v: x=%x: batch %#x, per-call %#x", fn, mode, x, got[i], want)
				}
			}
		}
	}
}

// TestBatchShortDst pins the explicit length contract of the wrappers.
func TestBatchShortDst(t *testing.T) {
	if !Have(bigmath.Exp2) {
		t.Skip("no committed tables")
	}
	if err := Bfloat16Batch(bigmath.Exp2, make([]uint16, 1), make([]uint16, 2)); !errors.Is(err, ErrShortDst) {
		t.Errorf("Bfloat16Batch short dst = %v, want ErrShortDst", err)
	}
	if err := TensorFloat32Batch(bigmath.Exp2, make([]uint32, 0), make([]uint32, 1)); !errors.Is(err, ErrShortDst) {
		t.Errorf("TensorFloat32Batch short dst = %v, want ErrShortDst", err)
	}
	if err := EvalBatch(bigmath.Exp2, nil, make([]float64, 1), fp.Bfloat16, fp.RoundNearestEven); !errors.Is(err, ErrShortDst) {
		t.Errorf("EvalBatch short dst = %v, want ErrShortDst", err)
	}
}

// TestBatchWrapperAllocs pins the steady-state wrapper cost: after the
// kernel is cached, the chunked bit-width helpers allocate nothing.
func TestBatchWrapperAllocs(t *testing.T) {
	if !Have(bigmath.Exp2) {
		t.Skip("no committed tables")
	}
	src := make([]uint16, 600)
	dst := make([]uint16, 600)
	for i := range src {
		src[i] = uint16(i * 109)
	}
	if err := Bfloat16Batch(bigmath.Exp2, dst, src); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := Bfloat16Batch(bigmath.Exp2, dst, src); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm Bfloat16Batch allocates %v times per run", n)
	}
}
