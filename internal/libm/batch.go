package libm

import (
	"context"
	"errors"
	"sync"

	"repro/internal/bigmath"
	"repro/internal/eval"
	"repro/internal/fp"
)

// This file is the batched serving surface of the library: thin wrappers
// over internal/eval kernels compiled once per (function, format, mode) and
// cached for the life of the process. The wrappers add nothing to the hot
// loop — kernel lookup is one sync.Map probe, and the bit-width helpers
// chunk through fixed stack buffers so they allocate nothing either.

// kernelKey identifies one compiled kernel in the cache.
type kernelKey struct {
	fn   bigmath.Func
	bits int
	exp  int
	mode fp.Mode
}

// kernels caches compiled *eval.Kernel values. Kernels are immutable and
// deterministic for a given registered table set, so a LoadOrStore race
// compiling twice is harmless — both candidates evaluate identically.
var kernels sync.Map // kernelKey → *eval.Kernel

// Kernel returns the cached batch kernel serving (fn, out, mode), compiling
// it on first use. Errors wrap ErrNoTables or ErrTooWide.
func Kernel(fn bigmath.Func, out fp.Format, mode fp.Mode) (*eval.Kernel, error) {
	key := kernelKey{fn: fn, bits: out.Bits(), exp: out.ExpBits(), mode: mode}
	if v, ok := kernels.Load(key); ok {
		return v.(*eval.Kernel), nil
	}
	res, err := Progressive(fn)
	if err != nil {
		return nil, err
	}
	k, err := eval.Compile(res, out, mode)
	if err != nil {
		if _, ok := res.ServingLevel(out, mode); !ok {
			return nil, errFor(&errTooWide, fn)
		}
		return nil, err
	}
	v, _ := kernels.LoadOrStore(key, k)
	return v.(*eval.Kernel), nil
}

// EvalBatch computes fn over src correctly rounded into out under mode,
// writing one output bit pattern per input into dst (at least as long as
// src). Inputs must be values of out. Results are bit-identical to calling
// Eval per input; the batch path amortizes dispatch, table snapshots and
// rounding setup over the slice.
func EvalBatch(fn bigmath.Func, dst []uint64, src []float64, out fp.Format, mode fp.Mode) error {
	if len(dst) < len(src) {
		return ErrShortDst
	}
	k, err := Kernel(fn, out, mode)
	if err != nil {
		return err
	}
	k.EvalBatch(dst, src)
	return nil
}

// EvalBatchCtx is EvalBatch with per-request cancellation: the kernel
// checks ctx between chunks, so a deadline or a departed client stops the
// batch early. Outputs written before cancellation are bit-identical to
// EvalBatch's; the returned error is ctx.Err() on cancellation, or the
// kernel-lookup error otherwise.
func EvalBatchCtx(ctx context.Context, fn bigmath.Func, dst []uint64, src []float64, out fp.Format, mode fp.Mode) error {
	if len(dst) < len(src) {
		return ErrShortDst
	}
	k, err := Kernel(fn, out, mode)
	if err != nil {
		return err
	}
	return k.EvalBatchCtx(ctx, dst, src)
}

// ErrShortDst reports a destination slice shorter than the source.
var ErrShortDst = errors.New("libm: dst shorter than src")

// batchChunk sizes the stack buffers of the bit-width helpers: large enough
// to amortize the kernel-cache probe, small enough to stay on the stack.
const batchChunk = 256

// Bfloat16Batch computes fn over a slice of bfloat16 bit patterns with
// round-to-nearest, evaluating only the progressive prefix of the
// polynomial (the paper's k₃-term truncated evaluation). dst must be at
// least as long as src.
func Bfloat16Batch(fn bigmath.Func, dst, src []uint16) error {
	if len(dst) < len(src) {
		return ErrShortDst
	}
	k, err := Kernel(fn, fp.Bfloat16, fp.RoundNearestEven)
	if err != nil {
		return err
	}
	var xs [batchChunk]float64
	var ys [batchChunk]uint64
	for len(src) > 0 {
		n := len(src)
		if n > batchChunk {
			n = batchChunk
		}
		for i := 0; i < n; i++ {
			xs[i] = fp.Bfloat16.Decode(uint64(src[i]))
		}
		k.EvalBatch(ys[:n], xs[:n])
		for i := 0; i < n; i++ {
			dst[i] = uint16(ys[i])
		}
		src, dst = src[n:], dst[n:]
	}
	return nil
}

// TensorFloat32Batch computes fn over a slice of tensorfloat32 (19-bit)
// patterns with round-to-nearest, evaluating the k₂-term truncated prefix.
// dst must be at least as long as src.
func TensorFloat32Batch(fn bigmath.Func, dst, src []uint32) error {
	if len(dst) < len(src) {
		return ErrShortDst
	}
	k, err := Kernel(fn, fp.TensorFloat32, fp.RoundNearestEven)
	if err != nil {
		return err
	}
	var xs [batchChunk]float64
	var ys [batchChunk]uint64
	for len(src) > 0 {
		n := len(src)
		if n > batchChunk {
			n = batchChunk
		}
		for i := 0; i < n; i++ {
			xs[i] = fp.TensorFloat32.Decode(uint64(src[i]))
		}
		k.EvalBatch(ys[:n], xs[:n])
		for i := 0; i < n; i++ {
			dst[i] = uint32(ys[i])
		}
		src, dst = src[n:], dst[n:]
	}
	return nil
}
