// Package libm is the generated RLIBM-Prog math library: one progressive
// polynomial implementation per elementary function, producing correctly
// rounded results for every format from 10 to 25 bits (8 exponent bits)
// under all five IEEE rounding modes via full evaluation, and for bfloat16
// and tensorfloat32 under round-to-nearest via truncated (progressive)
// evaluation.
//
// The coefficient tables live in zz_generated_*.go files emitted by
// cmd/rlibm-gen; regenerating them reruns the whole pipeline. The RLibm-All
// piecewise baseline tables (zz_baseline_*.go) are registered alongside for
// the comparison experiments.
package libm

import (
	"errors"
	"fmt"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
)

// Sentinel errors of the lookup paths, matchable with errors.Is. The
// returned errors wrap these with the function name; every wrapped instance
// is built once at package init, so a missing-table miss on a hot serving
// path allocates nothing.
var (
	// ErrNoTables reports that progressive tables are not registered for
	// the function (run cmd/rlibm-gen -emit internal/libm).
	ErrNoTables = errors.New("no generated tables")
	// ErrNoBaseline reports that RLibm-All baseline tables are not
	// registered (run cmd/rlibm-gen -baseline -emit internal/libm).
	ErrNoBaseline = errors.New("no baseline tables")
	// ErrTooWide reports an output format wider than the generated levels.
	ErrTooWide = errors.New("format wider than the generated levels")
)

// Per-function wrapped sentinels, precomputed so error paths are
// allocation-free. The last slot serves out-of-range Func values.
var (
	errNoTables   [bigmath.NumFuncs + 1]error
	errNoBaseline [bigmath.NumFuncs + 1]error
	errTooWide    [bigmath.NumFuncs + 1]error
)

func init() {
	for fn := bigmath.Func(0); fn <= bigmath.NumFuncs; fn++ {
		name := "unknown function"
		if fn < bigmath.NumFuncs {
			name = fn.String()
		}
		errNoTables[fn] = fmt.Errorf("libm: %s: %w (run cmd/rlibm-gen -emit)", name, ErrNoTables)
		errNoBaseline[fn] = fmt.Errorf("libm: %s: %w (run cmd/rlibm-gen -baseline -emit)", name, ErrNoBaseline)
		errTooWide[fn] = fmt.Errorf("libm: %s: %w", name, ErrTooWide)
	}
}

// errFor clamps fn into the precomputed error tables.
func errFor(table *[bigmath.NumFuncs + 1]error, fn bigmath.Func) error {
	if fn < 0 || fn >= bigmath.NumFuncs {
		fn = bigmath.NumFuncs
	}
	return table[fn]
}

var (
	progressive [bigmath.NumFuncs]*gen.Result
	rlibmAll    [bigmath.NumFuncs]*gen.Result
)

// register is called by the generated progressive-polynomial files.
func register(res *gen.Result) { progressive[res.Fn] = res }

// registerBaseline is called by the generated RLibm-All baseline files.
func registerBaseline(res *gen.Result) { rlibmAll[res.Fn] = res }

// Progressive returns the RLIBM-Prog implementation of fn, or an error
// wrapping ErrNoTables if its tables have not been generated.
func Progressive(fn bigmath.Func) (*gen.Result, error) {
	if fn < 0 || fn >= bigmath.NumFuncs || progressive[fn] == nil {
		return nil, errFor(&errNoTables, fn)
	}
	return progressive[fn], nil
}

// RLibmAll returns the RLibm-All piecewise baseline implementation of fn,
// or an error wrapping ErrNoBaseline.
func RLibmAll(fn bigmath.Func) (*gen.Result, error) {
	if fn < 0 || fn >= bigmath.NumFuncs || rlibmAll[fn] == nil {
		return nil, errFor(&errNoBaseline, fn)
	}
	return rlibmAll[fn], nil
}

// Have reports whether progressive tables exist for fn.
func Have(fn bigmath.Func) bool {
	return fn >= 0 && fn < bigmath.NumFuncs && progressive[fn] != nil
}

// HaveBaseline reports whether baseline tables exist for fn.
func HaveBaseline(fn bigmath.Func) bool {
	return fn >= 0 && fn < bigmath.NumFuncs && rlibmAll[fn] != nil
}

// Eval computes fn(x) correctly rounded into out under mode, serving the
// query from the progressive level that owns out. x must be a value of out.
func Eval(fn bigmath.Func, x float64, out fp.Format, mode fp.Mode) (uint64, error) {
	res, err := Progressive(fn)
	if err != nil {
		return 0, err
	}
	li, ok := res.ServingLevel(out, mode)
	if !ok {
		return 0, errFor(&errTooWide, fn)
	}
	return res.Eval(x, li, out, mode), nil
}

// Bfloat16 computes fn over a bfloat16 bit pattern with round-to-nearest,
// evaluating only the progressive prefix of the polynomial.
func Bfloat16(fn bigmath.Func, bits uint16) (uint16, error) {
	out, err := Eval(fn, fp.Bfloat16.Decode(uint64(bits)), fp.Bfloat16, fp.RoundNearestEven)
	return uint16(out), err
}

// TensorFloat32 computes fn over a tensorfloat32 bit pattern (19 bits) with
// round-to-nearest.
func TensorFloat32(fn bigmath.Func, bits uint32) (uint32, error) {
	out, err := Eval(fn, fp.TensorFloat32.Decode(uint64(bits)), fp.TensorFloat32, fp.RoundNearestEven)
	return uint32(out), err
}

// Largest computes fn over a bit pattern of the library's largest generated
// format under any of the five standard rounding modes.
func Largest(fn bigmath.Func, bits uint64, mode fp.Mode) (uint64, error) {
	res, err := Progressive(fn)
	if err != nil {
		return 0, err
	}
	f := res.Levels[len(res.Levels)-1]
	return res.Eval(f.Decode(bits), len(res.Levels)-1, f, mode), nil
}

// LargestFormat returns the widest generated format (the "float" of the
// scaled experiments), or false when no tables are registered.
func LargestFormat() (fp.Format, bool) {
	for _, res := range progressive {
		if res != nil {
			return res.Levels[len(res.Levels)-1], true
		}
	}
	return fp.Format{}, false
}
