// Package interval computes rounding intervals: for a correctly rounded
// result v of an elementary function in a format T under a rounding mode,
// the interval of values around v that round to v. Following the RLibm
// approach, the polynomial approximation is free to produce any value in
// this interval (Figure 1 of the paper).
//
// Intervals are materialized as closed intervals of float64 endpoints: the
// production pipeline evaluates polynomials in double precision, so the
// usable freedom is exactly the set of doubles contained in the real
// rounding interval. Open real endpoints are shrunk to the adjacent double.
package interval

import (
	"math"

	"repro/internal/fp"
)

// Interval is a closed, nonempty-unless-inverted interval [Lo, Hi] of
// doubles.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains no value.
func (iv Interval) Empty() bool { return !(iv.Lo <= iv.Hi) }

// Contains reports whether y lies in the interval.
func (iv Interval) Contains(y float64) bool { return iv.Lo <= y && y <= iv.Hi }

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// Singleton reports whether the interval holds exactly one value.
func (iv Interval) Singleton() bool {
	//lint:ignore floateq endpoint identity on stored bounds is the definition of a singleton, not arithmetic.
	return iv.Lo == iv.Hi
}

// openAbove returns the largest double strictly below v.
func openBelow(v float64) float64 { return math.Nextafter(v, math.Inf(-1)) }

// openAbove returns the smallest double strictly above v.
func openAbove(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }

// Rounding returns the rounding interval of the value encoded by bits in
// format f under mode: the set of doubles y with f.FromFloat64(y, mode) ==
// bits and additionally, for nonzero results, sign(y) == sign(v) (so the
// produced zero signs cannot go wrong downstream).
//
// Results that are NaN, ±∞ or ±0 have no usable interval for a polynomial
// (their "interval" would pin the sign of zero or be unbounded); such
// inputs must be special-cased by the caller, and Rounding reports ok ==
// false for them.
func Rounding(f fp.Format, bits uint64, mode fp.Mode) (iv Interval, ok bool) {
	if f.IsNaN(bits) || f.IsInf(bits) || f.IsZero(bits) {
		return Interval{}, false
	}
	v := f.Decode(bits)
	neg := f.SignBit(bits)

	// Work on magnitudes: compute the interval for |v| under the
	// sign-adjusted mode, then mirror.
	m := mode
	if neg {
		switch mode {
		case fp.RoundTowardPositive:
			m = fp.RoundTowardNegative
		case fp.RoundTowardNegative:
			m = fp.RoundTowardPositive
		}
	}
	mag := math.Abs(v)
	magBits := bits &^ (1 << uint(f.Bits()-1))

	lo, hi := magnitudeInterval(f, magBits, mag, m)
	if neg {
		lo, hi = -hi, -lo
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// magnitudeInterval returns the closed double interval of positive
// magnitudes rounding to the positive value mag (bit pattern magBits) under
// a mode already adjusted for sign (ru means away from zero, rd toward).
func magnitudeInterval(f fp.Format, magBits uint64, mag float64, m fp.Mode) (lo, hi float64) {
	// Neighbours in magnitude. prev may be 0 (for the minimum subnormal);
	// next may exceed maxFinite (for maxFinite itself) — both are exact
	// doubles.
	prev := f.Decode(f.NextDown(magBits)) // ≥ 0
	var next float64
	up := f.NextUp(magBits)
	if f.IsInf(up) {
		// One ulp above maxFinite: 2^(EMax+1), exact in double.
		next = math.Ldexp(1, f.EMax()+1)
	} else {
		next = f.Decode(up)
	}

	switch m {
	case fp.RoundToOdd:
		if f.OddMantissa(magBits) {
			// All reals strictly between the even neighbours round here,
			// including everything beyond maxFinite when mag is maxFinite.
			hi = openBelow(next)
			if f.NextUp(magBits) == f.Inf(false) {
				hi = math.MaxFloat64
			}
			return openAbove(prev), hi
		}
		// Even: only the exact value rounds to it.
		return mag, mag

	case fp.RoundNearestEven, fp.RoundNearestAway:
		// Midpoints are exact doubles: one extra significand bit.
		midLo := prev + (mag-prev)/2
		midHi := mag + (next-mag)/2
		loClosed := false
		hiClosed := false
		if m == fp.RoundNearestEven {
			even := !f.OddMantissa(magBits)
			loClosed, hiClosed = even, even
		} else {
			// Ties away from zero: the lower midpoint rounds up to mag
			// (away), the upper midpoint rounds past mag.
			loClosed, hiClosed = true, false
		}
		lo, hi = midLo, midHi
		if !loClosed {
			lo = openAbove(lo)
		}
		if !hiClosed {
			hi = openBelow(hi)
		}
		return lo, hi

	case fp.RoundTowardZero:
		// [mag, next): everything from mag up to (not including) next
		// truncates to mag; beyond maxFinite also truncates to maxFinite.
		hi = openBelow(next)
		if f.NextUp(magBits) == f.Inf(false) {
			hi = math.MaxFloat64
		}
		return mag, hi

	case fp.RoundTowardNegative:
		// Toward zero for magnitudes (sign pre-adjusted): same as rz.
		hi = openBelow(next)
		if f.NextUp(magBits) == f.Inf(false) {
			hi = math.MaxFloat64
		}
		return mag, hi

	case fp.RoundTowardPositive:
		// Away from zero for magnitudes: (prev, mag].
		return openAbove(prev), mag
	}
	//lint:ignore barepanic exhaustive Mode switch; a new rounding mode is a compile-time change.
	panic("interval: bad mode")
}
