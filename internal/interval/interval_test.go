package interval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp"
)

func TestBasicOps(t *testing.T) {
	a := Interval{1, 3}
	b := Interval{2, 5}
	got := a.Intersect(b)
	if got != (Interval{2, 3}) {
		t.Errorf("intersect: %v", got)
	}
	if !a.Contains(1) || !a.Contains(3) || a.Contains(3.5) {
		t.Error("contains")
	}
	if a.Empty() || !(Interval{2, 1}).Empty() {
		t.Error("empty")
	}
	if !(Interval{2, 2}).Singleton() || a.Singleton() {
		t.Error("singleton")
	}
}

func TestRoundingRejectsSpecials(t *testing.T) {
	f := fp.Bfloat16
	for _, bits := range []uint64{f.NaN(), f.Inf(false), f.Inf(true), f.Zero(false), f.Zero(true)} {
		if _, ok := Rounding(f, bits, fp.RoundNearestEven); ok {
			t.Errorf("bits %#x should have no interval", bits)
		}
	}
}

// The defining property: every double in the interval rounds to the value;
// the doubles just outside do not (or have a different sign of zero).
func TestRoundingIntervalProperty(t *testing.T) {
	formats := []fp.Format{fp.Bfloat16, fp.MustFormat(14, 8), fp.MustFormat(18, 8), fp.Float16}
	rng := rand.New(rand.NewSource(20))
	for _, f := range formats {
		for trial := 0; trial < 30000; trial++ {
			bits := uint64(rng.Int63()) & (f.NumValues() - 1)
			mode := fp.AllModes[rng.Intn(len(fp.AllModes))]
			iv, ok := Rounding(f, bits, mode)
			if !ok {
				continue
			}
			if iv.Empty() {
				// Only round-to-odd even values may be "thin", but they are
				// singletons, never empty.
				t.Fatalf("%v %#x %v: empty interval %v", f, bits, mode, iv)
			}
			// Probe: endpoints, interior samples.
			probes := []float64{iv.Lo, iv.Hi, iv.Lo + (iv.Hi-iv.Lo)*rng.Float64()}
			for _, y := range probes {
				if !iv.Contains(y) {
					continue
				}
				if got := f.FromFloat64(y, mode); got != bits {
					t.Fatalf("%v bits=%#x mode=%v: y=%g in %v rounds to %#x",
						f, bits, mode, y, iv, got)
				}
			}
			// Just outside must not round to bits.
			below := math.Nextafter(iv.Lo, math.Inf(-1))
			if got := f.FromFloat64(below, mode); got == bits {
				t.Fatalf("%v bits=%#x mode=%v: below=%g still rounds in (iv=%v)",
					f, bits, mode, below, iv)
			}
			if iv.Hi != math.MaxFloat64 {
				above := math.Nextafter(iv.Hi, math.Inf(1))
				if got := f.FromFloat64(above, mode); got == bits {
					t.Fatalf("%v bits=%#x mode=%v: above=%g still rounds in (iv=%v)",
						f, bits, mode, above, iv)
				}
			}
		}
	}
}

func TestRoundToOddShapes(t *testing.T) {
	f := fp.Bfloat16
	one := f.FromFloat64(1, fp.RoundNearestEven)
	// 1.0 has even mantissa: singleton.
	iv, ok := Rounding(f, one, fp.RoundToOdd)
	if !ok || !iv.Singleton() || iv.Lo != 1 {
		t.Errorf("ro interval of 1.0: %v %v", iv, ok)
	}
	// The next value up is odd: interval spans (1, 1+2·ulp) open.
	oddBits := f.NextUp(one)
	iv, ok = Rounding(f, oddBits, fp.RoundToOdd)
	if !ok {
		t.Fatal("no interval")
	}
	next2 := f.Decode(f.NextUp(oddBits))
	if !(iv.Lo > 1 && iv.Hi < next2 && iv.Lo < f.Decode(oddBits) && iv.Hi > f.Decode(oddBits)) {
		t.Errorf("ro interval of odd neighbour of 1: %v", iv)
	}
	// maxFinite (odd mantissa, all ones): everything above rounds to it.
	iv, ok = Rounding(f, f.MaxFinite(), fp.RoundToOdd)
	if !ok || iv.Hi != math.MaxFloat64 {
		t.Errorf("ro interval of maxFinite: %v", iv)
	}
	// Minimum subnormal is odd: interval is (0, 2*minsub) open — never 0.
	iv, ok = Rounding(f, f.MinSubnormal(), fp.RoundToOdd)
	if !ok || !(iv.Lo > 0) {
		t.Errorf("ro interval of minSub: %v", iv)
	}
	// Negative odd value mirrors.
	negOdd := f.Zero(true) | oddBits
	ivn, ok := Rounding(f, negOdd, fp.RoundToOdd)
	if !ok || ivn.Lo != -iv.Hi && ivn.Hi != -iv.Lo {
		// mirror of the minSub interval vs oddBits interval: recompute.
		ivp, _ := Rounding(f, oddBits, fp.RoundToOdd)
		if ivn.Lo != -ivp.Hi || ivn.Hi != -ivp.Lo {
			t.Errorf("negative mirror: %v vs %v", ivn, ivp)
		}
	}
}

func TestNearestIntervalWidths(t *testing.T) {
	f := fp.Bfloat16
	bits := f.FromFloat64(1.5, fp.RoundNearestEven) // mantissa 0x40, even
	iv, _ := Rounding(f, bits, fp.RoundNearestEven)
	ulp := math.Ldexp(1, -7)
	if iv.Lo != 1.5-ulp/2 || iv.Hi != 1.5+ulp/2 {
		t.Errorf("rn interval of 1.5: %v", iv)
	}
	// Odd mantissa: open at both midpoints.
	oddBits := bits + 1
	iv, _ = Rounding(f, oddBits, fp.RoundNearestEven)
	v := f.Decode(oddBits)
	if !(iv.Lo > v-ulp/2 && iv.Hi < v+ulp/2) {
		t.Errorf("rn interval of odd value: %v", iv)
	}
	// ra: lower midpoint included, upper excluded (positive value).
	iv, _ = Rounding(f, bits, fp.RoundNearestAway)
	if iv.Lo != 1.5-ulp/2 || !(iv.Hi < 1.5+ulp/2) {
		t.Errorf("ra interval: %v", iv)
	}
}

func TestMaxFiniteNearestOverflowBoundary(t *testing.T) {
	f := fp.Bfloat16
	iv, _ := Rounding(f, f.MaxFinite(), fp.RoundNearestEven)
	// Upper boundary is the overflow threshold maxFinite + ulp/2, excluded
	// (the tie would round to the "even" 2^(EMax+1), i.e. to infinity).
	next := math.Ldexp(1, f.EMax()+1)
	threshold := f.MaxFiniteValue() + (next-f.MaxFiniteValue())/2
	if !(iv.Hi < threshold) || iv.Hi < f.MaxFiniteValue() {
		t.Errorf("rn maxFinite interval: %v (threshold %g)", iv, threshold)
	}
	if got := f.FromFloat64(iv.Hi, fp.RoundNearestEven); got != f.MaxFinite() {
		t.Errorf("iv.Hi rounds to %#x", got)
	}
	if got := f.FromFloat64(threshold, fp.RoundNearestEven); got != f.Inf(false) {
		t.Errorf("threshold rounds to %#x", got)
	}
}
