package gen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bigmath"
	"repro/internal/clarkson"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/poly"
	"repro/internal/reduction"
)

// poolFault converts a worker-pool error into the typed taxonomy: a
// recovered panic keeps the panic value's own fault code and context when
// it already is a *fault.Error (the oracle and the injection sites panic
// typed values), and otherwise becomes CodeWorkerPanic; cancellation maps
// to CodeCanceled. Typed errors returned by jobs pass through unchanged.
func poolFault(err error, stage string, fn bigmath.Func) error {
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		if fe, ok := pe.Value.(*fault.Error); ok {
			out := *fe
			out.Err = pe // keep the job/worker/stack context in the chain
			return &out
		}
		return fault.New(fault.CodeWorkerPanic, stage, "pool", pe).WithFunc(fn.String())
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fault.New(fault.CodeCanceled, stage, "pool", err).WithFunc(fn.String())
	}
	return err
}

// solveAll runs the Solve stage: per kernel, search for a piecewise
// progressive polynomial over the merged constraint set, then resolve every
// special input's all-modes round-to-odd proxy with the oracle. The
// returned Result carries only deterministic fields (the volatile Duration
// and Oracle stats are filled in by the caller).
func solveAll(ctx context.Context, fn bigmath.Func, scheme reduction.Scheme, cs *constraintSet,
	orc *oracle.Oracle, opt Options, store pipeline.Store, shard Shard, logf func(string, ...interface{})) (*Result, error) {

	res := &Result{
		Fn:            fn,
		Levels:        opt.Levels,
		Specials:      make([][]SpecialInput, len(opt.Levels)),
		ProgressiveRO: opt.ProgressiveRO,
	}

	for p := 0; p < scheme.NumPolys(); p++ {
		kp, err := solveKernel(ctx, fn, scheme, cs, p, opt, store, shard, res, logf)
		if err != nil {
			return nil, err
		}
		res.Kernels = append(res.Kernels, *kp)
	}

	// Resolve special inputs: for every violated/evicted input, store the
	// all-modes-correct round-to-odd proxy of its level. The proxies are
	// independent oracle queries, computed on the pool over a flattened
	// (level, input) work list.
	type specialKey struct {
		li int
		b  uint64
	}
	var keys []specialKey
	for li, set := range cs.specials {
		for b := range set {
			//lint:ignore mapiter keys are fully sorted below before any use, erasing map order.
			keys = append(keys, specialKey{li, b})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].li != keys[j].li {
			return keys[i].li < keys[j].li
		}
		return keys[i].b < keys[j].b
	})
	resolved := make([]SpecialInput, len(keys))
	if err := parallel.ForEachErr(ctx, opt.Workers, len(keys), func(i int) error {
		lvl := opt.Levels[keys[i].li]
		ext := lvl.Extend(2)
		x := lvl.Decode(keys[i].b)
		proxy := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
		resolved[i] = SpecialInput{X: x, Proxy: proxy}
		return nil
	}); err != nil {
		return nil, poolFault(err, StageSolve, fn)
	}
	obs.SpanFrom(ctx).Add(obs.CtrSpecialsResolved, int64(len(keys)))
	for i, k := range keys {
		res.Specials[k.li] = append(res.Specials[k.li], resolved[i])
	}
	for li := range res.Specials {
		sort.Slice(res.Specials[li], func(i, j int) bool {
			return res.Specials[li][i].X < res.Specials[li][j].X
		})
	}

	res.Stats.RawConstraints = cs.rawCount
	res.Stats.MergedRows = cs.mergedRows()
	return res, nil
}

// pieceSeed derives the deterministic RNG seed of one piece solve. Folding
// in the function, kernel index, the piece count of the current escalation
// attempt and the piece index (through a splitmix64-style finalizer) gives
// every concurrent Clarkson solve an independent stream whose draws cannot
// interleave with any other solve's, so generation is reproducible for
// every worker count.
func pieceSeed(seed int64, fn bigmath.Func, kernel, pieces, pi int) int64 {
	z := uint64(seed) ^ 0x70726f6772657373 // "progress"
	for _, v := range [...]uint64{uint64(fn), uint64(kernel), uint64(pieces), uint64(pi)} {
		z ^= v + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
	}
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// rescueRung is one step of the deterministic retry/degradation schedule
// applied when a kernel's whole pieces × terms search runs dry. Rung 0 is
// the identity: exactly the configured budgets and the unsalted seed, so
// any kernel the baseline search can solve is bit-identical to a build
// without the rescue ladder. Later rungs rotate the RNG seed by fixed
// salts (unlucky sampling is the dominant failure mode reported by
// RLIBM-All/RLIBM-32), escalate the iteration budget and force the exact
// rational solver, and finally degrade gracefully by widening the term,
// piece and special budgets. The schedule is a fixed table — never
// randomized, never influenced by injected faults — so cold and warm runs
// consume identical rungs and the consumption counts recorded in Stats
// are deterministic.
type rescueRung struct {
	name          string
	salt          int64 // XORed into Options.Seed (0 = unsalted)
	itersScale    int   // multiplies ClarksonIters
	forceExact    bool  // route every sample to the exact rational solver
	extraTerms    int   // added to MaxTerms
	piecesScale   int   // multiplies MaxPieces (unless ForcePieces pins it)
	specialsScale int   // multiplies MaxSpecials
}

// rescueRungs returns the fixed rescue schedule. The salts are arbitrary
// published constants; changing them (or any budget multiplier) changes
// generated bits for rescued kernels and therefore requires a ResultCodec
// version bump.
func rescueRungs() []rescueRung {
	return []rescueRung{
		{name: "baseline", itersScale: 1, piecesScale: 1, specialsScale: 1},
		{name: "seed-rotation-1", salt: 0x517cc1b727220a95, itersScale: 1, piecesScale: 1, specialsScale: 1},
		{name: "seed-rotation-2", salt: 0x2545f4914f6cdd1d, itersScale: 1, piecesScale: 1, specialsScale: 1},
		{name: "exact-escalation", salt: 0x6a09e667f3bcc909, itersScale: 4, forceExact: true, piecesScale: 1, specialsScale: 1},
		{name: "degradation", salt: 0x3243f6a8885a308d, itersScale: 4, forceExact: true, extraTerms: 1, piecesScale: 2, specialsScale: 2},
	}
}

// maxInjectedReplays bounds how often one piece solve poisoned by injected
// solver faults is replayed before the run gives up with a typed error
// (only a Plan that keeps firing on every occurrence can exhaust it).
const maxInjectedReplays = 4

// solveKernel finds a piecewise progressive polynomial for kernel p,
// walking the rescue ladder: the baseline budgets first, then — only if
// the entire pieces × terms search failed — deterministic seed rotations,
// budget escalation and graceful degradation. Consumed rungs are recorded
// in Stats so the solve artifact pins them.
func solveKernel(ctx context.Context, fn bigmath.Func, scheme reduction.Scheme, cs *constraintSet, p int,
	opt Options, store pipeline.Store, shard Shard, res *Result, logf func(string, ...interface{})) (*KernelPoly, error) {

	rungs := rescueRungs()
	for ri, rg := range rungs {
		eff := opt
		eff.Seed = opt.Seed ^ rg.salt
		eff.ClarksonIters = opt.ClarksonIters * rg.itersScale
		eff.MaxTerms = opt.MaxTerms + rg.extraTerms
		eff.MaxSpecials = opt.MaxSpecials * rg.specialsScale
		if opt.ForcePieces == 0 {
			eff.MaxPieces = opt.MaxPieces * rg.piecesScale
		}
		if ri > 0 {
			logf("  kernel %d: rescue rung %d (%s)", p, ri, rg.name)
		}
		kp, err := solveKernelAttempt(ctx, fn, scheme, cs, p, eff, rg.forceExact, store, shard, res, logf)
		if err != nil {
			return nil, err
		}
		if kp != nil {
			sp := obs.SpanFrom(ctx)
			for _, used := range rungs[1 : ri+1] {
				if used.salt != 0 {
					res.Stats.SeedRotations++
					sp.Add(obs.CtrRescueSeedRotations, 1)
				}
				if used.itersScale > 1 || used.forceExact {
					res.Stats.BudgetEscalations++
					sp.Add(obs.CtrRescueBudgetEscalations, 1)
				}
				if used.extraTerms > 0 || used.piecesScale > 1 || used.specialsScale > 1 {
					res.Stats.Degradations++
					sp.Add(obs.CtrRescueDegradations, 1)
				}
			}
			return kp, nil
		}
	}
	return nil, fault.New(fault.CodeSolverBudget, StageSolve, "rescue",
		fmt.Errorf("gen: %v kernel %d unsolvable within %d pieces × %d terms after %d rescue rungs",
			fn, p, opt.MaxPieces, opt.MaxTerms, len(rungs)-1)).
		WithFunc(fn.String()).WithPiece(p, -1).WithAttempt(len(rungs))
}

// pieceOut is one piece solve's outcome, merged into the kernel result in
// deterministic piece order. retries counts local injected-fault replays;
// it is volatile — never sealed into a solve-shard unit artifact — because
// only the process that consumed the injection replays.
type pieceOut struct {
	piece   *Piece
	viols   []violation
	stats   solveStats
	found   bool
	retries int
}

// solveKernelAttempt runs one rung of the search for kernel p: the
// adaptive pieces escalation with the rung's effective budgets. Within one
// escalation attempt the sub-domain pieces are independent constraint
// systems; they are solved concurrently on the pool, each with its own
// deterministically seeded generator, and merged in piece order. A piece
// solve that consumed injected solver faults is discarded and replayed
// with an identically seeded generator — the injection plan's occurrence
// counters have moved past the scheduled faults, so the replay reproduces
// the no-fault solve bit for bit. A non-solo shard with a live store runs
// the pieces as distributed work units instead of one in-process pool
// sweep (see solvePiecesSharded); the merged kernel is bit-identical
// either way. It returns (nil, nil) when the ladder ran dry, leaving the
// rescue decision to solveKernel.
func solveKernelAttempt(ctx context.Context, fn bigmath.Func, scheme reduction.Scheme, cs *constraintSet, p int,
	opt Options, forceExact bool, store pipeline.Store, shard Shard, res *Result, logf func(string, ...interface{})) (*KernelPoly, error) {

	domLo, domHi := scheme.ReducedDomain()
	st := scheme.Structure(p)
	nLevels := len(opt.Levels)

	startPieces, maxPieces := 1, opt.MaxPieces
	if opt.ForcePieces > 0 {
		startPieces, maxPieces = opt.ForcePieces, opt.ForcePieces
	}
	for pieces := startPieces; pieces <= maxPieces; pieces *= 2 {
		bounds := splitDomain(domLo, domHi, pieces)
		computePiece := func(ctx context.Context, pi int) (pieceOut, error) {
			if opt.Faults.Should(fault.SiteWorkerPanic) {
				panic(fault.New(fault.CodeWorkerPanic, StageSolve, string(fault.SiteWorkerPanic),
					fault.Injected(fault.SiteWorkerPanic)).WithFunc(fn.String()).WithPiece(p, pi))
			}
			// One observability span per concurrent piece solve, zero-padded
			// so the snapshot's name sort matches piece order. Counters are
			// added only from the final non-poisoned solve below, so injected
			// replays never double-count effort.
			ps := obs.SpanFrom(ctx).Child(fmt.Sprintf("piece k%d n%d i%03d", p, pieces, pi))
			defer ps.End()
			lo, hi := bounds[pi], bounds[pi+1]
			rows, rowMeta := collectRows(cs, p, lo, hi, pi == pieces-1, nLevels)
			for attempt := 1; ; attempt++ {
				rng := rand.New(rand.NewSource(pieceSeed(opt.Seed, fn, p, pieces, pi)))
				piece, viols, st2, found, perr := solvePiece(ctx, rows, rowMeta, st, nLevels, opt, forceExact, rng)
				if perr != nil {
					return pieceOut{}, perr
				}
				if st2.injected == 0 {
					if found {
						piece.Lo, piece.Hi = lo, hi
					}
					ps.Add(obs.CtrClarksonAttempts, int64(st2.attempts))
					ps.Add(obs.CtrClarksonIters, int64(st2.iters))
					ps.Add(obs.CtrClarksonSamples, int64(st2.samples))
					ps.Add(obs.CtrClarksonWeightDoublings, int64(st2.lucky))
					ps.Add(obs.CtrClarksonExactSolves, int64(st2.exactSolves))
					return pieceOut{piece: piece, viols: viols, stats: st2, found: found, retries: attempt - 1}, nil
				}
				// The solve consumed injected faults: its result (and its
				// effort stats) are poisoned. Discard everything and replay
				// the piece from its deterministic seed.
				if attempt > maxInjectedReplays {
					return pieceOut{}, fault.New(fault.CodeInjected, StageSolve, "replay",
						fmt.Errorf("%d injected solver faults still firing after %d replays", st2.injected, attempt-1)).
						WithFunc(fn.String()).WithPiece(p, pi).WithAttempt(attempt)
				}
			}
		}
		outs := make([]pieceOut, pieces)
		if store != nil && !shard.Solo() {
			if err := solvePiecesSharded(ctx, store, fn, shard, opt, p, pieces, outs,
				computePiece, pipeline.Logf(logf)); err != nil {
				return nil, err
			}
		} else if err := parallel.ForEachErr(ctx, opt.Workers, pieces, func(pi int) error {
			out, err := computePiece(ctx, pi)
			if err != nil {
				return err
			}
			outs[pi] = out
			return nil
		}); err != nil {
			return nil, poolFault(err, StageSolve, fn)
		}
		kp := &KernelPoly{Structure: st}
		ok := true
		var pending []violation
		for pi := 0; pi < pieces; pi++ {
			res.Stats.Attempts += outs[pi].stats.attempts
			res.Stats.Iters += outs[pi].stats.iters
			res.Stats.Lucky += outs[pi].stats.lucky
			res.Stats.ExactSolves += outs[pi].stats.exactSolves
			res.Stats.Retries += outs[pi].retries
			if !outs[pi].found {
				ok = false
				continue
			}
			kp.Pieces = append(kp.Pieces, *outs[pi].piece)
			pending = append(pending, outs[pi].viols...)
		}
		if ok {
			// Commit deferred specials: every input whose raw constraint
			// merged into a violated row.
			for _, v := range pending {
				for _, xb := range cs.perKernel[p][v.level].rowInputs[v.row] {
					cs.specials[v.level][xb] = struct{}{}
				}
			}
			logf("  kernel %d: %d piece(s), terms %v", p, len(kp.Pieces),
				kp.Pieces[0].LevelTerms)
			return kp, nil
		}
		logf("  kernel %d: %d piece(s) insufficient, splitting", p, pieces)
	}
	return nil, nil
}

// rowMeta identifies the origin of each clarkson row: the level and merged-
// row index it came from.
type rowMeta struct {
	level  int
	row    int
	inputs int32
}

// collectRows gathers the merged rows of kernel p with reduced input in
// [lo, hi) (closed above for the last piece), tagged by level and row.
func collectRows(cs *constraintSet, p int, lo, hi float64, lastPiece bool, nLevels int) ([]clarkson.Row, []rowMeta) {
	var rows []clarkson.Row
	var meta []rowMeta
	for li := 0; li < nLevels; li++ {
		for mi, m := range cs.perKernel[p][li].merged {
			//lint:ignore floateq hi is a stored piece boundary; the exact match assigns the shared row to exactly one piece.
			if m.r < lo || m.r > hi || (m.r == hi && !lastPiece) {
				continue
			}
			rows = append(rows, clarkson.Row{X: m.r, Lo: m.lo, Hi: m.hi, Inputs: m.inputs})
			meta = append(meta, rowMeta{level: li, row: mi, inputs: m.inputs})
		}
	}
	return rows, meta
}

// splitDomain returns n+1 boundaries splitting [lo, hi] evenly.
func splitDomain(lo, hi float64, n int) []float64 {
	b := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		b[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	b[0], b[n] = lo, hi
	return b
}

// solveStats is the solver-effort delta of one piece solve, merged into
// Stats in deterministic piece order by solveKernel. injected counts the
// injected solver faults the solve consumed; any non-zero count poisons
// the whole piece result, which is then discarded and replayed.
type solveStats struct {
	attempts, iters, lucky, exactSolves int
	// samples counts the iterations that drew and solved a weighted sample
	// (reported via obs only; gen.Stats predates it and the solve artifact
	// layout must not change).
	samples  int
	injected int
}

// solvePiece searches term-count assignments for one sub-domain: the total
// term count k grows from 1 to MaxTerms, and for each k the lower levels'
// term counts escalate from their minima toward k, bumping the level with
// the most violations after each failed joint solve (§3.3: "we increment
// the number of terms used for the smaller bitwidth representations ...
// we increase the number of terms used for the largest representation when
// we are unable to find a progressive polynomial after increasing the
// terms used for the smaller representations"). rng must be exclusive to
// this call; solvePiece runs concurrently with other pieces. forceExact
// routes every Clarkson sample to the exact rational solver (the rescue
// ladder's escalation rung); cancellation is checked between term-count
// attempts and surfaces as a typed error.
func solvePiece(ctx context.Context, rows []clarkson.Row, meta []rowMeta, st poly.Structure, nLevels int,
	opt Options, forceExact bool, rng *rand.Rand) (*Piece, []violation, solveStats, bool, error) {

	var stats solveStats
	if len(rows) == 0 {
		return &Piece{Coeffs: []float64{0}, LevelTerms: onesVector(nLevels, 1)}, nil, stats, true, nil
	}
	xScale := 0.0
	for _, r := range rows {
		if a := math.Abs(r.X); a > xScale {
			xScale = a
		}
	}
	if xScale == 0 {
		xScale = 1
	}

	// Pre-compute each lower level's minimum viable term count by solving
	// that level's rows alone (necessary-condition pruning: the joint
	// system can only need more). This skips the hopeless low-term joint
	// attempts, which dominate wall time otherwise. Zero terms are allowed:
	// the paper's Table 1 reports functions whose bfloat16 path needs no
	// polynomial at all.
	minT := make([]int, nLevels)
	for li := 0; li < nLevels-1; li++ {
		minT[li] = minLevelTerms(rows, meta, li, st, xScale, opt, forceExact, rng, &stats)
		if opt.Logf != nil {
			opt.Logf("    level %d minimum terms: %d", li, minT[li])
		}
	}

	for k := 1; k <= opt.MaxTerms; k++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, stats, false, fault.New(fault.CodeCanceled, StageSolve, "solve-piece", cerr)
		}
		terms := make([]int, nLevels)
		feasibleStart := true
		for li := 0; li < nLevels-1; li++ {
			terms[li] = minT[li]
			if terms[li] > k {
				feasibleStart = false
			}
		}
		// Keep the vector monotone non-decreasing.
		for li := nLevels - 2; li > 0; li-- {
			if terms[li-1] > terms[li] {
				terms[li] = terms[li-1]
			}
		}
		if !feasibleStart {
			continue // some lower level needs more terms than k provides
		}
		terms[nLevels-1] = k
		for {
			// The term-escalation loop has no static bound; re-check
			// cancellation each attempt so a stuck piece search cannot
			// outlive its deadline.
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, stats, false, fault.New(fault.CodeCanceled, StageSolve, "solve-piece", cerr)
			}
			assignTerms(rows, meta, terms)
			if opt.Logf != nil {
				opt.Logf("    attempting k=%d terms=%v ...", k, terms)
			}
			cfg := clarkson.Config{
				TotalTerms:       k,
				MaxIters:         opt.ClarksonIters,
				AcceptViolations: opt.MaxSpecials,
				XScale:           xScale,
				Structure:        st,
				Rng:              rng,
				ForceExact:       forceExact,
				Faults:           opt.Faults,
			}
			cr := clarkson.Solve(rows, cfg)
			stats.attempts++
			stats.iters += cr.Iters
			stats.lucky += cr.Lucky
			stats.exactSolves += cr.ExactSolves
			stats.samples += cr.Samples
			stats.injected += cr.Injected
			if opt.Logf != nil {
				opt.Logf("    attempt k=%d terms=%v rows=%d: found=%v infeasible=%v best=%d iters=%d lucky=%d exact=%d lastErr=%v",
					k, terms, len(rows), cr.Found, cr.Infeasible, cr.BestViolations, cr.Iters, cr.Lucky, cr.ExactSolves, cr.LastErr)
			}
			if cr.Found {
				// Violations become special inputs if the *input* count
				// stays within budget.
				viols, withinBudget := violationSpecials(cr.Violations, meta, opt.MaxSpecials)
				if withinBudget {
					return &Piece{Coeffs: cr.Coeffs, LevelTerms: append([]int(nil), terms...)},
						viols, stats, true, nil
				}
			}
			// Escalate: bump the lower level with the most violations at
			// the best solution seen.
			viol := cr.Violations
			if len(viol) == 0 {
				viol = cr.BestViolated
			}
			bumped := bumpTerms(terms, k, viol, meta)
			if !bumped {
				break
			}
		}
	}
	return nil, nil, stats, false, nil
}

// minLevelTerms returns the smallest t (possibly 0) for which level li's
// rows alone are satisfiable with a t-term polynomial, or MaxTerms when
// none is found (the joint search will then skip k < MaxTerms starts).
// Injected faults its probe solves consume are accumulated into stats so
// the enclosing piece solve is recognized as poisoned and replayed.
func minLevelTerms(rows []clarkson.Row, meta []rowMeta, li int, st poly.Structure,
	xScale float64, opt Options, forceExact bool, rng *rand.Rand, stats *solveStats) int {

	var lvlRows []clarkson.Row
	for i := range rows {
		if meta[i].level == li {
			r := rows[i]
			lvlRows = append(lvlRows, r)
		}
	}
	if len(lvlRows) == 0 {
		return 0
	}
	// t = 0: the zero polynomial.
	zeroOK := true
	budget := 0
	for i := range lvlRows {
		if lvlRows[i].Lo > 0 || lvlRows[i].Hi < 0 {
			budget += int(lvlRows[i].Inputs)
			if lvlRows[i].Inputs <= 0 {
				budget++
			}
		}
	}
	if budget > opt.MaxSpecials {
		zeroOK = false
	}
	if zeroOK {
		return 0
	}
	for t := 1; t < opt.MaxTerms; t++ {
		for i := range lvlRows {
			lvlRows[i].Terms = t
		}
		cr := clarkson.Solve(lvlRows, clarkson.Config{
			TotalTerms:       t,
			MaxIters:         80,
			AcceptViolations: opt.MaxSpecials,
			XScale:           xScale,
			Structure:        st,
			Rng:              rng,
			ForceExact:       forceExact,
			Faults:           opt.Faults,
		})
		stats.injected += cr.Injected
		if cr.Found {
			return t
		}
	}
	return opt.MaxTerms
}

func onesVector(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// assignTerms writes the hypothesized per-level term counts into the rows.
func assignTerms(rows []clarkson.Row, meta []rowMeta, terms []int) {
	for i := range rows {
		rows[i].Terms = terms[meta[i].level]
	}
}

// violation identifies a violated merged row by level and merged-row index.
type violation struct {
	level int
	row   int
}

// violationSpecials converts violated rows to per-level special markers,
// enforcing the per-piece special budget in *input* counts (a merged row
// may cover many inputs).
func violationSpecials(violated []int, meta []rowMeta, budget int) ([]violation, bool) {
	total := 0
	var out []violation
	for _, vi := range violated {
		total += int(meta[vi].inputs)
		out = append(out, violation{level: meta[vi].level, row: meta[vi].row})
	}
	if total > budget {
		return nil, false
	}
	return out, true
}

// bumpTerms increases the term count of the lower level with the most
// violated rows (ties to the smallest level), cascading the increase
// upward so the vector stays monotone (terms[0] ≤ … ≤ terms[n-1] = k).
// It returns false when no lower level can grow further.
func bumpTerms(terms []int, k int, violated []int, meta []rowMeta) bool {
	n := len(terms)
	counts := make([]int, n)
	for _, vi := range violated {
		counts[meta[vi].level]++
	}
	best := -1
	for li := 0; li < n-1; li++ {
		if terms[li] >= k {
			continue
		}
		if best < 0 || counts[li] > counts[best] {
			best = li
		}
	}
	if best < 0 {
		return false
	}
	terms[best]++
	for li := best + 1; li < n-1; li++ {
		if terms[li] < terms[li-1] {
			terms[li] = terms[li-1]
		}
	}
	return true
}
