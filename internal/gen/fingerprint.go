package gen

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/pipeline"
)

// Fingerprint digests every Options field that can influence the bits of a
// generated result; it is the cache-key component that invalidates solve
// and verify artifacts when the configuration changes. Apply defaults
// before fingerprinting (the staged entry points do), so that an explicit
// MaxTerms=8 and the zero-value default address the same artifact.
//
// Every field of Options must be mentioned in this function — the
// rlibm-lint cachekey analyzer enforces it. Fields that provably cannot
// change output bits (the determinism contract: Workers never changes the
// result; Logf and Oracle are plumbing) are recorded as explicit blank
// mentions instead of being digested.
func (o Options) Fingerprint() string {
	var e pipeline.Enc
	e.Int(len(o.Levels))
	for _, l := range o.Levels {
		e.Int(l.Bits())
		e.Int(l.ExpBits())
	}
	e.Int(o.MaxTerms)
	e.Int(o.MaxPieces)
	e.Int(o.MaxSpecials)
	e.Int(o.ClarksonIters)
	e.Int(o.ForcePieces)
	e.Bool(o.ProgressiveRO)
	e.I64(o.Seed)
	_ = o.Workers // excluded: output is bit-identical for every worker count
	_ = o.Logf    // excluded: logging cannot influence generated bits
	_ = o.Oracle  // excluded: any oracle for fn returns identical results
	_ = o.Faults  // excluded: injected faults are replayed to the no-fault bits or abort with an error; no artifact they touch survives
	sum := sha256.Sum256(e.Bytes())
	return hex.EncodeToString(sum[:])
}

// enumFingerprint digests only the options the Enumerate and Reduce stages
// depend on: the level list and ProgressiveRO. Seed and solver limits are
// deliberately absent, so re-running with a different seed or term budget
// reuses the expensive enumeration artifact.
func (o Options) enumFingerprint() string {
	var e pipeline.Enc
	e.Int(len(o.Levels))
	for _, l := range o.Levels {
		e.Int(l.Bits())
		e.Int(l.ExpBits())
	}
	e.Bool(o.ProgressiveRO)
	sum := sha256.Sum256(e.Bytes())
	return hex.EncodeToString(sum[:])
}
