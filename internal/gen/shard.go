package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/pipeline"
)

// Shard-claim work distribution. A distributed run splits stage work —
// first workload: the exhaustive verification sweeps — into (function,
// stage, shard) units, each an ordinary content-addressed artifact, so N
// processes sharing one store (typically over the remote backend) each
// compute a disjoint slice and any process can assemble the merged result
// bit-identically. Claims are tiny artifacts published next to the work
// units: before computing a unit, a worker publishes "shard k/n is
// computing this", and peers poll the unit artifact for a bounded grace
// window before computing it themselves. Claims are therefore an
// optimization against duplicate work, never a correctness dependency —
// unit artifacts are deterministic bytes, so a lost, stale or raced claim
// at worst makes two processes write the identical artifact.

// Shard identifies one process's slice of a distributed run: slice K of N
// (K in [0,N)). The zero value — and any N <= 1 — means "solo": no
// claims, no waiting, all units computed locally.
type Shard struct {
	K int
	N int
}

// Solo reports whether the shard spans the whole run.
func (s Shard) Solo() bool { return s.N <= 1 }

// Owner is the claim-owner token of this shard: distinct across the
// cooperating processes of one run by construction, and deterministic so
// reruns recognize their own claims.
func (s Shard) Owner() string { return fmt.Sprintf("shard-%d.%d", s.K, s.N) }

func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.K, s.N) }

// Mine reports whether work unit j of the run's N-unit partition is
// assigned to this shard.
func (s Shard) Mine(j int) bool { return s.Solo() || j == s.K }

// ParseShard parses a -shard flag value "k/n"; the empty string is the
// solo shard.
func ParseShard(v string) (Shard, error) {
	if v == "" {
		return Shard{}, nil
	}
	k, n, ok := strings.Cut(v, "/")
	if !ok {
		return Shard{}, fmt.Errorf("invalid -shard %q: must be k/n (e.g. 0/2)", v)
	}
	ki, err1 := strconv.Atoi(k)
	ni, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || ni < 1 || ki < 0 || ki >= ni {
		return Shard{}, fmt.Errorf("invalid -shard %q: must be k/n with 0 <= k < n", v)
	}
	return Shard{K: ki, N: ni}, nil
}

// VerifyShardKey addresses one exhaustive-verification work unit: the
// pass-p mismatch sweep of level li, slice j of n, of fn under opt
// (defaults applied). The unit fingerprint extends the full options
// fingerprint with the unit coordinates, so each unit is its own
// content-addressed, resumable artifact.
func VerifyShardKey(fn bigmath.Func, opt Options, li, pass, j, n int) pipeline.Key {
	opt.defaults()
	return pipeline.Key{
		Func:  fn.String(),
		Stage: StageVerifyShard,
		Fingerprint: fmt.Sprintf("%s-L%d-p%d-%d.%d",
			opt.Fingerprint(), li, pass, j, n),
	}
}

// StageVerifyShard names the distributed-verification work-unit stage,
// as it appears in artifact keys and cache event logs.
const StageVerifyShard = "verify-shard"

// StageClaim names the claim stage. One claim artifact sits next to each
// work unit, addressed by the unit's own key components.
const StageClaim = "claim"

// claimKey derives the claim artifact key of a work unit.
func claimKey(unit pipeline.Key) pipeline.Key {
	return pipeline.Key{
		Func:        unit.Func,
		Stage:       StageClaim,
		Fingerprint: unit.Stage + "-" + unit.Fingerprint,
	}
}

// ClaimCodec encodes a claim artifact: the owner token of the shard that
// announced it is computing the unit.
var ClaimCodec = pipeline.Codec[string]{
	Name:    "store-claim",
	Version: 1,
	Encode:  func(e *pipeline.Enc, owner string) { e.Str(owner) },
	Decode: func(d *pipeline.Dec) (string, error) {
		owner := d.Str()
		if d.Err() == nil && owner == "" {
			return "", fmt.Errorf("%w: empty claim owner", pipeline.ErrCorrupt)
		}
		return owner, d.Err()
	},
}

// Claim publishes shard's claim on unit, unless a peer already holds one:
// it returns true when this shard holds the claim afterwards (and should
// compute the unit), false when a peer's claim stands. Claims are
// last-writer-wins artifacts — a racing pair of processes may both see
// true — which is safe because the unit artifacts they then publish are
// byte-identical. Injection: SiteClaimStale makes an existing peer claim
// read back stale, so the caller reclaims and computes the unit itself.
func Claim(st pipeline.Store, unit pipeline.Key, shard Shard, faults *fault.Plan) bool {
	if st == nil || shard.Solo() {
		return true
	}
	if owner, ok := ClaimedBy(st, unit, faults); ok && owner != shard.Owner() {
		return false
	}
	seal := sealClaim(shard.Owner())
	ck := claimKey(unit)
	if err := st.Put(ck, ClaimCodec.Name, ClaimCodec.Version, seal); err != nil {
		// A claim that cannot be written is only lost dedup: compute.
		return true
	}
	owner, ok := ClaimedBy(st, unit, faults)
	return !ok || owner == shard.Owner()
}

// ClaimedBy returns the owner token of the claim on unit, if a readable,
// well-formed claim exists. Injection: SiteClaimStale reports any
// existing claim as unreadable, which callers treat as "no live peer".
func ClaimedBy(st pipeline.Store, unit pipeline.Key, faults *fault.Plan) (owner string, ok bool) {
	if st == nil {
		return "", false
	}
	data, found := st.Get(claimKey(unit), ClaimCodec.Name, ClaimCodec.Version)
	if !found {
		return "", false
	}
	if faults.Should(fault.SiteClaimStale) {
		return "", false
	}
	payload, err := pipeline.Unseal(data, ClaimCodec.Name, ClaimCodec.Version)
	if err != nil {
		return "", false
	}
	d := pipeline.NewDec(payload)
	owner, derr := ClaimCodec.Decode(d)
	if derr != nil || d.Done() != nil {
		return "", false
	}
	return owner, true
}

// sealClaim frames a claim artifact for storage.
func sealClaim(owner string) []byte {
	var e pipeline.Enc
	ClaimCodec.Encode(&e, owner)
	return pipeline.Seal(ClaimCodec.Name, ClaimCodec.Version, e.Bytes())
}
