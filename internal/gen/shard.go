package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/pipeline"
)

// Shard-claim work distribution. A distributed run splits stage work —
// first workload: the exhaustive verification sweeps — into (function,
// stage, shard) units, each an ordinary content-addressed artifact, so N
// processes sharing one store (typically over the remote backend) each
// compute a disjoint slice and any process can assemble the merged result
// bit-identically. Claims are tiny artifacts published next to the work
// units: before computing a unit, a worker publishes "shard k/n is
// computing this", and peers poll the unit artifact for a bounded grace
// window before computing it themselves. Claims are therefore an
// optimization against duplicate work, never a correctness dependency —
// unit artifacts are deterministic bytes, so a lost, stale or raced claim
// at worst makes two processes write the identical artifact.

// Shard identifies one process's slice of a distributed run: slice K of N
// (K in [0,N)). The zero value — and any N <= 1 — means "solo": no
// claims, no waiting, all units computed locally.
type Shard struct {
	K int
	N int
}

// Solo reports whether the shard spans the whole run.
func (s Shard) Solo() bool { return s.N <= 1 }

// Owner is the claim-owner token of this shard: distinct across the
// cooperating processes of one run by construction, and deterministic so
// reruns recognize their own claims.
func (s Shard) Owner() string { return fmt.Sprintf("shard-%d.%d", s.K, s.N) }

func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.K, s.N) }

// Mine reports whether work unit j of the run's N-unit partition is
// assigned to this shard.
func (s Shard) Mine(j int) bool { return s.Solo() || j == s.K }

// Owns reports whether work unit j of an arbitrary-length work list is
// assigned to this shard. Unlike Mine — which matches partitions built
// with exactly N units — Owns deals units round-robin (unit j belongs to
// shard j mod N), so it distributes work lists of any length, like the
// per-piece solve units whose count follows the adaptive escalation.
func (s Shard) Owns(j int) bool { return s.Solo() || j%s.N == s.K }

// ParseShard parses a -shard flag value "k/n"; the empty string is the
// solo shard.
func ParseShard(v string) (Shard, error) {
	if v == "" {
		return Shard{}, nil
	}
	k, n, ok := strings.Cut(v, "/")
	if !ok {
		return Shard{}, fmt.Errorf("invalid -shard %q: must be k/n (e.g. 0/2)", v)
	}
	ki, err1 := strconv.Atoi(k)
	ni, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || ni < 1 || ki < 0 || ki >= ni {
		return Shard{}, fmt.Errorf("invalid -shard %q: must be k/n with 0 <= k < n", v)
	}
	return Shard{K: ki, N: ni}, nil
}

// VerifyShardKey addresses one exhaustive-verification work unit: the
// pass-p mismatch sweep of level li, slice j of n, of fn under opt
// (defaults applied). The unit fingerprint extends the full options
// fingerprint with the unit coordinates, so each unit is its own
// content-addressed, resumable artifact.
func VerifyShardKey(fn bigmath.Func, opt Options, li, pass, j, n int) pipeline.Key {
	opt.defaults()
	return pipeline.Key{
		Func:  fn.String(),
		Stage: StageVerifyShard,
		Fingerprint: fmt.Sprintf("%s-L%d-p%d-%d.%d",
			opt.Fingerprint(), li, pass, j, n),
	}
}

// StageVerifyShard names the distributed-verification work-unit stage,
// as it appears in artifact keys and cache event logs.
const StageVerifyShard = "verify-shard"

// StageClaim names the claim stage. One claim artifact sits next to each
// work unit, addressed by the unit's own key components. The name is
// pinned in internal/pipeline so the evicting store can protect claims
// without importing this package.
const StageClaim = pipeline.StageClaim

// claimKey derives the claim artifact key of a work unit.
func claimKey(unit pipeline.Key) pipeline.Key {
	return pipeline.Key{
		Func:        unit.Func,
		Stage:       StageClaim,
		Fingerprint: unit.Stage + "-" + unit.Fingerprint,
	}
}

// ClaimInfo is the decoded claim artifact: the owner token of the shard
// computing the unit, plus a heartbeat stamp. Stamp is a monotonic
// sequence number the owner bumps while it computes (see RefreshClaim),
// NOT a wall-clock time — persisted artifacts must stay clock-free (the
// nondetflow contract), and a sequence avoids cross-machine clock skew.
// Liveness is therefore judged relatively: a poller that watches the same
// (Owner, Stamp) pair across several polls without the stamp advancing
// concludes the owner died and reclaims the unit.
type ClaimInfo struct {
	Owner string
	Stamp uint64
}

// ClaimCodec encodes a claim artifact. v2 added the heartbeat stamp; v1
// claims (owner only) fail the Unseal identity check and read as "no
// claim", which merely costs one duplicated unit during a mixed-version
// rollout — claims are dedup, never correctness.
var ClaimCodec = pipeline.Codec[ClaimInfo]{
	Name:    "store-claim",
	Version: 2,
	Encode: func(e *pipeline.Enc, c ClaimInfo) {
		e.Str(c.Owner)
		e.U64(c.Stamp)
	},
	Decode: func(d *pipeline.Dec) (ClaimInfo, error) {
		c := ClaimInfo{Owner: d.Str(), Stamp: d.U64()}
		if d.Err() == nil && c.Owner == "" {
			return ClaimInfo{}, fmt.Errorf("%w: empty claim owner", pipeline.ErrCorrupt)
		}
		return c, d.Err()
	},
}

// Claim publishes shard's claim on unit, unless a peer already holds one:
// it returns true when this shard holds the claim afterwards (and should
// compute the unit), false when a peer's claim stands. Claims are
// last-writer-wins artifacts — a racing pair of processes may both see
// true — which is safe because the unit artifacts they then publish are
// byte-identical. Injection: SiteClaimStale makes an existing peer claim
// read back stale, so the caller reclaims and computes the unit itself.
func Claim(st pipeline.Store, unit pipeline.Key, shard Shard, faults *fault.Plan) bool {
	if st == nil || shard.Solo() {
		return true
	}
	if c, ok := ClaimedBy(st, unit, faults); ok && c.Owner != shard.Owner() {
		return false
	}
	ck := claimKey(unit)
	if err := st.Put(ck, ClaimCodec.Name, ClaimCodec.Version, sealClaim(ClaimInfo{Owner: shard.Owner()})); err != nil {
		// A claim that cannot be written is only lost dedup: compute.
		return true
	}
	c, ok := ClaimedBy(st, unit, faults)
	return !ok || c.Owner == shard.Owner()
}

// RefreshClaim republishes shard's claim on unit with the given heartbeat
// stamp. The computing process calls it periodically while a unit is in
// flight so pollers see the stamp advance; a write failure is ignored —
// at worst a poller declares this process dead and duplicates the unit's
// byte-identical work.
func RefreshClaim(st pipeline.Store, unit pipeline.Key, shard Shard, stamp uint64) {
	if st == nil || shard.Solo() {
		return
	}
	ck := claimKey(unit)
	_ = st.Put(ck, ClaimCodec.Name, ClaimCodec.Version, sealClaim(ClaimInfo{Owner: shard.Owner(), Stamp: stamp}))
}

// ClaimedBy returns the claim on unit, if a readable, well-formed claim
// exists. Injection: SiteClaimStale reports any existing claim as
// unreadable, which callers treat as "no live peer".
func ClaimedBy(st pipeline.Store, unit pipeline.Key, faults *fault.Plan) (ClaimInfo, bool) {
	if st == nil {
		return ClaimInfo{}, false
	}
	data, found := st.Get(claimKey(unit), ClaimCodec.Name, ClaimCodec.Version)
	if !found {
		return ClaimInfo{}, false
	}
	if faults.Should(fault.SiteClaimStale) {
		return ClaimInfo{}, false
	}
	payload, err := pipeline.Unseal(data, ClaimCodec.Name, ClaimCodec.Version)
	if err != nil {
		return ClaimInfo{}, false
	}
	d := pipeline.NewDec(payload)
	c, derr := ClaimCodec.Decode(d)
	if derr != nil || d.Done() != nil {
		return ClaimInfo{}, false
	}
	return c, true
}

// sealClaim frames a claim artifact for storage.
func sealClaim(c ClaimInfo) []byte {
	var e pipeline.Enc
	ClaimCodec.Encode(&e, c)
	return pipeline.Seal(ClaimCodec.Name, ClaimCodec.Version, e.Bytes())
}
