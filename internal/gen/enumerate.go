package gen

import (
	"context"
	"math"
	"math/big"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/interval"
	"repro/internal/oracle"
	"repro/internal/parallel"
	"repro/internal/reduction"
)

// rawConstraint is one pre-merge constraint: input xbits of some level
// requires the kernel output at reduced input r to lie in [lo, hi].
type rawConstraint struct {
	r      float64
	lo, hi float64
	xbits  uint64
}

// rawSet is the Enumerate-stage artifact: every pre-merge rounding-interval
// constraint, in deterministic enumeration order, plus the structurally
// special inputs discovered along the way. It depends only on the function,
// the level list and ProgressiveRO — not on the seed or the solver options
// — so one enumeration serves every solve configuration.
type rawSet struct {
	// raw[kernel][level] lists the constraints in ascending input-bit
	// order (the order the serial enumerator discovers them in).
	raw [][][]rawConstraint
	// specials[level] lists inputs evicted during enumeration (empty
	// inversions, unusable affine splits), ascending.
	specials [][]uint64
	// rawCount is the total number of pre-merge constraints (the paper's
	// n, e.g. 512 million for e^x at full scale).
	rawCount int
}

// enumShard is the output of enumerating one contiguous bit-range of one
// level: per-kernel raw constraints and evicted specials in ascending input
// order. Concatenating shard outputs in shard order reproduces exactly what
// the serial loop would have produced over the union of the ranges.
type enumShard struct {
	raw      [][]rawConstraint // per kernel
	specials []uint64
	count    int
	rawCount int
}

// enumerateRange runs the per-input pipeline — decode, reduce, oracle,
// rounding interval, inverse compensation / affine split — over the bit
// patterns [rg.Lo, rg.Hi) of lvl. skip, when non-nil, is the level's
// dedup-loser bitmap (see dedupSkipBitmaps); marked inputs are skipped
// without touching the oracle. The shard owns all of its outputs; the only
// shared mutable state it touches is the concurrency-safe oracle.
func enumerateRange(scheme reduction.Scheme, orc *oracle.Oracle, lvl, outFmt fp.Format,
	mode fp.Mode, skip []uint64, rg parallel.Range, nk int) enumShard {

	sh := enumShard{raw: make([][]rawConstraint, nk)}
	tp, twoPoly := scheme.(reduction.TwoPoly)
	type kernelPair struct{ k0, k1 *big.Float }
	var kernelCache map[float64]kernelPair
	if twoPoly {
		kernelCache = make(map[float64]kernelPair)
	}
	for b := rg.Lo; b < rg.Hi; b++ {
		if skip != nil && skip[b>>6]&(1<<(b&63)) != 0 {
			continue // reduction state owned by an earlier input
		}
		x := lvl.Decode(b)
		ctx, regular := scheme.Reduce(x)
		if !regular {
			continue // structural special path, correct by construction
		}
		bits := orc.Result(x, outFmt, mode)
		iv, usable := interval.Rounding(outFmt, bits, mode)
		if !usable {
			// Zero or infinite correctly rounded result: no interval to
			// constrain (the sign of zero would be pinned), but the
			// polynomial path's final rounding saturates/flushes these
			// inputs correctly on its own. Skip the constraint; the
			// post-generation verification repairs any input this
			// optimism gets wrong.
			continue
		}
		if !twoPoly {
			yiv, ok := reduction.InvertMonotone(scheme, ctx, iv)
			if !ok {
				sh.specials = append(sh.specials, b)
				continue
			}
			sh.raw[0] = append(sh.raw[0], rawConstraint{r: ctx.R, lo: yiv.Lo, hi: yiv.Hi, xbits: b})
			sh.rawCount++
			sh.count++
			continue
		}
		// Two-kernel schemes: exact kernel values (cached by r) and the
		// affine box split.
		kp, haveK := kernelCache[ctx.R]
		if !haveK {
			kp.k0, kp.k1 = tp.Kernels(ctx.R, 160)
			kernelCache[ctx.R] = kp
		}
		i0, i1, ok := reduction.SplitAffine(tp, ctx, kp.k0, kp.k1, iv)
		if !ok {
			sh.specials = append(sh.specials, b)
			continue
		}
		for p, box := range [2]interval.Interval{i0, i1} {
			if box.Lo == -math.MaxFloat64 && box.Hi == math.MaxFloat64 {
				continue // unconstrained kernel at this input
			}
			sh.raw[p] = append(sh.raw[p], rawConstraint{r: ctx.R, lo: box.Lo, hi: box.Hi, xbits: b})
		}
		sh.rawCount += 2
		sh.count++
	}
	return sh
}

// dedupSkipBitmaps replays the sinpi/cospi reduction-state dedup of the
// serial enumerator as a cheap serial prepass (Reduce is a handful of
// float64 operations; the oracle work it saves is what dominates): identical
// reduction state implies identical function value and constraints for that
// family, so only the first input claiming a state — in (level, bit) order,
// with the seen-set carried across levels exactly like the serial loop's —
// contributes. The returned per-level bitmaps mark the losers, letting the
// sharded workers skip them with no cross-shard coordination and keeping the
// parallel output bit-identical to the serial one.
func dedupSkipBitmaps(scheme reduction.Scheme, levels []fp.Format) [][]uint64 {
	seen := make(map[reduction.Ctx]struct{})
	out := make([][]uint64, len(levels))
	for li, lvl := range levels {
		n := lvl.NumValues()
		bm := make([]uint64, (n+63)/64)
		for b := uint64(0); b < n; b++ {
			ctx, regular := scheme.Reduce(lvl.Decode(b))
			if !regular {
				continue
			}
			if _, dup := seen[ctx]; dup {
				bm[b>>6] |= 1 << (b & 63)
				continue
			}
			seen[ctx] = struct{}{}
		}
		out[li] = bm
	}
	return out
}

// enumerate runs the Enumerate stage: every finite input of every level is
// decoded, reduced and queried against the oracle, and the resulting raw
// rounding-interval constraints are collected per (kernel, level). The
// enumeration is sharded over contiguous bit-ranges and run on up to
// workers goroutines against the shared concurrency-safe oracle; shard
// outputs are concatenated in deterministic shard order, so the result is
// bit-identical to a serial run for every worker count. An oracle panic
// (Ziv exhaustion, real or injected) is recovered by the pool and returned
// as a typed *fault.Error with shard context; cancellation aborts between
// shards.
func enumerate(ctx context.Context, fn bigmath.Func, scheme reduction.Scheme, orc *oracle.Oracle,
	levels []fp.Format, progressiveRO bool, workers int, logf func(string, ...interface{})) (*rawSet, error) {

	nk := scheme.NumPolys()
	rs := &rawSet{
		raw:      make([][][]rawConstraint, nk),
		specials: make([][]uint64, len(levels)),
	}
	for p := 0; p < nk; p++ {
		rs.raw[p] = make([][]rawConstraint, len(levels))
	}

	var skips [][]uint64
	if fn == bigmath.SinPi || fn == bigmath.CosPi {
		skips = dedupSkipBitmaps(scheme, levels)
	}

	for li, lvl := range levels {
		largest := li == len(levels)-1
		outFmt := lvl
		mode := fp.RoundNearestEven
		if largest || progressiveRO {
			outFmt = lvl.Extend(2)
			mode = fp.RoundToOdd
		}
		var skip []uint64
		if skips != nil {
			skip = skips[li]
		}
		shards := parallel.SplitRange(lvl.NumValues(), parallel.ShardCount(workers))
		outs := make([]enumShard, len(shards))
		if err := parallel.ForEachErr(ctx, workers, len(shards), func(s int) error {
			outs[s] = enumerateRange(scheme, orc, lvl, outFmt, mode, skip, shards[s], nk)
			return nil
		}); err != nil {
			return nil, poolFault(err, StageEnumerate, fn)
		}
		count := 0
		for _, sh := range outs { // deterministic shard order = ascending bits
			for p := 0; p < nk; p++ {
				rs.raw[p][li] = append(rs.raw[p][li], sh.raw[p]...)
			}
			rs.specials[li] = append(rs.specials[li], sh.specials...)
			rs.rawCount += sh.rawCount
			count += sh.count
		}
		if logf != nil {
			logf("  level %v: %d poly-path inputs, %d structural specials",
				lvl, count, len(rs.specials[li]))
		}
	}
	return rs, nil
}
