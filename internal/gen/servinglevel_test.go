package gen

import (
	"testing"

	"repro/internal/fp"
)

// TestServingLevel pins the dispatch rule that Compile and Eval rely on: a
// lower level's truncated evaluation is certified only for that level's
// exact format under round-to-nearest-even, unless the table was generated
// with round-to-odd constraints (ProgressiveRO), in which case every lower
// level serves all formats up to its width under every mode. Everything
// else falls through to the largest level's full evaluation.
func TestServingLevel(t *testing.T) {
	ladder := []fp.Format{fp.Bfloat16, fp.TensorFloat32, fp.MustFormat(25, 8)}
	rnTable := &Result{Levels: ladder}
	roTable := &Result{Levels: ladder, ProgressiveRO: true}
	single := &Result{Levels: []fp.Format{fp.TensorFloat32}}

	between := fp.MustFormat(17, 8) // strictly between bfloat16 and tf32
	narrow := fp.MustFormat(12, 8)  // narrower than every level
	wide := fp.MustFormat(26, 8)    // wider than the whole ladder

	cases := []struct {
		name string
		res  *Result
		f    fp.Format
		mode fp.Mode
		li   int
		ok   bool
	}{
		// rn + exact level format → that level's truncated evaluation.
		{"rn exact lowest", rnTable, fp.Bfloat16, fp.RoundNearestEven, 0, true},
		{"rn exact middle", rnTable, fp.TensorFloat32, fp.RoundNearestEven, 1, true},
		{"rn exact largest", rnTable, ladder[2], fp.RoundNearestEven, 2, true},
		// Same width but any other mode → the full largest level.
		{"rz exact lowest", rnTable, fp.Bfloat16, fp.RoundTowardZero, 2, true},
		{"ra exact middle", rnTable, fp.TensorFloat32, fp.RoundNearestAway, 2, true},
		{"ro exact lowest", rnTable, fp.Bfloat16, fp.RoundToOdd, 2, true},
		// Non-exact widths under rn: only round-to-odd evaluation covers
		// them, so they also go to the largest level.
		{"rn narrower than ladder", rnTable, narrow, fp.RoundNearestEven, 2, true},
		{"rn between levels", rnTable, between, fp.RoundNearestEven, 2, true},
		// Wider than the ladder is unservable regardless of table or mode.
		{"rn too wide", rnTable, wide, fp.RoundNearestEven, 0, false},
		{"ro-table too wide", roTable, wide, fp.RoundTowardPositive, 0, false},
		// ProgressiveRO tables: the smallest covering level serves any
		// format up to its width under any mode.
		{"ro-table narrow rz", roTable, narrow, fp.RoundTowardZero, 0, true},
		{"ro-table exact lowest rd", roTable, fp.Bfloat16, fp.RoundTowardNegative, 0, true},
		{"ro-table between ru", roTable, between, fp.RoundTowardPositive, 1, true},
		{"ro-table exact middle ro", roTable, fp.TensorFloat32, fp.RoundToOdd, 1, true},
		{"ro-table largest ra", roTable, ladder[2], fp.RoundNearestAway, 2, true},
		// A one-level ladder serves everything it covers from that level.
		{"single exact rn", single, fp.TensorFloat32, fp.RoundNearestEven, 0, true},
		{"single narrower rz", single, narrow, fp.RoundTowardZero, 0, true},
		{"single too wide", single, fp.MustFormat(20, 8), fp.RoundNearestEven, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			li, ok := tc.res.ServingLevel(tc.f, tc.mode)
			if li != tc.li || ok != tc.ok {
				t.Errorf("ServingLevel(%v, %v) = (%d, %v), want (%d, %v)",
					tc.f, tc.mode, li, ok, tc.li, tc.ok)
			}
			if lf, lok := tc.res.LevelFor(tc.f); tc.ok && !lok {
				t.Errorf("LevelFor(%v) not ok but ServingLevel is", tc.f)
			} else if lok && tc.ok && li < lf {
				t.Errorf("ServingLevel %d below LevelFor %d: serving level cannot be narrower than the query", li, lf)
			}
		})
	}
}
