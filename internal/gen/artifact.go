package gen

import (
	"fmt"
	"sort"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/pipeline"
)

// This file defines the on-disk codecs of the three generator artifacts:
// the raw rounding-interval set (Enumerate), the merged constraint set
// (Reduce) and the generated result (Solve/Verify). All three use the
// deterministic pipeline encoding — fixed-width little-endian, float64 as
// IEEE bits — so equal values encode to equal bytes and a warm cache is
// byte-identical to the cold run that filled it. Bump a codec's Version
// whenever its layout or the semantics of the stage feeding it change;
// the content address changes with it and stale artifacts are orphaned,
// never misread.

// encodeLevels/decodeLevels encode a level list as (bits, expBits) pairs.
func encodeLevels(e *pipeline.Enc, levels []fp.Format) {
	e.Int(len(levels))
	for _, l := range levels {
		e.Int(l.Bits())
		e.Int(l.ExpBits())
	}
}

func decodeLevels(d *pipeline.Dec) ([]fp.Format, error) {
	n := d.Len()
	levels := make([]fp.Format, 0, n)
	for i := 0; i < n; i++ {
		bits, expBits := d.Int(), d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		f, err := fp.NewFormat(bits, expBits)
		if err != nil {
			return nil, fmt.Errorf("%w: level %d: %v", pipeline.ErrCorrupt, i, err)
		}
		levels = append(levels, f)
	}
	return levels, nil
}

// enumCodec encodes the Enumerate-stage artifact (rawSet).
var enumCodec = pipeline.Codec[*rawSet]{
	Name:    "gen-intervals",
	Version: 1,
	Encode: func(e *pipeline.Enc, rs *rawSet) {
		e.Int(len(rs.raw))
		if len(rs.raw) > 0 {
			e.Int(len(rs.raw[0]))
		} else {
			e.Int(0)
		}
		e.Int(rs.rawCount)
		for _, perLevel := range rs.raw {
			for _, raw := range perLevel {
				e.Int(len(raw))
				for _, rc := range raw {
					e.F64(rc.r)
					e.F64(rc.lo)
					e.F64(rc.hi)
					e.U64(rc.xbits)
				}
			}
		}
		e.Int(len(rs.specials))
		for _, sp := range rs.specials {
			e.Int(len(sp))
			for _, b := range sp {
				e.U64(b)
			}
		}
	},
	Decode: func(d *pipeline.Dec) (*rawSet, error) {
		nk, nLevels := d.Int(), d.Int()
		rs := &rawSet{rawCount: d.Int()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if nk < 0 || nLevels < 0 {
			return nil, fmt.Errorf("%w: negative shape %d×%d", pipeline.ErrCorrupt, nk, nLevels)
		}
		rs.raw = make([][][]rawConstraint, nk)
		for p := range rs.raw {
			rs.raw[p] = make([][]rawConstraint, nLevels)
			for li := range rs.raw[p] {
				n := d.Len()
				raw := make([]rawConstraint, 0, n)
				for i := 0; i < n; i++ {
					raw = append(raw, rawConstraint{
						r: d.F64(), lo: d.F64(), hi: d.F64(), xbits: d.U64(),
					})
				}
				rs.raw[p][li] = raw
			}
		}
		nSp := d.Len()
		rs.specials = make([][]uint64, nSp)
		for li := range rs.specials {
			n := d.Len()
			sp := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				sp = append(sp, d.U64())
			}
			rs.specials[li] = sp
		}
		return rs, d.Err()
	},
}

// constraintCodec encodes the Reduce-stage artifact (constraintSet).
var constraintCodec = pipeline.Codec[*constraintSet]{
	Name:    "gen-constraints",
	Version: 1,
	Encode: func(e *pipeline.Enc, cs *constraintSet) {
		e.Int(len(cs.perKernel))
		if len(cs.perKernel) > 0 {
			e.Int(len(cs.perKernel[0]))
		} else {
			e.Int(0)
		}
		e.Int(cs.rawCount)
		for _, perLevel := range cs.perKernel {
			for _, lc := range perLevel {
				e.Int(len(lc.merged))
				for mi, m := range lc.merged {
					e.F64(m.r)
					e.F64(m.lo)
					e.F64(m.hi)
					e.Int(int(m.inputs))
					e.Int(len(lc.rowInputs[mi]))
					for _, b := range lc.rowInputs[mi] {
						e.U64(b)
					}
				}
			}
		}
		e.Int(len(cs.specials))
		for _, set := range cs.specials {
			keys := make([]uint64, 0, len(set))
			for b := range set {
				//lint:ignore mapiter keys are fully sorted below before encoding, erasing map order.
				keys = append(keys, b)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			e.Int(len(keys))
			for _, b := range keys {
				e.U64(b)
			}
		}
	},
	Decode: func(d *pipeline.Dec) (*constraintSet, error) {
		nk, nLevels := d.Int(), d.Int()
		cs := &constraintSet{rawCount: d.Int()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if nk < 0 || nLevels < 0 {
			return nil, fmt.Errorf("%w: negative shape %d×%d", pipeline.ErrCorrupt, nk, nLevels)
		}
		cs.perKernel = make([][]levelConstraints, nk)
		for p := range cs.perKernel {
			cs.perKernel[p] = make([]levelConstraints, nLevels)
			for li := range cs.perKernel[p] {
				lc := &cs.perKernel[p][li]
				n := d.Len()
				lc.merged = make([]mergedRow, 0, n)
				lc.rowInputs = make([][]uint64, 0, n)
				for i := 0; i < n; i++ {
					m := mergedRow{r: d.F64(), lo: d.F64(), hi: d.F64(), inputs: int32(d.Int())}
					ni := d.Len()
					in := make([]uint64, 0, ni)
					for j := 0; j < ni; j++ {
						in = append(in, d.U64())
					}
					lc.merged = append(lc.merged, m)
					lc.rowInputs = append(lc.rowInputs, in)
				}
			}
		}
		nSp := d.Len()
		cs.specials = make([]map[uint64]struct{}, nSp)
		for li := range cs.specials {
			n := d.Len()
			set := make(map[uint64]struct{}, n)
			for i := 0; i < n; i++ {
				set[d.U64()] = struct{}{}
			}
			cs.specials[li] = set
		}
		return cs, d.Err()
	},
}

// ResultCodec encodes a generated Result for the solve and verify stage
// artifacts. The volatile Stats fields — Duration (wall clock), Oracle
// (path counters that depend on cache warmth) and Retries (injected-fault
// replays) — are deliberately excluded: everything encoded is
// deterministic, so a warm decode is bit-identical to the cold result.
// Version 2 added the rescue-ladder consumption counters (SeedRotations,
// BudgetEscalations, Degradations). Exported for internal/cli, which
// stages the verify pass around internal/verify (gen cannot import
// verify).
var ResultCodec = pipeline.Codec[*Result]{
	Name:    "gen-result",
	Version: 2,
	Encode: func(e *pipeline.Enc, res *Result) {
		e.Int(int(res.Fn))
		encodeLevels(e, res.Levels)
		e.Bool(res.ProgressiveRO)
		e.Int(len(res.Kernels))
		for _, kp := range res.Kernels {
			e.Int(kp.Structure.Offset)
			e.Int(kp.Structure.Stride)
			e.Int(len(kp.Pieces))
			for _, pc := range kp.Pieces {
				e.F64(pc.Lo)
				e.F64(pc.Hi)
				e.Int(len(pc.Coeffs))
				for _, c := range pc.Coeffs {
					e.F64(c)
				}
				e.Int(len(pc.LevelTerms))
				for _, t := range pc.LevelTerms {
					e.Int(t)
				}
			}
		}
		e.Int(len(res.Specials))
		for _, sp := range res.Specials {
			e.Int(len(sp))
			for _, s := range sp {
				e.F64(s.X)
				e.F64(s.Proxy)
			}
		}
		e.Int(res.Stats.RawConstraints)
		e.Int(res.Stats.MergedRows)
		e.Int(res.Stats.Iters)
		e.Int(res.Stats.Lucky)
		e.Int(res.Stats.ExactSolves)
		e.Int(res.Stats.Attempts)
		e.Int(res.Stats.SeedRotations)
		e.Int(res.Stats.BudgetEscalations)
		e.Int(res.Stats.Degradations)
	},
	Decode: func(d *pipeline.Dec) (*Result, error) {
		res := &Result{Fn: bigmath.Func(d.Int())}
		if d.Err() == nil && (res.Fn < 0 || res.Fn >= bigmath.NumFuncs) {
			return nil, fmt.Errorf("%w: unknown function id %d", pipeline.ErrCorrupt, int(res.Fn))
		}
		levels, err := decodeLevels(d)
		if err != nil {
			return nil, err
		}
		res.Levels = levels
		res.ProgressiveRO = d.Bool()
		nKernels := d.Len()
		for k := 0; k < nKernels; k++ {
			var kp KernelPoly
			kp.Structure.Offset = d.Int()
			kp.Structure.Stride = d.Int()
			nPieces := d.Len()
			for p := 0; p < nPieces; p++ {
				pc := Piece{Lo: d.F64(), Hi: d.F64()}
				nc := d.Len()
				pc.Coeffs = make([]float64, 0, nc)
				for i := 0; i < nc; i++ {
					pc.Coeffs = append(pc.Coeffs, d.F64())
				}
				nt := d.Len()
				pc.LevelTerms = make([]int, 0, nt)
				for i := 0; i < nt; i++ {
					pc.LevelTerms = append(pc.LevelTerms, d.Int())
				}
				kp.Pieces = append(kp.Pieces, pc)
			}
			res.Kernels = append(res.Kernels, kp)
		}
		nSp := d.Len()
		res.Specials = make([][]SpecialInput, nSp)
		for li := range res.Specials {
			n := d.Len()
			sp := make([]SpecialInput, 0, n)
			for i := 0; i < n; i++ {
				sp = append(sp, SpecialInput{X: d.F64(), Proxy: d.F64()})
			}
			res.Specials[li] = sp
		}
		res.Stats.RawConstraints = d.Int()
		res.Stats.MergedRows = d.Int()
		res.Stats.Iters = d.Int()
		res.Stats.Lucky = d.Int()
		res.Stats.ExactSolves = d.Int()
		res.Stats.Attempts = d.Int()
		res.Stats.SeedRotations = d.Int()
		res.Stats.BudgetEscalations = d.Int()
		res.Stats.Degradations = d.Int()
		return res, d.Err()
	},
}
