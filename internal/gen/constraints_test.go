package gen

import (
	"testing"
)

func TestMergeRaw(t *testing.T) {
	raw := []rawConstraint{
		{r: 1, lo: 0, hi: 10, xbits: 1},
		{r: 1, lo: 2, hi: 8, xbits: 2},
		{r: 1, lo: 9, hi: 12, xbits: 3}, // conflicts with the running [2,8]
		{r: 2, lo: -1, hi: 1, xbits: 4},
		{r: 3, lo: 5, hi: 5, xbits: 5}, // singleton
	}
	var evicted []uint64
	rows := mergeRaw(raw, func(xb uint64) { evicted = append(evicted, xb) })
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].r != 1 || rows[0].lo != 2 || rows[0].hi != 8 || rows[0].inputs != 2 {
		t.Errorf("row 0: %+v", rows[0])
	}
	if len(evicted) != 1 || evicted[0] != 3 {
		t.Errorf("evicted: %v", evicted)
	}
	if rows[2].lo != rows[2].hi {
		t.Errorf("singleton row: %+v", rows[2])
	}
}

func TestInputsOfRow(t *testing.T) {
	lc := levelConstraints{raw: []rawConstraint{
		{r: 1, xbits: 10},
		{r: 2, xbits: 20},
		{r: 2, xbits: 21},
		{r: 3, xbits: 30},
	}}
	got := lc.inputsOfRow(2)
	if len(got) != 2 || got[0] != 20 || got[1] != 21 {
		t.Errorf("inputsOfRow(2) = %v", got)
	}
	if got := lc.inputsOfRow(5); len(got) != 0 {
		t.Errorf("inputsOfRow(5) = %v", got)
	}
}

func TestSplitDomainAndBump(t *testing.T) {
	b := splitDomain(0, 1, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 1 || b[2] != 0.5 {
		t.Errorf("splitDomain: %v", b)
	}
	// bumpTerms cascades to keep monotonicity.
	terms := []int{2, 2, 5}
	meta := []rowMeta{{level: 0}, {level: 0}, {level: 1}}
	if !bumpTerms(terms, 5, []int{0, 1}, meta) {
		t.Fatal("bump failed")
	}
	if terms[0] != 3 || terms[1] != 3 {
		t.Errorf("terms after bump: %v", terms)
	}
	// Exhausted: all lower levels at k.
	terms = []int{5, 5, 5}
	if bumpTerms(terms, 5, nil, meta) {
		t.Error("bump should fail when lower levels are maxed")
	}
}
