// Package gen implements the RLIBM-Prog progressive polynomial generator:
// it enumerates every input of every representation level, computes
// correctly rounded results with the oracle, derives reduced rounding
// intervals through the inverse output compensation, and solves the
// resulting huge low-dimensional constraint system with the Clarkson
// randomized solver, escalating term counts, sub-domain splits and
// special-case inputs exactly as §3 of the paper describes.
package gen

import (
	"fmt"
	"math"
	"sort"

	"math/big"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/interval"
	"repro/internal/oracle"
	"repro/internal/parallel"
	"repro/internal/reduction"
)

// rawConstraint is one pre-merge constraint: input xbits of some level
// requires the kernel output at reduced input r to lie in [lo, hi].
type rawConstraint struct {
	r      float64
	lo, hi float64
	xbits  uint64
}

// mergedRow is a post-merge constraint: the intersection of all raw
// constraints sharing r within one (kernel, level).
type mergedRow struct {
	r      float64
	lo, hi float64
	inputs int32 // number of raw constraints merged in
}

// levelConstraints is the constraint set of one (kernel polynomial, level).
type levelConstraints struct {
	raw    []rawConstraint // sorted by r after build
	merged []mergedRow
}

// constraintSet carries everything enumerated for one function.
type constraintSet struct {
	// perKernel[p][levelIdx]
	perKernel [][]levelConstraints
	// specials[levelIdx] collects inputs that cannot be served by the
	// polynomial path: empty inversions, merge conflicts, unusable
	// intervals (zero/inf results past Reduce).
	specials []map[uint64]struct{}
	// rawCount is the total number of pre-merge constraints (the paper's
	// n, e.g. 512 million for e^x at full scale).
	rawCount int
}

// enumShard is the output of enumerating one contiguous bit-range of one
// level: per-kernel raw constraints and evicted specials in ascending input
// order. Concatenating shard outputs in shard order reproduces exactly what
// the serial loop would have produced over the union of the ranges.
type enumShard struct {
	raw      [][]rawConstraint // per kernel
	specials []uint64
	count    int
	rawCount int
}

// enumerateRange runs the per-input pipeline — decode, reduce, oracle,
// rounding interval, inverse compensation / affine split — over the bit
// patterns [rg.Lo, rg.Hi) of lvl. skip, when non-nil, is the level's
// dedup-loser bitmap (see dedupSkipBitmaps); marked inputs are skipped
// without touching the oracle. The shard owns all of its outputs; the only
// shared mutable state it touches is the concurrency-safe oracle.
func enumerateRange(scheme reduction.Scheme, orc *oracle.Oracle, lvl, outFmt fp.Format,
	mode fp.Mode, skip []uint64, rg parallel.Range, nk int) enumShard {

	sh := enumShard{raw: make([][]rawConstraint, nk)}
	tp, twoPoly := scheme.(reduction.TwoPoly)
	type kernelPair struct{ k0, k1 *big.Float }
	var kernelCache map[float64]kernelPair
	if twoPoly {
		kernelCache = make(map[float64]kernelPair)
	}
	for b := rg.Lo; b < rg.Hi; b++ {
		if skip != nil && skip[b>>6]&(1<<(b&63)) != 0 {
			continue // reduction state owned by an earlier input
		}
		x := lvl.Decode(b)
		ctx, regular := scheme.Reduce(x)
		if !regular {
			continue // structural special path, correct by construction
		}
		bits := orc.Result(x, outFmt, mode)
		iv, usable := interval.Rounding(outFmt, bits, mode)
		if !usable {
			// Zero or infinite correctly rounded result: no interval to
			// constrain (the sign of zero would be pinned), but the
			// polynomial path's final rounding saturates/flushes these
			// inputs correctly on its own. Skip the constraint; the
			// post-generation verification repairs any input this
			// optimism gets wrong.
			continue
		}
		if !twoPoly {
			yiv, ok := reduction.InvertMonotone(scheme, ctx, iv)
			if !ok {
				sh.specials = append(sh.specials, b)
				continue
			}
			sh.raw[0] = append(sh.raw[0], rawConstraint{r: ctx.R, lo: yiv.Lo, hi: yiv.Hi, xbits: b})
			sh.rawCount++
			sh.count++
			continue
		}
		// Two-kernel schemes: exact kernel values (cached by r) and the
		// affine box split.
		kp, haveK := kernelCache[ctx.R]
		if !haveK {
			kp.k0, kp.k1 = tp.Kernels(ctx.R, 160)
			kernelCache[ctx.R] = kp
		}
		i0, i1, ok := reduction.SplitAffine(tp, ctx, kp.k0, kp.k1, iv)
		if !ok {
			sh.specials = append(sh.specials, b)
			continue
		}
		for p, box := range [2]interval.Interval{i0, i1} {
			if box.Lo == -math.MaxFloat64 && box.Hi == math.MaxFloat64 {
				continue // unconstrained kernel at this input
			}
			sh.raw[p] = append(sh.raw[p], rawConstraint{r: ctx.R, lo: box.Lo, hi: box.Hi, xbits: b})
		}
		sh.rawCount += 2
		sh.count++
	}
	return sh
}

// dedupSkipBitmaps replays the sinpi/cospi reduction-state dedup of the
// serial enumerator as a cheap serial prepass (Reduce is a handful of
// float64 operations; the oracle work it saves is what dominates): identical
// reduction state implies identical function value and constraints for that
// family, so only the first input claiming a state — in (level, bit) order,
// with the seen-set carried across levels exactly like the serial loop's —
// contributes. The returned per-level bitmaps mark the losers, letting the
// sharded workers skip them with no cross-shard coordination and keeping the
// parallel output bit-identical to the serial one.
func dedupSkipBitmaps(scheme reduction.Scheme, levels []fp.Format) [][]uint64 {
	seen := make(map[reduction.Ctx]struct{})
	out := make([][]uint64, len(levels))
	for li, lvl := range levels {
		n := lvl.NumValues()
		bm := make([]uint64, (n+63)/64)
		for b := uint64(0); b < n; b++ {
			ctx, regular := scheme.Reduce(lvl.Decode(b))
			if !regular {
				continue
			}
			if _, dup := seen[ctx]; dup {
				bm[b>>6] |= 1 << (b & 63)
				continue
			}
			seen[ctx] = struct{}{}
		}
		out[li] = bm
	}
	return out
}

// buildConstraints enumerates every finite input of every level and builds
// the merged constraint system. The enumeration is sharded over contiguous
// bit-ranges and run on up to workers goroutines against the shared
// concurrency-safe oracle; shard outputs are merged in deterministic shard
// order, so the result is bit-identical to a serial run for every worker
// count.
func buildConstraints(fn bigmath.Func, scheme reduction.Scheme, orc *oracle.Oracle,
	levels []fp.Format, progressiveRO bool, workers int, logf func(string, ...interface{})) (*constraintSet, error) {

	nk := scheme.NumPolys()
	cs := &constraintSet{
		perKernel: make([][]levelConstraints, nk),
		specials:  make([]map[uint64]struct{}, len(levels)),
	}
	for p := 0; p < nk; p++ {
		cs.perKernel[p] = make([]levelConstraints, len(levels))
	}
	for i := range cs.specials {
		cs.specials[i] = make(map[uint64]struct{})
	}

	var skips [][]uint64
	if fn == bigmath.SinPi || fn == bigmath.CosPi {
		skips = dedupSkipBitmaps(scheme, levels)
	}

	for li, lvl := range levels {
		largest := li == len(levels)-1
		outFmt := lvl
		mode := fp.RoundNearestEven
		if largest || progressiveRO {
			outFmt = lvl.Extend(2)
			mode = fp.RoundToOdd
		}
		var skip []uint64
		if skips != nil {
			skip = skips[li]
		}
		shards := parallel.SplitRange(lvl.NumValues(), parallel.ShardCount(workers))
		outs := make([]enumShard, len(shards))
		parallel.ForEach(workers, len(shards), func(s int) {
			outs[s] = enumerateRange(scheme, orc, lvl, outFmt, mode, skip, shards[s], nk)
		})
		count := 0
		for _, sh := range outs { // deterministic shard order = ascending bits
			for p := 0; p < nk; p++ {
				cs.perKernel[p][li].raw = append(cs.perKernel[p][li].raw, sh.raw[p]...)
			}
			for _, b := range sh.specials {
				cs.specials[li][b] = struct{}{}
			}
			cs.rawCount += sh.rawCount
			count += sh.count
		}
		if logf != nil {
			logf("  level %v: %d poly-path inputs, %d structural specials",
				lvl, count, len(cs.specials[li]))
		}
	}

	// Sort and merge, one independent (kernel, level) unit per worker; the
	// evicted inputs are collected per unit and folded into the shared
	// per-level special sets after the join.
	units := nk * len(levels)
	evicted := make([][]uint64, units)
	parallel.ForEach(workers, units, func(u int) {
		p, li := u/len(levels), u%len(levels)
		lc := &cs.perKernel[p][li]
		sort.Slice(lc.raw, func(i, j int) bool { return lc.raw[i].r < lc.raw[j].r })
		lc.merged = mergeRaw(lc.raw, func(xbits uint64) {
			evicted[u] = append(evicted[u], xbits)
		})
		// Singleton rows covering at most two inputs (exact results such
		// as 10^k for exp10) pin a coefficient combination to one double
		// each and force the exact LP on every sample; a special-case
		// table entry is cheaper in both generation time and runtime —
		// this is where a share of the paper's "special case inputs"
		// comes from. Rows shared by many inputs (e.g. exp2's r = 0,
		// owned by every integer input) stay as equality constraints.
		kept := lc.merged[:0]
		for _, m := range lc.merged {
			//lint:ignore floateq lo and hi are stored merged bounds; identical bits mark an equality row.
			if m.lo == m.hi && m.inputs <= 2 {
				evicted[u] = append(evicted[u], lc.inputsOfRow(m.r)...)
				continue
			}
			kept = append(kept, m)
		}
		lc.merged = kept
	})
	for u, ev := range evicted {
		li := u % len(levels)
		for _, xb := range ev {
			cs.specials[li][xb] = struct{}{}
		}
	}
	return cs, nil
}

// mergeRaw intersects runs of equal reduced input. A raw constraint that
// would empty the running intersection is evicted to the special list (its
// freedom is incompatible with the other inputs sharing the reduced input).
func mergeRaw(raw []rawConstraint, evict func(xbits uint64)) []mergedRow {
	var out []mergedRow
	i := 0
	for i < len(raw) {
		j := i
		row := mergedRow{r: raw[i].r, lo: raw[i].lo, hi: raw[i].hi, inputs: 1}
		//lint:ignore floateq rows sharing one reduced input carry identical stored bits; the merge groups by that exact key.
		for j++; j < len(raw) && raw[j].r == row.r; j++ {
			lo := math.Max(row.lo, raw[j].lo)
			hi := math.Min(row.hi, raw[j].hi)
			if lo > hi {
				evict(raw[j].xbits)
				continue
			}
			row.lo, row.hi = lo, hi
			row.inputs++
		}
		out = append(out, row)
		i = j
	}
	return out
}

// inputsOfRow returns the input bit patterns whose raw constraints merged
// into the row at reduced input r (binary search over the sorted raw
// slice).
func (lc *levelConstraints) inputsOfRow(r float64) []uint64 {
	lo := sort.Search(len(lc.raw), func(i int) bool { return lc.raw[i].r >= r })
	var out []uint64
	//lint:ignore floateq r is a stored row key re-presented verbatim; the scan matches its exact bits.
	for i := lo; i < len(lc.raw) && lc.raw[i].r == r; i++ {
		out = append(out, lc.raw[i].xbits)
	}
	return out
}

func (cs *constraintSet) describe() string {
	total := 0
	for _, pk := range cs.perKernel {
		for _, lc := range pk {
			total += len(lc.merged)
		}
	}
	return fmt.Sprintf("%d raw constraints, %d merged rows", cs.rawCount, total)
}
