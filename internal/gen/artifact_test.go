package gen

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/pipeline"
)

// The artifact codecs must satisfy two properties for the warm-cache
// bit-identity contract to hold: encode∘decode is the identity on payload
// bytes (a reloaded artifact re-encodes to exactly the bytes on disk), and
// any truncation or bit flip of a sealed artifact surfaces as an error —
// never as a silently partial value.

// specialF64s are adversarial float payloads: NaN, infinities and signed
// zero must round-trip bit-identically through the IEEE-bits encoding.
var specialF64s = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, math.MaxFloat64,
}

// pick returns a random float64, occasionally one of the special values.
func pick(rng *rand.Rand) float64 {
	if rng.Intn(4) == 0 {
		return specialF64s[rng.Intn(len(specialF64s))]
	}
	return math.Float64frombits(rng.Uint64())
}

func randRawSet(rng *rand.Rand) *rawSet {
	nk, nl := rng.Intn(3), rng.Intn(3)
	rs := &rawSet{rawCount: rng.Intn(1000)}
	rs.raw = make([][][]rawConstraint, nk)
	for p := range rs.raw {
		rs.raw[p] = make([][]rawConstraint, nl)
		for li := range rs.raw[p] {
			raw := make([]rawConstraint, 0, rng.Intn(4))
			for i := cap(raw); i > 0; i-- {
				raw = append(raw, rawConstraint{
					r: pick(rng), lo: pick(rng), hi: pick(rng), xbits: rng.Uint64(),
				})
			}
			rs.raw[p][li] = raw
		}
	}
	rs.specials = make([][]uint64, rng.Intn(3))
	for li := range rs.specials {
		sp := make([]uint64, 0, rng.Intn(4))
		for i := cap(sp); i > 0; i-- {
			sp = append(sp, rng.Uint64())
		}
		rs.specials[li] = sp
	}
	return rs
}

func randConstraintSet(rng *rand.Rand) *constraintSet {
	nk, nl := rng.Intn(3), rng.Intn(3)
	cs := &constraintSet{rawCount: rng.Intn(1000)}
	cs.perKernel = make([][]levelConstraints, nk)
	for p := range cs.perKernel {
		cs.perKernel[p] = make([]levelConstraints, nl)
		for li := range cs.perKernel[p] {
			lc := &cs.perKernel[p][li]
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				lc.merged = append(lc.merged, mergedRow{
					r: pick(rng), lo: pick(rng), hi: pick(rng), inputs: int32(rng.Intn(100)),
				})
				in := make([]uint64, 0, rng.Intn(3))
				for j := cap(in); j > 0; j-- {
					in = append(in, rng.Uint64())
				}
				lc.rowInputs = append(lc.rowInputs, in)
			}
		}
	}
	cs.specials = make([]map[uint64]struct{}, rng.Intn(3))
	for li := range cs.specials {
		set := make(map[uint64]struct{})
		for i := rng.Intn(4); i > 0; i-- {
			set[rng.Uint64()] = struct{}{}
		}
		cs.specials[li] = set
	}
	return cs
}

func randResult(rng *rand.Rand) *Result {
	res := &Result{
		Fn:            bigmath.Func(rng.Intn(int(bigmath.NumFuncs))),
		ProgressiveRO: rng.Intn(2) == 0,
	}
	for i := rng.Intn(3); i > 0; i-- {
		res.Levels = append(res.Levels, fp.MustFormat(10+rng.Intn(20), 8))
	}
	for k := rng.Intn(3); k > 0; k-- {
		var kp KernelPoly
		kp.Structure.Offset = rng.Intn(4)
		kp.Structure.Stride = 1 + rng.Intn(2)
		for p := rng.Intn(3); p > 0; p-- {
			pc := Piece{Lo: pick(rng), Hi: pick(rng)}
			for i := rng.Intn(5); i > 0; i-- {
				pc.Coeffs = append(pc.Coeffs, pick(rng))
			}
			for i := rng.Intn(4); i > 0; i-- {
				pc.LevelTerms = append(pc.LevelTerms, rng.Intn(8))
			}
			kp.Pieces = append(kp.Pieces, pc)
		}
		res.Kernels = append(res.Kernels, kp)
	}
	res.Specials = make([][]SpecialInput, rng.Intn(3))
	for li := range res.Specials {
		for i := rng.Intn(4); i > 0; i-- {
			res.Specials[li] = append(res.Specials[li], SpecialInput{X: pick(rng), Proxy: pick(rng)})
		}
	}
	res.Stats.RawConstraints = rng.Intn(100000)
	res.Stats.MergedRows = rng.Intn(100000)
	res.Stats.Iters = rng.Intn(1000)
	res.Stats.Lucky = rng.Intn(1000)
	res.Stats.ExactSolves = rng.Intn(1000)
	res.Stats.Attempts = rng.Intn(1000)
	return res
}

// checkRoundTrip seals an encoded value, unseals and decodes it, and
// demands the reloaded value re-encode to the exact payload bytes
// (byte-level identity is stronger than structural equality and is the
// property the warm-cache contract rests on).
func checkRoundTrip[T any](t *testing.T, c pipeline.Codec[T], v T) bool {
	t.Helper()
	var e pipeline.Enc
	c.Encode(&e, v)
	payload := e.Bytes()
	sealed := pipeline.Seal(c.Name, c.Version, payload)
	got, err := pipeline.Unseal(sealed, c.Name, c.Version)
	if err != nil {
		t.Errorf("%s: Unseal of fresh artifact: %v", c.Name, err)
		return false
	}
	d := pipeline.NewDec(got)
	v2, err := c.Decode(d)
	if err != nil {
		t.Errorf("%s: Decode of fresh artifact: %v", c.Name, err)
		return false
	}
	if err := d.Done(); err != nil {
		t.Errorf("%s: trailing bytes after decode: %v", c.Name, err)
		return false
	}
	var e2 pipeline.Enc
	c.Encode(&e2, v2)
	if !bytes.Equal(e2.Bytes(), payload) {
		t.Errorf("%s: decoded value re-encodes differently (%d vs %d bytes)",
			c.Name, len(e2.Bytes()), len(payload))
		return false
	}
	return true
}

// checkTruncation verifies that every proper prefix of the payload fails
// to decode: either Decode itself errors or Done reports the imbalance —
// a truncated payload must never produce a clean value.
func checkTruncation[T any](t *testing.T, c pipeline.Codec[T], v T, rng *rand.Rand) bool {
	t.Helper()
	var e pipeline.Enc
	c.Encode(&e, v)
	payload := e.Bytes()
	if len(payload) == 0 {
		return true
	}
	cuts := []int{0, len(payload) / 2, len(payload) - 1, rng.Intn(len(payload))}
	for _, cut := range cuts {
		d := pipeline.NewDec(payload[:cut])
		if _, err := c.Decode(d); err == nil && d.Done() == nil {
			t.Errorf("%s: truncation to %d/%d bytes decoded cleanly", c.Name, cut, len(payload))
			return false
		}
	}
	return true
}

func quickConf() *quick.Config { return &quick.Config{MaxCount: 60} }

func TestEnumCodecProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randRawSet(rng)
		return checkRoundTrip(t, enumCodec, rs) && checkTruncation(t, enumCodec, rs, rng)
	}, quickConf()); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintCodecProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randConstraintSet(rng)
		return checkRoundTrip(t, constraintCodec, cs) && checkTruncation(t, constraintCodec, cs, rng)
	}, quickConf()); err != nil {
		t.Fatal(err)
	}
}

func TestResultCodecProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := randResult(rng)
		return checkRoundTrip(t, ResultCodec, res) && checkTruncation(t, ResultCodec, res, rng)
	}, quickConf()); err != nil {
		t.Fatal(err)
	}
}

// TestSealedBitFlip flips single bits across a sealed artifact and demands
// every flip is caught by the frame checksum.
func TestSealedBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res := randResult(rng)
	var e pipeline.Enc
	ResultCodec.Encode(&e, res)
	sealed := pipeline.Seal(ResultCodec.Name, ResultCodec.Version, e.Bytes())
	for trial := 0; trial < 200; trial++ {
		pos, bit := rng.Intn(len(sealed)), uint(rng.Intn(8))
		mut := append([]byte(nil), sealed...)
		mut[pos] ^= 1 << bit
		if _, err := pipeline.Unseal(mut, ResultCodec.Name, ResultCodec.Version); !errors.Is(err, pipeline.ErrCorrupt) {
			t.Fatalf("bit flip at byte %d bit %d: Unseal returned %v, want ErrCorrupt", pos, bit, err)
		}
	}
}

// TestResultCodecRejectsBadFunc ensures a decoded function id outside the
// registry is corruption, not a latent panic at Eval time.
func TestResultCodecRejectsBadFunc(t *testing.T) {
	var e pipeline.Enc
	e.Int(int(bigmath.NumFuncs) + 3)
	_, err := ResultCodec.Decode(pipeline.NewDec(e.Bytes()))
	if !errors.Is(err, pipeline.ErrCorrupt) {
		t.Fatalf("decode of unknown func id: %v, want ErrCorrupt", err)
	}
}
