// Package gen implements the RLIBM-Prog progressive polynomial generator:
// it enumerates every input of every representation level, computes
// correctly rounded results with the oracle, derives reduced rounding
// intervals through the inverse output compensation, and solves the
// resulting huge low-dimensional constraint system with the Clarkson
// randomized solver, escalating term counts, sub-domain splits and
// special-case inputs exactly as §3 of the paper describes.
//
// The generator is organized as an explicit staged pipeline:
//
//	Enumerate (enumerate.go)  oracle → raw rounding-interval constraints
//	Reduce    (reduce.go)     raw constraints → merged constraint set
//	Solve     (solve.go)      Clarkson per piece → progressive polynomials
//	Verify    (internal/verify, staged by internal/cli)
//
// Each stage consumes and produces a typed artifact (artifact.go) that can
// be checkpointed in a content-addressed store (internal/pipeline): see
// GenerateStaged. Generate is the storeless entry point; it runs the same
// stages in memory.
package gen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/oracle"
	"repro/internal/poly"
	"repro/internal/reduction"
)

// Options configures a generation run.
type Options struct {
	// Levels lists the representations from smallest to largest (e.g.
	// bfloat16, tensorfloat32, float); the largest level's constraints are
	// built for its 2-bit round-to-odd extension, the others for
	// round-to-nearest-even, as in the paper. All levels must share the
	// exponent width 8.
	Levels []fp.Format
	// MaxTerms bounds the term count of the full polynomial (default 8).
	MaxTerms int
	// MaxPieces bounds sub-domain splitting (default 4, as in Table 1).
	MaxPieces int
	// MaxSpecials bounds LP-violation special-case inputs per sub-domain
	// (default 4, as in Table 1).
	MaxSpecials int
	// ClarksonIters bounds sampling iterations per solve attempt
	// (default 220).
	ClarksonIters int
	// ForcePieces, when positive, pins the sub-domain count instead of the
	// adaptive 1→MaxPieces escalation — this is how the RLibm-All baseline
	// (large piecewise tables, single level) is generated.
	ForcePieces int
	// ProgressiveRO constrains the lower levels with round-to-odd
	// intervals at level+2 bits instead of round-to-nearest: the truncated
	// progressive evaluations then produce correctly rounded results for
	// *all five* rounding modes (and every narrower format), not just rn —
	// an extension beyond the paper's Table 2 guarantee, typically at the
	// cost of one extra term per lower level.
	ProgressiveRO bool
	// Seed drives all randomness; runs are reproducible. Every concurrent
	// Clarkson solve derives its own generator from Seed and its (kernel,
	// piece-count, piece) coordinates, so the output does not depend on
	// Workers.
	Seed int64
	// Workers bounds the worker goroutines of the enumeration, solve,
	// specials-resolution and merge stages: 0 means one per logical CPU,
	// 1 runs everything inline. The generated result is bit-identical for
	// every value.
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(string, ...interface{})
	// Oracle, when non-nil, is used instead of a fresh one — sharing it
	// with the verification pass reuses its identity caches.
	Oracle *oracle.Oracle
	// Faults, when non-nil, enables the generator's fault-injection sites
	// (see internal/fault): Clarkson sample/budget failures and solve-pool
	// worker panics. Injected solver faults are recovered by replaying the
	// poisoned piece solve with an identically seeded generator, so a
	// recovered run is bit-identical to a fault-free one; unrecoverable
	// plans surface a typed *fault.Error. Test-only; nil in production.
	Faults *fault.Plan
}

func (o *Options) defaults() {
	if len(o.Levels) == 0 {
		o.Levels = StandardLevels(DefaultLargestBits)
	}
	if o.MaxTerms == 0 {
		o.MaxTerms = 8
	}
	if o.MaxPieces == 0 {
		o.MaxPieces = 4
	}
	if o.MaxSpecials == 0 {
		o.MaxSpecials = 4
	}
	if o.ClarksonIters == 0 {
		o.ClarksonIters = 220
	}
}

// DefaultLargestBits is the default width of the largest representation:
// the paper uses 32; the default experiments here use 22 so that exhaustive
// enumeration and verification of every function stay single-core-feasible
// (see DESIGN.md §3). Every code path is width-parametric.
const DefaultLargestBits = 22

// StandardLevels returns the paper's representation triple with the given
// largest width: bfloat16, tensorfloat32 and F(largestBits,8).
func StandardLevels(largestBits int) []fp.Format {
	return []fp.Format{fp.Bfloat16, fp.TensorFloat32, fp.MustFormat(largestBits, 8)}
}

// Piece is one sub-domain of a generated kernel polynomial.
type Piece struct {
	Lo, Hi float64
	Coeffs []float64
	// LevelTerms[li] is the number of leading coefficients to evaluate for
	// level li; the last entry equals len(Coeffs).
	LevelTerms []int
}

// KernelPoly is one generated kernel polynomial (functions with two
// kernels produce two).
type KernelPoly struct {
	Structure poly.Structure
	Pieces    []Piece
}

// SpecialInput is a per-input patch: when serving X at the level owning
// this entry, return Proxy rounded to the requested format and mode. Proxy
// is the decoded round-to-odd result at level+2 bits, so one double is
// correct for every rounding mode.
type SpecialInput struct {
	X     float64
	Proxy float64
}

// Stats reports generation effort. Duration, Oracle and Retries are
// volatile — they depend on cache warmth, wall clock or an injection plan —
// and are therefore excluded from the result artifact; every other field
// is deterministic.
type Stats struct {
	Duration       time.Duration
	RawConstraints int
	MergedRows     int
	Iters          int
	Lucky          int
	ExactSolves    int
	Attempts       int
	Oracle         oracle.Stats
	// Retries counts injected-fault piece replays in this run. A replay
	// reproduces the no-fault solve bit-for-bit, so the count is excluded
	// from the artifact: a recovered run's artifact equals the no-fault
	// artifact byte for byte.
	Retries int
	// SeedRotations, BudgetEscalations and Degradations count rescue-
	// ladder rungs consumed by kernels whose baseline pieces × terms
	// search ran dry (see rescueRungs). Rescue engagement depends only on
	// Options — never on injected faults, which are replayed or aborted —
	// so these are deterministic and recorded in the solve artifact.
	SeedRotations     int
	BudgetEscalations int
	Degradations      int
}

// Result is a generated progressive polynomial implementation.
type Result struct {
	Fn       bigmath.Func
	Levels   []fp.Format
	Kernels  []KernelPoly
	Specials [][]SpecialInput // per level
	// ProgressiveRO records that the lower levels were generated against
	// round-to-odd intervals, extending their truncated-evaluation
	// guarantee to all rounding modes and narrower formats.
	ProgressiveRO bool
	Stats         Stats

	schemeOnce  sync.Once
	schemeCache reduction.Scheme
}

// Scheme returns (and caches) the reduction scheme of the result's
// function. It is safe for concurrent use: the verification workers all
// evaluate one shared Result.
func (res *Result) Scheme() reduction.Scheme {
	res.schemeOnce.Do(func() { res.schemeCache = reduction.ForFunc(res.Fn) })
	return res.schemeCache
}

// checkLevels validates the level list shared by Generate and Enumerate.
func checkLevels(levels []fp.Format) error {
	for _, l := range levels {
		if l.ExpBits() != 8 {
			return fmt.Errorf("gen: level %v: schemes support the 8-exponent-bit family only", l)
		}
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].Bits() <= levels[i-1].Bits() {
			return fmt.Errorf("gen: levels must be ordered by increasing width")
		}
	}
	return nil
}

// Enumerate runs only the constraint-enumeration and reduction stages of
// the pipeline — enumerate every input, query the oracle, derive and merge
// the rounding intervals — and reports the resulting system size.
// Benchmarks and tooling use it to measure the enumerate→oracle→interval
// hot path without the solve.
func Enumerate(fn bigmath.Func, opt Options) (rawConstraints, mergedRows int, err error) {
	return EnumerateStaged(context.Background(), fn, opt, nil)
}

// Generate runs the full RLIBM-Prog pipeline for fn in memory, with no
// artifact store or cancellation. It is exactly GenerateStaged with a nil
// store and a background context.
func Generate(fn bigmath.Func, opt Options) (*Result, error) {
	return GenerateStaged(context.Background(), fn, opt, nil)
}
