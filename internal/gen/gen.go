package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/bigmath"
	"repro/internal/clarkson"
	"repro/internal/fp"
	"repro/internal/oracle"
	"repro/internal/parallel"
	"repro/internal/poly"
	"repro/internal/reduction"
)

// Options configures a generation run.
type Options struct {
	// Levels lists the representations from smallest to largest (e.g.
	// bfloat16, tensorfloat32, float); the largest level's constraints are
	// built for its 2-bit round-to-odd extension, the others for
	// round-to-nearest-even, as in the paper. All levels must share the
	// exponent width 8.
	Levels []fp.Format
	// MaxTerms bounds the term count of the full polynomial (default 8).
	MaxTerms int
	// MaxPieces bounds sub-domain splitting (default 4, as in Table 1).
	MaxPieces int
	// MaxSpecials bounds LP-violation special-case inputs per sub-domain
	// (default 4, as in Table 1).
	MaxSpecials int
	// ClarksonIters bounds sampling iterations per solve attempt
	// (default 220).
	ClarksonIters int
	// ForcePieces, when positive, pins the sub-domain count instead of the
	// adaptive 1→MaxPieces escalation — this is how the RLibm-All baseline
	// (large piecewise tables, single level) is generated.
	ForcePieces int
	// ProgressiveRO constrains the lower levels with round-to-odd
	// intervals at level+2 bits instead of round-to-nearest: the truncated
	// progressive evaluations then produce correctly rounded results for
	// *all five* rounding modes (and every narrower format), not just rn —
	// an extension beyond the paper's Table 2 guarantee, typically at the
	// cost of one extra term per lower level.
	ProgressiveRO bool
	// Seed drives all randomness; runs are reproducible. Every concurrent
	// Clarkson solve derives its own generator from Seed and its (kernel,
	// piece-count, piece) coordinates, so the output does not depend on
	// Workers.
	Seed int64
	// Workers bounds the worker goroutines of the enumeration, solve,
	// specials-resolution and merge stages: 0 means one per logical CPU,
	// 1 runs everything inline. The generated result is bit-identical for
	// every value.
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(string, ...interface{})
	// Oracle, when non-nil, is used instead of a fresh one — sharing it
	// with the verification pass reuses its identity caches.
	Oracle *oracle.Oracle
}

func (o *Options) defaults() {
	if len(o.Levels) == 0 {
		o.Levels = StandardLevels(DefaultLargestBits)
	}
	if o.MaxTerms == 0 {
		o.MaxTerms = 8
	}
	if o.MaxPieces == 0 {
		o.MaxPieces = 4
	}
	if o.MaxSpecials == 0 {
		o.MaxSpecials = 4
	}
	if o.ClarksonIters == 0 {
		o.ClarksonIters = 220
	}
}

// DefaultLargestBits is the default width of the largest representation:
// the paper uses 32; the default experiments here use 22 so that exhaustive
// enumeration and verification of every function stay single-core-feasible
// (see DESIGN.md §3). Every code path is width-parametric.
const DefaultLargestBits = 22

// StandardLevels returns the paper's representation triple with the given
// largest width: bfloat16, tensorfloat32 and F(largestBits,8).
func StandardLevels(largestBits int) []fp.Format {
	return []fp.Format{fp.Bfloat16, fp.TensorFloat32, fp.MustFormat(largestBits, 8)}
}

// Piece is one sub-domain of a generated kernel polynomial.
type Piece struct {
	Lo, Hi float64
	Coeffs []float64
	// LevelTerms[li] is the number of leading coefficients to evaluate for
	// level li; the last entry equals len(Coeffs).
	LevelTerms []int
}

// KernelPoly is one generated kernel polynomial (functions with two
// kernels produce two).
type KernelPoly struct {
	Structure poly.Structure
	Pieces    []Piece
}

// SpecialInput is a per-input patch: when serving X at the level owning
// this entry, return Proxy rounded to the requested format and mode. Proxy
// is the decoded round-to-odd result at level+2 bits, so one double is
// correct for every rounding mode.
type SpecialInput struct {
	X     float64
	Proxy float64
}

// Stats reports generation effort.
type Stats struct {
	Duration       time.Duration
	RawConstraints int
	MergedRows     int
	Iters          int
	Lucky          int
	ExactSolves    int
	Attempts       int
	Oracle         oracle.Stats
}

// Result is a generated progressive polynomial implementation.
type Result struct {
	Fn       bigmath.Func
	Levels   []fp.Format
	Kernels  []KernelPoly
	Specials [][]SpecialInput // per level
	// ProgressiveRO records that the lower levels were generated against
	// round-to-odd intervals, extending their truncated-evaluation
	// guarantee to all rounding modes and narrower formats.
	ProgressiveRO bool
	Stats         Stats

	schemeOnce  sync.Once
	schemeCache reduction.Scheme
}

// Scheme returns (and caches) the reduction scheme of the result's
// function. It is safe for concurrent use: the verification workers all
// evaluate one shared Result.
func (res *Result) Scheme() reduction.Scheme {
	res.schemeOnce.Do(func() { res.schemeCache = reduction.ForFunc(res.Fn) })
	return res.schemeCache
}

// checkLevels validates the level list shared by Generate and Enumerate.
func checkLevels(levels []fp.Format) error {
	for _, l := range levels {
		if l.ExpBits() != 8 {
			return fmt.Errorf("gen: level %v: schemes support the 8-exponent-bit family only", l)
		}
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].Bits() <= levels[i-1].Bits() {
			return fmt.Errorf("gen: levels must be ordered by increasing width")
		}
	}
	return nil
}

// Enumerate runs only the constraint-enumeration stage of the pipeline —
// enumerate every input, query the oracle, derive and merge the rounding
// intervals — and reports the resulting system size. Benchmarks and tooling
// use it to measure the enumerate→oracle→interval hot path without the
// solve.
func Enumerate(fn bigmath.Func, opt Options) (rawConstraints, mergedRows int, err error) {
	opt.defaults()
	if err := checkLevels(opt.Levels); err != nil {
		return 0, 0, err
	}
	orc := opt.Oracle
	if orc == nil {
		orc = oracle.New(fn)
	}
	if orc.Func() != fn {
		return 0, 0, fmt.Errorf("gen: oracle is for %v, not %v", orc.Func(), fn)
	}
	cs, err := buildConstraints(fn, reduction.ForFunc(fn), orc, opt.Levels,
		opt.ProgressiveRO, opt.Workers, opt.Logf)
	if err != nil {
		return 0, 0, err
	}
	merged := 0
	for _, pk := range cs.perKernel {
		for _, lc := range pk {
			merged += len(lc.merged)
		}
	}
	return cs.rawCount, merged, nil
}

// Generate runs the full RLIBM-Prog pipeline for fn.
func Generate(fn bigmath.Func, opt Options) (*Result, error) {
	opt.defaults()
	if err := checkLevels(opt.Levels); err != nil {
		return nil, err
	}
	//lint:ignore wallclock duration statistic only; the value never feeds a coefficient.
	start := time.Now()
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	scheme := reduction.ForFunc(fn)
	orc := opt.Oracle
	if orc == nil {
		orc = oracle.New(fn)
	}
	if orc.Func() != fn {
		return nil, fmt.Errorf("gen: oracle is for %v, not %v", orc.Func(), fn)
	}

	logf("%v: enumerating %d levels ...", fn, len(opt.Levels))
	cs, err := buildConstraints(fn, scheme, orc, opt.Levels, opt.ProgressiveRO, opt.Workers, logf)
	if err != nil {
		return nil, err
	}
	logf("%v: %s", fn, cs.describe())

	res := &Result{
		Fn:            fn,
		Levels:        opt.Levels,
		Specials:      make([][]SpecialInput, len(opt.Levels)),
		ProgressiveRO: opt.ProgressiveRO,
	}

	for p := 0; p < scheme.NumPolys(); p++ {
		kp, err := solveKernel(fn, scheme, cs, p, opt, res, logf)
		if err != nil {
			return nil, err
		}
		res.Kernels = append(res.Kernels, *kp)
	}

	// Resolve special inputs: for every violated/evicted input, store the
	// all-modes-correct round-to-odd proxy of its level. The proxies are
	// independent oracle queries, computed on the pool over a flattened
	// (level, input) work list.
	type specialKey struct {
		li int
		b  uint64
	}
	var keys []specialKey
	for li, set := range cs.specials {
		for b := range set {
			//lint:ignore mapiter keys are fully sorted below before any use, erasing map order.
			keys = append(keys, specialKey{li, b})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].li != keys[j].li {
			return keys[i].li < keys[j].li
		}
		return keys[i].b < keys[j].b
	})
	resolved := make([]SpecialInput, len(keys))
	parallel.ForEach(opt.Workers, len(keys), func(i int) {
		lvl := opt.Levels[keys[i].li]
		ext := lvl.Extend(2)
		x := lvl.Decode(keys[i].b)
		proxy := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
		resolved[i] = SpecialInput{X: x, Proxy: proxy}
	})
	for i, k := range keys {
		res.Specials[k.li] = append(res.Specials[k.li], resolved[i])
	}
	for li := range res.Specials {
		sort.Slice(res.Specials[li], func(i, j int) bool {
			return res.Specials[li][i].X < res.Specials[li][j].X
		})
	}

	//lint:ignore wallclock duration statistic only; the value never feeds a coefficient.
	res.Stats.Duration = time.Since(start)
	res.Stats.RawConstraints = cs.rawCount
	for _, pk := range cs.perKernel {
		for _, lc := range pk {
			res.Stats.MergedRows += len(lc.merged)
		}
	}
	res.Stats.Oracle = orc.Stats()
	logf("%v: done in %v (%d attempts, %d iters, %d lucky, %d exact solves)",
		fn, res.Stats.Duration.Round(time.Millisecond), res.Stats.Attempts,
		res.Stats.Iters, res.Stats.Lucky, res.Stats.ExactSolves)
	return res, nil
}

// pieceSeed derives the deterministic RNG seed of one piece solve. Folding
// in the function, kernel index, the piece count of the current escalation
// attempt and the piece index (through a splitmix64-style finalizer) gives
// every concurrent Clarkson solve an independent stream whose draws cannot
// interleave with any other solve's, so generation is reproducible for
// every worker count.
func pieceSeed(seed int64, fn bigmath.Func, kernel, pieces, pi int) int64 {
	z := uint64(seed) ^ 0x70726f6772657373 // "progress"
	for _, v := range [...]uint64{uint64(fn), uint64(kernel), uint64(pieces), uint64(pi)} {
		z ^= v + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
	}
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// solveKernel finds a piecewise progressive polynomial for kernel p. Within
// one escalation attempt the sub-domain pieces are independent constraint
// systems; they are solved concurrently on the pool, each with its own
// deterministically seeded generator, and merged in piece order.
func solveKernel(fn bigmath.Func, scheme reduction.Scheme, cs *constraintSet, p int,
	opt Options, res *Result, logf func(string, ...interface{})) (*KernelPoly, error) {

	domLo, domHi := scheme.ReducedDomain()
	st := scheme.Structure(p)
	nLevels := len(opt.Levels)

	startPieces, maxPieces := 1, opt.MaxPieces
	if opt.ForcePieces > 0 {
		startPieces, maxPieces = opt.ForcePieces, opt.ForcePieces
	}
	for pieces := startPieces; pieces <= maxPieces; pieces *= 2 {
		bounds := splitDomain(domLo, domHi, pieces)
		type pieceOut struct {
			piece *Piece
			viols []violation
			stats solveStats
			found bool
		}
		outs := make([]pieceOut, pieces)
		parallel.ForEach(opt.Workers, pieces, func(pi int) {
			lo, hi := bounds[pi], bounds[pi+1]
			rows, rowMeta := collectRows(cs, p, lo, hi, pi == pieces-1, nLevels)
			rng := rand.New(rand.NewSource(pieceSeed(opt.Seed, fn, p, pieces, pi)))
			piece, viols, st2, found := solvePiece(rows, rowMeta, st, nLevels, opt, rng)
			if found {
				piece.Lo, piece.Hi = lo, hi
			}
			outs[pi] = pieceOut{piece: piece, viols: viols, stats: st2, found: found}
		})
		kp := &KernelPoly{Structure: st}
		ok := true
		var pending []violation
		for pi := 0; pi < pieces; pi++ {
			res.Stats.Attempts += outs[pi].stats.attempts
			res.Stats.Iters += outs[pi].stats.iters
			res.Stats.Lucky += outs[pi].stats.lucky
			res.Stats.ExactSolves += outs[pi].stats.exactSolves
			if !outs[pi].found {
				ok = false
				continue
			}
			kp.Pieces = append(kp.Pieces, *outs[pi].piece)
			pending = append(pending, outs[pi].viols...)
		}
		if ok {
			// Commit deferred specials: every input whose raw constraint
			// merged into a violated row.
			for _, v := range pending {
				for _, xb := range cs.perKernel[p][v.level].inputsOfRow(v.r) {
					cs.specials[v.level][xb] = struct{}{}
				}
			}
			logf("  kernel %d: %d piece(s), terms %v", p, len(kp.Pieces),
				kp.Pieces[0].LevelTerms)
			return kp, nil
		}
		logf("  kernel %d: %d piece(s) insufficient, splitting", p, pieces)
	}
	return nil, fmt.Errorf("gen: %v kernel %d unsolvable within %d pieces × %d terms",
		fn, p, opt.MaxPieces, opt.MaxTerms)
}

// rowMeta identifies the origin of each clarkson row.
type rowMeta struct {
	level  int
	r      float64
	inputs int32
}

// collectRows gathers the merged rows of kernel p with reduced input in
// [lo, hi) (closed above for the last piece), tagged by level.
func collectRows(cs *constraintSet, p int, lo, hi float64, lastPiece bool, nLevels int) ([]clarkson.Row, []rowMeta) {
	var rows []clarkson.Row
	var meta []rowMeta
	for li := 0; li < nLevels; li++ {
		for _, m := range cs.perKernel[p][li].merged {
			//lint:ignore floateq hi is a stored piece boundary; the exact match assigns the shared row to exactly one piece.
			if m.r < lo || m.r > hi || (m.r == hi && !lastPiece) {
				continue
			}
			rows = append(rows, clarkson.Row{X: m.r, Lo: m.lo, Hi: m.hi, Inputs: m.inputs})
			meta = append(meta, rowMeta{level: li, r: m.r, inputs: m.inputs})
		}
	}
	return rows, meta
}

// splitDomain returns n+1 boundaries splitting [lo, hi] evenly.
func splitDomain(lo, hi float64, n int) []float64 {
	b := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		b[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	b[0], b[n] = lo, hi
	return b
}

// solveStats is the solver-effort delta of one piece solve, merged into
// Stats in deterministic piece order by solveKernel.
type solveStats struct {
	attempts, iters, lucky, exactSolves int
}

// solvePiece searches term-count assignments for one sub-domain: the total
// term count k grows from 1 to MaxTerms, and for each k the lower levels'
// term counts escalate from their minima toward k, bumping the level with
// the most violations after each failed joint solve (§3.3: "we increment
// the number of terms used for the smaller bitwidth representations ...
// we increase the number of terms used for the largest representation when
// we are unable to find a progressive polynomial after increasing the
// terms used for the smaller representations"). rng must be exclusive to
// this call; solvePiece runs concurrently with other pieces.
func solvePiece(rows []clarkson.Row, meta []rowMeta, st poly.Structure, nLevels int,
	opt Options, rng *rand.Rand) (*Piece, []violation, solveStats, bool) {

	var stats solveStats
	if len(rows) == 0 {
		return &Piece{Coeffs: []float64{0}, LevelTerms: onesVector(nLevels, 1)}, nil, stats, true
	}
	xScale := 0.0
	for _, r := range rows {
		if a := math.Abs(r.X); a > xScale {
			xScale = a
		}
	}
	if xScale == 0 {
		xScale = 1
	}

	// Pre-compute each lower level's minimum viable term count by solving
	// that level's rows alone (necessary-condition pruning: the joint
	// system can only need more). This skips the hopeless low-term joint
	// attempts, which dominate wall time otherwise. Zero terms are allowed:
	// the paper's Table 1 reports functions whose bfloat16 path needs no
	// polynomial at all.
	minT := make([]int, nLevels)
	for li := 0; li < nLevels-1; li++ {
		minT[li] = minLevelTerms(rows, meta, li, st, xScale, opt, rng)
		if opt.Logf != nil {
			opt.Logf("    level %d minimum terms: %d", li, minT[li])
		}
	}

	for k := 1; k <= opt.MaxTerms; k++ {
		terms := make([]int, nLevels)
		feasibleStart := true
		for li := 0; li < nLevels-1; li++ {
			terms[li] = minT[li]
			if terms[li] > k {
				feasibleStart = false
			}
		}
		// Keep the vector monotone non-decreasing.
		for li := nLevels - 2; li > 0; li-- {
			if terms[li-1] > terms[li] {
				terms[li] = terms[li-1]
			}
		}
		if !feasibleStart {
			continue // some lower level needs more terms than k provides
		}
		terms[nLevels-1] = k
		for {
			assignTerms(rows, meta, terms)
			if opt.Logf != nil {
				opt.Logf("    attempting k=%d terms=%v ...", k, terms)
			}
			cfg := clarkson.Config{
				TotalTerms:       k,
				MaxIters:         opt.ClarksonIters,
				AcceptViolations: opt.MaxSpecials,
				XScale:           xScale,
				Structure:        st,
				Rng:              rng,
			}
			cr := clarkson.Solve(rows, cfg)
			stats.attempts++
			stats.iters += cr.Iters
			stats.lucky += cr.Lucky
			stats.exactSolves += cr.ExactSolves
			if opt.Logf != nil {
				opt.Logf("    attempt k=%d terms=%v rows=%d: found=%v infeasible=%v best=%d iters=%d lucky=%d exact=%d lastErr=%v",
					k, terms, len(rows), cr.Found, cr.Infeasible, cr.BestViolations, cr.Iters, cr.Lucky, cr.ExactSolves, cr.LastErr)
			}
			if cr.Found {
				// Violations become special inputs if the *input* count
				// stays within budget.
				viols, withinBudget := violationSpecials(cr.Violations, meta, opt.MaxSpecials)
				if withinBudget {
					return &Piece{Coeffs: cr.Coeffs, LevelTerms: append([]int(nil), terms...)},
						viols, stats, true
				}
			}
			// Escalate: bump the lower level with the most violations at
			// the best solution seen.
			viol := cr.Violations
			if len(viol) == 0 {
				viol = cr.BestViolated
			}
			bumped := bumpTerms(terms, k, viol, meta)
			if !bumped {
				break
			}
		}
	}
	return nil, nil, stats, false
}

// minLevelTerms returns the smallest t (possibly 0) for which level li's
// rows alone are satisfiable with a t-term polynomial, or MaxTerms when
// none is found (the joint search will then skip k < MaxTerms starts).
func minLevelTerms(rows []clarkson.Row, meta []rowMeta, li int, st poly.Structure,
	xScale float64, opt Options, rng *rand.Rand) int {

	var lvlRows []clarkson.Row
	for i := range rows {
		if meta[i].level == li {
			r := rows[i]
			lvlRows = append(lvlRows, r)
		}
	}
	if len(lvlRows) == 0 {
		return 0
	}
	// t = 0: the zero polynomial.
	zeroOK := true
	budget := 0
	for i := range lvlRows {
		if lvlRows[i].Lo > 0 || lvlRows[i].Hi < 0 {
			budget += int(lvlRows[i].Inputs)
			if lvlRows[i].Inputs <= 0 {
				budget++
			}
		}
	}
	if budget > opt.MaxSpecials {
		zeroOK = false
	}
	if zeroOK {
		return 0
	}
	for t := 1; t < opt.MaxTerms; t++ {
		for i := range lvlRows {
			lvlRows[i].Terms = t
		}
		cr := clarkson.Solve(lvlRows, clarkson.Config{
			TotalTerms:       t,
			MaxIters:         80,
			AcceptViolations: opt.MaxSpecials,
			XScale:           xScale,
			Structure:        st,
			Rng:              rng,
		})
		if cr.Found {
			return t
		}
	}
	return opt.MaxTerms
}

func onesVector(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// assignTerms writes the hypothesized per-level term counts into the rows.
func assignTerms(rows []clarkson.Row, meta []rowMeta, terms []int) {
	for i := range rows {
		rows[i].Terms = terms[meta[i].level]
	}
}

// violation identifies a violated merged row by level and reduced input.
type violation struct {
	level int
	r     float64
}

// violationSpecials converts violated rows to per-level special markers,
// enforcing the per-piece special budget in *input* counts (a merged row
// may cover many inputs).
func violationSpecials(violated []int, meta []rowMeta, budget int) ([]violation, bool) {
	total := 0
	var out []violation
	for _, vi := range violated {
		total += int(meta[vi].inputs)
		out = append(out, violation{level: meta[vi].level, r: meta[vi].r})
	}
	if total > budget {
		return nil, false
	}
	return out, true
}

// bumpTerms increases the term count of the lower level with the most
// violated rows (ties to the smallest level), cascading the increase
// upward so the vector stays monotone (terms[0] ≤ … ≤ terms[n-1] = k).
// It returns false when no lower level can grow further.
func bumpTerms(terms []int, k int, violated []int, meta []rowMeta) bool {
	n := len(terms)
	counts := make([]int, n)
	for _, vi := range violated {
		counts[meta[vi].level]++
	}
	best := -1
	for li := 0; li < n-1; li++ {
		if terms[li] >= k {
			continue
		}
		if best < 0 || counts[li] > counts[best] {
			best = li
		}
	}
	if best < 0 {
		return false
	}
	terms[best]++
	for li := best + 1; li < n-1; li++ {
		if terms[li] < terms[li-1] {
			terms[li] = terms[li-1]
		}
	}
	return true
}
