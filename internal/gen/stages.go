package gen

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bigmath"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/reduction"
)

// Stage names, as they appear in artifact keys and cache event logs.
const (
	StageEnumerate = "enumerate"
	StageReduce    = "reduce"
	StageSolve     = "solve"
	StageVerify    = "verify"
)

// stageKey addresses one stage artifact of fn. The enumerate and reduce
// stages key on the narrow enumFingerprint (levels + ProgressiveRO), so a
// seed or solver-budget change still reuses the expensive enumeration; the
// solve and verify stages key on the full fingerprint.
func stageKey(fn bigmath.Func, stage string, opt Options) pipeline.Key {
	fp := opt.Fingerprint()
	if stage == StageEnumerate || stage == StageReduce {
		fp = opt.enumFingerprint()
	}
	return pipeline.Key{Func: fn.String(), Stage: stage, Fingerprint: fp}
}

// VerifyKey returns the artifact key of the verify stage for fn under opt
// (defaults applied). internal/cli uses it with ResultCodec to stage the
// exhaustive verify/repair pass around internal/verify.
func VerifyKey(fn bigmath.Func, opt Options) pipeline.Key {
	opt.defaults()
	return stageKey(fn, StageVerify, opt)
}

// oracleFor returns the oracle to use for fn, validating a caller-provided
// one and arming it with the run's injection plan.
func oracleFor(fn bigmath.Func, opt Options) (*oracle.Oracle, error) {
	orc := opt.Oracle
	if orc == nil {
		orc = oracle.New(fn)
	}
	if orc.Func() != fn {
		return nil, fmt.Errorf("gen: oracle is for %v, not %v", orc.Func(), fn)
	}
	if opt.Faults != nil {
		orc.SetFaults(opt.Faults)
	}
	return orc, nil
}

// reduceStaged produces fn's merged constraint set, probing the store for
// the reduce artifact and, on a miss, for the enumerate artifact before
// falling back to the oracle-driven enumeration. A warm reduce artifact
// therefore skips the Enumerate stage entirely.
func reduceStaged(ctx context.Context, fn bigmath.Func, scheme reduction.Scheme, orc *oracle.Oracle,
	opt Options, store pipeline.Store, logf func(string, ...interface{})) (*constraintSet, error) {

	cs, _, err := pipeline.Run(ctx, store, stageKey(fn, StageReduce, opt), constraintCodec,
		pipeline.Logf(logf), func(ctx context.Context) (*constraintSet, error) {
			rs, _, err := pipeline.Run(ctx, store, stageKey(fn, StageEnumerate, opt), enumCodec,
				pipeline.Logf(logf), func(ctx context.Context) (*rawSet, error) {
					logf("%v: enumerating %d levels ...", fn, len(opt.Levels))
					rs, err := enumerate(ctx, fn, scheme, orc, opt.Levels, opt.ProgressiveRO, opt.Workers, logf)
					if err == nil {
						obs.SpanFrom(ctx).Add(obs.CtrRowsEnumerated, int64(rs.rawCount))
					}
					return rs, err
				})
			if err != nil {
				return nil, err
			}
			cs := reduce(rs, len(opt.Levels), opt.Workers)
			obs.SpanFrom(ctx).Add(obs.CtrRowsReduced, int64(cs.mergedRows()))
			return cs, nil
		})
	return cs, err
}

// EnumerateStaged is Enumerate with an artifact store: it runs (or loads)
// the Enumerate and Reduce stages and reports the system size. Tooling
// uses it to warm a cache without paying for a solve.
func EnumerateStaged(ctx context.Context, fn bigmath.Func, opt Options, store pipeline.Store) (rawConstraints, mergedRows int, err error) {
	opt.defaults()
	if err := checkLevels(opt.Levels); err != nil {
		return 0, 0, err
	}
	orc, err := oracleFor(fn, opt)
	if err != nil {
		return 0, 0, err
	}
	cs, err := reduceStaged(ctx, fn, reduction.ForFunc(fn), orc, opt, store, nopLogf(opt.Logf))
	if err != nil {
		return 0, 0, err
	}
	return cs.rawCount, cs.mergedRows(), nil
}

// GenerateStaged runs the full RLIBM-Prog pipeline for fn as explicit
// stages — Enumerate, Reduce, Solve — checkpointing each stage's artifact
// in store (nil store: everything runs in memory, exactly like Generate).
// The stages nest lazily: a warm solve artifact answers immediately; a
// cold solve probes the reduce artifact, which in turn probes the
// enumerate artifact, so an interrupted run resumes at stage granularity
// and sibling commands sharing one store enumerate each function exactly
// once. The returned result is bit-identical for every worker count and
// cache state.
func GenerateStaged(ctx context.Context, fn bigmath.Func, opt Options, store pipeline.Store) (*Result, error) {
	return GenerateStagedSharded(ctx, fn, opt, store, Shard{})
}

// GenerateStagedSharded is GenerateStaged for one process of a distributed
// run: the per-piece Clarkson solves inside the Solve stage become
// claimable work units in the shared store (see SolveShardKey and
// solvePiecesSharded), so N processes sharing one store split each
// escalation attempt's pieces and assemble the solve artifact
// bit-identically to a solo run for any partition. A solo shard (or nil
// store) is exactly GenerateStaged. Sharding is a separate parameter
// rather than an Options field because it never influences generated
// bytes — it must stay out of the options fingerprint.
func GenerateStagedSharded(ctx context.Context, fn bigmath.Func, opt Options, store pipeline.Store, shard Shard) (*Result, error) {
	opt.defaults()
	if err := checkLevels(opt.Levels); err != nil {
		return nil, err
	}
	//lint:ignore wallclock duration statistic only; the value never feeds a coefficient.
	start := time.Now()
	logf := nopLogf(opt.Logf)
	scheme := reduction.ForFunc(fn)
	orc, err := oracleFor(fn, opt)
	if err != nil {
		return nil, err
	}

	res, _, err := pipeline.Run(ctx, store, stageKey(fn, StageSolve, opt), ResultCodec,
		pipeline.Logf(logf), func(ctx context.Context) (*Result, error) {
			cs, err := reduceStaged(ctx, fn, scheme, orc, opt, store, logf)
			if err != nil {
				return nil, err
			}
			logf("%v: %s", fn, cs.describe())
			return solveAll(ctx, fn, scheme, cs, orc, opt, store, shard, logf)
		})
	if err != nil {
		return nil, err
	}

	//lint:ignore wallclock duration statistic only; the value never feeds a coefficient.
	res.Stats.Duration = time.Since(start) //lint:ignore nondetflow EmitGo renders coefficients and specials, never Stats; the object-granular taint cannot see the field split.
	res.Stats.Oracle = orc.Stats()
	logf("%v: done in %v (%d attempts, %d iters, %d lucky, %d exact solves)",
		fn, res.Stats.Duration.Round(time.Millisecond), res.Stats.Attempts,
		res.Stats.Iters, res.Stats.Lucky, res.Stats.ExactSolves)
	return res, nil
}

// nopLogf returns logf, or a no-op logger when logf is nil.
func nopLogf(logf func(string, ...interface{})) func(string, ...interface{}) {
	if logf == nil {
		return func(string, ...interface{}) {}
	}
	return logf
}
