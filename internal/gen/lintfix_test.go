package gen

import (
	"math"
	"strconv"
	"testing"
)

// TestHexFloatSpecials pins the emitted source forms for special values.
// The NaN arm was rewritten from the v != v idiom to math.IsNaN; every
// special and a round-trippable finite value must render unchanged.
func TestHexFloatSpecials(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "math.NaN()"},
		{0, "0"},
		{math.Copysign(0, -1), "math.Copysign(0, -1)"},
	}
	for _, tc := range cases {
		if got := hexFloat(tc.v); got != tc.want {
			t.Errorf("hexFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	// A finite value renders as a hex literal that parses back bit-exactly.
	for _, v := range []float64{1.5, math.Pi, -0x1p-1074, math.MaxFloat64} {
		s := hexFloat(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || math.Float64bits(back) != math.Float64bits(v) {
			t.Errorf("hexFloat(%v) = %q does not round-trip (%v)", v, s, err)
		}
	}
}
