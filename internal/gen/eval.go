package gen

import (
	"sort"

	"repro/internal/fp"
)

// LevelFor returns the index of the level that serves queries for the
// format f: the smallest level whose width is ≥ f's. ok is false when f is
// wider than the largest level.
func (res *Result) LevelFor(f fp.Format) (int, bool) {
	for li, lvl := range res.Levels {
		if f.Bits() <= lvl.Bits() {
			return li, true
		}
	}
	return 0, false
}

// ServingLevel picks the level whose evaluation is *guaranteed* for a
// query (f, mode): a lower level's truncated evaluation is certified only
// for that level's exact format under round-to-nearest-even (its
// constraints are rn rounding intervals); every other format/mode
// combination relies on the round-to-odd theorem and must use the largest
// level's full evaluation. ok is false when f is wider than the largest
// level.
func (res *Result) ServingLevel(f fp.Format, mode fp.Mode) (int, bool) {
	last := len(res.Levels) - 1
	if f.Bits() > res.Levels[last].Bits() {
		return 0, false
	}
	if mode == fp.RoundNearestEven || res.ProgressiveRO {
		for li, lvl := range res.Levels[:last] {
			if res.ProgressiveRO {
				// RO-generated lower levels serve every format up to their
				// width under every mode.
				if f.Bits() <= lvl.Bits() {
					return li, true
				}
				continue
			}
			if lvl == f {
				return li, true
			}
		}
	}
	return last, true
}

// Eval evaluates the generated implementation: input x (which must be a
// value of the level li's format), evaluated with level li's progressive
// term counts, rounded into out under mode. This is the reference code
// path: special-path check, special-input table, range reduction,
// structured Horner with the level's term count, output compensation,
// rounding. The compiled batch kernels of internal/eval are pinned
// bit-identical to this function; a semantic change here must be matched
// there (the exhaustive equivalence tests in internal/eval catch drift).
func (res *Result) Eval(x float64, li int, out fp.Format, mode fp.Mode) uint64 {
	scheme := res.Scheme()
	ctx, regular := scheme.Reduce(x)
	if !regular {
		return out.FromFloat64(scheme.Special(x), mode)
	}
	if sp := res.Specials[li]; len(sp) > 0 {
		i := sort.Search(len(sp), func(i int) bool { return sp[i].X >= x })
		//lint:ignore floateq special-table keys store the exact input bits; the lookup hit test is bit-exact by construction.
		if i < len(sp) && sp[i].X == x {
			return out.FromFloat64(sp[i].Proxy, mode)
		}
	}
	var y0, y1 float64
	y0 = evalKernel(&res.Kernels[0], li, ctx.R)
	if len(res.Kernels) > 1 {
		y1 = evalKernel(&res.Kernels[1], li, ctx.R)
	}
	return out.FromFloat64(scheme.Compensate(ctx, y0, y1), mode)
}

// EvalValue is Eval without the final rounding; used by the benchmark
// harness to time the computation kernel itself.
func (res *Result) EvalValue(x float64, li int) float64 {
	scheme := res.Scheme()
	ctx, regular := scheme.Reduce(x)
	if !regular {
		return scheme.Special(x)
	}
	if sp := res.Specials[li]; len(sp) > 0 {
		i := sort.Search(len(sp), func(i int) bool { return sp[i].X >= x })
		//lint:ignore floateq special-table keys store the exact input bits; the lookup hit test is bit-exact by construction.
		if i < len(sp) && sp[i].X == x {
			return sp[i].Proxy
		}
	}
	var y0, y1 float64
	y0 = evalKernel(&res.Kernels[0], li, ctx.R)
	if len(res.Kernels) > 1 {
		y1 = evalKernel(&res.Kernels[1], li, ctx.R)
	}
	return scheme.Compensate(ctx, y0, y1)
}

func evalKernel(kp *KernelPoly, li int, r float64) float64 {
	p := &kp.Pieces[0]
	if len(kp.Pieces) > 1 {
		p = findPiece(kp.Pieces, r)
	}
	return kp.Structure.Eval(p.Coeffs, p.LevelTerms[li], r)
}

// findPiece locates the sub-domain containing r by binary search over the
// consecutive piece boundaries (pieces own [Lo, Hi), the last also owns its
// Hi) — the same rule the generator uses to assign constraints.
func findPiece(pieces []Piece, r float64) *Piece {
	lo, hi := 0, len(pieces)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r < pieces[mid].Hi {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return &pieces[lo]
}

// CoefficientBytes is the Table 1 storage metric: 8 bytes per stored
// coefficient across all kernels and pieces.
func (res *Result) CoefficientBytes() int {
	n := 0
	for _, k := range res.Kernels {
		for _, p := range k.Pieces {
			n += 8 * len(p.Coeffs)
		}
	}
	return n
}

// NumPieces returns the sub-domain counts per kernel.
func (res *Result) NumPieces() []int {
	out := make([]int, len(res.Kernels))
	for i, k := range res.Kernels {
		out[i] = len(k.Pieces)
	}
	return out
}

// MaxDegree returns the maximum polynomial degree per kernel at level li.
func (res *Result) MaxDegree(li int) []int {
	out := make([]int, len(res.Kernels))
	for i, k := range res.Kernels {
		d := 0
		for _, p := range k.Pieces {
			if dd := k.Structure.Degree(p.LevelTerms[li]); dd > d {
				d = dd
			}
		}
		out[i] = d
	}
	return out
}

// TermsAt returns the per-kernel term counts at level li (max over pieces).
func (res *Result) TermsAt(li int) []int {
	out := make([]int, len(res.Kernels))
	for i, k := range res.Kernels {
		t := 0
		for _, p := range k.Pieces {
			if p.LevelTerms[li] > t {
				t = p.LevelTerms[li]
			}
		}
		out[i] = t
	}
	return out
}

// NumSpecials returns the per-level count of special-case inputs.
func (res *Result) NumSpecials() []int {
	out := make([]int, len(res.Specials))
	for i, s := range res.Specials {
		out[i] = len(s)
	}
	return out
}

// AddSpecial patches one input at one level (used by verification repair).
func (res *Result) AddSpecial(li int, x, proxy float64) {
	sp := res.Specials[li]
	i := sort.Search(len(sp), func(i int) bool { return sp[i].X >= x })
	//lint:ignore floateq special-table keys store the exact input bits; the lookup hit test is bit-exact by construction.
	if i < len(sp) && sp[i].X == x {
		sp[i].Proxy = proxy
		return
	}
	sp = append(sp, SpecialInput{})
	copy(sp[i+1:], sp[i:])
	sp[i] = SpecialInput{X: x, Proxy: proxy}
	res.Specials[li] = sp
}
