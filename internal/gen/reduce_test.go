package gen

import (
	"testing"
)

func TestMergeRaw(t *testing.T) {
	raw := []rawConstraint{
		{r: 1, lo: 0, hi: 10, xbits: 1},
		{r: 1, lo: 2, hi: 8, xbits: 2},
		{r: 1, lo: 9, hi: 12, xbits: 3}, // conflicts with the running [2,8]
		{r: 2, lo: -1, hi: 1, xbits: 4},
		{r: 3, lo: 5, hi: 5, xbits: 5}, // singleton
	}
	var evicted []uint64
	rows, inputs := mergeRaw(raw, func(xb uint64) { evicted = append(evicted, xb) })
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].r != 1 || rows[0].lo != 2 || rows[0].hi != 8 || rows[0].inputs != 2 {
		t.Errorf("row 0: %+v", rows[0])
	}
	if len(evicted) != 1 || evicted[0] != 3 {
		t.Errorf("evicted: %v", evicted)
	}
	if rows[2].lo != rows[2].hi {
		t.Errorf("singleton row: %+v", rows[2])
	}
	// Each row's input list covers its whole run, evicted inputs included:
	// a violated row turns all of them into special-case entries.
	if len(inputs) != 3 {
		t.Fatalf("inputs: %v", inputs)
	}
	if got := inputs[0]; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("row 0 inputs: %v", got)
	}
	if got := inputs[1]; len(got) != 1 || got[0] != 4 {
		t.Errorf("row 1 inputs: %v", got)
	}
}

func TestSplitDomainAndBump(t *testing.T) {
	b := splitDomain(0, 1, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 1 || b[2] != 0.5 {
		t.Errorf("splitDomain: %v", b)
	}
	// bumpTerms cascades to keep monotonicity.
	terms := []int{2, 2, 5}
	meta := []rowMeta{{level: 0}, {level: 0}, {level: 1}}
	if !bumpTerms(terms, 5, []int{0, 1}, meta) {
		t.Fatal("bump failed")
	}
	if terms[0] != 3 || terms[1] != 3 {
		t.Errorf("terms after bump: %v", terms)
	}
	// Exhausted: all lower levels at k.
	terms = []int{5, 5, 5}
	if bumpTerms(terms, 5, nil, meta) {
		t.Error("bump should fail when lower levels are maxed")
	}
}
