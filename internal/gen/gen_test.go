package gen

import (
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
)

// Small end-to-end run: every function, two small levels, exhaustive
// correctness via the eval path (the full verify package adds repair; here
// generation alone must already be near-perfect).
func TestGenerateSmallEndToEnd(t *testing.T) {
	levels := []fp.Format{fp.MustFormat(12, 8), fp.MustFormat(14, 8)}
	for _, fn := range bigmath.AllFuncs {
		fn := fn
		t.Run(fn.String(), func(t *testing.T) {
			res, err := Generate(fn, Options{Levels: levels, Seed: 7})
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if len(res.Kernels) == 0 || len(res.Kernels[0].Pieces) == 0 {
				t.Fatal("no polynomial generated")
			}
			// Structural invariants.
			for _, k := range res.Kernels {
				for _, p := range k.Pieces {
					if p.LevelTerms[len(levels)-1] != len(p.Coeffs) {
						t.Errorf("last level terms %d != coeff count %d",
							p.LevelTerms[len(levels)-1], len(p.Coeffs))
					}
					for li := 1; li < len(levels); li++ {
						if p.LevelTerms[li-1] > p.LevelTerms[li] {
							t.Errorf("non-monotone terms: %v", p.LevelTerms)
						}
					}
				}
			}
			// Exhaustive correctness per level (rn for the lower level, all
			// standard modes for the largest, as the paper promises).
			for li, lvl := range levels {
				modes := []fp.Mode{fp.RoundNearestEven}
				if li == len(levels)-1 {
					modes = fp.StandardModes
				}
				ext := lvl.Extend(2)
				wrong := 0
				var firstBad uint64
				for b := uint64(0); b < lvl.NumValues(); b++ {
					x := lvl.Decode(b)
					roVal := ext.Decode(oracleResult(fn, x, ext))
					for _, m := range modes {
						want := lvl.FromFloat64(roVal, m)
						got := res.Eval(x, li, lvl, m)
						if got != want {
							if wrong == 0 {
								firstBad = b
							}
							wrong++
						}
					}
				}
				if wrong > 0 {
					x := lvl.Decode(firstBad)
					t.Errorf("level %v: %d wrong results (first at bits %#x = %g)",
						lvl, wrong, firstBad, x)
				}
			}
			t.Logf("%v: pieces=%v terms(last)=%v specials=%v coeffBytes=%d iters=%d",
				fn, res.NumPieces(), res.TermsAt(len(levels)-1), res.NumSpecials(),
				res.CoefficientBytes(), res.Stats.Iters)
		})
	}
}

func oracleResult(fn bigmath.Func, x float64, ext fp.Format) uint64 {
	return bigmath.CorrectlyRounded(fn, x, ext, fp.RoundToOdd)
}

func TestLevelFor(t *testing.T) {
	res := &Result{Levels: StandardLevels(25)}
	if li, ok := res.LevelFor(fp.Bfloat16); !ok || li != 0 {
		t.Errorf("bf16 → %d", li)
	}
	if li, ok := res.LevelFor(fp.MustFormat(18, 8)); !ok || li != 1 {
		t.Errorf("F18 → %d", li)
	}
	if li, ok := res.LevelFor(fp.MustFormat(25, 8)); !ok || li != 2 {
		t.Errorf("F25 → %d", li)
	}
	if _, ok := res.LevelFor(fp.Float32); ok {
		t.Error("F32 should not be served by F25 levels")
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Generate(bigmath.Ln, Options{Levels: []fp.Format{fp.Float16}}); err == nil {
		t.Error("non-8-bit-exponent level accepted")
	}
	if _, err := Generate(bigmath.Ln, Options{Levels: []fp.Format{fp.TensorFloat32, fp.Bfloat16}}); err == nil {
		t.Error("unordered levels accepted")
	}
}

func TestAddSpecial(t *testing.T) {
	res := &Result{Levels: StandardLevels(25), Specials: make([][]SpecialInput, 3)}
	res.AddSpecial(0, 2.0, 5.0)
	res.AddSpecial(0, 1.0, 4.0)
	res.AddSpecial(0, 2.0, 6.0) // overwrite
	sp := res.Specials[0]
	if len(sp) != 2 || sp[0].X != 1.0 || sp[1].X != 2.0 || sp[1].Proxy != 6.0 {
		t.Errorf("specials: %+v", sp)
	}
}

// The ProgressiveRO extension: lower levels generated against round-to-odd
// intervals must produce correctly rounded truncated results for all five
// modes — not just rn — at their own format.
func TestProgressiveROAllModes(t *testing.T) {
	levels := []fp.Format{fp.MustFormat(12, 8), fp.MustFormat(14, 8)}
	res, err := Generate(bigmath.Exp2, Options{Levels: levels, Seed: 11, ProgressiveRO: true})
	if err != nil {
		t.Fatal(err)
	}
	lvl := levels[0]
	ext := lvl.Extend(2)
	wrong := 0
	for b := uint64(0); b < lvl.NumValues(); b++ {
		x := lvl.Decode(b)
		roVal := ext.Decode(bigmath.CorrectlyRounded(bigmath.Exp2, x, ext, fp.RoundToOdd))
		for _, m := range fp.StandardModes {
			want := lvl.FromFloat64(roVal, m)
			if got := res.Eval(x, 0, lvl, m); got != want {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("%d wrong truncated results across all modes", wrong)
	}
	// Serving policy: the lower level now owns narrower formats under any
	// mode.
	if li, ok := res.ServingLevel(fp.MustFormat(11, 8), fp.RoundTowardPositive); !ok || li != 0 {
		t.Errorf("ServingLevel = %d, want 0", li)
	}
}
