package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// mergedRow is a post-merge constraint: the intersection of all raw
// constraints sharing r within one (kernel, level).
type mergedRow struct {
	r      float64
	lo, hi float64
	inputs int32 // number of raw constraints merged in
}

// levelConstraints is the constraint set of one (kernel polynomial, level).
type levelConstraints struct {
	merged []mergedRow
	// rowInputs[i] lists every enumerated input bit pattern whose raw
	// constraint shares merged[i]'s reduced input — including inputs
	// evicted during the merge. When a row is violated by the solver, all
	// of its inputs become special-case table entries.
	rowInputs [][]uint64
}

// constraintSet is the Reduce-stage artifact: the merged constraint system
// of one function. Like the raw set it depends only on the function, the
// level list and ProgressiveRO.
type constraintSet struct {
	// perKernel[p][levelIdx]
	perKernel [][]levelConstraints
	// specials[levelIdx] collects inputs that cannot be served by the
	// polynomial path: empty inversions, merge conflicts, unusable
	// intervals (zero/inf results past Reduce).
	specials []map[uint64]struct{}
	// rawCount is the total number of pre-merge constraints.
	rawCount int
}

// mergedRows returns the total merged-row count across kernels and levels.
func (cs *constraintSet) mergedRows() int {
	total := 0
	for _, pk := range cs.perKernel {
		for _, lc := range pk {
			total += len(lc.merged)
		}
	}
	return total
}

// reduce runs the Reduce stage: per (kernel, level), sort the raw
// constraints by reduced input and intersect runs sharing one reduced
// input into merged rows; constraints that would empty an intersection,
// and near-singleton equality rows, are evicted to the special sets. One
// independent (kernel, level) unit runs per worker; the evicted inputs are
// collected per unit and folded into the shared per-level special sets
// after the join, so the result is worker-count-independent.
//
// reduce sorts rs.raw in place; the raw set must already be persisted (or
// disposable) when it is called.
func reduce(rs *rawSet, nLevels, workers int) *constraintSet {
	nk := len(rs.raw)
	cs := &constraintSet{
		perKernel: make([][]levelConstraints, nk),
		specials:  make([]map[uint64]struct{}, nLevels),
		rawCount:  rs.rawCount,
	}
	for p := 0; p < nk; p++ {
		cs.perKernel[p] = make([]levelConstraints, nLevels)
	}
	for li := range cs.specials {
		cs.specials[li] = make(map[uint64]struct{}, len(rs.specials[li]))
		for _, b := range rs.specials[li] {
			cs.specials[li][b] = struct{}{}
		}
	}

	units := nk * nLevels
	evicted := make([][]uint64, units)
	parallel.ForEach(workers, units, func(u int) {
		p, li := u/nLevels, u%nLevels
		raw := rs.raw[p][li]
		sort.Slice(raw, func(i, j int) bool { return raw[i].r < raw[j].r })
		lc := &cs.perKernel[p][li]
		lc.merged, lc.rowInputs = mergeRaw(raw, func(xbits uint64) {
			evicted[u] = append(evicted[u], xbits)
		})
		// Singleton rows covering at most two inputs (exact results such
		// as 10^k for exp10) pin a coefficient combination to one double
		// each and force the exact LP on every sample; a special-case
		// table entry is cheaper in both generation time and runtime —
		// this is where a share of the paper's "special case inputs"
		// comes from. Rows shared by many inputs (e.g. exp2's r = 0,
		// owned by every integer input) stay as equality constraints.
		kept := lc.merged[:0]
		keptInputs := lc.rowInputs[:0]
		for mi, m := range lc.merged {
			//lint:ignore floateq lo and hi are stored merged bounds; identical bits mark an equality row.
			if m.lo == m.hi && m.inputs <= 2 {
				evicted[u] = append(evicted[u], lc.rowInputs[mi]...)
				continue
			}
			kept = append(kept, m)
			keptInputs = append(keptInputs, lc.rowInputs[mi])
		}
		lc.merged = kept
		lc.rowInputs = keptInputs
	})
	for u, ev := range evicted {
		li := u % nLevels
		for _, xb := range ev {
			cs.specials[li][xb] = struct{}{}
		}
	}
	return cs
}

// mergeRaw intersects runs of equal reduced input in the sorted raw slice.
// A raw constraint that would empty the running intersection is evicted to
// the special list (its freedom is incompatible with the other inputs
// sharing the reduced input). The second return value lists, per merged
// row, every input in the row's run — evicted ones included.
func mergeRaw(raw []rawConstraint, evict func(xbits uint64)) ([]mergedRow, [][]uint64) {
	var out []mergedRow
	var inputs [][]uint64
	i := 0
	for i < len(raw) {
		j := i
		row := mergedRow{r: raw[i].r, lo: raw[i].lo, hi: raw[i].hi, inputs: 1}
		rowIn := []uint64{raw[i].xbits}
		//lint:ignore floateq rows sharing one reduced input carry identical stored bits; the merge groups by that exact key.
		for j++; j < len(raw) && raw[j].r == row.r; j++ {
			rowIn = append(rowIn, raw[j].xbits)
			lo := math.Max(row.lo, raw[j].lo)
			hi := math.Min(row.hi, raw[j].hi)
			if lo > hi {
				evict(raw[j].xbits)
				continue
			}
			row.lo, row.hi = lo, hi
			row.inputs++
		}
		out = append(out, row)
		inputs = append(inputs, rowIn)
		i = j
	}
	return out, inputs
}

func (cs *constraintSet) describe() string {
	return fmt.Sprintf("%d raw constraints, %d merged rows", cs.rawCount, cs.mergedRows())
}
