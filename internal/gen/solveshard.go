package gen

import (
	"context"
	"fmt"

	"repro/internal/bigmath"
	"repro/internal/parallel"
	"repro/internal/pipeline"
)

// Distributed solves. The per-piece Clarkson solves inside one escalation
// attempt are independent constraint systems with deterministically seeded
// generators, so they distribute exactly like verification slices: each
// (kernel, pieces, piece) solve becomes a content-addressed work unit in
// the shared store, claimed before computing and assembled by every peer.
// All peers walk the identical rung/escalation schedule — the rung's
// effective options are part of each unit's fingerprint — so they request
// the same unit sequence and any peer can assemble the full kernel.
// Duplicate computation (a lost claim, a reclaimed stall) is harmless: the
// unit bytes are deterministic, so the last writer re-publishes identical
// bytes.

// StageSolveShard names the distributed-solve work-unit stage, as it
// appears in artifact keys and cache event logs.
const StageSolveShard = "solve-shard"

// SolveShardKey addresses one distributed solve work unit: piece pi of the
// pieces-way split of kernel p of fn under opt (defaults applied). Pass
// the rung-effective options: the rescue ladder's seed salts and budget
// escalations are folded into the options fingerprint, so every rung's
// units are distinct resumable artifacts.
func SolveShardKey(fn bigmath.Func, opt Options, kernel, pieces, pi int) pipeline.Key {
	opt.defaults()
	return pipeline.Key{
		Func:        fn.String(),
		Stage:       StageSolveShard,
		Fingerprint: fmt.Sprintf("%s-k%d-n%d-p%d", opt.Fingerprint(), kernel, pieces, pi),
	}
}

// solveUnit is the sealed form of one piece solve's outcome. The
// deterministic effort stats ride along because ResultCodec seals them
// into the solve artifact: a peer assembling fetched units must reproduce
// the exact Stats a solo run accumulates, or the sealed solve artifact
// would differ by process count. The volatile retries count (injected-
// fault replays, local to whichever process consumed the injection) is
// deliberately excluded, mirroring its exclusion from ResultCodec.
type solveUnit struct {
	Found       bool
	Lo, Hi      float64
	Coeffs      []float64
	LevelTerms  []int
	Viols       []violation
	Attempts    int
	Iters       int
	Lucky       int
	ExactSolves int
}

// unit converts a computed pieceOut to its sealed form.
func (o pieceOut) unit() solveUnit {
	u := solveUnit{
		Found:       o.found,
		Viols:       o.viols,
		Attempts:    o.stats.attempts,
		Iters:       o.stats.iters,
		Lucky:       o.stats.lucky,
		ExactSolves: o.stats.exactSolves,
	}
	if o.found {
		u.Lo, u.Hi = o.piece.Lo, o.piece.Hi
		u.Coeffs = o.piece.Coeffs
		u.LevelTerms = o.piece.LevelTerms
	}
	return u
}

// out converts a decoded solveUnit back to the merge-ready pieceOut.
func (u solveUnit) out() pieceOut {
	o := pieceOut{
		found: u.Found,
		viols: u.Viols,
		stats: solveStats{
			attempts:    u.Attempts,
			iters:       u.Iters,
			lucky:       u.Lucky,
			exactSolves: u.ExactSolves,
		},
	}
	if u.Found {
		o.piece = &Piece{Lo: u.Lo, Hi: u.Hi, Coeffs: u.Coeffs, LevelTerms: u.LevelTerms}
	}
	return o
}

// solveUnitCodec encodes one solve work unit.
var solveUnitCodec = pipeline.Codec[solveUnit]{
	Name:    "solve-shard",
	Version: 1,
	Encode: func(e *pipeline.Enc, u solveUnit) {
		e.Bool(u.Found)
		e.F64(u.Lo)
		e.F64(u.Hi)
		e.Int(len(u.Coeffs))
		for _, c := range u.Coeffs {
			e.F64(c)
		}
		e.Int(len(u.LevelTerms))
		for _, t := range u.LevelTerms {
			e.Int(t)
		}
		e.Int(len(u.Viols))
		for _, v := range u.Viols {
			e.Int(v.level)
			e.Int(v.row)
		}
		e.Int(u.Attempts)
		e.Int(u.Iters)
		e.Int(u.Lucky)
		e.Int(u.ExactSolves)
	},
	Decode: func(d *pipeline.Dec) (solveUnit, error) {
		u := solveUnit{Found: d.Bool(), Lo: d.F64(), Hi: d.F64()}
		for n := d.Len(); n > 0; n-- {
			u.Coeffs = append(u.Coeffs, d.F64())
		}
		for n := d.Len(); n > 0; n-- {
			u.LevelTerms = append(u.LevelTerms, d.Int())
		}
		for n := d.Len(); n > 0; n-- {
			u.Viols = append(u.Viols, violation{level: d.Int(), row: d.Int()})
		}
		u.Attempts, u.Iters = d.Int(), d.Int()
		u.Lucky, u.ExactSolves = d.Int(), d.Int()
		if d.Err() != nil {
			return solveUnit{}, d.Err()
		}
		for _, v := range u.Viols {
			if v.level < 0 || v.row < 0 {
				return solveUnit{}, fmt.Errorf("%w: negative violation index", pipeline.ErrCorrupt)
			}
		}
		if u.Found && len(u.Coeffs) == 0 {
			return solveUnit{}, fmt.Errorf("%w: found piece with no coefficients", pipeline.ErrCorrupt)
		}
		return u, nil
	},
}

// solvePiecesSharded fills outs with one escalation attempt's piece
// results via store-mediated work units: own pieces first — claim,
// compute on the pool, publish — then the rest assembled with FetchUnit
// (poll a live peer's claim, compute stragglers locally). Pieces are dealt
// round-robin (Shard.Owns) because the piece count follows the adaptive
// escalation and need not match the shard count. The caller merges outs in
// piece order, so the assembled kernel — including the sealed effort
// stats — is bit-identical to a solo run for any partition.
func solvePiecesSharded(ctx context.Context, store pipeline.Store, fn bigmath.Func, shard Shard,
	opt Options, p, pieces int, outs []pieceOut,
	computePiece func(context.Context, int) (pieceOut, error), logf pipeline.Logf) error {

	unitFor := func(pi int) func(context.Context) (solveUnit, error) {
		return func(ctx context.Context) (solveUnit, error) {
			out, err := computePiece(ctx, pi)
			if err != nil {
				return solveUnit{}, err
			}
			return out.unit(), nil
		}
	}
	done := make([]bool, pieces)
	// Own units first: claim, compute, publish — concurrently on the pool.
	if err := parallel.ForEachErr(ctx, opt.Workers, pieces, func(pi int) error {
		if !shard.Owns(pi) {
			return nil
		}
		key := SolveShardKey(fn, opt, p, pieces, pi)
		if !Claim(store, key, shard, opt.Faults) {
			return nil // a peer took this unit over; assembled below
		}
		stopHB := StartClaimHeartbeat(ctx, store, key, shard)
		u, _, err := pipeline.Run(ctx, store, key, solveUnitCodec, logf, unitFor(pi))
		stopHB()
		if err != nil {
			return err
		}
		outs[pi] = u.out()
		done[pi] = true
		return nil
	}); err != nil {
		return poolFault(err, StageSolve, fn)
	}
	// Assemble the rest: poll for live peers, compute stragglers.
	for pi := 0; pi < pieces; pi++ {
		if done[pi] {
			continue
		}
		key := SolveShardKey(fn, opt, p, pieces, pi)
		u, err := FetchUnit(ctx, store, key, shard, opt.Faults, logf, solveUnitCodec, unitFor(pi))
		if err != nil {
			return err
		}
		outs[pi] = u.out()
	}
	return nil
}
