package gen

import (
	"context"
	"time"

	"repro/internal/fault"
	"repro/internal/pipeline"
)

// Shared distribution machinery: the claim-poll/heartbeat protocol every
// distributed stage rides on. Two workloads use it today — the exhaustive
// verification slices (VerifyShardKey, assembled by internal/cli) and the
// per-piece Clarkson solve units (SolveShardKey, assembled by the Solve
// stage itself) — with identical semantics: a unit is an ordinary
// content-addressed artifact, a claim is an advisory last-writer-wins
// marker next to it, and liveness is judged by a monotonic heartbeat
// stamp, never a clock.

// ClaimPollAttempts × ClaimPollInterval bounds how long an assembler
// waits for a peer's claimed unit before computing it locally. The wait is
// pure scheduling — which process computes a unit never changes the unit's
// bytes — so the timing cannot influence generated coefficients.
//
// Within that window, liveness is judged by the claim's heartbeat stamp: a
// computing shard refreshes its claim every HeartbeatInterval, and a poller
// that sees the same stamp for ClaimStallBudget consecutive polls declares
// the owner dead and reclaims the unit well before the full window expires.
// The stall budget is several heartbeats wide so scheduler hiccups on the
// computing side don't trigger spurious (harmless, but wasteful) takeovers.
const (
	ClaimPollAttempts = 40
	ClaimPollInterval = 50 * time.Millisecond
	HeartbeatInterval = ClaimPollInterval
	ClaimStallBudget  = 10
)

// StartClaimHeartbeat refreshes shard's claim on unit with an advancing
// stamp until the returned stop function is called or ctx is canceled —
// the loop is bounded by the unit computation it shadows, and the context
// covers the path where that computation dies without reaching its stop.
// The stamp is a local monotonic sequence — never a clock reading — so
// the sealed claim bytes stay deterministic per tick.
func StartClaimHeartbeat(ctx context.Context, st pipeline.Store, unit pipeline.Key, shard Shard) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(HeartbeatInterval)
		defer t.Stop()
		stamp := uint64(0)
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				stamp++
				RefreshClaim(st, unit, shard, stamp)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// FetchUnit obtains one work unit another shard owns: probe the store,
// and while a peer's claim stands AND its heartbeat stamp keeps advancing,
// poll within the grace window. A unit that never appears — no claim, a
// stale claim (SiteClaimStale), a dead peer whose stamp stops advancing
// for ClaimStallBudget polls, or a peer that stalled past the window — is
// claimed and computed locally, which at worst duplicates a peer's
// byte-identical artifact.
func FetchUnit[T any](ctx context.Context, st pipeline.Store, key pipeline.Key, shard Shard,
	faults *fault.Plan, logf pipeline.Logf, codec pipeline.Codec[T], compute func(context.Context) (T, error)) (T, error) {

	var last ClaimInfo
	haveLast, stalls, expired := false, 0, false
	for attempt := 0; !expired; attempt++ {
		if v, ok := pipeline.Probe(st, key, codec); ok {
			return v, nil
		}
		c, claimed := ClaimedBy(st, key, faults)
		if !claimed || c.Owner == shard.Owner() || attempt >= ClaimPollAttempts {
			break
		}
		if haveLast && c == last {
			stalls++
			if stalls >= ClaimStallBudget {
				expired = true
				if logf != nil {
					logf("%s %s: claim by %s unrefreshed for %d polls, reclaiming",
						key.Func, key.Stage, c.Owner, stalls)
				}
				continue
			}
		} else {
			last, haveLast, stalls = c, true, 0
		}
		select {
		case <-ctx.Done():
			var zero T
			return zero, fault.New(fault.CodeCanceled, key.Stage, "fetch", ctx.Err()).WithFunc(key.Func)
		case <-time.After(ClaimPollInterval):
		}
	}
	if expired {
		// The dead peer's claim stands in the store; an ordinary Claim
		// would defer to it. Take it over unconditionally — claims are
		// last-writer-wins dedup, so the worst case (the peer was alive
		// after all) is one duplicated byte-identical unit.
		RefreshClaim(st, key, shard, 0)
	} else {
		Claim(st, key, shard, faults)
	}
	v, _, err := pipeline.Run(ctx, st, key, codec, logf, compute)
	return v, err
}
