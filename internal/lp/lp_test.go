package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func solveBoth(t *testing.T, p Problem) (Solution, Solution) {
	t.Helper()
	sf, errF := SolveMaxMargin(p)
	se, errE := SolveMaxMarginExact(p)
	if (errF == nil) != (errE == nil) {
		t.Fatalf("solver disagreement: float err=%v exact err=%v", errF, errE)
	}
	if errF != nil {
		t.Fatalf("both solvers failed: %v", errF)
	}
	return sf, se
}

func TestSingleVariableCentering(t *testing.T) {
	p := Problem{
		NumVars:     1,
		Constraints: []Constraint{{Coeffs: []float64{1}, Lo: 0, Hi: 2}},
	}
	sf, se := solveBoth(t, p)
	for _, s := range []Solution{sf, se} {
		if math.Abs(s.X[0]-1) > 1e-9 {
			t.Errorf("x = %v, want 1 (margin-centered)", s.X[0])
		}
		if math.Abs(s.Margin-1) > 1e-9 {
			t.Errorf("margin = %v, want 1 (capped)", s.Margin)
		}
	}
}

func TestTwoConstraintsPartialOverlap(t *testing.T) {
	// x in [0,2] and x in [1,5]: feasible [1,2]; margin-optimal x balances
	// relative slack: (x-1)/2 = (2-x)/1 → x = 5/3.
	p := Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Lo: 0, Hi: 2},
			{Coeffs: []float64{1}, Lo: 1, Hi: 5},
		},
	}
	sf, se := solveBoth(t, p)
	for _, s := range []Solution{sf, se} {
		if math.Abs(s.X[0]-5.0/3) > 1e-8 {
			t.Errorf("x = %v, want 5/3", s.X[0])
		}
		if math.Abs(s.Margin-1.0/3) > 1e-8 {
			t.Errorf("margin = %v, want 1/3", s.Margin)
		}
	}
}

func TestEquality(t *testing.T) {
	// C1 = 0 exactly plus C1 + C2 in [1, 3].
	p := Problem{
		NumVars: 2,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Lo: 0, Hi: 0},
			{Coeffs: []float64{1, 1}, Lo: 1, Hi: 3},
		},
	}
	sf, se := solveBoth(t, p)
	for _, s := range []Solution{sf, se} {
		if math.Abs(s.X[0]) > 1e-10 {
			t.Errorf("x0 = %v, want 0", s.X[0])
		}
		if !(s.X[1] >= 1-1e-9 && s.X[1] <= 3+1e-9) {
			t.Errorf("x1 = %v outside [1,3]", s.X[1])
		}
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Lo: 0, Hi: 0},
			{Coeffs: []float64{1}, Lo: 1, Hi: 1},
		},
	}
	if _, err := SolveMaxMargin(p); err != ErrInfeasible {
		t.Errorf("float: err = %v, want ErrInfeasible", err)
	}
	if _, err := SolveMaxMarginExact(p); err != ErrInfeasible {
		t.Errorf("exact: err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeMarginOverlap(t *testing.T) {
	// Two disjoint intervals for the same expression: no point satisfies
	// both, but with negative margin the LP still balances them rather
	// than reporting infeasible (inequality rows are soft under δ < 0).
	p := Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Lo: 0, Hi: 1},
			{Coeffs: []float64{1}, Lo: 2, Hi: 3},
		},
	}
	sf, se := solveBoth(t, p)
	for _, s := range []Solution{sf, se} {
		if s.Margin >= 0 {
			t.Errorf("margin = %v, want negative", s.Margin)
		}
	}
}

func TestOneSidedBounds(t *testing.T) {
	p := Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Lo: 3, Hi: math.Inf(1)},
			{Coeffs: []float64{1}, Lo: math.Inf(-1), Hi: 10},
			{Coeffs: []float64{1}, Lo: 4, Hi: 6},
		},
	}
	sf, se := solveBoth(t, p)
	for _, s := range []Solution{sf, se} {
		for i, c := range p.Constraints {
			if !c.Satisfied(s.X) {
				t.Errorf("constraint %d unsatisfied at %v", i, s.X)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Problem{
		{NumVars: 0},
		{NumVars: 2, Constraints: []Constraint{{Coeffs: []float64{1}, Lo: 0, Hi: 1}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, Lo: 2, Hi: 1}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{math.NaN()}, Lo: 0, Hi: 1}}},
	}
	for i, p := range bad {
		if _, err := SolveMaxMargin(p); err == nil {
			t.Errorf("problem %d: float solver accepted invalid input", i)
		}
		if _, err := SolveMaxMarginExact(p); err == nil {
			t.Errorf("problem %d: exact solver accepted invalid input", i)
		}
	}
}

// ratSatisfied checks a constraint exactly.
func ratSatisfied(c Constraint, x []float64) bool {
	s := new(big.Rat)
	tmp := new(big.Rat)
	for j, a := range c.Coeffs {
		if a == 0 || x[j] == 0 {
			continue
		}
		s.Add(s, tmp.Mul(new(big.Rat).SetFloat64(a), new(big.Rat).SetFloat64(x[j])))
	}
	if !math.IsInf(c.Lo, 0) && s.Cmp(new(big.Rat).SetFloat64(c.Lo)) < 0 {
		return false
	}
	if !math.IsInf(c.Hi, 0) && s.Cmp(new(big.Rat).SetFloat64(c.Hi)) > 0 {
		return false
	}
	return true
}

// Random polynomial-fitting feasibility problems shaped like the real
// workload: coefficients of a degree-(k-1) polynomial constrained by
// intervals around a ground-truth polynomial at reduced-domain points.
func TestRandomPolynomialSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(4)
		truth := make([]float64, k)
		for j := range truth {
			truth[j] = rng.NormFloat64()
		}
		m := 5 + rng.Intn(40)
		p := Problem{NumVars: k}
		for i := 0; i < m; i++ {
			r := rng.Float64() / 64 // reduced-input scale
			coeffs := make([]float64, k)
			pow := 1.0
			v := 0.0
			for j := 0; j < k; j++ {
				coeffs[j] = pow
				v += truth[j] * pow
				pow *= r
			}
			w := math.Ldexp(1+rng.Float64(), -20)
			p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Lo: v - w, Hi: v + w})
		}
		solutions := map[string]Solution{}
		if se, err := SolveMaxMarginExact(p); err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		} else {
			solutions["exact"] = se
		}
		// The float solver may bail out with ErrNumeric on ill-conditioned
		// raw Vandermonde systems — that is its contract; what it must
		// never do is return a bad solution without flagging it.
		if sf, err := SolveMaxMargin(p); err == nil {
			solutions["float"] = sf
		} else if err != ErrNumeric {
			t.Fatalf("trial %d float: %v", trial, err)
		}
		for name, s := range solutions {
			if s.Margin < 0 {
				t.Errorf("trial %d %s: negative margin %v on feasible system", trial, name, s.Margin)
				continue
			}
			for i, c := range p.Constraints {
				if !ratSatisfied(c, s.X) {
					t.Errorf("trial %d %s: constraint %d violated (margin %v)", trial, name, i, s.Margin)
				}
			}
		}
	}
}

// The exact solver's margin must weakly dominate the float solver's
// (it is exact; the float one may fall short but never exceed by much).
func TestExactAtLeastAsGood(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(3)
		p := Problem{NumVars: k}
		for i := 0; i < 10+rng.Intn(20); i++ {
			coeffs := make([]float64, k)
			for j := range coeffs {
				coeffs[j] = rng.NormFloat64()
			}
			mid := rng.NormFloat64()
			w := 0.1 + rng.Float64()
			p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Lo: mid - w, Hi: mid + w})
		}
		sf, errF := SolveMaxMargin(p)
		se, errE := SolveMaxMarginExact(p)
		if errF != nil || errE != nil {
			t.Fatalf("trial %d: errF=%v errE=%v", trial, errF, errE)
		}
		if se.Margin < sf.Margin-1e-6 {
			t.Errorf("trial %d: exact margin %v < float margin %v", trial, se.Margin, sf.Margin)
		}
	}
}

func BenchmarkFloatSimplex(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	k := 7
	p := Problem{NumVars: k}
	truth := make([]float64, k)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	for i := 0; i < 6*k*k; i++ {
		r := rng.Float64() / 64
		coeffs := make([]float64, k)
		pow, v := 1.0, 0.0
		for j := 0; j < k; j++ {
			coeffs[j] = pow
			v += truth[j] * pow
			pow *= r
		}
		w := math.Ldexp(1, -25)
		p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Lo: v - w, Hi: v + w})
	}
	b.ResetTimer()
	numeric := 0
	for i := 0; i < b.N; i++ {
		if _, err := SolveMaxMargin(p); err == ErrNumeric {
			numeric++ // ill-conditioned raw Vandermonde at k=7: expected sometimes
		} else if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(numeric)/float64(b.N), "numeric-bailout-rate")
}

func BenchmarkExactSimplex(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	k := 4
	p := Problem{NumVars: k}
	truth := make([]float64, k)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	for i := 0; i < 6*k*k; i++ {
		r := rng.Float64() / 64
		coeffs := make([]float64, k)
		pow, v := 1.0, 0.0
		for j := 0; j < k; j++ {
			coeffs[j] = pow
			v += truth[j] * pow
			pow *= r
		}
		w := math.Ldexp(1, -25)
		p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Lo: v - w, Hi: v + w})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveMaxMarginExact(p); err != nil {
			b.Fatal(err)
		}
	}
}
