package lp

import "math"

// SolveMaxMargin solves the margin LP with the dense float64 two-phase
// simplex. On success the returned Solution carries the coefficient vector
// and the optimal relative margin δ (≥ 0 iff every constraint holds with
// its proportional slack). It returns ErrInfeasible when even δ → -∞
// cannot satisfy the rows (contradictory equalities), and ErrNumeric when
// the tableau degenerates.
func SolveMaxMargin(p Problem) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{}, err
	}
	k := p.NumVars

	// Column layout: u_0..u_{k-1}, v_0..v_{k-1}, d+, d-, then one slack per
	// row, then one artificial per row.
	nStruct := 2*k + 2
	type row struct {
		coef  []float64 // structural part, length nStruct
		slack float64   // +1 or -1
		rhs   float64
	}
	var rows []row
	addRow := func(a []float64, w, rhs, slackSign float64, marginSign float64) {
		c := make([]float64, nStruct)
		for j := 0; j < k; j++ {
			c[j] = a[j]
			c[k+j] = -a[j]
		}
		c[2*k] = marginSign * w
		c[2*k+1] = -marginSign * w
		rows = append(rows, row{coef: c, slack: slackSign, rhs: rhs})
	}
	for _, con := range p.Constraints {
		w := con.width()
		if con.IsEquality() {
			// Equality: single row, no slack, no margin term.
			c := make([]float64, nStruct)
			for j := 0; j < k; j++ {
				c[j] = con.Coeffs[j]
				c[k+j] = -con.Coeffs[j]
			}
			rows = append(rows, row{coef: c, slack: 0, rhs: con.Lo})
			continue
		}
		if !math.IsInf(con.Lo, 0) {
			// a·x - w·δ - s = lo
			addRow(con.Coeffs, w, con.Lo, -1, -1)
		}
		if !math.IsInf(con.Hi, 0) {
			// a·x + w·δ + s = hi
			addRow(con.Coeffs, w, con.Hi, +1, +1)
		}
	}
	// Cap δ ≤ 1: d+ - d- + s = 1.
	capRow := row{coef: make([]float64, nStruct), slack: +1, rhs: 1}
	capRow.coef[2*k] = 1
	capRow.coef[2*k+1] = -1
	rows = append(rows, capRow)

	m := len(rows)
	nSlack := m // one reserved per row; zero column for equality rows
	n := nStruct + nSlack + m

	// Column equilibration for the structural columns.
	colScale := make([]float64, nStruct)
	for j := range colScale {
		mx := 0.0
		for _, r := range rows {
			if a := math.Abs(r.coef[j]); a > mx {
				mx = a
			}
		}
		if mx == 0 {
			mx = 1
		}
		colScale[j] = 1 / mx
	}

	// Assemble the tableau with row equilibration.
	t := newTableau(m, n)
	artStart := nStruct + nSlack
	for i, r := range rows {
		rowMax := math.Abs(r.rhs)
		for j, a := range r.coef {
			if s := math.Abs(a * colScale[j]); s > rowMax {
				rowMax = s
			}
		}
		if rowMax == 0 {
			rowMax = 1
		}
		rs := 1 / rowMax
		sign := 1.0
		if r.rhs*rs < 0 {
			sign = -1 // keep b ≥ 0
		}
		for j, a := range r.coef {
			t.a[i][j] = sign * rs * a * colScale[j]
		}
		if r.slack != 0 {
			t.a[i][nStruct+i] = sign * rs * r.slack
		}
		t.a[i][artStart+i] = 1
		t.a[i][n] = sign * rs * r.rhs
		t.basis[i] = artStart + i
	}

	// Phase 1: minimize the sum of artificials.
	t.initPhase1(artStart)
	if status := t.iterate(artStart); status != lpOptimal {
		return Solution{}, ErrNumeric
	}
	if t.cost[n] < -phase1Eps {
		return Solution{}, ErrInfeasible
	}
	t.driveOutArtificials(artStart)

	// Phase 2: minimize -δ = -(d+ - d-).
	obj := make([]float64, n+1)
	obj[2*k] = -1
	obj[2*k+1] = 1
	t.initPhase2(obj, artStart)
	if status := t.iterate(artStart); status == lpUnbounded {
		return Solution{}, ErrUnbounded
	} else if status != lpOptimal {
		return Solution{}, ErrNumeric
	}

	z := t.values(n)
	x := make([]float64, k)
	for j := 0; j < k; j++ {
		x[j] = (z[j] - z[k+j]) * colScale[j]
	}
	claimed := z[2*k]*colScale[2*k] - z[2*k+1]*colScale[2*k+1]
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Solution{}, ErrNumeric
		}
	}
	// Self-verification: the float tableau can silently drift on
	// ill-conditioned systems. Recompute the margin by direct evaluation
	// and reject the solve when it falls materially short of the claim —
	// callers then retry with the exact rational solver.
	measured := p.MeasuredMargin(x)
	if measured < claimed-0.2*(1+math.Abs(claimed)) {
		return Solution{}, ErrNumeric
	}
	return Solution{X: x, Margin: measured}, nil
}

const (
	pivotEps   = 1e-11
	costEps    = 1e-9
	phase1Eps  = 1e-7
	maxPivots  = 4000
	blandAfter = 600 // switch to Bland's rule after this many pivots
)

type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpUnbounded
	lpStuck
)

// tableau is a dense simplex tableau: m rows of n structural+slack+artificial
// columns plus a rhs column, and a reduced-cost row.
type tableau struct {
	m, n  int
	a     [][]float64 // m × (n+1)
	cost  []float64   // n+1; cost[n] = -objective
	basis []int
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n, basis: make([]int, m)}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, n+1)
	}
	t.cost = make([]float64, n+1)
	return t
}

// initPhase1 sets the reduced-cost row for minimizing the artificial sum,
// given that the artificials (columns ≥ artStart) form the initial basis.
func (t *tableau) initPhase1(artStart int) {
	for j := 0; j <= t.n; j++ {
		s := 0.0
		for i := 0; i < t.m; i++ {
			s += t.a[i][j]
		}
		t.cost[j] = -s
	}
	for j := artStart; j < t.n; j++ {
		t.cost[j] = 0
	}
}

// initPhase2 installs the objective obj (length n+1, rhs entry ignored) and
// reduces it against the current basis.
func (t *tableau) initPhase2(obj []float64, artStart int) {
	copy(t.cost, obj)
	t.cost[t.n] = 0
	for i, b := range t.basis {
		cb := t.cost[b]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			t.cost[j] -= cb * t.a[i][j]
		}
	}
	// Artificials must never re-enter.
	for j := artStart; j < t.n; j++ {
		t.cost[j] = math.Inf(1)
	}
}

// iterate runs simplex pivots until optimality: Dantzig pricing first,
// Bland's rule after blandAfter pivots to break cycles. Columns at or above
// artBlock with +Inf cost are blocked.
func (t *tableau) iterate(artBlock int) lpStatus {
	for iter := 0; iter < maxPivots; iter++ {
		// Pricing.
		enter := -1
		if iter < blandAfter {
			best := -costEps
			for j := 0; j < t.n; j++ {
				c := t.cost[j]
				if !math.IsInf(c, 1) && c < best {
					best = c
					enter = j
				}
			}
		} else {
			for j := 0; j < t.n; j++ {
				c := t.cost[j]
				if !math.IsInf(c, 1) && c < -costEps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return lpOptimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aie := t.a[i][enter]
			if aie <= pivotEps {
				continue
			}
			r := t.a[i][t.n] / aie
			if r < bestRatio-pivotEps || (r < bestRatio+pivotEps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = r
				leave = i
			}
		}
		if leave < 0 {
			return lpUnbounded
		}
		t.pivot(leave, enter)
	}
	return lpStuck
}

// pivot performs a Gauss-Jordan pivot on (r, c).
func (t *tableau) pivot(r, c int) {
	pr := t.a[r]
	inv := 1 / pr[c]
	for j := 0; j <= t.n; j++ {
		pr[j] *= inv
	}
	pr[c] = 1
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j <= t.n; j++ {
			row[j] -= f * pr[j]
		}
		row[c] = 0
	}
	if f := t.cost[c]; f != 0 && !math.IsInf(f, 0) {
		for j := 0; j <= t.n; j++ {
			if !math.IsInf(t.cost[j], 0) {
				t.cost[j] -= f * pr[j]
			}
		}
		t.cost[c] = 0
	}
	t.basis[r] = c
}

// driveOutArtificials pivots basic artificial variables (necessarily at
// zero after a feasible phase 1) out of the basis where possible.
func (t *tableau) driveOutArtificials(artStart int) {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > 1e-8 {
				t.pivot(i, j)
				break
			}
		}
	}
}

// values extracts the current basic solution (length n).
func (t *tableau) values(n int) []float64 {
	z := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			z[b] = t.a[i][t.n]
		}
	}
	return z
}
