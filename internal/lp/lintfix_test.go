package lp

import (
	"math"
	"testing"
)

// TestIsEquality pins the centralized equality-row test: IsEquality must
// agree with the documented lo == hi convention for finite rows, two-sided
// rows, and the one-sided infinite bounds the solvers special-case.
func TestIsEquality(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		lo, hi float64
		want   bool
	}{
		{1.5, 1.5, true},
		{0, 0, true},
		{-2, 2, false},
		{-inf, 3, false},
		{3, inf, false},
		{-inf, inf, false},
	}
	for _, tc := range cases {
		c := Constraint{Lo: tc.lo, Hi: tc.hi}
		if got := c.IsEquality(); got != tc.want {
			t.Errorf("Constraint{Lo: %v, Hi: %v}.IsEquality() = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}
