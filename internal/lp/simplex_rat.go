package lp

import (
	"math"
	"math/big"
)

// SolveMaxMarginExact solves the margin LP in exact rational arithmetic
// with Bland's rule — the package's SoPlex substitute. Every float64
// coefficient and bound converts exactly to a rational, the simplex is
// exact and guaranteed to terminate, and infeasibility/optimality are
// certificates rather than numerical judgements. The solution vector is
// rounded to the nearest float64s only on return.
//
// The cost is polynomial but with rational-arithmetic constants: intended
// for the Clarkson samples (hundreds of rows), not for millions of rows.
func SolveMaxMarginExact(p Problem) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{}, err
	}
	k := p.NumVars
	nStruct := 2*k + 2

	type row struct {
		coef  []*big.Rat
		slack int // +1, -1 or 0
		rhs   *big.Rat
	}
	ratOf := func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }
	var rows []row
	structRow := func(a []float64, w float64, marginSign int) []*big.Rat {
		c := make([]*big.Rat, nStruct)
		for j := 0; j < k; j++ {
			c[j] = ratOf(a[j])
			c[k+j] = new(big.Rat).Neg(c[j])
		}
		wr := ratOf(w)
		if marginSign < 0 {
			wr.Neg(wr)
		}
		c[2*k] = wr
		c[2*k+1] = new(big.Rat).Neg(wr)
		return c
	}
	for _, con := range p.Constraints {
		w := con.width()
		if con.IsEquality() {
			rows = append(rows, row{coef: structRow(con.Coeffs, 0, 1), slack: 0, rhs: ratOf(con.Lo)})
			continue
		}
		if !math.IsInf(con.Lo, 0) {
			rows = append(rows, row{coef: structRow(con.Coeffs, w, -1), slack: -1, rhs: ratOf(con.Lo)})
		}
		if !math.IsInf(con.Hi, 0) {
			rows = append(rows, row{coef: structRow(con.Coeffs, w, +1), slack: +1, rhs: ratOf(con.Hi)})
		}
	}
	capCoef := make([]*big.Rat, nStruct)
	for j := range capCoef {
		capCoef[j] = new(big.Rat)
	}
	capCoef[2*k] = big.NewRat(1, 1)
	capCoef[2*k+1] = big.NewRat(-1, 1)
	rows = append(rows, row{coef: capCoef, slack: +1, rhs: big.NewRat(1, 1)})

	m := len(rows)
	n := nStruct + m + m // slacks + artificials
	artStart := nStruct + m

	t := newRatTableau(m, n)
	for i, r := range rows {
		sign := 1
		if r.rhs.Sign() < 0 {
			sign = -1
		}
		for j, a := range r.coef {
			if a == nil || a.Sign() == 0 {
				continue
			}
			v := new(big.Rat).Set(a)
			if sign < 0 {
				v.Neg(v)
			}
			t.set(i, j, v)
		}
		if r.slack != 0 {
			s := big.NewRat(int64(r.slack*sign), 1)
			t.set(i, nStruct+i, s)
		}
		t.set(i, artStart+i, big.NewRat(1, 1))
		rhs := new(big.Rat).Set(r.rhs)
		if sign < 0 {
			rhs.Neg(rhs)
		}
		t.set(i, n, rhs)
		t.basis[i] = artStart + i
	}

	// Phase 1.
	t.initPhase1(artStart)
	if !t.iterateBland(artStart) {
		return Solution{}, ErrUnbounded
	}
	if t.cost[n].Sign() < 0 {
		return Solution{}, ErrInfeasible
	}
	t.driveOutArtificials(artStart)

	// Phase 2: minimize -(d+ - d-).
	obj := make([]*big.Rat, n+1)
	obj[2*k] = big.NewRat(-1, 1)
	obj[2*k+1] = big.NewRat(1, 1)
	t.initPhase2(obj, artStart)
	if !t.iterateBland(artStart) {
		return Solution{}, ErrUnbounded
	}

	x := make([]float64, k)
	vals := t.solution(n)
	for j := 0; j < k; j++ {
		d := new(big.Rat).Sub(vals[j], vals[k+j])
		x[j], _ = d.Float64()
	}
	// Report the margin of the float64-rounded solution (what the pipeline
	// will actually evaluate), not the exact-rational optimum.
	return Solution{X: x, Margin: p.MeasuredMargin(x)}, nil
}

// ratTableau is a dense exact simplex tableau. Zero entries are nil.
type ratTableau struct {
	m, n  int
	a     [][]*big.Rat // m × (n+1)
	cost  []*big.Rat   // n+1
	block []bool       // blocked (artificial) columns in phase 2
	basis []int
}

func newRatTableau(m, n int) *ratTableau {
	t := &ratTableau{m: m, n: n, basis: make([]int, m), block: make([]bool, n)}
	t.a = make([][]*big.Rat, m)
	for i := range t.a {
		t.a[i] = make([]*big.Rat, n+1)
	}
	t.cost = make([]*big.Rat, n+1)
	return t
}

func (t *ratTableau) set(i, j int, v *big.Rat) { t.a[i][j] = v }

func (t *ratTableau) at(i, j int) *big.Rat {
	if t.a[i][j] == nil {
		return ratZero
	}
	return t.a[i][j]
}

var ratZero = new(big.Rat)

func (t *ratTableau) initPhase1(artStart int) {
	for j := 0; j <= t.n; j++ {
		s := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if t.a[i][j] != nil {
				s.Add(s, t.a[i][j])
			}
		}
		s.Neg(s)
		t.cost[j] = s
	}
	for j := artStart; j < t.n; j++ {
		t.cost[j] = new(big.Rat)
		t.block[j] = false
	}
}

func (t *ratTableau) initPhase2(obj []*big.Rat, artStart int) {
	for j := 0; j <= t.n; j++ {
		if obj[j] == nil {
			t.cost[j] = new(big.Rat)
		} else {
			t.cost[j] = new(big.Rat).Set(obj[j])
		}
	}
	for i, b := range t.basis {
		cb := t.cost[b]
		if cb.Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(cb)
		tmp := new(big.Rat)
		for j := 0; j <= t.n; j++ {
			if t.a[i][j] != nil && t.a[i][j].Sign() != 0 {
				t.cost[j].Sub(t.cost[j], tmp.Mul(f, t.a[i][j]))
			}
		}
	}
	for j := artStart; j < t.n; j++ {
		t.block[j] = true
	}
}

// iterateBland runs exact simplex with Bland's anti-cycling rule until
// optimality; returns false on unboundedness.
func (t *ratTableau) iterateBland(artStart int) bool {
	//lint:ignore ctxflow Bland's rule is anti-cycling: each basis repeats at most once, so the iteration count is bounded by the finite number of bases.
	for {
		enter := -1
		for j := 0; j < t.n; j++ {
			if !t.block[j] && t.cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		leave := -1
		var best *big.Rat
		ratio := new(big.Rat)
		for i := 0; i < t.m; i++ {
			aie := t.a[i][enter]
			if aie == nil || aie.Sign() <= 0 {
				continue
			}
			ratio.Quo(t.at(i, t.n), aie)
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				if best == nil {
					best = new(big.Rat)
				}
				best.Set(ratio)
			}
		}
		if leave < 0 {
			return false
		}
		t.pivot(leave, enter)
	}
}

func (t *ratTableau) pivot(r, c int) {
	pr := t.a[r]
	inv := new(big.Rat).Inv(pr[c])
	for j := 0; j <= t.n; j++ {
		if pr[j] != nil && pr[j].Sign() != 0 {
			pr[j].Mul(pr[j], inv)
		}
	}
	pr[c] = big.NewRat(1, 1)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == nil || f.Sign() == 0 {
			continue
		}
		fc := new(big.Rat).Set(f)
		row := t.a[i]
		for j := 0; j <= t.n; j++ {
			if pr[j] == nil || pr[j].Sign() == 0 {
				continue
			}
			if row[j] == nil {
				row[j] = new(big.Rat)
			}
			row[j].Sub(row[j], tmp.Mul(fc, pr[j]))
		}
		row[c] = new(big.Rat)
	}
	if f := t.cost[c]; f.Sign() != 0 {
		fc := new(big.Rat).Set(f)
		for j := 0; j <= t.n; j++ {
			if pr[j] == nil || pr[j].Sign() == 0 {
				continue
			}
			t.cost[j].Sub(t.cost[j], tmp.Mul(fc, pr[j]))
		}
		t.cost[c] = new(big.Rat)
	}
	t.basis[r] = c
}

func (t *ratTableau) driveOutArtificials(artStart int) {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if t.a[i][j] != nil && t.a[i][j].Sign() != 0 {
				t.pivot(i, j)
				break
			}
		}
	}
}

func (t *ratTableau) solution(n int) []*big.Rat {
	z := make([]*big.Rat, n)
	for j := range z {
		z[j] = new(big.Rat)
	}
	for i, b := range t.basis {
		if b < n {
			z[b] = new(big.Rat).Set(t.at(i, t.n))
		}
	}
	return z
}
