// Package lp solves the small-dimensional linear programs at the heart of
// RLIBM-Prog: find polynomial coefficients x ∈ R^k satisfying two-sided
// interval constraints lo_i ≤ a_i·x ≤ hi_i. The package provides
//
//   - a dense two-phase float64 simplex (fast path, used for the thousands
//     of Clarkson sample solves), and
//   - an exact arbitrary-precision rational simplex with Bland's rule (the
//     SoPlex substitute: guaranteed-terminating, exact arithmetic).
//
// Rather than an arbitrary vertex, both solvers maximize the relative
// margin δ: each constraint is tightened to lo_i + δ·w_i ≤ a_i·x ≤
// hi_i − δ·w_i with w_i = (hi_i − lo_i)/2, and δ (capped at 1) is
// maximized. A positive optimal δ yields an interior point of the feasible
// region, which survives the rounding of the solution to float64
// coefficients — the acceptance criterion of the generation pipeline.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Constraint is the two-sided row lo ≤ coeffs·x ≤ hi. Either side may be
// infinite (math.Inf) to drop that bound; lo == hi expresses an equality.
type Constraint struct {
	Coeffs []float64
	Lo, Hi float64
}

// IsEquality reports whether the row pins coeffs·x to a single value.
// Lo and Hi are stored bounds, never recomputed, so comparing them exactly
// is the definition of an equality row rather than a rounding hazard.
func (c Constraint) IsEquality() bool {
	//lint:ignore floateq Lo and Hi are stored endpoints; identical bits mark an equality row by construction.
	return c.Lo == c.Hi
}

// Problem is a collection of constraints over NumVars unknowns.
type Problem struct {
	NumVars     int
	Constraints []Constraint
}

// Solution is the result of a successful solve.
type Solution struct {
	X []float64
	// Margin is the achieved relative margin δ ∈ [-∞, 1]; ≥ 0 means every
	// constraint is satisfied (with slack proportional to its width).
	Margin float64
}

// ErrInfeasible reports that no assignment satisfies the constraints (not
// even with negative margin, which only happens with contradictory
// equalities).
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded reports an unbounded objective; it cannot occur in the
// margin formulation (δ ≤ 1) and indicates a malformed problem.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrNumeric reports that the float64 simplex lost too much precision to
// certify its answer.
var ErrNumeric = errors.New("lp: numerically unstable")

// Uncertain reports whether err is a float64-simplex verdict that must be
// confirmed by the exact rational solver before it may cut the search:
// ErrNumeric is a precision failure, not an answer, and the float
// simplex's ErrInfeasible is an epsilon judgement, not a certificate.
// Exact-solver verdicts and all other errors are final. The fault
// taxonomy maps a confirmed ErrNumeric to CodeSolverNumeric and a
// certified ErrInfeasible to CodeSolverInfeasible (see internal/fault).
func Uncertain(err error) bool {
	return errors.Is(err, ErrNumeric) || errors.Is(err, ErrInfeasible)
}

// validate checks structural sanity shared by both solvers.
func (p Problem) validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: NumVars = %d", p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), p.NumVars)
		}
		if math.IsNaN(c.Lo) || math.IsNaN(c.Hi) || c.Lo > c.Hi {
			return fmt.Errorf("lp: constraint %d has bad bounds [%g, %g]", i, c.Lo, c.Hi)
		}
		for _, a := range c.Coeffs {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("lp: constraint %d has non-finite coefficient", i)
			}
		}
	}
	return nil
}

// width returns the margin weight of a constraint: half its interval width,
// zero for equalities and one-sided rows (whose margin tightening is
// skipped).
func (c Constraint) width() float64 {
	if math.IsInf(c.Lo, 0) || math.IsInf(c.Hi, 0) {
		return 0
	}
	return (c.Hi - c.Lo) / 2
}

// MeasuredMargin returns the relative margin of x computed by direct
// evaluation: the minimum over constraints of min(v-lo, hi-v)/width
// (capped at 1). Equality and one-sided rows carry no margin weight in the
// LP either: when satisfied they do not limit the margin, when violated
// they force it to -1. This is the ground truth the pipeline
// trusts — solvers report it rather than their internal objective value.
func (p Problem) MeasuredMargin(x []float64) float64 {
	m := 1.0
	for _, c := range p.Constraints {
		v := c.Eval(x)
		var mi float64
		w := c.width()
		switch {
		case c.IsEquality():
			scale := math.Max(math.Abs(c.Lo), 1)
			if math.Abs(v-c.Lo) <= 1e-12*scale {
				mi = 1
			} else {
				mi = -1
			}
		case w == 0: // one-sided
			if (math.IsInf(c.Lo, 0) || v >= c.Lo) && (math.IsInf(c.Hi, 0) || v <= c.Hi) {
				mi = 1
			} else {
				mi = -1
			}
		default:
			mi = math.Min(v-c.Lo, c.Hi-v) / w
		}
		if mi < m {
			m = mi
		}
	}
	return m
}

// Eval returns coeffs·x.
func (c Constraint) Eval(x []float64) float64 {
	s := 0.0
	for j, a := range c.Coeffs {
		s += a * x[j]
	}
	return s
}

// Satisfied reports whether x meets the constraint.
func (c Constraint) Satisfied(x []float64) bool {
	v := c.Eval(x)
	return v >= c.Lo && v <= c.Hi
}
