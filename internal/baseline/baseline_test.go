package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
)

func randomInput(fn bigmath.Func, rng *rand.Rand) float64 {
	switch fn {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		return math.Ldexp(rng.Float64()+0.5, rng.Intn(200)-100)
	case bigmath.Exp, bigmath.Exp2, bigmath.Exp10, bigmath.Sinh, bigmath.Cosh:
		return (rng.Float64()*2 - 1) * 60
	default:
		return (rng.Float64()*2 - 1) * 200
	}
}

// CRLibm must be correctly rounded in its working format for all four
// supported modes; validated against the oracle via the round-to-odd
// derivation.
func TestCRLibmCorrectlyRoundedInWorking(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	w := ScaledDouble
	ext := w.Extend(2)
	modes := []fp.Mode{fp.RoundNearestEven, fp.RoundTowardZero, fp.RoundTowardPositive, fp.RoundTowardNegative}
	for _, fn := range bigmath.AllFuncs {
		lib := CRLibm{Fn: fn}
		if lib.SupportsMode(fp.RoundNearestAway) {
			t.Errorf("%v: must not support ties-to-away (CR-LIBM doesn't)", fn)
		}
		for i := 0; i < 40; i++ {
			x := randomInput(fn, rng)
			roVal := ext.Decode(bigmath.CorrectlyRounded(fn, x, ext, fp.RoundToOdd))
			for _, m := range modes {
				want := w.FromFloat64(roVal, m)
				got := w.FromFloat64(lib.Value(x, m), m)
				if got != want {
					t.Errorf("%v(%g) %v: got %#x want %#x", fn, x, m, got, want)
				}
			}
		}
	}
}

// DDLibm is essentially correctly rounded at rn in its working format;
// MathLibm (truncating) is not — that contrast is the Table 2 story.
func TestAccuracyContrast(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	w := ScaledDouble
	ext := w.Extend(2)
	ddWrong, mathWrong, n := 0, 0, 0
	for _, fn := range bigmath.AllFuncs {
		ddl := DDLibm{Fn: fn}
		ml := MathLibm{Fn: fn}
		for i := 0; i < 30; i++ {
			x := randomInput(fn, rng)
			roVal := ext.Decode(bigmath.CorrectlyRounded(fn, x, ext, fp.RoundToOdd))
			want := w.FromFloat64(roVal, fp.RoundNearestEven)
			if w.FromFloat64(ddl.Value(x), fp.RoundNearestEven) != want {
				ddWrong++
			}
			if w.FromFloat64(ml.Value(x), fp.RoundNearestEven) != want {
				mathWrong++
			}
			n++
		}
	}
	if ddWrong > n/50 {
		t.Errorf("DDLibm wrong on %d/%d working-format results", ddWrong, n)
	}
	if mathWrong < n/10 {
		t.Errorf("MathLibm suspiciously accurate: %d/%d wrong (it must model a non-correctly-rounded library)", mathWrong, n)
	}
}

// All three libraries agree with the oracle on small formats, where their
// working precision dwarfs the targets.
func TestAllCorrectAtBfloat16(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	out := fp.Bfloat16
	for _, fn := range bigmath.AllFuncs {
		ml := MathLibm{Fn: fn}
		ddl := DDLibm{Fn: fn}
		crl := CRLibm{Fn: fn}
		for i := 0; i < 150; i++ {
			b := uint64(rng.Int63()) & (out.NumValues() - 1)
			x := out.Decode(b)
			if math.IsNaN(x) {
				continue
			}
			if _, exact := bigmath.ExactValue(fn, x); exact && (fn == bigmath.SinPi || fn == bigmath.CosPi) {
				continue // zero-sign conventions differ in the math package
			}
			want := bigmath.CorrectlyRounded(fn, x, out, fp.RoundNearestEven)
			if got := ml.Bits(x, out, fp.RoundNearestEven); got != want {
				t.Errorf("math %v(%g): %#x want %#x", fn, x, got, want)
			}
			if got := ddl.Bits(x, out, fp.RoundNearestEven); got != want {
				t.Errorf("dd %v(%g): %#x want %#x", fn, x, got, want)
			}
			if got := crl.Bits(x, out, fp.RoundNearestEven); got != want {
				t.Errorf("cr %v(%g): %#x want %#x", fn, x, got, want)
			}
		}
	}
}

func BenchmarkComparators(b *testing.B) {
	rng := rand.New(rand.NewSource(83))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()*20 + 0.5
	}
	for _, fn := range []bigmath.Func{bigmath.Exp, bigmath.Ln} {
		b.Run("math-"+fn.String(), func(b *testing.B) {
			lib := MathLibm{Fn: fn}
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += lib.Value(xs[i&1023])
			}
			_ = sink
		})
		b.Run("dd-"+fn.String(), func(b *testing.B) {
			lib := DDLibm{Fn: fn}
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += lib.Value(xs[i&1023])
			}
			_ = sink
		})
		b.Run("cr-"+fn.String(), func(b *testing.B) {
			lib := CRLibm{Fn: fn}
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += lib.Value(xs[i&1023], fp.RoundNearestEven)
			}
			_ = sink
		})
	}
}
