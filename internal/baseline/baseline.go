// Package baseline implements the comparator math libraries of the paper's
// evaluation (§4 Methodology) as behavioural substitutes for the
// closed/unlinkable originals:
//
//   - MathLibm — "glibc's double libm": fast, within ~1 ulp of its working
//     precision but not correctly rounded;
//   - DDLibm — "Intel's double libm": double-double evaluation, correctly
//     rounded to its working precision under round-to-nearest only, and
//     slightly slower;
//   - CRLibm — "CR-LIBM": a Ziv two-step implementation, correctly rounded
//     in its working precision for four rounding modes (no ties-to-away),
//     with an arbitrary-precision slow path.
//
// All three produce a value in a working format and re-round it to the
// requested target — the re-purposing pattern whose double-rounding hazard
// motivates RLibm-All/RLIBM-Prog.
//
// Working precision scaling: the paper's comparators compute in binary64
// (53 bits) and serve a 24-bit float — 29 bits of headroom. Reproducing
// their Table 2 failure pattern at this project's default largest format
// F22,8 requires comparable headroom, so the default working format is
// ScaledDouble = F(49,10) (47-bit precision). With
// Working set to a wider format the comparators converge to raw double
// behaviour. See DESIGN.md §3.
package baseline

import (
	"math"

	"repro/internal/bigmath"
	"repro/internal/dd"
	"repro/internal/fp"
)

// ScaledDouble is the comparators' default working format: the "double
// precision of the scaled-down world" (see the package comment).
var ScaledDouble = fp.MustFormat(49, 10)

// MathLibm is the "glibc double libm" substitute: Go's math package,
// truncated into the working format (a fast library whose results are
// within one working-ulp but not correctly rounded).
type MathLibm struct {
	Fn      bigmath.Func
	Working fp.Format // zero value → ScaledDouble
}

func (m MathLibm) working() fp.Format {
	if m.Working.Bits() == 0 {
		return ScaledDouble
	}
	return m.Working
}

// Value returns the library's working-precision result as a double.
func (m MathLibm) Value(x float64) float64 {
	w := m.working()
	return w.Decode(w.FromFloat64(m.Fn.Float64(x), fp.RoundTowardZero))
}

// Bits re-rounds the working-precision result into out under mode.
func (m MathLibm) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return out.FromFloat64(m.Value(x), mode)
}

// DDLibm is the "Intel double libm" substitute: double-double kernels
// rounded to nearest into the working format — essentially correctly
// rounded there under rn, and slower than MathLibm.
type DDLibm struct {
	Fn      bigmath.Func
	Working fp.Format
}

func (d DDLibm) working() fp.Format {
	if d.Working.Bits() == 0 {
		return ScaledDouble
	}
	return d.Working
}

// Value returns the working-precision result as a double.
func (d DDLibm) Value(x float64) float64 {
	w := d.working()
	v := dd.Eval(d.Fn, x)
	return w.Decode(w.FromFloat64(v.Value(), fp.RoundNearestEven))
}

// Bits re-rounds the working-precision result into out under mode.
func (d DDLibm) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return out.FromFloat64(d.Value(x), mode)
}

// CRLibm is the "CR-LIBM" substitute: correctly rounded into its working
// format under rn/rz/ru/rd (CR-LIBM has no ties-to-away implementation),
// via a double-double first step and an arbitrary-precision second step.
type CRLibm struct {
	Fn      bigmath.Func
	Working fp.Format
}

func (c CRLibm) working() fp.Format {
	if c.Working.Bits() == 0 {
		return ScaledDouble
	}
	return c.Working
}

// SupportsMode reports whether the mode is implemented.
func (c CRLibm) SupportsMode(m fp.Mode) bool { return m != fp.RoundNearestAway }

// Value returns the correctly rounded working-precision result as a double.
func (c CRLibm) Value(x float64, mode fp.Mode) float64 {
	w := c.working()
	v := dd.Eval(c.Fn, x)
	if math.IsNaN(v.Hi) || math.IsInf(v.Hi, 0) || v.Hi == 0 {
		return w.Decode(w.FromFloat64(v.Hi, mode))
	}
	// Subnormal-adjacent working results lose the dd error structure:
	// straight to the slow path.
	if math.Abs(v.Hi) > math.Ldexp(1, -960) {
		if bits, ok := roundDDUnambiguous(w, v, mode); ok {
			return w.Decode(bits)
		}
	}
	return w.Decode(bigmath.CorrectlyRounded(c.Fn, x, w, mode))
}

// Bits re-rounds the correctly rounded working-precision result into out —
// correct for the working format itself, but exposed to double rounding on
// narrower targets exactly like re-purposed CR-LIBM.
func (c CRLibm) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return out.FromFloat64(c.Value(x, mode), mode)
}

// roundDDUnambiguous rounds the exact sum v.Hi+v.Lo into w under mode,
// reporting failure when the dd error envelope (2^-58 relative) straddles a
// rounding boundary — the Ziv step-one test, entirely in fixed-width
// arithmetic via fp.FromSum.
func roundDDUnambiguous(w fp.Format, v dd.DD, mode fp.Mode) (uint64, bool) {
	eps := math.Abs(v.Hi) * 0x1p-58
	a := w.FromSum(v.Hi, v.Lo-eps, mode)
	b := w.FromSum(v.Hi, v.Lo+eps, mode)
	if a != b {
		return 0, false
	}
	return a, true
}
