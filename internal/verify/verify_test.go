package verify

import (
	"math"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
)

func smallResult(t *testing.T, fn bigmath.Func) *gen.Result {
	t.Helper()
	res, err := gen.Generate(fn, gen.Options{
		Levels: []fp.Format{fp.MustFormat(11, 8), fp.MustFormat(13, 8)},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExhaustiveCleanImplementation(t *testing.T) {
	fn := bigmath.Log10
	res := smallResult(t, fn)
	orc := oracle.New(fn)
	if _, err := Repair(res, orc, 0); err != nil {
		t.Fatal(err)
	}
	impl := NewGenImpl(res)
	for _, f := range []fp.Format{fp.MustFormat(11, 8), fp.MustFormat(13, 8)} {
		var modes []fp.Mode
		if f.Bits() == 13 {
			modes = fp.StandardModes
		} else {
			modes = []fp.Mode{fp.RoundNearestEven}
		}
		for _, rep := range Exhaustive(impl, orc, f, modes, 0) {
			if !rep.Correct() {
				t.Errorf("%v", rep)
			}
			if rep.Checked != f.NumValues() {
				t.Errorf("checked %d of %d", rep.Checked, f.NumValues())
			}
		}
	}
}

// A corrupted coefficient must be detected, and small corruptions must be
// repairable into the special table.
func TestDetectAndRepairCorruption(t *testing.T) {
	fn := bigmath.Exp
	res := smallResult(t, fn)
	orc := oracle.New(fn)
	if _, err := Repair(res, orc, 0); err != nil {
		t.Fatal(err)
	}

	// Heavy corruption: scale the top coefficient. Exhaustive must light up.
	k := &res.Kernels[0]
	old := k.Pieces[0].Coeffs[0]
	k.Pieces[0].Coeffs[0] = old * (1 + 1e-3)
	impl := NewGenImpl(res)
	bad := 0
	for _, rep := range ExhaustiveLevel(res, orc, 1, []fp.Mode{fp.RoundNearestEven}, 0) {
		bad += len(rep.Mismatches)
	}
	if bad == 0 {
		t.Fatal("corruption not detected")
	}
	if _, err := Repair(res, orc, 0); err == nil {
		t.Fatal("heavy corruption unexpectedly repairable within budget")
	}
	k.Pieces[0].Coeffs[0] = old
	_ = impl

	// Light corruption: drop one special entry (if any); Repair restores it.
	for li := range res.Specials {
		if len(res.Specials[li]) > 0 {
			res.Specials[li] = res.Specials[li][1:]
			break
		}
	}
	if _, err := Repair(res, orc, 0); err != nil {
		t.Fatalf("light repair failed: %v", err)
	}
	for li := range res.Levels {
		modes := []fp.Mode{fp.RoundNearestEven}
		if li == 1 {
			modes = fp.StandardModes
		}
		for _, rep := range ExhaustiveLevel(res, orc, li, modes, 0) {
			if !rep.Correct() {
				t.Errorf("after repair: %v", rep)
			}
		}
	}
}

func TestSampledFindsCorpusMismatch(t *testing.T) {
	fn := bigmath.Sinh
	res := smallResult(t, fn)
	orc := oracle.New(fn)
	if _, err := Repair(res, orc, 0); err != nil {
		t.Fatal(err)
	}
	impl := NewGenImpl(res)
	f := fp.MustFormat(13, 8)
	for _, rep := range Sampled(impl, orc, f, fp.StandardModes, 2000, 9, 0) {
		if !rep.Correct() {
			t.Errorf("%v", rep)
		}
	}
	// A broken impl (always +1) must fail immediately via the corpus.
	brokenReports := Sampled(brokenImpl{}, orc, f, []fp.Mode{fp.RoundNearestEven}, 10, 9, 0)
	if brokenReports[0].Correct() {
		t.Error("broken implementation passed sampling")
	}
}

type brokenImpl struct{}

func (brokenImpl) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	return out.FromFloat64(math.Abs(x)+1, mode)
}

func TestReportString(t *testing.T) {
	r := Report{Format: fp.Bfloat16, Mode: fp.RoundNearestEven, Checked: 10}
	if r.String() == "" || !r.Correct() {
		t.Error("report formatting")
	}
	r.Mismatches = []uint64{1}
	if r.Correct() {
		t.Error("mismatch not reflected")
	}
}
