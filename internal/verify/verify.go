// Package verify checks generated implementations (and comparator
// libraries) for correct rounding by exhaustive enumeration, reproducing
// the methodology behind Table 2 of the paper.
package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
)

// Impl is any math-library implementation of one elementary function that
// can answer "f(x) rounded into out under mode" — the generated library,
// the RLibm-All baseline, and the double-precision comparators all satisfy
// it.
type Impl interface {
	// Bits returns the result bit pattern of f(x) in out under mode; x is
	// always a value of out... of the queried input format.
	Bits(x float64, out fp.Format, mode fp.Mode) uint64
}

// Report summarizes one exhaustive check.
type Report struct {
	Format     fp.Format
	Mode       fp.Mode
	Checked    uint64
	Mismatches []uint64 // input bit patterns (capped)
}

// Correct reports whether no mismatches were found.
func (r Report) Correct() bool { return len(r.Mismatches) == 0 }

func (r Report) String() string {
	status := "correct"
	if !r.Correct() {
		status = fmt.Sprintf("%d WRONG", len(r.Mismatches))
	}
	return fmt.Sprintf("%v %v: %d inputs, %s", r.Format, r.Mode, r.Checked, status)
}

// maxRecorded caps the mismatch list so broken implementations don't
// accumulate gigabytes.
const maxRecorded = 1 << 16

// Exhaustive checks impl against the oracle over every input of format f
// under mode. The oracle derives every standard mode from one round-to-odd
// result at f+2 bits (the RLibm-All theorem, property-tested in fp), so a
// multi-mode sweep costs a single oracle pass.
func Exhaustive(impl Impl, orc *oracle.Oracle, f fp.Format, modes []fp.Mode) []Report {
	ext := f.Extend(2)
	reports := make([]Report, len(modes))
	for i, m := range modes {
		reports[i] = Report{Format: f, Mode: m}
	}
	for b := uint64(0); b < f.NumValues(); b++ {
		x := f.Decode(b)
		roVal := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
		for i, m := range modes {
			want := f.FromFloat64(roVal, m)
			got := impl.Bits(x, f, m)
			reports[i].Checked++
			if got != want && len(reports[i].Mismatches) < maxRecorded {
				reports[i].Mismatches = append(reports[i].Mismatches, b)
			}
		}
	}
	return reports
}

// Sampled checks impl against the oracle on n random inputs of format f
// plus a structured corpus (specials, boundaries, values near 1), under
// each mode. Used where exhaustive enumeration is too slow (the largest
// format in quick runs).
func Sampled(impl Impl, orc *oracle.Oracle, f fp.Format, modes []fp.Mode, n int, seed int64) []Report {
	ext := f.Extend(2)
	reports := make([]Report, len(modes))
	for i, m := range modes {
		reports[i] = Report{Format: f, Mode: m}
	}
	rng := rand.New(rand.NewSource(seed))
	corpus := []uint64{
		f.Zero(false), f.Zero(true), f.Inf(false), f.Inf(true), f.NaN(),
		f.MinSubnormal(), f.MaxFinite(), f.FromFloat64(1, fp.RoundNearestEven),
		f.FromFloat64(-1, fp.RoundNearestEven), f.NextUp(f.FromFloat64(1, fp.RoundNearestEven)),
		f.NextDown(f.FromFloat64(1, fp.RoundNearestEven)),
	}
	check := func(b uint64) {
		x := f.Decode(b)
		roVal := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
		for i, m := range modes {
			want := f.FromFloat64(roVal, m)
			got := impl.Bits(x, f, m)
			reports[i].Checked++
			if got != want && len(reports[i].Mismatches) < maxRecorded {
				reports[i].Mismatches = append(reports[i].Mismatches, b)
			}
		}
	}
	for _, b := range corpus {
		check(b)
	}
	for i := 0; i < n; i++ {
		check(uint64(rng.Int63()) & (f.NumValues() - 1))
	}
	return reports
}

// genImpl adapts a generated Result to Impl, serving each query from the
// level that owns the queried format.
type genImpl struct {
	res *gen.Result
}

// NewGenImpl wraps a generated result as an Impl.
func NewGenImpl(res *gen.Result) Impl { return genImpl{res: res} }

func (g genImpl) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	li, ok := g.res.ServingLevel(out, mode)
	if !ok {
		li = len(g.res.Levels) - 1
	}
	return g.res.Eval(x, li, out, mode)
}

// RepairBudget bounds how many mismatched inputs Repair may patch per
// level before declaring the implementation broken.
const RepairBudget = 64

// Repair exhaustively verifies each level of a generated result and
// patches mismatching inputs into the level's special-input table (with
// the all-modes round-to-odd proxy). The smaller levels are verified under
// round-to-nearest (the paper's progressive guarantee); the largest level
// under all five standard modes. It returns the number of patches applied
// and an error when a level exceeds the budget — which indicates a
// generation bug rather than the handful of expected stragglers.
func Repair(res *gen.Result, orc *oracle.Oracle) (int, error) {
	patched := 0
	for li, lvl := range res.Levels {
		modes := []fp.Mode{fp.RoundNearestEven}
		if li == len(res.Levels)-1 || res.ProgressiveRO {
			modes = fp.StandardModes
		}
		ext := lvl.Extend(2)
		for pass := 0; pass < 2; pass++ {
			total := 0
			for _, rep := range ExhaustiveLevel(res, orc, li, modes) {
				total += len(rep.Mismatches)
				for _, b := range rep.Mismatches {
					x := lvl.Decode(b)
					proxy := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
					res.AddSpecial(li, x, proxy)
					patched++
				}
			}
			if total == 0 {
				break
			}
			if total > RepairBudget {
				return patched, fmt.Errorf("verify: level %v has %d mismatches (budget %d)",
					lvl, total, RepairBudget)
			}
		}
	}
	return patched, nil
}

// ExhaustiveLevel verifies one level of a generated result: every input of
// the level's format, evaluated with that level's term counts.
func ExhaustiveLevel(res *gen.Result, orc *oracle.Oracle, li int, modes []fp.Mode) []Report {
	lvl := res.Levels[li]
	ext := lvl.Extend(2)
	reports := make([]Report, len(modes))
	for i, m := range modes {
		reports[i] = Report{Format: lvl, Mode: m}
	}
	for b := uint64(0); b < lvl.NumValues(); b++ {
		x := lvl.Decode(b)
		roVal := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
		for i, m := range modes {
			want := lvl.FromFloat64(roVal, m)
			got := res.Eval(x, li, lvl, m)
			reports[i].Checked++
			if got != want && len(reports[i].Mismatches) < maxRecorded {
				reports[i].Mismatches = append(reports[i].Mismatches, b)
			}
		}
	}
	return reports
}
