// Package verify checks generated implementations (and comparator
// libraries) for correct rounding by exhaustive enumeration, reproducing
// the methodology behind Table 2 of the paper.
//
// The (input × rounding-mode) space of every check is sharded into
// contiguous bit-ranges and verified on a worker pool (the workers argument
// resolves through parallel.WorkerCount: 0 means one per logical CPU, 1
// runs serially). Per-shard reports are merged in deterministic shard
// order, so mismatch counts, mismatch lists and first-failure witnesses are
// bit-identical to a serial sweep for every worker count. Impl
// implementations must therefore be safe for concurrent Bits calls — the
// generated Result, the baselines and the oracle all are.
package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/parallel"
)

// Impl is any math-library implementation of one elementary function that
// can answer "f(x) rounded into out under mode" — the generated library,
// the RLibm-All baseline, and the double-precision comparators all satisfy
// it. Bits must be safe for concurrent calls.
type Impl interface {
	// Bits returns the result bit pattern of f(x) in out under mode; x is
	// always a value of out... of the queried input format.
	Bits(x float64, out fp.Format, mode fp.Mode) uint64
}

// Report summarizes one exhaustive check.
type Report struct {
	Format     fp.Format
	Mode       fp.Mode
	Checked    uint64
	Mismatches []uint64 // input bit patterns (capped)
}

// Correct reports whether no mismatches were found.
func (r Report) Correct() bool { return len(r.Mismatches) == 0 }

func (r Report) String() string {
	status := "correct"
	if !r.Correct() {
		status = fmt.Sprintf("%d WRONG", len(r.Mismatches))
	}
	return fmt.Sprintf("%v %v: %d inputs, %s", r.Format, r.Mode, r.Checked, status)
}

// maxRecorded caps the mismatch list so broken implementations don't
// accumulate gigabytes.
const maxRecorded = 1 << 16

// check evaluates one input bit pattern against the oracle's round-to-odd
// proxy under every requested mode, recording mismatches into reports.
type check struct {
	f, ext  fp.Format
	modes   []fp.Mode
	orc     *oracle.Oracle
	got     func(x float64, m fp.Mode) uint64
	reports []Report
}

func newCheck(f fp.Format, modes []fp.Mode, orc *oracle.Oracle, got func(float64, fp.Mode) uint64) *check {
	c := &check{f: f, ext: f.Extend(2), modes: modes, orc: orc, got: got}
	c.reports = make([]Report, len(modes))
	for i, m := range modes {
		c.reports[i] = Report{Format: f, Mode: m}
	}
	return c
}

func (c *check) input(b uint64) {
	x := c.f.Decode(b)
	roVal := c.ext.Decode(c.orc.Result(x, c.ext, fp.RoundToOdd))
	for i, m := range c.modes {
		want := c.f.FromFloat64(roVal, m)
		got := c.got(x, m)
		c.reports[i].Checked++
		if got != want && len(c.reports[i].Mismatches) < maxRecorded {
			c.reports[i].Mismatches = append(c.reports[i].Mismatches, b)
		}
	}
}

// sweep shards the bit patterns of inputs[lo:hi] ranges over the pool and
// merges the per-shard reports in shard order. bits(i) maps a work index to
// the input bit pattern; n is the work-list length.
func sweep(f fp.Format, modes []fp.Mode, orc *oracle.Oracle, workers int, n uint64,
	bits func(uint64) uint64, got func(float64, fp.Mode) uint64) []Report {

	shards := parallel.SplitRange(n, parallel.ShardCount(workers))
	per := make([][]Report, len(shards))
	parallel.ForEach(workers, len(shards), func(s int) {
		c := newCheck(f, modes, orc, got)
		for i := shards[s].Lo; i < shards[s].Hi; i++ {
			c.input(bits(i))
		}
		per[s] = c.reports
	})
	// Merge in shard order: the shards partition the ascending work list,
	// so concatenating mismatch lists (capped like the serial sweep)
	// reproduces the serial reports exactly.
	return MergeReports(f, modes, per)
}

// MergeReports merges per-slice report sets produced over an ascending
// partition of one work list — the same merge sweep applies to its
// worker-pool shards, exported for the distributed assembler in
// internal/cli. Each element of per holds one Report per mode, in mode
// order. Because the slices partition the ascending input space and the
// mismatch cap is applied in slice order, the merged reports are
// bit-identical to a serial sweep for any partition.
func MergeReports(f fp.Format, modes []fp.Mode, per [][]Report) []Report {
	merged := make([]Report, len(modes))
	for i, m := range modes {
		merged[i] = Report{Format: f, Mode: m}
	}
	for _, reps := range per {
		for i := range merged {
			merged[i].Checked += reps[i].Checked
			room := maxRecorded - len(merged[i].Mismatches)
			if room > len(reps[i].Mismatches) {
				room = len(reps[i].Mismatches)
			}
			merged[i].Mismatches = append(merged[i].Mismatches, reps[i].Mismatches[:room]...)
		}
	}
	return merged
}

// Exhaustive checks impl against the oracle over every input of format f
// under mode, sharded over up to workers goroutines. The oracle derives
// every standard mode from one round-to-odd result at f+2 bits (the
// RLibm-All theorem, property-tested in fp), so a multi-mode sweep costs a
// single oracle pass.
func Exhaustive(impl Impl, orc *oracle.Oracle, f fp.Format, modes []fp.Mode, workers int) []Report {
	return sweep(f, modes, orc, workers, f.NumValues(),
		func(i uint64) uint64 { return i },
		func(x float64, m fp.Mode) uint64 { return impl.Bits(x, f, m) })
}

// Sampled checks impl against the oracle on n random inputs of format f
// plus a structured corpus (specials, boundaries, values near 1), under
// each mode. Used where exhaustive enumeration is too slow (the largest
// format in quick runs). The input list is drawn serially from the seed —
// so the checked set does not depend on workers — and then verified on the
// pool.
func Sampled(impl Impl, orc *oracle.Oracle, f fp.Format, modes []fp.Mode, n int, seed int64, workers int) []Report {
	rng := rand.New(rand.NewSource(seed))
	inputs := []uint64{
		f.Zero(false), f.Zero(true), f.Inf(false), f.Inf(true), f.NaN(),
		f.MinSubnormal(), f.MaxFinite(), f.FromFloat64(1, fp.RoundNearestEven),
		f.FromFloat64(-1, fp.RoundNearestEven), f.NextUp(f.FromFloat64(1, fp.RoundNearestEven)),
		f.NextDown(f.FromFloat64(1, fp.RoundNearestEven)),
	}
	for i := 0; i < n; i++ {
		inputs = append(inputs, uint64(rng.Int63())&(f.NumValues()-1))
	}
	return sweep(f, modes, orc, workers, uint64(len(inputs)),
		func(i uint64) uint64 { return inputs[i] },
		func(x float64, m fp.Mode) uint64 { return impl.Bits(x, f, m) })
}

// genImpl adapts a generated Result to Impl, serving each query from the
// level that owns the queried format.
type genImpl struct {
	res *gen.Result
}

// NewGenImpl wraps a generated result as an Impl.
func NewGenImpl(res *gen.Result) Impl { return genImpl{res: res} }

func (g genImpl) Bits(x float64, out fp.Format, mode fp.Mode) uint64 {
	li, ok := g.res.ServingLevel(out, mode)
	if !ok {
		li = len(g.res.Levels) - 1
	}
	return g.res.Eval(x, li, out, mode)
}

// RepairBudget bounds how many mismatched inputs Repair may patch per
// level before declaring the implementation broken.
const RepairBudget = 64

// Repair exhaustively verifies each level of a generated result and
// patches mismatching inputs into the level's special-input table (with
// the all-modes round-to-odd proxy). The smaller levels are verified under
// round-to-nearest (the paper's progressive guarantee); the largest level
// under all five standard modes. It returns the number of patches applied
// and an error when a level exceeds the budget — which indicates a
// generation bug rather than the handful of expected stragglers. The
// verification sweeps run on up to workers goroutines; patching is serial
// and in mismatch order, so the repaired result is worker-count-
// independent.
func Repair(res *gen.Result, orc *oracle.Oracle, workers int) (int, error) {
	patched := 0
	for li, lvl := range res.Levels {
		modes := []fp.Mode{fp.RoundNearestEven}
		if li == len(res.Levels)-1 || res.ProgressiveRO {
			modes = fp.StandardModes
		}
		ext := lvl.Extend(2)
		for pass := 0; pass < 2; pass++ {
			total := 0
			for _, rep := range ExhaustiveLevel(res, orc, li, modes, workers) {
				total += len(rep.Mismatches)
				for _, b := range rep.Mismatches {
					x := lvl.Decode(b)
					proxy := ext.Decode(orc.Result(x, ext, fp.RoundToOdd))
					res.AddSpecial(li, x, proxy)
					patched++
				}
			}
			if total == 0 {
				break
			}
			if total > RepairBudget {
				return patched, fmt.Errorf("verify: level %v has %d mismatches (budget %d)",
					lvl, total, RepairBudget)
			}
		}
	}
	return patched, nil
}

// ExhaustiveLevel verifies one level of a generated result: every input of
// the level's format, evaluated with that level's term counts, sharded
// over up to workers goroutines.
func ExhaustiveLevel(res *gen.Result, orc *oracle.Oracle, li int, modes []fp.Mode, workers int) []Report {
	lvl := res.Levels[li]
	return ExhaustiveLevelRange(res, orc, li, modes, workers, 0, lvl.NumValues())
}

// ExhaustiveLevelRange verifies the contiguous input slice [lo, hi) of one
// level of a generated result — the work unit of distributed verification:
// a full level sweep is the shard-order concatenation of its slice sweeps,
// so per-slice reports merged in ascending slice order are bit-identical
// to ExhaustiveLevel's (the same merge the worker pool already performs
// within one process).
func ExhaustiveLevelRange(res *gen.Result, orc *oracle.Oracle, li int, modes []fp.Mode, workers int, lo, hi uint64) []Report {
	lvl := res.Levels[li]
	if hi > lvl.NumValues() {
		hi = lvl.NumValues()
	}
	if lo > hi {
		lo = hi
	}
	return sweep(lvl, modes, orc, workers, hi-lo,
		func(i uint64) uint64 { return lo + i },
		func(x float64, m fp.Mode) uint64 { return res.Eval(x, li, lvl, m) })
}
