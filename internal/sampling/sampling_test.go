package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func TestSelectsAllWhenSampleCoversSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := []float64{1, 2, 3, 4}
	got := Weighted(w, 10, rng)
	if len(got) != 4 {
		t.Fatalf("selected %d items, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestZeroWeightNeverSelected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := []float64{1, 0, 1, -3, 1}
	for trial := 0; trial < 200; trial++ {
		for _, i := range Weighted(w, 3, rng) {
			if i == 1 || i == 3 {
				t.Fatalf("selected non-positive-weight index %d", i)
			}
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := Weighted(nil, 5, rng); len(got) != 0 {
		t.Errorf("nil weights: %v", got)
	}
	if got := Weighted([]float64{1, 2}, 0, rng); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if got := Weighted([]float64{0, 0}, 2, rng); len(got) != 0 {
		t.Errorf("all-zero weights: %v", got)
	}
}

// Single-item samples must follow the weight distribution: P(i) = w_i/Σw.
func TestDistributionSingleDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := []float64{1, 2, 4, 8}
	counts := make([]int, len(w))
	const trials = 60000
	for i := 0; i < trials; i++ {
		got := Weighted(w, 1, rng)
		counts[got[0]]++
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	for i, c := range counts {
		want := float64(trials) * w[i] / total
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("index %d: count %d, want ≈%.0f", i, c, want)
		}
	}
}

// Pairwise inclusion for n=2 from 3 items is also weight-monotone: heavier
// items appear more often.
func TestInclusionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := []float64{1, 3, 9}
	counts := make([]int, len(w))
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, j := range Weighted(w, 2, rng) {
			counts[j]++
		}
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("inclusion counts not monotone in weight: %v", counts)
	}
}

// Huge weights from repeated doubling must not overflow the keys.
func TestHugeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := make([]float64, 100)
	for i := range w {
		w[i] = 1
	}
	w[17] = math.Ldexp(1, 500)
	hits := 0
	for trial := 0; trial < 200; trial++ {
		for _, i := range Weighted(w, 1, rng) {
			if i == 17 {
				hits++
			}
		}
	}
	if hits < 195 {
		t.Errorf("dominant weight selected only %d/200 times", hits)
	}
}

func BenchmarkWeighted(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	w := make([]float64, 1<<20)
	for i := range w {
		w[i] = 1 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Weighted(w, 384, rng)
	}
}
