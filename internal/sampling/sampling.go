// Package sampling implements weighted random sampling without replacement
// using the Efraimidis–Spirakis one-pass scheme [13 in the paper]: item i
// with weight w_i draws u_i ~ U(0,1) and key_i = u_i^(1/w_i); the n items
// with the largest keys form a sample distributed according to the weights.
// RLIBM-Prog uses it to materialize Clarkson's constraint multi-set as
// weights instead of duplicated constraints.
package sampling

import (
	"container/heap"
	"math"
	"math/rand"
)

// keyHeap is a min-heap of (key, index) pairs capped at the sample size.
type keyHeap struct {
	keys []float64
	idx  []int
}

func (h *keyHeap) Len() int           { return len(h.keys) }
func (h *keyHeap) Less(i, j int) bool { return h.keys[i] < h.keys[j] }
func (h *keyHeap) Swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}

//lint:ignore barepanic heap.Interface stub; the reservoir never grows the heap through the interface.
func (h *keyHeap) Push(x interface{}) { panic("unused") }

//lint:ignore barepanic heap.Interface stub; the reservoir never shrinks the heap through the interface.
func (h *keyHeap) Pop() interface{} { panic("unused") }

// Weighted selects min(n, len(weights)) distinct indices with probability
// proportional to their weights. Items with non-positive weight are never
// selected. The log-domain key ln(u)/w (monotone in u^(1/w)) avoids
// underflow when weights grow by doubling, as they do in the Clarkson
// solver.
func Weighted(weights []float64, n int, rng *rand.Rand) []int {
	if n <= 0 {
		return nil
	}
	h := &keyHeap{
		keys: make([]float64, 0, n),
		idx:  make([]int, 0, n),
	}
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		// key = ln(u)/w ∈ (-∞, 0): larger is better, matching u^(1/w).
		key := math.Log(rng.Float64()) / w
		if len(h.keys) < n {
			h.keys = append(h.keys, key)
			h.idx = append(h.idx, i)
			if len(h.keys) == n {
				heap.Init(h)
			}
			continue
		}
		if key > h.keys[0] {
			h.keys[0] = key
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	if len(h.keys) < n && len(h.keys) > 0 {
		heap.Init(h)
	}
	out := make([]int, len(h.idx))
	copy(out, h.idx)
	return out
}
