package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestErrorStringAndChain(t *testing.T) {
	cause := errors.New("disk full")
	e := New(CodeStoreIO, "solve", "write", cause).WithFunc("log2").WithPiece(1, 3).WithAttempt(2)
	got := e.Error()
	for _, want := range []string{"fault[store-io]", "stage=solve", "func=log2", "op=write",
		"kernel=1", "piece=3", "attempt=2", "disk full"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
	if !errors.Is(e, cause) {
		t.Error("errors.Is(e, cause) = false, want true")
	}
	var fe *Error
	if !errors.As(fmt.Errorf("wrapped: %w", e), &fe) || fe.Code != CodeStoreIO {
		t.Error("errors.As through a wrap failed")
	}
	if CodeOf(fmt.Errorf("wrapped: %w", e)) != CodeStoreIO {
		t.Error("CodeOf through a wrap failed")
	}
	if CodeOf(errors.New("plain")) != "" {
		t.Error("CodeOf(plain) should be empty")
	}
}

func TestErrorIsMatchesBareCode(t *testing.T) {
	e := New(CodeSolverBudget, "solve", "clarkson", nil).WithFunc("exp")
	if !errors.Is(e, &Error{Code: CodeSolverBudget}) {
		t.Error("bare-code probe should match")
	}
	if errors.Is(e, &Error{Code: CodeStoreIO}) {
		t.Error("different code must not match")
	}
	if errors.Is(e, &Error{Code: CodeSolverBudget, Func: "log2"}) {
		t.Error("different func must not match")
	}
}

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	for i := 0; i < 3; i++ {
		if p.Should(SiteStoreWrite) {
			t.Fatal("nil plan fired")
		}
	}
	if p.Count(SiteStoreWrite) != 0 {
		t.Error("nil plan counted")
	}
	p.Reset() // must not panic
}

func TestPlanOccurrenceKeying(t *testing.T) {
	p := NewPlan().At(SiteSolverSample, 2, 4)
	var fired []int
	for i := 1; i <= 5; i++ {
		if p.Should(SiteSolverSample) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Errorf("fired at %v, want [2 4]", fired)
	}
	if p.Count(SiteSolverSample) != 5 {
		t.Errorf("Count = %d, want 5", p.Count(SiteSolverSample))
	}
	// Other sites are independent.
	if p.Should(SiteStoreRead) {
		t.Error("unscheduled site fired")
	}
}

func TestPlanFrom(t *testing.T) {
	p := NewPlan().From(SiteSolverBudget, 3)
	want := []bool{false, false, true, true, true}
	for i, w := range want {
		if got := p.Should(SiteSolverBudget); got != w {
			t.Errorf("occurrence %d: fired=%v, want %v", i+1, got, w)
		}
	}
	p.Reset()
	if p.Should(SiteSolverBudget) {
		t.Error("after Reset occurrence 1 must not fire")
	}
}

func TestPlanConcurrentDeterministicTotal(t *testing.T) {
	// Under concurrency the firing order is scheduler-dependent, but the
	// total number of fires is exactly the number of scheduled
	// occurrences that were reached.
	p := NewPlan().At(SiteWorkerPanic, 1, 50, 100)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fires := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if p.Should(SiteWorkerPanic) {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if p.Count(SiteWorkerPanic) != 200 {
		t.Errorf("Count = %d, want 200", p.Count(SiteWorkerPanic))
	}
	if fires != 3 {
		t.Errorf("fires = %d, want 3", fires)
	}
}

func TestSitesCoversAllConstants(t *testing.T) {
	sites := Sites()
	seen := make(map[Site]bool, len(sites))
	for _, s := range sites {
		if seen[s] {
			t.Errorf("duplicate site %s", s)
		}
		seen[s] = true
	}
	if len(sites) != 12 {
		t.Errorf("Sites() has %d entries, want 12 — update Sites() when adding a Site constant", len(sites))
	}
}
