// Package fault defines the pipeline's typed error taxonomy and a seeded,
// deterministic fault-injection harness.
//
// Every recoverable failure on the coefficient-generation path — oracle
// Ziv-loop exhaustion, Clarkson sample infeasibility, artifact-store I/O,
// worker panics, cancellation — is surfaced as a *fault.Error carrying the
// pipeline stage, elementary function, kernel/piece coordinates, attempt
// number and a stable machine-readable Code. Callers branch on Code (or on
// errors.As/Is); humans grep the README troubleshooting table for it.
//
// Injection is controlled by a Plan: a deterministic map from injection
// site to the set of occurrence indices (1-based) at which the site fires.
// With a nil Plan every probe is free and answers false, so the production
// path carries no configuration. Occurrence counting is mutex-guarded and
// therefore reproducible under -race for any worker count, as long as the
// set of probe calls itself is deterministic (which the pipeline's
// replay-on-injection retry guarantees).
package fault

import (
	"errors"
	"fmt"
)

// Code is a stable, machine-readable error class. Codes are part of the
// artifact/troubleshooting contract: never renumber or reuse them.
type Code string

const (
	// CodeOracleExhausted: the Ziv rounding loop hit its precision cap
	// without disambiguating a rounding decision.
	CodeOracleExhausted Code = "oracle-exhausted"
	// CodeSolverNumeric: the LP solver (float64 and exact escalation)
	// reported a numeric failure for a sample.
	CodeSolverNumeric Code = "solver-numeric"
	// CodeSolverInfeasible: the exact rational solver certified the
	// constraint system infeasible.
	CodeSolverInfeasible Code = "solver-infeasible"
	// CodeSolverBudget: the Clarkson iteration budget was exhausted and
	// the rescue ladder (seed rotation, budget escalation, degradation)
	// ran dry without finding a polynomial.
	CodeSolverBudget Code = "solver-budget"
	// CodeStoreIO: the artifact store failed to read or write an
	// artifact (including short writes and remote transport failures).
	// Always recoverable — caching is an optimization, the pipeline
	// recomputes.
	CodeStoreIO Code = "store-io"
	// CodeStoreKey: a stage artifact key with an empty component reached
	// the store. Empty components would alias distinct runs onto one
	// content address, so the pipeline rejects them before any probe.
	CodeStoreKey Code = "store-key"
	// CodeArtifactCorrupt: a cached artifact failed its checksum or
	// decode; the store deletes it and the stage regenerates.
	CodeArtifactCorrupt Code = "artifact-corrupt"
	// CodeWorkerPanic: a worker goroutine in the parallel pool panicked;
	// the pool recovered it and attached job context.
	CodeWorkerPanic Code = "worker-panic"
	// CodeCanceled: the run's context was canceled or timed out; the
	// pipeline stopped at a stage boundary and the cache is resumable.
	CodeCanceled Code = "canceled"
	// CodeInjected: a fault-injection probe fired more times than any
	// retry budget allows; only ever seen under a test Plan.
	CodeInjected Code = "injected"
	// CodeOverload: the serving admission queue was full and the request
	// was shed (HTTP 429). Retriable by construction — shedding is how the
	// server survives overload without unbounded goroutines.
	CodeOverload Code = "serve-overload"
	// CodeDraining: the server is draining after SIGTERM and no longer
	// admits new requests (HTTP 503); in-flight requests still complete.
	CodeDraining Code = "serve-draining"
	// CodeServePanic: a request handler panicked; the panic was isolated
	// to that request (HTTP 500) and the server stayed up.
	CodeServePanic Code = "serve-panic"
)

// Error is the typed pipeline error. Zero-valued coordinate fields mean
// "not applicable" (e.g. a store fault has no piece index; Piece and
// Kernel use -1 for n/a so piece 0 stays representable).
type Error struct {
	Code    Code   // stable class, see the Code constants
	Stage   string // pipeline stage ("enumerate", "reduce", "solve", "verify", "store")
	Func    string // elementary function, e.g. "log2" (empty if n/a)
	Op      string // finer-grained operation or injection site
	Kernel  int    // kernel index within the function's scheme, -1 if n/a
	Piece   int    // piece index within the kernel, -1 if n/a
	Attempt int    // 1-based attempt number when a retry policy is active, 0 if n/a
	Err     error  // wrapped cause, may be nil
}

// New constructs an Error with n/a coordinates; callers fill in what they
// know via the fields or the With* helpers.
func New(code Code, stage, op string, err error) *Error {
	return &Error{Code: code, Stage: stage, Op: op, Kernel: -1, Piece: -1, Err: err}
}

// WithFunc returns e with the elementary-function name set.
func (e *Error) WithFunc(fn string) *Error { e.Func = fn; return e }

// WithPiece returns e with kernel/piece coordinates set.
func (e *Error) WithPiece(kernel, piece int) *Error { e.Kernel, e.Piece = kernel, piece; return e }

// WithAttempt returns e with the 1-based attempt number set.
func (e *Error) WithAttempt(n int) *Error { e.Attempt = n; return e }

func (e *Error) Error() string {
	s := fmt.Sprintf("fault[%s]", e.Code)
	if e.Stage != "" {
		s += " stage=" + e.Stage
	}
	if e.Func != "" {
		s += " func=" + e.Func
	}
	if e.Op != "" {
		s += " op=" + e.Op
	}
	if e.Kernel >= 0 {
		s += fmt.Sprintf(" kernel=%d", e.Kernel)
	}
	if e.Piece >= 0 {
		s += fmt.Sprintf(" piece=%d", e.Piece)
	}
	if e.Attempt > 0 {
		s += fmt.Sprintf(" attempt=%d", e.Attempt)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is lets errors.Is match a bare code probe: errors.Is(err,
// &fault.Error{Code: fault.CodeStoreIO}) is true for any store-io fault.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return t.Code == e.Code &&
		(t.Stage == "" || t.Stage == e.Stage) &&
		(t.Func == "" || t.Func == e.Func)
}

// CodeOf returns the Code of the outermost *fault.Error in err's chain,
// or "" if there is none.
func CodeOf(err error) Code {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Code
	}
	return ""
}
