package fault

import (
	"fmt"
	"sync"
)

// Site names one injection point in the pipeline. Sites are compiled into
// the production code as cheap probes (`plan.Should(site)`); a nil *Plan
// answers false, so non-test runs never inject.
type Site string

const (
	// SiteStoreWrite: the artifact store's write fails with an I/O error
	// before anything is renamed into place.
	SiteStoreWrite Site = "store.write"
	// SiteStoreWriteShort: the temp-file write persists fewer bytes than
	// requested (ENOSPC-style short write).
	SiteStoreWriteShort Site = "store.write.short"
	// SiteStoreRead: reading a cached artifact fails with an I/O error
	// (treated as a miss — the stage recomputes).
	SiteStoreRead Site = "store.read"
	// SiteStoreBitFlip: a cached artifact is returned with one byte
	// corrupted, exercising checksum detection → delete → regenerate.
	SiteStoreBitFlip Site = "store.read.bitflip"
	// SiteSolverSample: one Clarkson iteration's sample LP reports a
	// numeric failure (float64 and exact escalation both "fail").
	SiteSolverSample Site = "solver.sample"
	// SiteSolverBudget: a Clarkson solve exhausts its iteration budget
	// immediately.
	SiteSolverBudget Site = "solver.budget"
	// SiteWorkerPanic: a worker goroutine in the solve pool panics
	// mid-job.
	SiteWorkerPanic Site = "worker.panic"
	// SiteOracleZiv: the oracle's Ziv loop exhausts its precision budget
	// for one input.
	SiteOracleZiv Site = "oracle.ziv"
	// SiteRemoteConn: the remote store's connection drops before a request
	// completes; the client reconnects and retries, then degrades to a
	// cache miss (Get) or a typed store-io error (Put/Audit).
	SiteRemoteConn Site = "store.remote.conn"
	// SiteRemoteShort: a remote response frame arrives truncated, so its
	// checksum cannot verify; treated exactly like a dropped connection.
	SiteRemoteShort Site = "store.remote.short"
	// SiteStoreEvict: the evicting store evicts its least-recently-used
	// unpinned artifact even though the byte budget is not exceeded.
	// Tests use it to force evicted-then-refetched artifacts through the
	// pipeline without tuning budgets; eviction only removes cache
	// entries, so the injected run's bytes stay identical.
	SiteStoreEvict Site = "store.evict"
	// SiteClaimStale: a shard-claim artifact reads back stale or foreign,
	// so the worker abandons waiting on the claimed peer and computes the
	// work unit itself — recovering bit-identically by construction.
	SiteClaimStale Site = "store.claim.stale"
)

// Sites lists every built-in injection site in deterministic order, for
// matrix tests that must cover all of them.
func Sites() []Site {
	return []Site{
		SiteStoreWrite, SiteStoreWriteShort, SiteStoreRead, SiteStoreBitFlip,
		SiteSolverSample, SiteSolverBudget, SiteWorkerPanic, SiteOracleZiv,
		SiteRemoteConn, SiteRemoteShort, SiteClaimStale, SiteStoreEvict,
	}
}

// rule selects occurrences of a site. If forever is set the rule fires at
// every occurrence >= at; otherwise exactly at occurrence at (1-based).
type rule struct {
	at      int
	forever bool
}

// Plan is a deterministic injection schedule keyed by site and occurrence
// count. All methods are safe for concurrent use; the nil Plan is valid
// and never fires.
type Plan struct {
	mu     sync.Mutex
	rules  map[Site][]rule
	counts map[Site]int
}

// NewPlan returns an empty plan; compose it with At/From.
func NewPlan() *Plan {
	return &Plan{rules: make(map[Site][]rule), counts: make(map[Site]int)}
}

// At schedules the site to fire at each listed 1-based occurrence.
func (p *Plan) At(site Site, occurrences ...int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range occurrences {
		if n < 1 {
			//lint:ignore barepanic test-plan construction bug, caught at the call site; never crosses a pool boundary.
			panic(fmt.Sprintf("fault: occurrence must be >= 1, got %d", n))
		}
		p.rules[site] = append(p.rules[site], rule{at: n})
	}
	return p
}

// From schedules the site to fire at every occurrence >= the given
// 1-based occurrence (an unrecoverable, keeps-on-firing fault).
func (p *Plan) From(site Site, occurrence int) *Plan {
	if occurrence < 1 {
		//lint:ignore barepanic test-plan construction bug, caught at the call site; never crosses a pool boundary.
		panic(fmt.Sprintf("fault: occurrence must be >= 1, got %d", occurrence))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[site] = append(p.rules[site], rule{at: occurrence, forever: true})
	return p
}

// Should records one occurrence of the site and reports whether the plan
// fires there. Nil-safe: a nil plan never fires and records nothing.
func (p *Plan) Should(site Site) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[site]++
	n := p.counts[site]
	for _, r := range p.rules[site] {
		if r.forever && n >= r.at {
			return true
		}
		if !r.forever && n == r.at {
			return true
		}
	}
	return false
}

// Count returns how many times the site has been probed so far.
func (p *Plan) Count(site Site) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[site]
}

// Counts returns a snapshot of all probe counters, for test diagnostics.
func (p *Plan) Counts() map[Site]int {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Site]int, len(p.counts))
	for s, n := range p.counts {
		out[s] = n
	}
	return out
}

// Reset zeroes the occurrence counters but keeps the rules, so one plan
// can drive several identical runs.
func (p *Plan) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts = make(map[Site]int)
}

// Injected constructs the error reported by a fired injection site.
func Injected(site Site) error {
	return fmt.Errorf("injected fault at %s", site)
}
