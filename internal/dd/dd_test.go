package dd

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigmath"
)

func TestPrimitives(t *testing.T) {
	// twoSum exactness on random pairs.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a := math.Ldexp(rng.Float64()*2-1, rng.Intn(60)-30)
		b := math.Ldexp(rng.Float64()*2-1, rng.Intn(60)-30)
		s, e := twoSum(a, b)
		// Verify exactly in big.
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Add(want, big.NewFloat(b))
		got := new(big.Float).SetPrec(200).SetFloat64(s)
		got.Add(got, big.NewFloat(e))
		if want.Cmp(got) != 0 {
			t.Fatalf("twoSum(%g,%g) inexact", a, b)
		}
		p, pe := twoProd(a, b)
		wantP := new(big.Float).SetPrec(200).SetFloat64(a)
		wantP.Mul(wantP, big.NewFloat(b))
		gotP := new(big.Float).SetPrec(200).SetFloat64(p)
		gotP.Add(gotP, big.NewFloat(pe))
		if wantP.Cmp(gotP) != 0 {
			t.Fatalf("twoProd(%g,%g) inexact", a, b)
		}
	}
}

// relErrExp returns log2 of the relative error of got vs the reference
// value (big), or -1000 when exact.
func relErrExp(got DD, ref *big.Float) float64 {
	g := new(big.Float).SetPrec(200).SetFloat64(got.Hi)
	g.Add(g, big.NewFloat(got.Lo))
	diff := new(big.Float).SetPrec(200).Sub(g, ref)
	if diff.Sign() == 0 {
		return -1000
	}
	if ref.Sign() == 0 {
		return 1000
	}
	q := new(big.Float).SetPrec(64).Quo(diff, ref)
	f, _ := q.Float64()
	return math.Log2(math.Abs(f))
}

// Every kernel must stay below 2^-58 relative error across its domain
// (the design target is 2^-60; allow slack for the worst corners).
func TestKernelAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type gen func() float64
	cases := []struct {
		fn bigmath.Func
		in gen
	}{
		{bigmath.Exp, func() float64 { return (rng.Float64()*2 - 1) * 700 }},
		{bigmath.Exp2, func() float64 { return (rng.Float64()*2 - 1) * 1000 }},
		{bigmath.Exp10, func() float64 { return (rng.Float64()*2 - 1) * 300 }},
		{bigmath.Ln, func() float64 { return math.Ldexp(rng.Float64()+0.5, rng.Intn(600)-300) }},
		{bigmath.Log2, func() float64 { return math.Ldexp(rng.Float64()+0.5, rng.Intn(600)-300) }},
		{bigmath.Log10, func() float64 { return math.Ldexp(rng.Float64()+0.5, rng.Intn(600)-300) }},
		{bigmath.Sinh, func() float64 { return (rng.Float64()*2 - 1) * 700 }},
		{bigmath.Cosh, func() float64 { return (rng.Float64()*2 - 1) * 700 }},
		{bigmath.SinPi, func() float64 { return (rng.Float64()*2 - 1) * 1000 }},
		{bigmath.CosPi, func() float64 { return (rng.Float64()*2 - 1) * 1000 }},
	}
	for _, c := range cases {
		worst := -1000.0
		worstX := 0.0
		for i := 0; i < 3000; i++ {
			x := c.in()
			got := Eval(c.fn, x)
			if math.IsInf(got.Hi, 0) || got.Hi == 0 || math.IsNaN(got.Hi) {
				continue
			}
			if math.Abs(got.Hi) < math.Ldexp(1, -960) {
				continue // deep subnormal-adjacent range: doubles lose dd structure
			}
			ref := bigmath.Eval(c.fn, x, 160)
			if e := relErrExp(got, ref); e > worst {
				worst, worstX = e, x
			}
		}
		if worst > -58 {
			t.Errorf("%v: worst relative error 2^%.1f at x=%g", c.fn, worst, worstX)
		}
	}
}

// Targeted corners: near 1 for logs (cancellation), tiny/crossover sinh,
// near extrema for trig.
func TestKernelCorners(t *testing.T) {
	check := func(fn bigmath.Func, x float64, bound float64) {
		got := Eval(fn, x)
		if got.Hi == 0 || math.IsInf(got.Hi, 0) || math.IsNaN(got.Hi) {
			return
		}
		ref := bigmath.Eval(fn, x, 200)
		if e := relErrExp(got, ref); e > bound {
			t.Errorf("%v(%g): relative error 2^%.1f > 2^%.0f", fn, x, e, bound)
		}
	}
	eps := math.Ldexp(1, -40)
	for _, fn := range []bigmath.Func{bigmath.Ln, bigmath.Log2, bigmath.Log10} {
		check(fn, 1+eps, -57)
		check(fn, 1-eps, -57)
		check(fn, 1+1.0/129, -57)
		check(fn, 0.75, -57)
		check(fn, 1.5-1e-10, -57)
	}
	for _, x := range []float64{0.1249, 0.1251, 1e-8, 0.49, 0.51, 1, 90} {
		check(bigmath.Sinh, x, -57)
		check(bigmath.Sinh, -x, -57)
		check(bigmath.Cosh, x, -57)
	}
	for _, x := range []float64{0.4999, 0.2500001, 1.0000001, 0.0001, 31.499999} {
		check(bigmath.SinPi, x, -56)
		check(bigmath.CosPi, x, -56)
	}
	for _, x := range []float64{1e-9, -1e-9, 0.0108, -0.0108, 700, -700} {
		check(bigmath.Exp, x, -57)
	}
}

func TestSpecials(t *testing.T) {
	if v := Eval(bigmath.Exp, math.Inf(1)); !math.IsInf(v.Hi, 1) {
		t.Error("exp(+Inf)")
	}
	if v := Eval(bigmath.Exp, math.Inf(-1)); v.Hi != 0 {
		t.Error("exp(-Inf)")
	}
	if v := Eval(bigmath.Ln, -1); !math.IsNaN(v.Hi) {
		t.Error("ln(-1)")
	}
	if v := Eval(bigmath.Ln, 0); !math.IsInf(v.Hi, -1) {
		t.Error("ln(0)")
	}
	if v := Eval(bigmath.SinPi, math.Inf(1)); !math.IsNaN(v.Hi) {
		t.Error("sinpi(Inf)")
	}
	if v := Eval(bigmath.SinPi, -3); v.Hi != 0 || !math.Signbit(v.Hi) {
		t.Error("sinpi(-3) should be -0")
	}
	if v := Eval(bigmath.Cosh, math.Inf(-1)); !math.IsInf(v.Hi, 1) {
		t.Error("cosh(-Inf)")
	}
	if v := Eval(bigmath.Exp, 800); v.Hi != math.MaxFloat64 {
		t.Error("exp overflow should return the saturated sticky proxy")
	}
	if v := Eval(bigmath.Exp, -800); v.Hi != math.SmallestNonzeroFloat64 {
		t.Error("exp underflow should return the sticky proxy")
	}
	if v := Eval(bigmath.Sinh, math.Copysign(0, -1)); v.Hi != 0 || !math.Signbit(v.Hi) {
		t.Error("sinh(-0)")
	}
	if v := Eval(bigmath.Log2, 1); v.Hi != 0 || v.Lo != 0 {
		t.Error("log2(1) should be exactly 0")
	}
	if v := Eval(bigmath.Exp, math.NaN()); !math.IsNaN(v.Hi) {
		t.Error("exp(NaN)")
	}
}

func BenchmarkDD(b *testing.B) {
	for _, fn := range []bigmath.Func{bigmath.Exp, bigmath.Ln, bigmath.SinPi, bigmath.Sinh} {
		b.Run(fn.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			xs := make([]float64, 1024)
			for i := range xs {
				xs[i] = rng.Float64()*20 + 0.1
			}
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Eval(fn, xs[i&1023]).Hi
			}
			_ = sink
		})
	}
}

func TestExactGridValues(t *testing.T) {
	cases := []struct {
		fn   bigmath.Func
		x    float64
		want float64
	}{
		{bigmath.SinPi, 0.5, 1}, {bigmath.SinPi, -0.5, -1},
		{bigmath.SinPi, 1.5, -1}, {bigmath.SinPi, -1.5, 1},
		{bigmath.SinPi, 3.5, -1}, {bigmath.SinPi, 2.5, 1},
		{bigmath.CosPi, 0, 1}, {bigmath.CosPi, 1, -1},
		{bigmath.CosPi, -3, -1}, {bigmath.CosPi, 0.5, 0},
	}
	for _, c := range cases {
		got := Eval(c.fn, c.x).Value()
		if got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.fn, c.x, got, c.want)
		}
	}
}
