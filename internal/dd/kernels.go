package dd

import (
	"math"
	"math/big"

	"repro/internal/bigmath"
)

// Double-double tables and constants, filled at init from the oracle.
var (
	exp2JDD [64]DD // 2^(j/64)
	// Log tables are re-centered: F = 0.75 + j/128 ∈ [0.75, 1.5) so that
	// e = 0 whenever x ∈ [0.75, 1.5) and the e·log2 + log(F) combination
	// never cancels catastrophically near x = 1.
	lnFDD    [97]DD // ln(0.75 + j/128)
	log2FDD  [97]DD // log2(0.75 + j/128)
	log10FDD [97]DD // log10(0.75 + j/128)
	sinPiDD  [33]DD // sinπ(i/64)
	cosPiDD  [33]DD // cosπ(i/64)

	ln2DD     DD // ln 2
	ln10DD    DD // ln 10
	invLn10DD DD // 1/ln 10
	log102DD  DD // log10 2
	log2eDD   DD // 1/ln 2
	piDD      DD // π

	ln2o64Hi, ln2o64Lo   float64 // ln2/64 hi/lo (hi has 32 bits)
	lg2o64Hi, lg2o64Lo   float64 // log10(2)/64 hi/lo
	invLn2x64, invLg2x64 float64
)

func toDD(v *big.Float) DD {
	hi, _ := v.Float64()
	rest := new(big.Float).SetPrec(v.Prec()).Sub(v, new(big.Float).SetPrec(53).SetFloat64(hi))
	lo, _ := rest.Float64()
	return DD{hi, lo}
}

func evalDD(fn bigmath.Func, x float64) DD {
	return toDD(bigmath.Eval(fn, x, 140))
}

func round32(v float64) float64 {
	f, e := math.Frexp(v)
	return math.Ldexp(math.Round(f*(1<<32))/(1<<32), e)
}

func init() {
	for j := 0; j < 64; j++ {
		if j == 0 {
			exp2JDD[0] = DD{1, 0}
			continue
		}
		exp2JDD[j] = evalDD(bigmath.Exp2, float64(j)/64)
	}
	for j := 0; j < 97; j++ {
		F := 0.75 + float64(j)/128
		if F == 1 {
			continue // exact zeros
		}
		lnFDD[j] = evalDD(bigmath.Ln, F)
		log2FDD[j] = evalDD(bigmath.Log2, F)
		log10FDD[j] = evalDD(bigmath.Log10, F)
	}
	for i := 1; i < 32; i++ {
		sinPiDD[i] = evalDD(bigmath.SinPi, float64(i)/64)
		cosPiDD[i] = evalDD(bigmath.CosPi, float64(i)/64)
	}
	sinPiDD[0], cosPiDD[0] = DD{0, 0}, DD{1, 0}
	sinPiDD[32], cosPiDD[32] = DD{1, 0}, DD{0, 0}

	ln2DD = toDD(bigmath.Ln2(140))
	ln10DD = toDD(bigmath.Ln10(140))
	log102DD = toDD(bigmath.Log10Of2(140))
	pi140 := bigmath.Pi(140)
	piDD = toDD(pi140)
	inv := new(big.Float).SetPrec(140).Quo(new(big.Float).SetPrec(140).SetInt64(1), bigmath.Ln2(140))
	log2eDD = toDD(inv)
	inv10 := new(big.Float).SetPrec(140).Quo(new(big.Float).SetPrec(140).SetInt64(1), bigmath.Ln10(140))
	invLn10DD = toDD(inv10)

	q := new(big.Float).SetPrec(140).Quo(bigmath.Ln2(140), new(big.Float).SetPrec(140).SetInt64(64))
	qf, _ := q.Float64()
	ln2o64Hi = round32(qf)
	rest := new(big.Float).SetPrec(140).Sub(q, new(big.Float).SetPrec(53).SetFloat64(ln2o64Hi))
	ln2o64Lo, _ = rest.Float64()
	invLn2x64 = 64 / (ln2DD.Hi)

	q = new(big.Float).SetPrec(140).Quo(bigmath.Log10Of2(140), new(big.Float).SetPrec(140).SetInt64(64))
	qf, _ = q.Float64()
	lg2o64Hi = round32(qf)
	rest = new(big.Float).SetPrec(140).Sub(q, new(big.Float).SetPrec(53).SetFloat64(lg2o64Hi))
	lg2o64Lo, _ = rest.Float64()
	invLg2x64 = 64 / log102DD.Hi
}

type expBaseKind int

const (
	expBase expBaseKind = iota
	exp2Base
	exp10Base
)

// expFamily computes e^x, 2^x or 10^x. Reduction: x = N·c + (r + rlo) with
// the (r, rlo) pair exact to ~2^-95, then base^x = 2^(N/64)·e^(t+tlo) where
// (t, tlo) = (r, rlo)·ln(base) (exact for exp2 after scaling).
func expFamily(x float64, kind expBaseKind) DD {
	if math.IsInf(x, 0) {
		if x > 0 {
			return DD{Hi: math.Inf(1)}
		}
		return DD{Hi: 0}
	}
	// Double-range cutoffs (the comparators model double libraries, which
	// overflow to +Inf / underflow to 0 at these magnitudes).
	var over, under float64
	switch kind {
	case expBase:
		over, under = 710, -745
	case exp2Base:
		over, under = 1025, -1075
	default:
		over, under = 309, -324
	}
	if x >= over {
		// Finite but beyond double range: a saturated sticky proxy keeps
		// directed-mode rounding of the working formats correct (+Inf is
		// reserved for genuinely infinite results).
		return DD{Hi: math.MaxFloat64}
	}
	if x <= under {
		// Positive but below every representable double: sticky proxy.
		return DD{Hi: math.SmallestNonzeroFloat64}
	}

	var n float64
	var r, rlo float64 // reduced argument pair
	switch kind {
	case expBase:
		n = math.Round(x * invLn2x64)
		t1 := x - n*ln2o64Hi // exact: 32-bit hi, |n| < 2^17
		p, e := twoProd(n, ln2o64Lo)
		r, rlo = twoSum(t1, -p)
		rlo -= e
	case exp2Base:
		n = math.Round(x * 64)
		r, rlo = x-n/64, 0 // exact
	default:
		n = math.Round(x * invLg2x64)
		t1 := x - n*lg2o64Hi
		p, e := twoProd(n, lg2o64Lo)
		r, rlo = twoSum(t1, -p)
		rlo -= e
	}
	ni := int(n)
	q, j := ni>>6, ni&63

	// Convert to the natural base: t = r·ln(base) in dd.
	var t DD
	switch kind {
	case expBase:
		t = DD{r, rlo}
	case exp2Base:
		t = mulDDFloat(ln2DD, r)
	default:
		th := mulDDFloat(ln10DD, r)
		t = addDD(th, mulDDFloat(ln10DD, rlo))
	}
	// e^t = 1 + t + t²·P(t), |t| ≤ 0.0127 (exp10 case); P in plain double
	// contributes below 2^-68 absolutely.
	th := t.Hi
	p := th * th * (0.5 + th*(1.0/6+th*(1.0/24+th*(1.0/120+th*(1.0/720+th*(1.0/5040))))))
	// e^t - 1 ≈ (t.Hi + (t.Lo + p)) in dd.
	eh, el := fastTwoSum(th, t.Lo+p)
	// result = T[j]·(1 + (eh, el)), scaled by 2^q.
	T := exp2JDD[j]
	prod := mulDD(T, DD{eh, el})
	out := addDD(T, prod)
	return out.scale(q)
}

type logBaseKind int

const (
	lnBase logBaseKind = iota
	log2Base
	log10Base
)

// logFamily computes ln, log2 or log10: x = 2^e·F·(1+u) with
// u = (m-F)/F carried as a dd quotient, log(1+u) = u + u²·Q(u) with Q in
// double, combined with dd tables for log(F) and e·log(2). F is the
// *nearest* grid point (u may be negative): together with the [0.75, 1.5)
// recentering this makes F = 1 exactly for m ≈ 1, so the result never
// cancels against the table.
func logFamily(x float64, kind logBaseKind) DD {
	switch {
	case x == 0:
		return DD{Hi: math.Inf(-1)}
	case x < 0:
		return DD{Hi: math.NaN()}
	case math.IsInf(x, 1):
		return DD{Hi: math.Inf(1)}
	}
	frac, exp := math.Frexp(x)
	m := 2 * frac
	e := float64(exp - 1)
	if m >= 1.5 {
		m /= 2 // exact
		e++
	}
	j := int(math.Round((m - 0.75) * 128)) // 0..96, nearest grid point
	F := 0.75 + float64(j)/128
	a := m - F // exact (Sterbenz), |a| ≤ 1/256
	// u = a/F in dd.
	uh := a / F
	ul := math.FMA(-uh, F, a) / F

	// log(1+u) = u - u²/2 + u³/3 - … : tail beyond u in double, carried to
	// u¹¹ so that even when the whole result is ≈ u (x just above 1 with
	// F = 1) the truncation stays below 2^-80 of it.
	q := uh * uh * (-0.5 + uh*(1.0/3+uh*(-0.25+uh*(0.2+uh*(-1.0/6+uh*(1.0/7+uh*(-0.125+uh*(1.0/9+uh*(-0.1+uh*(1.0/11))))))))))
	lh, ll := fastTwoSum(uh, ul+q)
	l1p := DD{lh, ll} // ln(1+u)

	switch kind {
	case lnBase:
		out := addDD(lnFDD[j], l1p)
		return addDD(mulDDFloat(ln2DD, e), out)
	case log2Base:
		out := addDD(log2FDD[j], mulDD(l1p, log2eDD))
		return addDD(DD{e, 0}, out)
	default:
		l10 := mulDD(l1p, invLn10DD)
		out := addDD(log10FDD[j], l10)
		return addDD(mulDDFloat(log102DD, e), out)
	}
}

// sinhCosh computes sinh (sin=true) or cosh via e^x and e^-x for |x| ≥ ½,
// and a dedicated series for small sinh (cancellation-free everywhere).
func sinhCosh(x float64, sinh bool) DD {
	if math.IsInf(x, 0) {
		if !sinh {
			return DD{Hi: math.Inf(1)}
		}
		return DD{Hi: x}
	}
	a := math.Abs(x)
	if a >= 711 {
		// Finite result beyond double range: saturated sticky proxy.
		v := math.MaxFloat64
		if sinh && x < 0 {
			v = -v
		}
		return DD{Hi: v}
	}
	if sinh && x == 0 {
		return DD{Hi: x} // ±0
	}
	if a < 0.125 {
		if sinh {
			return sinhSmall(x)
		}
		return coshSmall(x)
	}
	ep := expFamily(a, expBase)
	en := expFamily(-a, expBase)
	var s DD
	if sinh {
		s = addDD(ep, DD{-en.Hi, -en.Lo})
	} else {
		s = addDD(ep, en)
	}
	s = s.scale(-1)
	if sinh && x < 0 {
		s = DD{-s.Hi, -s.Lo}
	}
	return s
}

// sinhSmall: sinh x = x + x³/6·S(x²) with the cubic term in dd
// (|x| < 0.125 keeps the double-precision bracket below 2^-60 of the
// result).
func sinhSmall(x float64) DD {
	x2 := x * x
	s := 1 + x2*(0.05+x2*(1.0/840+x2*(1.0/60480+x2*(1.0/6652800))))
	// cube = x³ in dd.
	ph, pe := twoProd(x, x)
	ch, ce := twoProd(ph, x)
	ce = math.FMA(pe, x, ce)
	cube := DD{ch, ce}
	term := mulDDFloat(cube, s/6)
	return addDD(DD{x, 0}, term)
}

// coshSmall: cosh x = 1 + x²/2·C(x²) with the quadratic term in dd.
func coshSmall(x float64) DD {
	x2h, x2l := twoProd(x, x)
	c := 1 + x2h*(1.0/12+x2h*(1.0/360+x2h*(1.0/20160+x2h*(1.0/1814400))))
	term := mulDDFloat(DD{x2h, x2l}, c/2)
	return addDD(DD{1, 0}, term)
}

// sinCosPi: exact fold to w ∈ [0,½] (as in internal/reduction), then
// θ = π·(w - i/64) as a dd product and table recombination.
func sinCosPi(x float64, sin bool) DD {
	if math.IsInf(x, 0) {
		return DD{Hi: math.NaN()}
	}
	if 2*x == math.Trunc(2*x) {
		// Exact grid: ±0, ±1 values.
		z := math.Mod(math.Abs(x), 2)
		if sin {
			switch z {
			case 0, 1:
				s := math.Copysign(0, x)
				return DD{Hi: s}
			case 0.5:
				return DD{Hi: math.Copysign(1, x)}
			default: // 1.5: sinπ(±1.5) = ∓1
				return DD{Hi: -math.Copysign(1, x)}
			}
		}
		switch z {
		case 0:
			return DD{Hi: 1}
		case 1:
			return DD{Hi: -1}
		default:
			return DD{Hi: 0}
		}
	}
	z := math.Mod(math.Abs(x), 2)
	ssign, csign := 1.0, 1.0
	w := z
	if w > 1 {
		w = z - 1
		ssign, csign = -1, -1
	}
	if w > 0.5 {
		w = 1 - w
		csign = -csign
	}
	if math.Signbit(x) {
		ssign = -ssign
	}
	i := int(math.Round(w * 64))
	r := w - float64(i)/64 // exact

	theta := mulDDFloat(piDD, r) // |θ| ≤ π/128
	th := theta.Hi
	t2 := th * th
	// sin θ = θ + θ·t2·S(t2), cos θ = 1 + t2·C(t2): tails in double.
	sTail := t2 * (-1.0/6 + t2*(1.0/120+t2*(-1.0/5040)))
	cTail := -0.5 + t2*(1.0/24+t2*(-1.0/720+t2*(1.0/40320)))
	sinT := addDD(theta, DD{th * sTail, 0})
	cosT := addDD(DD{1, 0}, DD{t2 * cTail, 0})
	// Recombine with the octant tables.
	sp, cp := sinPiDD[i], cosPiDD[i]
	var out DD
	if sin {
		out = addDD(mulDD(sp, cosT), mulDD(cp, sinT))
		out = DD{out.Hi * ssign, out.Lo * ssign}
	} else {
		out = addDD(mulDD(cp, cosT), DD{-1, 0}.mulInto(mulDD(sp, sinT)))
		out = DD{out.Hi * csign, out.Lo * csign}
	}
	return out
}

// mulInto multiplies m by the receiver's Hi (±1 helper).
func (d DD) mulInto(m DD) DD { return DD{m.Hi * d.Hi, m.Lo * d.Hi} }
