// Package dd implements the ten elementary functions in double-double
// arithmetic with relative error below ~2^-60. It is the computational
// core of the "accurate double library" comparators (the Intel-libm and
// CR-LIBM substitutes): fast enough to benchmark against, accurate enough
// for a Ziv first step whose slow path almost never triggers.
//
// The argument reductions mirror internal/reduction's schemes, but carry
// the low-order word of every step and use double-double tables computed
// from the arbitrary-precision oracle at init.
package dd

import (
	"math"

	"repro/internal/bigmath"
)

// DD is an unevaluated sum Hi + Lo with |Lo| ≤ ulp(Hi)/2.
type DD struct {
	Hi, Lo float64
}

// Value collapses the pair to the nearest double (preserving the sign of
// zero, which the IEEE addition -0 + 0 = +0 would lose).
func (d DD) Value() float64 {
	if d.Lo == 0 {
		return d.Hi
	}
	return d.Hi + d.Lo
}

// twoSum returns (s, e) with s = rn(a+b) and a+b = s+e exactly.
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bb := s - a
	e = (a - (s - bb)) + (b - bb)
	return s, e
}

// fastTwoSum is twoSum under the precondition |a| ≥ |b| (or a == 0).
func fastTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return s, e
}

// twoProd returns (p, e) with p = rn(a·b) and a·b = p+e exactly (FMA).
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return p, e
}

// mulDDFloat multiplies a DD by a double.
func mulDDFloat(d DD, f float64) DD {
	p, e := twoProd(d.Hi, f)
	e = math.FMA(d.Lo, f, e)
	hi, lo := fastTwoSum(p, e)
	return DD{hi, lo}
}

// addDD adds two DDs (Dekker/Knuth style, error O(2^-105)).
func addDD(a, b DD) DD {
	s, e := twoSum(a.Hi, b.Hi)
	e += a.Lo + b.Lo
	hi, lo := fastTwoSum(s, e)
	return DD{hi, lo}
}

// mulDD multiplies two DDs.
func mulDD(a, b DD) DD {
	p, e := twoProd(a.Hi, b.Hi)
	e += a.Hi*b.Lo + a.Lo*b.Hi
	hi, lo := fastTwoSum(p, e)
	return DD{hi, lo}
}

// scale multiplies by 2^k exactly.
func (d DD) scale(k int) DD {
	return DD{math.Ldexp(d.Hi, k), math.Ldexp(d.Lo, k)}
}

// Eval computes fn(x) as a DD with relative error below ~2^-60 for regular
// inputs; special inputs (NaN, infinities, out-of-double-range results,
// exact zeros) produce the conventional double special values in Hi.
func Eval(fn bigmath.Func, x float64) DD {
	if math.IsNaN(x) {
		return DD{Hi: math.NaN()}
	}
	switch fn {
	case bigmath.Exp:
		return expFamily(x, expBase)
	case bigmath.Exp2:
		return expFamily(x, exp2Base)
	case bigmath.Exp10:
		return expFamily(x, exp10Base)
	case bigmath.Ln:
		return logFamily(x, lnBase)
	case bigmath.Log2:
		return logFamily(x, log2Base)
	case bigmath.Log10:
		return logFamily(x, log10Base)
	case bigmath.Sinh:
		return sinhCosh(x, true)
	case bigmath.Cosh:
		return sinhCosh(x, false)
	case bigmath.SinPi:
		return sinCosPi(x, true)
	case bigmath.CosPi:
		return sinCosPi(x, false)
	}
	panic("dd: bad func")
}
