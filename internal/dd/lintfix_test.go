package dd

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/bigmath"
)

// TestHiLoTables pins the argument-reduction hi/lo splits built by init.
// Their construction was rewritten to state big.Float precision explicitly
// (SetPrec before SetInt64/SetFloat64); each pair must still reproduce the
// exact 140-bit constant to well beyond double precision, with a hi part
// that carries at most 32 mantissa bits so N·hi stays exact.
func TestHiLoTables(t *testing.T) {
	check := func(name string, hi, lo float64, exact *big.Float, div int64) {
		t.Helper()
		if round32(hi) != hi {
			t.Errorf("%s: hi=%v is not 32-bit clean", name, hi)
		}
		want := new(big.Float).SetPrec(200).Quo(exact, new(big.Float).SetPrec(200).SetInt64(div))
		got := new(big.Float).SetPrec(200).Add(
			new(big.Float).SetPrec(53).SetFloat64(hi),
			new(big.Float).SetPrec(53).SetFloat64(lo))
		diff := new(big.Float).SetPrec(200).Sub(got, want)
		if diff.Sign() != 0 && diff.MantExp(nil)-want.MantExp(nil) > -80 {
			t.Errorf("%s: hi+lo differs from the exact constant above 2^-80 relative", name)
		}
	}
	check("ln2/64", ln2o64Hi, ln2o64Lo, bigmath.Ln2(140), 64)
	check("log10(2)/64", lg2o64Hi, lg2o64Lo, bigmath.Log10Of2(140), 64)
	if got := 64 / ln2DD.Hi; math.Abs(invLn2x64-got) != 0 {
		t.Errorf("invLn2x64 = %v, want %v", invLn2x64, got)
	}
}
