package parallel

import (
	"sync/atomic"
	"testing"
)

func TestSplitRangeCoversSpaceInOrder(t *testing.T) {
	for _, tc := range []struct {
		n     uint64
		parts int
	}{
		{0, 4}, {1, 4}, {7, 3}, {64, 1}, {65, 8}, {1 << 16, 13}, {5, 0},
	} {
		rs := SplitRange(tc.n, tc.parts)
		var lo uint64
		for _, r := range rs {
			if r.Lo != lo {
				t.Fatalf("n=%d parts=%d: range %+v does not start at %d", tc.n, tc.parts, r, lo)
			}
			if r.Hi <= r.Lo {
				t.Fatalf("n=%d parts=%d: empty range %+v", tc.n, tc.parts, r)
			}
			lo = r.Hi
		}
		if lo != tc.n {
			t.Fatalf("n=%d parts=%d: ranges cover [0,%d), want [0,%d)", tc.n, tc.parts, lo, tc.n)
		}
		if tc.parts > 0 && len(rs) > tc.parts {
			t.Fatalf("n=%d parts=%d: %d ranges", tc.n, tc.parts, len(rs))
		}
	}
}

func TestSplitRangeBalance(t *testing.T) {
	rs := SplitRange(103, 10)
	for _, r := range rs {
		if sz := r.Hi - r.Lo; sz != 10 && sz != 11 {
			t.Fatalf("unbalanced range %+v", r)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	ForEach(8, 0, func(int) { t.Fatal("called for empty range") })
	ran := false
	ForEach(8, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single index not visited")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestWorkerCount(t *testing.T) {
	if WorkerCount(3) != 3 {
		t.Error("explicit count not honoured")
	}
	if WorkerCount(0) < 1 || WorkerCount(-1) < 1 {
		t.Error("default count must be positive")
	}
}
