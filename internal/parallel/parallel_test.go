package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSplitRangeCoversSpaceInOrder(t *testing.T) {
	for _, tc := range []struct {
		n     uint64
		parts int
	}{
		{0, 4}, {1, 4}, {7, 3}, {64, 1}, {65, 8}, {1 << 16, 13}, {5, 0},
	} {
		rs := SplitRange(tc.n, tc.parts)
		var lo uint64
		for _, r := range rs {
			if r.Lo != lo {
				t.Fatalf("n=%d parts=%d: range %+v does not start at %d", tc.n, tc.parts, r, lo)
			}
			if r.Hi <= r.Lo {
				t.Fatalf("n=%d parts=%d: empty range %+v", tc.n, tc.parts, r)
			}
			lo = r.Hi
		}
		if lo != tc.n {
			t.Fatalf("n=%d parts=%d: ranges cover [0,%d), want [0,%d)", tc.n, tc.parts, lo, tc.n)
		}
		if tc.parts > 0 && len(rs) > tc.parts {
			t.Fatalf("n=%d parts=%d: %d ranges", tc.n, tc.parts, len(rs))
		}
	}
}

func TestSplitRangeBalance(t *testing.T) {
	rs := SplitRange(103, 10)
	for _, r := range rs {
		if sz := r.Hi - r.Lo; sz != 10 && sz != 11 {
			t.Fatalf("unbalanced range %+v", r)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	ForEach(8, 0, func(int) { t.Fatal("called for empty range") })
	ran := false
	ForEach(8, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single index not visited")
	}
}

func TestForEachPropagatesPanicWithJobContext(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T %v, want *PanicError", r, r)
		}
		if pe.Index != 17 {
			t.Errorf("Index = %d, want 17", pe.Index)
		}
		if pe.Value != "boom" {
			t.Errorf("Value = %v, want boom", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Error("Stack not captured")
		}
		if !strings.Contains(pe.Error(), "job 17") {
			t.Errorf("Error() = %q, missing job index", pe.Error())
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	// Every job that runs fails and records itself; the pool must report
	// the error of the lowest index that actually ran, regardless of
	// scheduling or how quickly the drain kicked in.
	for _, workers := range []int{1, 2, 8} {
		var lowest atomic.Int64
		lowest.Store(1 << 30)
		err := ForEachErr(context.Background(), workers, 64, func(i int) error {
			for {
				cur := lowest.Load()
				if int64(i) >= cur || lowest.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return fmt.Errorf("job %d failed", i)
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		want := fmt.Sprintf("job %d failed", lowest.Load())
		if err.Error() != want {
			t.Errorf("workers=%d: err = %q, want %q", workers, err, want)
		}
	}
}

func TestForEachErrWrapsPanicAsError(t *testing.T) {
	cause := errors.New("kaboom")
	err := ForEachErr(context.Background(), 4, 32, func(i int) error {
		if i == 5 {
			panic(cause)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Index != 5 {
		t.Errorf("Index = %d, want 5", pe.Index)
	}
	if !errors.Is(err, cause) {
		t.Error("error panic value must unwrap to the cause")
	}
}

func TestForEachErrHonoursCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Int64
		err := ForEachErr(ctx, workers, 10000, func(i int) error {
			if done.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := done.Load(); n >= 10000 {
			t.Errorf("workers=%d: all %d jobs ran despite cancellation", workers, n)
		}
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	var count atomic.Int64
	if err := ForEachErr(context.Background(), 4, 100, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("err = %v", err)
	}
	if count.Load() != 100 {
		t.Errorf("ran %d jobs, want 100", count.Load())
	}
}

func TestWorkerCount(t *testing.T) {
	if WorkerCount(3) != 3 {
		t.Error("explicit count not honoured")
	}
	if WorkerCount(0) < 1 || WorkerCount(-1) < 1 {
		t.Error("default count must be positive")
	}
}
