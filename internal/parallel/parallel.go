// Package parallel provides the shared worker-pool primitives behind the
// sharded hot paths of the generator and the verifier: constraint
// enumeration, exhaustive verification and the per-piece Clarkson solves.
//
// The design contract throughout this repository is that parallel output is
// bit-identical to serial output for every worker count. The primitives
// here support that contract structurally: SplitRange always cuts an input
// space into contiguous ascending ranges, so concatenating per-shard
// results in shard order reproduces the serial enumeration order exactly,
// and ForEach only distributes independent index-addressed work whose
// results land in caller-owned per-index slots.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerCount resolves a worker-count option: values > 0 are used as given;
// zero or negative means one worker per logical CPU (GOMAXPROCS).
func WorkerCount(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// oversubscribe is the shard-per-worker factor: per-input oracle cost varies
// wildly across a format's bit range (exact/clamp/anchor shortcuts versus
// full Ziv evaluations), so handing each worker several smaller shards
// smooths the load while keeping per-shard merge overhead negligible.
const oversubscribe = 4

// ShardCount returns how many contiguous shards an input space should be
// cut into for the given worker-count option.
func ShardCount(workers int) int { return WorkerCount(workers) * oversubscribe }

// Range is a half-open slice [Lo, Hi) of an input bit-pattern space.
type Range struct{ Lo, Hi uint64 }

// SplitRange cuts [0, n) into at most parts contiguous near-equal ranges in
// ascending order, omitting empty ones. Concatenating the ranges in slice
// order always reproduces the full ascending space — the property that
// keeps sharded enumeration bit-identical to the serial loop regardless of
// the worker or shard count.
func SplitRange(n uint64, parts int) []Range {
	if n == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if uint64(parts) > n {
		parts = int(n)
	}
	out := make([]Range, 0, parts)
	size, rem := n/uint64(parts), n%uint64(parts)
	lo := uint64(0)
	for i := 0; i < parts; i++ {
		hi := lo + size
		if uint64(i) < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// ForEach runs fn(i) for every i in [0, n), distributing indices over up to
// workers goroutines (the option is resolved with WorkerCount and clamped
// to n). With one worker it runs inline on the calling goroutine. Indices
// are claimed dynamically, so callers must not rely on any execution order;
// deterministic results come from writing each index's output to its own
// slot and merging in index order afterwards. A panic in fn is re-raised on
// the calling goroutine after all workers stop claiming work.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := WorkerCount(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  interface{}
		panicked  bool
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicVal = r
						panicked = true
					})
					// Drain the remaining indices so sibling workers
					// finish quickly and the panic surfaces promptly.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
