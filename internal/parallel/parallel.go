// Package parallel provides the shared worker-pool primitives behind the
// sharded hot paths of the generator and the verifier: constraint
// enumeration, exhaustive verification and the per-piece Clarkson solves.
//
// The design contract throughout this repository is that parallel output is
// bit-identical to serial output for every worker count. The primitives
// here support that contract structurally: SplitRange always cuts an input
// space into contiguous ascending ranges, so concatenating per-shard
// results in shard order reproduces the serial enumeration order exactly,
// and ForEach only distributes independent index-addressed work whose
// results land in caller-owned per-index slots.
//
// When the run context carries an observability span (internal/obs), the
// pool records its utilization — invocations, jobs, workers, busy and
// wall nanoseconds — as volatile gauges. Gauges are scheduling-dependent
// by nature and live outside the deterministic counter section of the run
// report; the pool records no counters, so the determinism contract above
// is untouched.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// WorkerCount resolves a worker-count option: values > 0 are used as given;
// zero or negative means one worker per logical CPU (GOMAXPROCS).
func WorkerCount(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// oversubscribe is the shard-per-worker factor: per-input oracle cost varies
// wildly across a format's bit range (exact/clamp/anchor shortcuts versus
// full Ziv evaluations), so handing each worker several smaller shards
// smooths the load while keeping per-shard merge overhead negligible.
const oversubscribe = 4

// ShardCount returns how many contiguous shards an input space should be
// cut into for the given worker-count option.
func ShardCount(workers int) int { return WorkerCount(workers) * oversubscribe }

// Range is a half-open slice [Lo, Hi) of an input bit-pattern space.
type Range struct{ Lo, Hi uint64 }

// SplitRange cuts [0, n) into at most parts contiguous near-equal ranges in
// ascending order, omitting empty ones. Concatenating the ranges in slice
// order always reproduces the full ascending space — the property that
// keeps sharded enumeration bit-identical to the serial loop regardless of
// the worker or shard count.
func SplitRange(n uint64, parts int) []Range {
	if n == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if uint64(parts) > n {
		parts = int(n)
	}
	out := make([]Range, 0, parts)
	size, rem := n/uint64(parts), n%uint64(parts)
	lo := uint64(0)
	for i := 0; i < parts; i++ {
		hi := lo + size
		if uint64(i) < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// PanicError wraps a panic recovered inside a pool worker with the job
// index, the worker id and the stack captured at the point of recovery —
// the context a bare re-panic used to lose.
type PanicError struct {
	Index  int         // job index whose fn panicked
	Worker int         // pool worker id (0-based; 0 for the inline path)
	Value  interface{} // the recovered panic value
	Stack  []byte      // goroutine stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in job %d on worker %d: %v", e.Index, e.Worker, e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ForEachErr runs fn(i) for every i in [0, n), distributing indices over
// up to workers goroutines (the option is resolved with WorkerCount and
// clamped to n). With one worker it runs inline on the calling goroutine.
// Indices are claimed dynamically, so callers must not rely on any
// execution order; deterministic results come from writing each index's
// output to its own slot and merging in index order afterwards.
//
// A non-nil error from fn stops the pool from claiming further work and is
// returned; when several jobs fail before the pool drains, the error of
// the lowest job index wins, so the reported failure does not depend on
// goroutine scheduling. A panic in fn is recovered and reported as a
// *PanicError carrying the job index, worker id and stack. Cancellation of
// ctx stops claiming and returns ctx.Err() — unless a job error was also
// recorded, which takes precedence.
func ForEachErr(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := WorkerCount(workers)
	if w > n {
		w = n
	}
	// Pool-utilization gauges, recorded only when the context carries an
	// observability span (one nil check otherwise). All of them depend on
	// scheduling and the worker count, so they are volatile gauges, never
	// counters.
	sp := obs.SpanFrom(ctx)
	var busyNS atomic.Int64
	if sp != nil {
		//lint:ignore wallclock pool-utilization gauge only; timings never feed a coefficient.
		poolStart := time.Now()
		defer func() {
			//lint:ignore wallclock pool-utilization gauge only; timings never feed a coefficient.
			wall := int64(time.Since(poolStart))
			if w == 1 {
				busyNS.Store(wall) // inline path: the caller's goroutine is the worker
			}
			sp.Gauge(obs.GaugePoolInvocations, 1)
			sp.Gauge(obs.GaugePoolJobs, int64(n))
			sp.Gauge(obs.GaugePoolWorkers, int64(w))
			sp.Gauge(obs.GaugePoolBusyNS, busyNS.Load())
			sp.Gauge(obs.GaugePoolWallNS, wall)
		}()
	}
	runOne := func(worker, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Worker: worker, Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runOne(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
		ctxErr   error
	)
	report := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		// Drain the remaining indices so sibling workers finish quickly
		// and the error surfaces promptly.
		next.Store(int64(n))
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if sp != nil {
				//lint:ignore wallclock pool-utilization gauge only; timings never feed a coefficient.
				workerStart := time.Now()
				//lint:ignore wallclock pool-utilization gauge only; timings never feed a coefficient.
				defer func() { busyNS.Add(int64(time.Since(workerStart))) }()
			}
			for {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					ctxErr = err
					mu.Unlock()
					next.Store(int64(n))
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runOne(worker, i); err != nil {
					report(i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctxErr
}

// ForEach is ForEachErr without cancellation or error returns, for hot
// paths whose jobs cannot fail. A panic in fn is re-raised on the calling
// goroutine as a *PanicError (wrapping the original value with job index,
// worker id and stack) after all workers stop claiming work.
func ForEach(workers, n int, fn func(i int)) {
	err := ForEachErr(context.Background(), workers, n, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		panic(err)
	}
}
