// Package reduction implements range reduction, output compensation and
// inverse output compensation for the ten elementary functions of the
// paper, following the RLibm strategies (§2.2, §4 "We use range reduction
// and output compensation functions from our prior work"):
//
//	ln/log2/log10:  x = 2^e·F·(1+r), F = 1 + j/128 from the top 7 mantissa
//	                bits, r = (m-F)·(1/F) ∈ [0, ~1/128); one polynomial per
//	                function approximating log(1+r); output compensation
//	                adds e·log(2) and a 128-entry log(F) table.
//	exp/exp2/exp10: x = N·c + r with N = round(x/c), c = ln2/64, 1/64,
//	                log10(2)/64; one polynomial approximating exp(r);
//	                output compensation multiplies by 2^(j/64) (64-entry
//	                table) and scales by 2^q, N = 64q + j.
//	sinh/cosh:      |x| = k·(ln2/64) + r; with E± = 2^(±k/64) from tables,
//	                sinh x = ½(E⁺-E⁻)·cosh r + ½(E⁺+E⁻)·sinh r (and the
//	                dual for cosh): two polynomials, an even cosh-kernel
//	                and an odd sinh-kernel.
//	sinpi/cospi:    z = |x| mod 2 folded into w ∈ [0,½] with sign fixups,
//	                w = i/64 + r, i ∈ 0..32: sinπ(w) = sp[i]·cosπ(r) +
//	                cp[i]·sinπ(r), cosπ(w) = cp[i]·cosπ(r) - sp[i]·sinπ(r):
//	                two polynomials, an even cosπ-kernel and an odd
//	                sinπ-kernel.
//
// All reductions and compensations run in float64, exactly the code the
// generated library executes; the generator replays them bit-for-bit, so
// their rounding errors are absorbed into the constraint intervals.
//
// The schemes hard-code overflow/underflow cutoffs for the 8-exponent-bit
// format family of the paper (bfloat16, tensorfloat32, float32 and their
// round-to-odd extensions up to 36 bits).
package reduction

import (
	"math"
	"math/big"

	"repro/internal/bigmath"
)

// Table sizes.
const (
	logTableBits = 7  // F = 1 + j/128
	expTableN    = 64 // 2^(j/64)
	trigTableN   = 33 // sinπ(i/64), i = 0..32
)

// Correctly rounded tables, filled at init from the arbitrary-precision
// oracle. Their byte sizes are reported separately from polynomial
// coefficient storage, as in the paper.
var (
	recipF [1 << logTableBits]float64 // 1/(1+j/128)
	lnF    [1 << logTableBits]float64 // ln(1+j/128)
	log2F  [1 << logTableBits]float64 // log2(1+j/128)
	log10F [1 << logTableBits]float64 // log10(1+j/128)
	exp2J  [expTableN]float64         // 2^(j/64)
	exp2Jn [expTableN]float64         // 2^(-j/64)
	sinPiI [trigTableN]float64        // sinπ(i/64)
	cosPiI [trigTableN]float64        // cosπ(i/64)
)

// Reduction constants (double precision; hi/lo splits where the product
// with a large N must stay accurate).
var (
	ln2Over64Hi   float64 // ln2/64 rounded to 32 bits
	ln2Over64Lo   float64 // ln2/64 - hi
	invLn2Times64 float64 // 64/ln2
	lg2Over64Hi   float64 // log10(2)/64 rounded to 32 bits
	lg2Over64Lo   float64
	invLg2Times64 float64 // 64·log2(10)
	ln2Double     float64 // ln 2
	log102Double  float64 // log10 2
)

// round32 returns v rounded to 32 significand bits (so integer multiples
// up to 2^21 remain exact).
func round32(v float64) float64 {
	f, e := math.Frexp(v)
	return math.Ldexp(math.Round(f*(1<<32))/(1<<32), e)
}

func bigToDouble(f bigmath.Func, x float64) float64 {
	v, _ := bigmath.Eval(f, x, 64).Float64()
	return v
}

func init() {
	for j := 0; j < 1<<logTableBits; j++ {
		F := 1 + float64(j)/128
		recipF[j] = 1 / F // exact reciprocal rounding: 1/F correctly rounded by IEEE division
		if j == 0 {
			lnF[j], log2F[j], log10F[j] = 0, 0, 0
		} else {
			lnF[j] = bigToDouble(bigmath.Ln, F)
			log2F[j] = bigToDouble(bigmath.Log2, F)
			log10F[j] = bigToDouble(bigmath.Log10, F)
		}
	}
	for j := 0; j < expTableN; j++ {
		x := float64(j) / 64
		if j == 0 {
			exp2J[j], exp2Jn[j] = 1, 1
			continue
		}
		exp2J[j] = bigToDouble(bigmath.Exp2, x)
		exp2Jn[j] = bigToDouble(bigmath.Exp2, -x)
	}
	for i := 0; i < trigTableN; i++ {
		x := float64(i) / 64
		sinPiI[i] = bigToDouble(bigmath.SinPi, x)
		cosPiI[i] = bigToDouble(bigmath.CosPi, x)
	}
	sinPiI[0], cosPiI[0] = 0, 1
	sinPiI[32], cosPiI[32] = bigToDouble(bigmath.SinPi, 0.5), bigToDouble(bigmath.CosPi, 0.5)

	ln2Double, _ = bigmath.Ln2(64).Float64()
	ln2Over64Hi, ln2Over64Lo = hiLoSplit(bigmath.Ln2(128), 64)
	invLn2Times64 = 64 / ln2Double
	log102Double, _ = bigmath.Log10Of2(64).Float64()
	lg2Over64Hi, lg2Over64Lo = hiLoSplit(bigmath.Log10Of2(128), 64)
	invLg2Times64 = 64 / log102Double
}

// hiLoSplit returns (hi, lo) with hi = c/div rounded to 32 bits and lo the
// double nearest to c/div - hi, so N·hi is exact for |N| ≤ 2^21 and
// (x - N·hi) - N·lo reproduces x - N·c/div to roughly 85 bits.
func hiLoSplit(c *big.Float, div int64) (hi, lo float64) {
	q := new(big.Float).SetPrec(128).Quo(c, new(big.Float).SetPrec(128).SetInt64(div))
	qf, _ := q.Float64()
	hi = round32(qf)
	rest := new(big.Float).SetPrec(128).Sub(q, new(big.Float).SetPrec(53).SetFloat64(hi))
	lo, _ = rest.Float64()
	return hi, lo
}

// TableBytes returns the range-reduction table storage of a function's
// scheme in bytes (excluded from the Table 1 polynomial-memory metric,
// as in the paper, but reported by the harness for completeness).
func TableBytes(f bigmath.Func) int {
	switch f {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		return 8 * 2 * (1 << logTableBits) // recipF + one log table
	case bigmath.Exp, bigmath.Exp2, bigmath.Exp10:
		return 8 * expTableN
	case bigmath.Sinh, bigmath.Cosh:
		return 8 * 2 * expTableN
	case bigmath.SinPi, bigmath.CosPi:
		return 8 * 2 * trigTableN
	}
	return 0
}
