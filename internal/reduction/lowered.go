package reduction

import "repro/internal/bigmath"

// loweredKind tags the concrete scheme family inside a Lowered.
type loweredKind uint8

const (
	loweredLog loweredKind = iota
	loweredExp
	loweredSinhCosh
	loweredSinCosPi
)

// Lowered is a range-reduction scheme devirtualized for the batched
// serving path (internal/eval): ForFunc's Scheme interface resolved once
// into a concrete value whose Reduce/Compensate/Special dispatch through a
// small tag switch over statically known scheme types. Every call is a
// direct (inlinable) method call — no interface table lookup per input —
// and the arithmetic is byte-for-byte the scheme's own, so Lowered and
// Scheme are bit-identical by construction (pinned by
// TestLoweredMatchesScheme).
type Lowered struct {
	kind     loweredKind
	numPolys int
	log      logScheme
	exp      expScheme
	sinh     sinhCoshScheme
	trig     sinCosPiScheme
}

// Lower returns the devirtualized scheme of f.
func Lower(f bigmath.Func) Lowered {
	switch f {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		return Lowered{kind: loweredLog, numPolys: 1, log: logScheme{fn: f}}
	case bigmath.Exp, bigmath.Exp2, bigmath.Exp10:
		return Lowered{kind: loweredExp, numPolys: 1, exp: expScheme{fn: f}}
	case bigmath.Sinh, bigmath.Cosh:
		return Lowered{kind: loweredSinhCosh, numPolys: 2, sinh: sinhCoshScheme{fn: f}}
	case bigmath.SinPi, bigmath.CosPi:
		return Lowered{kind: loweredSinCosPi, numPolys: 2, trig: sinCosPiScheme{fn: f}}
	}
	//lint:ignore barepanic exhaustive Func switch; a new function is a compile-time change.
	panic("reduction: unknown function")
}

// Func identifies the elementary function.
func (l *Lowered) Func() bigmath.Func {
	switch l.kind {
	case loweredLog:
		return l.log.fn
	case loweredExp:
		return l.exp.fn
	case loweredSinhCosh:
		return l.sinh.fn
	default:
		return l.trig.fn
	}
}

// NumPolys is 1, or 2 for the sinh/cosh and sinpi/cospi families.
func (l *Lowered) NumPolys() int { return l.numPolys }

// Reduce maps an input to its reduction state, or reports false when the
// input must take the special path. Identical to Scheme.Reduce.
//
//evalhot:loop
func (l *Lowered) Reduce(x float64) (Ctx, bool) {
	switch l.kind {
	case loweredLog:
		return l.log.Reduce(x)
	case loweredExp:
		return l.exp.Reduce(x)
	case loweredSinhCosh:
		return l.sinh.Reduce(x)
	default:
		return l.trig.Reduce(x)
	}
}

// Compensate computes the final double result from the polynomial outputs.
// Identical to Scheme.Compensate.
//
//evalhot:loop
func (l *Lowered) Compensate(ctx Ctx, y0, y1 float64) float64 {
	switch l.kind {
	case loweredLog:
		return l.log.Compensate(ctx, y0, y1)
	case loweredExp:
		return l.exp.Compensate(ctx, y0, y1)
	case loweredSinhCosh:
		return l.sinh.Compensate(ctx, y0, y1)
	default:
		return l.trig.Compensate(ctx, y0, y1)
	}
}

// Special returns the result for special-path inputs. It may be arbitrarily
// slow (the sinpi/cospi family consults the exact-value table), which is
// fine: the batch loop reaches it only for inputs Reduce rejected. The
// //evalhot:cold marker below records that audit: the interprocedural
// hot-loop walk stops here instead of flagging the exact-value machinery.
//
//evalhot:cold
func (l *Lowered) Special(x float64) float64 {
	switch l.kind {
	case loweredLog:
		return l.log.Special(x)
	case loweredExp:
		return l.exp.Special(x)
	case loweredSinhCosh:
		return l.sinh.Special(x)
	default:
		return l.trig.Special(x)
	}
}
