package reduction

import (
	"math"
	"math/big"

	"repro/internal/bigmath"
	"repro/internal/poly"
)

// sinhCoshScheme implements sinh and cosh with two polynomial kernels.
//
// Reduction: a = |x| = N·(ln2/64) + r as in expScheme, and with
// E± = 2^(±N/64) assembled from the tables,
//
//	sinh a = ½(E⁺-E⁻)·cosh r + ½(E⁺+E⁻)·sinh r
//	cosh a = ½(E⁺+E⁻)·cosh r + ½(E⁺-E⁻)·sinh r
//
// so both functions share an even cosh-kernel polynomial (y0) and an odd
// sinh-kernel polynomial (y1); sinh restores the sign of x at the end.
// This is the paper's "range reduction requires approximations of two
// functions" structure for sinh/cosh (Table 1 lists two polynomials).
type sinhCoshScheme struct {
	fn bigmath.Func
}

func (s sinhCoshScheme) Func() bigmath.Func { return s.fn }

func (s sinhCoshScheme) NumPolys() int { return 2 }

func (s sinhCoshScheme) Structure(p int) poly.Structure {
	if p == 0 {
		return poly.Even // cosh kernel
	}
	return poly.Odd // sinh kernel
}

func (s sinhCoshScheme) ReducedDomain() (lo, hi float64) {
	c := ln2Double / 64
	return -c / 2 * 1.01, c / 2 * 1.01
}

// overflowCut: sinh/cosh ≈ e^|x|/2 > 2^129 for |x| ≥ 91.
const sinhOverflowCut = 91.0

// sinhTinyCut: below it, sinh x = x·(1 + x²/6 + …) and cosh x = 1 + x²/2
// sit strictly between a representable anchor and its neighbour in every
// target (x²/2 < 2^-37 ≪ 2^-29); the polynomial path cannot express that
// in double, so the special path answers with nextafter-style proxies.
const sinhTinyCut = 1.0 / (1 << 18)

func (s sinhCoshScheme) Reduce(x float64) (Ctx, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return Ctx{}, false
	}
	a := math.Abs(x)
	if a < sinhTinyCut {
		return Ctx{}, false // tiny inputs (and sinh's ±0) take the special path
	}
	if a >= sinhOverflowCut {
		return Ctx{}, false
	}
	n := math.Round(a * invLn2Times64)
	r := (a - n*ln2Over64Hi) - n*ln2Over64Lo
	ni := int(n)
	q, j := ni>>6, ni&63
	ep := math.Ldexp(exp2J[j], q)
	en := math.Ldexp(exp2Jn[j], -q)
	diff, sum := 0.5*(ep-en), 0.5*(ep+en)
	ctx := Ctx{R: r, Sign: 1}
	if s.fn == bigmath.Sinh {
		ctx.A, ctx.B = diff, sum
		ctx.Sign = math.Copysign(1, x)
	} else {
		ctx.A, ctx.B = sum, diff
	}
	return ctx, true
}

func (s sinhCoshScheme) Compensate(ctx Ctx, y0, y1 float64) float64 {
	return ctx.Sign * (ctx.A*y0 + ctx.B*y1)
}

func (s sinhCoshScheme) Affine(ctx Ctx) (sign, a, b float64) {
	return ctx.Sign, ctx.A, ctx.B
}

func (s sinhCoshScheme) Kernels(r float64, prec uint) (*big.Float, *big.Float) {
	if r == 0 {
		return new(big.Float).SetPrec(prec).SetInt64(1), new(big.Float).SetPrec(prec)
	}
	return bigmath.Eval(bigmath.Cosh, r, prec), bigmath.Eval(bigmath.Sinh, r, prec)
}

func (s sinhCoshScheme) Special(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case math.IsInf(x, 0):
		if s.fn == bigmath.Cosh {
			return math.Inf(1)
		}
		return x
	case x == 0:
		if s.fn == bigmath.Cosh {
			return 1
		}
		return x // ±0
	case math.Abs(x) < sinhTinyCut:
		if s.fn == bigmath.Cosh {
			return math.Nextafter(1, 2) // cosh x = 1 + x²/2: just above 1
		}
		// sinh x = x + x³/6: just beyond x, away from zero.
		return math.Nextafter(x, math.Inf(1)*math.Copysign(1, x))
	case math.Abs(x) >= sinhOverflowCut:
		if s.fn == bigmath.Cosh {
			return math.MaxFloat64
		}
		return saturate(x)
	}
	//lint:ignore barepanic Reduce classified the input as special; the case split above mirrors that classification exactly.
	panic("reduction: sinh/cosh special on regular input")
}
