package reduction

import (
	"math"
	"math/big"

	"repro/internal/interval"
)

// fKey maps float64s to int64s preserving numeric order (the standard
// sign-magnitude flip); it is an involution, so it also maps keys back.
func fKey(f float64) int64 {
	i := int64(math.Float64bits(f))
	if i < 0 {
		i ^= 0x7fffffffffffffff
	}
	return i
}

func keyF(i int64) float64 {
	if i < 0 {
		i ^= 0x7fffffffffffffff
	}
	return math.Float64frombits(uint64(i))
}

// InvertMonotone computes the inverse output compensation for
// single-polynomial schemes: the closed interval of doubles y for which
// Compensate(ctx, y, 0) lands in iv. Compensate must be monotonically
// nondecreasing in y (all single-polynomial schemes in this package are).
// ok is false when no double output can produce a value in iv — such
// inputs become special-case entries.
func InvertMonotone(s Scheme, ctx Ctx, iv interval.Interval) (interval.Interval, bool) {
	oc := func(y float64) float64 { return s.Compensate(ctx, y, 0) }

	loKey, hiKey := fKey(-math.MaxFloat64), fKey(math.MaxFloat64)
	// The key range spans nearly the whole int64 range, so midpoints are
	// computed through uint64 to avoid overflow.
	midLow := func(a, b int64) int64 { return a + int64((uint64(b)-uint64(a))/2) }
	midHigh := func(a, b int64) int64 { return a + int64((uint64(b)-uint64(a)+1)/2) }

	// Smallest y with oc(y) >= iv.Lo.
	a, b := loKey, hiKey
	if oc(keyF(b)) < iv.Lo {
		return interval.Interval{}, false
	}
	for a < b {
		mid := midLow(a, b)
		if oc(keyF(mid)) >= iv.Lo {
			b = mid
		} else {
			a = mid + 1
		}
	}
	yLo := keyF(a)

	// Largest y with oc(y) <= iv.Hi.
	a, b = loKey, hiKey
	if oc(keyF(a)) > iv.Hi {
		return interval.Interval{}, false
	}
	for a < b {
		mid := midHigh(a, b)
		if oc(keyF(mid)) <= iv.Hi {
			a = mid
		} else {
			b = mid - 1
		}
	}
	yHi := keyF(a)

	if yLo > yHi {
		return interval.Interval{}, false
	}
	// Paranoia: both endpoints must actually land inside.
	if v := oc(yLo); v < iv.Lo || v > iv.Hi {
		return interval.Interval{}, false
	}
	if v := oc(yHi); v < iv.Lo || v > iv.Hi {
		return interval.Interval{}, false
	}
	return interval.Interval{Lo: yLo, Hi: yHi}, true
}

// evalGuard bounds the absolute rounding error of the double evaluation
// a·y0 + b·y1 (two multiplies and one add, each ≤ half an ulp).
func evalGuard(t0, t1 float64) float64 {
	return 4e-16 * (math.Abs(t0) + math.Abs(t1))
}

// SplitAffine computes per-kernel output boxes for two-polynomial schemes.
// Given the exact kernel values y0s, y1s at the reduced input and a target
// result interval iv, it returns intervals I0 and I1 such that any kernel
// outputs (y0, y1) ∈ I0 × I1 make the production double evaluation
// sign·(a·y0 + b·y1) land in iv. Each kernel receives half of the
// available slack, scaled by its multiplier; the double-evaluation
// rounding is charged against the slack up front. ok is false when the
// slack is exhausted (the input must be special-cased).
func SplitAffine(tp TwoPoly, ctx Ctx, y0s, y1s *big.Float, iv interval.Interval) (i0, i1 interval.Interval, ok bool) {
	sign, a, b := tp.Affine(ctx)
	lo, hi := iv.Lo, iv.Hi
	if sign < 0 {
		lo, hi = -hi, -lo
	}

	// Center c = a·y0* + b·y1* in high precision.
	const prec = 160
	c := new(big.Float).SetPrec(prec).SetFloat64(a)
	c.Mul(c, y0s)
	t := new(big.Float).SetPrec(prec).SetFloat64(b)
	t.Mul(t, y1s)
	c.Add(c, t)

	dLo := new(big.Float).SetPrec(prec).Sub(c, new(big.Float).SetPrec(53).SetFloat64(lo))
	dHi := new(big.Float).SetPrec(prec).Sub(new(big.Float).SetPrec(53).SetFloat64(hi), c)
	slackLo, _ := dLo.Float64()
	slackHi, _ := dHi.Float64()

	y0d, _ := y0s.Float64()
	y1d, _ := y1s.Float64()
	guard := evalGuard(a*y0d, b*y1d)
	// Charge the evaluation rounding and the double-rounding of the exact
	// centers against the slack.
	guard += 2 * (math.Abs(a)*ulpOf(y0d) + math.Abs(b)*ulpOf(y1d))
	slackLo -= guard
	slackHi -= guard
	if slackLo <= 0 || slackHi <= 0 {
		return i0, i1, false
	}

	box := func(kappa, yd float64) (interval.Interval, bool) {
		if kappa == 0 {
			return interval.Interval{Lo: -math.MaxFloat64, Hi: math.MaxFloat64}, true
		}
		// Contribution κ·Δ must stay in [-slackLo/2, slackHi/2].
		dn, up := slackLo/2/math.Abs(kappa), slackHi/2/math.Abs(kappa)
		if kappa < 0 {
			dn, up = up, dn
		}
		out := interval.Interval{Lo: yd - dn, Hi: yd + up}
		return out, !out.Empty()
	}
	var ok0, ok1 bool
	i0, ok0 = box(a, y0d)
	i1, ok1 = box(b, y1d)
	return i0, i1, ok0 && ok1
}

func ulpOf(v float64) float64 {
	return math.Abs(math.Nextafter(v, math.Inf(1)) - v)
}
