package reduction

import (
	"math"
	"math/big"

	"repro/internal/bigmath"
	"repro/internal/poly"
)

// sinCosPiScheme implements sinpi and cospi with two polynomial kernels.
//
// Reduction (every step exact in float64): z = |x| mod 2 ∈ [0,2), folded
// into w ∈ [0,½] with sign fixups using sinπ(1+t) = -sinπ(t),
// sinπ(1-t) = sinπ(t), cosπ(1-t) = -cosπ(t); then w = i/64 + r with
// i = round(64w) ∈ 0..32 and r ∈ [-1/128, 1/128] (Sterbenz-exact), and
//
//	sinπ(w) = sp[i]·cosπ(r) + cp[i]·sinπ(r)
//	cosπ(w) = cp[i]·cosπ(r) - sp[i]·sinπ(r)
//
// with 33-entry correctly rounded tables sp, cp. The kernels are an even
// cosπ(r) polynomial (y0) and an odd sinπ(r) polynomial (y1).
//
// Inputs with 2x integral (all results 0, ±1, ±½-grid exact values, plus
// every |x| ≥ 2^52) take the special path.
type sinCosPiScheme struct {
	fn bigmath.Func
}

func (s sinCosPiScheme) Func() bigmath.Func { return s.fn }

func (s sinCosPiScheme) NumPolys() int { return 2 }

func (s sinCosPiScheme) Structure(p int) poly.Structure {
	if p == 0 {
		return poly.Even // cosπ kernel
	}
	return poly.Odd // sinπ kernel
}

func (s sinCosPiScheme) ReducedDomain() (lo, hi float64) {
	return -1.0 / 128, 1.0 / 128
}

// trigAnchorCut: when the reduced input r is this close to an extremum of
// the target function (cosπ at w = 0, sinπ at w = ½), the result is
// 1 - (πr)²/2 — strictly between 1 and its lower neighbour in every target,
// which the even-kernel polynomial cannot express in double (its constant
// term would have to serve every such input at once while the other
// constraints pin it). Those inputs take the special path with the
// adjacent-double proxy, like the tiny-input paths of exp/sinh/cosh.
const trigAnchorCut = 1.0 / (1 << 17)

// fold reduces x (finite, 2x non-integral) to (w, ssign, csign) with
// w ∈ [0, ½], sinπ(x) = ssign·sinπ(w) and cosπ(x) = csign·cosπ(w). Every
// step is exact in float64.
func fold(x float64) (w, ssign, csign float64) {
	z := math.Mod(math.Abs(x), 2) // exact
	ssign, csign = 1, 1
	w = z
	if w > 1 {
		w = z - 1 // exact (Sterbenz)
		ssign, csign = -1, -1
	}
	if w > 0.5 {
		w = 1 - w // exact (Sterbenz)
		csign = -csign
	}
	if math.Signbit(x) {
		ssign = -ssign
	}
	return w, ssign, csign
}

func (s sinCosPiScheme) Reduce(x float64) (Ctx, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return Ctx{}, false
	}
	if 2*x == math.Trunc(2*x) {
		return Ctx{}, false // exact result
	}
	w, ssign, csign := fold(x)
	i := int(math.Round(w * 64)) // 0..32
	r := w - float64(i)/64       // exact (Sterbenz)
	if math.Abs(r) < trigAnchorCut &&
		((s.fn == bigmath.CosPi && i == 0) || (s.fn == bigmath.SinPi && i == 32)) {
		return Ctx{}, false // result hugs ±1: special path
	}
	ctx := Ctx{R: r}
	if s.fn == bigmath.SinPi {
		ctx.A, ctx.B, ctx.Sign = sinPiI[i], cosPiI[i], ssign
	} else {
		ctx.A, ctx.B, ctx.Sign = cosPiI[i], -sinPiI[i], csign
	}
	return ctx, true
}

func (s sinCosPiScheme) Compensate(ctx Ctx, y0, y1 float64) float64 {
	return ctx.Sign * (ctx.A*y0 + ctx.B*y1)
}

func (s sinCosPiScheme) Affine(ctx Ctx) (sign, a, b float64) {
	return ctx.Sign, ctx.A, ctx.B
}

func (s sinCosPiScheme) Kernels(r float64, prec uint) (*big.Float, *big.Float) {
	if r == 0 {
		return new(big.Float).SetPrec(prec).SetInt64(1), new(big.Float).SetPrec(prec)
	}
	return bigmath.Eval(bigmath.CosPi, r, prec), bigmath.Eval(bigmath.SinPi, r, prec)
}

func (s sinCosPiScheme) Special(x float64) float64 {
	switch {
	case math.IsNaN(x), math.IsInf(x, 0):
		return math.NaN()
	}
	if v, ok := bigmath.ExactValue(s.fn, x); ok {
		f, _ := v.Float64()
		if v.Signbit() {
			f = math.Copysign(f, -1)
		}
		return f
	}
	// Anchor region: |result| = 1 - (πr)²/2, just below 1 in magnitude.
	w, ssign, csign := fold(x)
	i := int(math.Round(w * 64))
	r := w - float64(i)/64
	if math.Abs(r) < trigAnchorCut {
		below := math.Nextafter(1, 0)
		if s.fn == bigmath.CosPi && i == 0 {
			return csign * below
		}
		if s.fn == bigmath.SinPi && i == 32 {
			return ssign * below
		}
	}
	//lint:ignore barepanic Reduce classified the input as special; the case split above mirrors that classification exactly.
	panic("reduction: sinpi/cospi special on regular input")
}
