package reduction

import (
	"math"
	"math/big"

	"repro/internal/bigmath"
	"repro/internal/poly"
)

// Ctx carries the per-input reduction state from Reduce to Compensate. Its
// interpretation is scheme-specific; it is a plain value so the hot paths
// allocate nothing.
type Ctx struct {
	// R is the reduced polynomial input.
	R float64
	// A and B are the affine kernel multipliers of two-polynomial schemes.
	A, B float64
	// T is the additive term (log family) or the 2^(j/64) factor
	// (exponential family).
	T float64
	// E is the binary scaling exponent q of the exponential family.
	E int
	// Sign is the final sign multiplier of two-polynomial schemes.
	Sign float64
}

// Scheme is the range-reduction/output-compensation strategy of one
// elementary function. Reduce and Compensate are the production code: the
// generated library executes them verbatim, and the generator replays them
// bit-for-bit when building constraints.
type Scheme interface {
	// Func identifies the elementary function.
	Func() bigmath.Func
	// NumPolys is 1, or 2 for the sinh/cosh and sinpi/cospi families.
	NumPolys() int
	// Structure returns the monomial layout of polynomial p.
	Structure(p int) poly.Structure
	// ReducedDomain bounds the reduced inputs produced by Reduce.
	ReducedDomain() (lo, hi float64)
	// Reduce maps an input to its reduction state, or reports false when
	// the input must take the special path.
	Reduce(x float64) (Ctx, bool)
	// Compensate computes the final double result from the polynomial
	// outputs (y1 is ignored by single-polynomial schemes). For
	// single-polynomial schemes Compensate is monotonically nondecreasing
	// in y0, which is what makes the inverse output compensation a binary
	// search.
	Compensate(ctx Ctx, y0, y1 float64) float64
	// Special returns the result for special-path inputs as a double whose
	// rounding into any supported format under any mode is the correct
	// result (±Inf, NaN, signed zeros, exact values, and saturated
	// overflow/underflow proxies).
	Special(x float64) float64
}

// TwoPoly is implemented by the schemes with two polynomial kernels. The
// generator uses the exact kernel values and the affine decomposition
// result = sign·(a·y0 + b·y1) to split output intervals into per-kernel
// boxes.
type TwoPoly interface {
	Scheme
	// Kernels returns high-precision kernel values (y0, y1) at the reduced
	// input r.
	Kernels(r float64, prec uint) (*big.Float, *big.Float)
	// Affine returns the multipliers of the affine output compensation.
	Affine(ctx Ctx) (sign, a, b float64)
}

// ForFunc returns the scheme implementing f.
func ForFunc(f bigmath.Func) Scheme {
	switch f {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		return logScheme{fn: f}
	case bigmath.Exp, bigmath.Exp2, bigmath.Exp10:
		return expScheme{fn: f}
	case bigmath.Sinh, bigmath.Cosh:
		return sinhCoshScheme{fn: f}
	case bigmath.SinPi, bigmath.CosPi:
		return sinCosPiScheme{fn: f}
	}
	//lint:ignore barepanic exhaustive Func switch; a new function is a compile-time change.
	panic("reduction: unknown function")
}

// saturate returns the overflow proxy with the sign of x.
func saturate(x float64) float64 {
	return math.Copysign(math.MaxFloat64, x)
}
