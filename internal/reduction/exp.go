package reduction

import (
	"math"

	"repro/internal/bigmath"
	"repro/internal/poly"
)

// expScheme implements exp, exp2 and exp10.
//
// Reduction: with c = ln2/64 (resp. 1/64, log10(2)/64), N = round(x/c) and
// r = x - N·c computed with a hi/lo split of c, so |r| ≤ c/2 ≈ 0.0054..0.0078.
// The polynomial approximates exp(r) (resp. 2^r, 10^r).
//
// Compensation: with N = 64q + j, result = 2^q · (y · 2^(j/64)) using the
// 64-entry correctly rounded table. Monotonically nondecreasing in y.
//
// Cutoffs (|E| = 8 family, round-to-odd formats up to 36 bits): inputs
// whose results certainly exceed 2^129 take the +MaxFloat64 overflow proxy;
// inputs whose results are certainly below 2^-157 take the
// SmallestNonzeroFloat64 underflow proxy. Both proxies round identically to
// the true result in every format and mode.
type expScheme struct {
	fn bigmath.Func
}

func (s expScheme) Func() bigmath.Func { return s.fn }

func (s expScheme) NumPolys() int { return 1 }

func (s expScheme) Structure(int) poly.Structure { return poly.Dense }

func (s expScheme) ReducedDomain() (lo, hi float64) {
	switch s.fn {
	case bigmath.Exp:
		c := ln2Double / 64
		return -c / 2 * 1.01, c / 2 * 1.01
	case bigmath.Exp2:
		return -1.0 / 128, 1.0 / 128
	default: // Exp10
		c := log102Double / 64
		return -c / 2 * 1.01, c / 2 * 1.01
	}
}

// cutoffs returns (hi, lo): x ≥ hi overflows every target, x ≤ lo
// underflows below minSubnormal/4 of every target.
func (s expScheme) cutoffs() (float64, float64) {
	switch s.fn {
	case bigmath.Exp:
		return 90.5, -109.5
	case bigmath.Exp2:
		return 130, -157
	default: // Exp10
		return 39.5, -47.5
	}
}

// expTinyCut: for |x| below it, exp(cx) sits strictly between 1 and the
// adjacent value of every target (mantissa ≤ 27 bits, |c·x| < 2^-29.6), so
// the polynomial path — whose double output would collapse to exactly 1 —
// cannot satisfy the round-to-odd interval; the special path returns the
// 1±2^-60 proxy instead. This mirrors the small-input fast paths of the
// RLibm/LLVM-libc implementations.
const expTinyCut = 1.0 / (1 << 31)

func (s expScheme) Reduce(x float64) (Ctx, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return Ctx{}, false
	}
	if x == 0 || math.Abs(x) < expTinyCut {
		return Ctx{}, false
	}
	hiCut, loCut := s.cutoffs()
	if x >= hiCut || x <= loCut {
		return Ctx{}, false
	}
	var n float64
	var r float64
	switch s.fn {
	case bigmath.Exp:
		n = math.Round(x * invLn2Times64)
		r = (x - n*ln2Over64Hi) - n*ln2Over64Lo
	case bigmath.Exp2:
		n = math.Round(x * 64)
		r = x - n/64 // exact
	default: // Exp10
		n = math.Round(x * invLg2Times64)
		r = (x - n*lg2Over64Hi) - n*lg2Over64Lo
	}
	ni := int(n)
	q, j := ni>>6, ni&63
	return Ctx{R: r, T: exp2J[j], E: q}, true
}

func (s expScheme) Compensate(ctx Ctx, y0, _ float64) float64 {
	return math.Ldexp(y0*ctx.T, ctx.E)
}

func (s expScheme) Special(x float64) float64 {
	hiCut, loCut := s.cutoffs()
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case math.IsInf(x, 1):
		return math.Inf(1)
	case math.IsInf(x, -1):
		return 0
	case x == 0:
		return 1
	case math.Abs(x) < expTinyCut:
		// exp(cx) = 1 + cx + …: strictly between 1 and its neighbours in
		// every target; the doubles adjacent to 1 round identically to the
		// true value in every format with ≤ 50 mantissa bits.
		if x > 0 {
			return math.Nextafter(1, 2)
		}
		return math.Nextafter(1, 0)
	case x >= hiCut:
		return math.MaxFloat64
	case x <= loCut:
		return math.SmallestNonzeroFloat64
	}
	//lint:ignore barepanic Reduce classified the input as special; the case split above mirrors that classification exactly.
	panic("reduction: exp special on regular input")
}
