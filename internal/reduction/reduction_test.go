package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/interval"
	"repro/internal/oracle"
	"repro/internal/poly"
)

func TestTables(t *testing.T) {
	if recipF[0] != 1 || lnF[0] != 0 || log2F[0] != 0 {
		t.Error("j=0 table entries")
	}
	if log2F[64] != bigToDouble(bigmath.Log2, 1.5) {
		t.Error("log2F[64]")
	}
	if exp2J[32] != math.Sqrt2 {
		t.Errorf("2^(1/2) table entry: %v", exp2J[32])
	}
	if sinPiI[32] != 1 || cosPiI[32] != 0 || sinPiI[16] != cosPiI[16] {
		t.Error("trig table symmetry")
	}
	if ln2Over64Hi+ln2Over64Lo == 0 || math.Abs(ln2Over64Hi*64-math.Ln2) > 1e-9 {
		t.Error("ln2/64 split")
	}
	for _, f := range bigmath.AllFuncs {
		if TableBytes(f) <= 0 {
			t.Errorf("TableBytes(%v) = %d", f, TableBytes(f))
		}
	}
}

// The fidelity property: for every regular input, compensating the *exact*
// kernel values must reproduce the correctly rounded result. This is the
// end-to-end check that reduction + tables + compensation lose less than
// the rounding interval's freedom.
func TestReduceCompensateFidelity(t *testing.T) {
	in := fp.Bfloat16
	out := in.Extend(2) // the round-to-odd target F18,8
	rng := rand.New(rand.NewSource(70))
	const prec = 120
	for _, fn := range bigmath.AllFuncs {
		s := ForFunc(fn)
		o := oracle.New(fn)
		checked := 0
		for trial := 0; trial < 4000; trial++ {
			b := uint64(rng.Int63()) & (in.NumValues() - 1)
			x := in.Decode(b)
			ctx, regular := s.Reduce(x)
			if !regular {
				continue
			}
			checked++
			lo, hi := s.ReducedDomain()
			if ctx.R < lo || ctx.R > hi {
				t.Fatalf("%v(%g): reduced input %g outside [%g,%g]", fn, x, ctx.R, lo, hi)
			}
			// Exact kernel values.
			var y0, y1 float64
			if tp, isTwo := s.(TwoPoly); isTwo {
				k0, k1 := tp.Kernels(ctx.R, prec)
				y0, _ = k0.Float64()
				y1, _ = k1.Float64()
			} else {
				y0 = kernelRef(fn, ctx.R)
			}
			got := s.Compensate(ctx, y0, y1)
			// got must fall inside the rounding interval of the correctly
			// rounded round-to-odd result (the freedom the polynomial will
			// inherit).
			want := o.Result(x, out, fp.RoundToOdd)
			iv, ok := interval.Rounding(out, want, fp.RoundToOdd)
			if !ok {
				continue // zero results etc. — handled as specials upstream
			}
			if !iv.Contains(got) {
				t.Fatalf("%v(%g): compensated %g outside interval %v (want bits %#x = %g)",
					fn, x, got, iv, want, out.Decode(want))
			}
		}
		if checked < 250 {
			t.Errorf("%v: only %d regular inputs checked", fn, checked)
		}
	}
}

// kernelRef returns a high-accuracy double of the kernel the single-poly
// schemes approximate.
func kernelRef(fn bigmath.Func, r float64) float64 {
	switch fn {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		// log(1+r): 1+r is not exact in double, so go through big.
		v := bigmath.Eval(fn, 1+r, 100)
		f, _ := v.Float64()
		// correction for the rounding of 1+r: negligible vs interval widths
		// at bfloat16 scale.
		return f
	case bigmath.Exp, bigmath.Exp2, bigmath.Exp10:
		v := bigmath.Eval(fn, r, 100)
		f, _ := v.Float64()
		return f
	}
	panic("not single-poly")
}

// Special-path results must round to the oracle's answer for every mode.
func TestSpecialPathAgreesWithOracle(t *testing.T) {
	in := fp.Bfloat16
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		1, -1, 2.5, -0.5, 3, 200, -200, 100.5, 1e30, -1e30,
		in.MinSubnormalValue(), -in.MinSubnormalValue(),
	}
	for _, fn := range bigmath.AllFuncs {
		s := ForFunc(fn)
		o := oracle.New(fn)
		for _, x := range specials {
			if _, regular := s.Reduce(x); regular {
				continue
			}
			proxy := s.Special(x)
			for _, m := range fp.AllModes {
				got := in.FromFloat64(proxy, m)
				want := o.Result(x, in, m)
				if got != want {
					t.Errorf("%v(%g) mode %v: special path %#x, oracle %#x (proxy %g)",
						fn, x, m, got, want, proxy)
				}
			}
		}
	}
}

// Reduction exactness claims: r must be reproducible from higher-precision
// recomputation for the schemes that promise exact steps.
func TestExactReductionSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sp := ForFunc(bigmath.SinPi)
	for i := 0; i < 20000; i++ {
		x := math.Ldexp(rng.Float64()+0.5, rng.Intn(40)-10)
		if 2*x == math.Trunc(2*x) {
			continue
		}
		ctx, ok := sp.Reduce(x)
		if !ok {
			continue
		}
		// Reconstruct w from the tables: sinπ(x) must equal
		// Sign·(A·cosπ(r)+B·sinπ(r)); spot-check the identity numerically.
		want := math.Sin(math.Pi * math.Mod(x, 2))
		got := ctx.Sign * (ctx.A*math.Cos(math.Pi*ctx.R) + ctx.B*math.Sin(math.Pi*ctx.R))
		// The reference itself carries ~π·z·2^-53 ≈ 1e-15 of absolute error.
		if math.Abs(got-want) > 1e-14+1e-12*math.Abs(want) {
			t.Fatalf("sinpi fold identity broken at x=%g: got %g want %g", x, got, want)
		}
	}
	// exp2 reduction is exact: x = N/64 + r.
	e2 := ForFunc(bigmath.Exp2)
	for i := 0; i < 20000; i++ {
		x := (rng.Float64()*2 - 1) * 120
		ctx, ok := e2.Reduce(x)
		if !ok {
			continue
		}
		n := math.Round(x * 64)
		if ctx.R != x-n/64 {
			t.Fatalf("exp2 reduction inexact at %g", x)
		}
		if math.Abs(ctx.R) > 1.0/128 {
			t.Fatalf("exp2 reduced input %g out of range", ctx.R)
		}
	}
}

func TestInvertMonotone(t *testing.T) {
	s := ForFunc(bigmath.Log2)
	rng := rand.New(rand.NewSource(72))
	out := fp.MustFormat(21, 8)
	o := oracle.New(bigmath.Log2)
	count := 0
	for i := 0; i < 3000; i++ {
		x := math.Ldexp(rng.Float64()+0.5, rng.Intn(100)-50)
		ctx, ok := s.Reduce(x)
		if !ok {
			continue
		}
		bits := o.Result(x, out, fp.RoundToOdd)
		iv, ok := interval.Rounding(out, bits, fp.RoundToOdd)
		if !ok {
			continue
		}
		yiv, ok := InvertMonotone(s, ctx, iv)
		if !ok {
			continue // vanishingly rare: no double output lands inside
		}
		count++
		// Definitional checks: endpoints and midpoint compensate into iv;
		// just outside does not.
		for _, y := range []float64{yiv.Lo, yiv.Hi, yiv.Lo + (yiv.Hi-yiv.Lo)/2} {
			if v := s.Compensate(ctx, y, 0); !iv.Contains(v) {
				t.Fatalf("x=%g: y=%g compensates to %g outside %v", x, y, v, iv)
			}
		}
		below := math.Nextafter(yiv.Lo, math.Inf(-1))
		if v := s.Compensate(ctx, below, 0); iv.Contains(v) {
			t.Fatalf("x=%g: yLo not minimal", x)
		}
		above := math.Nextafter(yiv.Hi, math.Inf(1))
		if v := s.Compensate(ctx, above, 0); iv.Contains(v) {
			t.Fatalf("x=%g: yHi not maximal", x)
		}
	}
	if count < 2000 {
		t.Errorf("only %d inversions exercised", count)
	}
}

func TestSplitAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	out := fp.MustFormat(21, 8)
	for _, fn := range []bigmath.Func{bigmath.Sinh, bigmath.Cosh, bigmath.SinPi, bigmath.CosPi} {
		s := ForFunc(fn).(TwoPoly)
		o := oracle.New(fn)
		count := 0
		for i := 0; i < 2000; i++ {
			x := (rng.Float64()*2 - 1) * 4
			ctx, ok := s.Reduce(x)
			if !ok {
				continue
			}
			bits := o.Result(x, out, fp.RoundToOdd)
			iv, ok := interval.Rounding(out, bits, fp.RoundToOdd)
			if !ok {
				continue
			}
			k0, k1 := s.Kernels(ctx.R, 160)
			i0, i1, ok := SplitAffine(s, ctx, k0, k1, iv)
			if !ok {
				continue
			}
			count++
			// Any corner of the box must compensate into iv.
			for _, y0 := range []float64{i0.Lo, i0.Hi} {
				for _, y1 := range []float64{i1.Lo, i1.Hi} {
					if math.Abs(y0) == math.MaxFloat64 || math.Abs(y1) == math.MaxFloat64 {
						continue
					}
					if v := s.Compensate(ctx, y0, y1); !iv.Contains(v) {
						t.Fatalf("%v(%g): corner (%g,%g) → %g outside %v",
							fn, x, y0, y1, v, iv)
					}
				}
			}
		}
		if count < 1000 {
			t.Errorf("%v: only %d splits exercised", fn, count)
		}
	}
}

func TestStructures(t *testing.T) {
	for _, fn := range bigmath.AllFuncs {
		s := ForFunc(fn)
		switch s.NumPolys() {
		case 1:
			if s.Structure(0) != poly.Dense {
				t.Errorf("%v: want dense", fn)
			}
		case 2:
			if s.Structure(0) != poly.Even || s.Structure(1) != poly.Odd {
				t.Errorf("%v: want even/odd kernels", fn)
			}
		}
		if s.Func() != fn {
			t.Errorf("Func() mismatch for %v", fn)
		}
	}
}
