package reduction

import (
	"math"

	"repro/internal/bigmath"
	"repro/internal/poly"
)

// logScheme implements ln, log2 and log10.
//
// Reduction: x = 2^e · m with m ∈ [1,2); j = ⌊(m-1)·128⌋ selects
// F = 1 + j/128; the polynomial input is r = (m-F)·(1/F) — the subtraction
// is exact by Sterbenz and the table holds correctly rounded reciprocals —
// giving r ∈ [0, 1/128]. The polynomial approximates log(1+r).
//
// Compensation: result = (e·log(2) + logF[j]) + y, with the first sum
// precomputed into Ctx.T using the same float64 operations the library
// performs. Strictly increasing in y.
type logScheme struct {
	fn bigmath.Func
}

func (s logScheme) Func() bigmath.Func { return s.fn }

func (s logScheme) NumPolys() int { return 1 }

func (s logScheme) Structure(int) poly.Structure { return poly.Dense }

func (s logScheme) ReducedDomain() (lo, hi float64) { return 0, 1.0 / 128 }

func (s logScheme) Reduce(x float64) (Ctx, bool) {
	if math.IsNaN(x) || x <= 0 || math.IsInf(x, 1) || x == 1 {
		return Ctx{}, false
	}
	frac, exp := math.Frexp(x) // x = frac·2^exp, frac ∈ [0.5,1)
	m := 2 * frac              // exact
	e := exp - 1
	j := int((m - 1) * 128) // floor; exact scaling by a power of two
	F := 1 + float64(j)/128
	r := (m - F) * recipF[j] // m-F exact (Sterbenz)
	var t float64
	switch s.fn {
	case bigmath.Ln:
		t = float64(e)*ln2Double + lnF[j]
	case bigmath.Log2:
		t = float64(e) + log2F[j]
	case bigmath.Log10:
		t = float64(e)*log102Double + log10F[j]
	}
	return Ctx{R: r, T: t}, true
}

func (s logScheme) Compensate(ctx Ctx, y0, _ float64) float64 {
	return ctx.T + y0
}

func (s logScheme) Special(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return math.Inf(-1)
	case x < 0:
		return math.NaN()
	case math.IsInf(x, 1):
		return math.Inf(1)
	case x == 1:
		return 0
	}
	//lint:ignore barepanic Reduce classified the input as special; the case split above mirrors that classification exactly.
	panic("reduction: log special on regular input")
}
