package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bigmath"
)

// loweredCorpus mixes regular inputs, every scheme's special classes and
// random magnitudes across the exponent range.
func loweredCorpus(rng *rand.Rand) []float64 {
	vs := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 2, math.Inf(1), math.Inf(-1), math.NaN(),
		1e-12, -1e-12, 1.0 / (1 << 32), 200, -200, 95, -95, 131, -160, 40, -48,
		2.5, -2.5, 0.25, 31.0 / 64, 0x1p52, 0x1p52 + 0.5, 1 + 1e-7, 1 - 1e-7,
	}
	for i := 0; i < 5000; i++ {
		vs = append(vs, math.Ldexp(rng.Float64()*2-1, rng.Intn(220)-110))
	}
	return vs
}

// TestLoweredMatchesScheme pins the devirtualization contract: for every
// function, Lowered.{Func,NumPolys,Reduce,Compensate,Special} agree bit for
// bit with the Scheme interface path on a mixed corpus.
func TestLoweredMatchesScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	corpus := loweredCorpus(rng)
	for _, fn := range bigmath.AllFuncs {
		s := ForFunc(fn)
		l := Lower(fn)
		if l.Func() != s.Func() {
			t.Fatalf("%v: Func mismatch", fn)
		}
		if l.NumPolys() != s.NumPolys() {
			t.Fatalf("%v: NumPolys mismatch", fn)
		}
		for _, x := range corpus {
			ctxS, okS := s.Reduce(x)
			ctxL, okL := l.Reduce(x)
			if okS != okL || ctxS != ctxL {
				t.Fatalf("%v: Reduce(%x): scheme (%+v,%v) vs lowered (%+v,%v)", fn, x, ctxS, okS, ctxL, okL)
			}
			if !okS {
				sv, lv := s.Special(x), l.Special(x)
				if math.Float64bits(sv) != math.Float64bits(lv) {
					t.Fatalf("%v: Special(%x): %x vs %x", fn, x, sv, lv)
				}
				continue
			}
			y0 := rng.Float64() * 2
			y1 := rng.Float64() - 0.5
			cs, cl := s.Compensate(ctxS, y0, y1), l.Compensate(ctxL, y0, y1)
			if math.Float64bits(cs) != math.Float64bits(cl) {
				t.Fatalf("%v: Compensate(%x): %x vs %x", fn, x, cs, cl)
			}
		}
	}
}

// TestLoweredZeroAllocs keeps the regular path of the devirtualized scheme
// allocation-free: Reduce and Compensate feed the batch hot loop.
func TestLoweredZeroAllocs(t *testing.T) {
	for _, fn := range bigmath.AllFuncs {
		l := Lower(fn)
		if n := testing.AllocsPerRun(100, func() {
			ctx, ok := l.Reduce(0.7265625)
			if ok {
				_ = l.Compensate(ctx, 1.0, 0.5)
			}
		}); n != 0 {
			t.Fatalf("%v: regular path allocates %v times per run", fn, n)
		}
	}
}
