package campaign

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bigmath"
	"repro/internal/cli"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// One campaign worker: the per-peer loop that walks the manifest, runs
// the sharded generate+verify pipeline for each function, then deals the
// format-sweep units round-robin across the peer set with the shared
// claim/heartbeat protocol. Everything a worker publishes is a
// deterministic artifact, so any subset of peers — including a subset
// that shrinks mid-run when a peer dies — assembles the identical unit
// results; the claims only prevent duplicate work.

// UnitResult is one worker's record of one manifest unit. It is the
// aggregation input for the campaign report: durations and the Computed
// flag are peer-local observations (volatile, never sealed), while
// Checked/Mismatches/Patched decode from the deterministic unit
// artifacts and are identical no matter which peer reports them.
type UnitResult struct {
	Func       string `json:"func"`
	FormatBits int    `json:"format_bits"` // 0 = generate+verify unit
	Checked    uint64 `json:"checked"`
	Mismatches int    `json:"mismatches"`
	Patched    int    `json:"patched"`
	Computed   bool   `json:"computed"` // this peer computed it (vs fetched a peer's artifact)
	DurMS      int64  `json:"dur_ms"`
}

// PeerReport is one worker's full campaign record: every unit it
// observed, plus peer-local throughput totals.
type PeerReport struct {
	Shard         string       `json:"shard"`
	Units         []UnitResult `json:"units"`
	InputsChecked uint64       `json:"inputs_checked"` // over units this peer computed
	UnitsComputed int          `json:"units_computed"`
	Mismatches    int          `json:"mismatches"`
	Patched       int          `json:"patched"`
	DurMS         int64        `json:"dur_ms"`
}

// sweepCodec seals one format-sweep unit's per-mode reports. It reuses
// the verify-shard wire shape but under its own name/version identity, so
// sweep and verify artifacts can never alias.
var sweepCodec = pipeline.Codec[[]verify.Report]{
	Name:    "campaign-sweep",
	Version: 1,
	Encode: func(e *pipeline.Enc, reps []verify.Report) {
		e.Int(len(reps))
		for _, r := range reps {
			e.Int(r.Format.Bits())
			e.Int(r.Format.ExpBits())
			e.Int(int(r.Mode))
			e.U64(r.Checked)
			e.Int(len(r.Mismatches))
			for _, b := range r.Mismatches {
				e.U64(b)
			}
		}
	},
	Decode: func(d *pipeline.Dec) ([]verify.Report, error) {
		n := d.Len()
		reps := make([]verify.Report, 0, n)
		for i := 0; i < n; i++ {
			bits, expBits := d.Int(), d.Int()
			mode := fp.Mode(d.Int())
			checked := d.U64()
			m := d.Len()
			var mm []uint64
			for j := 0; j < m; j++ {
				mm = append(mm, d.U64())
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			f, err := fp.NewFormat(bits, expBits)
			if err != nil {
				return nil, fmt.Errorf("%w: sweep report %d: %v", pipeline.ErrCorrupt, i, err)
			}
			if mode < fp.RoundNearestEven || mode > fp.RoundToOdd {
				return nil, fmt.Errorf("%w: sweep report %d: invalid mode %d", pipeline.ErrCorrupt, i, mode)
			}
			reps = append(reps, verify.Report{Format: f, Mode: mode, Checked: checked, Mismatches: mm})
		}
		return reps, nil
	},
}

// WorkerConfig parameterizes one peer's campaign run.
type WorkerConfig struct {
	Plan  Plan
	Shard gen.Shard
	// Store is the peer's connection to the (usually shared) artifact
	// store. With a RemoteStore the event log — which the Computed flag is
	// derived from — is peer-local; goroutine peers sharing one in-memory
	// Store instance share one log, which only blurs the volatile
	// Computed/InputsChecked attribution, never the sealed unit bytes.
	Store pipeline.Store
	Logf  pipeline.Logf
	// OnUnit, when non-nil, observes every finished unit in completion
	// order — the subprocess worker streams these as JSON lines so the
	// monitor has a liveness signal between functions.
	OnUnit func(UnitResult)
}

// RunWorker executes one peer's share of the campaign and returns its
// report. The walk is deterministic — manifest order — so every peer
// agrees on unit indices, which is what the round-robin deal keys off.
// Durations come from the wall clock and stay out of every sealed
// artifact (the nondetflow contract): they only ever land in the plain
// JSON peer report.
func RunWorker(ctx context.Context, cfg WorkerConfig) (*PeerReport, error) {
	p := cfg.Plan.normalized()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if _, _, err := EnsureManifest(ctx, cfg.Store, p, cfg.Logf); err != nil {
		return nil, err
	}
	rep := &PeerReport{Shard: cfg.Shard.String()}
	start := time.Now()
	formats := p.Formats()
	for _, fn := range p.Funcs {
		fnOpt := p.Options()
		if cfg.Logf != nil {
			name := fn.String()
			fnOpt.Logf = func(format string, args ...interface{}) {
				cfg.Logf("["+name+"] "+format, args...)
			}
		}
		orc := oracle.New(fn)
		fnOpt.Oracle = orc

		// Unit 1: the sharded generate+verify pipeline. Warm when a prior
		// run (or a peer racing ahead) already sealed the verify artifact.
		genStart := time.Now()
		preMiss := countColdVerify(cfg.Store, fn)
		res, patched, err := cli.GenerateVerifiedSharded(ctx, fn, fnOpt, cfg.Store, cfg.Shard)
		if err != nil {
			return rep, fmt.Errorf("campaign: %v: %w", fn, err)
		}
		record(rep, cfg, UnitResult{
			Func:     fn.String(),
			Patched:  patched,
			Computed: cfg.Store == nil || countColdVerify(cfg.Store, fn) > preMiss,
			DurMS:    time.Since(genStart).Milliseconds(),
		})

		// Units 2..: the progressive sweep, one claimable unit per format,
		// dealt round-robin so any peer-count split covers the list. Own
		// units first — claim, compute, publish — then assemble the rest
		// with the poll-for-live-peers fetch.
		impl := verify.NewGenImpl(res)
		compute := func(f fp.Format) func(context.Context) ([]verify.Report, error) {
			return func(context.Context) ([]verify.Report, error) {
				return verify.Exhaustive(impl, orc, f, fp.StandardModes, p.Workers), nil
			}
		}
		var fetch []int
		for i, f := range formats {
			if !cfg.Shard.Owns(i) {
				fetch = append(fetch, i)
				continue
			}
			key := SweepKey(fn, fnOpt, f.Bits())
			swStart := time.Now()
			if !gen.Claim(cfg.Store, key, cfg.Shard, nil) {
				fetch = append(fetch, i) // a peer took it over; assembled below
				continue
			}
			stopHB := gen.StartClaimHeartbeat(ctx, cfg.Store, key, cfg.Shard)
			reps, hit, err := pipeline.Run(ctx, cfg.Store, key, sweepCodec, cfg.Logf, compute(f))
			stopHB()
			if err != nil {
				return rep, fmt.Errorf("campaign: %v sweep F%d,8: %w", fn, f.Bits(), err)
			}
			record(rep, cfg, sweepResult(fn.String(), f, reps, !hit, swStart))
		}
		for _, i := range fetch {
			f := formats[i]
			key := SweepKey(fn, fnOpt, f.Bits())
			swStart := time.Now()
			reps, err := gen.FetchUnit(ctx, cfg.Store, key, cfg.Shard, nil, cfg.Logf, sweepCodec, compute(f))
			if err != nil {
				return rep, fmt.Errorf("campaign: %v sweep F%d,8: %w", fn, f.Bits(), err)
			}
			record(rep, cfg, sweepResult(fn.String(), f, reps, false, swStart))
		}
	}
	rep.DurMS = time.Since(start).Milliseconds()
	return rep, nil
}

// countColdVerify counts this peer's cold (miss) probes of fn's verify
// stage; the delta across one GenerateVerifiedSharded call distinguishes
// "this peer ran the pipeline" from "decoded a sealed verify artifact".
func countColdVerify(st pipeline.Store, fn bigmath.Func) int {
	if st == nil {
		return 0
	}
	n := 0
	for _, ev := range st.Events() {
		if ev.Key.Func == fn.String() && ev.Key.Stage == gen.StageVerify && !ev.Hit {
			n++
		}
	}
	return n
}

// sweepResult folds one sweep unit's reports into a UnitResult.
func sweepResult(fn string, f fp.Format, reps []verify.Report, computed bool, start time.Time) UnitResult {
	ur := UnitResult{
		Func:       fn,
		FormatBits: f.Bits(),
		Computed:   computed,
		DurMS:      time.Since(start).Milliseconds(),
	}
	for _, r := range reps {
		ur.Checked += r.Checked
		ur.Mismatches += len(r.Mismatches)
	}
	return ur
}

// record folds a unit result into the peer report and streams it.
func record(rep *PeerReport, cfg WorkerConfig, ur UnitResult) {
	rep.Units = append(rep.Units, ur)
	rep.Mismatches += ur.Mismatches
	rep.Patched += ur.Patched
	if ur.Computed {
		rep.UnitsComputed++
		rep.InputsChecked += ur.Checked
	}
	if cfg.OnUnit != nil {
		cfg.OnUnit(ur)
	}
}
