// Package campaign plans and drives the paper-scale distributed sweep:
// every requested function generated and exhaustively verified, then the
// progressive claim checked over every format from MinBits up to the
// largest width under all five standard rounding modes — the "2^bits
// inputs × 5 modes, every function" run behind the paper's headline
// correctness table.
//
// The campaign is built out of the same primitives as every other
// distributed workload in this repo: each unit of work is a
// content-addressed artifact in a shared store, claimed with the
// heartbeat protocol of internal/gen, and therefore resumable — killing
// every peer and relaunching the campaign recomputes only the units that
// never sealed. The plan itself is pinned as a manifest artifact so a
// resumed campaign provably sweeps the same unit list, and the aggregate
// report is assembled from the per-peer unit results (never from store
// probes — a unit artifact may have been evicted by the time the
// campaign aggregates, and eviction must never change a report).
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/bigmath"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// MinSweepBits is the default smallest swept format width: the paper's
// progressive libraries serve every FP representation from 10 to 32 bits
// (with the standard 8 exponent bits), so the sweep starts at 10.
const MinSweepBits = 10

// Plan describes one campaign: which functions, which format range, and
// the generation configuration every peer must share. Two peers with
// different plans address disjoint artifacts and silently duplicate work,
// so the driver pins the plan in a manifest artifact and every worker
// re-derives its unit list from the same fingerprint.
type Plan struct {
	// Funcs lists the generated functions, in sweep order.
	Funcs []bigmath.Func
	// Bits is the width of the largest representation (the paper: 32).
	Bits int
	// MinBits is the smallest swept format width (default MinSweepBits).
	MinBits int
	// Levels overrides the generated representation ladder (default: the
	// paper's gen.StandardLevels(Bits)). Tests use small ladders; the
	// paper-scale campaign leaves this empty.
	Levels []fp.Format
	// ProgressiveRO generates the lower levels against round-to-odd
	// intervals, extending the progressive guarantee to all modes.
	ProgressiveRO bool
	// Seed drives all generation randomness.
	Seed int64
	// Workers bounds per-peer worker goroutines. Excluded from the
	// fingerprint: output is bit-identical for every worker count.
	Workers int
}

// normalized returns the plan with defaults applied; fingerprints and
// unit lists are always derived from the normalized form.
func (p Plan) normalized() Plan {
	if p.Bits == 0 {
		p.Bits = gen.DefaultLargestBits
	}
	if p.MinBits == 0 {
		p.MinBits = MinSweepBits
	}
	if len(p.Funcs) == 0 {
		p.Funcs = bigmath.AllFuncs
	}
	return p
}

// Validate rejects plans whose sweep range is malformed before any peer
// publishes an artifact against them.
func (p Plan) Validate() error {
	p = p.normalized()
	if p.MinBits < 4 {
		return fmt.Errorf("campaign: min format width %d below the fp package floor 4", p.MinBits)
	}
	if p.MinBits > p.Bits {
		return fmt.Errorf("campaign: min format width %d exceeds largest width %d", p.MinBits, p.Bits)
	}
	for b := p.MinBits; b <= p.Bits; b++ {
		if _, err := fp.NewFormat(b, 8); err != nil {
			return fmt.Errorf("campaign: swept format F(%d,8): %w", b, err)
		}
	}
	if p.Seed < 0 {
		return fmt.Errorf("campaign: seed %d must be at least 0", p.Seed)
	}
	return nil
}

// Options returns the generation options every peer uses for fn under
// this plan. Logf and Oracle are left nil — per-peer plumbing the callers
// attach themselves.
func (p Plan) Options() gen.Options {
	p = p.normalized()
	levels := p.Levels
	if len(levels) == 0 {
		levels = gen.StandardLevels(p.Bits)
	}
	return gen.Options{
		Levels:        levels,
		ProgressiveRO: p.ProgressiveRO,
		Seed:          p.Seed,
		Workers:       p.Workers,
	}
}

// Formats returns the swept format list F(MinBits,8) .. F(Bits,8), in
// ascending width order — the unit order every peer deals round-robin.
func (p Plan) Formats() []fp.Format {
	p = p.normalized()
	var fs []fp.Format
	for b := p.MinBits; b <= p.Bits; b++ {
		fs = append(fs, fp.MustFormat(b, 8))
	}
	return fs
}

// Fingerprint digests every Plan field that can change which artifacts a
// campaign addresses. Every field must be mentioned — the rlibm-lint
// cachekey analyzer enforces it; Workers is a blank mention because the
// determinism contract makes output worker-count-independent.
func (p Plan) Fingerprint() string {
	p = p.normalized()
	var e pipeline.Enc
	e.Int(len(p.Funcs))
	for _, fn := range p.Funcs {
		e.Str(fn.String())
	}
	e.Int(p.Bits)
	e.Int(p.MinBits)
	e.Int(len(p.Levels))
	for _, l := range p.Levels {
		e.Int(l.Bits())
		e.Int(l.ExpBits())
	}
	e.Bool(p.ProgressiveRO)
	e.I64(p.Seed)
	_ = p.Workers // excluded: output is bit-identical for every worker count
	sum := sha256.Sum256(e.Bytes())
	return hex.EncodeToString(sum[:])
}

// Unit is one entry of the campaign manifest. FormatBits == 0 is the
// generate+verify unit of Func (the staged pipeline through the repair
// pass); FormatBits > 0 is the exhaustive progressive sweep of Func at
// F(FormatBits,8) under all five standard rounding modes.
type Unit struct {
	Func       bigmath.Func
	FormatBits int
}

func (u Unit) String() string {
	if u.FormatBits == 0 {
		return fmt.Sprintf("%v/generate", u.Func)
	}
	return fmt.Sprintf("%v/F%d,8", u.Func, u.FormatBits)
}

// Manifest is the pinned unit list of one campaign. It is sealed as an
// artifact under ManifestKey before any worker starts, so a resumed or
// late-joining peer provably executes the same plan: the manifest's own
// fingerprint is the plan fingerprint, and every unit artifact embeds it.
type Manifest struct {
	Fingerprint string
	Units       []Unit
}

// BuildManifest expands a plan into its full unit list: per function, the
// generate+verify unit followed by one sweep unit per format.
func BuildManifest(p Plan) Manifest {
	p = p.normalized()
	m := Manifest{Fingerprint: p.Fingerprint()}
	for _, fn := range p.Funcs {
		m.Units = append(m.Units, Unit{Func: fn})
		for b := p.MinBits; b <= p.Bits; b++ {
			m.Units = append(m.Units, Unit{Func: fn, FormatBits: b})
		}
	}
	return m
}

// StageManifest and StageSweep name the campaign's artifact stages.
const (
	StageManifest = "campaign-manifest"
	StageSweep    = "campaign-sweep"
)

// ManifestKey addresses the campaign's manifest artifact. The Func
// component is the literal "campaign" — the manifest spans functions.
func ManifestKey(p Plan) pipeline.Key {
	return pipeline.Key{Func: "campaign", Stage: StageManifest, Fingerprint: p.Fingerprint()}
}

// SweepKey addresses one format-sweep work unit: the exhaustive check of
// fn at F(bits,8) under all standard modes, against the result generated
// with opt. The fingerprint extends the options fingerprint (defaults
// applied by Plan.Options) with the swept width, so each format is its
// own claimable, resumable artifact.
func SweepKey(fn bigmath.Func, opt gen.Options, bits int) pipeline.Key {
	return pipeline.Key{
		Func:        fn.String(),
		Stage:       StageSweep,
		Fingerprint: fmt.Sprintf("%s-F%d", opt.Fingerprint(), bits),
	}
}

// manifestCodec seals the manifest. Decode validates that units name real
// functions and plausible widths, so a corrupt manifest surfaces as
// ErrCorrupt instead of a panic deep in a worker.
var manifestCodec = pipeline.Codec[Manifest]{
	Name:    "campaign-manifest",
	Version: 1,
	Encode: func(e *pipeline.Enc, m Manifest) {
		e.Str(m.Fingerprint)
		e.Int(len(m.Units))
		for _, u := range m.Units {
			e.Str(u.Func.String())
			e.Int(u.FormatBits)
		}
	},
	Decode: func(d *pipeline.Dec) (Manifest, error) {
		m := Manifest{Fingerprint: d.Str()}
		n := d.Len()
		for i := 0; i < n; i++ {
			name, bits := d.Str(), d.Int()
			if d.Err() != nil {
				return Manifest{}, d.Err()
			}
			fn, err := bigmath.ParseFunc(name)
			if err != nil {
				return Manifest{}, fmt.Errorf("%w: manifest unit %d: %v", pipeline.ErrCorrupt, i, err)
			}
			if bits < 0 || bits > 64 {
				return Manifest{}, fmt.Errorf("%w: manifest unit %d: format width %d", pipeline.ErrCorrupt, i, bits)
			}
			m.Units = append(m.Units, Unit{Func: fn, FormatBits: bits})
		}
		if m.Fingerprint == "" {
			return Manifest{}, fmt.Errorf("%w: manifest without plan fingerprint", pipeline.ErrCorrupt)
		}
		return m, nil
	},
}

// EnsureManifest publishes the plan's manifest (or decodes the already-
// sealed one) and reports whether the campaign is a resume: a warm
// manifest means a previous campaign ran — or started — this exact plan,
// and every sealed unit artifact it left behind will be reused.
func EnsureManifest(ctx context.Context, st pipeline.Store, p Plan, logf pipeline.Logf) (Manifest, bool, error) {
	built := BuildManifest(p)
	if st == nil {
		return built, false, nil
	}
	m, resumed, err := pipeline.Run(ctx, st, ManifestKey(p), manifestCodec, logf,
		func(context.Context) (Manifest, error) { return built, nil })
	if err != nil {
		return Manifest{}, false, err
	}
	if m.Fingerprint != built.Fingerprint || len(m.Units) != len(built.Units) {
		return Manifest{}, false, fmt.Errorf("campaign: manifest mismatch: store has %d units under fingerprint %.12s, plan builds %d — the store holds a different campaign",
			len(m.Units), m.Fingerprint, len(built.Units))
	}
	return m, resumed, nil
}
