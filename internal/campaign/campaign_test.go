package campaign_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/bigmath"
	"repro/internal/campaign"
	"repro/internal/fp"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// Campaign acceptance tests on a deliberately small plan — one function,
// a two-level F10/F12 ladder, a three-format sweep — so the full
// plan→manifest→workers→aggregate path runs in seconds. The invariants
// are the production ones: any peer split produces the same unit
// artifacts byte for byte as a solo worker, a killed peer's slot resumes
// from the shared store, and a rerun of the same plan is a warm resume.

func testPlan(workers int) campaign.Plan {
	return campaign.Plan{
		Funcs:   []bigmath.Func{bigmath.CosPi},
		Bits:    12,
		MinBits: 10,
		Levels:  []fp.Format{fp.MustFormat(10, 8), fp.MustFormat(12, 8)},
		Seed:    1,
		Workers: workers,
	}
}

// serveStore serves backing on a loopback listener torn down with the
// test, returning the dial address.
func serveStore(t *testing.T, backing pipeline.Store) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := pipeline.Serve(l, backing, nil); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		l.Close()
		<-done
	})
	return l.Addr().String()
}

func dialPeer(t *testing.T, addr string) func(int) (pipeline.Store, error) {
	return func(int) (pipeline.Store, error) {
		return pipeline.DialRemote(addr, 5*time.Second)
	}
}

func TestPlanFingerprintAndManifest(t *testing.T) {
	p := testPlan(1)
	if p.Fingerprint() != p.Fingerprint() {
		t.Fatal("fingerprint is not stable")
	}
	q := p
	q.Seed = 2
	if p.Fingerprint() == q.Fingerprint() {
		t.Error("seed change did not change the plan fingerprint")
	}
	m := campaign.BuildManifest(p)
	// One generate unit plus one sweep unit per format (F10, F11, F12).
	if want := 1 + 3; len(m.Units) != want {
		t.Fatalf("manifest has %d units, want %d: %v", len(m.Units), want, m.Units)
	}
	if m.Fingerprint != p.Fingerprint() {
		t.Error("manifest fingerprint differs from the plan's")
	}

	// Cold publish, then a warm decode that signals resume.
	st := pipeline.NewMemStore()
	got, resumed, err := campaign.EnsureManifest(context.Background(), st, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Error("cold manifest reported resumed")
	}
	got2, resumed2, err := campaign.EnsureManifest(context.Background(), st, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed2 {
		t.Error("warm manifest did not report resumed")
	}
	if len(got.Units) != len(got2.Units) || got2.Fingerprint != m.Fingerprint {
		t.Errorf("warm manifest differs: %v vs %v", got, got2)
	}
}

// TestCampaignTwoPeersMatchesSolo: a 2-peer campaign over a shared
// loopback store must leave the identical sealed artifacts a solo worker
// produces — the verify artifact and every sweep unit, byte for byte —
// and aggregate the same totals.
func TestCampaignTwoPeersMatchesSolo(t *testing.T) {
	plan := testPlan(2)

	// Solo reference worker over its own store.
	soloStore := pipeline.NewMemStore()
	soloRep, err := campaign.RunWorker(context.Background(), campaign.WorkerConfig{
		Plan: plan, Store: soloStore,
	})
	if err != nil {
		t.Fatalf("solo worker: %v", err)
	}

	backing := pipeline.NewMemStore()
	addr := serveStore(t, backing)
	rep, err := campaign.Run(context.Background(), campaign.Config{
		Plan:      plan,
		Peers:     2,
		OpenStore: dialPeer(t, addr),
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	if rep.Units != len(soloRep.Units) {
		t.Errorf("campaign aggregated %d units, solo observed %d", rep.Units, len(soloRep.Units))
	}
	var soloChecked uint64
	for _, u := range soloRep.Units {
		soloChecked += u.Checked
	}
	if rep.InputsChecked != soloChecked {
		t.Errorf("campaign checked %d inputs, solo %d", rep.InputsChecked, soloChecked)
	}
	if rep.Mismatches != soloRep.Mismatches {
		t.Errorf("campaign found %d mismatches, solo %d", rep.Mismatches, soloRep.Mismatches)
	}

	// Byte-identity of every sealed artifact the campaign shares.
	opt := plan.Options()
	fn := plan.Funcs[0]
	vk := gen.VerifyKey(fn, opt)
	soloVerify, ok1 := soloStore.Get(vk, gen.ResultCodec.Name, gen.ResultCodec.Version)
	sharedVerify, ok2 := backing.Get(vk, gen.ResultCodec.Name, gen.ResultCodec.Version)
	if !ok1 || !ok2 {
		t.Fatal("verify artifact missing from a store")
	}
	if !bytes.Equal(soloVerify, sharedVerify) {
		t.Error("shared verify artifact differs from the solo worker's")
	}
	for b := plan.MinBits; b <= plan.Bits; b++ {
		sk := campaign.SweepKey(fn, opt, b)
		solo, ok1 := soloStore.Get(sk, "campaign-sweep", 1)
		shared, ok2 := backing.Get(sk, "campaign-sweep", 1)
		if !ok1 || !ok2 {
			t.Fatalf("sweep unit F%d,8 missing (solo %v, shared %v)", b, ok1, ok2)
		}
		if !bytes.Equal(solo, shared) {
			t.Errorf("sweep unit F%d,8 differs between solo and campaign stores", b)
		}
	}
	if err := backing.Audit(); err != nil {
		t.Errorf("shared store audit: %v", err)
	}
}

// TestCampaignKilledPeerRestarts: peer 1's first incarnation starts with
// a canceled context — it dies on its first cold unit. The driver must
// restart the slot, and the restarted worker resumes from the shared
// store to a complete, correct campaign.
func TestCampaignKilledPeerRestarts(t *testing.T) {
	plan := testPlan(2)
	backing := pipeline.NewMemStore()
	addr := serveStore(t, backing)

	rep, err := campaign.Run(context.Background(), campaign.Config{
		Plan:        plan,
		Peers:       2,
		MaxRestarts: 1,
		OpenStore:   dialPeer(t, addr),
		PeerContext: func(ctx context.Context, peer int) context.Context {
			if peer != 1 {
				return ctx
			}
			dead, cancel := context.WithCancel(ctx)
			cancel()
			return dead
		},
	})
	if err != nil {
		t.Fatalf("campaign with killed peer: %v", err)
	}
	if got := rep.Peers[1].Restarts; got != 1 {
		t.Errorf("peer 1 restarted %d times, want 1", got)
	}
	if rep.Peers[1].Err != "" {
		t.Errorf("peer 1 ended in error after restart: %s", rep.Peers[1].Err)
	}
	wantUnits := len(campaign.BuildManifest(plan).Units)
	if rep.Units != wantUnits {
		t.Errorf("campaign aggregated %d units, want %d", rep.Units, wantUnits)
	}
	// The sealed verify artifact equals an untouched solo run's — the
	// kill changed scheduling, never bytes.
	soloStore := pipeline.NewMemStore()
	if _, err := campaign.RunWorker(context.Background(), campaign.WorkerConfig{Plan: plan, Store: soloStore}); err != nil {
		t.Fatalf("solo worker: %v", err)
	}
	vk := gen.VerifyKey(plan.Funcs[0], plan.Options())
	solo, ok1 := soloStore.Get(vk, gen.ResultCodec.Name, gen.ResultCodec.Version)
	shared, ok2 := backing.Get(vk, gen.ResultCodec.Name, gen.ResultCodec.Version)
	if !ok1 || !ok2 || !bytes.Equal(solo, shared) {
		t.Error("verify artifact after the kill differs from a solo run's")
	}
}

// TestCampaignResume: rerunning the identical plan against the same store
// is a warm resume — the manifest reports it, every unit decodes from its
// sealed artifact, and no unit is recomputed.
func TestCampaignResume(t *testing.T) {
	plan := testPlan(2)
	shared := pipeline.NewMemStore()
	open := func(int) (pipeline.Store, error) { return shared, nil }

	first, err := campaign.Run(context.Background(), campaign.Config{Plan: plan, Peers: 1, OpenStore: open})
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	if first.Resumed {
		t.Error("first campaign reported resumed")
	}
	second, err := campaign.Run(context.Background(), campaign.Config{Plan: plan, Peers: 1, OpenStore: open})
	if err != nil {
		t.Fatalf("second campaign: %v", err)
	}
	if !second.Resumed {
		t.Error("second campaign did not report resumed")
	}
	if second.InputsChecked != first.InputsChecked || second.Units != first.Units {
		t.Errorf("resumed campaign totals differ: %d/%d units, %d/%d inputs",
			second.Units, first.Units, second.InputsChecked, first.InputsChecked)
	}
	if n := second.Peers[0].UnitsComputed; n != 0 {
		t.Errorf("resumed campaign recomputed %d units, want 0", n)
	}
}

// TestCampaignEvictedStore: the campaign against an eviction-bounded
// store still produces artifacts byte-identical to an un-evicted solo
// run — an evicted unit is recomputed to the same bytes on demand.
func TestCampaignEvictedStore(t *testing.T) {
	plan := testPlan(2)

	soloStore := pipeline.NewMemStore()
	if _, err := campaign.RunWorker(context.Background(), campaign.WorkerConfig{Plan: plan, Store: soloStore}); err != nil {
		t.Fatalf("solo worker: %v", err)
	}

	evicting := pipeline.NewEvictingStore(pipeline.NewMemStore(), 2<<10)
	addr := serveStore(t, evicting)
	rep, err := campaign.Run(context.Background(), campaign.Config{
		Plan:      plan,
		Peers:     2,
		OpenStore: dialPeer(t, addr),
	})
	if err != nil {
		t.Fatalf("campaign over evicting store: %v", err)
	}
	if st := evicting.Stats(); st.Evictions == 0 {
		t.Error("the 2KiB budget never evicted; the scenario did not exercise eviction")
	}
	var soloChecked uint64
	soloRep, err := campaign.RunWorker(context.Background(), campaign.WorkerConfig{Plan: plan, Store: soloStore})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range soloRep.Units {
		soloChecked += u.Checked
	}
	if rep.InputsChecked != soloChecked || rep.Mismatches != soloRep.Mismatches {
		t.Errorf("evicted campaign totals differ from solo: %d/%d inputs, %d/%d mismatches",
			rep.InputsChecked, soloChecked, rep.Mismatches, soloRep.Mismatches)
	}
	// Whatever survives in the evicted store matches the solo bytes.
	fn, opt := plan.Funcs[0], plan.Options()
	for b := plan.MinBits; b <= plan.Bits; b++ {
		sk := campaign.SweepKey(fn, opt, b)
		shared, ok := evicting.Get(sk, "campaign-sweep", 1)
		if !ok {
			continue // evicted — that's the point
		}
		solo, ok := soloStore.Get(sk, "campaign-sweep", 1)
		if !ok || !bytes.Equal(solo, shared) {
			t.Errorf("surviving sweep unit F%d,8 differs from the un-evicted solo artifact", b)
		}
	}
}
