package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/pipeline"
)

// The campaign driver: launches N peers against one shared store,
// monitors them, restarts the ones that die, and aggregates their peer
// reports into the campaign report and BENCH_campaign.json. Peers are
// expendable by design — every unit is a deterministic artifact and the
// claim protocol reassigns stalled units — so the driver's failure model
// is simply "rerun the dead peer's worker loop; it skips everything that
// already sealed and computes the rest".
//
// Both reports are plain JSON files, never store artifacts: they carry
// wall-clock durations and per-peer throughput, which are volatile
// observations the nondetflow contract keeps out of sealed frames.

// Config parameterizes a driver run.
type Config struct {
	Plan  Plan
	Peers int
	// OpenStore opens peer i's store connection. Each peer gets its own
	// connection (its own event log, its own socket) so a dying peer
	// cannot poison a sibling's transport; the driver closes whatever
	// CloseStore knows how to close.
	OpenStore func(peer int) (pipeline.Store, error)
	// PeerContext, when non-nil, derives peer i's context from the run
	// context — the hook kill-a-peer tests use to cancel one peer
	// mid-campaign. A restarted peer gets the run context directly: the
	// kill applies to the first incarnation only.
	PeerContext func(ctx context.Context, peer int) context.Context
	// MaxRestarts bounds how many times each peer is relaunched after an
	// error (0: die on first failure). Context cancellation of the whole
	// run is never retried.
	MaxRestarts int
	Logf        pipeline.Logf
}

// PeerRun is one peer's lifecycle summary: its final report (from the
// last incarnation) and how many times the driver had to restart it.
type PeerRun struct {
	Peer          int    `json:"peer"`
	Shard         string `json:"shard"`
	Restarts      int    `json:"restarts"`
	InputsChecked uint64 `json:"inputs_checked"`
	UnitsComputed int    `json:"units_computed"`
	DurMS         int64  `json:"dur_ms"`
	// InputsPerSec is the peer's computed-inputs throughput over its
	// final incarnation's wall clock.
	InputsPerSec float64 `json:"inputs_per_sec"`
	// Err records the terminal error of a peer that exhausted its
	// restarts; empty for a peer that finished.
	Err string `json:"err,omitempty"`
}

// Report is the aggregated campaign outcome. Checked/Mismatches/Patched
// are unit-level facts deduplicated across peers (every peer observes
// every unit; the values decode from deterministic artifacts, so any
// peer's observation of a unit is authoritative); the peer table holds
// the volatile throughput split.
type Report struct {
	Schema        int       `json:"schema"`
	Funcs         []string  `json:"funcs"`
	Bits          int       `json:"bits"`
	MinBits       int       `json:"min_bits"`
	Modes         int       `json:"modes"`
	ProgressiveRO bool      `json:"progressive_ro"`
	Seed          int64     `json:"seed"`
	Fingerprint   string    `json:"fingerprint"`
	Resumed       bool      `json:"resumed"`
	Units         int       `json:"units"`
	InputsChecked uint64    `json:"inputs_checked"`
	Mismatches    int       `json:"mismatches"`
	Patched       int       `json:"patched"`
	WallClockMS   int64     `json:"wall_clock_ms"`
	Peers         []PeerRun `json:"peers"`
}

// Correct reports whether the sweep found zero mismatches — the paper's
// headline claim for the swept function/format/mode cube.
func (r *Report) Correct() bool { return r.Mismatches == 0 }

// Run drives a full in-process campaign: Peers worker goroutines, each
// with its own store connection from OpenStore, sharded k/Peers. It
// returns the aggregated report; a peer that exhausts MaxRestarts is
// recorded in the report (Err set) without sinking the campaign, as long
// as at least one peer finishes — the survivors compute the dead peer's
// units through the claim-stall reclaim path. Run fails only when every
// peer fails or the run context is canceled.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	p := cfg.Plan.normalized()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Peers < 1 {
		cfg.Peers = 1
	}
	if cfg.OpenStore == nil {
		return nil, fmt.Errorf("campaign: Config.OpenStore is nil")
	}

	// Pin the manifest once before the fan-out, and learn whether this is
	// a resume, through a dedicated connection so a peer's event log
	// stays purely its own.
	st0, err := cfg.OpenStore(0)
	if err != nil {
		return nil, err
	}
	_, resumed, err := EnsureManifest(ctx, st0, p, cfg.Logf)
	closeStore(st0)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	runs := make([]PeerRun, cfg.Peers)
	reports := make([]*PeerReport, cfg.Peers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Peers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], runs[i] = runPeer(ctx, cfg, p, i)
		}()
	}
	wg.Wait()

	rep := Aggregate(p, resumed, reports, runs)
	rep.WallClockMS = time.Since(start).Milliseconds()
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	finished := 0
	for _, pr := range runs {
		if pr.Err == "" {
			finished++
		}
	}
	if finished == 0 {
		return rep, fmt.Errorf("campaign: all %d peers failed; first: %s", cfg.Peers, runs[0].Err)
	}
	return rep, nil
}

// runPeer runs one peer slot to completion, restarting up to
// cfg.MaxRestarts times. Each incarnation gets a fresh store connection;
// the first also passes through the PeerContext kill hook.
func runPeer(ctx context.Context, cfg Config, p Plan, peer int) (*PeerReport, PeerRun) {
	shard := shardOf(peer, cfg.Peers)
	pr := PeerRun{Peer: peer, Shard: shard.String()}
	for attempt := 0; ; attempt++ {
		pctx := ctx
		if attempt == 0 && cfg.PeerContext != nil {
			pctx = cfg.PeerContext(ctx, peer)
		}
		st, err := cfg.OpenStore(peer)
		if err == nil {
			var rep *PeerReport
			rep, err = RunWorker(pctx, WorkerConfig{
				Plan:  p,
				Shard: shard,
				Store: st,
				Logf:  peerLogf(cfg.Logf, peer),
			})
			closeStore(st)
			if err == nil {
				pr.InputsChecked = rep.InputsChecked
				pr.UnitsComputed = rep.UnitsComputed
				pr.DurMS = rep.DurMS
				if rep.DurMS > 0 {
					pr.InputsPerSec = float64(rep.InputsChecked) / (float64(rep.DurMS) / 1000)
				}
				return rep, pr
			}
		}
		if ctx.Err() != nil || attempt >= cfg.MaxRestarts {
			pr.Err = err.Error()
			return nil, pr
		}
		pr.Restarts++
		if cfg.Logf != nil {
			cfg.Logf("campaign: peer %d died (%v); restart %d/%d", peer, err, pr.Restarts, cfg.MaxRestarts)
		}
	}
}

// Aggregate merges the surviving peer reports. Unit facts are
// deduplicated by (func, format) — artifacts are deterministic, so the
// first observation of each unit is as good as any — while throughput
// stays per-peer. Exported for the subprocess monitor in
// cmd/rlibm-campaign, which collects PeerReports over worker stdout
// instead of function returns.
func Aggregate(p Plan, resumed bool, reports []*PeerReport, runs []PeerRun) *Report {
	rep := &Report{
		Schema:        1,
		Bits:          p.Bits,
		MinBits:       p.MinBits,
		Modes:         5,
		ProgressiveRO: p.ProgressiveRO,
		Seed:          p.Seed,
		Fingerprint:   p.Fingerprint(),
		Resumed:       resumed,
		Peers:         runs,
	}
	for _, fn := range p.Funcs {
		rep.Funcs = append(rep.Funcs, fn.String())
	}
	seen := map[string]bool{}
	for _, prep := range reports {
		if prep == nil {
			continue
		}
		for _, u := range prep.Units {
			id := fmt.Sprintf("%s/%d", u.Func, u.FormatBits)
			if seen[id] {
				continue
			}
			seen[id] = true
			rep.Units++
			rep.InputsChecked += u.Checked
			rep.Mismatches += u.Mismatches
			rep.Patched += u.Patched
		}
	}
	return rep
}

// WriteFile writes the campaign report as indented JSON.
func (r *Report) WriteFile(path string) error {
	return writeJSON(path, r)
}

// Bench is the BENCH_campaign.json shape, following the repo's bench-file
// convention: a benchmark identity block plus the measured numbers.
type Bench struct {
	Benchmark string  `json:"benchmark"`
	Command   string  `json:"command"`
	Config    any     `json:"config"`
	Result    *Report `json:"result"` // includes the per-peer throughput table
}

// WriteBench writes BENCH_campaign.json for a finished campaign.
func WriteBench(path, command string, rep *Report) error {
	b := Bench{
		Benchmark: "distributed campaign: sharded generate+verify plus the progressive format sweep, per-peer throughput over a shared store",
		Command:   command,
		Config: map[string]any{
			"funcs":          rep.Funcs,
			"bits":           rep.Bits,
			"min_bits":       rep.MinBits,
			"modes":          rep.Modes,
			"progressive_ro": rep.ProgressiveRO,
			"seed":           rep.Seed,
			"peers":          len(rep.Peers),
		},
		Result: rep,
	}
	return writeJSON(path, b)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// shardOf maps a peer slot to its shard of the peer set.
func shardOf(peer, peers int) gen.Shard { return gen.Shard{K: peer, N: peers} }

// peerLogf prefixes a shared logger with the peer slot.
func peerLogf(logf pipeline.Logf, peer int) pipeline.Logf {
	if logf == nil {
		return nil
	}
	return func(format string, args ...interface{}) {
		logf(fmt.Sprintf("peer %d: %s", peer, format), args...)
	}
}

// closeStore releases whatever the backend holds open.
func closeStore(st pipeline.Store) {
	if rs, ok := st.(*pipeline.RemoteStore); ok {
		rs.Close()
	}
}
