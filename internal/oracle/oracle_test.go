package oracle

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bigmath"
	"repro/internal/fp"
)

// Exhaustive cross-validation against the unaccelerated bigmath oracle on a
// small format with the full exponent range: every accelerated path must
// agree bit-for-bit with the reference on every input.
func TestResultMatchesReferenceExhaustive(t *testing.T) {
	in := fp.MustFormat(12, 8)
	out := in.Extend(2)
	modes := []fp.Mode{fp.RoundNearestEven, fp.RoundToOdd, fp.RoundTowardPositive}
	for _, fn := range bigmath.AllFuncs {
		o := New(fn)
		for b := uint64(0); b < in.NumValues(); b++ {
			x := in.Decode(b)
			for _, mode := range modes {
				got := o.Result(x, out, mode)
				want := bigmath.CorrectlyRounded(fn, x, out, mode)
				if got != want {
					t.Fatalf("%v(%g) [in bits %#x] mode %v: got %#x want %#x",
						fn, x, b, mode, got, want)
				}
			}
		}
		s := o.Stats()
		if s.Total() != in.NumValues()*uint64(len(modes)) {
			t.Errorf("%v: stats total %d != queries %d", fn, s.Total(), in.NumValues()*uint64(len(modes)))
		}
	}
}

// Random cross-validation on the paper's actual formats.
func TestResultMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	formats := []fp.Format{fp.Bfloat16, fp.TensorFloat32}
	for _, fn := range bigmath.AllFuncs {
		o := New(fn)
		for _, in := range formats {
			out := in.Extend(2)
			for i := 0; i < 400; i++ {
				b := uint64(rng.Int63()) & (in.NumValues() - 1)
				x := in.Decode(b)
				mode := fp.AllModes[rng.Intn(len(fp.AllModes))]
				got := o.Result(x, out, mode)
				want := bigmath.CorrectlyRounded(fn, x, out, mode)
				if got != want {
					t.Fatalf("%v(%g) %v mode %v: got %#x want %#x", fn, x, in, mode, got, want)
				}
			}
		}
	}
}

// The shortcut paths must actually fire on their target regions.
func TestAccelerationPathsFire(t *testing.T) {
	out := fp.MustFormat(27, 8)

	o := New(bigmath.Exp)
	o.Result(math.Ldexp(1, -40), out, fp.RoundToOdd) // anchor
	o.Result(500, out, fp.RoundNearestEven)          // overflow clamp
	o.Result(-500, out, fp.RoundNearestEven)         // underflow clamp
	o.Result(0, out, fp.RoundNearestEven)            // exact
	o.Result(math.Inf(1), out, fp.RoundNearestEven)  // special
	o.Result(1.5, out, fp.RoundNearestEven)          // full eval
	s := o.Stats()
	if s.Anchors != 1 || s.Clamps != 2 || s.Exacts != 1 || s.Specials != 1 || s.FullEvals != 1 {
		t.Errorf("exp stats: %+v", s)
	}

	ol := New(bigmath.Ln)
	ol.Result(1.5, out, fp.RoundToOdd)
	ol.Result(3.0, out, fp.RoundToOdd) // same mantissa as 1.5: cache hit
	if s := ol.Stats(); s.Shared != 2 || ol.logCache.size() != 1 {
		t.Errorf("ln stats: %+v cache=%d", s, ol.logCache.size())
	}

	ot := New(bigmath.SinPi)
	ot.Result(0.3125, out, fp.RoundToOdd)
	ot.Result(2.3125, out, fp.RoundToOdd)  // binary-exact: reduces to same z
	ot.Result(-0.3125, out, fp.RoundToOdd) // odd symmetry, same cache entry
	if s := ot.Stats(); s.Shared != 3 || ot.trigCache.size() != 1 {
		t.Errorf("sinpi stats: %+v cache=%d", s, ot.trigCache.size())
	}
}

// Anchor shortcut edge: results adjacent to 1 must respect every mode,
// including round-to-odd parity on both sides of 1.
func TestJustAside(t *testing.T) {
	out := fp.Bfloat16
	one := out.FromFloat64(1, fp.RoundNearestEven)
	up, down := out.NextUp(one), out.NextDown(one)

	o := New(bigmath.Exp)
	tiny := math.Ldexp(1, -30)
	cases := []struct {
		x    float64
		mode fp.Mode
		want uint64
	}{
		{tiny, fp.RoundNearestEven, one},
		{tiny, fp.RoundTowardZero, one},
		{tiny, fp.RoundTowardPositive, up},
		{tiny, fp.RoundTowardNegative, one},
		{tiny, fp.RoundToOdd, up}, // 1.0 even, next odd
		{-tiny, fp.RoundNearestEven, one},
		{-tiny, fp.RoundTowardZero, down},
		{-tiny, fp.RoundTowardPositive, one},
		{-tiny, fp.RoundTowardNegative, down},
		{-tiny, fp.RoundToOdd, down}, // below 1: mantissa all ones, odd
	}
	for _, c := range cases {
		if got := o.Result(c.x, out, c.mode); got != c.want {
			t.Errorf("exp(%g) %v: got %#x want %#x", c.x, c.mode, got, c.want)
		}
		// Must agree with the reference too.
		if want := bigmath.CorrectlyRounded(bigmath.Exp, c.x, out, c.mode); want != c.want {
			t.Errorf("reference disagrees for exp(%g) %v: %#x vs %#x", c.x, c.mode, want, c.want)
		}
	}
}

// sinh's anchor is the input itself: exercise it near the subnormal floor
// where the neighbour arithmetic touches zero.
func TestSinhAnchorSubnormals(t *testing.T) {
	out := fp.Bfloat16
	x := out.MinSubnormalValue()
	o := New(bigmath.Sinh)
	for _, mode := range fp.AllModes {
		got := o.Result(x, out, mode)
		want := bigmath.CorrectlyRounded(bigmath.Sinh, x, out, mode)
		if got != want {
			t.Errorf("sinh(minSub) %v: got %#x want %#x", mode, got, want)
		}
	}
	if o.Stats().Anchors == 0 {
		t.Error("anchor path did not fire for sinh(minSub)")
	}
}

// Concurrent queries against one shared oracle: under -race this covers the
// striped caches and the atomic stats counters; in any mode it checks that
// concurrent answers match the serial reference and that no query is lost
// from the counters.
func TestConcurrentResultRaceFree(t *testing.T) {
	in := fp.MustFormat(11, 8)
	out := in.Extend(2)
	for _, fn := range []bigmath.Func{bigmath.Ln, bigmath.SinPi, bigmath.Exp} {
		o := New(fn)
		const workers = 4
		nvals := in.NumValues()
		got := make([]uint64, nvals)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for b := uint64(w); b < nvals; b += workers {
					got[b] = o.Result(in.Decode(b), out, fp.RoundToOdd)
				}
			}(w)
		}
		wg.Wait()
		ref := New(fn)
		for b := uint64(0); b < nvals; b++ {
			if want := ref.Result(in.Decode(b), out, fp.RoundToOdd); got[b] != want {
				t.Fatalf("%v: concurrent result for bits %#x = %#x, serial %#x", fn, b, got[b], want)
			}
		}
		if s := o.Stats(); s.Total() != nvals {
			t.Errorf("%v: stats total %d != %d queries", fn, s.Total(), nvals)
		}
	}
}

func BenchmarkOracleResult(b *testing.B) {
	out := fp.MustFormat(27, 8)
	benches := []struct {
		name string
		fn   bigmath.Func
		gen  func(*rand.Rand) float64
	}{
		{"ln-shared", bigmath.Ln, func(r *rand.Rand) float64 {
			return math.Ldexp(1+r.Float64(), r.Intn(200)-100)
		}},
		{"exp-core", bigmath.Exp, func(r *rand.Rand) float64 { return r.Float64()*170 - 85 }},
		{"sinpi-shared", bigmath.SinPi, func(r *rand.Rand) float64 { return r.Float64() * 4 }},
	}
	for _, bench := range benches {
		b.Run(bench.name, func(b *testing.B) {
			o := New(bench.fn)
			rng := rand.New(rand.NewSource(31))
			for i := 0; i < b.N; i++ {
				o.Result(bench.gen(rng), out, fp.RoundToOdd)
			}
		})
	}
}
