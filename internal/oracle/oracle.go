// Package oracle provides a fast correctly-rounding oracle for the ten
// elementary functions, layered on the arbitrary-precision bigmath package.
//
// RLIBM-Prog computes the oracle result of f(x) for every input of every
// representation of interest — hundreds of millions of MPFR calls in the
// paper's setting. The same enumeration in pure Go needs structural
// accelerations to stay laptop-feasible on one core; each is exact, not
// approximate:
//
//   - identity sharing: log(m·2^e) splits into a per-mantissa series value
//     (cached) plus an exact e·constant term; sinπ/cosπ reduce exactly to a
//     small set of z = |x| mod 2 values (cached);
//   - range clamps: exponential-family results beyond the target's finite
//     range round identically to a saturated proxy value;
//   - anchor shortcuts: where |f(x) − a| is provably below half an output
//     ulp of a representable anchor a (e^x near 1, sinh x near x, cosh x
//     near 1), the rounded result is decided directly from the direction of
//     the residual.
//
// Everything else falls through to the Ziv loop in bigmath.
//
// # Concurrency
//
// An Oracle is safe for concurrent use by multiple goroutines: the sharded
// enumeration and verification pipelines issue Result queries from every
// worker against one shared instance. The identity-sharing caches are
// lock-striped maps of immutable *big.Float values (two workers racing on
// the same key may both compute it; the values are deterministic, so either
// insertion is correct), and the Stats path counters are maintained with
// sync/atomic. Stats() taken while queries are in flight returns a
// consistent-enough snapshot for reporting; quiesce all workers first when
// an exact total is required.
package oracle

import (
	"math"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/bigmath"
	"repro/internal/fault"
	"repro/internal/fp"
	"repro/internal/obs"
)

// cachePrec is the precision of cached per-mantissa / per-reduced-argument
// series values. The error of a cached value is below 2^-(cachePrec-28),
// leaving a huge margin over the ≤ 36-bit formats this project targets.
const cachePrec = 160

// Stats counts which path answered each query; the generation harness
// reports them.
type Stats struct {
	Specials  uint64 // NaN/Inf/zero/domain-error semantics
	Exacts    uint64 // number-theoretically exact results
	Clamps    uint64 // overflow/underflow range clamps
	Anchors   uint64 // anchor shortcuts (result adjacent to a known value)
	Shared    uint64 // identity-sharing cache hits
	FullEvals uint64 // full Ziv evaluations
	Ambiguous uint64 // shared-path answers that had to escalate to Ziv
}

// Total returns the total number of queries answered.
func (s Stats) Total() uint64 {
	return s.Specials + s.Exacts + s.Clamps + s.Anchors + s.Shared + s.FullEvals
}

// Sub returns the counter-wise difference s − t. Taking two snapshots
// around a phase and subtracting yields that phase's query profile; the CLI
// uses it to attribute oracle work to the function being generated.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Specials:  s.Specials - t.Specials,
		Exacts:    s.Exacts - t.Exacts,
		Clamps:    s.Clamps - t.Clamps,
		Anchors:   s.Anchors - t.Anchors,
		Shared:    s.Shared - t.Shared,
		FullEvals: s.FullEvals - t.FullEvals,
		Ambiguous: s.Ambiguous - t.Ambiguous,
	}
}

// RecordTo writes the snapshot onto sp under the oracle.* counter taxonomy:
// queries (total answered), cache_hits (identity sharing), ziv_escalations
// (ambiguous shared answers), full_evals, and shortcuts (specials + exacts
// + clamps + anchors). Nil-safe like every obs write.
func (s Stats) RecordTo(sp *obs.Span) {
	sp.Add(obs.CtrOracleQueries, int64(s.Total()))
	sp.Add(obs.CtrOracleCacheHits, int64(s.Shared))
	sp.Add(obs.CtrOracleZivEscalations, int64(s.Ambiguous))
	sp.Add(obs.CtrOracleFullEvals, int64(s.FullEvals))
	sp.Add(obs.CtrOracleShortcuts, int64(s.Specials+s.Exacts+s.Clamps+s.Anchors))
}

// counters is the internal race-free representation of Stats.
type counters struct {
	specials  atomic.Uint64
	exacts    atomic.Uint64
	clamps    atomic.Uint64
	anchors   atomic.Uint64
	shared    atomic.Uint64
	fullEvals atomic.Uint64
	ambiguous atomic.Uint64
}

// cacheStripes is the stripe count of the shared value caches; a power of
// two so the stripe index is a shift-and-mask.
const cacheStripes = 64

// bigCache is a lock-striped map from a 64-bit key to an immutable
// *big.Float, safe for concurrent use by the enumeration workers.
type bigCache struct {
	stripes [cacheStripes]struct {
		mu sync.Mutex
		m  map[uint64]*big.Float
	}
}

func newBigCache() *bigCache {
	c := &bigCache{}
	for i := range c.stripes {
		c.stripes[i].m = make(map[uint64]*big.Float)
	}
	return c
}

func (c *bigCache) stripe(key uint64) *struct {
	mu sync.Mutex
	m  map[uint64]*big.Float
} {
	// Fibonacci hashing spreads the mantissa-bit keys (whose low bits are
	// highly structured) across the stripes.
	return &c.stripes[(key*0x9e3779b97f4a7c15)>>(64-6)&(cacheStripes-1)]
}

// get returns the cached value for key, computing and inserting it on a
// miss. compute runs outside the stripe lock, so two goroutines racing on
// the same key may both compute it; the first insertion wins and the
// loser's identical value is discarded.
func (c *bigCache) get(key uint64, compute func() *big.Float) *big.Float {
	s := c.stripe(key)
	s.mu.Lock()
	if v, ok := s.m[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := compute()
	s.mu.Lock()
	if w, ok := s.m[key]; ok {
		v = w
	} else {
		s.m[key] = v
	}
	s.mu.Unlock()
	return v
}

// size returns the number of cached values across all stripes.
func (c *bigCache) size() int {
	n := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Oracle answers correctly-rounded-result queries for one elementary
// function. It is safe for concurrent use; see the package comment for the
// concurrency contract.
type Oracle struct {
	fn     bigmath.Func
	stats  counters
	faults *fault.Plan

	// logCache maps the frexp mantissa bits of x to f(m) at cachePrec,
	// where m ∈ [0.5, 1); used by ln/log2/log10.
	logCache *bigCache
	// trigCache maps the bits of the exact reduction z = |x| mod 2 to f(z)
	// at cachePrec; used by sinpi/cospi.
	trigCache *bigCache
}

// New returns an oracle for fn.
func New(fn bigmath.Func) *Oracle {
	o := &Oracle{fn: fn}
	switch fn {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		o.logCache = newBigCache()
	case bigmath.SinPi, bigmath.CosPi:
		o.trigCache = newBigCache()
	}
	return o
}

// Func returns the function this oracle answers for.
func (o *Oracle) Func() bigmath.Func { return o.fn }

// SetFaults installs a fault-injection plan probed on every Result query
// (site oracle.ziv simulates Ziv-loop precision exhaustion). A nil plan —
// the default — disables injection. Set before sharing the oracle with
// worker goroutines.
func (o *Oracle) SetFaults(p *fault.Plan) { o.faults = p }

// Stats returns a snapshot of the path counters.
func (o *Oracle) Stats() Stats {
	return Stats{
		Specials:  o.stats.specials.Load(),
		Exacts:    o.stats.exacts.Load(),
		Clamps:    o.stats.clamps.Load(),
		Anchors:   o.stats.anchors.Load(),
		Shared:    o.stats.shared.Load(),
		FullEvals: o.stats.fullEvals.Load(),
		Ambiguous: o.stats.ambiguous.Load(),
	}
}

// Result returns the bits of fn(x) correctly rounded into out under mode.
// An unanswerable query — the Ziv loop exhausting its precision budget,
// real or injected — panics with a typed *fault.Error; the worker pool
// recovers it and reports it with job context.
func (o *Oracle) Result(x float64, out fp.Format, mode fp.Mode) uint64 {
	if o.faults.Should(fault.SiteOracleZiv) {
		panic(fault.New(fault.CodeOracleExhausted, "enumerate", "ziv",
			fault.Injected(fault.SiteOracleZiv)).WithFunc(o.fn.String()))
	}
	if bits, ok := bigmath.SpecialBits(o.fn, x, out); ok {
		o.stats.specials.Add(1)
		return bits
	}
	if v, ok := bigmath.ExactValue(o.fn, x); ok {
		o.stats.exacts.Add(1)
		return out.FromBig(v, mode)
	}
	if bits, ok := o.rangeClamp(x, out, mode); ok {
		o.stats.clamps.Add(1)
		return bits
	}
	if bits, ok := o.anchorShortcut(x, out, mode); ok {
		o.stats.anchors.Add(1)
		return bits
	}
	switch o.fn {
	case bigmath.Ln, bigmath.Log2, bigmath.Log10:
		return o.logShared(x, out, mode)
	case bigmath.SinPi, bigmath.CosPi:
		return o.trigShared(x, out, mode)
	}
	o.stats.fullEvals.Add(1)
	return out.FromBig(bigmath.EvalUnambiguous(o.fn, x, out, mode), mode)
}

// rangeClamp answers exponential-family queries whose result magnitude is
// certainly beyond the finite range of out (or strictly inside the
// underflow gap), using saturated proxies that round identically in every
// mode.
func (o *Oracle) rangeClamp(x float64, out fp.Format, mode fp.Mode) (uint64, bool) {
	var t float64 // approximate log2 |result|
	switch o.fn {
	case bigmath.Exp:
		t = x * math.Log2E
	case bigmath.Exp2:
		t = x
	case bigmath.Exp10:
		t = x * math.Log2(10)
	case bigmath.Sinh, bigmath.Cosh:
		t = math.Abs(x)*math.Log2E - 1
		if math.Abs(x) < 4 {
			return 0, false
		}
	default:
		return 0, false
	}
	over := float64(out.EMax() + 2)
	under := float64(out.EMin() - out.MantBits() - 2)
	switch {
	case t > over:
		proxy := math.MaxFloat64
		if o.fn == bigmath.Sinh && x < 0 {
			proxy = -proxy
		}
		return out.FromFloat64(proxy, mode), true
	case t < under && o.fn != bigmath.Sinh && o.fn != bigmath.Cosh:
		// 0 < result < minSubnormal/4: a positive sticky-only quantity.
		return out.FromFloat64(math.SmallestNonzeroFloat64, mode), true
	}
	return 0, false
}

// anchorShortcut answers queries where f(x) = a + δ with a representable in
// out and 0 < |δ| < half the distance to a's neighbour, so the rounded
// result is a or the adjacent value depending only on mode and parity.
func (o *Oracle) anchorShortcut(x float64, out fp.Format, mode fp.Mode) (uint64, bool) {
	p := out.MantBits()
	switch o.fn {
	case bigmath.Exp, bigmath.Exp2, bigmath.Exp10:
		// |e^(cx) − 1| ≤ 2.31|x|·1.01 < half ulp around 1 when
		// |x| ≤ 2^-(p+4). x ≠ 0 here (exact case).
		if math.Abs(x) <= math.Ldexp(1, -(p+4)) {
			return justAside(out, 1, x > 0, mode), true
		}
	case bigmath.Sinh:
		// sinh x − x = x³/6 (+h.o.t.): below half ulp(x) when
		// |x| ≤ 2^-((p+6)/2). The anchor x must itself be representable.
		if math.Abs(x) <= math.Ldexp(1, -(p+6)/2-1) && out.Contains(x) {
			return justAside(out, x, x > 0, mode), true
		}
	case bigmath.Cosh:
		// cosh x − 1 = x²/2 (+h.o.t.).
		if math.Abs(x) <= math.Ldexp(1, -(p+6)/2-1) {
			return justAside(out, 1, true, mode), true
		}
	}
	return 0, false
}

// justAside returns the rounding of anchor+δ (positiveDelta) or anchor−δ,
// for an anchor exactly representable in out and 0 < δ < half the gap to
// the adjacent value in that direction.
func justAside(out fp.Format, anchor float64, positiveDelta bool, mode fp.Mode) uint64 {
	a := out.FromFloat64(anchor, fp.RoundTowardZero)
	var lo, hi uint64
	if positiveDelta {
		lo, hi = a, out.NextUp(a)
	} else {
		lo, hi = out.NextDown(a), a
	}
	switch mode {
	case fp.RoundNearestEven, fp.RoundNearestAway:
		return a
	case fp.RoundTowardPositive:
		return hi
	case fp.RoundTowardNegative:
		return lo
	case fp.RoundTowardZero:
		if anchor > 0 {
			return lo
		}
		return hi
	case fp.RoundToOdd:
		if out.OddMantissa(lo) {
			return lo
		}
		return hi
	}
	//lint:ignore barepanic exhaustive Mode switch; a new rounding mode is a compile-time change.
	panic("oracle: bad mode")
}

// logShared answers log-family queries by combining a cached per-mantissa
// series value with an exact multiple of a cached constant:
//
//	ln(m·2^e)    = ln(m)    + e·ln(2)
//	log2(m·2^e)  = log2(m)  + e
//	log10(m·2^e) = log10(m) + e·log10(2)
//
// The combined error is far below 2^-(cachePrec-30); if the result still
// sits too close to a rounding boundary the query escalates to the Ziv
// loop.
func (o *Oracle) logShared(x float64, out fp.Format, mode fp.Mode) uint64 {
	m, e := math.Frexp(x) // x > 0 here
	key := math.Float64bits(m)
	fm := o.logCache.get(key, func() *big.Float {
		if m == 0.5 {
			// log(0.5) = -log(2): exact constant, avoids Eval at a point
			// where the log is an exact multiple of the shared constant.
			switch o.fn {
			case bigmath.Ln:
				return new(big.Float).SetPrec(cachePrec).Neg(bigmath.Ln2(cachePrec))
			case bigmath.Log2:
				return new(big.Float).SetPrec(cachePrec).SetInt64(-1)
			case bigmath.Log10:
				return new(big.Float).SetPrec(cachePrec).Neg(bigmath.Log10Of2(cachePrec))
			}
		}
		return bigmath.Eval(o.fn, m, cachePrec)
	})
	y := new(big.Float).SetPrec(cachePrec)
	eb := new(big.Float).SetPrec(cachePrec).SetInt64(int64(e))
	switch o.fn {
	case bigmath.Ln:
		y.Mul(eb, bigmath.Ln2(cachePrec))
	case bigmath.Log2:
		y.Set(eb)
	case bigmath.Log10:
		y.Mul(eb, bigmath.Log10Of2(cachePrec))
	}
	y.Add(y, fm)
	if bits, ok := o.roundUnlessAmbiguous(y, out, mode); ok {
		o.stats.shared.Add(1)
		return bits
	}
	o.stats.ambiguous.Add(1)
	o.stats.fullEvals.Add(1)
	return out.FromBig(bigmath.EvalUnambiguous(o.fn, x, out, mode), mode)
}

// trigShared answers sinπ/cosπ queries from a cache keyed by the exact
// reduction z = |x| mod 2, using sinπ(-x) = -sinπ(x) and cosπ(-x) = cosπ(x).
func (o *Oracle) trigShared(x float64, out fp.Format, mode fp.Mode) uint64 {
	z := math.Mod(math.Abs(x), 2)
	fz := o.trigCache.get(math.Float64bits(z), func() *big.Float {
		return bigmath.Eval(o.fn, z, cachePrec)
	})
	y := fz
	if o.fn == bigmath.SinPi && math.Signbit(x) {
		y = new(big.Float).SetPrec(cachePrec).Neg(fz)
	}
	if bits, ok := o.roundUnlessAmbiguous(y, out, mode); ok {
		o.stats.shared.Add(1)
		return bits
	}
	o.stats.ambiguous.Add(1)
	o.stats.fullEvals.Add(1)
	return out.FromBig(bigmath.EvalUnambiguous(o.fn, x, out, mode), mode)
}

// roundUnlessAmbiguous rounds y whose relative error is below
// 2^-(cachePrec-32), reporting failure when the error envelope straddles a
// rounding boundary of (out, mode).
func (o *Oracle) roundUnlessAmbiguous(y *big.Float, out fp.Format, mode fp.Mode) (uint64, bool) {
	if y.Sign() == 0 {
		return 0, false
	}
	eps := new(big.Float).SetPrec(32).SetInt64(1)
	eps.SetMantExp(eps, y.MantExp(nil)-cachePrec+32)
	lo := new(big.Float).SetPrec(cachePrec+4).Sub(y, eps)
	hi := new(big.Float).SetPrec(cachePrec+4).Add(y, eps)
	a, b := out.FromBig(lo, mode), out.FromBig(hi, mode)
	if a != b {
		return 0, false
	}
	return a, true
}
