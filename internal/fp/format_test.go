package fp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatParams(t *testing.T) {
	cases := []struct {
		f                      Format
		mant, bias, emin, emax int
	}{
		{Bfloat16, 7, 127, -126, 127},
		{TensorFloat32, 10, 127, -126, 127},
		{Float32, 23, 127, -126, 127},
		{Float16, 10, 15, -14, 15},
		{MustFormat(34, 8), 25, 127, -126, 127},
	}
	for _, c := range cases {
		if got := c.f.MantBits(); got != c.mant {
			t.Errorf("%v MantBits = %d, want %d", c.f, got, c.mant)
		}
		if got := c.f.Bias(); got != c.bias {
			t.Errorf("%v Bias = %d, want %d", c.f, got, c.bias)
		}
		if got := c.f.EMin(); got != c.emin {
			t.Errorf("%v EMin = %d, want %d", c.f, got, c.emin)
		}
		if got := c.f.EMax(); got != c.emax {
			t.Errorf("%v EMax = %d, want %d", c.f, got, c.emax)
		}
	}
}

func TestNewFormatErrors(t *testing.T) {
	bad := [][2]int{{3, 2}, {61, 8}, {16, 1}, {16, 11}, {9, 8}, {60, 5}}
	for _, b := range bad {
		if _, err := NewFormat(b[0], b[1]); err == nil {
			t.Errorf("NewFormat(%d,%d) succeeded, want error", b[0], b[1])
		}
	}
	if _, err := NewFormat(10, 7); err != nil { // one mantissa bit is legal
		t.Errorf("NewFormat(10,7): %v", err)
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"F19,8", "19,8"} {
		f, err := ParseFormat(s)
		if err != nil {
			t.Fatalf("ParseFormat(%q): %v", s, err)
		}
		if f != TensorFloat32 {
			t.Errorf("ParseFormat(%q) = %v", s, f)
		}
	}
	if _, err := ParseFormat("nope"); err == nil {
		t.Error("ParseFormat(nope) succeeded")
	}
}

func TestDecodeSpecials(t *testing.T) {
	f := Bfloat16
	if !math.IsNaN(f.Decode(f.NaN())) {
		t.Error("NaN does not decode to NaN")
	}
	if v := f.Decode(f.Inf(false)); !math.IsInf(v, 1) {
		t.Errorf("+Inf decodes to %v", v)
	}
	if v := f.Decode(f.Inf(true)); !math.IsInf(v, -1) {
		t.Errorf("-Inf decodes to %v", v)
	}
	if v := f.Decode(f.Zero(true)); v != 0 || !math.Signbit(v) {
		t.Errorf("-0 decodes to %v", v)
	}
	if v := f.Decode(f.Zero(false)); v != 0 || math.Signbit(v) {
		t.Errorf("+0 decodes to %v", v)
	}
}

// Float32 semantics must coincide exactly with Go's float32.
func TestFloat32AgreesWithHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		bits := rng.Uint32()
		want := math.Float32frombits(bits)
		got := Float32.Decode(uint64(bits))
		if math.IsNaN(float64(want)) {
			if !math.IsNaN(got) {
				t.Fatalf("bits %#x: want NaN, got %v", bits, got)
			}
			continue
		}
		if got != float64(want) {
			t.Fatalf("bits %#x: Decode=%v, float32=%v", bits, got, want)
		}
	}
}

func TestFromFloat64MatchesFloat32Conversion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		// Random double with moderate exponent so conversions exercise
		// normals, subnormals and overflow.
		v := math.Ldexp(rng.Float64()*2-1, rng.Intn(300)-150)
		want := math.Float32bits(float32(v)) // Go converts with rn
		got := Float32.FromFloat64(v, RoundNearestEven)
		if uint64(want) != got {
			t.Fatalf("v=%g: FromFloat64=%#x float32=%#x", v, got, want)
		}
	}
	// Explicit specials.
	if got := Float32.FromFloat64(math.Inf(1), RoundNearestEven); got != Float32.Inf(false) {
		t.Errorf("+Inf: %#x", got)
	}
	if got := Float32.FromFloat64(math.Copysign(0, -1), RoundNearestEven); got != Float32.Zero(true) {
		t.Errorf("-0: %#x", got)
	}
	if got := Float32.FromFloat64(math.NaN(), RoundNearestEven); got != Float32.NaN() {
		t.Errorf("NaN: %#x", got)
	}
}

// Every representable value must round to itself under every mode.
func TestRoundTripExhaustiveBfloat16(t *testing.T) {
	f := Bfloat16
	for b := uint64(0); b < f.NumValues(); b++ {
		v := f.Decode(b)
		if math.IsNaN(v) {
			continue
		}
		for _, m := range AllModes {
			got := f.FromFloat64(v, m)
			if got != b {
				t.Fatalf("bits %#x (%g) mode %v: rounds to %#x", b, v, m, got)
			}
		}
	}
}

// Directed rounding from a value strictly between two neighbours must land
// on the correct side, and RO must land on the odd neighbour.
func TestRoundingBetweenNeighbours(t *testing.T) {
	f := TensorFloat32
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		b := uint64(rng.Int63n(int64(f.MaxFinite() - 2)))
		lo, hi := f.Decode(b), f.Decode(b+1)
		if math.IsNaN(lo) || math.IsNaN(hi) || lo == 0 {
			continue
		}
		frac := rng.Float64()
		if frac == 0 || frac == 0.5 {
			frac = 0.25
		}
		v := lo + (hi-lo)*frac
		if v <= lo || v >= hi {
			continue // no double strictly between: skip
		}
		if got := f.FromFloat64(v, RoundTowardNegative); got != b {
			t.Fatalf("rd(%g) between %g,%g = %#x want %#x", v, lo, hi, got, b)
		}
		if got := f.FromFloat64(v, RoundTowardPositive); got != b+1 {
			t.Fatalf("ru(%g) = %#x want %#x", v, got, b+1)
		}
		if got := f.FromFloat64(v, RoundTowardZero); got != b {
			t.Fatalf("rz(%g) = %#x want %#x", v, got, b)
		}
		want := b
		if want&1 == 0 {
			want = b + 1
		}
		if got := f.FromFloat64(v, RoundToOdd); got != want {
			t.Fatalf("ro(%g) = %#x want %#x", v, got, want)
		}
	}
}

func TestTiesToEvenAndAway(t *testing.T) {
	f := Bfloat16
	// 1.0 has bits with mantissa 0; next value is 1+2^-7. The midpoint
	// 1+2^-8 ties: rn → even (1.0), ra → away (1+2^-7).
	mid := 1 + math.Ldexp(1, -8)
	one := f.FromFloat64(1, RoundNearestEven)
	if got := f.FromFloat64(mid, RoundNearestEven); got != one {
		t.Errorf("rn tie: %#x want %#x", got, one)
	}
	if got := f.FromFloat64(mid, RoundNearestAway); got != one+1 {
		t.Errorf("ra tie: %#x want %#x", got, one+1)
	}
	// Negative tie.
	if got := f.FromFloat64(-mid, RoundNearestAway); got != f.signMask()|(one+1) {
		t.Errorf("ra neg tie: %#x", got)
	}
}

func TestOverflowPerMode(t *testing.T) {
	f := Bfloat16
	huge := f.MaxFiniteValue() * 2
	check := func(m Mode, v float64, want uint64) {
		t.Helper()
		if got := f.FromFloat64(v, m); got != want {
			t.Errorf("mode %v value %g: %#x want %#x", m, v, got, want)
		}
	}
	check(RoundNearestEven, huge, f.Inf(false))
	check(RoundNearestAway, huge, f.Inf(false))
	check(RoundTowardZero, huge, f.MaxFinite())
	check(RoundTowardPositive, huge, f.Inf(false))
	check(RoundTowardNegative, huge, f.MaxFinite())
	check(RoundToOdd, huge, f.MaxFinite())
	check(RoundNearestEven, -huge, f.Inf(true))
	check(RoundTowardPositive, -huge, f.signMask()|f.MaxFinite())
	check(RoundTowardNegative, -huge, f.Inf(true))
	check(RoundToOdd, -huge, f.signMask()|f.MaxFinite())

	// Just above maxFinite but below the rn overflow threshold stays finite
	// under rn.
	below := f.MaxFiniteValue() * (1 + math.Ldexp(1, -9))
	check(RoundNearestEven, below, f.MaxFinite())
}

func TestUnderflowPerMode(t *testing.T) {
	f := Bfloat16
	tiny := f.MinSubnormalValue() / 4
	check := func(m Mode, v float64, want uint64) {
		t.Helper()
		if got := f.FromFloat64(v, m); got != want {
			t.Errorf("mode %v value %g: %#x want %#x", m, v, got, want)
		}
	}
	check(RoundNearestEven, tiny, f.Zero(false))
	check(RoundTowardZero, tiny, f.Zero(false))
	check(RoundTowardPositive, tiny, f.MinSubnormal())
	check(RoundTowardNegative, tiny, f.Zero(false))
	// RO never flushes a nonzero value to zero: 0 has even mantissa.
	check(RoundToOdd, tiny, f.MinSubnormal())
	check(RoundToOdd, -tiny, f.signMask()|f.MinSubnormal())
	check(RoundTowardNegative, -tiny, f.signMask()|f.MinSubnormal())
	check(RoundTowardPositive, -tiny, f.Zero(true))
	// Exact midpoint between 0 and minSub.
	half := f.MinSubnormalValue() / 2
	check(RoundNearestEven, half, f.Zero(false))
	check(RoundNearestAway, half, f.MinSubnormal())
}

func TestNextUpDown(t *testing.T) {
	f := TensorFloat32
	if f.NextUp(f.Zero(false)) != f.MinSubnormal() {
		t.Error("NextUp(+0)")
	}
	if f.NextUp(f.Zero(true)) != f.MinSubnormal() {
		t.Error("NextUp(-0)")
	}
	if f.NextDown(f.Zero(false)) != f.signMask()|f.MinSubnormal() {
		t.Error("NextDown(+0)")
	}
	if f.NextUp(f.MaxFinite()) != f.Inf(false) {
		t.Error("NextUp(maxFinite)")
	}
	if f.NextUp(f.Inf(false)) != f.Inf(false) {
		t.Error("NextUp(+Inf)")
	}
	if f.NextDown(f.Inf(true)) != f.Inf(true) {
		t.Error("NextDown(-Inf)")
	}
	// Value ordering property on random finite bit patterns.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		b := uint64(rng.Int63()) & (f.NumValues() - 1)
		if f.IsNaN(b) || f.IsInf(b) {
			continue
		}
		v := f.Decode(b)
		up := f.Decode(f.NextUp(b))
		if !(up > v) && !(v == 0 && up > 0) {
			t.Fatalf("NextUp(%#x)=%g not above %g", b, up, v)
		}
		down := f.Decode(f.NextDown(b))
		if !(down < v) && !(v == 0 && down < 0) {
			t.Fatalf("NextDown(%#x)=%g not below %g", b, down, v)
		}
	}
}

// FromBig and FromFloat64 must agree whenever the input is a double.
func TestFromBigMatchesFromFloat64(t *testing.T) {
	formats := []Format{Bfloat16, TensorFloat32, Float32, Float16, MustFormat(27, 8)}
	cfg := &quick.Config{MaxCount: 4000}
	for _, f := range formats {
		f := f
		err := quick.Check(func(fracBits int64, e int) bool {
			v := math.Ldexp(float64(fracBits), (e%400)-200)
			if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
				return true
			}
			x := new(big.Float).SetPrec(200).SetFloat64(v)
			for _, m := range AllModes {
				if f.FromBig(x, m) != f.FromFloat64(v, m) {
					return false
				}
			}
			return true
		}, cfg)
		if err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestFromBigExtremes(t *testing.T) {
	f := Bfloat16
	huge := new(big.Float).SetPrec(64)
	huge.SetMantExp(big.NewFloat(1.5), 100000)
	if got := f.FromBig(huge, RoundNearestEven); got != f.Inf(false) {
		t.Errorf("huge: %#x", got)
	}
	if got := f.FromBig(huge, RoundTowardZero); got != f.MaxFinite() {
		t.Errorf("huge rz: %#x", got)
	}
	tiny := new(big.Float).SetPrec(64)
	tiny.SetMantExp(big.NewFloat(1.5), -100000)
	tiny.Neg(tiny)
	if got := f.FromBig(tiny, RoundToOdd); got != f.signMask()|f.MinSubnormal() {
		t.Errorf("tiny ro: %#x", got)
	}
	if got := f.FromBig(tiny, RoundNearestEven); got != f.Zero(true) {
		t.Errorf("tiny rn: %#x", got)
	}
	var zero big.Float
	zero.Neg(&zero)
	if got := f.FromBig(&zero, RoundNearestEven); got != f.Zero(true) {
		t.Errorf("-0: %#x", got)
	}
	inf := new(big.Float).SetInf(true)
	if got := f.FromBig(inf, RoundNearestEven); got != f.Inf(true) {
		t.Errorf("-Inf: %#x", got)
	}
}

// The RLibm-All theorem: rounding a real to F(n+2,E) with round-to-odd and
// then rounding that value to any format with k <= n bits (same exponent
// width) under any standard mode equals rounding the real directly.
func TestRoundToOddDoubleRoundingTheorem(t *testing.T) {
	base := MustFormat(14, 8) // largest target
	ext := base.Extend(2)     // round-to-odd format
	smaller := []Format{base, MustFormat(12, 8), MustFormat(11, 8)}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120000; i++ {
		// Random real with rich low-order structure: a double scaled into
		// an interesting exponent range, plus occasional exact ties.
		var x *big.Float
		switch i % 4 {
		case 0:
			x = big.NewFloat(math.Ldexp(rng.Float64()+0.5, rng.Intn(290)-160))
		case 1: // exactly representable in ext
			b := uint64(rng.Int63()) & (ext.NumValues() - 1)
			if !ext.IsFinite(b) {
				continue
			}
			x = big.NewFloat(ext.Decode(b))
		case 2: // exact midpoint of a small format
			f := smaller[rng.Intn(len(smaller))]
			b := uint64(rng.Int63()) & (f.NumValues() - 1)
			if !f.IsFinite(b) || f.IsZero(b) || !f.IsFinite(f.NextUp(b)) {
				continue
			}
			x = big.NewFloat((f.Decode(b) + f.Decode(f.NextUp(b))) / 2)
		default:
			x = big.NewFloat(rng.NormFloat64())
		}
		if x.Sign() == 0 {
			continue
		}
		roBits := ext.FromBig(x, RoundToOdd)
		roVal := ext.Decode(roBits)
		for _, f := range smaller {
			for _, m := range StandardModes {
				direct := f.FromBig(x, m)
				via := f.FromFloat64(roVal, m)
				if direct != via {
					t.Fatalf("x=%v fmt=%v mode=%v: direct %#x via-RO %#x (ro=%#x %g)",
						x, f, m, direct, via, roBits, roVal)
				}
			}
		}
	}
}

// Round-to-odd composes downward: RO to p1 bits then RO to p2 <= p1-2 bits
// equals RO directly.
func TestRoundToOddComposes(t *testing.T) {
	big27 := MustFormat(27, 8)
	small := MustFormat(21, 8)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 60000; i++ {
		x := big.NewFloat(math.Ldexp(rng.Float64()+0.5, rng.Intn(280)-150))
		first := big27.Decode(big27.FromBig(x, RoundToOdd))
		via := small.FromFloat64(first, RoundToOdd)
		direct := small.FromBig(x, RoundToOdd)
		if via != direct {
			t.Fatalf("x=%v: via=%#x direct=%#x", x, via, direct)
		}
	}
}

func TestContains(t *testing.T) {
	if !Bfloat16.Contains(1.5) {
		t.Error("1.5 should be in bfloat16")
	}
	if Bfloat16.Contains(1 + math.Ldexp(1, -10)) {
		t.Error("1+2^-10 should not be in bfloat16")
	}
	if !Bfloat16.Contains(math.Inf(1)) || !Bfloat16.Contains(math.NaN()) {
		t.Error("specials should be contained")
	}
	if !TensorFloat32.Contains(Bfloat16.MaxFiniteValue()) {
		t.Error("bf16 max should be in tf32")
	}
}

func TestRoundDecoded(t *testing.T) {
	got := Bfloat16.RoundDecoded(1.0001, RoundNearestEven)
	if got != 1.0 {
		t.Errorf("RoundDecoded(1.0001) = %v", got)
	}
}
