package fp

import (
	"fmt"
	"math"
	"math/big"
)

// Mode is a rounding direction. The five IEEE-754 modes are supported plus
// round-to-odd, the non-standard mode at the heart of the RLibm-All /
// RLIBM-Prog construction: a real value that is exactly representable
// rounds to itself; any other real rounds to the adjacent representable
// value whose mantissa is odd.
type Mode int

const (
	// RoundNearestEven is round-to-nearest, ties to even (rn).
	RoundNearestEven Mode = iota
	// RoundNearestAway is round-to-nearest, ties away from zero (ra).
	RoundNearestAway
	// RoundTowardZero is truncation (rz).
	RoundTowardZero
	// RoundTowardPositive is rounding toward +∞ (ru).
	RoundTowardPositive
	// RoundTowardNegative is rounding toward -∞ (rd).
	RoundTowardNegative
	// RoundToOdd is the non-standard round-to-odd mode (ro).
	RoundToOdd

	numModes = int(RoundToOdd) + 1
)

// StandardModes lists the five IEEE-754 rounding modes.
var StandardModes = []Mode{
	RoundNearestEven, RoundNearestAway, RoundTowardZero,
	RoundTowardPositive, RoundTowardNegative,
}

// AllModes lists the five IEEE modes plus round-to-odd.
var AllModes = append(append([]Mode{}, StandardModes...), RoundToOdd)

func (m Mode) String() string {
	switch m {
	case RoundNearestEven:
		return "rn"
	case RoundNearestAway:
		return "ra"
	case RoundTowardZero:
		return "rz"
	case RoundTowardPositive:
		return "ru"
	case RoundTowardNegative:
		return "rd"
	case RoundToOdd:
		return "ro"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the short mode names used by Mode.String.
func ParseMode(s string) (Mode, error) {
	for _, m := range AllModes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("fp: unknown rounding mode %q", s)
}

// roundUnits decides, for a magnitude of n result units plus a discarded
// fraction described by (guard, sticky), whether to increment n. guard is
// the first discarded bit; sticky reports whether any lower discarded bit
// is set. negative is the sign of the value being rounded.
func roundUnits(m Mode, n uint64, guard, sticky, negative bool) uint64 {
	inexact := guard || sticky
	if !inexact {
		return n
	}
	switch m {
	case RoundNearestEven:
		if guard && (sticky || n&1 == 1) {
			return n + 1
		}
	case RoundNearestAway:
		if guard {
			return n + 1
		}
	case RoundTowardZero:
		// truncate
	case RoundTowardPositive:
		if !negative {
			return n + 1
		}
	case RoundTowardNegative:
		if negative {
			return n + 1
		}
	case RoundToOdd:
		if n&1 == 0 {
			return n + 1
		}
	}
	return n
}

// overflowBits returns the bit pattern produced when the rounded magnitude
// exceeds the largest finite value: toward-zero-like modes saturate at
// maxFinite while nearest modes produce ±∞. Round-to-odd saturates at
// maxFinite, whose mantissa is all ones and hence odd — this is exactly the
// behaviour required for the double-rounding theorem to extend to the
// overflow range.
func (f Format) overflowBits(m Mode, negative bool) uint64 {
	sign := uint64(0)
	if negative {
		sign = f.signMask()
	}
	switch m {
	case RoundNearestEven, RoundNearestAway:
		return sign | f.Inf(false)
	case RoundTowardZero, RoundToOdd:
		return sign | f.MaxFinite()
	case RoundTowardPositive:
		if negative {
			return sign | f.MaxFinite()
		}
		return f.Inf(false)
	case RoundTowardNegative:
		if negative {
			return sign | f.Inf(false)
		}
		return f.MaxFinite()
	}
	//lint:ignore barepanic exhaustive Mode switch; a new rounding mode is a compile-time change.
	panic("fp: bad mode")
}

// assembleBits builds the final bit pattern from a rounded magnitude
// expressed as n units of 2^qe, where qe is the exponent of one unit and
// subnormal reports whether qe is the subnormal quantum (EMin - MantBits).
// Carries from the mantissa into the exponent field fall out of the integer
// arithmetic, including the subnormal→normal transition.
func (f Format) assembleBits(m Mode, n uint64, qe int, negative bool) uint64 {
	p := uint(f.MantBits())
	sign := uint64(0)
	if negative {
		sign = f.signMask()
	}
	if n == 0 {
		return sign
	}
	// Normalize: the caller guarantees qe >= EMin - MantBits. If n has grown
	// past the 2^(p+1) significand range (possible only when rounding up a
	// value with more result bits), renormalize by shifting.
	for n >= 1<<(p+1) {
		// Rounding can only produce a power of two here, so no bits are lost.
		n >>= 1
		qe++
	}
	var bits uint64
	if n < 1<<p {
		// Subnormal result: valid only at the subnormal quantum.
		bits = n
		if qe != f.EMin()-int(p) {
			//lint:ignore barepanic arithmetic invariant of the quantization; proven by the format algebra, not reachable from inputs.
			panic("fp: subnormal magnitude at non-subnormal quantum")
		}
	} else {
		e := qe + int(p) // unbiased exponent of the leading bit
		field := e + f.Bias()
		if field >= (1<<uint(f.expBits))-1 {
			return f.overflowBits(m, negative)
		}
		bits = uint64(field)<<p + (n - 1<<p)
	}
	return sign | bits
}

// FromFloat64 rounds the exact real value v into the format under mode m
// and returns the resulting bit pattern. v is treated as an exact real
// number (every float64 is one); this is the production-path rounding used
// after range reduction, polynomial evaluation and output compensation,
// all of which run in float64.
func (f Format) FromFloat64(v float64, m Mode) uint64 {
	switch {
	case math.IsNaN(v):
		return f.NaN()
	case math.IsInf(v, 0):
		return f.Inf(math.Signbit(v))
	case v == 0:
		return f.Zero(math.Signbit(v))
	}
	negative := math.Signbit(v)
	mag := math.Abs(v)
	p := uint(f.MantBits())

	// Express mag = mant * 2^e2 with mant an integer (at most 53 bits).
	frac, exp := math.Frexp(mag) // mag = frac * 2^exp, frac in [0.5, 1)
	mant := uint64(math.Ldexp(frac, 53))
	e2 := exp - 53
	// Strip trailing zeros so shifts stay small.
	for mant&1 == 0 {
		mant >>= 1
		e2++
	}

	// Quantum exponent: ulp of the target at this magnitude.
	ebin := exp - 1 // unbiased exponent of mag's leading bit
	qe := ebin - int(p)
	if minq := f.EMin() - int(p); qe < minq {
		qe = minq
	}

	var n uint64
	var guard, sticky bool
	switch s := e2 - qe; {
	case s >= 0:
		// Exactly representable at this quantum (may still exceed the
		// mantissa range — assembleBits handles the carry/overflow).
		if s > 63 || mant > (math.MaxUint64>>uint(s)) {
			// Cannot happen for supported formats: magnitude below
			// maxFinite keeps n within p+2 bits. Guard anyway.
			return f.overflowBits(m, negative)
		}
		n = mant << uint(s)
	case s >= -63:
		sh := uint(-s)
		n = mant >> sh
		guard = mant&(1<<(sh-1)) != 0
		sticky = mant&((1<<(sh-1))-1) != 0
	default:
		n, guard, sticky = 0, false, true
	}
	n = roundUnits(m, n, guard, sticky, negative)
	return f.assembleBits(m, n, qe, negative)
}

// FromBig rounds the exact real value x into the format under mode m. x may
// carry arbitrary precision; the rounding consumes every bit, so the result
// is the correctly rounded value of x. Infinite x maps to ±∞ and a zero x
// preserves its sign.
func (f Format) FromBig(x *big.Float, m Mode) uint64 {
	if x.IsInf() {
		return f.Inf(x.Signbit())
	}
	if x.Sign() == 0 {
		return f.Zero(x.Signbit())
	}
	negative := x.Signbit()
	mag := new(big.Float).SetPrec(x.Prec()).Abs(x)

	// mag = mant * 2^(exp - prec) with mant an integer of exactly prec bits
	// (leading bit set).
	mantf := new(big.Float).SetPrec(mag.Prec())
	exp := mag.MantExp(mantf) // mag = mantf * 2^exp, mantf in [0.5,1)
	p0 := f.MantBits()
	if exp >= f.EMax()+2 {
		// mag >= 2^(EMax+1) > maxFinite: certain overflow. Clamp early so
		// extreme exponents never reach the big.Int shifts below.
		return f.overflowBits(m, negative)
	}
	if exp < f.EMin()-p0-1 {
		// mag < minSubnormal/2 and not a tie: rounds from zero units with
		// only a sticky bit.
		n := roundUnits(m, 0, false, true, negative)
		return f.assembleBits(m, n, f.EMin()-p0, negative)
	}
	prec := int(mag.MinPrec())
	mantf.SetMantExp(mantf, prec) // now an integer value
	mant, acc := mantf.Int(nil)
	if acc != big.Exact {
		//lint:ignore barepanic mantf was just shifted to an integer value; inexact extraction is impossible by construction.
		panic("fp: inexact mantissa extraction")
	}
	e2 := exp - prec

	p := uint(f.MantBits())
	ebin := exp - 1
	qe := ebin - int(p)
	if minq := f.EMin() - int(p); qe < minq {
		qe = minq
	}

	var n uint64
	var guard, sticky bool
	s := e2 - qe
	switch {
	case s >= 0:
		mant.Lsh(mant, uint(s))
		if !mant.IsUint64() {
			return f.overflowBits(m, negative)
		}
		n = mant.Uint64()
	default:
		sh := uint(-s)
		rem := new(big.Int)
		q := new(big.Int).Rsh(mant, sh)
		rem.And(mant, new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), sh), big.NewInt(1)))
		if !q.IsUint64() {
			return f.overflowBits(m, negative)
		}
		n = q.Uint64()
		half := new(big.Int).Lsh(big.NewInt(1), sh-1)
		switch rem.Cmp(half) {
		case 0:
			guard, sticky = true, false
		case 1:
			guard = true
			sticky = true
		default:
			guard = false
			sticky = rem.Sign() != 0
		}
	}
	n = roundUnits(m, n, guard, sticky, negative)
	return f.assembleBits(m, n, qe, negative)
}

// RoundDecoded is a convenience that rounds v into f under m and returns the
// decoded float64 value of the result.
func (f Format) RoundDecoded(v float64, m Mode) float64 {
	return f.Decode(f.FromFloat64(v, m))
}
