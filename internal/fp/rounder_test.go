package fp

import (
	"math"
	"math/rand"
	"testing"
)

// rounderFormats covers the level ladder, the widest supported mantissas and
// a non-8-bit exponent field.
var rounderFormats = []Format{
	MustFormat(10, 8), Bfloat16, TensorFloat32, MustFormat(22, 8),
	Float32, MustFormat(34, 8), Float16, MustFormat(12, 4),
}

// rounderCorpus returns values that exercise every branch of the rounding:
// specials, signed zeros, exact values of the target, halfway points,
// subnormal-range and overflow-range magnitudes, plus random doubles.
func rounderCorpus(f Format, rng *rand.Rand) []float64 {
	vs := []float64{
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		1, -1, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		f.MaxFiniteValue(), -f.MaxFiniteValue(),
		f.MaxFiniteValue() * 2, f.MinSubnormalValue() / 2,
		f.MinSubnormalValue() * 1.5, -f.MinSubnormalValue() * 0.25,
	}
	// Every value of a small format plus its neighbours and midpoints.
	small := MustFormat(10, 8)
	for b := uint64(0); b < small.NumValues(); b++ {
		v := small.Decode(b)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		vs = append(vs, v, math.Nextafter(v, math.Inf(1)), v*(1+math.Ldexp(1, -30)))
	}
	for i := 0; i < 20000; i++ {
		vs = append(vs, math.Ldexp(rng.Float64()*2-1, rng.Intn(600)-300))
	}
	return vs
}

// TestRounderMatchesFromFloat64 pins the Rounder contract: bit-identical to
// Format.FromFloat64 for every format × mode over a branch-covering corpus.
func TestRounderMatchesFromFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range rounderFormats {
		corpus := rounderCorpus(f, rng)
		for _, m := range AllModes {
			r := NewRounder(f, m)
			if r.Format() != f || r.Mode() != m {
				t.Fatalf("%v/%v: accessor mismatch", f, m)
			}
			for _, v := range corpus {
				if got, want := r.Round(v), f.FromFloat64(v, m); got != want {
					t.Fatalf("%v/%v: Round(%x) = %#x, FromFloat64 = %#x", f, m, v, got, want)
				}
			}
		}
	}
}

// TestRounderZeroAllocs pins the batch-rounding hot path allocation-free.
func TestRounderZeroAllocs(t *testing.T) {
	r := NewRounder(Bfloat16, RoundNearestEven)
	vs := []float64{1.5, -0.375, math.Pi, 1e30, 1e-30, math.NaN()}
	if n := testing.AllocsPerRun(100, func() {
		for _, v := range vs {
			_ = r.Round(v)
		}
	}); n != 0 {
		t.Fatalf("Round allocates %v times per run", n)
	}
}
