package fp

import "math"

// Rounder is the batch-friendly form of Format.FromFloat64: every
// format- and mode-derived constant (field widths, quantum floor, the
// canonical NaN/∞/zero/overflow bit patterns) is computed once at
// construction, so the per-value Round call is pure integer and float
// arithmetic with no recomputation and no allocation. The serving-path
// kernels (internal/eval) round every batched result through one Rounder.
//
// Contract: Round(v) == Format.FromFloat64(v, Mode) bit for bit, for every
// float64 v — pinned by TestRounderMatchesFromFloat64.
type Rounder struct {
	f Format
	m Mode

	p    uint // mantissa bits
	minq int  // subnormal quantum exponent, EMin - MantBits
	bias int
	// Exponent field value that overflows to ∞/maxFinite: 2^|E| - 1.
	expCap int

	nan              uint64
	infPos, infNeg   uint64
	zeroPos, zeroNeg uint64
	sign             uint64
	ovfPos, ovfNeg   uint64 // overflowBits per sign, mode baked in
}

// NewRounder returns the rounder for repeated conversions into f under m.
func NewRounder(f Format, m Mode) Rounder {
	return Rounder{
		f:       f,
		m:       m,
		p:       uint(f.MantBits()),
		minq:    f.EMin() - f.MantBits(),
		bias:    f.Bias(),
		expCap:  (1 << uint(f.expBits)) - 1,
		nan:     f.NaN(),
		infPos:  f.Inf(false),
		infNeg:  f.Inf(true),
		zeroPos: f.Zero(false),
		zeroNeg: f.Zero(true),
		sign:    f.signMask(),
		ovfPos:  f.overflowBits(m, false),
		ovfNeg:  f.overflowBits(m, true),
	}
}

// Format returns the target format.
func (r *Rounder) Format() Format { return r.f }

// Mode returns the rounding mode.
func (r *Rounder) Mode() Mode { return r.m }

// overflow returns the precomputed overflow pattern for the sign.
func (r *Rounder) overflow(negative bool) uint64 {
	if negative {
		return r.ovfNeg
	}
	return r.ovfPos
}

// Round rounds the exact real value v into the rounder's format under its
// mode and returns the resulting bit pattern. It is FromFloat64 with the
// derived constants hoisted out of the call; the two stay bit-identical.
//
//evalhot:loop
func (r *Rounder) Round(v float64) uint64 {
	switch {
	case math.IsNaN(v):
		return r.nan
	case math.IsInf(v, 0):
		if math.Signbit(v) {
			return r.infNeg
		}
		return r.infPos
	case v == 0:
		if math.Signbit(v) {
			return r.zeroNeg
		}
		return r.zeroPos
	}
	negative := math.Signbit(v)
	mag := math.Abs(v)

	// Express mag = mant * 2^e2 with mant an integer (at most 53 bits).
	frac, exp := math.Frexp(mag) // mag = frac * 2^exp, frac in [0.5, 1)
	mant := uint64(math.Ldexp(frac, 53))
	e2 := exp - 53
	for mant&1 == 0 {
		mant >>= 1
		e2++
	}

	// Quantum exponent: ulp of the target at this magnitude.
	qe := exp - 1 - int(r.p)
	if qe < r.minq {
		qe = r.minq
	}

	var n uint64
	var guard, sticky bool
	switch s := e2 - qe; {
	case s >= 0:
		if s > 63 || mant > (math.MaxUint64>>uint(s)) {
			// Cannot happen for supported formats (see FromFloat64); guard
			// anyway.
			return r.overflow(negative)
		}
		n = mant << uint(s)
	case s >= -63:
		sh := uint(-s)
		n = mant >> sh
		guard = mant&(1<<(sh-1)) != 0
		sticky = mant&((1<<(sh-1))-1) != 0
	default:
		n, guard, sticky = 0, false, true
	}
	n = roundUnits(r.m, n, guard, sticky, negative)
	return r.assemble(n, qe, negative)
}

// assemble is assembleBits with the format constants preloaded.
//
//evalhot:loop
func (r *Rounder) assemble(n uint64, qe int, negative bool) uint64 {
	sign := uint64(0)
	if negative {
		sign = r.sign
	}
	if n == 0 {
		return sign
	}
	for n >= 1<<(r.p+1) {
		n >>= 1
		qe++
	}
	var bits uint64
	if n < 1<<r.p {
		bits = n
		if qe != r.minq {
			//lint:ignore barepanic arithmetic invariant of the quantization; proven by the format algebra, not reachable from inputs.
			panic("fp: subnormal magnitude at non-subnormal quantum")
		}
	} else {
		field := qe + int(r.p) + r.bias
		if field >= r.expCap {
			return r.overflow(negative)
		}
		bits = uint64(field)<<r.p + (n - 1<<r.p)
	}
	return sign | bits
}
