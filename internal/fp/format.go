// Package fp implements parameterized IEEE-754-style binary floating-point
// formats F(n,|E|) — n total bits, |E| exponent bits — together with correct
// rounding from exact values (float64 or big.Float) into any such format
// under the five IEEE rounding modes and the non-standard round-to-odd mode
// used by the RLibm-All/RLIBM-Prog construction.
//
// Every format supported here (10 ≤ n ≤ 34, |E| ≤ 10) embeds exactly into
// float64: each representable value of the format is a representable
// float64. Decoded values are therefore carried around as float64 without
// loss, and production code paths (range reduction, polynomial evaluation,
// output compensation) run in float64 exactly as in the paper.
package fp

import (
	"fmt"
	"math"
)

// Format describes a binary floating-point representation with a sign bit,
// ExpBits exponent bits and Bits-1-ExpBits explicit mantissa bits, following
// the IEEE-754 layout (subnormals, signed zero, infinities, NaN).
type Format struct {
	bits    int // total bits including sign
	expBits int // exponent field width
}

// Common formats used throughout the paper.
var (
	// Bfloat16 is the 16-bit brain float format F(16,8).
	Bfloat16 = MustFormat(16, 8)
	// TensorFloat32 is NVIDIA's 19-bit format F(19,8).
	TensorFloat32 = MustFormat(19, 8)
	// Float32 is the IEEE single-precision format F(32,8).
	Float32 = MustFormat(32, 8)
	// Float16 is the IEEE half-precision format F(16,5).
	Float16 = MustFormat(16, 5)
)

// NewFormat returns the format with the given total bit width and exponent
// field width. It reports an error when the combination cannot be handled:
// the format must have at least one mantissa bit, at least two exponent
// bits, and must embed into float64 (so the offline tooling can carry exact
// values in doubles).
func NewFormat(bits, expBits int) (Format, error) {
	mant := bits - 1 - expBits
	switch {
	case bits < 4 || bits > 60:
		return Format{}, fmt.Errorf("fp: total width %d out of range [4,60]", bits)
	case expBits < 2 || expBits > 10:
		return Format{}, fmt.Errorf("fp: exponent width %d out of range [2,10]", expBits)
	case mant < 1:
		return Format{}, fmt.Errorf("fp: no mantissa bits in F(%d,%d)", bits, expBits)
	case mant > 51:
		// float64 has 52 explicit mantissa bits; we additionally need one
		// spare bit so round-to-odd targets (n+2 bits) stay exact.
		return Format{}, fmt.Errorf("fp: mantissa width %d exceeds float64 capacity", mant)
	}
	return Format{bits: bits, expBits: expBits}, nil
}

// MustFormat is like NewFormat but panics on invalid parameters. Intended
// for package-level format constants.
func MustFormat(bits, expBits int) Format {
	f, err := NewFormat(bits, expBits)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseFormat parses a format written as "F19,8" or "19,8".
func ParseFormat(s string) (Format, error) {
	var bits, exp int
	if _, err := fmt.Sscanf(s, "F%d,%d", &bits, &exp); err != nil {
		if _, err2 := fmt.Sscanf(s, "%d,%d", &bits, &exp); err2 != nil {
			return Format{}, fmt.Errorf("fp: cannot parse format %q", s)
		}
	}
	return NewFormat(bits, exp)
}

// Bits returns the total width of the format, including the sign bit.
func (f Format) Bits() int { return f.bits }

// ExpBits returns the width of the exponent field.
func (f Format) ExpBits() int { return f.expBits }

// MantBits returns the number of explicit mantissa (fraction) bits.
func (f Format) MantBits() int { return f.bits - 1 - f.expBits }

// Precision returns the significand precision in bits (mantissa bits plus
// the implicit leading bit).
func (f Format) Precision() int { return f.MantBits() + 1 }

// Bias returns the exponent bias, 2^(|E|-1) - 1.
func (f Format) Bias() int { return (1 << (f.expBits - 1)) - 1 }

// EMin returns the unbiased exponent of the smallest normal value.
func (f Format) EMin() int { return 1 - f.Bias() }

// EMax returns the unbiased exponent of the largest finite value.
func (f Format) EMax() int { return (1<<f.expBits - 2) - f.Bias() }

// NumValues returns the number of bit patterns of the format, 2^n.
func (f Format) NumValues() uint64 { return 1 << uint(f.bits) }

// Extend returns the format with extra additional mantissa bits and the same
// exponent width: Extend(2) is the round-to-odd target of the RLibm-All
// construction.
func (f Format) Extend(extra int) Format {
	return MustFormat(f.bits+extra, f.expBits)
}

// String returns the format in "F25,8" notation.
func (f Format) String() string { return fmt.Sprintf("F%d,%d", f.bits, f.expBits) }

// Field masks and canonical bit patterns.

func (f Format) signMask() uint64 { return 1 << uint(f.bits-1) }
func (f Format) expMask() uint64  { return ((1 << uint(f.expBits)) - 1) << uint(f.MantBits()) }
func (f Format) mantMask() uint64 { return (1 << uint(f.MantBits())) - 1 }

// SignBit reports whether the sign bit of b is set.
func (f Format) SignBit(b uint64) bool { return b&f.signMask() != 0 }

// ExpField returns the raw (biased) exponent field of b.
func (f Format) ExpField(b uint64) uint64 { return (b & f.expMask()) >> uint(f.MantBits()) }

// MantField returns the raw mantissa field of b.
func (f Format) MantField(b uint64) uint64 { return b & f.mantMask() }

// IsNaN reports whether b encodes a NaN.
func (f Format) IsNaN(b uint64) bool {
	return f.ExpField(b) == (1<<uint(f.expBits))-1 && f.MantField(b) != 0
}

// IsInf reports whether b encodes ±∞.
func (f Format) IsInf(b uint64) bool {
	return f.ExpField(b) == (1<<uint(f.expBits))-1 && f.MantField(b) == 0
}

// IsZero reports whether b encodes ±0.
func (f Format) IsZero(b uint64) bool { return b&^f.signMask() == 0 }

// IsSubnormal reports whether b encodes a nonzero subnormal value.
func (f Format) IsSubnormal(b uint64) bool {
	return f.ExpField(b) == 0 && f.MantField(b) != 0
}

// IsFinite reports whether b encodes a finite value (including zero).
func (f Format) IsFinite(b uint64) bool {
	return f.ExpField(b) != (1<<uint(f.expBits))-1
}

// NaN returns the canonical quiet NaN bit pattern.
func (f Format) NaN() uint64 {
	return f.expMask() | (1 << uint(f.MantBits()-1))
}

// Inf returns the bit pattern of +∞ (negative=false) or -∞.
func (f Format) Inf(negative bool) uint64 {
	b := f.expMask()
	if negative {
		b |= f.signMask()
	}
	return b
}

// Zero returns the bit pattern of +0 or -0.
func (f Format) Zero(negative bool) uint64 {
	if negative {
		return f.signMask()
	}
	return 0
}

// MaxFinite returns the bit pattern of the largest positive finite value.
func (f Format) MaxFinite() uint64 {
	return (f.expMask() - (1 << uint(f.MantBits()))) | f.mantMask()
}

// MinSubnormal returns the bit pattern of the smallest positive value.
func (f Format) MinSubnormal() uint64 { return 1 }

// MaxFiniteValue returns the largest positive finite value as a float64.
func (f Format) MaxFiniteValue() float64 { return f.Decode(f.MaxFinite()) }

// MinSubnormalValue returns the smallest positive value as a float64.
func (f Format) MinSubnormalValue() float64 { return f.Decode(f.MinSubnormal()) }

// Decode returns the value encoded by the low Bits() bits of b as a
// float64. The conversion is exact for every supported format. NaN decodes
// to a float64 NaN, infinities to ±Inf.
func (f Format) Decode(b uint64) float64 {
	b &= f.NumValues() - 1
	sign := 1.0
	if f.SignBit(b) {
		sign = -1.0
	}
	exp := f.ExpField(b)
	mant := f.MantField(b)
	p := uint(f.MantBits())
	switch {
	case exp == (1<<uint(f.expBits))-1:
		if mant != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	case exp == 0:
		if mant == 0 {
			return sign * 0.0
		}
		return sign * math.Ldexp(float64(mant), f.EMin()-int(p))
	default:
		sig := float64(mant) + float64(uint64(1)<<p)
		return sign * math.Ldexp(sig, int(exp)-f.Bias()-int(p))
	}
}

// NextUp returns the bit pattern of the least value greater than b
// (IEEE-754 nextUp). NextUp(maxFinite) is +∞, NextUp(-minSub) is -0,
// NextUp(±0) is the minimum positive subnormal, NextUp(+∞) is +∞, and
// NaN propagates.
func (f Format) NextUp(b uint64) uint64 {
	switch {
	case f.IsNaN(b):
		return b
	case f.IsZero(b):
		return f.MinSubnormal()
	case !f.SignBit(b):
		if f.IsInf(b) {
			return b
		}
		return b + 1
	default:
		return b - 1 // negative: toward zero is up
	}
}

// NextDown returns the bit pattern of the greatest value less than b
// (IEEE-754 nextDown).
func (f Format) NextDown(b uint64) uint64 {
	switch {
	case f.IsNaN(b):
		return b
	case f.IsZero(b):
		return f.signMask() | f.MinSubnormal()
	case f.SignBit(b):
		if f.IsInf(b) {
			return b
		}
		return b + 1
	default:
		return b - 1
	}
}

// OddMantissa reports whether the least significant mantissa bit of b is
// set; this is the parity used by round-to-odd.
func (f Format) OddMantissa(b uint64) bool { return b&1 != 0 }

// Contains reports whether the float64 v is exactly representable in f.
// NaN is considered representable (as the canonical NaN).
func (f Format) Contains(v float64) bool {
	if math.IsNaN(v) {
		return true
	}
	b := f.FromFloat64(v, RoundTowardZero)
	return f.Decode(b) == v
}
