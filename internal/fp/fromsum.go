package fp

import (
	"math"
	"math/bits"
)

// FromSum rounds the exact real value hi + lo into the format under mode,
// where (hi, lo) is an unevaluated double-double sum with |lo| ≤ |hi|/4
// (the double-double invariant |lo| ≤ ulp(hi)/2 implies it). It is the
// allocation-free equivalent of FromBig on the exact sum, used by the Ziv
// fast paths of the comparator libraries. Degenerate inputs (zero or
// non-finite hi, zero lo) defer to FromFloat64 on hi.
//
// The sum is assembled exactly in 128-bit fixed point with 64 fractional
// bits below the target quantum. A 53-bit mantissa sits at most p+12 ≤ 47
// bits above the fraction point, so no term ever overflows the window;
// bits of lo falling below the window contribute only a sticky flag (plus
// a one-unit borrow when lo is negative, which keeps the window value a
// faithful lower bound — exact for rounding, since every rounding boundary
// lies at or above the half-quantum bit).
func (f Format) FromSum(hi, lo float64, m Mode) uint64 {
	if hi == 0 || math.IsNaN(hi) || math.IsInf(hi, 0) || lo == 0 {
		return f.FromFloat64(hi, m)
	}
	negative := math.Signbit(hi)
	sign := 1.0
	if negative {
		sign = -1
	}
	a, b := hi*sign, lo*sign // a > 0, |b| ≤ a/4

	p := f.MantBits()
	fracA, expA := math.Frexp(a)
	// Early overflow/underflow clamps (|b| ≤ a/4 cannot change them).
	if expA-1 > f.EMax()+1 {
		return f.overflowBits(m, negative)
	}
	if expA < f.EMin()-p-2 {
		n := roundUnits(m, 0, false, true, negative)
		return f.assembleBits(m, n, f.EMin()-p, negative)
	}

	// Quantum exponent: the target's ulp at the magnitude of the sum. A
	// negative b can pull the value just below a power-of-two a into the
	// finer binade.
	ebin := expA - 1
	if fracA == 0.5 && b < 0 {
		ebin--
	}
	qe := ebin - p
	if minq := f.EMin() - p; qe < minq {
		qe = minq
	}

	// acc = (hi word: whole quanta) : (lo word: 64 fraction bits).
	var accHi, accLo uint64
	sticky := false

	addTerm := func(v float64) {
		neg := v < 0
		frac, exp := math.Frexp(math.Abs(v))
		mant := uint64(math.Ldexp(frac, 53)) // exactly 53 bits
		sh := (exp - 53) - qe + 64           // position of mant's LSB in the window
		var tHi, tLo uint64
		switch {
		case sh >= 64:
			// mant's low bit is already in the whole-quanta word; sh ≤
			// p+12+64, and mant<<(sh-64) fits: sh-64 ≤ p-1 ≤ 33.
			tHi = mant << uint(sh-64)
		case sh >= 0:
			tLo = mant << uint(sh)
			if sh > 11 { // 53+sh > 64: spills into the high word
				tHi = mant >> uint(64-sh)
			}
		case sh > -53:
			down := uint(-sh)
			tLo = mant >> down
			if mant&((1<<down)-1) != 0 {
				sticky = true
				if neg {
					borrowOne(&accHi, &accLo)
				}
			}
		default:
			// Entire term below the window.
			sticky = true
			if neg {
				borrowOne(&accHi, &accLo)
			}
			return
		}
		if neg {
			var borrow uint64
			accLo, borrow = bits.Sub64(accLo, tLo, 0)
			accHi, _ = bits.Sub64(accHi, tHi, borrow)
		} else {
			var carry uint64
			accLo, carry = bits.Add64(accLo, tLo, 0)
			accHi, _ = bits.Add64(accHi, tHi, carry)
		}
	}
	addTerm(a)
	addTerm(b)

	n := accHi
	guard := accLo>>63 != 0
	sticky = sticky || accLo<<1 != 0
	n = roundUnits(m, n, guard, sticky, negative)
	return f.assembleBits(m, n, qe, negative)
}

func borrowOne(accHi, accLo *uint64) {
	var borrow uint64
	*accLo, borrow = bits.Sub64(*accLo, 1, 0)
	*accHi -= borrow
}
