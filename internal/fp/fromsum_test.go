package fp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refFromSum rounds hi+lo exactly via big.Float.
func refFromSum(f Format, hi, lo float64, m Mode) uint64 {
	v := new(big.Float).SetPrec(2200).SetFloat64(hi)
	v.Add(v, new(big.Float).SetFloat64(lo))
	return f.FromBig(v, m)
}

func TestFromSumMatchesBigRandom(t *testing.T) {
	formats := []Format{Bfloat16, TensorFloat32, MustFormat(22, 8), MustFormat(24, 8), MustFormat(49, 10)}
	rng := rand.New(rand.NewSource(90))
	for _, f := range formats {
		for trial := 0; trial < 60000; trial++ {
			hi := math.Ldexp(rng.Float64()+0.5, rng.Intn(300)-150)
			if rng.Intn(2) == 0 {
				hi = -hi
			}
			ulp := math.Abs(math.Nextafter(hi, math.Inf(1)) - hi)
			lo := (rng.Float64() - 0.5) * ulp
			if math.Abs(lo) > math.Abs(hi)/4 {
				continue
			}
			for _, m := range AllModes {
				got := f.FromSum(hi, lo, m)
				want := refFromSum(f, hi, lo, m)
				if got != want {
					t.Fatalf("%v FromSum(%x, %x, %v) = %#x want %#x",
						f, hi, lo, m, got, want)
				}
			}
		}
	}
}

// Adversarial structure: hi exactly on format boundaries (representable
// values, midpoints, powers of two) with tiny lo of both signs — the cases
// where the residual decides the rounding.
func TestFromSumBoundaries(t *testing.T) {
	f := MustFormat(20, 8)
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40000; trial++ {
		bitsv := uint64(rng.Int63()) & (f.NumValues() - 1)
		if !f.IsFinite(bitsv) || f.IsZero(bitsv) {
			continue
		}
		v := f.Decode(bitsv)
		var hi float64
		switch trial % 3 {
		case 0:
			hi = v // exactly representable
		case 1: // midpoint to the next value
			nb := f.NextUp(bitsv)
			if !f.IsFinite(nb) {
				continue
			}
			hi = v + (f.Decode(nb)-v)/2
		default: // power of two
			hi = math.Ldexp(1, rng.Intn(200)-100)
			if rng.Intn(2) == 0 {
				hi = -hi
			}
		}
		if hi == 0 || math.IsInf(hi, 0) {
			continue
		}
		mag := math.Abs(hi)
		los := []float64{
			mag * 1e-17, -mag * 1e-17,
			mag * math.Ldexp(1, -40), -mag * math.Ldexp(1, -40),
			math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
			0,
		}
		for _, lo := range los {
			for _, m := range AllModes {
				got := f.FromSum(hi, lo, m)
				want := refFromSum(f, hi, lo, m)
				if got != want {
					t.Fatalf("FromSum(%x, %x, %v) = %#x want %#x", hi, lo, m, got, want)
				}
			}
		}
	}
}

// Range edges: overflow, underflow, subnormal results.
func TestFromSumRangeEdges(t *testing.T) {
	f := Bfloat16
	cases := []struct{ hi, lo float64 }{
		{f.MaxFiniteValue(), f.MaxFiniteValue() * 1e-17},
		{f.MaxFiniteValue() * 1.01, -f.MaxFiniteValue() * 1e-16},
		{f.MinSubnormalValue(), -f.MinSubnormalValue() * 1e-18},
		{f.MinSubnormalValue() / 4, f.MinSubnormalValue() * 1e-19},
		{math.Ldexp(1, 300), math.Ldexp(1, 240)},
		{math.Ldexp(1, -300), -math.Ldexp(1, -360)},
		{-math.Ldexp(1.5, 100), math.Ldexp(1, 60)},
	}
	for _, c := range cases {
		for _, m := range AllModes {
			got := f.FromSum(c.hi, c.lo, m)
			want := refFromSum(f, c.hi, c.lo, m)
			if got != want {
				t.Errorf("FromSum(%x, %x, %v) = %#x want %#x", c.hi, c.lo, m, got, want)
			}
		}
	}
	// Degenerate arguments defer to FromFloat64.
	if f.FromSum(0, 0, RoundNearestEven) != f.Zero(false) {
		t.Error("zero hi")
	}
	if f.FromSum(math.Inf(1), 1, RoundNearestEven) != f.Inf(false) {
		t.Error("inf hi")
	}
	if f.FromSum(1.5, 0, RoundNearestEven) != f.FromFloat64(1.5, RoundNearestEven) {
		t.Error("zero lo")
	}
}

func BenchmarkFromSum(b *testing.B) {
	f := MustFormat(49, 10)
	rng := rand.New(rand.NewSource(92))
	his := make([]float64, 1024)
	los := make([]float64, 1024)
	for i := range his {
		his[i] = math.Ldexp(rng.Float64()+0.5, rng.Intn(100)-50)
		los[i] = his[i] * (rng.Float64() - 0.5) * 1e-16
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.FromSum(his[i&1023], los[i&1023], RoundNearestEven)
	}
	_ = sink
}
