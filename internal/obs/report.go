package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// ReportVersion is the schema version of report.json. Bump it whenever a
// field is renamed, removed or changes meaning; additions are
// backward-compatible and do not require a bump.
const ReportVersion = 1

// Report is the serializable outcome of one observed run. Counters is the
// deterministic section: identical for every worker count. Volatile holds
// scheduling-dependent gauges, and the span tree carries timings — both
// are excluded from determinism comparisons.
type Report struct {
	Version  int               `json:"version"`
	Command  string            `json:"command,omitempty"`
	Meta     map[string]string `json:"meta,omitempty"`
	Counters map[string]int64  `json:"counters"`
	Volatile map[string]int64  `json:"volatile,omitempty"`
	Spans    *SpanReport       `json:"spans,omitempty"`
}

// SpanReport is one node of the serialized span tree. Start and duration
// are nanoseconds on the recorder's monotonic clock.
type SpanReport struct {
	Name     string           `json:"name"`
	StartNS  int64            `json:"start_ns"`
	DurNS    int64            `json:"dur_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Volatile map[string]int64 `json:"volatile,omitempty"`
	Children []*SpanReport    `json:"children,omitempty"`
}

// Report snapshots the recorder into a versioned report: the span tree
// (children sorted by name for stable output), the taxonomy counters
// summed over the tree — every Taxonomy entry present, zero-valued when
// untouched — and the volatile gauges summed likewise. Safe to call while
// spans are still being mutated, though a quiesced tree reads better.
//
// This is read-side API: the obsleak analyzer forbids calling it from the
// coefficient-path packages.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Version:  ReportVersion,
		Counters: make(map[string]int64),
		Volatile: make(map[string]int64),
	}
	for _, c := range Taxonomy() {
		rep.Counters[string(c)] = 0
	}
	if r == nil {
		return rep
	}
	rep.Spans = r.root.snapshot(r.now())
	rep.Spans.aggregate(rep.Counters, rep.Volatile)
	if len(rep.Volatile) == 0 {
		rep.Volatile = nil
	}
	return rep
}

// snapshot copies one span (and its subtree) under its lock. An open span
// is reported with a duration up to now.
func (s *Span) snapshot(now int64) *SpanReport {
	s.mu.Lock()
	out := &SpanReport{Name: s.name, StartNS: s.startNS, DurNS: s.durNS}
	if out.DurNS == 0 {
		out.DurNS = now - s.startNS
	}
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for c, n := range s.counters { // order-independent map merge
			out.Counters[string(c)] = n
		}
	}
	if len(s.volatile) > 0 {
		out.Volatile = make(map[string]int64, len(s.volatile))
		for k, n := range s.volatile { // order-independent map merge
			out.Volatile[k] = n
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot(now))
	}
	// Piece spans are attached by concurrent pool workers, so insertion
	// order is scheduling-dependent; sorting by name (stably — stage names
	// are unique per parent, piece names are zero-padded) keeps the
	// serialized tree stable. Chronology stays visible through start_ns.
	sort.SliceStable(out.Children, func(i, j int) bool { return out.Children[i].Name < out.Children[j].Name })
	return out
}

// aggregate sums the subtree's counters and gauges into the given maps.
func (sr *SpanReport) aggregate(counters, volatile map[string]int64) {
	for k, n := range sr.Counters { // order-independent map merge
		counters[k] += n
	}
	for k, n := range sr.Volatile { // order-independent map merge
		volatile[k] += n
	}
	for _, c := range sr.Children {
		c.aggregate(counters, volatile)
	}
}

// WriteJSON writes the report as indented JSON. Map keys serialize in
// sorted order (encoding/json's map contract), so the counters section is
// byte-stable given equal values.
func (rep *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the report to path (0644), creating or truncating it.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Render writes the human span-tree view behind the commands' -v flag:
// one line per span with its duration and non-zero counters, children
// indented, followed by the aggregated counter taxonomy and gauges.
func (rep *Report) Render(w io.Writer) {
	if rep.Spans != nil {
		rep.Spans.render(w, 0)
	}
	fmt.Fprintf(w, "counters:\n")
	for _, k := range sortedKeys(rep.Counters) {
		fmt.Fprintf(w, "  %-28s %d\n", k, rep.Counters[k])
	}
	if len(rep.Volatile) > 0 {
		fmt.Fprintf(w, "volatile:\n")
		for _, k := range sortedKeys(rep.Volatile) {
			fmt.Fprintf(w, "  %-28s %d\n", k, rep.Volatile[k])
		}
	}
}

func (sr *SpanReport) render(w io.Writer, depth int) {
	var kv strings.Builder
	for _, k := range sortedKeys(sr.Counters) {
		fmt.Fprintf(&kv, " %s=%d", k, sr.Counters[k])
	}
	fmt.Fprintf(w, "%s%s %s%s\n", strings.Repeat("  ", depth), sr.Name, fmtNS(sr.DurNS), kv.String())
	for _, c := range sr.Children {
		c.render(w, depth+1)
	}
}

// fmtNS renders nanoseconds with a readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		//lint:ignore mapiter keys are sorted immediately below before any use, erasing map order.
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
