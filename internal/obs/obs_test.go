package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: the disabled layer (nil recorder/span) must no-op on
// every write-side call — this is what keeps instrumentation free when
// -report/-v are off.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	root := r.Root()
	if root != nil {
		t.Fatalf("nil Recorder.Root() = %v, want nil", root)
	}
	child := root.Child("x")
	if child != nil {
		t.Fatalf("nil Span.Child() = %v, want nil", child)
	}
	root.Add(CtrClarksonIters, 5)
	root.Gauge(GaugePoolJobs, 5)
	root.End()
	ctx := WithSpan(context.Background(), nil)
	if sp := SpanFrom(ctx); sp != nil {
		t.Fatalf("SpanFrom after WithSpan(nil) = %v, want nil", sp)
	}
	rep := r.Report()
	if rep == nil || len(rep.Counters) != len(Taxonomy()) {
		t.Fatalf("nil Recorder.Report() = %+v, want zero-filled taxonomy", rep)
	}
}

func TestSpanTreeAndAggregation(t *testing.T) {
	r := New("run")
	fn := r.Root().Child("cospi")
	solve := fn.Child("solve")
	solve.Add(CtrClarksonIters, 7)
	solve.Add(CtrClarksonIters, 3)
	reduce := solve.Child("reduce")
	reduce.Add(CtrRowsReduced, 42)
	reduce.End()
	solve.End()
	fn.End()
	r.Root().End()

	rep := r.Report()
	if rep.Version != ReportVersion {
		t.Errorf("Version = %d, want %d", rep.Version, ReportVersion)
	}
	if got := rep.Counters[string(CtrClarksonIters)]; got != 10 {
		t.Errorf("aggregated clarkson.iters = %d, want 10", got)
	}
	if got := rep.Counters[string(CtrRowsReduced)]; got != 42 {
		t.Errorf("aggregated constraints.reduced = %d, want 42", got)
	}
	if got := rep.Counters[string(CtrStoreHits)]; got != 0 {
		t.Errorf("untouched store.hits = %d, want 0 (taxonomy zero-fill)", got)
	}
	if rep.Spans == nil || len(rep.Spans.Children) != 1 || rep.Spans.Children[0].Name != "cospi" {
		t.Fatalf("span tree root children = %+v, want [cospi]", rep.Spans)
	}
	s := rep.Spans.Children[0].Children
	if len(s) != 1 || s[0].Name != "solve" || len(s[0].Children) != 1 || s[0].Children[0].Name != "reduce" {
		t.Errorf("nesting = %+v, want cospi→solve→reduce", s)
	}
}

// TestReportContainsFullTaxonomy pins the acceptance criterion that every
// taxonomy counter appears in every report.
func TestReportContainsFullTaxonomy(t *testing.T) {
	rep := New("run").Report()
	for _, c := range Taxonomy() {
		if _, ok := rep.Counters[string(c)]; !ok {
			t.Errorf("report is missing taxonomy counter %q", c)
		}
	}
	if len(rep.Counters) != len(Taxonomy()) {
		t.Errorf("report has %d counters, taxonomy has %d", len(rep.Counters), len(Taxonomy()))
	}
}

// TestConcurrentPieceSpans mirrors the solve stage: pool workers attach
// children and counters concurrently; the snapshot must be complete and
// name-sorted.
func TestConcurrentPieceSpans(t *testing.T) {
	r := New("run")
	solve := r.Root().Child("solve")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps := solve.Child("piece " + string(rune('a'+i)))
			ps.Add(CtrClarksonAttempts, 1)
			ps.End()
		}(i)
	}
	wg.Wait()
	solve.End()
	rep := r.Report()
	kids := rep.Spans.Children[0].Children
	if len(kids) != 16 {
		t.Fatalf("got %d piece spans, want 16", len(kids))
	}
	for i := 1; i < len(kids); i++ {
		if kids[i-1].Name > kids[i].Name {
			t.Errorf("children not name-sorted: %q > %q", kids[i-1].Name, kids[i].Name)
		}
	}
	if got := rep.Counters[string(CtrClarksonAttempts)]; got != 16 {
		t.Errorf("aggregated attempts = %d, want 16", got)
	}
}

// TestCountersJSONStable: the counters section must serialize
// byte-identically for equal values regardless of insertion order — the
// property the workers-determinism test in internal/cli builds on.
func TestCountersJSONStable(t *testing.T) {
	a := New("run")
	a.Root().Add(CtrStoreHits, 2)
	a.Root().Add(CtrClarksonIters, 9)
	b := New("run")
	b.Root().Add(CtrClarksonIters, 9)
	b.Root().Add(CtrStoreHits, 2)
	ja, err := json.Marshal(a.Report().Counters)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Report().Counters)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("counter JSON differs by insertion order:\n%s\n%s", ja, jb)
	}
}

func TestRenderAndWriteJSON(t *testing.T) {
	r := New("run")
	fn := r.Root().Child("exp2")
	fn.Add(CtrOracleQueries, 123)
	fn.Gauge(GaugePoolJobs, 4)
	fn.End()
	r.Root().End()
	rep := r.Report()
	rep.Command = "rlibm-test"

	var tree bytes.Buffer
	rep.Render(&tree)
	out := tree.String()
	for _, want := range []string{"run ", "exp2 ", "oracle.queries=123", "counters:", "volatile:", "pool.jobs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Version != ReportVersion || back.Command != "rlibm-test" {
		t.Errorf("round-trip = version %d command %q", back.Version, back.Command)
	}
	if back.Counters[string(CtrOracleQueries)] != 123 {
		t.Errorf("round-trip oracle.queries = %d", back.Counters[string(CtrOracleQueries)])
	}
}

func TestContextThreading(t *testing.T) {
	r := New("run")
	ctx := WithSpan(context.Background(), r.Root())
	sp := SpanFrom(ctx)
	if sp != r.Root() {
		t.Fatalf("SpanFrom = %v, want root", sp)
	}
	child := sp.Child("stage")
	ctx2 := WithSpan(ctx, child)
	if SpanFrom(ctx2) != child {
		t.Fatal("nested WithSpan did not override")
	}
	if SpanFrom(ctx) != r.Root() {
		t.Fatal("outer context was mutated")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context should have no span")
	}
}
