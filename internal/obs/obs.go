// Package obs is the pipeline's observability layer: hierarchical spans
// with monotonic timings, a typed counter taxonomy, and a versioned
// run-report emitter (report.go). It is stdlib-only and deterministic by
// default — the layer observes the pipeline but may never influence it.
//
// # Write-only from the coefficient path
//
// The generator's contract is that emitted coefficients are bit-identical
// with observability on or off. The obs API is therefore split:
//
//   - Write side — New, Root, Child, End, Add, Gauge, WithSpan, SpanFrom —
//     may be called from anywhere, including the coefficient-path packages
//     (internal/gen, internal/clarkson, internal/oracle, internal/pipeline,
//     internal/parallel). Every write-side method is nil-safe: a nil
//     *Recorder or *Span (observability disabled) makes every call a
//     no-op, so the instrumented hot paths cost one nil check.
//
//   - Read side — Report, Render, WriteJSON, WriteFile — turns the recorded
//     state into output. Calling it from a coefficient-path package would
//     let counters feed back into generation; the rlibm-lint obsleak
//     analyzer forbids exactly that (internal/cli and the commands, which
//     are outside the coefficient path, emit the reports).
//
// # Determinism
//
// Counters (the typed Counter taxonomy) count deterministic work — solver
// iterations, constraint rows, artifact-store probes — and are identical
// for every worker count; the determinism test in internal/cli pins this.
// Timings and gauges (span durations, worker-pool utilization) are
// volatile by construction and live in a separate section of the report,
// excluded from any determinism comparison, mirroring how gen.Stats keeps
// Duration and the oracle path counters out of the solve artifact.
//
// # Span hierarchy
//
// Spans nest run → function → stage → piece: each command starts one root
// span ("run"), internal/cli opens a child span per generated function,
// pipeline.Run opens a child span per stage (verify wraps solve, which
// wraps reduce, which wraps enumerate — an outer stage's duration includes
// the stages it triggered), and the solve stage opens one span per
// concurrent piece solve. Span mutation is mutex-guarded, so pool workers
// may attach children and counters concurrently.
package obs

import (
	"context"
	"sync"
	"time"
)

// Counter names one deterministic counter of the taxonomy. Counter values
// must be identical for every worker count and must never feed back into
// generation; see the package comment.
type Counter string

// The counter taxonomy. Every counter appears in a report (zero-valued
// when the run never touched its subsystem), so the report schema is
// stable across runs and configurations.
const (
	// Clarkson solver effort (internal/clarkson via the solve stage).
	CtrClarksonAttempts        Counter = "clarkson.attempts"         // Solve calls (term-count attempts)
	CtrClarksonIters           Counter = "clarkson.iters"            // sampling iterations
	CtrClarksonSamples         Counter = "clarkson.samples"          // iterations that drew and solved a weighted sample
	CtrClarksonWeightDoublings Counter = "clarkson.weight_doublings" // lucky iterations (violated weights doubled)
	CtrClarksonExactSolves     Counter = "clarkson.exact_solves"     // escalations to the exact rational simplex

	// Rescue-ladder rungs consumed by kernels whose baseline search ran dry
	// (internal/gen solveKernel).
	CtrRescueSeedRotations     Counter = "rescue.seed_rotations"
	CtrRescueBudgetEscalations Counter = "rescue.budget_escalations"
	CtrRescueDegradations      Counter = "rescue.degradations"

	// Oracle query paths (internal/oracle; recorded as a per-function
	// Stats delta by internal/cli).
	CtrOracleQueries        Counter = "oracle.queries"         // total queries answered
	CtrOracleCacheHits      Counter = "oracle.cache_hits"      // identity-sharing cache answers
	CtrOracleZivEscalations Counter = "oracle.ziv_escalations" // shared-path answers too ambiguous to round
	CtrOracleFullEvals      Counter = "oracle.full_evals"      // full Ziv evaluations
	CtrOracleShortcuts      Counter = "oracle.shortcuts"       // special/exact/clamp/anchor answers

	// Constraint-system size (enumerate and reduce stages).
	CtrRowsEnumerated Counter = "constraints.enumerated" // raw pre-merge constraints
	CtrRowsReduced    Counter = "constraints.reduced"    // merged rows after reduction

	// Special-input handling (solve and verify stages).
	CtrSpecialsResolved Counter = "solve.specials_resolved" // round-to-odd proxies computed
	CtrVerifyPatched    Counter = "verify.patched"          // inputs patched by the repair pass

	// Artifact store (internal/pipeline).
	CtrStoreHits         Counter = "store.hits"
	CtrStoreMisses       Counter = "store.misses"
	CtrStoreBytesRead    Counter = "store.bytes_read"
	CtrStoreBytesWritten Counter = "store.bytes_written"

	// Store eviction (internal/pipeline EvictingStore; recorded once per
	// run by internal/cli from the wrapper's stats snapshot, like the
	// remote transport counters below). Evictions counts artifacts the
	// LRU budget deleted; bytes_live is the tracked byte footprint at the
	// end of the run. Both depend on access order under concurrency, so —
	// like the transport retry count — they describe the run that
	// happened rather than a worker-count-invariant quantity.
	CtrStoreEvictions Counter = "store.evictions"
	CtrStoreBytesLive Counter = "store.bytes_live"

	// Remote store transport (internal/pipeline RemoteStore; recorded
	// once per run by internal/cli from the client's RemoteStats
	// snapshot). One round trip per store-operation attempt, so the
	// counts are deterministic for a fixed workload and injection plan;
	// retries count transport failures consumed by the reconnect budget.
	CtrRemoteRoundTrips Counter = "store.remote.round_trips"
	CtrRemoteRetries    Counter = "store.remote.retries"
	CtrRemoteBytesSent  Counter = "store.remote.bytes_sent"
	CtrRemoteBytesRecv  Counter = "store.remote.bytes_recv"

	// Batched serving-path evaluation (internal/eval). Recorded once per
	// EvalBatch call — never per input — so the hot loop stays free of
	// locks and allocation; a kernel without an attached span records
	// nothing (nil-safe writes, like every other instrumented path).
	CtrEvalBatches     Counter = "eval.batches"      // EvalBatch calls
	CtrEvalInputs      Counter = "eval.inputs"       // inputs across those calls
	CtrEvalSpecialHits Counter = "eval.special_hits" // special-path and special-table answers
	CtrEvalTruncated   Counter = "eval.truncated"    // truncated-prefix polynomial evaluations
	CtrEvalFull        Counter = "eval.full"         // full (largest-level) polynomial evaluations

	// Long-lived evaluation service (internal/serve). Requests counts
	// every admission attempt on either endpoint; shed counts requests
	// rejected because the admission queue was full (HTTP 429), canceled
	// counts requests cut short by their deadline or the client going
	// away, and panics counts handler panics isolated to one request.
	// Reloads/reload.failed count coefficient hot-swaps from the artifact
	// store — a failed reload keeps serving the previous kernel set.
	CtrServeRequests     Counter = "serve.requests"
	CtrServeShed         Counter = "serve.shed"
	CtrServeCanceled     Counter = "serve.canceled"
	CtrServePanics       Counter = "serve.panics"
	CtrServeReloads      Counter = "serve.reloads"
	CtrServeReloadFailed Counter = "serve.reload.failed"
)

// Taxonomy returns every counter, in report order.
func Taxonomy() []Counter {
	return []Counter{
		CtrClarksonAttempts, CtrClarksonIters, CtrClarksonSamples,
		CtrClarksonWeightDoublings, CtrClarksonExactSolves,
		CtrRescueSeedRotations, CtrRescueBudgetEscalations, CtrRescueDegradations,
		CtrOracleQueries, CtrOracleCacheHits, CtrOracleZivEscalations,
		CtrOracleFullEvals, CtrOracleShortcuts,
		CtrRowsEnumerated, CtrRowsReduced,
		CtrSpecialsResolved, CtrVerifyPatched,
		CtrStoreHits, CtrStoreMisses, CtrStoreBytesRead, CtrStoreBytesWritten,
		CtrStoreEvictions, CtrStoreBytesLive,
		CtrRemoteRoundTrips, CtrRemoteRetries, CtrRemoteBytesSent, CtrRemoteBytesRecv,
		CtrEvalBatches, CtrEvalInputs, CtrEvalSpecialHits, CtrEvalTruncated, CtrEvalFull,
		CtrServeRequests, CtrServeShed, CtrServeCanceled, CtrServePanics,
		CtrServeReloads, CtrServeReloadFailed,
	}
}

// Volatile gauge names (worker-pool utilization, recorded by
// internal/parallel). Gauges are additive like counters but depend on
// scheduling and the worker count, so they live in the report's volatile
// section and are excluded from determinism comparisons.
const (
	GaugePoolInvocations = "pool.invocations" // ForEachErr calls observed
	GaugePoolJobs        = "pool.jobs"        // jobs executed across those calls
	GaugePoolWorkers     = "pool.workers"     // worker goroutines summed over calls
	GaugePoolBusyNS      = "pool.busy_ns"     // summed worker-goroutine lifetimes
	GaugePoolWallNS      = "pool.wall_ns"     // summed pool wall-clock spans
)

// Recorder owns one run's observability state: a monotonic time base and
// the root of the span tree. A nil *Recorder is the disabled layer — every
// method no-ops and Root returns a nil *Span that no-ops too.
type Recorder struct {
	start time.Time
	root  *Span
}

// New returns a live recorder whose root span has the given name
// (conventionally "run"). The root span is open; End it (or not — Report
// measures to now) before emitting.
func New(name string) *Recorder {
	//lint:ignore wallclock observability time base only; span timings never feed a coefficient.
	r := &Recorder{start: time.Now()} //lint:ignore nondetflow the recorder's span travels with serving/reload code that also derives store keys, but key bytes come only from function names and options — no span state reaches an Enc, Seal or fingerprint.
	r.root = &Span{rec: r, name: name}
	return r
}

// Root returns the run's root span; nil-safe.
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// now returns nanoseconds since the recorder's start on the monotonic
// clock.
func (r *Recorder) now() int64 {
	//lint:ignore wallclock observability timings only; the value never feeds a coefficient.
	return int64(time.Since(r.start))
}

// Span is one node of the timing tree. All methods are nil-safe and safe
// for concurrent use: the solve stage attaches piece spans from pool
// workers.
type Span struct {
	rec  *Recorder
	name string

	mu       sync.Mutex
	startNS  int64
	durNS    int64
	children []*Span
	counters map[Counter]int64
	volatile map[string]int64
}

// Child opens a new child span; End it when its work completes.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, startNS: s.rec.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. A second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.rec.now()
	s.mu.Lock()
	if s.durNS == 0 {
		s.durNS = now - s.startNS
	}
	s.mu.Unlock()
}

// Add increments a deterministic counter on the span. Report sums counters
// over the whole tree.
func (s *Span) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[Counter]int64)
	}
	s.counters[c] += n
	s.mu.Unlock()
}

// Gauge adds to a volatile (scheduling-dependent) gauge on the span; see
// the Gauge* names above.
func (s *Span) Gauge(name string, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	if s.volatile == nil {
		s.volatile = make(map[string]int64)
	}
	s.volatile[name] += n
	s.mu.Unlock()
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// WithSpan returns a context carrying s as the current span. A nil span
// returns ctx unchanged, so a disabled recorder stays invisible.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the current span of ctx, or nil when none (or a
// disabled recorder) is attached.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
