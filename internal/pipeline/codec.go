package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt marks an artifact that cannot be trusted: truncated, failing
// its checksum, carrying the wrong magic/codec/version, or decoding to an
// inconsistent value. The stage runner treats it as a cache miss and
// regenerates; it is never a silent partial read.
var ErrCorrupt = errors.New("pipeline: corrupt artifact")

// frameMagic opens every sealed artifact file. The trailing '1' is the
// frame-layout version; a future frame change replaces the magic
// wholesale.
var frameMagic = [8]byte{'R', 'L', 'B', 'M', 'A', 'R', 'T', '1'}

// checksumSize is the size of the trailing SHA-256 checksum.
const checksumSize = sha256.Size

// Seal frames a codec payload for storage: magic, codec name, codec
// version, payload length, payload, then a SHA-256 checksum over
// everything before it. Every field is fixed-width little-endian, so
// sealing is deterministic: equal payloads seal to equal bytes.
func Seal(name string, version uint32, payload []byte) []byte {
	var e Enc
	e.buf = append(e.buf, frameMagic[:]...)
	e.Int(len(name))
	e.buf = append(e.buf, name...)
	e.U32(version)
	e.U64(uint64(len(payload)))
	e.buf = append(e.buf, payload...)
	sum := sha256.Sum256(e.buf)
	return append(e.buf, sum[:]...)
}

// Unseal validates a sealed frame and returns its payload. Any framing
// problem — short file, bad magic, checksum mismatch, or a codec
// name/version other than the expected one — returns an error wrapping
// ErrCorrupt.
func Unseal(data []byte, name string, version uint32) ([]byte, error) {
	if len(data) < len(frameMagic)+checksumSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any frame", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := NewDec(body)
	var magic [8]byte
	copy(magic[:], d.bytes(len(frameMagic)))
	if magic != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	gotName := string(d.bytes(d.Int()))
	gotVersion := d.U32()
	payLen := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if gotName != name || gotVersion != version {
		return nil, fmt.Errorf("%w: artifact is %s@v%d, want %s@v%d", ErrCorrupt, gotName, gotVersion, name, version)
	}
	payload := d.bytes(int(payLen))
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return payload, nil
}

// CheckFrame verifies the outer frame of a sealed artifact — magic and
// trailing SHA-256 checksum — without knowing which codec produced it.
// Store.Audit uses it to validate a whole cache directory.
func CheckFrame(data []byte) error {
	if len(data) < len(frameMagic)+checksumSize {
		return fmt.Errorf("%w: %d bytes is shorter than any frame", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var magic [8]byte
	copy(magic[:], body)
	if magic != frameMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	return nil
}

// Enc is the deterministic artifact encoder: fixed-width little-endian
// integers, float64 as raw IEEE bits. Equal values always encode to equal
// bytes, which is what makes warm-cache output byte-comparable to cold
// output.
type Enc struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U32 appends a fixed-width uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 as its two's-complement bits.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its exact IEEE-754 bits (NaNs and signed
// zeros round-trip bit-identically).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Byte appends one raw byte.
func (e *Enc) Byte(v byte) { e.buf = append(e.buf, v) }

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(v []byte) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(v string) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// Dec decodes an Enc payload. Errors are sticky: the first bounds or
// validity failure wedges the decoder into an ErrCorrupt state, every
// subsequent read returns zero values, and Err/Done report the failure —
// a decode can never silently consume garbage.
type Dec struct {
	data []byte
	off  int
	err  error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{data: data} }

// fail wedges the decoder.
func (d *Dec) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// bytes consumes and returns the next n raw bytes.
func (d *Dec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.data)-d.off {
		d.fail("truncated read of %d bytes at offset %d of %d", n, d.off, len(d.data))
		return nil
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

// U32 reads a fixed-width uint32.
func (d *Dec) U32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width uint64.
func (d *Dec) U64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64 from its IEEE bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Dec) Bool() bool {
	b := d.bytes(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail("invalid bool byte %d", b[0])
	return false
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Blob reads a length-prefixed byte slice (a copy, so the decoder's
// backing buffer can be reused).
func (d *Dec) Blob() []byte {
	n := d.Len()
	b := d.bytes(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.Len()
	b := d.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Len reads a slice length and sanity-bounds it: a length that is
// negative or larger than the number of unread bytes (every element
// encodes at least one byte) is corruption, caught before any allocation
// could balloon.
func (d *Dec) Len() int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > len(d.data)-d.off {
		d.fail("implausible length %d with %d bytes left", n, len(d.data)-d.off)
		return 0
	}
	return n
}

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Done returns the sticky error, or an ErrCorrupt if trailing bytes
// remain unconsumed (a payload must decode exactly).
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing bytes after decode", ErrCorrupt, len(d.data)-d.off)
	}
	return nil
}
