package pipeline

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// Store-server connection handling: concurrent clients are served each on
// their own goroutine, the connection cap drops the excess without harming
// admitted clients, and the idle deadline reaps abandoned connections.

// startServeWith serves backing with opts on a loopback listener and tears
// it down with the test. It returns the dial address.
func startServeWith(t *testing.T, backing Store, opts ServeOptions) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ServeWith(l, backing, opts, nil); err != nil {
			t.Errorf("ServeWith: %v", err)
		}
	}()
	t.Cleanup(func() {
		l.Close()
		<-done
	})
	return l.Addr().String()
}

// TestServeConcurrentClients: eight clients on one server, each writing,
// reading back, and deleting its own keys while reading a shared key the
// others also read — every byte exact, the backing audit clean. Run under
// -race this is the server's data-race gate.
func TestServeConcurrentClients(t *testing.T) {
	backing := NewMemStore()
	addr := startServeWith(t, backing, ServeOptions{MaxConns: 16, IdleTimeout: time.Minute})

	shared := Key{Func: "exp2", Stage: "shared", Fingerprint: "s"}
	sharedBytes := Seal(testCodec.Name, testCodec.Version, []byte{0xAA, 0xBB})
	if err := backing.Put(shared, testCodec.Name, testCodec.Version, sharedBytes); err != nil {
		t.Fatal(err)
	}

	const clients, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := DialRemote(addr, 5*time.Second)
			if err != nil {
				errs[c] = err
				return
			}
			defer rs.Close()
			for r := 0; r < rounds; r++ {
				key := Key{Func: "exp2", Stage: "client", Fingerprint: fmt.Sprintf("c%d-r%d", c, r)}
				want := Seal(testCodec.Name, testCodec.Version, []byte{byte(c), byte(r)})
				if err := rs.Put(key, testCodec.Name, testCodec.Version, want); err != nil {
					errs[c] = fmt.Errorf("round %d put: %w", r, err)
					return
				}
				got, ok := rs.Get(key, testCodec.Name, testCodec.Version)
				if !ok || !bytes.Equal(got, want) {
					errs[c] = fmt.Errorf("round %d get: ok=%v equal=%v", r, ok, bytes.Equal(got, want))
					return
				}
				if got, ok := rs.Get(shared, testCodec.Name, testCodec.Version); !ok || !bytes.Equal(got, sharedBytes) {
					errs[c] = fmt.Errorf("round %d shared get: ok=%v", r, ok)
					return
				}
				if r%2 == 1 {
					if err := rs.Delete(key, testCodec.Name, testCodec.Version); err != nil {
						errs[c] = fmt.Errorf("round %d delete: %w", r, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
	if err := backing.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

// rawRequest performs one Get over an already-dialed raw connection.
func rawRequest(conn net.Conn) error {
	req := wireRequest{ID: 1, Op: opGet, Key: testKey(), Codec: testCodec.Name, Version: testCodec.Version}
	if err := writeFrame(conn, encodeRequest(req)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readFrame(conn)
	if err != nil {
		return err
	}
	resp, err := decodeResponse(frame)
	if err != nil {
		return err
	}
	if resp.ID != req.ID {
		return fmt.Errorf("response ID %d, want %d", resp.ID, req.ID)
	}
	return nil
}

// TestServeConnectionCap: with MaxConns admitted connections open, the
// next connection is dropped without a response; closing an admitted
// connection frees its slot for a new client.
func TestServeConnectionCap(t *testing.T) {
	addr := startServeWith(t, NewMemStore(), ServeOptions{MaxConns: 2})

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
	first, second := dial(), dial()
	defer first.Close()
	defer second.Close()
	// Both admitted connections answer requests.
	if err := rawRequest(first); err != nil {
		t.Fatalf("first admitted conn: %v", err)
	}
	if err := rawRequest(second); err != nil {
		t.Fatalf("second admitted conn: %v", err)
	}

	// The third connection is over the cap: the server closes it without
	// answering, which the client observes as EOF (or a reset).
	third := dial()
	defer third.Close()
	third.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(third); err == nil {
		t.Fatal("over-cap connection received a frame instead of being dropped")
	}

	// Freeing a slot admits a new connection. The release is async (the
	// per-conn goroutine must observe the close), so retry briefly.
	first.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		fresh := dial()
		err := rawRequest(fresh)
		fresh.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no connection admitted after a slot freed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeIdleTimeout: a connection that never sends a frame is dropped
// once the idle deadline passes, and new clients are unaffected.
func TestServeIdleTimeout(t *testing.T) {
	addr := startServeWith(t, NewMemStore(), ServeOptions{IdleTimeout: 50 * time.Millisecond})

	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := readFrame(idle); err == nil {
		t.Fatal("idle connection received a frame instead of being dropped")
	}

	rs, err := DialRemote(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	sealed := Seal(testCodec.Name, testCodec.Version, []byte{4})
	if err := rs.Put(testKey(), testCodec.Name, testCodec.Version, sealed); err != nil {
		t.Fatalf("put on a live connection: %v", err)
	}
	if got, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version); !ok || !bytes.Equal(got, sealed) {
		t.Fatalf("get after idle reap: ok=%v", ok)
	}
}
