package pipeline

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/fault"
)

// testCodec encodes a []float64 payload; enough structure to exercise the
// framing, the stage runner and the corruption paths.
var testCodec = Codec[[]float64]{
	Name:    "test-vector",
	Version: 1,
	Encode: func(e *Enc, v []float64) {
		e.Int(len(v))
		for _, x := range v {
			e.F64(x)
		}
	},
	Decode: func(d *Dec) ([]float64, error) {
		n := d.Len()
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, d.F64())
		}
		return out, d.Err()
	},
}

func testKey() Key { return Key{Func: "exp2", Stage: "enumerate", Fingerprint: "abc123"} }

func TestRunColdThenWarm(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, math.Pi, -0.5, math.Inf(1)}
	computes := 0
	compute := func(context.Context) ([]float64, error) { computes++; return want, nil }

	got, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute)
	if err != nil || hit {
		t.Fatalf("cold run: hit=%v err=%v", hit, err)
	}
	if len(got) != len(want) {
		t.Fatalf("cold value: %v", got)
	}
	got, hit, err = Run(context.Background(), st, testKey(), testCodec, nil, compute)
	if err != nil || !hit {
		t.Fatalf("warm run: hit=%v err=%v", hit, err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("warm value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	ev := st.Events()
	if len(ev) != 2 || ev[0].Hit || !ev[1].Hit {
		t.Errorf("events: %+v", ev)
	}
}

func TestRunNilStore(t *testing.T) {
	v, hit, err := Run(context.Background(), nil, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return []float64{7}, nil })
	if err != nil || hit || len(v) != 1 {
		t.Fatalf("nil store: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestRunComputeError(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, _, err := Run(context.Background(), st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure must not have been cached.
	if _, hit, _ := Run(context.Background(), st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return []float64{1}, nil }); hit {
		t.Fatal("failed compute was cached")
	}
}

// artifactFile returns the single .art file below dir.
func artifactFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".art" {
			found = p
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no artifact under %s (err=%v)", dir, err)
	}
	return found
}

func TestRunCorruptArtifactRegenerates(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	if _, _, err := Run(context.Background(), st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	path := artifactFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return want, nil })
	if err != nil || hit {
		t.Fatalf("corrupt artifact: hit=%v err=%v", hit, err)
	}
	if len(got) != 3 {
		t.Fatalf("regenerated value: %v", got)
	}
	// The regeneration rewrote a valid artifact.
	if _, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return want, nil }); err != nil || !hit {
		t.Fatalf("after regeneration: hit=%v err=%v", hit, err)
	}
}

func TestKeyComponentsAddressDistinctArtifacts(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testKey()
	variants := []Key{
		{Func: "exp", Stage: base.Stage, Fingerprint: base.Fingerprint},
		{Func: base.Func, Stage: "solve", Fingerprint: base.Fingerprint},
		{Func: base.Func, Stage: base.Stage, Fingerprint: "different"},
	}
	seen := map[string]bool{st.path(base, "c", 1): true}
	for _, k := range variants {
		p := st.path(k, "c", 1)
		if seen[p] {
			t.Errorf("key %+v collides", k)
		}
		seen[p] = true
	}
	if seen[st.path(base, "other-codec", 1)] || seen[st.path(base, "c", 2)] {
		t.Error("codec identity does not separate addresses")
	}
}

// TestSealUnsealProperty: every sealed payload unseals to itself, and any
// single bit flip or truncation is rejected with ErrCorrupt — never a
// silent partial read. testing/quick drives the seed.
func TestSealUnsealProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, rng.Intn(256))
		rng.Read(payload)
		sealed := Seal("prop", 3, payload)

		got, err := Unseal(sealed, "prop", 3)
		if err != nil || len(got) != len(payload) {
			return false
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		// Bit flip anywhere → ErrCorrupt.
		flipped := append([]byte(nil), sealed...)
		flipped[rng.Intn(len(flipped))] ^= 1 << uint(rng.Intn(8))
		if _, err := Unseal(flipped, "prop", 3); !errors.Is(err, ErrCorrupt) {
			return false
		}
		// Truncation anywhere → ErrCorrupt.
		if _, err := Unseal(sealed[:rng.Intn(len(sealed))], "prop", 3); !errors.Is(err, ErrCorrupt) {
			return false
		}
		// Wrong codec identity → ErrCorrupt.
		if _, err := Unseal(sealed, "other", 3); !errors.Is(err, ErrCorrupt) {
			return false
		}
		if _, err := Unseal(sealed, "prop", 4); !errors.Is(err, ErrCorrupt) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEncDecProperty: the primitive encoders round-trip exactly (floats by
// bits, including NaN and signed zero) and Done rejects trailing bytes.
func TestEncDecProperty(t *testing.T) {
	prop := func(u uint64, i int64, f float64, b bool) bool {
		var e Enc
		e.U32(uint32(u))
		e.U64(u)
		e.I64(i)
		e.Int(int(i))
		e.F64(f)
		e.Bool(b)
		d := NewDec(e.Bytes())
		ok := d.U32() == uint32(u) && d.U64() == u && d.I64() == i && d.Int() == int(i) &&
			math.Float64bits(d.F64()) == math.Float64bits(f) && d.Bool() == b
		return ok && d.Done() == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// Specials that quick never generates.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)} {
		var e Enc
		e.F64(f)
		d := NewDec(e.Bytes())
		if math.Float64bits(d.F64()) != math.Float64bits(f) {
			t.Errorf("%v does not round-trip", f)
		}
	}
	// Trailing garbage is corruption.
	var e Enc
	e.U64(1)
	d := NewDec(append(e.Bytes(), 0xff))
	d.U64()
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: err = %v", err)
	}
}

func TestDecLenGuards(t *testing.T) {
	var e Enc
	e.Int(1 << 50) // absurd length
	d := NewDec(e.Bytes())
	if n := d.Len(); n != 0 {
		t.Errorf("Len = %d", n)
	}
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v", err)
	}
	var e2 Enc
	e2.Int(-1)
	d2 := NewDec(e2.Bytes())
	d2.Len()
	if err := d2.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("negative length err = %v", err)
	}
}

func TestOpenEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestRunCanceledContext(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = Run(ctx, st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) {
		t.Error("compute ran despite cancellation")
		return nil, nil
	})
	if fault.CodeOf(err) != fault.CodeCanceled {
		t.Fatalf("err = %v, want CodeCanceled fault", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cause must unwrap to context.Canceled")
	}
	var fe *fault.Error
	if errors.As(err, &fe); fe.Stage != "enumerate" || fe.Func != "exp2" {
		t.Errorf("fault context = %+v", fe)
	}
}

// TestStoreInjectedFaults drives every store-level injection site through
// Run and asserts the stage recovers with the correct value while the
// store stays audit-clean.
func TestStoreInjectedFaults(t *testing.T) {
	want := []float64{4, 5, 6}
	compute := func(context.Context) ([]float64, error) { return want, nil }
	for _, tc := range []struct {
		site fault.Site
		warm bool // fault injected on the warm (read) path
	}{
		{fault.SiteStoreWrite, false},
		{fault.SiteStoreWriteShort, false},
		{fault.SiteStoreRead, true},
		{fault.SiteStoreBitFlip, true},
	} {
		t.Run(string(tc.site), func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			plan := fault.NewPlan().At(tc.site, 1)
			st.SetFaults(plan)
			// Cold run: write-path faults fire here.
			v, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute)
			if err != nil || hit || len(v) != len(want) {
				t.Fatalf("cold: v=%v hit=%v err=%v", v, hit, err)
			}
			// Second run: read-path faults fire here; either way the
			// value must come back correct without error.
			v, _, err = Run(context.Background(), st, testKey(), testCodec, nil, compute)
			if err != nil || len(v) != len(want) {
				t.Fatalf("second: v=%v err=%v", v, err)
			}
			for i := range want {
				if v[i] != want[i] {
					t.Fatalf("value[%d] = %v, want %v", i, v[i], want[i])
				}
			}
			if plan.Count(tc.site) == 0 {
				t.Fatalf("site %s never probed", tc.site)
			}
			// A third, fault-free run must hit the (re)written artifact.
			st.SetFaults(nil)
			if _, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute); err != nil || !hit {
				t.Fatalf("third: hit=%v err=%v", hit, err)
			}
			if err := st.Audit(); err != nil {
				t.Fatalf("store audit after %s: %v", tc.site, err)
			}
		})
	}
}

func TestAuditFlagsTempAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), st, testKey(), testCodec, nil, func(context.Context) ([]float64, error) { return []float64{1}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Audit(); err != nil {
		t.Fatalf("clean store: %v", err)
	}
	// A lingering temp file fails the audit.
	tmp := filepath.Join(dir, "exp2", "solve-abc.art.tmp123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Audit(); err == nil {
		t.Error("audit missed temp file")
	}
	os.Remove(tmp)
	// A truncated artifact fails the audit.
	path := artifactFile(t, dir)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Audit(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("audit of truncated artifact: %v", err)
	}
}

func TestCheckFrame(t *testing.T) {
	sealed := Seal("any-codec", 9, []byte{1, 2, 3})
	if err := CheckFrame(sealed); err != nil {
		t.Fatalf("valid frame: %v", err)
	}
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x10
	if err := CheckFrame(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped frame: %v", err)
	}
	if err := CheckFrame(sealed[:4]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short frame: %v", err)
	}
}
