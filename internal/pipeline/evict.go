package pipeline

import (
	"container/list"
	"sync"

	"repro/internal/fault"
)

// StageClaim names the advisory-claim stage of the distributed work
// protocol (internal/gen publishes a claim artifact next to each work
// unit it computes). The constant lives here because the evicting store
// pins the stage: a claim IS the in-progress marker of a distributed unit
// — a work-unit artifact only exists once its computation finished — so
// the eviction invariant "never evict a claimed or in-progress artifact"
// reduces to "never evict a claim artifact". Claims are a few dozen bytes
// each, so pinning them cannot defeat the byte budget.
const StageClaim = "claim"

// EvictingStore bounds a backing store with a least-recently-used byte
// budget, so a long-lived shared cache survives a campaign without
// unbounded growth. It tracks every artifact observed through it — put or
// read — and, whenever the tracked bytes exceed the budget, deletes the
// least-recently-used unpinned artifact from the backing store until the
// budget holds again. Eviction removes cache entries only: the pipeline
// treats a missing artifact as a cold stage and recomputes bytes that are
// deterministic by construction, so an evicted-then-refetched artifact is
// byte-identical to the original and correctness never depends on what
// the policy keeps.
//
// Pinning is by stage: claim artifacts (StageClaim) are never evicted —
// they are the liveness markers of in-progress distributed units, and
// evicting one would make a live peer's work unit look unclaimed (see
// StageClaim). Callers may pin further stages (e.g. "verify", to keep
// final results resident) via NewEvictingStore. The artifact that
// triggered an eviction pass is itself exempt from that pass, so a budget
// smaller than one artifact degrades to "keep only the newest" instead of
// evicting the bytes just written.
//
// Accounting covers what the wrapper has observed, not what pre-exists in
// the backing store under addresses it has never seen; a pre-existing
// artifact joins the accounting (and the LRU order) on its first Get.
// Wrap the backing store before serving or sharing it, and the two views
// coincide.
//
// The wrapper is transparent for everything else: events recorded through
// it land in the backing store's probe log, Audit audits the backing
// store, and SetFaults arms both the wrapper (SiteStoreEvict — a forced
// eviction of the LRU unpinned artifact regardless of budget) and the
// backing store's own sites.
type EvictingStore struct {
	backing Store
	max     int64
	pinned  map[string]bool

	mu           sync.Mutex
	entries      map[string]*evictEntry
	order        *list.List // front = least recently used; element values are addresses
	live         int64
	evictions    int64
	evictedBytes int64

	gate faultGate
}

// evictEntry is the accounting record of one tracked artifact: enough of
// its identity to delete it from the backing store, its size, and its
// position in the LRU order.
type evictEntry struct {
	key          Key
	codecName    string
	codecVersion uint32
	size         int64
	elem         *list.Element
}

// NewEvictingStore wraps backing with an LRU byte budget. maxBytes <= 0
// disables budget-driven eviction (the wrapper still tracks sizes and
// honors SiteStoreEvict). StageClaim is always pinned; pinStages names
// additional stages to protect from eviction.
func NewEvictingStore(backing Store, maxBytes int64, pinStages ...string) *EvictingStore {
	pinned := map[string]bool{StageClaim: true}
	for _, st := range pinStages {
		pinned[st] = true
	}
	return &EvictingStore{
		backing: backing,
		max:     maxBytes,
		pinned:  pinned,
		entries: make(map[string]*evictEntry),
		order:   list.New(),
	}
}

// EvictStats is a snapshot of the wrapper's accounting.
type EvictStats struct {
	Artifacts    int   // artifacts currently tracked
	BytesLive    int64 // tracked bytes, pinned artifacts included
	Evictions    int64 // artifacts evicted so far
	BytesEvicted int64 // bytes those evictions reclaimed
}

// Stats returns the current accounting snapshot.
func (s *EvictingStore) Stats() EvictStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return EvictStats{
		Artifacts:    len(s.entries),
		BytesLive:    s.live,
		Evictions:    s.evictions,
		BytesEvicted: s.evictedBytes,
	}
}

// Get reads through to the backing store. A hit touches (or adopts) the
// artifact's LRU entry; a miss — including an injected one — drops any
// stale accounting for the address, so an artifact deleted behind the
// wrapper's back stops counting against the budget.
func (s *EvictingStore) Get(key Key, codecName string, codecVersion uint32) ([]byte, bool) {
	data, ok := s.backing.Get(key, codecName, codecVersion)
	addr := contentAddress(key, codecName, codecVersion)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.dropLocked(addr)
		return nil, false
	}
	s.noteLocked(addr, key, codecName, codecVersion, int64(len(data)))
	s.evictLocked(addr)
	return data, true
}

// Put writes through to the backing store, then accounts the artifact as
// most recently used and runs an eviction pass that exempts it — the
// bytes just written are never the bytes reclaimed to make room for them.
func (s *EvictingStore) Put(key Key, codecName string, codecVersion uint32, data []byte) error {
	if err := s.backing.Put(key, codecName, codecVersion, data); err != nil {
		return err
	}
	addr := contentAddress(key, codecName, codecVersion)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteLocked(addr, key, codecName, codecVersion, int64(len(data)))
	if s.gate.faults().Should(fault.SiteStoreEvict) {
		s.evictOneLocked(addr)
	}
	s.evictLocked(addr)
	return nil
}

// Delete removes the artifact from the backing store and the accounting.
func (s *EvictingStore) Delete(key Key, codecName string, codecVersion uint32) error {
	err := s.backing.Delete(key, codecName, codecVersion)
	s.mu.Lock()
	s.dropLocked(contentAddress(key, codecName, codecVersion))
	s.mu.Unlock()
	return err
}

// Audit delegates to the backing store.
func (s *EvictingStore) Audit() error { return s.backing.Audit() }

// SetFaults arms the wrapper's own site (SiteStoreEvict) and the backing
// store's sites with one plan.
func (s *EvictingStore) SetFaults(p *fault.Plan) {
	s.gate.SetFaults(p)
	s.backing.SetFaults(p)
}

// The probe-event log stays the backing store's: wrapping must not split
// the event stream tests assert on.

func (s *EvictingStore) Events() []Event { return s.backing.Events() }
func (s *EvictingStore) ResetEvents()    { s.backing.ResetEvents() }
func (s *EvictingStore) CountEvents(stage string, hit bool) int {
	return s.backing.CountEvents(stage, hit)
}
func (s *EvictingStore) record(key Key, hit bool) { s.backing.record(key, hit) }

// noteLocked adopts or touches the accounting entry of addr: a known
// address moves to the most-recently-used end (adjusting its size if the
// artifact changed), an unknown one joins there.
func (s *EvictingStore) noteLocked(addr string, key Key, codecName string, codecVersion uint32, size int64) {
	if e, ok := s.entries[addr]; ok {
		s.live += size - e.size
		e.size = size
		s.order.MoveToBack(e.elem)
		return
	}
	e := &evictEntry{key: key, codecName: codecName, codecVersion: codecVersion, size: size}
	e.elem = s.order.PushBack(addr)
	s.entries[addr] = e
	s.live += size
}

// dropLocked forgets addr without touching the backing store.
func (s *EvictingStore) dropLocked(addr string) {
	e, ok := s.entries[addr]
	if !ok {
		return
	}
	s.order.Remove(e.elem)
	delete(s.entries, addr)
	s.live -= e.size
}

// evictLocked deletes least-recently-used unpinned artifacts (never the
// exempt address skip) until the budget holds or no victim remains.
func (s *EvictingStore) evictLocked(skip string) {
	for s.max > 0 && s.live > s.max {
		if !s.evictOneLocked(skip) {
			return
		}
	}
}

// evictOneLocked deletes the least-recently-used unpinned artifact other
// than skip, reporting whether one was evicted. A backing-store delete
// failure stops eviction — the bytes are still on disk, so forgetting the
// entry would underreport the live size forever.
func (s *EvictingStore) evictOneLocked(skip string) bool {
	for el := s.order.Front(); el != nil; el = el.Next() {
		addr := el.Value.(string)
		if addr == skip {
			continue
		}
		e := s.entries[addr]
		if s.pinned[e.key.Stage] {
			continue
		}
		if err := s.backing.Delete(e.key, e.codecName, e.codecVersion); err != nil {
			return false
		}
		s.dropLocked(addr)
		s.evictions++
		s.evictedBytes += e.size
		return true
	}
	return false
}
