package pipeline

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// The backend matrix: every Store implementation must expose identical
// observable behavior through Run — cold compute, warm hit, event log,
// injected store faults, audit — so the pipeline's correctness argument
// (caching is an optimization, never a correctness dependency) holds no
// matter which backend a command selects with -store.

// startRemote serves backing on a loopback listener and returns a
// connected client. The listener, server goroutine and client are torn
// down with the test.
func startRemote(t *testing.T, backing Store) *RemoteStore {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := Serve(l, backing, nil); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	rs, err := DialRemote(l.Addr().String(), 5*time.Second)
	if err != nil {
		l.Close()
		<-done
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rs.Close()
		l.Close()
		<-done
	})
	return rs
}

// backendCases returns one constructor per Store backend. The remote
// backend fronts a fresh MemStore, and faults scheduled through the
// returned Store's SetFaults reach the backend that owns each site: the
// client for store.remote.*, the backing for store.* (tests that need the
// latter schedule on the backing directly).
func backendCases(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"disk": func(t *testing.T) Store {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		"mem": func(t *testing.T) Store {
			return NewMemStore()
		},
		"remote": func(t *testing.T) Store {
			return startRemote(t, NewMemStore())
		},
		// The evicting wrapper with an ample budget must be observably
		// transparent: same events, same faults, same bytes.
		"evicting": func(t *testing.T) Store {
			return NewEvictingStore(NewMemStore(), 1<<30)
		},
	}
}

func TestBackendMatrixColdWarm(t *testing.T) {
	want := []float64{1, 2.5, -3}
	for name, open := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			st := open(t)
			computes := 0
			compute := func(context.Context) ([]float64, error) { computes++; return want, nil }

			v, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute)
			if err != nil || hit || len(v) != len(want) {
				t.Fatalf("cold: v=%v hit=%v err=%v", v, hit, err)
			}
			v, hit, err = Run(context.Background(), st, testKey(), testCodec, nil, compute)
			if err != nil || !hit || len(v) != len(want) {
				t.Fatalf("warm: v=%v hit=%v err=%v", v, hit, err)
			}
			if computes != 1 {
				t.Errorf("compute ran %d times, want 1", computes)
			}
			ev := st.Events()
			if len(ev) != 2 || ev[0].Hit || !ev[1].Hit {
				t.Errorf("events: %+v", ev)
			}
			if n := st.CountEvents("enumerate", true); n != 1 {
				t.Errorf("CountEvents(enumerate, hit) = %d, want 1", n)
			}
			if err := st.Audit(); err != nil {
				t.Errorf("audit: %v", err)
			}
			// Delete orphans the artifact; the next run recomputes.
			if err := st.Delete(testKey(), testCodec.Name, testCodec.Version); err != nil {
				t.Fatalf("delete: %v", err)
			}
			if _, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute); err != nil || hit {
				t.Fatalf("after delete: hit=%v err=%v", hit, err)
			}
		})
	}
}

// TestBackendMatrixStoreFaults drives the shared store injection sites
// through every backend: the run must recover with the correct value and
// the store must stay audit-clean. For the remote backend the store.*
// sites live in the backing store behind the server — the client only
// relays — so the plan is scheduled there.
func TestBackendMatrixStoreFaults(t *testing.T) {
	want := []float64{4, 5, 6}
	compute := func(context.Context) ([]float64, error) { return want, nil }
	sites := []fault.Site{
		fault.SiteStoreWrite, fault.SiteStoreWriteShort,
		fault.SiteStoreRead, fault.SiteStoreBitFlip,
	}
	for _, backend := range []string{"disk", "mem", "remote"} {
		for _, site := range sites {
			backend, site := backend, site
			t.Run(backend+"/"+string(site), func(t *testing.T) {
				var st, faulted Store
				switch backend {
				case "disk":
					ds, err := Open(t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					st, faulted = ds, ds
				case "mem":
					ms := NewMemStore()
					st, faulted = ms, ms
				case "remote":
					backing := NewMemStore()
					st, faulted = startRemote(t, backing), backing
				}
				plan := fault.NewPlan().At(site, 1)
				faulted.SetFaults(plan)

				v, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute)
				if err != nil || hit || len(v) != len(want) {
					t.Fatalf("cold: v=%v hit=%v err=%v", v, hit, err)
				}
				v, _, err = Run(context.Background(), st, testKey(), testCodec, nil, compute)
				if err != nil || len(v) != len(want) {
					t.Fatalf("second: v=%v err=%v", v, err)
				}
				for i := range want {
					if v[i] != want[i] {
						t.Fatalf("value[%d] = %v, want %v", i, v[i], want[i])
					}
				}
				if plan.Count(site) == 0 {
					t.Fatalf("site %s never probed", site)
				}
				faulted.SetFaults(nil)
				if _, hit, err := Run(context.Background(), st, testKey(), testCodec, nil, compute); err != nil || !hit {
					t.Fatalf("third: hit=%v err=%v", hit, err)
				}
				if err := st.Audit(); err != nil {
					t.Fatalf("audit after %s: %v", site, err)
				}
			})
		}
	}
}

// TestRunRejectsEmptyKeyComponents is the regression test for the key-
// validation contract: an empty Func, Stage or Fingerprint would alias
// distinct runs onto one content address, so Run must reject it with a
// typed CodeStoreKey fault before touching the store — with or without a
// store attached — and never invoke compute.
func TestRunRejectsEmptyKeyComponents(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Key{
		{Func: "", Stage: "enumerate", Fingerprint: "abc"},
		{Func: "exp2", Stage: "", Fingerprint: "abc"},
		{Func: "exp2", Stage: "enumerate", Fingerprint: ""},
		{},
	}
	for _, stores := range []struct {
		name string
		st   Store
	}{{"disk", st}, {"nil", nil}} {
		for _, k := range bad {
			_, _, err := Run(context.Background(), stores.st, k, testCodec, nil,
				func(context.Context) ([]float64, error) {
					t.Errorf("compute ran for invalid key %+v", k)
					return nil, nil
				})
			if fault.CodeOf(err) != fault.CodeStoreKey {
				t.Errorf("store=%s key=%+v: err = %v, want CodeStoreKey fault", stores.name, k, err)
			}
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Errorf("store=%s key=%+v: error is not a *fault.Error", stores.name, k)
			}
		}
	}
	// The store saw no traffic and logged no events.
	if ev := st.Events(); len(ev) != 0 {
		t.Errorf("invalid keys reached the store: %+v", ev)
	}
	// Probe applies the same validation.
	if _, ok := Probe(st, Key{}, testCodec); ok {
		t.Error("Probe accepted an empty key")
	}
	// A valid key still works.
	if _, _, err := Run(context.Background(), st, testKey(), testCodec, nil,
		func(context.Context) ([]float64, error) { return []float64{1}, nil }); err != nil {
		t.Errorf("valid key after rejections: %v", err)
	}
}

// TestEventLogConcurrency hammers the probe-event log of every backend
// from many goroutines — records interleaved with Events, CountEvents and
// ResetEvents readers — so the -race gate proves the log's locking. The
// final state is checked for consistency: after the hammering, one more
// record must land in a log whose length the reader can trust.
func TestEventLogConcurrency(t *testing.T) {
	for name, open := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			st := open(t)
			const writers, perWriter = 8, 50
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						st.record(Key{Func: "exp2", Stage: "solve", Fingerprint: "f"}, w%2 == 0)
					}
				}()
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						_ = st.Events()
						_ = st.CountEvents("solve", true)
						_ = st.CountEvents("", false)
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					st.ResetEvents()
				}
			}()
			wg.Wait()

			st.ResetEvents()
			if n := len(st.Events()); n != 0 {
				t.Fatalf("after reset: %d events", n)
			}
			st.record(Key{Func: "exp2", Stage: "verify", Fingerprint: "f"}, true)
			if n := st.CountEvents("verify", true); n != 1 {
				t.Errorf("CountEvents(verify, hit) = %d, want 1", n)
			}
			if ev := st.Events(); len(ev) != 1 || ev[0].Key.Stage != "verify" || !ev[0].Hit {
				t.Errorf("events: %+v", ev)
			}
		})
	}
}

// TestSetFaultsConcurrent races SetFaults against store operations on
// every backend; the atomic fault gate must make this clean under -race.
func TestSetFaultsConcurrent(t *testing.T) {
	for name, open := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			st := open(t)
			sealed := Seal(testCodec.Name, testCodec.Version, []byte{1})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					st.SetFaults(fault.NewPlan().At(fault.SiteStoreRead, 1000))
					st.SetFaults(nil)
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_ = st.Put(testKey(), testCodec.Name, testCodec.Version, sealed)
					_, _ = st.Get(testKey(), testCodec.Name, testCodec.Version)
				}
			}()
			wg.Wait()
		})
	}
}
