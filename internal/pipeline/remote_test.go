package pipeline

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fault"
)

// TestWireRoundTripProperty: requests and responses survive the wire
// encoding byte-exactly, and any bit flip in a frame is rejected by the
// seal, never misparsed.
func TestWireRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randStr := func() string {
			b := make([]byte, 1+rng.Intn(12))
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			return string(b)
		}
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		req := wireRequest{
			ID: rng.Uint64(), Op: byte(opGet + byte(rng.Intn(4))),
			Key:   Key{Func: randStr(), Stage: randStr(), Fingerprint: randStr()},
			Codec: randStr(), Version: rng.Uint32(), Data: data,
		}
		frame := encodeRequest(req)
		got, err := decodeRequest(frame)
		if err != nil || got.ID != req.ID || got.Op != req.Op || got.Key != req.Key ||
			got.Codec != req.Codec || got.Version != req.Version || !bytes.Equal(got.Data, req.Data) {
			return false
		}
		resp := wireResponse{
			ID: rng.Uint64(), Op: req.Op, Status: byte(rng.Intn(3)),
			Errmsg: randStr(), Data: data,
		}
		rframe := encodeResponse(resp)
		rgot, err := decodeResponse(rframe)
		if err != nil || rgot.ID != resp.ID || rgot.Status != resp.Status ||
			rgot.Errmsg != resp.Errmsg || !bytes.Equal(rgot.Data, resp.Data) {
			return false
		}
		// Any flipped bit fails the seal.
		flipped := append([]byte(nil), frame...)
		flipped[rng.Intn(len(flipped))] ^= 1 << uint(rng.Intn(8))
		if _, err := decodeRequest(flipped); !errors.Is(err, ErrCorrupt) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWireRejectsBadOpAndStatus(t *testing.T) {
	bad := encodeRequest(wireRequest{ID: 1, Op: 99, Key: testKey(), Codec: "c", Version: 1})
	if _, err := decodeRequest(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("op 99: err = %v", err)
	}
	badResp := encodeResponse(wireResponse{ID: 1, Op: opGet, Status: 99})
	if _, err := decodeResponse(badResp); !errors.Is(err, ErrCorrupt) {
		t.Errorf("status 99: err = %v", err)
	}
}

// TestRemoteTransientFaultRecovers: a connection drop or a truncated
// response frame at one scheduled occurrence is absorbed by the retry
// budget — the operation succeeds, a retry is counted, and the stored
// bytes come back byte-identical.
func TestRemoteTransientFaultRecovers(t *testing.T) {
	for _, site := range []fault.Site{fault.SiteRemoteConn, fault.SiteRemoteShort} {
		site := site
		t.Run(string(site), func(t *testing.T) {
			rs := startRemote(t, NewMemStore())
			sealed := Seal(testCodec.Name, testCodec.Version, []byte{1, 2, 3})
			if err := rs.Put(testKey(), testCodec.Name, testCodec.Version, sealed); err != nil {
				t.Fatalf("pre-fault put: %v", err)
			}
			plan := fault.NewPlan().At(site, 1)
			rs.SetFaults(plan)
			got, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version)
			if !ok || !bytes.Equal(got, sealed) {
				t.Fatalf("faulted get: ok=%v bytes equal=%v", ok, bytes.Equal(got, sealed))
			}
			if plan.Count(site) == 0 {
				t.Fatal("site never probed")
			}
			if rs.Stats().Retries == 0 {
				t.Error("transient fault consumed no retry")
			}
			if err := rs.Audit(); err != nil {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

// TestRemoteKeepsFiringFault: a remote fault that fires on every attempt
// exhausts the retry budget. Get degrades to a miss (the stage recomputes
// — bit-identical by determinism), Put fails with a typed CodeStoreIO
// fault carrying the attempt budget, and disarming the plan restores full
// service on the same client.
func TestRemoteKeepsFiringFault(t *testing.T) {
	rs := startRemote(t, NewMemStore())
	sealed := Seal(testCodec.Name, testCodec.Version, []byte{7})
	rs.SetFaults(fault.NewPlan().From(fault.SiteRemoteConn, 1))

	if _, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version); ok {
		t.Fatal("get through a dead transport reported a hit")
	}
	err := rs.Put(testKey(), testCodec.Name, testCodec.Version, sealed)
	if fault.CodeOf(err) != fault.CodeStoreIO {
		t.Fatalf("put err = %v, want CodeStoreIO fault", err)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Attempt != remoteAttempts {
		t.Errorf("fault context = %+v, want attempt %d", fe, remoteAttempts)
	}

	rs.SetFaults(nil)
	if err := rs.Put(testKey(), testCodec.Name, testCodec.Version, sealed); err != nil {
		t.Fatalf("put after disarm: %v", err)
	}
	got, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version)
	if !ok || !bytes.Equal(got, sealed) {
		t.Fatalf("get after disarm: ok=%v", ok)
	}
	if err := rs.Audit(); err != nil {
		t.Errorf("audit after recovery: %v", err)
	}
}

// TestRemoteRequestIDMismatch: a server that answers with the wrong
// request ID has lost framing; the client must abandon the exchange
// rather than accept the stray response.
func TestRemoteRequestIDMismatch(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					frame, err := readFrame(conn)
					if err != nil {
						return
					}
					req, err := decodeRequest(frame)
					if err != nil {
						return
					}
					resp := wireResponse{ID: req.ID + 1, Op: req.Op, Status: statusOK}
					if err := writeFrame(conn, encodeResponse(resp)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	rs, err := DialRemote(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version); ok {
		t.Fatal("client accepted a response with the wrong request ID")
	}
	err = rs.Put(testKey(), testCodec.Name, testCodec.Version, []byte{1})
	if fault.CodeOf(err) != fault.CodeStoreIO {
		t.Fatalf("put err = %v, want CodeStoreIO fault", err)
	}
}

// TestServeDropsMalformedFrame: a client that sends garbage loses its
// connection (never a crash), and a well-behaved client on the same
// server keeps working.
func TestServeDropsMalformedFrame(t *testing.T) {
	backing := NewMemStore()
	rs := startRemote(t, backing)

	raw, err := net.Dial("tcp", rs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := writeFrame(raw, []byte("this is not a sealed frame")); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(raw); err == nil {
		t.Error("server answered a malformed frame instead of dropping the connection")
	}

	sealed := Seal(testCodec.Name, testCodec.Version, []byte{9})
	if err := rs.Put(testKey(), testCodec.Name, testCodec.Version, sealed); err != nil {
		t.Fatalf("well-behaved client after malformed peer: %v", err)
	}
	if got, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version); !ok || !bytes.Equal(got, sealed) {
		t.Fatalf("get: ok=%v", ok)
	}
}

// TestRemoteClosedClient: operations on a closed client fail without
// reconnecting — Get degrades to a miss, Put returns the typed fault.
func TestRemoteClosedClient(t *testing.T) {
	rs := startRemote(t, NewMemStore())
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version); ok {
		t.Error("get on a closed client reported a hit")
	}
	if err := rs.Put(testKey(), testCodec.Name, testCodec.Version, []byte{1}); fault.CodeOf(err) != fault.CodeStoreIO {
		t.Errorf("put on a closed client: err = %v, want CodeStoreIO", err)
	}
}

// TestRemoteRelaysAuditError: the server relays its backing store's audit
// verdict, so a corrupted backing is visible to every client.
func TestRemoteRelaysAuditError(t *testing.T) {
	backing := NewMemStore()
	rs := startRemote(t, backing)
	if err := rs.Audit(); err != nil {
		t.Fatalf("clean audit: %v", err)
	}
	// Store a frame that cannot verify (raw bytes, no seal) directly in the
	// backing, bypassing the client.
	if err := backing.Put(testKey(), "c", 1, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if err := rs.Audit(); err == nil {
		t.Error("remote audit missed a corrupt backing artifact")
	}
}

// TestRemoteStatsCounters: the transport counters track round trips and
// bytes for a deterministic workload.
func TestRemoteStatsCounters(t *testing.T) {
	rs := startRemote(t, NewMemStore())
	sealed := Seal(testCodec.Name, testCodec.Version, []byte{1, 2, 3, 4})
	if err := rs.Put(testKey(), testCodec.Name, testCodec.Version, sealed); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version); !ok {
		t.Fatal("get missed")
	}
	st := rs.Stats()
	if st.RoundTrips != 2 {
		t.Errorf("RoundTrips = %d, want 2", st.RoundTrips)
	}
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
	if st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Errorf("byte counters not recorded: %+v", st)
	}
}

// TestRunThroughRemoteMatchesDisk is the location-independence check at
// the byte level: the same compute run through a remote store and a disk
// store produces identical sealed artifacts, and a Get through the remote
// returns exactly the bytes the backing holds.
func TestRunThroughRemoteMatchesDisk(t *testing.T) {
	want := []float64{3.25, -7, 0.5}
	compute := func(context.Context) ([]float64, error) { return want, nil }

	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), disk, testKey(), testCodec, nil, compute); err != nil {
		t.Fatal(err)
	}
	diskBytes, ok := disk.Get(testKey(), testCodec.Name, testCodec.Version)
	if !ok {
		t.Fatal("disk artifact missing")
	}

	backing := NewMemStore()
	rs := startRemote(t, backing)
	if _, _, err := Run(context.Background(), rs, testKey(), testCodec, nil, compute); err != nil {
		t.Fatal(err)
	}
	remoteBytes, ok := rs.Get(testKey(), testCodec.Name, testCodec.Version)
	if !ok {
		t.Fatal("remote artifact missing")
	}
	if !bytes.Equal(diskBytes, remoteBytes) {
		t.Error("remote-stored artifact differs from disk-stored artifact")
	}
	backingBytes, ok := backing.Get(testKey(), testCodec.Name, testCodec.Version)
	if !ok || !bytes.Equal(backingBytes, remoteBytes) {
		t.Error("backing bytes differ from the bytes the client round-tripped")
	}
}
