package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
)

// DiskStore is the content-addressed on-disk artifact store. It is safe
// for concurrent use; every write is staged into a temporary file in the
// destination directory and atomically renamed into place, so readers
// never observe a partial artifact and an interrupted run leaves at most
// an orphaned temp file behind.
type DiskStore struct {
	dir string
	faultGate
	eventLog
}

// Open returns a disk store rooted at dir, creating it if needed.
func Open(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("pipeline: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: open store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// path derives the content address of an artifact: a hash of every key
// component plus the codec identity, laid out as one directory per
// function with human-scannable "<stage>-<address>.art" file names.
func (s *DiskStore) path(key Key, codecName string, codecVersion uint32) string {
	return filepath.Join(s.dir, key.Func,
		fmt.Sprintf("%s-%s.art", key.Stage, contentAddress(key, codecName, codecVersion)))
}

// contentAddress hashes every key component plus the codec identity into
// the hex address shared by all backends: the disk store uses it in file
// names, the memory store as the map key, and the remote protocol carries
// the raw components so the serving side derives the same address.
func contentAddress(key Key, codecName string, codecVersion uint32) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%s\x00%s\x00%d",
		key.Func, key.Stage, key.Fingerprint, codecName, codecVersion)))
	return hex.EncodeToString(sum[:12])
}

// Get returns the artifact bytes under key, reporting ok=false on any
// error (most commonly: not cached yet). Injection: SiteStoreRead turns
// the read into a miss; SiteStoreBitFlip corrupts one byte of the
// returned copy so the frame checksum must catch it.
func (s *DiskStore) Get(key Key, codecName string, codecVersion uint32) ([]byte, bool) {
	if s.faults().Should(fault.SiteStoreRead) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key, codecName, codecVersion))
	if err != nil {
		return nil, false
	}
	if s.faults().Should(fault.SiteStoreBitFlip) && len(data) > 0 {
		data[len(data)/2] ^= 0x01
	}
	return data, true
}

// Put stores data under key atomically: temp file in the same directory,
// then rename into place. Injection: SiteStoreWrite fails before any
// byte is staged; SiteStoreWriteShort persists only a prefix of the temp
// file and then fails like a full disk would — in both cases nothing is
// renamed into place, so no partial artifact can ever be read back.
func (s *DiskStore) Put(key Key, codecName string, codecVersion uint32, data []byte) error {
	if s.faults().Should(fault.SiteStoreWrite) {
		return fault.Injected(fault.SiteStoreWrite)
	}
	path := s.path(key, codecName, codecVersion)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if s.faults().Should(fault.SiteStoreWriteShort) {
		_, _ = tmp.Write(data[:len(data)/2])
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: write %s: %w", filepath.Base(path), io.ErrShortWrite)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete removes the artifact under key; an absent artifact is not an
// error.
func (s *DiskStore) Delete(key Key, codecName string, codecVersion uint32) error {
	err := os.Remove(s.path(key, codecName, codecVersion))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Audit walks the store and reports the first ill-formed entry: a
// lingering temp file, a non-artifact file, or an artifact whose frame
// checksum does not verify. The fault-matrix tests run it after every
// scenario to prove no failure mode leaves a corrupt or partially
// written artifact behind.
func (s *DiskStore) Audit() error {
	return filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.Contains(name, ".tmp") {
			return fmt.Errorf("pipeline: leftover temp file %s", path)
		}
		if !strings.HasSuffix(name, ".art") {
			return fmt.Errorf("pipeline: foreign file %s in store", path)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if cerr := CheckFrame(data); cerr != nil {
			return fmt.Errorf("%s: %w", path, cerr)
		}
		return nil
	})
}
