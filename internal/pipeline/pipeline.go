// Package pipeline provides the staged-generation infrastructure behind
// internal/gen: a typed stage abstraction plus a content-addressed
// artifact store behind the pluggable Store interface — an atomic-rename
// on-disk backend (DiskStore), an ephemeral in-memory backend (MemStore)
// and a framed-TCP remote backend (RemoteStore + Serve) — instrumented for
// the internal/obs observability layer.
//
// The generator is organized as four explicit stages — Enumerate (oracle →
// rounding intervals), Reduce (intervals → merged constraint set), Solve
// (Clarkson per piece) and Verify (exhaustive check + repair) — each
// consuming and producing a typed artifact. Run executes one stage: it
// probes the store for the stage's artifact, decodes and returns it on a
// hit, and otherwise computes the artifact, persists it and returns it.
// A crash therefore loses at most the stage in flight, and sibling
// commands (rlibm-gen, rlibm-table1, rlibm-table2, rlibm-fig4) sharing one
// cache directory enumerate each function exactly once.
//
// Determinism is the contract: artifacts are encoded with the
// deterministic binary codec in this package (fixed-width little-endian,
// float64 as IEEE bits), so a warm-cache run returns byte-identical data
// to the cold run that produced it, at every worker count. Nothing
// volatile — wall-clock durations, oracle path counters — may be encoded
// into an artifact.
//
// Artifacts are addressed by content key, not by mutable name: the file
// path derives from a hash of (function, stage, options fingerprint, codec
// name, codec version). Changing any key component — including bumping a
// codec's Version after changing its layout or the semantics of the stage
// that feeds it — simply addresses different files; stale artifacts are
// never read, only orphaned. A corrupt artifact (truncated write, bit rot,
// foreign file) fails its checksum or decode, is deleted, and the stage is
// recomputed transparently.
//
// Observability: when the run context carries an obs span, Run opens a
// child span per stage (so nested stages — solve probing reduce probing
// enumerate — form a true tree) and records store hit/miss/byte counters
// on it. The instrumentation is write-only and nil-safe: with
// observability off it costs one nil check, and it never alters what Run
// computes or stores.
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Codec describes the on-disk encoding of one artifact type. Name and
// Version are part of both the frame header and the content address:
// bumping Version after a layout or semantics change orphans every
// artifact written with the previous one.
type Codec[T any] struct {
	Name    string
	Version uint32
	Encode  func(*Enc, T)
	Decode  func(*Dec) (T, error)
}

// Key addresses one stage artifact.
type Key struct {
	// Func is the elementary function the artifact belongs to (one cache
	// subdirectory per function).
	Func string
	// Stage names the pipeline stage that produced the artifact
	// ("enumerate", "reduce", "solve", "verify").
	Stage string
	// Fingerprint is the hex digest of every generation option that can
	// influence the artifact's bits (see gen.Options.Fingerprint).
	Fingerprint string
}

// Logf is the progress-logging callback threaded through the pipeline;
// nil disables logging.
type Logf func(string, ...interface{})

// Run executes one pipeline stage. With a nil store it simply calls
// compute. Otherwise it probes the store under key: on a hit the decoded
// artifact is returned with fromCache=true; on a miss (including a corrupt
// or unreadable artifact, which is deleted and logged) compute runs and
// its result is sealed and written atomically into the store. A failed
// cache write is logged and otherwise ignored — caching is an
// optimization, never a correctness dependency.
//
// compute receives a context derived from ctx that carries this stage's
// obs span, so artifacts computed inside (nested stages, piece solves)
// attach their spans under it.
//
// Cancellation is checked at the stage boundary: a done ctx returns a
// fault.Error with CodeCanceled before any probe or compute, so every
// artifact already in the store stays valid and a rerun resumes from it.
//
// Key validation happens before any probe: an empty Func, Stage or
// Fingerprint component would alias distinct runs onto one content
// address, so Run rejects it with a typed fault.Error (CodeStoreKey)
// whether or not a store is attached.
func Run[T any](ctx context.Context, st Store, key Key, c Codec[T], logf Logf, compute func(context.Context) (T, error)) (value T, fromCache bool, err error) {
	if cerr := ctx.Err(); cerr != nil {
		var zero T
		return zero, false, fault.New(fault.CodeCanceled, key.Stage, "run", cerr).WithFunc(key.Func)
	}
	if kerr := key.validate(); kerr != nil {
		var zero T
		return zero, false, kerr
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	sp := obs.SpanFrom(ctx).Child(key.Stage)
	defer sp.End()
	ctx = obs.WithSpan(ctx, sp)
	if st == nil {
		v, err := compute(ctx)
		return v, false, err
	}
	if data, ok := st.Get(key, c.Name, c.Version); ok {
		v, derr := decodeArtifact(data, c)
		if derr == nil {
			st.record(key, true)
			sp.Add(obs.CtrStoreHits, 1)
			sp.Add(obs.CtrStoreBytesRead, int64(len(data)))
			logf("cache: %s %s stage hit", key.Func, key.Stage)
			return v, true, nil
		}
		logf("cache: %s %s stage: %v — regenerating", key.Func, key.Stage, derr)
		_ = st.Delete(key, c.Name, c.Version)
	}
	st.record(key, false)
	sp.Add(obs.CtrStoreMisses, 1)
	v, err := compute(ctx)
	if err != nil {
		var zero T
		return zero, false, err
	}
	var e Enc
	c.Encode(&e, v)
	sealed := Seal(c.Name, c.Version, e.Bytes())
	if werr := st.Put(key, c.Name, c.Version, sealed); werr != nil {
		logf("cache: %s %s stage: write failed: %v (continuing uncached)", key.Func, key.Stage, werr)
	} else {
		sp.Add(obs.CtrStoreBytesWritten, int64(len(sealed)))
	}
	return v, false, nil
}

// Probe answers "is this artifact already in the store?" without ever
// computing: on a hit it decodes and returns the artifact (recording a hit
// event, exactly like Run); on a miss, a nil store, or a corrupt artifact
// (deleted, like Run) it reports ok=false and records nothing — a probe is
// a peek, not a stage execution, so misses stay out of the event log. The
// shard-claim assembler uses it to poll for work units computed by peer
// processes before deciding to compute them locally.
func Probe[T any](st Store, key Key, c Codec[T]) (value T, ok bool) {
	var zero T
	if st == nil || key.validate() != nil {
		return zero, false
	}
	data, found := st.Get(key, c.Name, c.Version)
	if !found {
		return zero, false
	}
	v, derr := decodeArtifact(data, c)
	if derr != nil {
		_ = st.Delete(key, c.Name, c.Version)
		return zero, false
	}
	st.record(key, true)
	return v, true
}

// validate rejects keys with empty components: each would collapse
// distinct artifacts onto one content address (an empty fingerprint, for
// example, would alias every configuration of a stage).
func (k Key) validate() error {
	if k.Func == "" || k.Stage == "" || k.Fingerprint == "" {
		return fault.New(fault.CodeStoreKey, k.Stage, "key",
			fmt.Errorf("pipeline: artifact key %+v has an empty component", k)).WithFunc(k.Func)
	}
	return nil
}

// decodeArtifact unseals and decodes one stored artifact, insisting that
// the payload is consumed exactly.
func decodeArtifact[T any](data []byte, c Codec[T]) (T, error) {
	var zero T
	payload, err := Unseal(data, c.Name, c.Version)
	if err != nil {
		return zero, err
	}
	d := NewDec(payload)
	v, err := c.Decode(d)
	if err != nil {
		return zero, err
	}
	if err := d.Done(); err != nil {
		return zero, err
	}
	return v, nil
}
