package pipeline

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
)

// MemStore is the in-memory artifact store: fast tests, ephemeral runs,
// and the backing of choice for a throwaway rlibm-store server. It keeps
// sealed frames in a map keyed by content address and honors the same
// injection sites as the disk store, so the backend-matrix tests can pin
// identical observable behavior. The zero value is not usable; call
// NewMemStore.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
	faultGate
	eventLog
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Get returns the artifact bytes under key. The returned slice is a copy,
// so a caller-side mutation (or an injected bit flip) can never corrupt
// the stored artifact. Injection: SiteStoreRead turns the read into a
// miss; SiteStoreBitFlip corrupts one byte of the returned copy.
func (s *MemStore) Get(key Key, codecName string, codecVersion uint32) ([]byte, bool) {
	if s.faults().Should(fault.SiteStoreRead) {
		return nil, false
	}
	s.mu.RLock()
	stored, ok := s.data[contentAddress(key, codecName, codecVersion)]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	data := append([]byte(nil), stored...)
	if s.faults().Should(fault.SiteStoreBitFlip) && len(data) > 0 {
		data[len(data)/2] ^= 0x01
	}
	return data, true
}

// Put stores a copy of data under key. The map swap is atomic under the
// lock, so a concurrent Get sees the previous artifact or the new one,
// never a partial write. Injection: SiteStoreWrite and SiteStoreWriteShort
// both fail before the map is touched — the short-write site cannot
// persist a prefix here, mirroring how the disk store never renames a
// short temp file into place.
func (s *MemStore) Put(key Key, codecName string, codecVersion uint32, data []byte) error {
	if s.faults().Should(fault.SiteStoreWrite) {
		return fault.Injected(fault.SiteStoreWrite)
	}
	if s.faults().Should(fault.SiteStoreWriteShort) {
		return fmt.Errorf("pipeline: write %s-%s: short write",
			key.Stage, contentAddress(key, codecName, codecVersion))
	}
	stored := append([]byte(nil), data...)
	s.mu.Lock()
	s.data[contentAddress(key, codecName, codecVersion)] = stored
	s.mu.Unlock()
	return nil
}

// Delete removes the artifact under key; an absent artifact is not an
// error.
func (s *MemStore) Delete(key Key, codecName string, codecVersion uint32) error {
	s.mu.Lock()
	delete(s.data, contentAddress(key, codecName, codecVersion))
	s.mu.Unlock()
	return nil
}

// Audit verifies the frame of every stored artifact, visiting entries in
// sorted address order so a multi-error store always reports the same
// first failure.
func (s *MemStore) Audit() error {
	s.mu.RLock()
	addrs := make([]string, 0, len(s.data))
	for addr := range s.data {
		//lint:ignore mapiter keys are fully sorted below before any artifact is visited.
		addrs = append(addrs, addr)
	}
	s.mu.RUnlock()
	sort.Strings(addrs)
	for _, addr := range addrs {
		s.mu.RLock()
		data, ok := s.data[addr]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		if err := CheckFrame(data); err != nil {
			return fmt.Errorf("mem artifact %s: %w", addr, err)
		}
	}
	return nil
}

// Len returns how many artifacts the store holds.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
