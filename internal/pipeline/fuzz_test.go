package pipeline

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzStoreWire drives the shared frame reader (store wire protocol and
// the serving layer's bulk endpoint both ride on it) plus the two message
// decoders with adversarial byte streams. The invariants:
//
//   - readFrame never panics and never allocates past the frame cap: any
//     length prefix over maxWireFrame is rejected before the body is read.
//   - A frame that readFrame accepts survives writeFrame → readFrame
//     byte-exactly (the framing is lossless).
//   - A frame that decodes as a request or response re-encodes to the
//     identical sealed bytes (the codec is canonical), preserving the
//     request ID exactly — the client's ID-mismatch rejection depends on
//     the decoder never "repairing" a stray ID.
//   - Truncation, bit flips and trailing garbage surface as errors, never
//     as misparsed messages.
//
// The checked-in seeds under testdata/fuzz/FuzzStoreWire pin the
// regression cases: truncated prefixes, bodies shorter than their prefix,
// oversized lengths, unsealed garbage, and a response whose ID answers no
// request.
func FuzzStoreWire(f *testing.F) {
	framed := func(frame []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	// A well-formed request and response, as a peer would see them on the
	// wire (length prefix + sealed frame).
	f.Add(framed(encodeRequest(wireRequest{
		ID: 7, Op: opPut,
		Key:   Key{Func: "exp2", Stage: "enumerate", Fingerprint: "abc"},
		Codec: "test-vector", Version: 1, Data: []byte{1, 2, 3},
	})))
	f.Add(framed(encodeResponse(wireResponse{ID: 7, Op: opGet, Status: statusOK, Data: []byte{9}})))
	// A response whose ID answers no request: decodes fine, and the
	// round-trip must preserve the stray ID bit-exactly so the client's
	// mismatch check can fire.
	f.Add(framed(encodeResponse(wireResponse{ID: 8, Op: opGet, Status: statusMiss})))
	// Truncated prefix, truncated body, oversized length, garbage body.
	f.Add([]byte{0x05, 0x00})
	f.Add(append([]byte{0x10, 0x00, 0x00, 0x00}, 'a', 'b', 'c'))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append([]byte{0x08, 0x00, 0x00, 0x00}, []byte("notaseal")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := readFrame(bytes.NewReader(data))
		if len(data) >= 4 {
			if n := binary.LittleEndian.Uint32(data[:4]); n > maxWireFrame && err == nil {
				t.Fatalf("length %d over the cap was accepted", n)
			}
		}
		if err != nil {
			return
		}
		if len(frame) > maxWireFrame {
			t.Fatalf("readFrame returned %d bytes, over the %d cap", len(frame), maxWireFrame)
		}
		// Lossless framing.
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame); err != nil {
			t.Fatalf("writeFrame on an accepted frame: %v", err)
		}
		rt, err := readFrame(&buf)
		if err != nil || !bytes.Equal(rt, frame) {
			t.Fatalf("frame round-trip: err=%v equal=%v", err, bytes.Equal(rt, frame))
		}

		// Canonical request codec: decode → encode reproduces the frame.
		if req, err := decodeRequest(frame); err == nil {
			re := encodeRequest(req)
			if !bytes.Equal(re, frame) {
				t.Fatalf("request re-encode differs from the wire frame")
			}
			if req2, err := decodeRequest(re); err != nil || req2.ID != req.ID {
				t.Fatalf("request re-decode: err=%v id=%d want %d", err, req2.ID, req.ID)
			}
		}
		// Canonical response codec, ID preserved bit-exactly.
		if resp, err := decodeResponse(frame); err == nil {
			re := encodeResponse(resp)
			if !bytes.Equal(re, frame) {
				t.Fatalf("response re-encode differs from the wire frame")
			}
			if resp2, err := decodeResponse(re); err != nil || resp2.ID != resp.ID {
				t.Fatalf("response re-decode: err=%v id=%d want %d", err, resp2.ID, resp.ID)
			}
		}
	})
}
