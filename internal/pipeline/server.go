package pipeline

import (
	"errors"
	"net"
	"sync"
)

// Serve exposes a backing store over the framed-TCP wire protocol until
// the listener is closed: it accepts connections and answers each
// request — Get, Put, Delete, Audit — against backing, sealing every
// response in the same frames artifacts use on disk. The server is a thin
// relay: it never unseals artifact payloads (only the protocol envelope),
// so a byte stored through it is the byte a Get returns, and every
// consistency property — atomic publication, audit, corruption detection —
// is the backing store's. cmd/rlibm-store wraps it behind a disk store;
// tests run it in-process over a loopback listener.
//
// A connection serves requests sequentially and is dropped on the first
// malformed frame (the client's retry budget re-establishes it). Serve
// returns once the listener is closed, after in-flight connections have
// drained; the returned error is nil on a clean shutdown.
func Serve(l net.Listener, backing Store, logf Logf) error {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(conn, backing, logf)
		}()
	}
}

// serveConn answers one connection's requests until it errors or closes.
func serveConn(conn net.Conn, backing Store, logf Logf) {
	defer conn.Close()
	peer := conn.RemoteAddr().String()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return // peer closed or lost framing; nothing to answer
		}
		req, err := decodeRequest(frame)
		if err != nil {
			logf("store-serve: %s: malformed request: %v — dropping connection", peer, err)
			return
		}
		resp := handleRequest(backing, req)
		if err := writeFrame(conn, encodeResponse(resp)); err != nil {
			logf("store-serve: %s: write response: %v", peer, err)
			return
		}
	}
}

// handleRequest dispatches one decoded request against the backing store.
func handleRequest(backing Store, req wireRequest) wireResponse {
	resp := wireResponse{ID: req.ID, Op: req.Op, Status: statusOK}
	switch req.Op {
	case opGet:
		data, ok := backing.Get(req.Key, req.Codec, req.Version)
		if !ok {
			resp.Status = statusMiss
			break
		}
		resp.Data = data
	case opPut:
		if err := backing.Put(req.Key, req.Codec, req.Version, req.Data); err != nil {
			resp.Status = statusErr
			resp.Errmsg = err.Error()
		}
	case opDelete:
		if err := backing.Delete(req.Key, req.Codec, req.Version); err != nil {
			resp.Status = statusErr
			resp.Errmsg = err.Error()
		}
	case opAudit:
		if err := backing.Audit(); err != nil {
			resp.Status = statusErr
			resp.Errmsg = err.Error()
		}
	}
	return resp
}
