package pipeline

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ServeOptions bounds the store server's connection handling. The zero
// value preserves the historical behavior: unlimited connections, no idle
// deadline.
type ServeOptions struct {
	// MaxConns caps concurrently served connections; 0 means unlimited.
	// A connection accepted over the cap is closed immediately without a
	// response — the client's retry budget re-establishes it once a slot
	// frees, so a cap degrades throughput, never correctness.
	MaxConns int
	// IdleTimeout drops a connection that sends no request frame for
	// this long; 0 means never. It bounds the resources an abandoned or
	// wedged client can pin (each connection holds a goroutine and a
	// MaxConns slot).
	IdleTimeout time.Duration
}

// Serve exposes a backing store over the framed-TCP wire protocol until
// the listener is closed, with unlimited connections and no idle deadline.
// See ServeWith.
func Serve(l net.Listener, backing Store, logf Logf) error {
	return ServeWith(l, backing, ServeOptions{}, logf)
}

// ServeWith exposes a backing store over the framed-TCP wire protocol
// until the listener is closed: it accepts connections — concurrently, one
// goroutine per connection, bounded by opts — and answers each request —
// Get, Put, Delete, Audit — against backing, sealing every response in the
// same frames artifacts use on disk. The server is a thin relay: it never
// unseals artifact payloads (only the protocol envelope), so a byte stored
// through it is the byte a Get returns, and every consistency property —
// atomic publication, audit, corruption detection — is the backing
// store's. Concurrent requests are therefore as safe as the backing store
// makes them, which every backend guarantees (last-writer-wins Puts of
// content-addressed bytes). cmd/rlibm-store wraps it behind a disk store;
// tests run it in-process over a loopback listener.
//
// A connection serves its own requests sequentially and is dropped on the
// first malformed frame or idle timeout (the client's retry budget
// re-establishes it). ServeWith returns once the listener is closed, after
// in-flight connections have drained; the returned error is nil on a clean
// shutdown.
func ServeWith(l net.Listener, backing Store, opts ServeOptions, logf Logf) error {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	var sem chan struct{}
	if opts.MaxConns > 0 {
		sem = make(chan struct{}, opts.MaxConns)
	}
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				logf("store-serve: %s: connection cap %d reached — dropping connection",
					conn.RemoteAddr(), opts.MaxConns)
				conn.Close()
				continue
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			serveConn(conn, backing, opts.IdleTimeout, logf)
		}()
	}
}

// serveConn answers one connection's requests until it errors, closes, or
// idles past the deadline.
func serveConn(conn net.Conn, backing Store, idle time.Duration, logf Logf) {
	defer conn.Close()
	peer := conn.RemoteAddr().String()
	for {
		if idle > 0 {
			// Deadlines bound one read; the values never feed an artifact.
			//lint:ignore wallclock per-frame idle deadline; the clock value never influences generated coefficients.
			deadline := time.Now().Add(idle)
			if err := conn.SetReadDeadline(deadline); err != nil {
				return
			}
		}
		frame, err := readFrame(conn)
		if err != nil {
			return // peer closed, idled out, or lost framing; nothing to answer
		}
		req, err := decodeRequest(frame)
		if err != nil {
			logf("store-serve: %s: malformed request: %v — dropping connection", peer, err)
			return
		}
		resp := handleRequest(backing, req)
		if err := writeFrame(conn, encodeResponse(resp)); err != nil {
			logf("store-serve: %s: write response: %v", peer, err)
			return
		}
	}
}

// handleRequest dispatches one decoded request against the backing store.
func handleRequest(backing Store, req wireRequest) wireResponse {
	resp := wireResponse{ID: req.ID, Op: req.Op, Status: statusOK}
	switch req.Op {
	case opGet:
		data, ok := backing.Get(req.Key, req.Codec, req.Version)
		if !ok {
			resp.Status = statusMiss
			break
		}
		resp.Data = data
	case opPut:
		if err := backing.Put(req.Key, req.Codec, req.Version, req.Data); err != nil {
			resp.Status = statusErr
			resp.Errmsg = err.Error()
		}
	case opDelete:
		if err := backing.Delete(req.Key, req.Codec, req.Version); err != nil {
			resp.Status = statusErr
			resp.Errmsg = err.Error()
		}
	case opAudit:
		if err := backing.Audit(); err != nil {
			resp.Status = statusErr
			resp.Errmsg = err.Error()
		}
	}
	return resp
}
