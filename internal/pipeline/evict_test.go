package pipeline

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fault"
)

// Eviction-policy unit tests. The invariants under test: the budget
// holds after every operation (up to pinned artifacts and the exempt
// just-written one), victims leave in least-recently-used order, claim
// artifacts are never evicted, and an evicted artifact re-put later is
// byte-identical (eviction only forgets cache entries; it cannot change
// what deterministic recomputation re-publishes).

// evictKey builds a distinct work-unit key per index.
func evictKey(stage string, i int) Key {
	return Key{Func: "cospi", Stage: stage, Fingerprint: fmt.Sprintf("unit-%03d", i)}
}

// evictArtifact seals a deterministic payload of the given size.
func evictArtifact(i, size int) []byte {
	payload := bytes.Repeat([]byte{byte(i)}, size)
	return Seal("evict-test", 1, payload)
}

func TestEvictingStoreBudgetAndLRUOrder(t *testing.T) {
	backing := NewMemStore()
	art := evictArtifact(1, 64)
	budget := int64(3 * len(art))
	es := NewEvictingStore(backing, budget)

	for i := 0; i < 5; i++ {
		if err := es.Put(evictKey("solve-shard", i), "evict-test", 1, evictArtifact(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := es.Stats()
	if st.BytesLive > budget {
		t.Errorf("BytesLive %d exceeds budget %d", st.BytesLive, budget)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (5 equal-size puts, budget 3)", st.Evictions)
	}
	// The two oldest are gone; the three newest survive, byte-identical.
	for i := 0; i < 5; i++ {
		data, ok := es.Get(evictKey("solve-shard", i), "evict-test", 1)
		if i < 2 {
			if ok {
				t.Errorf("artifact %d survived; want evicted (LRU)", i)
			}
			continue
		}
		if !ok || !bytes.Equal(data, evictArtifact(i, 64)) {
			t.Errorf("artifact %d missing or corrupt after eviction pass", i)
		}
	}
	if err := es.Audit(); err != nil {
		t.Errorf("audit after evictions: %v", err)
	}
}

func TestEvictingStoreGetRefreshesLRU(t *testing.T) {
	es := NewEvictingStore(NewMemStore(), int64(3*len(evictArtifact(0, 64))))
	for i := 0; i < 3; i++ {
		if err := es.Put(evictKey("solve-shard", i), "evict-test", 1, evictArtifact(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch artifact 0: it becomes most recently used, so the next two
	// puts evict 1 and 2 instead.
	if _, ok := es.Get(evictKey("solve-shard", 0), "evict-test", 1); !ok {
		t.Fatal("artifact 0 missing before it was ever over budget")
	}
	for i := 3; i < 5; i++ {
		if err := es.Put(evictKey("solve-shard", i), "evict-test", 1, evictArtifact(i, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := es.Get(evictKey("solve-shard", 0), "evict-test", 1); !ok {
		t.Error("artifact 0 evicted despite being recently used")
	}
	for _, i := range []int{1, 2} {
		if _, ok := es.Get(evictKey("solve-shard", i), "evict-test", 1); ok {
			t.Errorf("artifact %d survived; want evicted as least recently used", i)
		}
	}
}

// TestEvictingStoreNeverEvictsClaims: claim artifacts are pinned — even a
// budget far smaller than the claim footprint evicts work units around
// them and leaves every claim resident.
func TestEvictingStoreNeverEvictsClaims(t *testing.T) {
	es := NewEvictingStore(NewMemStore(), 1) // absurd budget: everything unpinned must go
	var claims, units []Key
	for i := 0; i < 4; i++ {
		ck, uk := evictKey(StageClaim, i), evictKey("verify-shard", i)
		claims, units = append(claims, ck), append(units, uk)
		if err := es.Put(ck, "store-claim", 2, evictArtifact(i, 16)); err != nil {
			t.Fatal(err)
		}
		if err := es.Put(uk, "verify-shard", 1, evictArtifact(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	for i, ck := range claims {
		if data, ok := es.Get(ck, "store-claim", 2); !ok || !bytes.Equal(data, evictArtifact(i, 16)) {
			t.Errorf("claim %d evicted or corrupt; claims must be pinned", i)
		}
	}
	evictedUnits := 0
	for _, uk := range units {
		if _, ok := es.Get(uk, "verify-shard", 1); !ok {
			evictedUnits++
		}
	}
	// The newest unit is exempt from its own Put's pass but is evicted by
	// the claim Gets' passes above only if unpinned — either way at least
	// the three older units are gone.
	if evictedUnits < 3 {
		t.Errorf("only %d unit artifacts evicted under a 1-byte budget; want at least 3", evictedUnits)
	}
}

// TestEvictingStorePinStages: extra pinned stages survive like claims.
func TestEvictingStorePinStages(t *testing.T) {
	es := NewEvictingStore(NewMemStore(), 1, "verify")
	if err := es.Put(evictKey("verify", 0), "result", 2, evictArtifact(0, 256)); err != nil {
		t.Fatal(err)
	}
	if err := es.Put(evictKey("solve", 0), "result", 2, evictArtifact(1, 256)); err != nil {
		t.Fatal(err)
	}
	if err := es.Put(evictKey("enumerate", 0), "raw", 1, evictArtifact(2, 256)); err != nil {
		t.Fatal(err)
	}
	if _, ok := es.Get(evictKey("verify", 0), "result", 2); !ok {
		t.Error("pinned verify artifact evicted")
	}
	if _, ok := es.Get(evictKey("solve", 0), "result", 2); ok {
		t.Error("unpinned solve artifact survived a 1-byte budget")
	}
}

// TestEvictingStoreSkipsJustWritten: a budget smaller than one artifact
// keeps the newest write instead of evicting the bytes it just stored.
func TestEvictingStoreSkipsJustWritten(t *testing.T) {
	art := evictArtifact(7, 256)
	es := NewEvictingStore(NewMemStore(), int64(len(art))/2)
	if err := es.Put(evictKey("solve", 7), "result", 2, art); err != nil {
		t.Fatal(err)
	}
	if data, ok := es.Get(evictKey("solve", 7), "result", 2); !ok || !bytes.Equal(data, art) {
		t.Error("the just-written artifact was evicted by its own Put")
	}
}

// TestEvictingStoreInjectedEviction: SiteStoreEvict forces an eviction
// regardless of budget, and a re-put of the evicted artifact stores
// byte-identical data (the evicted-then-refetched contract at the store
// layer; cache_test.go proves it end-to-end through the pipeline).
func TestEvictingStoreInjectedEviction(t *testing.T) {
	es := NewEvictingStore(NewMemStore(), 1<<30)
	if err := es.Put(evictKey("solve", 0), "result", 2, evictArtifact(0, 128)); err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan().At(fault.SiteStoreEvict, 1)
	es.SetFaults(plan)
	if err := es.Put(evictKey("solve", 1), "result", 2, evictArtifact(1, 128)); err != nil {
		t.Fatal(err)
	}
	es.SetFaults(nil)
	if _, ok := es.Get(evictKey("solve", 0), "result", 2); ok {
		t.Fatal("artifact 0 survived an injected eviction")
	}
	if st := es.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	// Deterministic recomputation re-publishes identical bytes.
	if err := es.Put(evictKey("solve", 0), "result", 2, evictArtifact(0, 128)); err != nil {
		t.Fatal(err)
	}
	data, ok := es.Get(evictKey("solve", 0), "result", 2)
	if !ok || !bytes.Equal(data, evictArtifact(0, 128)) {
		t.Error("re-put artifact differs from the original bytes")
	}
}

// TestEvictingStoreAdoptsPreexisting: an artifact written before the
// wrapper existed joins the accounting on its first Get and is evictable
// afterwards.
func TestEvictingStoreAdoptsPreexisting(t *testing.T) {
	backing := NewMemStore()
	if err := backing.Put(evictKey("solve", 0), "result", 2, evictArtifact(0, 256)); err != nil {
		t.Fatal(err)
	}
	es := NewEvictingStore(backing, int64(len(evictArtifact(0, 256)))+8)
	if es.Stats().Artifacts != 0 {
		t.Fatal("wrapper accounted artifacts it has never observed")
	}
	if _, ok := es.Get(evictKey("solve", 0), "result", 2); !ok {
		t.Fatal("pre-existing artifact unreadable through the wrapper")
	}
	if st := es.Stats(); st.Artifacts != 1 || st.BytesLive == 0 {
		t.Errorf("adoption did not account the artifact: %+v", st)
	}
	// A new put over budget now evicts the adopted artifact.
	if err := es.Put(evictKey("solve", 1), "result", 2, evictArtifact(1, 256)); err != nil {
		t.Fatal(err)
	}
	if _, ok := backing.Get(evictKey("solve", 0), "result", 2); ok {
		t.Error("adopted artifact not evicted from the backing store")
	}
}

// TestEvictingStoreDeleteDropsAccounting: an external delete (or one
// through the wrapper) stops counting against the budget.
func TestEvictingStoreDeleteDropsAccounting(t *testing.T) {
	es := NewEvictingStore(NewMemStore(), 1<<30)
	if err := es.Put(evictKey("solve", 0), "result", 2, evictArtifact(0, 128)); err != nil {
		t.Fatal(err)
	}
	if err := es.Delete(evictKey("solve", 0), "result", 2); err != nil {
		t.Fatal(err)
	}
	if st := es.Stats(); st.Artifacts != 0 || st.BytesLive != 0 {
		t.Errorf("accounting survives Delete: %+v", st)
	}
}
