package pipeline

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The remote-store wire protocol. Every message — request or response —
// is one sealed frame (the same Seal/Unseal framing artifacts use on
// disk, codec "store-wire" v1, so transport corruption is caught by the
// frame checksum) carried behind a fixed 4-byte little-endian length
// prefix. Requests carry a client-chosen request ID that the response
// must echo; a mismatch means the connection lost framing and the client
// abandons it. The payload encoding is the deterministic artifact codec
// (fixed-width little-endian), so the protocol inherits the pipeline's
// byte-exactness: a Get answers the same bytes Put stored, and those
// bytes are location-independent sealed artifacts.

const (
	// wireCodecName/wireCodecVersion seal every protocol message. Bump the
	// version on any message-layout change; mixed versions then fail the
	// Unseal identity check instead of misparsing.
	wireCodecName    = "store-wire"
	wireCodecVersion = 1

	// maxWireFrame bounds a single message (1 GiB): larger length
	// prefixes are protocol corruption, rejected before any allocation.
	maxWireFrame = 1 << 30
)

// Remote-store operations.
const (
	opGet byte = iota + 1
	opPut
	opDelete
	opAudit
)

// Response statuses.
const (
	statusOK byte = iota
	statusMiss
	statusErr
)

// wireRequest is one client request.
type wireRequest struct {
	ID      uint64
	Op      byte
	Key     Key
	Codec   string
	Version uint32
	Data    []byte // Put payload; empty otherwise
}

// wireResponse is one server response.
type wireResponse struct {
	ID     uint64
	Op     byte
	Status byte
	Errmsg string // statusErr only
	Data   []byte // Get payload; empty otherwise
}

func encodeRequest(r wireRequest) []byte {
	var e Enc
	e.U64(r.ID)
	e.Byte(r.Op)
	e.Str(r.Key.Func)
	e.Str(r.Key.Stage)
	e.Str(r.Key.Fingerprint)
	e.Str(r.Codec)
	e.U32(r.Version)
	e.Blob(r.Data)
	return Seal(wireCodecName, wireCodecVersion, e.Bytes())
}

func decodeRequest(frame []byte) (wireRequest, error) {
	payload, err := Unseal(frame, wireCodecName, wireCodecVersion)
	if err != nil {
		return wireRequest{}, err
	}
	d := NewDec(payload)
	r := wireRequest{ID: d.U64(), Op: d.Byte()}
	r.Key.Func = d.Str()
	r.Key.Stage = d.Str()
	r.Key.Fingerprint = d.Str()
	r.Codec = d.Str()
	r.Version = d.U32()
	r.Data = d.Blob()
	if err := d.Done(); err != nil {
		return wireRequest{}, err
	}
	if r.Op < opGet || r.Op > opAudit {
		return wireRequest{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, r.Op)
	}
	return r, nil
}

func encodeResponse(r wireResponse) []byte {
	var e Enc
	e.U64(r.ID)
	e.Byte(r.Op)
	e.Byte(r.Status)
	e.Str(r.Errmsg)
	e.Blob(r.Data)
	return Seal(wireCodecName, wireCodecVersion, e.Bytes())
}

func decodeResponse(frame []byte) (wireResponse, error) {
	payload, err := Unseal(frame, wireCodecName, wireCodecVersion)
	if err != nil {
		return wireResponse{}, err
	}
	d := NewDec(payload)
	r := wireResponse{ID: d.U64(), Op: d.Byte(), Status: d.Byte()}
	r.Errmsg = d.Str()
	r.Data = d.Blob()
	if err := d.Done(); err != nil {
		return wireResponse{}, err
	}
	if r.Status > statusErr {
		return wireResponse{}, fmt.Errorf("%w: unknown status %d", ErrCorrupt, r.Status)
	}
	return r, nil
}

// WriteFrame writes one length-prefixed message to w: the serving layer
// (internal/serve) reuses the store-wire framing for its bulk endpoint, so
// both protocols share one frame reader, one length cap and one fuzz
// target (FuzzStoreWire).
func WriteFrame(w io.Writer, frame []byte) error { return writeFrame(w, frame) }

// ReadFrame reads one length-prefixed message from r, bounding the length
// prefix before any allocation; the exported counterpart of readFrame for
// the serving layer's bulk endpoint.
func ReadFrame(r io.Reader) ([]byte, error) { return readFrame(r) }

// writeFrame writes one length-prefixed message to w.
func writeFrame(w io.Writer, frame []byte) error {
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(frame)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readFrame reads one length-prefixed message from r, bounding the length
// before allocating.
func readFrame(r io.Reader) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > maxWireFrame {
		return nil, fmt.Errorf("%w: wire frame of %d bytes exceeds the %d-byte cap", ErrCorrupt, n, maxWireFrame)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
