package pipeline

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// remoteAttempts is the per-operation transport retry budget: the first
// attempt plus reconnect-and-retry rounds. Transient failures (a dropped
// connection, a truncated frame) recover inside the budget; a store that
// stays unreachable degrades the same way a failing disk does — Get
// becomes a miss, Put a typed store-io error — because caching is an
// optimization, never a correctness dependency.
const remoteAttempts = 3

// DefaultRemoteTimeout bounds one remote operation (dial + request +
// response) when DialRemote is given no explicit timeout.
const DefaultRemoteTimeout = 30 * time.Second

// RemoteStats counts the remote client's transport work. The counts are
// deterministic for a fixed workload and injection plan — one round trip
// per store operation attempt — and internal/cli records them into the
// observability report under the store.remote.* counters.
type RemoteStats struct {
	RoundTrips int64 // completed request/response exchanges
	Retries    int64 // transport failures that consumed a retry
	BytesSent  int64 // framed request bytes written
	BytesRecv  int64 // framed response bytes read
}

// RemoteStore is the framed-TCP client backend: every Get/Put/Delete/
// Audit becomes one request/response exchange with an rlibm-store server
// (see Serve), sealed in the same frames artifacts use on disk. One
// connection is shared by all goroutines, one request in flight at a
// time, with per-operation deadlines and a bounded reconnect-and-retry
// budget. It implements Store, so a pipeline run through it is
// bit-identical to a run through the disk store it fronts.
type RemoteStore struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex // serializes the connection and request IDs
	conn   net.Conn
	nextID uint64
	closed bool

	roundTrips atomic.Int64
	retries    atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64

	faultGate
	eventLog
}

// DialRemote returns a remote store speaking to the rlibm-store server at
// addr (host:port). A non-positive timeout selects DefaultRemoteTimeout.
// The initial connection is established eagerly so a bad address fails at
// flag-parsing time, not mid-pipeline; later disconnects reconnect
// transparently inside the per-op retry budget.
func DialRemote(addr string, timeout time.Duration) (*RemoteStore, error) {
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	s := &RemoteStore{addr: addr, timeout: timeout}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("pipeline: dial remote store %s: %w", addr, err)
	}
	s.conn = conn
	return s, nil
}

// Addr returns the server address the store was dialed with.
func (s *RemoteStore) Addr() string { return s.addr }

// Stats returns a snapshot of the transport counters.
func (s *RemoteStore) Stats() RemoteStats {
	return RemoteStats{
		RoundTrips: s.roundTrips.Load(),
		Retries:    s.retries.Load(),
		BytesSent:  s.bytesSent.Load(),
		BytesRecv:  s.bytesRecv.Load(),
	}
}

// Close closes the connection; subsequent operations fail without
// reconnecting.
func (s *RemoteStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

// exchange performs one request/response round trip under the connection
// lock, reconnecting and retrying on transport failures up to the retry
// budget. Injection: SiteRemoteConn drops the connection before the
// request is written; SiteRemoteShort truncates the response frame so its
// checksum cannot verify — both look like real network failures and are
// retried the same way.
func (s *RemoteStore) exchange(op byte, key Key, codecName string, codecVersion uint32, data []byte) (wireResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= remoteAttempts; attempt++ {
		if attempt > 1 {
			s.retries.Add(1)
		}
		resp, err := s.exchangeOnce(op, key, codecName, codecVersion, data)
		if err == nil {
			s.roundTrips.Add(1)
			return resp, nil
		}
		lastErr = err
		s.dropConnLocked()
		if s.closed {
			break
		}
	}
	return wireResponse{}, fault.New(fault.CodeStoreIO, "store", string(opName(op)),
		fmt.Errorf("remote store %s: %w", s.addr, lastErr)).WithFunc(key.Func).WithAttempt(remoteAttempts)
}

// exchangeOnce runs a single attempt over the current (or a fresh)
// connection. The caller holds s.mu.
func (s *RemoteStore) exchangeOnce(op byte, key Key, codecName string, codecVersion uint32, data []byte) (wireResponse, error) {
	if s.closed {
		return wireResponse{}, fmt.Errorf("store is closed")
	}
	if s.conn == nil {
		conn, err := net.DialTimeout("tcp", s.addr, s.timeout)
		if err != nil {
			return wireResponse{}, err
		}
		s.conn = conn
	}
	if s.faults().Should(fault.SiteRemoteConn) {
		s.dropConnLocked()
		return wireResponse{}, fmt.Errorf("%v", fault.Injected(fault.SiteRemoteConn))
	}
	s.nextID++
	id := s.nextID
	req := encodeRequest(wireRequest{
		ID: id, Op: op, Key: key, Codec: codecName, Version: codecVersion, Data: data,
	})
	// Deadlines bound one operation; the values never feed an artifact.
	//lint:ignore wallclock per-op transport deadline; the clock value never influences generated coefficients.
	deadline := time.Now().Add(s.timeout) //lint:ignore nondetflow the deadline reaches the conn only through SetDeadline; response bytes are server data, never clock-derived.
	if err := s.conn.SetDeadline(deadline); err != nil {
		return wireResponse{}, err
	}
	if err := writeFrame(s.conn, req); err != nil {
		return wireResponse{}, err
	}
	s.bytesSent.Add(int64(len(req) + 4))
	frame, err := readFrame(s.conn)
	if err != nil {
		return wireResponse{}, err
	}
	if s.faults().Should(fault.SiteRemoteShort) && len(frame) > 0 {
		frame = frame[:len(frame)/2]
	}
	s.bytesRecv.Add(int64(len(frame) + 4))
	resp, err := decodeResponse(frame)
	if err != nil {
		return wireResponse{}, err
	}
	if resp.ID != id || resp.Op != op {
		return wireResponse{}, fmt.Errorf("response for request %d/op %d, want %d/op %d",
			resp.ID, resp.Op, id, op)
	}
	return resp, nil
}

// dropConnLocked closes and forgets the connection. The caller holds s.mu.
func (s *RemoteStore) dropConnLocked() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// opName renders an op for error context.
func opName(op byte) string {
	switch op {
	case opGet:
		return "remote-get"
	case opPut:
		return "remote-put"
	case opDelete:
		return "remote-delete"
	case opAudit:
		return "remote-audit"
	}
	return "remote-unknown"
}

// Get fetches the artifact under key from the server. Any transport or
// server failure degrades to a miss — the stage recomputes, exactly as it
// would over a failing disk.
func (s *RemoteStore) Get(key Key, codecName string, codecVersion uint32) ([]byte, bool) {
	resp, err := s.exchange(opGet, key, codecName, codecVersion, nil)
	if err != nil || resp.Status != statusOK {
		return nil, false
	}
	return resp.Data, true
}

// Put stores the artifact under key on the server. A transport failure
// past the retry budget or a server-side write failure returns a typed
// *fault.Error (CodeStoreIO); the stage runner logs it and continues
// uncached.
func (s *RemoteStore) Put(key Key, codecName string, codecVersion uint32, data []byte) error {
	resp, err := s.exchange(opPut, key, codecName, codecVersion, data)
	if err != nil {
		return err
	}
	if resp.Status == statusErr {
		return fault.New(fault.CodeStoreIO, "store", "remote-put",
			fmt.Errorf("remote store %s: %s", s.addr, resp.Errmsg)).WithFunc(key.Func)
	}
	return nil
}

// Delete removes the artifact under key on the server.
func (s *RemoteStore) Delete(key Key, codecName string, codecVersion uint32) error {
	resp, err := s.exchange(opDelete, key, codecName, codecVersion, nil)
	if err != nil {
		return err
	}
	if resp.Status == statusErr {
		return fault.New(fault.CodeStoreIO, "store", "remote-delete",
			fmt.Errorf("remote store %s: %s", s.addr, resp.Errmsg)).WithFunc(key.Func)
	}
	return nil
}

// Audit asks the server to audit its backing store and relays the result.
func (s *RemoteStore) Audit() error {
	resp, err := s.exchange(opAudit, Key{Func: "audit", Stage: "audit", Fingerprint: "audit"}, "audit", 0, nil)
	if err != nil {
		return err
	}
	if resp.Status == statusErr {
		return fmt.Errorf("pipeline: remote audit: %s", resp.Errmsg)
	}
	return nil
}
