package pipeline

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// Store is the artifact-store seam of the staged pipeline: a
// content-addressed byte store for sealed artifact frames, plus the
// probe-event log that tests and tooling use to assert which stages were
// served from cache. Three backends implement it — the atomic-rename
// on-disk store (DiskStore), the ephemeral in-memory store (MemStore) and
// the framed-TCP client (RemoteStore) — and because the sealed-frame codec
// makes artifacts location-independent, a pipeline run produces
// bit-identical results through any of them.
//
// All methods must be safe for concurrent use; Get must never observe a
// partial Put (backends stage writes and publish atomically). The
// interface is deliberately sealed to this package via the unexported
// record method: every backend shares one event-log and fault-injection
// implementation, so their observable behavior can be pinned by one
// backend-matrix test.
type Store interface {
	// Get returns the sealed artifact bytes stored under the key and codec
	// identity, reporting ok=false on any miss or read failure (caching is
	// an optimization, never a correctness dependency).
	Get(key Key, codecName string, codecVersion uint32) ([]byte, bool)
	// Put stores sealed artifact bytes under the key and codec identity,
	// atomically: a failed or interrupted Put leaves either the previous
	// artifact or none, never a partial one.
	Put(key Key, codecName string, codecVersion uint32, data []byte) error
	// Delete removes the artifact under the key and codec identity (the
	// stage runner deletes corrupt artifacts before regenerating).
	// Deleting an absent artifact is not an error.
	Delete(key Key, codecName string, codecVersion uint32) error
	// Audit reports the first ill-formed entry in the store: a lingering
	// temp file, a foreign file, or an artifact whose frame checksum does
	// not verify. The fault-matrix tests run it after every scenario.
	Audit() error
	// SetFaults installs a fault-injection plan on the backend's probe
	// sites (see internal/fault); nil — the default — disables injection.
	// The swap is atomic, so it may race with in-flight operations without
	// tripping the race detector, but for deterministic injection install
	// the plan before any pipeline runs share the store.
	SetFaults(*fault.Plan)

	// The probe-event log, shared by all backends (see eventLog).
	Events() []Event
	ResetEvents()
	CountEvents(stage string, hit bool) int
	record(key Key, hit bool)
}

// Event records one stage-cache probe; tests and tooling use the event
// log to assert which stages were served from cache.
type Event struct {
	Key Key
	Hit bool
}

// eventLog is the probe-event log every backend embeds. All methods are
// mutex-guarded and safe for concurrent use.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

// record appends one probe outcome to the event log.
func (l *eventLog) record(key Key, hit bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Key: key, Hit: hit})
}

// Events returns a copy of the probe log, in probe order.
func (l *eventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// ResetEvents clears the probe log.
func (l *eventLog) ResetEvents() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
}

// CountEvents returns how many probes of the given stage had the given
// outcome ("" matches every stage).
func (l *eventLog) CountEvents(stage string, hit bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if (stage == "" || e.Key.Stage == stage) && e.Hit == hit {
			n++
		}
	}
	return n
}

// faultGate holds a backend's fault-injection plan behind an atomic
// pointer, so SetFaults may be called while other goroutines probe the
// store (tests arm and disarm plans between runs) without a data race.
type faultGate struct {
	plan atomic.Pointer[fault.Plan]
}

// SetFaults installs (or, with nil, removes) the injection plan.
func (g *faultGate) SetFaults(p *fault.Plan) {
	if p == nil {
		g.plan.Store(nil)
		return
	}
	g.plan.Store(p)
}

// faults returns the installed plan; nil (never injects) by default.
func (g *faultGate) faults() *fault.Plan { return g.plan.Load() }
