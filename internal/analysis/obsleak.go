package analysis

import (
	"go/ast"
)

// ObsLeak flags calls to the read side of internal/obs — Report, Render,
// WriteJSON, WriteFile — in any package on the coefficient path (the same
// transitive import closure the wallclock analyzer uses).
//
// The observability contract is that coefficients are bit-identical with
// the layer on or off, which holds only if the coefficient path is
// write-only toward obs: spans and counters may be recorded anywhere, but
// reading them back inside enumeration, solving or rounding would let
// observed values feed into generated coefficients. Report emission belongs
// in internal/cli and the commands, which sit outside the coefficient path.
// internal/obs itself is exempt — the layer must read its own state to
// build reports.
var ObsLeak = &Analyzer{
	Name: "obsleak",
	Doc:  "observability read-back in a package on the generated-coefficient path",
	Run:  runObsLeak,
}

// obsReadFuncs are the read-side entry points of internal/obs.
var obsReadFuncs = map[string]bool{"Report": true, "Render": true, "WriteJSON": true, "WriteFile": true}

func runObsLeak(p *Pass) []Diagnostic {
	if !p.Pkg.CoeffPath {
		return nil
	}
	obsPath := p.Module.Path + "/internal/obs"
	if p.Pkg.ImportPath == obsPath {
		return nil
	}
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.funcOf(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !obsReadFuncs[fn.Name()] {
			return true
		}
		diags = append(diags, p.report("obsleak", call,
			"obs.%s in coefficient-path package %s: observability is write-only on the coefficient path (recorded values must never feed back into generation)", fn.Name(), p.Pkg.ImportPath))
		return true
	})
	return diags
}
