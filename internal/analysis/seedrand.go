package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedRand enforces the deterministic-seeding contract of the generation
// and solve paths: every random draw must come from a *rand.Rand whose seed
// derives from the run's Seed option (gen derives one stream per (Seed,
// function, kernel, piece) through pieceSeed). Two violation classes:
//
//   - any use of math/rand's package-level draw functions (Intn, Float64,
//     Shuffle, ...) — they share the process-global source, whose draws
//     interleave nondeterministically across goroutines;
//   - a rand.NewSource / rand/v2 generator whose seed argument is neither a
//     constant nor visibly derived from the seed scheme (no referenced
//     identifier mentions "seed"), or that reads the clock via the time
//     package.
//
// The derivation check is a heuristic (static analysis cannot trace the
// value): it accepts any argument that mentions a seed-named identifier and
// rejects clock reads outright.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc:  "global math/rand source, or RNG seed not derived from the deterministic seed scheme",
	Run:  runSeedRand,
}

// randCtors are the math/rand package functions that construct generators
// rather than drawing from the global source.
var randCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

// seededCtors take the seed material directly as arguments.
var seededCtors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

func runSeedRand(p *Pass) []Diagnostic {
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if f := p.funcOf(call); f != nil && f.Pkg() != nil && seededCtors[f.Name()] &&
				(f.Pkg().Path() == "math/rand" || f.Pkg().Path() == "math/rand/v2") {
				diags = append(diags, p.checkSeedArgs(call, f.Name())...)
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "math/rand" && pkg != "math/rand/v2" {
			return true
		}
		// Package-level draw functions only: methods on *rand.Rand have a
		// receiver and are exactly what the contract asks callers to use.
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		if randCtors[fn.Name()] {
			return true
		}
		obj := fn
		diags = append(diags, p.report("seedrand", sel,
			"%s.%s draws from the process-global source; use a *rand.Rand seeded from the deterministic (Seed, function, kernel, piece) scheme", obj.Pkg().Name(), obj.Name()))
		return true
	})
	return diags
}

// checkSeedArgs validates the seed material of a generator constructor.
func (p *Pass) checkSeedArgs(call *ast.CallExpr, ctor string) []Diagnostic {
	var diags []Diagnostic
	for _, arg := range call.Args {
		if p.mentionsTimePkg(arg) {
			diags = append(diags, p.report("seedrand", call,
				"rand.%s seeded from the clock; seeds must derive from the deterministic seed scheme", ctor))
			return diags
		}
	}
	ok := true
	for _, arg := range call.Args {
		if tv, found := p.Info.Types[arg]; found && tv.Value != nil {
			continue // constant seed: deterministic by construction
		}
		if p.mentionsSeedIdent(arg) {
			continue // visibly derived from the seed scheme
		}
		ok = false
	}
	if !ok && len(call.Args) > 0 {
		diags = append(diags, p.report("seedrand", call,
			"rand.%s seed is neither constant nor visibly derived from the deterministic seed scheme (no referenced identifier mentions \"seed\")", ctor))
	}
	return diags
}

// mentionsTimePkg reports whether e references anything from package time.
func (p *Pass) mentionsTimePkg(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsSeedIdent reports whether any identifier referenced by e (a
// variable, field, or function such as pieceSeed) has "seed" in its name.
func (p *Pass) mentionsSeedIdent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(x.Name), "seed") {
				found = true
			}
		case *ast.SelectorExpr:
			if strings.Contains(strings.ToLower(x.Sel.Name), "seed") {
				found = true
			}
		}
		return !found
	})
	return found
}
