package analysis

import (
	"go/ast"
	"go/types"
)

// BarePanic flags panic calls whose argument does not implement error in
// any package on the coefficient path (the transitive import closure of
// internal/gen and internal/remez, same scope as wallclock).
//
// The pipeline's failure model (DESIGN.md §8) recovers panics at the
// worker-pool boundary and converts them into typed *fault.Error values
// carrying stage, function and piece context. That conversion preserves a
// panic value that already is an error — a bare panic("message") or
// panic(fmt.Sprintf(...)) instead collapses into an opaque worker-panic
// fault with no code to dispatch on. Coefficient-path code must therefore
// panic typed errors (fault.New wrapping the cause); a true can't-happen
// invariant whose message will never need programmatic handling may carry
// a //lint:ignore barepanic with that justification.
var BarePanic = &Analyzer{
	Name: "barepanic",
	Doc:  "panic with a non-error value in a package on the generated-coefficient path",
	Run:  runBarePanic,
}

func runBarePanic(p *Pass) []Diagnostic {
	if !p.Pkg.CoeffPath {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		tv, ok := p.Info.Types[call.Args[0]]
		if !ok || tv.Type == nil {
			return true
		}
		// Only the value type counts: recover() returns the panic value
		// as-is, so a T whose *T implements error still recovers as a
		// non-error.
		if types.Implements(tv.Type, errType) {
			return true
		}
		diags = append(diags, p.report("barepanic", call,
			"panic(%s) in coefficient-path package %s: panic values must implement error (use fault.New) so pool recovery keeps a typed code", types.TypeString(tv.Type, nil), p.Pkg.ImportPath))
		return true
	})
	return diags
}
