package analysis

import "fmt"

// NondetFlow is the interprocedural strengthening of the per-file
// wallclock/seedrand/mapiter heuristics: a forward taint analysis proving
// that no value derived from a wall-clock read, from unseeded randomness,
// or from map-iteration order ever reaches a persisted artifact — the
// pipeline's sealed-frame codec, a cache-key fingerprint, or coefficient
// emission. Those per-file analyzers police *presence* in sensitive
// packages; nondetflow polices *flow* across the whole module, so a clock
// read in a command that merely logs stays legal while the same read
// threaded through three helpers into pipeline.Enc.U64 goes red.
//
// Sources: time.Now/Since/Until results; math/rand (v1 and v2)
// package-level draws and constructors whose seed material fails the
// seedrand derivation heuristic; the key and value variables of a range
// over a map. Objects passed to a sort or slices function count as
// order-sanitized for their whole function (the same justification the
// mapiter ignores use), so collect-then-sort loops stay clean.
//
// Sinks: pipeline.Enc methods and pipeline.Seal, any function or method
// named Fingerprint, gen.EmitGo, and unit functions marked
// //nondetflow:sink. context.Context values are taint-opaque: spans and
// deadlines ride the context by design, and tracking them would mark every
// stage result tainted. Diagnostics anchor at the source; `rlibm-lint -why`
// prints the source-to-sink call path. See DESIGN.md §11 for the lattice
// and the soundness caveats.
var NondetFlow = &Analyzer{
	Name:            "nondetflow",
	Doc:             "wall-clock, unseeded-randomness or map-order value flows into an artifact codec, fingerprint or coefficient emission",
	Run:             runNondetFlow,
	Interprocedural: true,
}

func runNondetFlow(p *Pass) []Diagnostic {
	if p.Interp == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Interp.taint {
		if f.node.Pkg != p.Pkg {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      f.src.pos,
			Analyzer: "nondetflow",
			Message: fmt.Sprintf("%s from %s reaches %s; nondeterminism must not influence persisted artifacts (-why prints the flow path)",
				f.src.kind, f.src.desc, f.sink),
			Path: f.path,
		})
	}
	return diags
}
