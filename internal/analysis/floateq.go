package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between float32/float64 operands. In a correctly
// rounded math library, float equality between two computed values is
// either a bug (comparing rounded results that differ by an ulp) or a
// deliberate bit-exact test that deserves a justification on the line.
//
// Two comparison shapes are exempt because they are sentinel idioms, not
// arithmetic comparisons: a comparison where either operand is a
// compile-time constant (x == 0, m == 0.5, lo == -math.MaxFloat64 — the
// constant is a fixed bit pattern and the check is a structural dispatch),
// and the integrality idiom x == math.Trunc(x) (and Floor/Ceil/Round),
// whose result is exact by the definition of those functions.
//
// The bit-level helper home internal/fp is allowlisted wholesale: encoding,
// rounding-boundary and representation checks there compare exact bit
// patterns by design. Everywhere else a deliberate exact comparison —
// merge keys that were stored rather than recomputed, interval endpoint
// identity, simplex pivot entries — carries a //lint:ignore floateq (or a
// file-level //lint:file-ignore floateq where exact comparison is the
// file's whole point) stating why rounding cannot break it.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "==/!= on floating-point operands outside the bit-level helpers in internal/fp",
	Run:  runFloatEq,
}

// floatEqAllowed lists packages (module-relative) whose job is bit-level
// float manipulation; exact comparison there is the point.
var floatEqAllowed = map[string]bool{"internal/fp": true}

func runFloatEq(p *Pass) []Diagnostic {
	if rel, ok := moduleRel(p.Module, p.Pkg.ImportPath); ok && floatEqAllowed[rel] {
		return nil
	}
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
		if tx.Type == nil || ty.Type == nil || !isFloat(tx.Type) || !isFloat(ty.Type) {
			return true
		}
		if tx.Value != nil || ty.Value != nil {
			return true // sentinel comparison against a compile-time constant
		}
		if p.isIntegralityCall(be.X) || p.isIntegralityCall(be.Y) {
			return true // x == math.Trunc(x) idiom: exact by definition
		}
		diags = append(diags, p.report("floateq", be,
			"%s on computed floating-point operands; compare bit patterns via internal/fp, or justify the exact comparison with //lint:ignore floateq", be.Op))
		return true
	})
	return diags
}

// integralityFuncs are the math functions whose results are exactly
// integral, making equality against them the standard is-integer idiom.
var integralityFuncs = map[string]bool{"Trunc": true, "Floor": true, "Ceil": true, "Round": true}

// isIntegralityCall reports whether e is a direct call to
// math.Trunc/Floor/Ceil/Round.
func (p *Pass) isIntegralityCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := p.funcOf(call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "math" && integralityFuncs[f.Name()]
}

// moduleRel returns the module-relative path of an import path ("" for the
// root package) and whether ip belongs to the module.
func moduleRel(m *Module, ip string) (string, bool) {
	if ip == m.Path {
		return "", true
	}
	if len(ip) > len(m.Path)+1 && ip[:len(m.Path)+1] == m.Path+"/" {
		return ip[len(m.Path)+1:], true
	}
	return "", false
}
