package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the forward taint engine behind nondetflow. The
// lattice is small: a value is either clean or tainted by one or more
// sources, where a source is a concrete program point producing a
// nondeterministic value — a wall-clock read, a draw from unseeded
// randomness, or a map iteration (whose order Go randomizes per run).
//
// The engine is summary-based and interprocedural. For every unit function
// it computes, to a fixpoint across the unit:
//
//   - paramSink[i]:   parameter i flows (transitively) into a sink;
//   - paramResult[i]: parameter i flows into a result value;
//   - srcResult:      sources inside the function (or its callees) flow
//     into a result value.
//
// Methods prepend their receiver as parameter 0. Within one function,
// propagation is object-granular and flow-insensitive: assignments taint
// the destination's root object, and the body is re-walked until the
// tainted set stops growing. Flow-insensitivity trades precision for
// robustness (no CFG needed) and is conservative in the reporting
// direction, with one documented exception: an object that is ever passed
// to a sort function is treated as sorted everywhere in that function, so
// map-order taint on it is dropped. That mirrors the justification the
// per-file mapiter ignores already use ("sorted before any use") and keeps
// collect-then-sort loops clean without per-site annotations.
//
// Sinks are where nondeterminism would become a persisted artifact:
// the pipeline's sealed-frame codec (pipeline.Enc methods, pipeline.Seal),
// cache-key fingerprints (any method or function named Fingerprint),
// coefficient emission (gen.EmitGo), and any unit function whose doc
// comment carries a //nondetflow:sink marker (fixtures; future artifact
// writers).
//
// One precision choice is load-bearing: context.Context values are
// taint-opaque. Observability spans and deadlines ride the context through
// every pipeline stage by design, so tracking taint through ctx would mark
// every stage result wall-clock-tainted and drown the one real smuggled
// timestamp in wrapper noise. The cost is explicit: a value laundered
// through context.WithValue is invisible to this analyzer and is left to
// review (and to the per-file wallclock analyzer, which still flags the
// clock read itself on the coefficient path).

// taintKind classifies a nondeterminism source.
type taintKind uint8

const (
	taintClock taintKind = iota
	taintRand
	taintMapOrder
)

func (k taintKind) String() string {
	switch k {
	case taintClock:
		return "wall-clock value"
	case taintRand:
		return "unseeded-randomness value"
	default:
		return "map-iteration-ordered value"
	}
}

// source is one program point introducing taint. Identity matters: the
// engine caches sources per position so fixpoint rounds converge.
type source struct {
	kind taintKind
	pos  token.Position
	desc string // e.g. "time.Now", "range over map"
	fn   *Node  // function containing the source
}

// PathStep is one step of an interprocedural witness path.
type PathStep struct {
	Pos  token.Position
	Func string
}

// flowTok is one unit of taint on an object: the originating source plus
// the cross-function steps accumulated since it left the source's
// function. Within the source's own function via is empty.
type flowTok struct {
	src *source
	via []PathStep
}

// sinkChain is a function summary's witness fragment: the call steps from
// a tainted parameter down to the sink it reaches.
type sinkChain struct {
	sink  string // sink description, e.g. "artifact codec (repro/internal/pipeline.Enc).U64"
	steps []PathStep
}

// summary is the interprocedural behavior of one unit function.
type summary struct {
	node        *Node
	params      []types.Object // receiver (if any) then parameters
	paramSink   []*sinkChain   // per param; nil = no flow to a sink
	paramResult []bool
	srcResult   []flowTok // sources flowing into a result value
}

// taintFinding is one source-reaches-sink violation.
type taintFinding struct {
	src  *source
	sink string
	path []PathStep
	node *Node // function containing the source (reporting anchor)
}

// taintEngine runs the analysis over one unit.
type taintEngine struct {
	m        *Module
	g        *Graph
	sums     map[*Node]*summary
	sources  map[token.Pos]*source
	findings []taintFinding
	emit     bool // final round: record findings
}

// runTaint analyzes the unit to a fixpoint and returns the findings in
// deterministic order.
func runTaint(m *Module, g *Graph) []taintFinding {
	e := &taintEngine{
		m:       m,
		g:       g,
		sums:    make(map[*Node]*summary),
		sources: make(map[token.Pos]*source),
	}
	for _, n := range g.Nodes {
		e.sums[n] = newSummary(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if e.analyze(n) {
				changed = true
			}
		}
	}
	e.emit = true
	for _, n := range g.Nodes {
		e.analyze(n)
	}
	return e.findings
}

// newSummary builds the empty summary, resolving the parameter objects.
func newSummary(n *Node) *summary {
	s := &summary{node: n}
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return s
	}
	if r := sig.Recv(); r != nil {
		s.params = append(s.params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		s.params = append(s.params, sig.Params().At(i))
	}
	s.paramSink = make([]*sinkChain, len(s.params))
	s.paramResult = make([]bool, len(s.params))
	return s
}

// taintState is the per-function propagation state of one analyze pass.
type taintState struct {
	e          *taintEngine
	n          *Node
	sum        *summary
	pkg        *Package
	tainted    map[types.Object][]flowTok // object → source tokens (dedup by source)
	paramTaint map[types.Object][]int     // object → summary param indices it carries
	params     map[types.Object]int       // parameter object → its summary index
	sanitized  map[types.Object]bool      // ever passed to a sort function
	resultObjs []types.Object             // named result objects, declaration order
	changed    bool
}

// analyze walks one function to its local fixpoint, updating the
// function's summary; reports whether the summary changed.
func (e *taintEngine) analyze(n *Node) bool {
	st := &taintState{
		e:          e,
		n:          n,
		sum:        e.sums[n],
		pkg:        n.Pkg,
		tainted:    make(map[types.Object][]flowTok),
		paramTaint: make(map[types.Object][]int),
		params:     make(map[types.Object]int),
		sanitized:  make(map[types.Object]bool),
	}
	for i, p := range st.sum.params {
		st.params[p] = i
	}
	if res := n.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if obj := st.pkg.Info.Defs[name]; obj != nil {
					st.resultObjs = append(st.resultObjs, obj)
				}
			}
		}
	}
	// Pre-pass: objects handed to sort functions are order-sanitized for
	// the whole function (see the package comment for the caveat).
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := st.funcOf(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil {
				if obj := st.pkg.Info.Uses[id]; obj != nil {
					st.sanitized[obj] = true
				}
			}
		}
		return true
	})

	before := e.summarySig(st.sum)
	for pass := 0; ; pass++ {
		st.changed = false
		st.walk(n.Decl.Body)
		if !st.changed || pass > 32 {
			break
		}
	}
	// Named results tainted anywhere taint the summary's result slots.
	for _, obj := range st.resultObjs {
		for _, tok := range st.tainted[obj] {
			st.recordResult(tok)
		}
		for _, i := range st.paramTaint[obj] {
			if !st.sum.paramResult[i] {
				st.sum.paramResult[i] = true
				st.changed = true
			}
		}
	}
	return e.summarySig(st.sum) != before
}

// summarySig renders a summary to a comparable string for change
// detection.
func (e *taintEngine) summarySig(s *summary) string {
	var b strings.Builder
	for i, c := range s.paramSink {
		if c != nil {
			fmt.Fprintf(&b, "s%d:%s;", i, c.sink)
		}
	}
	for i, r := range s.paramResult {
		if r {
			fmt.Fprintf(&b, "r%d;", i)
		}
	}
	for _, tok := range s.srcResult {
		fmt.Fprintf(&b, "o%s:%d;", tok.src.pos, len(tok.via))
	}
	return b.String()
}

// funcOf mirrors Pass.funcOf for the state's package.
func (st *taintState) funcOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := st.pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := st.pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// taintable reports whether taint may attach to obj. context.Context
// values are taint-opaque (see the package comment): spans and deadlines
// ride the context everywhere, and tracking them would taint every derived
// result in the module.
func taintable(obj types.Object) bool {
	return obj != nil && !isContextType(obj.Type())
}

// addTaint merges tok into obj's taint set (dedup by source identity).
func (st *taintState) addTaint(obj types.Object, tok flowTok) {
	if !taintable(obj) {
		return
	}
	if tok.src.kind == taintMapOrder && st.sanitized[obj] {
		return
	}
	for _, have := range st.tainted[obj] {
		if have.src == tok.src {
			return
		}
	}
	st.tainted[obj] = append(st.tainted[obj], tok)
	st.changed = true
}

// addParam marks obj as carrying parameter i's value.
func (st *taintState) addParam(obj types.Object, i int) {
	if !taintable(obj) {
		return
	}
	for _, have := range st.paramTaint[obj] {
		if have == i {
			return
		}
	}
	st.paramTaint[obj] = append(st.paramTaint[obj], i)
	st.changed = true
}

// recordResult merges tok into the summary's source-to-result set.
func (st *taintState) recordResult(tok flowTok) {
	for _, have := range st.sum.srcResult {
		if have.src == tok.src {
			return
		}
	}
	st.sum.srcResult = append(st.sum.srcResult, tok)
	st.changed = true
}

// walk drives one propagation pass over the function body.
func (st *taintState) walk(body ast.Node) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			st.assign(x)
		case *ast.ValueSpec:
			toks, params := st.exprListTaint(x.Values)
			for _, name := range x.Names {
				obj := st.pkg.Info.Defs[name]
				for _, tok := range toks {
					st.addTaint(obj, tok)
				}
				for _, i := range params {
					st.addParam(obj, i)
				}
			}
		case *ast.RangeStmt:
			st.rangeStmt(x)
		case *ast.ReturnStmt:
			toks, params := st.exprListTaint(x.Results)
			for _, tok := range toks {
				st.recordResult(tok)
			}
			for _, i := range params {
				if !st.sum.paramResult[i] {
					st.sum.paramResult[i] = true
					st.changed = true
				}
			}
		case *ast.CallExpr:
			st.callEffects(x)
		}
		return true
	})
}

// assign propagates RHS taint into LHS root objects. Multi-value
// assignments from a single call taint every destination (conservative).
func (st *taintState) assign(as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		toks, params := st.exprTaint(as.Rhs[0])
		for _, lhs := range as.Lhs {
			st.taintLHS(lhs, toks, params)
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		toks, params := st.exprTaint(rhs)
		// Compound assignment keeps existing taint and merges the RHS.
		st.taintLHS(as.Lhs[i], toks, params)
	}
}

// taintLHS taints the root object of an assignment destination.
func (st *taintState) taintLHS(lhs ast.Expr, toks []flowTok, params []int) {
	if len(toks) == 0 && len(params) == 0 {
		return
	}
	id := rootIdent(lhs)
	if id == nil {
		return
	}
	obj := st.pkg.Info.Uses[id]
	if obj == nil {
		obj = st.pkg.Info.Defs[id]
	}
	for _, tok := range toks {
		st.addTaint(obj, tok)
	}
	for _, i := range params {
		st.addParam(obj, i)
	}
}

// rangeStmt introduces map-order taint on the key and value variables of a
// range over a map.
func (st *taintState) rangeStmt(rs *ast.RangeStmt) {
	t := st.pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	src := st.e.sourceAt(rs.Pos(), taintMapOrder, "range over map", st.n)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			obj := st.pkg.Info.Defs[id]
			if obj == nil {
				obj = st.pkg.Info.Uses[id]
			}
			st.addTaint(obj, flowTok{src: src})
		}
	}
}

// sourceAt returns the cached source for a program point.
func (e *taintEngine) sourceAt(pos token.Pos, kind taintKind, desc string, fn *Node) *source {
	if s, ok := e.sources[pos]; ok {
		return s
	}
	s := &source{kind: kind, pos: e.g.Fset.Position(pos), desc: desc, fn: fn}
	e.sources[pos] = s
	return s
}

// exprListTaint unions exprTaint over a list.
func (st *taintState) exprListTaint(exprs []ast.Expr) ([]flowTok, []int) {
	var toks []flowTok
	var params []int
	for _, e := range exprs {
		t, p := st.exprTaint(e)
		toks = append(toks, t...)
		params = append(params, p...)
	}
	return toks, params
}

// exprTaint computes the taint of an expression: the source tokens it
// carries and the summary parameter indices it mentions.
func (st *taintState) exprTaint(expr ast.Expr) ([]flowTok, []int) {
	if expr == nil {
		return nil, nil
	}
	var toks []flowTok
	var params []int
	seenSrc := make(map[*source]bool)
	seenParam := make(map[int]bool)
	addTok := func(tok flowTok) {
		if !seenSrc[tok.src] {
			seenSrc[tok.src] = true
			toks = append(toks, tok)
		}
	}
	ast.Inspect(expr, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false // a closure value is not itself tainted
		case *ast.Ident:
			obj := st.pkg.Info.Uses[x]
			if !taintable(obj) {
				return true
			}
			for _, tok := range st.tainted[obj] {
				addTok(tok)
			}
			if i, ok := st.params[obj]; ok && !seenParam[i] {
				seenParam[i] = true
				params = append(params, i)
			}
			for _, i := range st.paramTaint[obj] {
				if !seenParam[i] {
					seenParam[i] = true
					params = append(params, i)
				}
			}
		case *ast.CallExpr:
			t, p := st.callTaint(x)
			for _, tok := range t {
				addTok(tok)
			}
			for _, i := range p {
				if !seenParam[i] {
					seenParam[i] = true
					params = append(params, i)
				}
			}
			return false // callTaint handled the arguments
		}
		return true
	})
	return toks, params
}

// callTaint computes the taint of a call's result value and, as a side
// effect, checks sink reachability for its arguments (via callEffects'
// shared implementation).
func (st *taintState) callTaint(call *ast.CallExpr) ([]flowTok, []int) {
	return st.callImpl(call, true)
}

// callEffects processes a call whose result is discarded (sink checks and
// summary propagation still apply).
func (st *taintState) callEffects(call *ast.CallExpr) {
	st.callImpl(call, false)
}

// callImpl is the shared call handler. wantResult selects whether the
// result taint is computed and returned.
func (st *taintState) callImpl(call *ast.CallExpr, wantResult bool) ([]flowTok, []int) {
	// Source calls produce fresh taint.
	if src := st.sourceCall(call); src != nil {
		return []flowTok{{src: src}}, nil
	}

	// Gather per-argument taint: receiver (for method calls) first, to
	// line up with summary parameter indexing.
	args := st.callArgs(call)
	argToks := make([][]flowTok, len(args))
	argParams := make([][]int, len(args))
	for i, a := range args {
		argToks[i], argParams[i] = st.exprTaint(a)
	}

	var resToks []flowTok
	var resParams []int
	edges := st.e.g.CalleesOf(call)
	for _, e := range edges {
		callee := e.Callee
		// Sink check at the call boundary.
		if sink := st.e.sinkDesc(callee); sink != "" {
			for i := range args {
				for _, tok := range argToks[i] {
					st.foundSink(tok, sink, call, nil)
				}
				for _, pi := range argParams[i] {
					st.paramToSink(pi, sink, call, callee, nil)
				}
			}
			continue
		}
		sum, ok := st.e.sums[callee]
		if !ok {
			continue // external function; handled below
		}
		for i := range args {
			if i >= len(sum.params) {
				break
			}
			if chain := sum.paramSink[i]; chain != nil {
				for _, tok := range argToks[i] {
					st.foundSink(tok, chain.sink, call, chain.steps)
				}
				for _, pi := range argParams[i] {
					st.paramToSink(pi, chain.sink, call, callee, chain.steps)
				}
			}
			if sum.paramResult[i] && wantResult {
				resToks = append(resToks, argToks[i]...)
				resParams = append(resParams, argParams[i]...)
			}
		}
		if wantResult {
			for _, tok := range sum.srcResult {
				step := PathStep{Pos: st.e.g.Fset.Position(call.Pos()), Func: st.n.Name()}
				via := append(append([]PathStep(nil), tok.via...), step)
				resToks = append(resToks, flowTok{src: tok.src, via: via})
			}
		}
	}

	// Calls outside the unit (standard library, mostly): the result is as
	// tainted as the arguments. This keeps fmt.Sprintf(time.Now()) or
	// t.UnixNano() tainted through the conversion.
	if len(edges) == 0 || onlyExternal(edges) {
		if wantResult {
			for i := range args {
				resToks = append(resToks, argToks[i]...)
				resParams = append(resParams, argParams[i]...)
			}
		}
	}
	return dedupToks(resToks), dedupInts(resParams)
}

// onlyExternal reports whether every edge points outside the unit.
func onlyExternal(edges []*Edge) bool {
	for _, e := range edges {
		if e.Callee.Decl != nil {
			return false
		}
	}
	return true
}

func dedupToks(toks []flowTok) []flowTok {
	if len(toks) < 2 {
		return toks
	}
	seen := make(map[*source]bool, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if !seen[t.src] {
			seen[t.src] = true
			out = append(out, t)
		}
	}
	return out
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// callArgs returns the call's taint-relevant argument expressions, with
// the receiver prepended for method calls so indices line up with
// summary.params.
func (st *taintState) callArgs(call *ast.CallExpr) []ast.Expr {
	var args []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := st.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			args = append(args, sel.X)
		}
	}
	return append(args, call.Args...)
}

// foundSink records a source-to-sink violation (only on the emit round).
func (st *taintState) foundSink(tok flowTok, sink string, call *ast.CallExpr, tail []PathStep) {
	if !st.e.emit {
		return
	}
	path := make([]PathStep, 0, len(tok.via)+len(tail)+2)
	path = append(path, PathStep{Pos: tok.src.pos, Func: tok.src.fn.Name()})
	path = append(path, tok.via...)
	path = append(path, PathStep{Pos: st.e.g.Fset.Position(call.Pos()), Func: st.n.Name()})
	path = append(path, tail...)
	for _, have := range st.e.findings {
		if have.src == tok.src && have.sink == sink {
			return
		}
	}
	st.e.findings = append(st.e.findings, taintFinding{src: tok.src, sink: sink, path: path, node: tok.src.fn})
}

// paramToSink records that the current function forwards parameter pi into
// a sink, extending the witness chain with this call site.
func (st *taintState) paramToSink(pi int, sink string, call *ast.CallExpr, callee *Node, tail []PathStep) {
	if st.sum.paramSink[pi] != nil {
		return // first chain wins; deterministic by walk order
	}
	steps := make([]PathStep, 0, len(tail)+1)
	steps = append(steps, PathStep{Pos: st.e.g.Fset.Position(call.Pos()), Func: st.n.Name()})
	steps = append(steps, tail...)
	st.sum.paramSink[pi] = &sinkChain{sink: sink, steps: steps}
	st.changed = true
}

// sourceCall recognizes the taint sources that are call expressions:
// wall-clock reads and unseeded randomness.
func (st *taintState) sourceCall(call *ast.CallExpr) *source {
	fn := st.funcOf(call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockFuncs[fn.Name()] {
			return st.e.sourceAt(call.Pos(), taintClock, "time."+fn.Name(), st.n)
		}
	case "math/rand", "math/rand/v2":
		if randCtors[fn.Name()] {
			// A constructor is a source only when its seed material is
			// neither constant nor visibly seed-derived (the seedrand
			// heuristic), or reads the clock.
			if st.unseededCtor(call) {
				return st.e.sourceAt(call.Pos(), taintRand, fn.Pkg().Name()+"."+fn.Name(), st.n)
			}
			return nil
		}
		// Package-level draws share the process-global source.
		return st.e.sourceAt(call.Pos(), taintRand, fn.Pkg().Name()+"."+fn.Name(), st.n)
	}
	return nil
}

// unseededCtor reports whether a rand constructor's seed material fails
// the seedrand derivation heuristic.
func (st *taintState) unseededCtor(call *ast.CallExpr) bool {
	p := &Pass{Module: st.e.m, Fset: st.e.g.Fset, Pkg: st.pkg, Info: st.pkg.Info}
	for _, arg := range call.Args {
		if p.mentionsTimePkg(arg) {
			return true
		}
	}
	for _, arg := range call.Args {
		if tv, found := st.pkg.Info.Types[arg]; found && tv.Value != nil {
			continue
		}
		if sub, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			// rand.New(rand.NewSource(seed)): judge the inner ctor.
			if inner := st.funcOf(sub); inner != nil && inner.Pkg() != nil &&
				randCtors[inner.Name()] &&
				(inner.Pkg().Path() == "math/rand" || inner.Pkg().Path() == "math/rand/v2") {
				if !st.unseededCtor(sub) {
					continue
				}
				return true
			}
		}
		if p.mentionsSeedIdent(arg) {
			continue
		}
		return true
	}
	return false
}

// sinkDesc classifies a callee as a nondeterminism sink, returning a short
// human description or "".
func (e *taintEngine) sinkDesc(n *Node) string {
	fn := n.Fn
	if docMarker(n.Decl, "//nondetflow:sink") {
		return "marked sink " + fn.FullName()
	}
	if fn.Name() == "Fingerprint" {
		return "cache-key fingerprint " + fn.FullName()
	}
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case e.m.Path + "/internal/pipeline":
		if fn.Name() == "Seal" {
			return "artifact codec " + fn.FullName()
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := derefNamed(sig.Recv().Type()); ok && named.Obj().Name() == "Enc" {
				return "artifact codec " + fn.FullName()
			}
		}
	case e.m.Path + "/internal/gen":
		if fn.Name() == "EmitGo" {
			return "coefficient emission " + fn.FullName()
		}
	}
	return ""
}

// derefNamed unwraps a pointer type to its named base.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}
