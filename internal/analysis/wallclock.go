package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock flags clock reads — time.Now, time.Since, time.Until — in any
// package on the coefficient path: the transitive module-local import
// closure of the coefficient generators (internal/gen and internal/remez),
// computed from the real import graph at load time rather than hardcoded.
//
// Generated coefficient tables are committed and regenerated from fixed
// seeds; a wall-clock value flowing into enumeration, solving or rounding
// would silently break that reproducibility. Progress/duration reporting
// that provably never feeds a coefficient may carry a //lint:ignore
// wallclock with that justification. Packages outside the coefficient path
// (commands, verification, benchmarks) may time freely.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "clock read in a package on the generated-coefficient path",
	Run:  runWallClock,
}

// clockFuncs are the package-level time functions that read the wall or
// monotonic clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(p *Pass) []Diagnostic {
	if !p.Pkg.CoeffPath {
		return nil
	}
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		diags = append(diags, p.report("wallclock", sel,
			"time.%s in coefficient-path package %s: wall-clock values must not influence generated coefficients", fn.Name(), p.Pkg.ImportPath))
		return true
	})
	return diags
}
