package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` statements over maps whose body feeds an
// order-dependent sink: appending to a slice declared outside the loop,
// compound-assigning a float or string accumulator declared outside the
// loop (float addition is not associative; string concatenation is not
// commutative), printing through the fmt package, or sending on a channel.
//
// This is the classic nondeterminism leak the worker pool's shard-order
// merge exists to prevent: Go randomizes map iteration order, so any such
// loop makes output depend on the run, not just the input. Iterate a sorted
// key slice instead, or merge into an order-independent structure (a map,
// an integer counter, a max/min). A site that re-sorts its accumulator
// before use may carry a //lint:ignore mapiter with that justification.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration feeding an order-dependent sink (append/float accumulation/output/channel)",
	Run:  runMapIter,
}

func runMapIter(p *Pass) []Diagnostic {
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		diags = append(diags, p.mapIterSinks(rs)...)
		return true
	})
	return diags
}

// mapIterSinks scans the body of a map-range statement for order-dependent
// sinks.
func (p *Pass) mapIterSinks(rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				if arg := appendTarget(rhs, p); arg != nil {
					if id := rootIdent(arg); id != nil {
						if obj := p.Info.Uses[id]; obj != nil && !declaredWithin(obj, rs.Body) {
							diags = append(diags, p.report("mapiter", s,
								"map iteration order feeds append to %q declared outside the loop; iterate sorted keys or sort the result before use", id.Name))
						}
					}
				}
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := s.Lhs[0]
				t := p.Info.TypeOf(lhs)
				if t == nil || !(isFloat(t) || (isString(t) && s.Tok == token.ADD_ASSIGN)) {
					break
				}
				if id := rootIdent(lhs); id != nil {
					if obj := p.Info.Uses[id]; obj != nil && !declaredWithin(obj, rs.Body) {
						kind := "float accumulation (addition is not associative)"
						if isString(t) {
							kind = "string concatenation"
						}
						diags = append(diags, p.report("mapiter", s,
							"map iteration order feeds %s into %q; iterate sorted keys", kind, id.Name))
					}
				}
			}
		case *ast.SendStmt:
			diags = append(diags, p.report("mapiter", s,
				"map iteration order determines channel send order; iterate sorted keys"))
		case *ast.CallExpr:
			if f := p.funcOf(s); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(f.Name(), "Print") || strings.HasPrefix(f.Name(), "Fprint")) {
				diags = append(diags, p.report("mapiter", s,
					"map iteration order determines fmt.%s output order; iterate sorted keys", f.Name()))
			}
		}
		return true
	})
	return diags
}

// appendTarget returns the first argument of a builtin append call, or nil.
func appendTarget(e ast.Expr, p *Pass) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return call.Args[0]
}
