package analysis

import (
	"path"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata/src package against the real module.
func loadFixture(t *testing.T, name string) (*Module, *Package) {
	t.Helper()
	mod, err := Load("../..")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg, err := mod.LoadDir(filepath.Join("testdata", "src", name), path.Join(mod.Path, "fixture", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return mod, pkg
}

// nodeNamed returns the unique graph node whose full name ends in suffix.
func nodeNamed(t *testing.T, g *Graph, suffix string) *Node {
	t.Helper()
	var found *Node
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.Name(), suffix) {
			if found != nil {
				t.Fatalf("nodeNamed(%s): ambiguous (%s and %s)", suffix, found.Name(), n.Name())
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("nodeNamed(%s): no such node", suffix)
	}
	return found
}

// edgesTo returns the kinds of from's edges into to.
func edgesTo(from, to *Node) []EdgeKind {
	var kinds []EdgeKind
	for _, e := range from.Out {
		if e.Callee == to {
			kinds = append(kinds, e.Kind)
		}
	}
	return kinds
}

func TestCallGraph(t *testing.T) {
	mod, pkg := loadFixture(t, "callgraph")
	g := BuildGraph(mod.Fset, []*Package{pkg})

	run := nodeNamed(t, g, ".Run")
	helper := nodeNamed(t, g, ".helper")
	doubleApply := nodeNamed(t, g, "double).Apply")
	negateApply := nodeNamed(t, g, "negate).Apply")
	apply := nodeNamed(t, g, "callgraph.Apply")
	add := nodeNamed(t, g, ".add")
	sub := nodeNamed(t, g, ".sub")
	lit := nodeNamed(t, g, ".lit")

	// Static call Run → helper.
	if kinds := edgesTo(run, helper); len(kinds) != 1 || kinds[0] != EdgeStatic {
		t.Errorf("Run → helper: got %v, want one EdgeStatic", kinds)
	}
	// Dynamic dispatch Run → both Apply implementations.
	for _, impl := range []*Node{doubleApply, negateApply} {
		if kinds := edgesTo(run, impl); len(kinds) != 1 || kinds[0] != EdgeDynamic {
			t.Errorf("Run → %s: got %v, want one EdgeDynamic", impl.Name(), kinds)
		}
	}
	// Recursion helper → helper.
	if kinds := edgesTo(helper, helper); len(kinds) != 1 || kinds[0] != EdgeStatic {
		t.Errorf("helper → helper: got %v, want one EdgeStatic", kinds)
	}
	// Function-value call Apply → add and sub (both address-taken in pick).
	for _, target := range []*Node{add, sub} {
		if kinds := edgesTo(apply, target); len(kinds) != 1 || kinds[0] != EdgeValue {
			t.Errorf("Apply → %s: got %v, want one EdgeValue", target.Name(), kinds)
		}
	}
	// The closure body inside lit is attributed to lit itself.
	if kinds := edgesTo(lit, helper); len(kinds) != 1 || kinds[0] != EdgeStatic {
		t.Errorf("lit → helper (via closure): got %v, want one EdgeStatic", kinds)
	}
}

func TestReachAndPath(t *testing.T) {
	mod, pkg := loadFixture(t, "callgraph")
	g := BuildGraph(mod.Fset, []*Package{pkg})

	run := nodeNamed(t, g, ".Run")
	helper := nodeNamed(t, g, ".helper")
	apply := nodeNamed(t, g, "callgraph.Apply")
	add := nodeNamed(t, g, ".add")

	reach := g.Reach([]*Node{run}, func(e *Edge) bool { return e.Callee.Decl != nil })
	if _, ok := reach[helper]; !ok {
		t.Fatalf("helper not reached from Run")
	}
	if _, ok := reach[add]; ok {
		t.Errorf("add reached from Run; it is only reachable from Apply")
	}
	if e := reach[run]; e != nil {
		t.Errorf("root Run has incoming edge %v, want nil", e)
	}

	path := g.PathTo(reach, helper)
	if len(path) != 2 {
		t.Fatalf("PathTo(helper): got %d steps (%v), want 2", len(path), path)
	}
	if !strings.HasSuffix(path[0].Func, ".Run") || !strings.HasSuffix(path[1].Func, ".helper") {
		t.Errorf("PathTo(helper): got %v, want Run → helper", path)
	}

	// Skipping dynamic edges keeps the Apply implementations unreached.
	noDyn := g.Reach([]*Node{run}, func(e *Edge) bool {
		return e.Kind != EdgeDynamic && e.Callee.Decl != nil
	})
	if _, ok := noDyn[nodeNamed(t, g, "double).Apply")]; ok {
		t.Errorf("double.Apply reached although dynamic edges were skipped")
	}

	// Unreached nodes yield no path.
	if p := g.PathTo(reach, apply); p != nil {
		t.Errorf("PathTo(Apply) from Run: got %v, want nil", p)
	}
}
