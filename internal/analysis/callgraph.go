package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the whole-unit static call graph the interprocedural
// analyzers (nondetflow, ctxflow, the evalhot escalation) reason over. A
// "unit" is the set of packages analyzed together: the full module for
// rlibm-lint runs, a single fixture package for golden tests.
//
// Resolution policy, from precise to conservative:
//
//   - direct calls and statically resolved method calls bind through
//     go/types (renamed imports, embedded promotions and pointer receivers
//     all resolve correctly);
//   - a call on an interface method adds an edge to every unit method with
//     the same name whose receiver type (or its pointer) implements the
//     interface;
//   - a call through a function value (a variable, field, parameter or call
//     result of function type) adds an edge to every unit function whose
//     address is taken somewhere in the unit and whose signature is
//     identical to the call's.
//
// Function literals are attributed to their enclosing declaration: a call
// made inside a closure counts as a call by the function that contains the
// literal. This over-approximates (the closure may run later, on another
// goroutine) but never loses an edge, which is the direction the analyzers
// need. Calls into packages outside the unit become leaf nodes with no
// body; the graph never follows them.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call or a statically bound method call.
	EdgeStatic EdgeKind = iota
	// EdgeDynamic is a conservative edge from an interface method call to a
	// concrete method that may implement it.
	EdgeDynamic
	// EdgeValue is a conservative edge from a call through a function value
	// to an address-taken function with an identical signature.
	EdgeValue
)

// Node is one function in the call graph. External functions (declared
// outside the unit, typically standard library) have a nil Decl and Pkg and
// no outgoing edges.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for external functions
	Pkg  *Package      // declaring package; nil for external functions
	Out  []*Edge       // outgoing call edges, in source order
}

// Name returns the node's fully qualified function name.
func (n *Node) Name() string { return n.Fn.FullName() }

// Edge is one call site resolved to one possible callee. A dynamic or
// value call site yields one Edge per candidate.
type Edge struct {
	Caller *Node
	Callee *Node
	Call   *ast.CallExpr
	Kind   EdgeKind
}

// Graph is the unit call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes []*Node // unit nodes (with bodies), deterministic order

	byFn      map[*types.Func]*Node
	addrTaken map[*types.Func]bool
	byCall    map[*ast.CallExpr][]*Edge
}

// NodeOf returns the graph node for fn, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// CalleesOf returns the edges resolved for one call expression (empty for
// builtins and conversions).
func (g *Graph) CalleesOf(call *ast.CallExpr) []*Edge { return g.byCall[call] }

// BuildGraph constructs the call graph over the unit packages. The packages
// are processed in sorted import-path order and files in parse order, so
// node and edge order is deterministic.
func BuildGraph(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		Fset:      fset,
		byFn:      make(map[*types.Func]*Node),
		addrTaken: make(map[*types.Func]bool),
		byCall:    make(map[*ast.CallExpr][]*Edge),
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	// Pass 1: one node per declared function.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.byFn[fn] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}

	// Pass 2: address-taken functions. Any identifier resolving to a
	// function that is not the callee position of a call marks the function
	// as a possible function-value target.
	for _, n := range g.Nodes {
		calleeIdents := make(map[*ast.Ident]bool)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			}
			return true
		})
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := n.Pkg.Info.Uses[id].(*types.Func); ok {
				g.addrTaken[fn] = true
			}
			return true
		})
	}

	// Pass 3: edges.
	for _, n := range g.Nodes {
		caller := n
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.addEdges(caller, call)
			return true
		})
	}
	return g
}

// external returns (creating on demand) the leaf node for a function
// declared outside the unit.
func (g *Graph) external(fn *types.Func) *Node {
	if n, ok := g.byFn[fn]; ok {
		return n
	}
	n := &Node{Fn: fn}
	g.byFn[fn] = n
	return n
}

// addEdges resolves one call expression and appends the resulting edges.
func (g *Graph) addEdges(caller *Node, call *ast.CallExpr) {
	info := caller.Pkg.Info
	add := func(fn *types.Func, kind EdgeKind) {
		callee, ok := g.byFn[fn]
		if !ok {
			callee = g.external(fn)
		}
		e := &Edge{Caller: caller, Callee: callee, Call: call, Kind: kind}
		caller.Out = append(caller.Out, e)
		g.byCall[call] = append(g.byCall[call], e)
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			add(obj, EdgeStatic)
			return
		case *types.Builtin, *types.TypeName:
			return
		case nil:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				types.IsInterface(sig.Recv().Type()) {
				g.addDynamic(caller, call, fn, add)
				return
			}
			add(fn, EdgeStatic)
			return
		}
		// Qualified reference (pkg.Func) or struct field of function type.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			add(fn, EdgeStatic)
			return
		}
	}
	// A conversion is not a call.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	g.addValueCall(caller, call, add)
}

// addDynamic adds conservative edges from an interface method call to every
// unit method of the same name whose receiver type implements the
// interface.
func (g *Graph) addDynamic(caller *Node, call *ast.CallExpr, fn *types.Func, add func(*types.Func, EdgeKind)) {
	fnSig, ok := fn.Type().(*types.Signature)
	if !ok || fnSig.Recv() == nil {
		return
	}
	iface, ok := fnSig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range g.Nodes {
		sig, ok := cand.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if sig.Recv() == nil || cand.Fn.Name() != fn.Name() {
			continue
		}
		recv := sig.Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			add(cand.Fn, EdgeDynamic)
		}
	}
}

// addValueCall adds conservative edges from a call through a function value
// to every address-taken unit function with an identical signature.
func (g *Graph) addValueCall(caller *Node, call *ast.CallExpr, add func(*types.Func, EdgeKind)) {
	tv, ok := caller.Pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, cand := range g.Nodes {
		if !g.addrTaken[cand.Fn] {
			continue
		}
		if types.Identical(sig, cand.Fn.Type().Underlying()) {
			add(cand.Fn, EdgeValue)
		}
	}
}

// Reach runs a breadth-first walk from roots, following edges for which
// follow returns true (a nil follow follows everything), and returns the
// incoming edge that first reached each node. Roots map to a nil edge.
// Deterministic: roots are visited in the given order, out-edges in source
// order.
func (g *Graph) Reach(roots []*Node, follow func(*Edge) bool) map[*Node]*Edge {
	reach := make(map[*Node]*Edge)
	var queue []*Node
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := reach[r]; !ok {
			reach[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if _, ok := reach[e.Callee]; ok {
				continue
			}
			reach[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return reach
}

// PathTo reconstructs the witness call path from the root that first
// reached n, as recorded by Reach: the root function first, then one step
// per call site down to n itself.
func (g *Graph) PathTo(reach map[*Node]*Edge, n *Node) []PathStep {
	var rev []PathStep
	for cur := n; ; {
		e, ok := reach[cur]
		if !ok {
			return nil
		}
		if e == nil {
			rev = append(rev, PathStep{Pos: g.Fset.Position(cur.Decl.Pos()), Func: cur.Name()})
			break
		}
		rev = append(rev, PathStep{Pos: g.Fset.Position(e.Call.Pos()), Func: cur.Name()})
		cur = e.Caller
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// docMarker reports whether the declaration's doc comment carries the given
// //marker directive line (exactly, or followed by a space and trailing
// text).
func docMarker(fd *ast.FuncDecl, marker string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || len(c.Text) > len(marker) && c.Text[:len(marker)+1] == marker+" " {
			return true
		}
	}
	return false
}
