package analysis

import (
	"strings"
	"testing"
)

// TestTaintPropagation runs the nondetflow engine over its fixture package
// and checks the two expected source-to-sink flows plus the sanitized
// negative case.
func TestTaintPropagation(t *testing.T) {
	mod, pkg := loadFixture(t, "nondetflow")
	g := BuildGraph(mod.Fset, []*Package{pkg})
	findings := runTaint(mod, g)

	var clock, mapOrder *taintFinding
	for i := range findings {
		f := &findings[i]
		switch f.src.kind {
		case taintClock:
			clock = f
		case taintMapOrder:
			mapOrder = f
		}
	}
	if len(findings) != 2 || clock == nil || mapOrder == nil {
		t.Fatalf("got %d findings, want exactly one clock and one map-order flow: %+v", len(findings), findings)
	}

	// The clock flow starts at stamp's time.Now and descends through
	// Record and relay into the marked sink.
	if !strings.HasSuffix(clock.node.Name(), ".stamp") {
		t.Errorf("clock finding anchored at %s, want stamp", clock.node.Name())
	}
	if !strings.Contains(clock.sink, "persist") {
		t.Errorf("clock finding sink = %q, want the marked persist sink", clock.sink)
	}
	var funcs []string
	for _, s := range clock.path {
		funcs = append(funcs, s.Func[strings.LastIndex(s.Func, ".")+1:])
	}
	joined := strings.Join(funcs, " ")
	for _, want := range []string{"stamp", "Record", "relay"} {
		if !strings.Contains(joined, want) {
			t.Errorf("clock witness path %v misses %s", funcs, want)
		}
	}

	// The map-order flow comes from Leak; Collect's sorted copy must not
	// report.
	if !strings.HasSuffix(mapOrder.node.Name(), ".Leak") {
		t.Errorf("map-order finding anchored at %s, want Leak", mapOrder.node.Name())
	}
}

// TestTaintContextOpaque pins the documented precision choice: taint never
// attaches to context.Context values, so values threaded through a context
// cannot mark every downstream result.
func TestTaintContextOpaque(t *testing.T) {
	mod, pkg := loadFixture(t, "ctxtaint")
	g := BuildGraph(mod.Fset, []*Package{pkg})
	if findings := runTaint(mod, g); len(findings) != 0 {
		t.Fatalf("got %d findings through a context value, want 0: %+v", len(findings), findings)
	}
}

// TestSelect covers the -only/-skip resolution and its unified error text.
func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil {
		t.Fatalf("Select(\"\", \"\"): %v", err)
	}
	if len(all) != len(All()) {
		t.Fatalf("empty selection: got %d analyzers, want %d", len(all), len(All()))
	}

	only, err := Select("nondetflow,ctxflow", "")
	if err != nil {
		t.Fatalf("Select(only): %v", err)
	}
	if len(only) != 2 || only[0].Name != "nondetflow" || only[1].Name != "ctxflow" {
		t.Errorf("Select(only nondetflow,ctxflow): got %v", names(only))
	}

	skip, err := Select("", "evalhot")
	if err != nil {
		t.Fatalf("Select(skip): %v", err)
	}
	for _, a := range skip {
		if a.Name == "evalhot" {
			t.Errorf("Select(skip evalhot) still contains evalhot")
		}
	}
	if len(skip) != len(All())-1 {
		t.Errorf("Select(skip evalhot): got %d analyzers, want %d", len(skip), len(All())-1)
	}

	both, err := Select("nondetflow,ctxflow", "ctxflow")
	if err != nil {
		t.Fatalf("Select(both): %v", err)
	}
	if len(both) != 1 || both[0].Name != "nondetflow" {
		t.Errorf("Select(only minus skip): got %v", names(both))
	}

	if _, err := Select("nosuch", ""); err == nil ||
		!strings.Contains(err.Error(), "invalid -only nosuch: must name a registered analyzer") {
		t.Errorf("Select(unknown only): got %v, want the unified invalid-flag error", err)
	}
	if _, err := Select("", "nosuch"); err == nil ||
		!strings.Contains(err.Error(), "invalid -skip nosuch") {
		t.Errorf("Select(unknown skip): got %v, want the unified invalid-flag error", err)
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}
