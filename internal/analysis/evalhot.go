package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EvalHot polices the batch-evaluation hot path. Functions opt in with an
//
//	//evalhot:loop
//
// line in their doc comment — the kernel loop of internal/eval and the
// helpers it inlines (the flattened polynomial, the special classifier,
// the lowered reduction, the precompiled rounder) all carry the marker.
// Inside a marked function the analyzer forbids everything the batch
// contract hoists to Compile time:
//
//   - math/big references: arbitrary precision belongs in generation, never
//     in serving;
//   - dynamic interface method calls: the kernel must be fully
//     devirtualized so every call is static;
//   - sort package calls: per-input sort.Search is exactly the dispatch
//     cost the compiled classifier exists to remove;
//   - allocating expressions (make, new, append, closures, slice/map
//     literals, string concatenation, fmt calls): the loop runs
//     allocation-free by contract, pinned dynamically by the
//     AllocsPerRun tests and statically here.
//
// The analyzer also requires the internal/eval package itself to contain at
// least one marked function, so the restrictions cannot be silently opted
// out of by deleting markers.
//
// Interprocedural escalation: every function transitively callable from a
// marked function — over static calls and conservative function-value
// edges, across packages — must satisfy the same restrictions, so a helper
// extracted out of EvalBatch cannot silently reintroduce an allocation.
// Dynamic interface edges are not followed (the dynamic call is itself a
// violation at its call site). A function marked //evalhot:cold in its doc
// comment is the audited slow-path escape: the walk stops there, for code
// the hot loop reaches only on inputs the reduction already rejected (the
// special-value path). `rlibm-lint -why` prints the marker-to-violation
// call path for escalated findings.
var EvalHot = &Analyzer{
	Name:            "evalhot",
	Doc:             "forbidden construct in a marked batch-evaluation hot loop or a function it transitively calls",
	Run:             runEvalHot,
	Interprocedural: true,
}

// evalHotMarked reports whether the function's doc comment carries the
// //evalhot:loop marker.
func evalHotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//evalhot:loop" || strings.HasPrefix(c.Text, "//evalhot:loop ") {
			return true
		}
	}
	return false
}

func runEvalHot(p *Pass) []Diagnostic {
	var diags []Diagnostic
	marked := 0
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !evalHotMarked(fd) {
				continue
			}
			marked++
			if fd.Body != nil {
				diags = append(diags, p.checkEvalHot(fd)...)
			}
		}
	}
	if marked == 0 && p.Pkg.ImportPath == p.Module.Path+"/internal/eval" && len(p.Pkg.Files) > 0 {
		diags = append(diags, p.report("evalhot", p.Pkg.Files[0].Name,
			"package %s has no //evalhot:loop functions: the batch kernel's hot loop must be marked so its restrictions stay enforced", p.Pkg.ImportPath))
	}
	diags = append(diags, p.runEvalHotInter()...)
	return diags
}

// runEvalHotInter escalates the hot-loop restrictions to every unmarked
// function declared in this package that is transitively callable from a
// //evalhot:loop marker anywhere in the unit.
func (p *Pass) runEvalHotInter() []Diagnostic {
	in := p.Interp
	if in == nil {
		return nil
	}
	var diags []Diagnostic
	for _, n := range in.Graph.Nodes {
		if n.Pkg != p.Pkg || evalHotMarked(n.Decl) || docMarker(n.Decl, "//evalhot:cold") {
			continue
		}
		if e, ok := in.hotReach[n]; !ok || e == nil {
			continue
		}
		ds := p.checkEvalHot(n.Decl)
		if len(ds) == 0 {
			continue
		}
		path := in.Graph.PathTo(in.hotReach, n)
		root := ""
		if len(path) > 0 {
			root = path[0].Func
		}
		for _, d := range ds {
			d.Message += " (transitively called from //evalhot:loop root " + root + ")"
			d.Path = path
			diags = append(diags, d)
		}
	}
	return diags
}

// checkEvalHot walks one marked function body.
func (p *Pass) checkEvalHot(fd *ast.FuncDecl) []Diagnostic {
	name := fd.Name.Name
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if _, isPkg := obj.(*types.PkgName); obj != nil && !isPkg &&
				obj.Pkg() != nil && obj.Pkg().Path() == "math/big" {
				diags = append(diags, p.report("evalhot", x,
					"math/big reference %s in hot-loop function %s: arbitrary precision belongs in generation, never in the batch eval path", x.Name, name))
			}
		case *ast.CallExpr:
			diags = append(diags, p.checkEvalHotCall(x, name)...)
		case *ast.FuncLit:
			diags = append(diags, p.report("evalhot", x,
				"function literal in hot-loop function %s: closures allocate; hoist the code to a named function", name))
			return false // the literal's body is not part of the marked loop
		case *ast.CompositeLit:
			switch p.Info.Types[x].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				diags = append(diags, p.report("evalhot", x,
					"slice or map literal in hot-loop function %s: allocate at Compile time, not per batch", name))
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(p.Info.Types[x.X].Type) {
				diags = append(diags, p.report("evalhot", x,
					"string concatenation in hot-loop function %s: building strings allocates", name))
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(p.Info.Types[x.Lhs[0]].Type) {
				diags = append(diags, p.report("evalhot", x,
					"string concatenation in hot-loop function %s: building strings allocates", name))
			}
		}
		return true
	})
	return diags
}

// checkEvalHotCall classifies one call inside a marked body.
func (p *Pass) checkEvalHotCall(call *ast.CallExpr, name string) []Diagnostic {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				return []Diagnostic{p.report("evalhot", call,
					"%s in hot-loop function %s: the batch loop runs allocation-free; allocate at Compile time", b.Name(), name)}
			}
			return nil
		}
	}
	fn := p.funcOf(call)
	if fn == nil {
		return nil
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort":
			return []Diagnostic{p.report("evalhot", call,
				"sort.%s in hot-loop function %s: per-input binary search is the dispatch cost Compile removes; use the precompiled classifier", fn.Name(), name)}
		case "fmt":
			return []Diagnostic{p.report("evalhot", call,
				"fmt.%s in hot-loop function %s: formatting allocates; hot loops report through counters", fn.Name(), name)}
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		types.IsInterface(sig.Recv().Type()) {
		return []Diagnostic{p.report("evalhot", call,
			"dynamic interface call %s in hot-loop function %s: the kernel must be devirtualized so every call is static", fn.Name(), name)}
	}
	return nil
}
