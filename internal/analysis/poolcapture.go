package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// PoolCapture is a heuristic race detector for parallel.ForEach worker
// closures — the class of bug -race only finds when the schedule
// cooperates. Inside the func(i int) literal handed to ForEach, a write to
// a variable captured from the enclosing scope is flagged unless the write
// targets the worker's claimed index slot: an element of a slice or array
// indexed by an expression involving the closure parameter (out[i] = ...,
// per[s].field = ...). Writes to locals declared inside the closure are
// always fine; so are channel sends (channels synchronize).
//
// Map element writes are never safe here even with distinct keys —
// concurrent map writes race structurally — so they are flagged like any
// other captured write. State that genuinely needs cross-worker sharing
// belongs in atomics or behind a mutex, with a //lint:ignore poolcapture
// naming the synchronization.
var PoolCapture = &Analyzer{
	Name: "poolcapture",
	Doc:  "write to a captured variable inside a parallel.ForEach worker that is not the claimed index slot",
	Run:  runPoolCapture,
}

func runPoolCapture(p *Pass) []Diagnostic {
	forEachPath := path.Join(p.Module.Path, "internal/parallel")
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := p.funcOf(call)
		if f == nil || !isPkgFunc(f, forEachPath, "ForEach") || len(call.Args) != 3 {
			return true
		}
		fl, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
		if !ok {
			return true // a named worker func: out of heuristic reach
		}
		params := fl.Type.Params.List
		if len(params) != 1 || len(params[0].Names) != 1 {
			return true
		}
		paramObj := p.Info.Defs[params[0].Names[0]]
		diags = append(diags, p.checkWorkerBody(fl, paramObj)...)
		return true
	})
	return diags
}

// checkWorkerBody flags captured-variable writes inside one worker closure.
func (p *Pass) checkWorkerBody(fl *ast.FuncLit, paramObj types.Object) []Diagnostic {
	var diags []Diagnostic
	flag := func(stmt ast.Node, lhs ast.Expr) {
		if ok, name := p.allowedWorkerLHS(fl, paramObj, lhs); !ok {
			diags = append(diags, p.report("poolcapture", stmt,
				"worker closure writes to captured %q outside its claimed index slot; route results through a per-index slot, an atomic, or a mutex", name))
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					if _, isDef := p.Info.Defs[id]; isDef {
						continue // new variable in :=
					}
				}
				flag(s, lhs)
			}
		case *ast.IncDecStmt:
			flag(s, s.X)
		}
		return true
	})
	return diags
}

// allowedWorkerLHS decides whether an assignment target inside a worker
// closure is safe, returning the offending root variable name otherwise.
// Safe shapes: any path through a slice/array element indexed by the
// closure parameter (the claimed slot), or a root variable declared inside
// the closure.
func (p *Pass) allowedWorkerLHS(fl *ast.FuncLit, paramObj types.Object, lhs ast.Expr) (bool, string) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil || declaredWithin(obj, fl) {
				return true, ""
			}
			return false, x.Name
		case *ast.IndexExpr:
			if paramObj != nil && p.refersTo(x.Index, paramObj) {
				t := p.Info.TypeOf(x.X)
				if t != nil {
					switch u := t.Underlying().(type) {
					case *types.Slice, *types.Array:
						return true, "" // the worker's claimed slot
					case *types.Pointer:
						if _, isArr := u.Elem().Underlying().(*types.Array); isArr {
							return true, ""
						}
					}
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			// Unrecognized lvalue shape (call result dereference, ...):
			// stay conservative and flag it.
			return false, "expression"
		}
	}
}
