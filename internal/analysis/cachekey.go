package analysis

import (
	"go/ast"
	"go/types"
)

// CacheKey enforces the artifact-store invalidation contract: a struct type
// that declares a method named Fingerprint (gen.Options is the instance
// that matters) promises that its fingerprint digests every field that can
// influence generated output. The analyzer checks the promise structurally:
// every field of the receiver struct must be mentioned through the receiver
// inside the Fingerprint method body — either digested (e.Int(o.MaxTerms))
// or recorded as a deliberate exclusion (_ = o.Workers, with a comment
// saying why the field cannot change output bits).
//
// The failure mode this guards against is silent: adding a field to
// gen.Options without extending Fingerprint leaves old cache keys valid, so
// a run with the new option happily reuses artifacts computed without it —
// stale coefficients with no error anywhere. Mentions must appear
// syntactically inside Fingerprint itself; a field digested only through a
// helper still needs a `_ = o.Field` mention (or a //lint:ignore cachekey
// with justification) at the contract site.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "struct field missing from its Fingerprint method, so cache keys would not invalidate when it changes",
	Run:  runCacheKey,
}

func runCacheKey(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Fingerprint" || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			named, st := p.recvStruct(fd.Recv.List[0])
			if st == nil {
				continue
			}
			recv := p.recvObj(fd.Recv.List[0])
			mentioned := p.receiverMentions(fd.Body, recv)
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if mentioned[field.Name()] {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(field.Pos()),
					Analyzer: "cachekey",
					Message: "field " + named.Obj().Name() + "." + field.Name() +
						" is not mentioned in Fingerprint: cache keys would not invalidate when it changes; digest it, or record the exclusion with a blank mention",
				})
			}
		}
	}
	return diags
}

// recvStruct resolves a method receiver to its named struct type, looking
// through one level of pointer; (nil, nil) when the receiver is not a
// struct.
func (p *Pass) recvStruct(recv *ast.Field) (*types.Named, *types.Struct) {
	tv, ok := p.Info.Types[recv.Type]
	if !ok {
		return nil, nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// recvObj returns the receiver variable's object, or nil for an unnamed or
// blank receiver (which can mention no fields).
func (p *Pass) recvObj(recv *ast.Field) types.Object {
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return nil
	}
	return p.Info.Defs[recv.Names[0]]
}

// receiverMentions collects the names selected directly off the receiver
// anywhere in body: o.Field in an expression, a range header, or a blank
// assignment all count.
func (p *Pass) receiverMentions(body *ast.BlockStmt, recv types.Object) map[string]bool {
	mentioned := make(map[string]bool)
	if recv == nil {
		return mentioned
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.Info.Uses[id] == recv {
			mentioned[sel.Sel.Name] = true
		}
		return true
	})
	return mentioned
}
