package analysis

import (
	"go/ast"
	"go/types"
)

// BigPrec enforces explicit big.Float working precision — the silent
// 53-bit (big.NewFloat) or argument-derived default precision is exactly
// the bug class the arbitrary-precision oracle exists to avoid. Three
// violation classes:
//
//   - big.NewFloat(x): yields a 53-bit value; spell the precision with
//     new(big.Float).SetPrec(p).SetFloat64(x);
//   - a method chained directly onto a fresh value — new(big.Float).Add(...)
//     or (&big.Float{}).Set(...) — without an interposed SetPrec: the
//     result's precision is inherited from operands or defaulted, never
//     stated;
//   - a local big.Float (or a local initialized from new(big.Float) /
//     &big.Float{}) whose first method use in the function precedes any
//     SetPrec on it (source order approximates execution order).
//
// A site where the default is provably exact (e.g. an integer that fits
// 53 bits, compared rather than computed with) may carry a //lint:ignore
// bigprec stating that proof.
var BigPrec = &Analyzer{
	Name: "bigprec",
	Doc:  "big.Float used in arithmetic before an explicit SetPrec",
	Run:  runBigPrec,
}

func runBigPrec(p *Pass) []Diagnostic {
	var diags []Diagnostic
	p.inspect(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if f := p.funcOf(x); f != nil && isPkgFunc(f, "math/big", "NewFloat") {
				diags = append(diags, p.report("bigprec", x,
					"big.NewFloat yields silent 53-bit precision; use new(big.Float).SetPrec(p).SetFloat64(...)"))
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name != "SetPrec" &&
				isFreshBigFloat(p, sel.X) {
				diags = append(diags, p.report("bigprec", x,
					"%s called on a fresh big.Float before SetPrec; the working precision must be explicit", sel.Sel.Name))
			}
		case *ast.FuncDecl:
			if x.Body != nil {
				diags = append(diags, p.checkLocalBigFloats(x.Body)...)
			}
		}
		return true
	})
	return diags
}

// isFreshBigFloat reports whether e is a zero-precision big.Float value
// created in place: new(big.Float) or &big.Float{}.
func isFreshBigFloat(p *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "new" {
			return false
		}
		return len(x.Args) == 1 && isBigFloatType(p.Info.TypeOf(x.Args[0]))
	case *ast.UnaryExpr:
		cl, ok := x.X.(*ast.CompositeLit)
		return ok && isBigFloatType(p.Info.TypeOf(cl)) && len(cl.Elts) == 0
	case *ast.CompositeLit:
		return isBigFloatType(p.Info.TypeOf(x)) && len(x.Elts) == 0
	}
	return false
}

// isBigFloatType reports whether t is math/big.Float (possibly behind a
// pointer).
func isBigFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big" && obj.Name() == "Float"
}

// checkLocalBigFloats applies the source-order rule to locals of one
// function body: a big.Float local declared without precision (var of value
// type, or := new(big.Float) / &big.Float{}) must see SetPrec before any
// other method.
func (p *Pass) checkLocalBigFloats(body *ast.BlockStmt) []Diagnostic {
	// Collect candidate locals: object → true while still precision-less.
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ValueSpec:
			if len(x.Values) != 0 {
				break
			}
			for _, name := range x.Names {
				if obj := p.Info.Defs[name]; obj != nil && isBigFloatValueType(obj.Type()) {
					fresh[obj] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil || !isFreshBigFloat(p, x.Rhs[i]) {
					continue
				}
				fresh[obj] = true
			}
		}
		return true
	})
	if len(fresh) == 0 {
		return nil
	}
	// The first method call on each candidate, in source order (which
	// approximates execution order for lint purposes), decides: SetPrec
	// first clears the candidate, anything else is a finding.
	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || !fresh[obj] {
			return true
		}
		delete(fresh, obj) // first use decides; later uses are fine either way
		if sel.Sel.Name != "SetPrec" {
			diags = append(diags, p.report("bigprec", call,
				"%s called on %q before SetPrec; the working precision must be explicit", sel.Sel.Name, obj.Name()))
		}
		return true
	})
	return diags
}

// isBigFloatValueType reports whether t is the big.Float value type (not a
// pointer) — `var z big.Float` starts at precision 0.
func isBigFloatValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big" && obj.Name() == "Float"
}
